// BENCH_paws.json writer: regenerates the committed spectrum-database
// load baseline when PAWS_BENCH_OUT is set (see `make BENCH_paws.json`).
// It runs the internal/pawsload open-loop harness three ways — cached,
// cache-disabled, and a paced soak through a scripted database outage —
// and enforces the ISSUE gates: >= 50k sustained queries/sec on one
// core, the cache measurably beating the raw index path, a bounded p99,
// and an outage that produces client-visible errors without wedging the
// run. PAWS_BENCH_QUICK=1 shrinks the run for local iteration (do not
// commit a quick artifact).
package cellfi_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"cellfi/internal/faults"
	"cellfi/internal/pawsload"
)

// pawsBenchArtifact is the schema of BENCH_paws.json. The top-level
// scalars (sustained_qps, cached_p99_ns, cache_hit_rate) are what
// scripts/benchdiff.sh compares; the per-run results carry the full
// detail.
type pawsBenchArtifact struct {
	Generated   time.Time `json:"generated"`
	GoMaxProcs  int       `json:"go_max_procs"`
	NumCPU      int       `json:"num_cpu"`
	GoVersion   string    `json:"go_version"`
	Description string    `json:"description"`

	Clients    int `json:"clients"`
	Requests   int `json:"requests"`
	Incumbents int `json:"incumbents"`

	SustainedQPS float64 `json:"sustained_qps"`
	CachedP99Ns  int64   `json:"cached_p99_ns"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// CacheSpeedup is cached QPS over uncached QPS (>1 means the cache
	// pays for itself end to end, request decode and encode included).
	CacheSpeedup float64 `json:"cache_speedup"`

	Cached     pawsload.Result `json:"cached"`
	Uncached   pawsload.Result `json:"uncached"`
	OutageSoak pawsload.Result `json:"outage_soak"`
}

// TestPAWSBenchArtifact regenerates BENCH_paws.json when PAWS_BENCH_OUT
// is set. The gates mirror the roadmap acceptance criteria; benchmark
// noise on shared hardware is absorbed by generous ceilings, not by
// skipping the check.
func TestPAWSBenchArtifact(t *testing.T) {
	out := os.Getenv("PAWS_BENCH_OUT")
	if out == "" {
		t.Skip("set PAWS_BENCH_OUT to write BENCH_paws.json")
	}

	clients, requests := 100_000, 500_000
	qpsFloor := 50_000.0
	if os.Getenv("PAWS_BENCH_QUICK") == "1" {
		clients, requests = 10_000, 50_000
	}
	const incumbents = 160

	run := func(label string, cfg pawsload.Config) pawsload.Result {
		t.Helper()
		res, err := pawsload.Run(cfg)
		if err != nil {
			t.Fatalf("%s run: %v", label, err)
		}
		t.Logf("%s: %.0f qps, p99 %.1fus, hit rate %.1f%%, errors %d",
			label, res.QPS, float64(res.LatencyP99Ns)/1e3, 100*res.DB.CacheHitRate, res.Errors)
		return res
	}

	base := pawsload.Config{Clients: clients, Requests: requests, Incumbents: incumbents, Seed: 1}
	cached := run("cached", base)

	uncachedCfg := base
	uncachedCfg.DisableCache = true
	uncached := run("uncached", uncachedCfg)

	// Outage soak: paced at the QPS floor through a scripted 1 s
	// database outage. The open-loop schedule must hold (the outage
	// converts requests to errors, it does not stall the run).
	soakCfg := pawsload.Config{
		Clients: clients / 10, Requests: requests / 5, Incumbents: incumbents, Seed: 1,
		TargetQPS: qpsFloor,
		Outages:   []faults.Window{{From: 500 * time.Millisecond, To: 1500 * time.Millisecond}},
	}
	soak := run("outage-soak", soakCfg)

	art := pawsBenchArtifact{
		Generated:  time.Now().UTC(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Description: "PAWS spectrum-database load baseline (internal/pawsload, lean mode, " +
			"single process). `cached` and `uncached` drive the same seeded metro " +
			"(100k APs, 160 incumbents, 60x60 km) through the pawsdb-backed server " +
			"at full speed with the response cache on and off; `outage_soak` paces " +
			"the same traffic at the 50k qps floor through a scripted 1 s database " +
			"outage (faults.FlakyHandler) to show errors are counted, not wedging. " +
			"Enforced: sustained_qps >= 50k, cached beats uncached, cache_hit_rate " +
			">= 0.5, cached p99 <= 2 ms, zero errors outside the outage window.",
		Clients:      clients,
		Requests:     requests,
		Incumbents:   incumbents,
		SustainedQPS: cached.QPS,
		CachedP99Ns:  cached.LatencyP99Ns,
		CacheHitRate: cached.DB.CacheHitRate,
		Cached:       cached,
		Uncached:     uncached,
		OutageSoak:   soak,
	}
	if uncached.QPS > 0 {
		art.CacheSpeedup = cached.QPS / uncached.QPS
	}

	if cached.Errors != 0 || uncached.Errors != 0 {
		t.Errorf("clean runs reported errors: cached %d, uncached %d", cached.Errors, uncached.Errors)
	}
	if cached.QPS < qpsFloor {
		t.Errorf("sustained %.0f qps, floor %.0f", cached.QPS, qpsFloor)
	}
	if cached.QPS <= uncached.QPS {
		t.Errorf("cache does not beat the raw index path: %.0f vs %.0f qps", cached.QPS, uncached.QPS)
	}
	if art.CacheHitRate < 0.5 {
		t.Errorf("cache hit rate %.2f, want >= 0.5", art.CacheHitRate)
	}
	if limit := int64(2 * time.Millisecond); cached.LatencyP99Ns > limit {
		t.Errorf("cached p99 %.1fus exceeds the %.1fms bound",
			float64(cached.LatencyP99Ns)/1e3, float64(limit)/1e6)
	}
	if soak.Errors == 0 {
		t.Error("outage soak produced no errors; the window never hit")
	}
	if soak.Errors >= soak.Requests {
		t.Errorf("outage soak failed every request (%d/%d)", soak.Errors, soak.Requests)
	}
	if soak.DB.Queries+soak.Errors != soak.Requests {
		t.Errorf("soak accounting: db queries %d + errors %d != requests %d",
			soak.DB.Queries, soak.Errors, soak.Requests)
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.0f qps sustained, %.2fx over uncached, hit rate %.1f%%",
		out, art.SustainedQPS, art.CacheSpeedup, 100*art.CacheHitRate)
}
