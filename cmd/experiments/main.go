// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-id fig9b] [-seed 1] [-quick] [-series] [-list]
//	            [-workers N] [-telemetry report.json]
//	            [-cpuprofile cpu.out] [-memprofile mem.out] [-trace trace.out] [-progress]
//
// Without -id it runs every experiment in presentation order. -quick
// trades trial counts for speed; -series additionally dumps the raw
// (x, y) series behind each figure for external plotting. Experiments
// fan their scenario fleets across -workers goroutines (results are
// bit-identical at any worker count); -telemetry writes the merged
// per-run campaign report as JSON.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cellfi/internal/experiments"
	"cellfi/internal/profiling"
	"cellfi/internal/runner"
	"cellfi/internal/stats"
)

func main() {
	id := flag.String("id", "", "experiment ID to run (default: all)")
	seed := flag.Int64("seed", 1, "base random seed")
	quick := flag.Bool("quick", false, "reduced trials for a fast pass")
	series := flag.Bool("series", false, "print raw series points for plotting")
	plot := flag.Bool("plot", false, "render each figure's series as terminal plots")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	workers := flag.Int("workers", 0, "scenario-fleet workers (0 = GOMAXPROCS)")
	telemetry := flag.String("telemetry", "", "write merged campaign telemetry JSON to this path")
	progress := flag.Bool("progress", false, "report per-run fleet progress on stderr")
	prof := profiling.AddFlags()
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	experiments.SetWorkers(*workers)
	if *progress {
		experiments.SetProgress(func(p runner.Progress) {
			fmt.Fprintf(os.Stderr, "[%s] %d/%d done (%d failed) %s\n",
				p.Campaign, p.Done, p.Total, p.Failed, p.Label)
		})
	}

	if *list {
		for _, eid := range experiments.IDs() {
			fmt.Println(eid)
		}
		return
	}

	ids := experiments.IDs()
	if *id != "" {
		if _, ok := experiments.Get(*id); !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *id)
			os.Exit(2)
		}
		ids = []string{*id}
	}

	for _, eid := range ids {
		run, _ := experiments.Get(eid)
		res := run(*seed, *quick)
		fmt.Printf("==== %s ====\n\n", res.Title)
		for _, tb := range res.Tables {
			fmt.Println(tb.String())
		}
		for _, n := range res.Notes {
			fmt.Printf("  * %s\n", n)
		}
		if *plot && len(res.Series) > 0 {
			// CDP-style figures overlay naturally; cap at 4 series
			// per plot to keep glyphs readable.
			for start := 0; start < len(res.Series); start += 4 {
				end := start + 4
				if end > len(res.Series) {
					end = len(res.Series)
				}
				fmt.Println(stats.Plot(res.Series[start:end], stats.DefaultPlotOptions()))
			}
		}
		if *series {
			for _, sr := range res.Series {
				fmt.Printf("\n# %s\n", sr.Name)
				for _, p := range sr.Points {
					fmt.Printf("%g\t%g\n", p[0], p[1])
				}
			}
		}
		fmt.Println(strings.Repeat("-", 64))
	}

	if *telemetry != "" {
		reps := experiments.DrainReports()
		// Purely computed experiments (e.g. overhead) run no fleet;
		// still emit a valid empty report so tooling can rely on the
		// file existing.
		merged := &runner.Report{Campaign: "experiments"}
		if len(reps) > 0 {
			var err error
			merged, err = runner.Merge("experiments", reps...)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: merging telemetry: %v\n", err)
				os.Exit(1)
			}
		}
		if err := merged.WriteJSON(*telemetry); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing telemetry: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: %d campaigns, %d runs, %d sim events -> %s\n",
			len(reps), len(merged.Runs), merged.TotalSimEvents, *telemetry)
	}
}
