// Command cellfi-map renders an ASCII coverage map of a deployment:
// the best-server downlink SINR at every grid point, with access
// points marked. Run it once with -scheme lte and once with -scheme
// cellfi to *see* what interference management buys at the cell edges.
//
// Usage:
//
//	cellfi-map [-aps 10] [-clients 6] [-scheme cellfi|lte] [-seed 1]
//	           [-cols 96] [-rows 36] [-epochs 20] [-subchannel 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/netsim"
	"cellfi/internal/phy"
	"cellfi/internal/propagation"
	"cellfi/internal/stats"
	"cellfi/internal/topo"
)

func main() {
	aps := flag.Int("aps", 10, "access points")
	clients := flag.Int("clients", 6, "clients per AP")
	scheme := flag.String("scheme", "cellfi", "cellfi or lte")
	seed := flag.Int64("seed", 1, "random seed")
	cols := flag.Int("cols", 96, "map width (characters)")
	rows := flag.Int("rows", 36, "map height (characters)")
	epochs := flag.Int("epochs", 20, "IM epochs before sampling")
	subchannel := flag.Int("subchannel", 0, "subchannel to map")
	flag.Parse()

	var s netsim.Scheme
	switch *scheme {
	case "cellfi":
		s = netsim.SchemeCellFi
	case "lte":
		s = netsim.SchemeLTE
	default:
		log.Fatalf("cellfi-map: unknown scheme %q", *scheme)
	}

	tp := topo.Generate(topo.Paper(*aps, *clients), *seed)
	n := netsim.New(tp, netsim.DefaultConfig(s, *seed))
	n.Run(*epochs) // converge the reservations

	// Who transmits in the mapped subchannel after convergence?
	model := propagation.DefaultUrban(*seed)
	model.ShadowSigmaDB = 0 // median map
	perRB := 30 - 10*math.Log10(25) + 6
	noise := propagation.NoiseDBm(lte.RBBandwidthHz, 7)
	active := map[int]bool{}
	for i := range tp.APs {
		for _, k := range n.Allowed(i) {
			if k == *subchannel {
				active[i] = true
			}
		}
	}

	side := tp.Params.AreaSide
	grid := make([][]float64, *rows)
	for r := range grid {
		grid[r] = make([]float64, *cols)
		for c := range grid[r] {
			p := geo.Point{
				X: (float64(c) + 0.5) / float64(*cols) * side,
				Y: side - (float64(r)+0.5)/float64(*rows)*side,
			}
			// Best server among cells active in this subchannel;
			// the rest interfere.
			best := math.Inf(-1)
			for i, ap := range tp.APs {
				if !active[i] {
					continue
				}
				sig := perRB - model.PathLossDB(ap.Dist(p))
				den := propagation.DBmToMW(noise)
				for j, other := range tp.APs {
					if j == i || !active[j] {
						continue
					}
					den += propagation.DBmToMW(perRB - model.PathLossDB(other.Dist(p)))
				}
				if sinr := sig - propagation.MWToDBm(den); sinr > best {
					best = sinr
				}
			}
			if math.IsInf(best, -1) {
				grid[r][c] = math.NaN()
			} else {
				// Clamp to the CQI-relevant range so the ramp shows
				// usable-vs-dead, not raw dynamic range.
				grid[r][c] = math.Max(phy.LTEMinSINRdB, math.Min(25, best))
			}
		}
	}

	marks := map[[2]int]byte{}
	for i, ap := range tp.APs {
		c := int(ap.X / side * float64(*cols))
		r := int((side - ap.Y) / side * float64(*rows))
		if r >= 0 && r < *rows && c >= 0 && c < *cols {
			marks[[2]int{r, c}] = byte('A' + i%26)
		}
	}

	fmt.Printf("best-server SINR map, subchannel %d, scheme %s (%d APs; letters mark cells transmitting here: %d)\n",
		*subchannel, s, *aps, len(active))
	fmt.Print(stats.Heatmap(grid, marks))
}
