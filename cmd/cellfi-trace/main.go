// Command cellfi-trace decodes, filters, renders and diffs the binary
// flight-recorder streams the simulators capture (internal/trace) — the
// repo's answer to browsing QXDM logs.
//
// Usage:
//
//	cellfi-trace dump [-ap N] [-kind name] [-from ns] [-to ns] file.trace
//	cellfi-trace info file.trace
//	cellfi-trace timeline [-ap N] file.trace
//	cellfi-trace diff a.trace b.trace
//	cellfi-trace verify [-deadline d] [-slack d] [-all] file.trace
//
// dump prints one record per line in the stable textual form. info
// summarizes a stream (record counts per kind, APs, time span).
// timeline renders each AP's interference-management history as an
// ASCII heatmap — subchannel rows × epoch columns, built from im-share
// bitmasks, with hop-in (+) and hop-out (x) marks. diff compares two
// streams record by record and exits 1 at the first divergence — the
// determinism check behind "same seed, same trace". verify replays a
// recorded stream through the regulatory invariant checker
// (internal/invariant) and exits 1 with the first violating record on
// any breach — the offline audit of what the runner's -invariants
// watchdog enforces online.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"cellfi/internal/invariant"
	"cellfi/internal/stats"
	"cellfi/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "dump":
		err = cmdDump(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "timeline":
		err = cmdTimeline(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "cellfi-trace: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cellfi-trace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cellfi-trace dump [-ap N] [-kind name] [-from ns] [-to ns] file.trace
  cellfi-trace info file.trace
  cellfi-trace timeline [-ap N] file.trace
  cellfi-trace diff a.trace b.trace
  cellfi-trace verify [-deadline d] [-slack d] [-all] file.trace`)
}

// filter is the record predicate dump builds from its flags.
type filter struct {
	ap       int64
	apSet    bool
	kind     trace.Kind
	kindSet  bool
	from, to int64
	toSet    bool
}

func (f *filter) match(r trace.Record) bool {
	if f.apSet && int64(r.AP) != f.ap {
		return false
	}
	if f.kindSet && r.Kind != f.kind {
		return false
	}
	if r.T < f.from {
		return false
	}
	if f.toSet && r.T > f.to {
		return false
	}
	return true
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	ap := fs.Int64("ap", 0, "only records for this AP id (-1 = engine-level records)")
	kind := fs.String("kind", "", "only records of this kind (e.g. im-hop, lease)")
	from := fs.Int64("from", 0, "only records at or after this timestamp (ns)")
	to := fs.Int64("to", 0, "only records at or before this timestamp (ns)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("dump: want exactly one trace file")
	}
	var f filter
	fs.Visit(func(fl *flag.Flag) {
		switch fl.Name {
		case "ap":
			f.ap, f.apSet = *ap, true
		case "from":
			f.from = *from
		case "to":
			f.to, f.toSet = *to, true
		}
	})
	if *kind != "" {
		k, ok := trace.ParseKind(*kind)
		if !ok {
			return fmt.Errorf("dump: unknown kind %q (see cellfi-trace info for names)", *kind)
		}
		f.kind, f.kindSet = k, true
	}
	recs, err := trace.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	shown := 0
	for _, r := range recs {
		if !f.match(r) {
			continue
		}
		fmt.Println(r)
		shown++
	}
	fmt.Fprintf(os.Stderr, "%d/%d records\n", shown, len(recs))
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info: want exactly one trace file")
	}
	path := fs.Arg(0)
	recs, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d records, %d bytes (%.1f bytes/record)\n",
		path, len(recs), fi.Size(), perRecord(fi.Size(), len(recs)))
	if len(recs) == 0 {
		return nil
	}
	minT, maxT := recs[0].T, recs[0].T
	byKind := map[trace.Kind]int{}
	aps := map[int32]bool{}
	for _, r := range recs {
		if r.T < minT {
			minT = r.T
		}
		if r.T > maxT {
			maxT = r.T
		}
		byKind[r.Kind]++
		aps[r.AP] = true
	}
	fmt.Printf("time span: %d .. %d ns (%.3f s)\n", minT, maxT, float64(maxT-minT)/1e9)
	fmt.Printf("APs: %d distinct\n", len(aps))
	kinds := make([]trace.Kind, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Printf("  %-14s %d\n", k.String(), byKind[k])
	}
	return nil
}

func perRecord(size int64, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(size) / float64(n)
}

// cmdTimeline renders interference-management occupancy: for each AP a
// heatmap of subchannel rows × epoch columns where a dark cell means
// the subchannel was held that epoch (from the im-share bitmask), '+'
// marks a hop onto the subchannel and 'x' a hop off it.
func cmdTimeline(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	ap := fs.Int64("ap", -1, "render only this AP (-1 = all APs with IM records)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("timeline: want exactly one trace file")
	}
	recs, err := trace.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	type apHistory struct {
		shares []trace.Record
		hops   []trace.Record
	}
	hist := map[int32]*apHistory{}
	maxSub := 0
	for _, r := range recs {
		if *ap >= 0 && int64(r.AP) != *ap {
			continue
		}
		h := hist[r.AP]
		switch r.Kind {
		case trace.KindIMShare:
			if h == nil {
				h = &apHistory{}
				hist[r.AP] = h
			}
			h.shares = append(h.shares, r)
			for k := 0; k < 63; k++ {
				if r.Args[1]&(1<<k) != 0 && k > maxSub {
					maxSub = k
				}
			}
		case trace.KindIMHop:
			if h == nil {
				h = &apHistory{}
				hist[r.AP] = h
			}
			h.hops = append(h.hops, r)
			for _, a := range []int64{r.Args[0], r.Args[1]} {
				if int(a) > maxSub {
					maxSub = int(a)
				}
			}
		}
	}
	if len(hist) == 0 {
		return fmt.Errorf("timeline: no interference-management records%s",
			apSuffix(*ap))
	}
	ids := make([]int32, 0, len(hist))
	for id := range hist {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		h := hist[id]
		if len(h.shares) == 0 {
			continue
		}
		// One column per im-share epoch; map timestamps to columns so
		// hop marks (stamped with the same epoch clock) land in place.
		col := map[int64]int{}
		for i, r := range h.shares {
			col[r.T] = i
		}
		grid := make([][]float64, maxSub+1)
		for k := range grid {
			grid[k] = make([]float64, len(h.shares))
		}
		for i, r := range h.shares {
			for k := 0; k <= maxSub && k < 63; k++ {
				if r.Args[1]&(1<<k) != 0 {
					grid[k][i] = 1
				}
			}
		}
		marks := map[[2]int]byte{}
		for _, r := range h.hops {
			c, ok := col[r.T]
			if !ok {
				continue // hop outside any recorded epoch (e.g. truncated stream)
			}
			if from := r.Args[0]; from >= 0 && int(from) <= maxSub {
				marks[[2]int{int(from), c}] = 'x'
			}
			if to := r.Args[1]; to >= 0 && int(to) <= maxSub {
				marks[[2]int{int(to), c}] = '+'
			}
		}
		fmt.Printf("AP %d: %d epochs, %d hops (rows = subchannel 0..%d, cols = epochs; + hop in, x hop out)\n",
			id, len(h.shares), len(h.hops), maxSub)
		fmt.Print(stats.Heatmap(grid, marks))
		fmt.Println()
	}
	return nil
}

func apSuffix(ap int64) string {
	if ap < 0 {
		return ""
	}
	return fmt.Sprintf(" for AP %d", ap)
}

// cmdVerify replays a recorded stream through the regulatory
// invariant checker. Exit status: 0 when the stream is clean, 1 on
// the first violation (printed with its stream index) or on a stream
// that cannot be decoded — a torn evidence file is an audit failure,
// not a pass.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	deadline := fs.Duration("deadline", 0, "evacuation deadline (default: the ETSI minute)")
	slack := fs.Duration("slack", 0, "cross-clock slack for the incumbent rule (max per-AP skew)")
	all := fs.Bool("all", false, "print every retained violation, not just the first")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("verify: want exactly one trace file")
	}
	recs, err := trace.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	c := &invariant.Checker{Deadline: *deadline, Slack: *slack}
	c.Feed(recs)
	if v := c.First(); v != nil {
		if *all {
			for _, vi := range c.Violations() {
				fmt.Printf("VIOLATION %s\n", vi)
			}
			if c.Total() > len(c.Violations()) {
				fmt.Printf("... %d further violations not retained\n", c.Total()-len(c.Violations()))
			}
		} else {
			fmt.Printf("VIOLATION %s\n", v)
		}
		return fmt.Errorf("verify: %d record(s) violate the regulatory catalog (first at index %d)",
			c.Total(), v.Index)
	}
	fmt.Printf("OK %d records, 0 violations\n", c.Records())
	return nil
}

// cmdDiff compares two streams and exits nonzero at the first
// divergence, printing its position, timestamps, APs and kinds.
func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: want exactly two trace files")
	}
	a, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	d := trace.Diff(a, b)
	fmt.Println(d.String())
	if !d.Identical {
		os.Exit(1)
	}
	return nil
}
