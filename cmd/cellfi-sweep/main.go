// Command cellfi-sweep runs a grid of large-scale scenarios and emits
// one CSV row per configuration — the bulk-experiment companion to
// cellfi-sim, for plotting coverage/throughput surfaces.
//
// Usage:
//
//	cellfi-sweep [-schemes cellfi,lte,oracle] [-aps 6,8,10,12,14]
//	             [-clients 6] [-trials 3] [-epochs 20] [-seed 1]
//	             [-bw 5] [-starve 0.05]
//
// Output columns: scheme, aps, clients_per_ap, trial, median_mbps,
// mean_mbps, p10_mbps, p90_mbps, starved_frac, total_mbps, hops.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"cellfi/internal/lte"
	"cellfi/internal/netsim"
	"cellfi/internal/stats"
	"cellfi/internal/topo"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseSchemes(s string) ([]netsim.Scheme, error) {
	var out []netsim.Scheme
	for _, f := range strings.Split(s, ",") {
		switch strings.TrimSpace(f) {
		case "cellfi":
			out = append(out, netsim.SchemeCellFi)
		case "lte":
			out = append(out, netsim.SchemeLTE)
		case "oracle":
			out = append(out, netsim.SchemeOracle)
		case "random-hop":
			out = append(out, netsim.SchemeRandomHop)
		case "hybrid":
			out = append(out, netsim.SchemeHybrid)
		default:
			return nil, fmt.Errorf("unknown scheme %q", f)
		}
	}
	return out, nil
}

func main() {
	schemesFlag := flag.String("schemes", "cellfi,lte,oracle", "comma-separated schemes")
	apsFlag := flag.String("aps", "6,8,10,12,14", "comma-separated AP counts")
	clientsFlag := flag.String("clients", "6", "comma-separated clients per AP")
	trials := flag.Int("trials", 3, "independent topologies per configuration")
	epochs := flag.Int("epochs", 20, "IM epochs per run")
	seed := flag.Int64("seed", 1, "base seed")
	bwFlag := flag.Int("bw", 5, "carrier bandwidth in MHz (5, 10, 15, 20)")
	starve := flag.Float64("starve", 0.05, "starvation threshold in Mbps")
	flag.Parse()

	schemes, err := parseSchemes(*schemesFlag)
	if err != nil {
		log.Fatalf("cellfi-sweep: %v", err)
	}
	apsList, err := parseInts(*apsFlag)
	if err != nil {
		log.Fatalf("cellfi-sweep: bad -aps: %v", err)
	}
	clientsList, err := parseInts(*clientsFlag)
	if err != nil {
		log.Fatalf("cellfi-sweep: bad -clients: %v", err)
	}
	var bw lte.Bandwidth
	switch *bwFlag {
	case 5, 10, 15, 20:
		bw = lte.Bandwidth(*bwFlag)
	default:
		log.Fatalf("cellfi-sweep: bandwidth must be 5, 10, 15 or 20 MHz")
	}

	w := os.Stdout
	fmt.Fprintln(w, "scheme,aps,clients_per_ap,trial,median_mbps,mean_mbps,p10_mbps,p90_mbps,starved_frac,total_mbps,hops")
	for _, aps := range apsList {
		for _, clients := range clientsList {
			for tr := 0; tr < *trials; tr++ {
				trialSeed := *seed + int64(tr)*7919 + int64(aps)*131 + int64(clients)*17
				tp := topo.Generate(topo.Paper(aps, clients), trialSeed)
				for _, s := range schemes {
					cfg := netsim.DefaultConfig(s, trialSeed)
					cfg.BW = bw
					n := netsim.New(tp, cfg)
					th := n.Run(*epochs)
					c := stats.NewCDF(th)
					var total float64
					for _, v := range th {
						total += v
					}
					fmt.Fprintf(w, "%s,%d,%d,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.2f,%d\n",
						s, aps, clients, tr,
						c.Median(), c.Mean(), c.Quantile(0.1), c.Quantile(0.9),
						c.FractionBelow(*starve), total, n.Hops)
				}
			}
		}
	}
}
