// Command cellfi-sweep runs a grid of large-scale scenarios and emits
// one CSV row per configuration — the bulk-experiment companion to
// cellfi-sim, for plotting coverage/throughput surfaces.
//
// Usage:
//
//	cellfi-sweep [-schemes cellfi,lte,oracle] [-aps 6,8,10,12,14]
//	             [-clients 6] [-trials 3] [-epochs 20] [-seed 1]
//	             [-bw 5] [-starve 0.05] [-workers N]
//	             [-telemetry report.json]
//	             [-cpuprofile cpu.out] [-memprofile mem.out] [-trace trace.out]
//
// Output columns: scheme, aps, clients_per_ap, trial, median_mbps,
// mean_mbps, p10_mbps, p90_mbps, starved_frac, total_mbps, hops.
//
// Grid points run concurrently on -workers goroutines; each point is
// seeded independently, so the CSV is byte-identical at any worker
// count. -telemetry writes the campaign's per-run wall times and
// simulated-event counts as JSON.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"cellfi/internal/lte"
	"cellfi/internal/netsim"
	"cellfi/internal/profiling"
	"cellfi/internal/runner"
	"cellfi/internal/stats"
	"cellfi/internal/topo"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseSchemes(s string) ([]netsim.Scheme, error) {
	var out []netsim.Scheme
	for _, f := range strings.Split(s, ",") {
		switch strings.TrimSpace(f) {
		case "cellfi":
			out = append(out, netsim.SchemeCellFi)
		case "lte":
			out = append(out, netsim.SchemeLTE)
		case "oracle":
			out = append(out, netsim.SchemeOracle)
		case "random-hop":
			out = append(out, netsim.SchemeRandomHop)
		case "hybrid":
			out = append(out, netsim.SchemeHybrid)
		default:
			return nil, fmt.Errorf("unknown scheme %q", f)
		}
	}
	return out, nil
}

func main() {
	schemesFlag := flag.String("schemes", "cellfi,lte,oracle", "comma-separated schemes")
	apsFlag := flag.String("aps", "6,8,10,12,14", "comma-separated AP counts")
	clientsFlag := flag.String("clients", "6", "comma-separated clients per AP")
	trials := flag.Int("trials", 3, "independent topologies per configuration")
	epochs := flag.Int("epochs", 20, "IM epochs per run")
	seed := flag.Int64("seed", 1, "base seed")
	bwFlag := flag.Int("bw", 5, "carrier bandwidth in MHz (5, 10, 15, 20)")
	starve := flag.Float64("starve", 0.05, "starvation threshold in Mbps")
	workers := flag.Int("workers", 0, "concurrent grid points (0 = GOMAXPROCS)")
	telemetry := flag.String("telemetry", "", "write campaign telemetry JSON to this path")
	prof := profiling.AddFlags()
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		log.Fatalf("cellfi-sweep: %v", err)
	}
	defer stopProf()

	schemes, err := parseSchemes(*schemesFlag)
	if err != nil {
		log.Fatalf("cellfi-sweep: %v", err)
	}
	apsList, err := parseInts(*apsFlag)
	if err != nil {
		log.Fatalf("cellfi-sweep: bad -aps: %v", err)
	}
	clientsList, err := parseInts(*clientsFlag)
	if err != nil {
		log.Fatalf("cellfi-sweep: bad -clients: %v", err)
	}
	var bw lte.Bandwidth
	switch *bwFlag {
	case 5, 10, 15, 20:
		bw = lte.Bandwidth(*bwFlag)
	default:
		log.Fatalf("cellfi-sweep: bandwidth must be 5, 10, 15 or 20 MHz")
	}

	// One runner spec per (aps, clients, trial) grid point; each spec
	// runs every scheme on its shared topology and returns the CSV rows
	// for that point. Specs are independently seeded, so the aggregated
	// CSV is identical at any worker count.
	var specs []runner.Spec
	for _, aps := range apsList {
		aps := aps
		for _, clients := range clientsList {
			clients := clients
			for tr := 0; tr < *trials; tr++ {
				tr := tr
				trialSeed := *seed + int64(tr)*7919 + int64(aps)*131 + int64(clients)*17
				specs = append(specs, runner.Spec{
					Label: fmt.Sprintf("aps=%d/clients=%d/trial=%d", aps, clients, tr),
					Seed:  trialSeed,
					Run: func(c *runner.Ctx) (any, error) {
						tp := topo.Generate(topo.Paper(aps, clients), c.Seed())
						var rows []string
						for _, s := range schemes {
							cfg := netsim.DefaultConfig(s, c.Seed())
							cfg.BW = bw
							n := netsim.New(tp, cfg)
							th := n.Run(*epochs)
							c.AddSteps(int64(*epochs))
							cdf := stats.NewCDF(th)
							var total float64
							for _, v := range th {
								total += v
							}
							rows = append(rows, fmt.Sprintf("%s,%d,%d,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.2f,%d",
								s, aps, clients, tr,
								cdf.Median(), cdf.Mean(), cdf.Quantile(0.1), cdf.Quantile(0.9),
								cdf.FractionBelow(*starve), total, n.Hops))
						}
						return rows, nil
					},
				})
			}
		}
	}

	rep := runner.Run(context.Background(), "cellfi-sweep", specs, runner.Options{Workers: *workers})
	rows, err := runner.Values[[]string](rep)
	if err != nil {
		log.Fatalf("cellfi-sweep: %v", err)
	}

	w := os.Stdout
	fmt.Fprintln(w, "scheme,aps,clients_per_ap,trial,median_mbps,mean_mbps,p10_mbps,p90_mbps,starved_frac,total_mbps,hops")
	for _, point := range rows {
		for _, row := range point {
			fmt.Fprintln(w, row)
		}
	}

	if *telemetry != "" {
		if err := rep.WriteJSON(*telemetry); err != nil {
			log.Fatalf("cellfi-sweep: writing telemetry: %v", err)
		}
		fmt.Fprintf(os.Stderr, "cellfi-sweep: %d runs, %d sim events in %.0f ms -> %s\n",
			len(rep.Runs), rep.TotalSimEvents, rep.WallMS, *telemetry)
	}
}
