// Command cellfi-sim runs one large-scale interference-management
// scenario and prints per-client results — the workhorse behind the
// Figure 9 experiments, exposed with knobs.
//
// Usage:
//
//	cellfi-sim [-scheme cellfi|lte|oracle] [-aps 14] [-clients 6]
//	           [-epochs 30] [-seed 1] [-area 2000]
//	           [-no-packing] [-perfect-sensing] [-lambda 10]
//	           [-interference-radius 800]
//	           [-trials 1] [-workers N] [-trace-dir DIR]
//	           [-cpuprofile cpu.out] [-memprofile mem.out] [-trace trace.out]
//
// With -trials > 1 the scenario repeats over independently seeded
// topologies, fanned across -workers goroutines; per-trial summaries
// print in trial order regardless of scheduling.
//
// With -trace-dir set, each trial flight-records its interference-
// management decisions to DIR/run<trial>-trial_<n>.trace; inspect the
// streams with cellfi-trace (dump, timeline, diff).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"

	"cellfi/internal/netsim"
	"cellfi/internal/profiling"
	"cellfi/internal/runner"
	"cellfi/internal/stats"
	"cellfi/internal/topo"
)

func main() {
	scheme := flag.String("scheme", "cellfi", "cellfi, lte or oracle")
	aps := flag.Int("aps", 14, "number of access points")
	clients := flag.Int("clients", 6, "clients per AP")
	epochs := flag.Int("epochs", 30, "1-second IM epochs to simulate")
	seed := flag.Int64("seed", 1, "random seed")
	area := flag.Float64("area", 2000, "area side (m)")
	noPacking := flag.Bool("no-packing", false, "disable the channel re-use heuristic")
	perfect := flag.Bool("perfect-sensing", false, "disable the measured sensing error injection")
	lambda := flag.Float64("lambda", 10, "hopping bucket mean")
	ifRadius := flag.Float64("interference-radius", 0,
		"interference-significance radius (m): truncate interference beyond this range and resolve neighborhoods through the spatial index (0 = exact all-pairs)")
	trials := flag.Int("trials", 1, "independent topologies to run")
	workers := flag.Int("workers", 0, "concurrent trials (0 = GOMAXPROCS)")
	traceDir := flag.String("trace-dir", "", "flight-record each trial into this directory (must exist)")
	invariants := flag.Bool("invariants", false, "attach the online regulatory invariant watchdog to every trial; any violation fails the run")
	prof := profiling.AddFlags()
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		log.Fatalf("cellfi-sim: %v", err)
	}
	defer stopProf()

	var s netsim.Scheme
	switch *scheme {
	case "cellfi":
		s = netsim.SchemeCellFi
	case "lte":
		s = netsim.SchemeLTE
	case "oracle":
		s = netsim.SchemeOracle
	default:
		log.Fatalf("cellfi-sim: unknown scheme %q", *scheme)
	}

	type trialResult struct {
		tp    *topo.Topology
		th    []float64
		hops  int
		alloc [][]int
	}
	var specs []runner.Spec
	for tr := 0; tr < *trials; tr++ {
		tr := tr
		specs = append(specs, runner.Spec{
			Label: fmt.Sprintf("trial=%d", tr),
			Seed:  *seed + int64(tr)*7919,
			Run: func(c *runner.Ctx) (any, error) {
				p := topo.Paper(*aps, *clients)
				p.AreaSide = *area
				tp := topo.Generate(p, c.Seed())
				cfg := netsim.DefaultConfig(s, c.Seed())
				cfg.PackingEnabled = !*noPacking
				cfg.PerfectSensing = *perfect
				cfg.Lambda = *lambda
				if *ifRadius > 0 {
					cfg.InterferenceRadiusM = *ifRadius
					cfg.UseSpatialIndex = true
				}
				cfg.Trace = c.Recorder()

				n := netsim.New(tp, cfg)
				out := trialResult{tp: tp, th: n.Run(*epochs), hops: n.Hops}
				c.AddSteps(int64(*epochs))
				for i := range tp.APs {
					out.alloc = append(out.alloc, n.Allowed(i))
				}
				return out, nil
			},
		})
	}

	rep := runner.Run(context.Background(), "cellfi-sim", specs,
		runner.Options{Workers: *workers, TraceDir: *traceDir, Invariants: *invariants})
	if *invariants {
		for _, r := range rep.Runs {
			if r.InvariantRule != "" {
				log.Fatalf("cellfi-sim: trial %d (%s): invariant %s violated %d time(s), first at record %d: %s",
					r.Index, r.Label, r.InvariantRule, r.InvariantViolations, r.InvariantIndex, r.InvariantRecord)
			}
		}
	}
	results, err := runner.Values[trialResult](rep)
	if err != nil {
		log.Fatalf("cellfi-sim: %v", err)
	}
	if *traceDir != "" {
		for _, r := range rep.Runs {
			fmt.Printf("trace: %s (%d records)\n", r.TracePath, r.TraceRecords)
		}
	}

	for tr, r := range results {
		trialSeed := *seed + int64(tr)*7919
		sorted := append([]float64(nil), r.th...)
		sort.Float64s(sorted)
		cdf := stats.NewCDF(r.th)
		fmt.Printf("scheme=%s aps=%d clients/AP=%d epochs=%d seed=%d\n",
			s, *aps, *clients, *epochs, trialSeed)
		fmt.Printf("per-client throughput (Mbps): min=%.3f p25=%.3f median=%.3f p75=%.3f max=%.3f mean=%.3f\n",
			cdf.Min(), cdf.Quantile(0.25), cdf.Median(), cdf.Quantile(0.75), cdf.Max(), cdf.Mean())
		fmt.Printf("starved (<0.05 Mbps): %.1f%%   total=%.1f Mbps   controller hops=%d\n",
			cdf.FractionBelow(0.05)*100, cdf.Mean()*float64(cdf.Len()), r.hops)

		if s == netsim.SchemeCellFi || s == netsim.SchemeOracle {
			fmt.Println("\nper-cell subchannel allocation:")
			for i := range r.tp.APs {
				fmt.Printf("  cell %2d at %-18s holds %v\n", i, r.tp.APs[i], r.alloc[i])
			}
		}
		if tr < len(results)-1 {
			fmt.Println()
		}
	}
}
