// Command cellfi-ap runs a CellFi access point's control plane against
// a PAWS database: it registers, acquires a TV channel, polls for
// availability, vacates within the regulatory deadline when the channel
// is withdrawn, and reports spectrum use — the live version of the
// Figure 6 experiment.
//
// Usage:
//
//	cellfi-ap [-db http://localhost:8080/paws] [-serial AP-0001]
//	          [-x 0 -y 0] [-height 15] [-poll 1s] [-duration 0]
//
// With -duration 0 it runs until interrupted.
package main

import (
	"flag"
	"log"
	"time"

	"cellfi/internal/core"
	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/paws"
)

func main() {
	db := flag.String("db", "http://localhost:8080/paws", "PAWS database endpoint")
	serial := flag.String("serial", "AP-0001", "device serial number")
	x := flag.Float64("x", 0, "AP x position (m east of the grid origin)")
	y := flag.Float64("y", 0, "AP y position (m north of the grid origin)")
	height := flag.Float64("height", 15, "antenna height (m)")
	poll := flag.Duration("poll", time.Second, "database polling interval")
	duration := flag.Duration("duration", 0, "how long to run (0 = forever)")
	flag.Parse()

	pos := geo.Point{X: *x, Y: *y}
	client := paws.NewClient(*db, *serial)

	if _, err := client.Init(pos); err != nil {
		log.Fatalf("cellfi-ap: INIT failed: %v", err)
	}
	if _, err := client.Register(pos, "cellfi"); err != nil {
		log.Fatalf("cellfi-ap: registration failed: %v", err)
	}
	log.Printf("registered %s with %s", *serial, *db)

	sel := core.NewChannelSelector(client, pos, *height)
	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	for {
		act, err := sel.Refresh(time.Now())
		if err != nil {
			log.Printf("refresh error: %v", err)
		}
		switch act {
		case core.Acquired, core.Switched:
			l := sel.Current()
			log.Printf("%s: channel %d, EARFCN %d, EIRP cap %.0f dBm, lease until %s",
				act, l.Channel, l.EARFCN, l.MaxEIRPdBm, l.Until.Format(time.RFC3339))
			if sib, err := lte.SIB1ForLease(1, l.CenterFreqHz, l.MaxEIRPdBm, lte.BW5MHz); err == nil {
				if raw, err := sib.Marshal(); err == nil {
					log.Printf("broadcasting SIB1 % x (UL EARFCN %d, client cap %d dBm)",
						raw, sib.UplinkEARFCN, sib.MaxTxPowerDBm)
				}
			}
			if err := client.NotifyUse(pos, []paws.FrequencyRange{{
				Channel: l.Channel,
				StartHz: l.CenterFreqHz - 4e6, StopHz: l.CenterFreqHz + 4e6,
				MaxEIRPdBm: l.MaxEIRPdBm,
			}}); err != nil {
				log.Printf("spectrum-use notify failed: %v", err)
			}
		case core.Vacated:
			log.Printf("VACATED: no channel available; radio off (ETSI budget %v)", core.VacateDeadline)
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return
		}
		time.Sleep(*poll)
	}
}
