// Command cellfi-ap runs a CellFi access point's control plane against
// a PAWS database: it registers, acquires a TV channel, polls for
// availability, vacates within the regulatory deadline when the channel
// is withdrawn or the database goes dark, and reports spectrum use —
// the live version of the Figure 6 experiment, hardened for soak runs.
//
// Usage:
//
//	cellfi-ap [-db http://localhost:8080/paws] [-serial AP-0001]
//	          [-x 0 -y 0] [-height 15] [-poll 1s] [-duration 0]
//	          [-startup-retries 5] [-chaos-seed 0] [-chaos-profile off]
//
// With -duration 0 it runs until interrupted. SIGINT/SIGTERM trigger a
// graceful shutdown: the AP vacates and sends a final (empty) spectrum-
// use notification before exiting.
//
// -chaos-profile (mild|heavy|outage) with -chaos-seed wires a
// deterministic fault injector into the database transport, for
// soak-testing the vacate invariant against a live daemon.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cellfi/internal/core"
	"cellfi/internal/faults"
	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/paws"
)

func main() {
	db := flag.String("db", "http://localhost:8080/paws", "PAWS database endpoint")
	serial := flag.String("serial", "AP-0001", "device serial number")
	x := flag.Float64("x", 0, "AP x position (m east of the grid origin)")
	y := flag.Float64("y", 0, "AP y position (m north of the grid origin)")
	height := flag.Float64("height", 15, "antenna height (m)")
	poll := flag.Duration("poll", time.Second, "database polling interval")
	duration := flag.Duration("duration", 0, "how long to run (0 = forever)")
	startupRetries := flag.Int("startup-retries", 5,
		"bounded INIT/registration attempts before giving up")
	chaosSeed := flag.Int64("chaos-seed", 0, "seed for the chaos fault injector")
	chaosProfile := flag.String("chaos-profile", "off",
		fmt.Sprintf("fault-injection profile: off|%s", joinNames()))
	flag.Parse()

	pos := geo.Point{X: *x, Y: *y}
	client := paws.NewClient(*db, *serial)
	client.Retry = paws.DefaultRetry(*chaosSeed)
	client.CallTimeout = 5 * time.Second

	if *chaosProfile != "off" && *chaosProfile != "" {
		prof, ok := faults.ProfileByName(*chaosProfile)
		if !ok {
			log.Fatalf("cellfi-ap: unknown -chaos-profile %q (want off|%s)", *chaosProfile, joinNames())
		}
		inj := faults.NewInjector(nil, faults.NewSeeded(prof, *chaosSeed))
		client.HTTPClient = &http.Client{Transport: inj, Timeout: 10 * time.Second}
		log.Printf("chaos: injecting %q faults (seed %d) into the database transport",
			prof.Name, *chaosSeed)
	}

	// SIGINT and SIGTERM are identical: containerized deployments send
	// SIGTERM on `docker stop` / pod eviction and expect the same clean
	// drain an operator's ^C gets. Install the handler before startup so
	// a signal during the (possibly long) registration backoff exits
	// promptly instead of dying to the default handler mid-retry.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	ok, err := startup(client, pos, *startupRetries, sigs)
	if err != nil {
		log.Fatalf("cellfi-ap: %v", err)
	}
	if !ok {
		// Signalled before registration completed: nothing is on the
		// air and nothing was registered, so there is nothing to vacate.
		return
	}
	log.Printf("registered %s with %s", *serial, *db)

	sel := core.NewChannelSelector(client, pos, *height)
	sel.OnTransition = func(tr core.Transition) {
		log.Printf("lease: %s", tr)
	}

	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	ticker := time.NewTicker(*poll)
	defer ticker.Stop()

	// pendingNotify remembers a spectrum-use notification that failed
	// so the next poll tick retries it instead of dropping it forever.
	pendingNotify := false
	for {
		now := time.Now()
		act, err := sel.Refresh(now)
		if err != nil {
			log.Printf("refresh error (%s): %v", paws.Classify(err), err)
		}
		switch act {
		case core.Acquired, core.Switched:
			l := sel.Current()
			log.Printf("%s: channel %d, EARFCN %d, EIRP cap %.0f dBm, lease until %s",
				act, l.Channel, l.EARFCN, l.MaxEIRPdBm, l.Until.Format(time.RFC3339))
			if sib, err := lte.SIB1ForLease(1, l.CenterFreqHz, l.MaxEIRPdBm, lte.BW5MHz); err == nil {
				if raw, err := sib.Marshal(); err == nil {
					log.Printf("broadcasting SIB1 % x (UL EARFCN %d, client cap %d dBm)",
						raw, sib.UplinkEARFCN, sib.MaxTxPowerDBm)
				}
			}
			pendingNotify = true
		case core.Vacated:
			log.Printf("VACATED: radio off (ETSI budget %v, last contact %s)",
				core.VacateDeadline, sel.LastContact().Format(time.RFC3339))
			pendingNotify = false
		}
		if pendingNotify && sel.TransmitAllowed(time.Now()) {
			if err := notifyUse(client, pos, sel.Current()); err != nil {
				if paws.Classify(err) == paws.Transient {
					log.Printf("spectrum-use notify failed, will retry next tick: %v", err)
				} else {
					log.Printf("spectrum-use notify rejected, dropping: %v", err)
					pendingNotify = false
				}
			} else {
				pendingNotify = false
			}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			shutdown(client, pos, sel, sigs, "duration elapsed")
			return
		}
		select {
		case sig := <-sigs:
			shutdown(client, pos, sel, sigs, sig.String())
			return
		case <-ticker.C:
		}
	}
}

// startup performs the INIT handshake and registration with bounded
// retries — a database that is briefly down at boot must not kill the
// AP, but a fatal or regulatory answer must. A SIGINT/SIGTERM during
// the retry backoff returns (false, nil): drain requested before the
// AP ever registered, so the caller just exits.
func startup(client *paws.Client, pos geo.Point, retries int, sigs <-chan os.Signal) (bool, error) {
	if retries < 1 {
		retries = 1
	}
	backoff := time.Second
	for attempt := 1; ; attempt++ {
		err := func() error {
			if _, err := client.Init(pos); err != nil {
				return fmt.Errorf("INIT: %w", err)
			}
			if _, err := client.Register(pos, "cellfi"); err != nil {
				return fmt.Errorf("registration: %w", err)
			}
			return nil
		}()
		if err == nil {
			return true, nil
		}
		if paws.Classify(err) != paws.Transient {
			return false, fmt.Errorf("startup failed (%s): %w", paws.Classify(err), err)
		}
		if attempt >= retries {
			return false, fmt.Errorf("startup failed after %d attempts: %w", attempt, err)
		}
		log.Printf("startup attempt %d/%d failed: %v (retrying in %v)", attempt, retries, err, backoff)
		select {
		case sig := <-sigs:
			log.Printf("%s during startup: exiting before registration", sig)
			return false, nil
		case <-time.After(backoff):
		}
		if backoff < 30*time.Second {
			backoff *= 2
		}
	}
}

// notifyUse reports the current lease's spectrum use.
func notifyUse(client *paws.Client, pos geo.Point, l *core.Lease) error {
	return client.NotifyUse(pos, []paws.FrequencyRange{{
		Channel: l.Channel,
		StartHz: l.CenterFreqHz - 4e6, StopHz: l.CenterFreqHz + 4e6,
		MaxEIRPdBm: l.MaxEIRPdBm,
	}})
}

// shutdown vacates gracefully: radio off, a final empty spectrum-use
// notification (the cessation report), and a stats line for the log.
// A second signal while the cessation notify is in flight forces an
// immediate exit — a drain must never hang on a dead database.
func shutdown(client *paws.Client, pos geo.Point, sel *core.ChannelSelector, sigs <-chan os.Signal, why string) {
	log.Printf("shutting down (%s): vacating", why)
	go func() {
		sig := <-sigs
		log.Printf("second signal (%s) during shutdown: forcing exit", sig)
		os.Exit(1)
	}()
	if err := client.NotifyUse(pos, nil); err != nil {
		log.Printf("final spectrum-use notification failed: %v", err)
	}
	st := sel.Stats()
	log.Printf("lease stats: refreshes=%d failures=%d transitions=%d acquired=%d renewed=%d switched=%d grace=%d vacated=%d final-state=%s",
		st.Refreshes, st.Failures, st.Transitions, st.Acquired, st.Renewed,
		st.Switched, st.GraceEntries, st.Vacated, st.State)
}

func joinNames() string { return strings.Join(faults.ProfileNames(), "|") }
