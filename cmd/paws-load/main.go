// Command paws-load is the open-loop load generator for the PAWS
// spectrum database. It synthesizes a seeded metro of incumbents and
// simulated access points, drives AVAIL_SPECTRUM_REQ traffic through an
// in-process paws.Server (lean mode) or full PAWS clients behind a
// fault injector (-wire), and prints the measured throughput, latency
// quantiles and database counters.
//
// Examples:
//
//	paws-load -clients 100000 -requests 500000
//	paws-load -clients 100000 -requests 500000 -qps 60000 -outages 2s-4s
//	paws-load -wire -clients 2000 -requests 20000 -profile heavy
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"cellfi/internal/faults"
	"cellfi/internal/pawsload"
)

func main() {
	var (
		clients    = flag.Int("clients", 100000, "distinct simulated access points")
		requests   = flag.Int("requests", 500000, "total spectrum queries to issue")
		qps        = flag.Float64("qps", 0, "open-loop target rate (0 = maximum speed)")
		workers    = flag.Int("workers", 0, "driver goroutines (0 = 4x GOMAXPROCS)")
		seed       = flag.Int64("seed", 1, "seed for registry, placement and fault schedules")
		incumbents = flag.Int("incumbents", 160, "incumbents in the synthetic metro registry")
		regionKM   = flag.Float64("region-km", 30, "metro half-width in kilometres")
		noCache    = flag.Bool("no-cache", false, "disable the response cache (measure the raw index path)")
		wire       = flag.Bool("wire", false, "wire mode: full PAWS clients through the fault injector")
		profile    = flag.String("profile", "", "fault profile for -wire (mild, heavy, outage)")
		outages    = flag.String("outages", "", "server outage windows, e.g. \"2s-4s,10s-11s\"")
		jsonOut    = flag.Bool("json", false, "emit the full result as JSON")
	)
	flag.Parse()

	windows, err := faults.ParseWindows(*outages)
	if err != nil {
		log.Fatalf("paws-load: %v", err)
	}
	res, err := pawsload.Run(pawsload.Config{
		Clients:      *clients,
		Requests:     *requests,
		TargetQPS:    *qps,
		Workers:      *workers,
		Seed:         *seed,
		Incumbents:   *incumbents,
		RegionM:      *regionKM * 1000,
		DisableCache: *noCache,
		Wire:         *wire,
		FaultProfile: *profile,
		Outages:      windows,
	})
	if err != nil {
		log.Fatalf("paws-load: %v", err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("requests    %d over %d clients in %.2fs\n", res.Requests, res.Clients, res.Duration)
	fmt.Printf("throughput  %.0f qps sustained (errors %d, late starts %d)\n", res.QPS, res.Errors, res.LateStarts)
	fmt.Printf("latency     p50 %.1fus  p99 %.1fus  mean %.1fus\n",
		float64(res.LatencyP50Ns)/1e3, float64(res.LatencyP99Ns)/1e3, res.LatencyMeanNs/1e3)
	fmt.Printf("cache       hit rate %.1f%% (%d hits, %d boundary hits, %d misses, %d entries)\n",
		100*res.DB.CacheHitRate, res.DB.CacheHits, res.DB.CacheNegHits, res.DB.CacheMisses, res.DB.CacheEntries)
	fmt.Printf("leases      %d granted, %d renewed, %d expired, %d active\n",
		res.DB.LeasesGranted, res.DB.LeasesRenewed, res.DB.LeasesExpired, res.DB.ActiveLeases)
	fmt.Printf("db          %d incumbents, %d rebuilds, dispatch p99 %.1fus\n",
		res.DB.Incumbents, res.DB.Rebuilds, float64(res.DB.LatencyP99Ns)/1e3)
}
