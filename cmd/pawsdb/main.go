// Command pawsdb runs a PAWS (RFC 7545-style) TV-white-space spectrum
// database server over HTTP.
//
// Usage:
//
//	pawsdb [-addr :8080] [-domain EU|US] [-block ch[,ch...]] [-mic ch:minutes]
//	       [-flaky from-to[,from-to...]] [-flaky-status 503]
//	       [-shutdown-timeout 10s]
//
// -block registers permanent TV-station incumbents on the listed
// channels; -mic registers a wireless-microphone event on a channel
// for the given number of minutes starting now (it can repeat).
// The server logs spectrum-use notifications it receives.
//
// -flaky serves scripted outage windows (offsets from process start,
// e.g. "30s-90s,5m-6m"): requests inside a window get -flaky-status
// instead of an answer. Together with cellfi-ap's -chaos-* flags this
// lets a live AP be soak-tested against database outages and proves
// the ETSI vacate budget holds end to end.
//
// Endpoints: /paws (JSON-RPC), /healthz (liveness plus incumbent and
// active-lease gauges), /metrics (the full pawsdb counter snapshot).
// SIGINT/SIGTERM drain in-flight requests for up to -shutdown-timeout
// before the process exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cellfi/internal/faults"
	"cellfi/internal/geo"
	"cellfi/internal/paws"
	"cellfi/internal/spectrum"
)

type micFlags []string

func (m *micFlags) String() string     { return strings.Join(*m, ",") }
func (m *micFlags) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	domain := flag.String("domain", "EU", "regulatory domain: EU or US")
	block := flag.String("block", "", "comma-separated channels with permanent TV incumbents")
	flaky := flag.String("flaky", "", "scripted outage windows as from-to offsets (e.g. 30s-90s,5m-6m)")
	flakyStatus := flag.Int("flaky-status", http.StatusServiceUnavailable, "HTTP status served during outage windows")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "drain budget for in-flight requests on SIGINT/SIGTERM")
	var mics micFlags
	flag.Var(&mics, "mic", "wireless-mic event as ch:minutes (repeatable)")
	flag.Parse()

	dom := spectrum.EU
	if strings.EqualFold(*domain, "US") {
		dom = spectrum.US
	}
	reg := spectrum.NewRegistry(dom)
	origin := geo.Point{}

	if *block != "" {
		for _, f := range strings.Split(*block, ",") {
			ch, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				log.Fatalf("pawsdb: bad -block entry %q: %v", f, err)
			}
			if err := reg.AddIncumbent(spectrum.Incumbent{
				Kind: spectrum.TVStation, Channel: ch,
				Location: origin, ProtectRadius: 1e7, From: time.Now(),
			}); err != nil {
				log.Fatalf("pawsdb: %v", err)
			}
			log.Printf("blocked channel %d (TV station)", ch)
		}
	}
	for _, m := range mics {
		parts := strings.SplitN(m, ":", 2)
		if len(parts) != 2 {
			log.Fatalf("pawsdb: bad -mic %q, want ch:minutes", m)
		}
		ch, err1 := strconv.Atoi(parts[0])
		mins, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			log.Fatalf("pawsdb: bad -mic %q", m)
		}
		if err := reg.AddIncumbent(spectrum.Incumbent{
			Kind: spectrum.WirelessMic, Channel: ch,
			Location: origin, ProtectRadius: 1e7,
			From: time.Now(), To: time.Now().Add(time.Duration(mins) * time.Minute),
		}); err != nil {
			log.Fatalf("pawsdb: %v", err)
		}
		log.Printf("wireless mic on channel %d for %d minutes", ch, mins)
	}

	srv := paws.NewServer(reg)
	db := srv.DB()
	var endpoint http.Handler = srv
	if *flaky != "" {
		windows, err := faults.ParseWindows(*flaky)
		if err != nil {
			log.Fatalf("pawsdb: %v", err)
		}
		endpoint = &faults.FlakyHandler{
			Inner:   srv,
			Windows: windows,
			Start:   time.Now(),
			Status:  *flakyStatus,
		}
		log.Printf("flaky mode: %d outage window(s) %s (HTTP %d)", len(windows), *flaky, *flakyStatus)
	}
	mux := http.NewServeMux()
	mux.Handle("/paws", endpoint)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		occ := db.Leases().Occupancy(now)
		m := db.Snapshot(now)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"incumbents":     reg.IncumbentCount(),
			"active_leases":  occ.Total,
			"snapshot_epoch": db.SnapshotEpoch(),
			"registry_epoch": reg.Epoch(),
			"cache_hit_rate": m.CacheHitRate,
			"lease_shards":   occ,
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(db.Snapshot(time.Now()))
	})

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("PAWS %s database listening on %s (endpoints /paws /healthz /metrics)", dom, *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("pawsdb: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the drain immediately

	log.Printf("shutting down: draining in-flight requests (budget %v)", *shutdownTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("pawsdb: drain incomplete: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("pawsdb: %v", err)
	}
	m := db.Snapshot(time.Now())
	log.Printf("served %d queries (%d notify) — cache hit rate %.1f%%, %d leases granted",
		m.Queries, m.NotifyOK+m.NotifyRejected, 100*m.CacheHitRate, m.LeasesGranted)
}
