// BENCH_sim.json writer: regenerates the committed engine-performance
// baseline when SIM_BENCH_OUT is set (see `make BENCH_sim.json`). It
// lives at the repo root so it can benchmark the sim event core and the
// Wi-Fi/LTE hot loops that sit on top of it in one artifact.
package cellfi_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/propagation"
	"cellfi/internal/sim"
	"cellfi/internal/wifi"
)

// baselineEventsPerSec is engine_events_per_sec from the committed
// BENCH_runner.json, measured on the pre-rewrite engine by the PR 1
// campaign (TotalSimEvents / summed run wall time): heap-allocated
// *Event per Schedule, container/heap boxing, O(n) Pending.
const baselineEventsPerSec = 12661001.198343981

// prevLTESubframeNsPerOp is lte_subframe ns_per_op from the committed
// BENCH_sim.json before the allocation-free domain rewrite (map-based
// Allocation, per-subframe float SINR->CQI->TBS chain, per-report CQI
// slices). The rewrite must hold a >= 3x speedup over it.
const prevLTESubframeNsPerOp = 20851.584071243393

// benchResult captures one benchmark's numbers for the artifact.
type benchResult struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

func toResult(r testing.BenchmarkResult) benchResult {
	out := benchResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if out.NsPerOp > 0 {
		out.EventsPerSec = 1e9 / out.NsPerOp
	}
	return out
}

// simBenchArtifact is the schema of BENCH_sim.json. The baseline block
// carries the pre-rewrite numbers so the speedup stays legible after
// the old code is gone; the engine blocks measure the slot-array event
// core; csma_slot_loop_ms and lte_subframe blocks track the protocol
// hot paths per unit of virtual time (one op = 1 ms / one subframe).
type simBenchArtifact struct {
	Generated   time.Time `json:"generated"`
	GoMaxProcs  int       `json:"go_max_procs"`
	NumCPU      int       `json:"num_cpu"`
	GoVersion   string    `json:"go_version"`
	Description string    `json:"description"`

	BaselineEventsPerSec float64 `json:"baseline_events_per_sec"`
	BaselineSource       string  `json:"baseline_source"`

	// EngineEventsPerSec is the headline number: pure Schedule+fire
	// dispatch on a depth-1 chain (the same queue shape the baseline
	// campaign measured). SpeedupVsBaseline divides it by the baseline.
	EngineEventsPerSec float64 `json:"engine_events_per_sec"`
	SpeedupVsBaseline  float64 `json:"speedup_vs_baseline"`

	// Engine paths, all measured with -benchmem semantics.
	ScheduleFire   benchResult `json:"schedule_fire"`
	Fan64Dispatch  benchResult `json:"fan64_dispatch"`
	ScheduleCancel benchResult `json:"schedule_cancel"`
	TickerPeriod   benchResult `json:"ticker_period"`

	// Protocol hot loops above the engine. One op simulates 1 ms of a
	// two-BSS 802.11af contention domain (CSMA) or one TDD subframe of
	// a 4-UE cell with an interferer (LTE), both on cached link gains.
	// All three domain loops must measure 0 allocs/op: the scratch-
	// reuse contract (lte.AllocScratch, pooled wifi transmissions,
	// per-link rx-power memo) is enforced here, not just in-package.
	CSMASlotLoopMS  benchResult `json:"csma_slot_loop_ms"`
	LTESubframe     benchResult `json:"lte_subframe"`
	LTESchedulerOp  benchResult `json:"lte_scheduler_allocate"`
	LinkLossCached  benchResult `json:"link_loss_cached"`
	LinkLossModeled benchResult `json:"link_loss_modeled"`

	// PrevLTESubframeNsPerOp pins the pre-rewrite lte_subframe cost so
	// the speedup ratio stays legible after the old code is gone.
	PrevLTESubframeNsPerOp   float64 `json:"prev_lte_subframe_ns_per_op"`
	LTESubframeSpeedupVsPrev float64 `json:"lte_subframe_speedup_vs_prev"`
}

// The closures below mirror the in-package benchmarks
// (internal/sim/bench_test.go, internal/wifi/bench_test.go,
// internal/lte/bench_test.go) using only exported API, since test
// functions are not importable across packages.

func benchScheduleFire(b *testing.B) {
	e := sim.NewEngine(1)
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < b.N {
			e.After(time.Microsecond, tick)
		}
	}
	e.After(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	e.RunAll()
}

func benchFan64(b *testing.B) {
	const fan = 64
	e := sim.NewEngine(1)
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < b.N {
			e.After(time.Millisecond, tick)
		}
	}
	for i := 0; i < fan && i < b.N; i++ {
		e.After(time.Duration(i)*time.Microsecond, tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.RunAll()
}

func benchScheduleCancel(b *testing.B) {
	e := sim.NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(e.Now()+time.Duration(i%97)*time.Microsecond, fn)
		if i%2 == 0 {
			ev.Cancel()
		}
		if e.Pending() > 1024 {
			e.RunAll()
		}
	}
	e.RunAll()
}

func benchTicker(b *testing.B) {
	e := sim.NewEngine(1)
	n := 0
	e.Every(time.Millisecond, func() { n++ })
	b.ReportAllocs()
	b.ResetTimer()
	horizon := sim.Time(0)
	for i := 0; i < b.N; i++ {
		horizon += time.Millisecond
		e.Run(horizon)
	}
}

func benchCSMASlotLoop(b *testing.B) {
	eng := sim.NewEngine(1)
	model := propagation.DefaultUrban(1)
	model.ShadowSigmaDB = 0
	n := wifi.NewNetwork(eng, model, wifi.Params11af())
	for i := 0; i < 2; i++ {
		ap := n.AddAP(i, geo.Point{X: float64(i) * 120}, 20)
		for c := 0; c < 2; c++ {
			cl := n.AddClient(100+10*i+c, geo.Point{X: float64(i)*120 + 30 + float64(c)*10}, 20, ap)
			ap.Enqueue(cl, 1<<40)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	horizon := sim.Time(0)
	for i := 0; i < b.N; i++ {
		horizon += time.Millisecond
		eng.Run(horizon)
	}
}

func benchLTESubframe(b *testing.B) {
	eng := sim.NewEngine(1)
	env := lte.NewEnvironment(1)
	cell := &lte.Cell{
		ID: 1, TxPowerDBm: 30,
		BW: lte.BW5MHz, TDD: lte.TDDConfig4, Activity: lte.FullBuffer,
	}
	interferer := &lte.Cell{
		ID: 2, Pos: geo.Point{X: 900}, TxPowerDBm: 30,
		BW: lte.BW5MHz, TDD: lte.TDDConfig4, Activity: lte.FullBuffer,
	}
	var clients []*lte.Client
	for i, d := range []float64{100, 250, 400, 600} {
		clients = append(clients, &lte.Client{ID: 100 + i, Pos: geo.Point{X: d}, TxPowerDBm: 20})
	}
	cs := lte.NewCellSim(eng, env, cell, clients)
	cs.Interferers = []*lte.Cell{interferer}
	cs.Start()
	for _, cl := range clients {
		cs.Backlog(cl.ID, 1<<40)
	}
	b.ReportAllocs()
	b.ResetTimer()
	horizon := sim.Time(0)
	for i := 0; i < b.N; i++ {
		horizon += lte.SubframeDuration
		eng.Run(horizon)
	}
}

func benchLTEScheduler(b *testing.B) {
	bw := lte.BW5MHz
	s := bw.Subchannels()
	allowed := make([]int, s)
	for i := range allowed {
		allowed[i] = i
	}
	ues := make([]*lte.SchedUE, 8)
	for i := range ues {
		cqi := make([]int, s)
		for k := range cqi {
			cqi[k] = 3 + (i+k)%10
		}
		ues[i] = &lte.SchedUE{ID: i, SubbandCQI: cqi}
	}
	pf := &lte.ProportionalFair{}
	var scratch lte.AllocScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range ues {
			u.BacklogBits = 1 << 30
		}
		pf.Allocate(&scratch, bw, allowed, ues)
	}
}

func benchLinkLoss(cached bool) func(b *testing.B) {
	return func(b *testing.B) {
		m := propagation.DefaultUrban(1)
		c := propagation.NewLinkCache(m, 2)
		tx, rx := geo.Point{}, geo.Point{X: 300}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if cached {
				c.LossDB(0, 1, tx, rx)
			} else {
				m.LinkLossDB(tx, rx)
			}
		}
	}
}

// TestEngineBenchArtifact regenerates BENCH_sim.json when SIM_BENCH_OUT
// is set. It fails if the Schedule+fire or Ticker paths allocate, or if
// dispatch throughput falls below 2x the committed pre-rewrite
// baseline.
func TestEngineBenchArtifact(t *testing.T) {
	out := os.Getenv("SIM_BENCH_OUT")
	if out == "" {
		t.Skip("set SIM_BENCH_OUT to write BENCH_sim.json")
	}

	art := simBenchArtifact{
		Generated:  time.Now().UTC(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Description: "sim.Engine event-core benchmarks: slot-array 4-ary min-heap with " +
			"free-list recycling and generation-stamped handles. schedule_fire is one " +
			"self-rescheduling chain (depth-1 heap, pure Schedule+fire cost); " +
			"fan64_dispatch keeps 64 chains pending; schedule_cancel exercises the " +
			"heap-remove path; ticker_period is the in-place periodic reschedule. " +
			"csma_slot_loop_ms simulates 1 ms of a two-BSS 802.11af contention domain " +
			"per op; lte_subframe simulates one TDD subframe of a 4-UE cell with an " +
			"interferer per op, both on cached link gains (link_loss_cached vs " +
			"link_loss_modeled shows the cache win). Engine paths and all three " +
			"domain hot loops (csma_slot_loop_ms, lte_subframe, " +
			"lte_scheduler_allocate) must run at 0 amortized allocs/op: schedulers " +
			"write into a caller-owned lte.AllocScratch (dense sc->UE and served " +
			"slices, Reset per subframe, deterministic index order), the " +
			"SINR->CQI->MCS->TBS chain reads init-time lookup tables, rx powers are " +
			"memoized per (link, subchannel) fading block, and wifi frame records " +
			"are pooled with pre-bound exchange handlers. lte_subframe must hold " +
			">= 3x over prev_lte_subframe_ns_per_op (the committed pre-rewrite cost).",
		BaselineEventsPerSec: baselineEventsPerSec,
		BaselineSource: "BENCH_runner.json engine_events_per_sec (pre-rewrite engine: " +
			"heap-allocated *Event per Schedule, container/heap, O(n) Pending)",
		ScheduleFire:    toResult(testing.Benchmark(benchScheduleFire)),
		Fan64Dispatch:   toResult(testing.Benchmark(benchFan64)),
		ScheduleCancel:  toResult(testing.Benchmark(benchScheduleCancel)),
		TickerPeriod:    toResult(testing.Benchmark(benchTicker)),
		CSMASlotLoopMS:  toResult(testing.Benchmark(benchCSMASlotLoop)),
		LTESubframe:     toResult(testing.Benchmark(benchLTESubframe)),
		LTESchedulerOp:  toResult(testing.Benchmark(benchLTEScheduler)),
		LinkLossCached:  toResult(testing.Benchmark(benchLinkLoss(true))),
		LinkLossModeled: toResult(testing.Benchmark(benchLinkLoss(false))),
	}
	art.EngineEventsPerSec = art.ScheduleFire.EventsPerSec
	art.SpeedupVsBaseline = art.EngineEventsPerSec / baselineEventsPerSec
	art.PrevLTESubframeNsPerOp = prevLTESubframeNsPerOp
	if art.LTESubframe.NsPerOp > 0 {
		art.LTESubframeSpeedupVsPrev = prevLTESubframeNsPerOp / art.LTESubframe.NsPerOp
	}

	if art.ScheduleFire.AllocsPerOp != 0 {
		t.Errorf("Schedule+fire allocates %d allocs/op, want 0", art.ScheduleFire.AllocsPerOp)
	}
	if art.TickerPeriod.AllocsPerOp != 0 {
		t.Errorf("Ticker period allocates %d allocs/op, want 0", art.TickerPeriod.AllocsPerOp)
	}
	if art.SpeedupVsBaseline < 2 {
		t.Errorf("engine dispatch %.0f events/sec is %.2fx baseline %.0f, want >= 2x",
			art.EngineEventsPerSec, art.SpeedupVsBaseline, baselineEventsPerSec)
	}
	if art.CSMASlotLoopMS.AllocsPerOp != 0 {
		t.Errorf("CSMA slot loop allocates %d allocs/op, want 0", art.CSMASlotLoopMS.AllocsPerOp)
	}
	if art.LTESubframe.AllocsPerOp != 0 {
		t.Errorf("LTE subframe loop allocates %d allocs/op, want 0", art.LTESubframe.AllocsPerOp)
	}
	if art.LTESchedulerOp.AllocsPerOp != 0 {
		t.Errorf("LTE scheduler allocates %d allocs/op, want 0", art.LTESchedulerOp.AllocsPerOp)
	}
	if art.LTESubframeSpeedupVsPrev < 3 {
		t.Errorf("lte_subframe %.0f ns/op is %.2fx the pre-rewrite %.0f ns/op, want >= 3x",
			art.LTESubframe.NsPerOp, art.LTESubframeSpeedupVsPrev, prevLTESubframeNsPerOp)
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.1fM events/sec (%.1fx baseline)", out,
		art.EngineEventsPerSec/1e6, art.SpeedupVsBaseline)
}
