// Package cellfi's root benchmark harness: one testing.B benchmark per
// table and figure of the paper. Each benchmark runs the corresponding
// experiment in quick mode, so `go test -bench=. -benchmem` regenerates
// a reduced version of the entire evaluation; `go run ./cmd/experiments`
// produces the full-scale numbers recorded in EXPERIMENTS.md.
package cellfi_test

import (
	"testing"

	"cellfi/internal/experiments"
)

// benchExperiment runs one registered experiment per iteration and
// fails the benchmark if the experiment degenerates.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	run, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	for i := 0; i < b.N; i++ {
		res := run(int64(i)+1, true)
		if len(res.Tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

func BenchmarkTable1Properties(b *testing.B)     { benchExperiment(b, "table1") }
func BenchmarkFigure1DriveTest(b *testing.B)     { benchExperiment(b, "fig1") }
func BenchmarkFigure2WiFiMAC(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFigure6Database(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFigure7Interference(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFigure8CQIDetector(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkPRACHDetector(b *testing.B)        { benchExperiment(b, "prach") }
func BenchmarkFigure9aCoverage(b *testing.B)     { benchExperiment(b, "fig9a") }
func BenchmarkFigure9bThroughput(b *testing.B)   { benchExperiment(b, "fig9b") }
func BenchmarkFigure9cPageLoads(b *testing.B)    { benchExperiment(b, "fig9c") }
func BenchmarkTheorem1Convergence(b *testing.B)  { benchExperiment(b, "theorem1") }
func BenchmarkChannelReuseAblation(b *testing.B) { benchExperiment(b, "reuse") }
func BenchmarkLambdaAblation(b *testing.B)       { benchExperiment(b, "lambda") }
func BenchmarkSensingAblation(b *testing.B)      { benchExperiment(b, "sensing") }

func BenchmarkHoppingBaseline(b *testing.B)      { benchExperiment(b, "hopping") }
func BenchmarkHybridExtension(b *testing.B)      { benchExperiment(b, "hybrid") }
func BenchmarkSchedulerAblation(b *testing.B)    { benchExperiment(b, "sched") }
func BenchmarkUplinkExtension(b *testing.B)      { benchExperiment(b, "uplink") }
func BenchmarkAggregationExtension(b *testing.B) { benchExperiment(b, "aggregation") }
func BenchmarkMobilityExtension(b *testing.B)    { benchExperiment(b, "mobility") }
