// Package oracle implements the centralized, oracle-based subchannel
// allocation CellFi is compared against in Figure 9(b) — a stand-in for
// FERMI [20]: a controller with perfect knowledge of the interference
// graph computes a conflict-free allocation meeting per-AP demands,
// scaling demands down max-min fairly when the graph cannot fit them.
package oracle

import (
	"cellfi/internal/netgraph"
)

// Allocate computes a conflict-free subchannel assignment on the true
// interference graph g with m subchannels. Demands are taken from
// g.Demand; when some neighbourhood over-subscribes the channel, all
// demands in the graph are scaled down proportionally (preserving at
// least one subchannel per non-zero demand) until the greedy colouring
// succeeds. It returns the assignment and the effective demands used.
func Allocate(g *netgraph.Graph, m int) (netgraph.Assignment, []int) {
	n := g.Len()
	orig := make([]int, n)
	copy(orig, g.Demand)
	defer copy(g.Demand, orig) // leave the caller's graph untouched

	scale := 1.0
	for iter := 0; iter < 64; iter++ {
		for v := 0; v < n; v++ {
			d := int(float64(orig[v]) * scale)
			if orig[v] > 0 && d < 1 {
				d = 1
			}
			if d > m {
				d = m
			}
			g.Demand[v] = d
		}
		if a, ok := g.GreedyColor(m); ok {
			eff := make([]int, n)
			copy(eff, g.Demand)
			return a, eff
		}
		scale *= 0.85
	}
	// Last resort: one subchannel per demanding vertex (feasible
	// whenever m exceeds the maximum degree); if even that fails,
	// shed the highest-degree demanding vertices until it colours.
	for v := 0; v < n; v++ {
		if orig[v] > 0 {
			g.Demand[v] = 1
		} else {
			g.Demand[v] = 0
		}
	}
	for {
		if a, ok := g.GreedyColor(m); ok {
			eff := make([]int, n)
			copy(eff, g.Demand)
			return a, eff
		}
		shed, deg := -1, -1
		for v := 0; v < n; v++ {
			if g.Demand[v] > 0 && g.Degree(v) > deg {
				shed, deg = v, g.Degree(v)
			}
		}
		if shed < 0 {
			a, _ := g.GreedyColor(m)
			eff := make([]int, n)
			return a, eff
		}
		g.Demand[shed] = 0
	}
}

// TotalAllocated sums the subchannels granted across vertices.
func TotalAllocated(a netgraph.Assignment) int {
	total := 0
	for _, s := range a {
		total += len(s)
	}
	return total
}
