package oracle

import (
	"math/rand"
	"testing"

	"cellfi/internal/netgraph"
)

func TestAllocateFeasibleDemandsMet(t *testing.T) {
	g := netgraph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.Demand = []int{4, 4, 4}
	a, eff := Allocate(g, 13)
	for v, want := range []int{4, 4, 4} {
		if eff[v] != want || len(a[v]) != want {
			t.Fatalf("vertex %d got %d subchannels, want %d", v, len(a[v]), want)
		}
	}
	g.Demand = []int{4, 4, 4}
	if err := g.Valid(a, 13); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateScalesDownOversubscription(t *testing.T) {
	// A 3-clique demanding 8+8+8 on 13 subchannels must be scaled.
	g := netgraph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.Demand = []int{8, 8, 8}
	a, eff := Allocate(g, 13)
	total := 0
	for v := range eff {
		if eff[v] < 1 {
			t.Fatalf("vertex %d starved by the oracle", v)
		}
		if len(a[v]) != eff[v] {
			t.Fatalf("assignment size mismatch at %d", v)
		}
		total += eff[v]
	}
	if total > 13 {
		t.Fatalf("clique allocated %d > 13 subchannels", total)
	}
	// Proportional scaling keeps symmetry.
	if eff[0] != eff[1] || eff[1] != eff[2] {
		t.Fatalf("symmetric demands scaled asymmetrically: %v", eff)
	}
	// Conflict-free by construction.
	g.Demand = eff
	if err := g.Valid(a, 13); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatePreservesCallerDemands(t *testing.T) {
	g := netgraph.New(2)
	g.AddEdge(0, 1)
	g.Demand = []int{10, 10}
	Allocate(g, 13)
	if g.Demand[0] != 10 || g.Demand[1] != 10 {
		t.Fatalf("caller demands mutated: %v", g.Demand)
	}
}

func TestAllocateIndependentVerticesGetEverything(t *testing.T) {
	g := netgraph.New(4) // no edges: everyone can take the whole channel
	g.Demand = []int{13, 13, 13, 13}
	a, eff := Allocate(g, 13)
	for v := range eff {
		if eff[v] != 13 || len(a[v]) != 13 {
			t.Fatalf("isolated vertex %d limited to %d", v, eff[v])
		}
	}
}

func TestAllocateZeroDemands(t *testing.T) {
	g := netgraph.New(3)
	g.AddEdge(0, 1)
	a, eff := Allocate(g, 13)
	for v := range eff {
		if eff[v] != 0 || len(a[v]) != 0 {
			t.Fatalf("zero-demand vertex %d allocated %d", v, len(a[v]))
		}
	}
	if TotalAllocated(a) != 0 {
		t.Fatal("total should be zero")
	}
}

func TestAllocateRandomGraphsAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(14)
		g := netgraph.New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					g.AddEdge(i, j)
				}
			}
		}
		for v := 0; v < n; v++ {
			g.Demand[v] = rng.Intn(10)
		}
		a, eff := Allocate(g, 13)
		g.Demand = eff
		if err := g.Valid(a, 13); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Max-min flavour: nobody with demand ends at zero unless the
		// clique genuinely cannot fit everyone one subchannel.
		for v := range eff {
			if g.Demand[v] == 0 && eff[v] == 0 {
				continue
			}
		}
	}
}

func TestTotalAllocated(t *testing.T) {
	a := netgraph.Assignment{{1, 2}, {}, {3}}
	if TotalAllocated(a) != 3 {
		t.Fatal("total wrong")
	}
}

func BenchmarkAllocate14APs(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := netgraph.New(14)
	for i := 0; i < 14; i++ {
		for j := i + 1; j < 14; j++ {
			if rng.Float64() < 0.35 {
				g.AddEdge(i, j)
			}
		}
	}
	for v := range g.Demand {
		g.Demand[v] = 1 + rng.Intn(5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Allocate(g, 13)
	}
}
