package chaos

import (
	"context"
	"testing"
	"time"

	"cellfi/internal/faults"
	"cellfi/internal/runner"
	"cellfi/internal/trace"
)

func outageBoth() []faults.Window {
	return []faults.Window{{From: 60 * time.Second, To: 220 * time.Second}}
}

type capture struct {
	recs []trace.Record
}

func (c *capture) Record(r trace.Record) { c.recs = append(c.recs, r) }

// TestMatrixAsCampaign runs a slice of the chaos matrix through the
// runner with the campaign-level invariant watchdog on, proving the
// two layers compose: the world's stream reaches the runner's checker
// and clean worlds yield clean runs.
func TestMatrixAsCampaign(t *testing.T) {
	specs := Matrix(8, Config{Steps: 120, MaxSkew: time.Second})
	rep := runner.Run(context.Background(), "chaos-matrix", specs,
		runner.Options{Invariants: true})
	if err := rep.Err(); err != nil {
		t.Fatalf("campaign: %v", err)
	}
	results, err := runner.Values[Result](rep)
	if err != nil {
		t.Fatal(err)
	}
	var tx int64
	for _, r := range results {
		tx += r.TxRecords
	}
	if tx == 0 {
		t.Fatal("campaign worlds never transmitted")
	}
	for i := range rep.Runs {
		if rep.Runs[i].InvariantViolations != 0 {
			t.Fatalf("run %d: campaign checker flagged %d violations (%s)",
				i, rep.Runs[i].InvariantViolations, rep.Runs[i].InvariantRecord)
		}
		if rep.Runs[i].InvariantRecords == 0 {
			t.Fatalf("run %d: campaign checker saw no records — stream not wired", i)
		}
	}
}

// TestBrokenGateFailsCampaign: the same broken-selector world, run as
// a campaign member, must land as a failed run whose telemetry names
// the rule and the first violating record.
func TestBrokenGateFailsCampaign(t *testing.T) {
	cfg := Config{
		Seed:        1,
		APs:         3,
		Steps:       260,
		BreakVacate: true,
	}
	cfg.PrimaryOutages = outageBoth()
	cfg.ReplicaOutages = outageBoth()
	rep := runner.Run(context.Background(), "chaos-broken", []runner.Spec{Spec("broken", cfg)},
		runner.Options{Invariants: true})
	run := rep.Runs[0]
	if run.Status != runner.StatusFailed {
		t.Fatalf("broken world run status = %q, want failed", run.Status)
	}
	if run.InvariantRule != "tx-past-vacate-budget" {
		t.Fatalf("telemetry rule = %q, want tx-past-vacate-budget (err: %s)", run.InvariantRule, run.Err)
	}
	if run.InvariantRecord == "" || run.InvariantViolations == 0 {
		t.Fatalf("telemetry missing violation details: %+v", run)
	}
}
