package chaos

import (
	"encoding/json"
	"os"
	"strconv"
	"testing"
	"time"

	"cellfi/internal/faults"
	"cellfi/internal/invariant"
)

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestChaosMatrix is the acceptance soak: seeded chaos worlds across
// the crash/restart × incumbent-storm × DB-failover × clock-skew
// matrix (the seed's low bits cover all 16 cells every 16 seeds), the
// online invariant watchdog attached to every one, zero violations.
//
// Scale knobs (for `make chaos-soak`):
//
//	CHAOS_WORLD_SEEDS — number of worlds (default 48; soak uses 100)
//	CHAOS_WORLD_STEPS — virtual seconds per world (default 240)
func TestChaosMatrix(t *testing.T) {
	seeds := envInt("CHAOS_WORLD_SEEDS", 48)
	steps := envInt("CHAOS_WORLD_STEPS", 240)
	if testing.Short() {
		seeds = 16
	}
	base := Config{Steps: steps, MaxSkew: 2 * time.Second}
	var agg Result
	for seed := 0; seed < seeds; seed++ {
		cfg := FromSeed(int64(seed), base)
		res, err := Run(cfg, nil)
		if err != nil {
			t.Fatalf("seed %d: harness: %v", seed, err)
		}
		if res.First != nil {
			t.Fatalf("seed %d: invariant violation: %v (of %d)", seed, res.First, res.Violations)
		}
		if res.TxRecords == 0 {
			t.Fatalf("seed %d: world never transmitted; nothing was verified", seed)
		}
		if cfg.Crashes && res.Crashes == 0 {
			t.Errorf("seed %d: crash axis on but no crash scheduled", seed)
		}
		if cfg.Storms && res.StormArrivals == 0 {
			t.Errorf("seed %d: storm axis on but no storm scheduled", seed)
		}
		agg.TxRecords += res.TxRecords
		agg.Contacts += res.Contacts
		agg.Crashes += res.Crashes
		agg.Restarts += res.Restarts
		agg.StormArrivals += res.StormArrivals
		agg.StormDeparts += res.StormDeparts
		agg.Failovers += res.Failovers
		agg.Vacates += res.Vacates
		agg.SkewedAPs += res.SkewedAPs
		agg.Records += res.Records
	}
	// The matrix must exercise every axis somewhere — a fleet that
	// never crashed, stormed, failed over or skewed proves nothing.
	if agg.Crashes == 0 || agg.Restarts == 0 {
		t.Errorf("matrix never exercised crash/restart: %+v", agg)
	}
	if agg.StormArrivals == 0 || agg.StormDeparts == 0 {
		t.Errorf("matrix never exercised incumbent storms: %+v", agg)
	}
	if agg.Failovers == 0 {
		t.Errorf("matrix never exercised DB failover: %+v", agg)
	}
	if agg.SkewedAPs == 0 {
		t.Errorf("matrix never exercised clock skew: %+v", agg)
	}
	if agg.Vacates == 0 {
		t.Errorf("matrix never forced a vacate: %+v", agg)
	}
	if agg.Contacts == 0 || agg.Records == 0 {
		t.Fatalf("matrix was vacuous: %+v", agg)
	}
	t.Logf("matrix: %d worlds, tx=%d contacts=%d crashes=%d restarts=%d storms=%d/%d failovers=%d vacates=%d records=%d",
		seeds, agg.TxRecords, agg.Contacts, agg.Crashes, agg.Restarts,
		agg.StormArrivals, agg.StormDeparts, agg.Failovers, agg.Vacates, agg.Records)
}

// TestWatchdogCatchesBrokenGate is the non-vacuity proof the issue
// demands: with the selector's vacate fail-safe deliberately disabled
// on AP 0 and both database endpoints dead for well over the ETSI
// minute, the watchdog must flag tx-past-vacate-budget and identify
// the first violating record.
func TestWatchdogCatchesBrokenGate(t *testing.T) {
	outage := []faults.Window{{From: 60 * time.Second, To: 220 * time.Second}}
	cfg := Config{
		Seed:           1,
		APs:            3,
		Steps:          260,
		BreakVacate:    true,
		PrimaryOutages: outage,
		ReplicaOutages: outage,
	}
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	if res.First == nil {
		t.Fatalf("broken gate not caught: %+v", res)
	}
	v := res.First
	if v.Rule != invariant.RuleTxPastVacateBudget {
		t.Fatalf("rule = %q, want %q (violation: %v)", v.Rule, invariant.RuleTxPastVacateBudget, v)
	}
	if v.Rec.AP != 0 {
		t.Fatalf("violating AP = %d, want 0 (the broken one); violation: %v", v.Rec.AP, v)
	}
	if v.Index <= 0 || v.Index >= res.Records {
		t.Fatalf("first violating record index %d out of stream [0,%d)", v.Index, res.Records)
	}
	if res.Err() == nil {
		t.Fatal("Result.Err() nil despite violation")
	}
	// The healthy APs must have vacated cleanly: every violation in
	// the stream belongs to the broken AP.
	for _, w := range []int32{1, 2} {
		if v.Rec.AP == w {
			t.Fatalf("healthy AP %d flagged", w)
		}
	}
}

// TestWatchdogIgnoresHealthyFleetUnderSameOutage is the control for
// the broken-gate proof: the identical double outage with the
// fail-safe intact yields zero violations — so the catch above is the
// broken gate, not the outage.
func TestWatchdogIgnoresHealthyFleetUnderSameOutage(t *testing.T) {
	outage := []faults.Window{{From: 60 * time.Second, To: 220 * time.Second}}
	cfg := Config{
		Seed:           1,
		APs:            3,
		Steps:          260,
		PrimaryOutages: outage,
		ReplicaOutages: outage,
	}
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	if res.First != nil {
		t.Fatalf("healthy fleet flagged: %v", res.First)
	}
	if res.Vacates == 0 {
		t.Fatalf("outage did not force vacates: %+v", res)
	}
	if res.TxRecords == 0 {
		t.Fatalf("fleet never transmitted: %+v", res)
	}
}

// TestChaosDeterminism: the same seed yields the byte-identical
// result, including the trace stream the watchdog consumed.
func TestChaosDeterminism(t *testing.T) {
	cfg := FromSeed(7, Config{Steps: 200, MaxSkew: 2 * time.Second})
	var a, b capture
	ra, err := Run(cfg, &a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(cfg, &b)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(ra)
	jb, _ := json.Marshal(rb)
	if string(ja) != string(jb) {
		t.Fatalf("results diverged:\n--- A\n%s\n--- B\n%s", ja, jb)
	}
	if len(a.recs) != len(b.recs) {
		t.Fatalf("stream lengths diverged: %d vs %d", len(a.recs), len(b.recs))
	}
	for i := range a.recs {
		if a.recs[i] != b.recs[i] {
			t.Fatalf("stream diverged at record %d: %v vs %v", i, a.recs[i], b.recs[i])
		}
	}
	if len(a.recs) == 0 {
		t.Fatal("world emitted no records")
	}
}
