package chaos

import (
	"strconv"

	"cellfi/internal/runner"
)

// Spec adapts a chaos world to a runner.Spec, making chaos scenarios
// first-class campaign members: the run's seed overrides cfg.Seed,
// the world's trace stream lands in the campaign's trace capture (and
// its invariant checker, with -invariants on), and the watchdog
// verdict fails the run.
func Spec(label string, cfg Config) runner.Spec {
	return runner.Spec{
		Label: label,
		Seed:  cfg.Seed,
		Run: func(c *runner.Ctx) (any, error) {
			cfg := cfg
			cfg.Seed = c.Seed()
			res, err := Run(cfg, c.Recorder())
			if err != nil {
				return nil, err
			}
			c.AddSteps(int64(res.Steps) * int64(res.APs))
			if verr := res.Err(); verr != nil {
				return res, verr
			}
			return res, nil
		},
	}
}

// Matrix builds the 4-axis chaos campaign the acceptance soak runs:
// one Spec per seed, with the crash / storm / failover / skew axes
// switched by the seed's low bits so the fleet covers all 16
// combinations every 16 seeds.
func Matrix(seeds int, base Config) []runner.Spec {
	specs := make([]runner.Spec, 0, seeds)
	for seed := 0; seed < seeds; seed++ {
		cfg := FromSeed(int64(seed), base)
		specs = append(specs, Spec(label(cfg), cfg))
	}
	return specs
}

// FromSeed derives one matrix cell: the seed's low bits switch the
// fault axes on a copy of base (brownouts ride along whenever crashes
// or storms are on, so calm cells stay calm).
func FromSeed(seed int64, base Config) Config {
	cfg := base
	cfg.Seed = seed
	cfg.Crashes = seed&1 != 0
	cfg.Storms = seed&2 != 0
	cfg.Failover = seed&4 != 0
	if seed&8 == 0 {
		cfg.MaxSkew = 0
	}
	cfg.Brownouts = cfg.Crashes || cfg.Storms
	return cfg
}

func label(cfg Config) string {
	l := "chaos/seed=" + strconv.FormatInt(cfg.Seed, 10)
	if cfg.Crashes {
		l += "+crash"
	}
	if cfg.Storms {
		l += "+storm"
	}
	if cfg.Failover {
		l += "+failover"
	}
	if cfg.MaxSkew > 0 {
		l += "+skew"
	}
	return l
}
