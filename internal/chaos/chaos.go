// Package chaos is the world-level fault plane: where internal/faults
// perturbs individual HTTP exchanges, chaos perturbs the *scenario* —
// access points crash and restart cold, wireless-mic storms force
// mid-run channel evacuations through spectrum.Registry epoch bumps,
// radios brown out, the PAWS primary dies and the fleet fails over to
// a replica, and per-AP clocks skew. Every schedule is derived
// deterministically from Config.Seed, so a chaos run is as replayable
// as any other scenario in the repo.
//
// A World drives a fleet of real core.ChannelSelector + paws.Client
// stacks against a pawsdb-backed server in virtual time (one step =
// one second), with the online invariant.Checker watching the merged
// flight-recorder stream. APs poll concurrently within a step — the
// database, lease store and cache see real contention under -race —
// while the step barrier keeps the trace feed and registry mutation
// deterministic and race-free.
//
// The non-goal is subtlety: incumbent protection contours cover the
// whole world (every AP on the channel must move), outages hit every
// AP at once, and the broken-gate mode (Config.BreakVacate) exists
// only to prove the watchdog is not vacuously green.
package chaos

import (
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cellfi/internal/core"
	"cellfi/internal/faults"
	"cellfi/internal/geo"
	"cellfi/internal/invariant"
	"cellfi/internal/paws"
	"cellfi/internal/pawsdb"
	"cellfi/internal/spectrum"
	"cellfi/internal/trace"
)

// Virtual endpoint URLs: requests never leave the process (the
// transport routes on host), but the client's failover logic sees an
// ordered two-endpoint list like a real deployment would.
const (
	PrimaryURL = "http://paws-primary.virtual/paws"
	ReplicaURL = "http://paws-replica.virtual/paws"
)

// Config selects the fault axes of one chaos world. The zero value is
// a calm world: APs acquire, renew, and nothing goes wrong.
type Config struct {
	// Seed derives every schedule decision.
	Seed int64
	// APs is the fleet size; <= 0 means 6.
	APs int
	// Steps is the run length in virtual seconds; <= 0 means 240.
	Steps int

	// Crashes enables AP crash/restart events: a crashed AP loses its
	// radio and lease state and reacquires cold after restart.
	Crashes bool
	// Storms enables incumbent pop-up storms: wireless mics appearing
	// on in-use channels (world-covering protection contour) and
	// departing on schedule, each arrival bumping the registry epoch.
	Storms bool
	// Brownouts enables per-AP radio brownout windows during which the
	// AP cannot reach any database endpoint.
	Brownouts bool
	// Failover enables scripted primary-database outages (seed-derived
	// unless PrimaryOutages is set), forcing the fleet onto the
	// replica and back.
	Failover bool
	// MaxSkew bounds per-AP clock skew: each AP's clock runs offset
	// from the world clock by a seed-derived constant in
	// [-MaxSkew, +MaxSkew].
	MaxSkew time.Duration

	// PrimaryOutages / ReplicaOutages override the scripted outage
	// windows (offsets from the world start) of each endpoint.
	// Explicit windows apply even without Failover set.
	PrimaryOutages []faults.Window
	ReplicaOutages []faults.Window

	// LeaseDuration overrides the database lease validity; zero means
	// 90 s, short enough that renewal is always load-bearing.
	LeaseDuration time.Duration

	// BreakVacate disables the regulatory fail-safe on AP 0
	// (core.ChannelSelector.UnsafeIgnoreVacateBudget): under a long
	// enough double outage the AP transmits past its vacate budget and
	// the invariant watchdog MUST flag it. Proof-of-watchdog only.
	BreakVacate bool
}

func (c Config) aps() int {
	if c.APs > 0 {
		return c.APs
	}
	return 6
}

func (c Config) steps() int {
	if c.Steps > 0 {
		return c.Steps
	}
	return 240
}

func (c Config) lease() time.Duration {
	if c.LeaseDuration > 0 {
		return c.LeaseDuration
	}
	return 90 * time.Second
}

// event kinds in a plan, applied at the top of their step in slice
// order (the plan is sorted by step, stable).
const (
	evCrash = iota
	evRestart
	evStormArrive
	evStormDepart
)

type planEvent struct {
	step int
	kind int
	// ap: crashing/restarting AP, or the preferred storm target.
	ap int
	// dur: storm duration in steps (evStormArrive).
	dur int
	// id links a storm's arrival to its departure.
	id int
}

// plan is the fully pre-computed schedule of one world.
type plan struct {
	events   []planEvent
	skew     []time.Duration // per AP
	brownout [][]faults.Window
	primary  []faults.Window
	replica  []faults.Window
}

// buildPlan derives the whole schedule from the seed. All randomness
// is consumed here, before the world starts, so the run itself is
// replay-deterministic.
func buildPlan(cfg Config) plan {
	rng := rand.New(rand.NewSource(cfg.Seed*0x9e3779b9 + 0x1234))
	n, steps := cfg.aps(), cfg.steps()
	p := plan{
		skew:     make([]time.Duration, n),
		brownout: make([][]faults.Window, n),
		primary:  cfg.PrimaryOutages,
		replica:  cfg.ReplicaOutages,
	}
	if cfg.MaxSkew > 0 {
		for i := range p.skew {
			p.skew[i] = time.Duration(rng.Int63n(int64(2*cfg.MaxSkew)+1)) - cfg.MaxSkew
		}
	}
	if cfg.Crashes {
		// At least one AP always crashes (the axis must not be
		// vacuous); the rest crash with probability 1/4.
		victim := rng.Intn(n)
		for ap := 0; ap < n; ap++ {
			if ap != victim && rng.Intn(4) != 0 {
				continue
			}
			at := steps/5 + rng.Intn(maxInt(steps*3/5, 1))
			down := 10 + rng.Intn(31)
			p.events = append(p.events, planEvent{step: at, kind: evCrash, ap: ap})
			if at+down < steps {
				p.events = append(p.events, planEvent{step: at + down, kind: evRestart, ap: ap})
			}
		}
	}
	if cfg.Storms {
		storms := 2 + steps/80
		for s := 0; s < storms; s++ {
			at := 10 + rng.Intn(maxInt(steps-30, 1))
			// Mix durations around the ETSI minute so some storms only
			// clip the channel briefly and others outlive every budget.
			dur := 20 + rng.Intn(140)
			p.events = append(p.events, planEvent{
				step: at, kind: evStormArrive, ap: rng.Intn(n), dur: dur, id: s})
			if at+dur < steps {
				p.events = append(p.events, planEvent{step: at + dur, kind: evStormDepart, id: s})
			}
		}
	}
	if cfg.Brownouts {
		for ap := 0; ap < n; ap++ {
			if rng.Intn(2) != 0 {
				continue
			}
			from := time.Duration(10+rng.Intn(maxInt(steps-40, 1))) * time.Second
			// Durations straddle the ETSI minute: short brownouts ride
			// the grace period, long ones force a budget-expiry vacate
			// followed by cold reacquisition.
			p.brownout[ap] = []faults.Window{{From: from,
				To: from + time.Duration(10+rng.Intn(90))*time.Second}}
		}
	}
	if cfg.Failover && len(p.primary) == 0 {
		// Two primary outages: one short enough for the grace period,
		// one long enough that only failover keeps the fleet on air.
		a := time.Duration(steps/4) * time.Second
		b := time.Duration(steps*5/8) * time.Second
		p.primary = []faults.Window{
			{From: a, To: a + 20*time.Second},
			{From: b, To: b + 100*time.Second},
		}
	}
	sort.SliceStable(p.events, func(i, j int) bool { return p.events[i].step < p.events[j].step })
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Result is the deterministic outcome of one chaos world.
type Result struct {
	Seed  int64 `json:"seed"`
	APs   int   `json:"aps"`
	Steps int   `json:"steps"`

	// TxRecords counts radio-tx evidence records (AP-step pairs on
	// the air); Contacts counts successful lease grants/renewals.
	TxRecords int64 `json:"tx_records"`
	Contacts  int64 `json:"contacts"`

	Crashes        int    `json:"crashes"`
	Restarts       int    `json:"restarts"`
	StormArrivals  int    `json:"storm_arrivals"`
	StormDeparts   int    `json:"storm_departs"`
	Failovers      uint64 `json:"failovers"`
	Vacates        uint64 `json:"vacates"`
	GraceEntries   uint64 `json:"grace_entries"`
	SkewedAPs      int    `json:"skewed_aps"`
	BrownoutAPs    int    `json:"brownout_aps"`
	PrimaryOutages int    `json:"primary_outages"`

	// Records is how many trace records the watchdog consumed;
	// Violations how many it flagged. First is the earliest violation
	// in stream order (nil on a clean run).
	Records    int                  `json:"records"`
	Violations int                  `json:"violations"`
	First      *invariant.Violation `json:"first_violation,omitempty"`
}

// apBuf is the per-AP staging recorder: selectors and clients emit
// into it from their refresh goroutine, and the step barrier drains it
// into the merged stream in AP order. One goroutine writes at a time
// (the AP's own during refresh, the driver during drain), separated by
// the WaitGroup barrier.
type apBuf struct {
	recs []trace.Record
}

func (b *apBuf) Record(r trace.Record) { b.recs = append(b.recs, r) }

// hostRouter routes virtual-endpoint requests to the primary or
// replica handler chain.
type hostRouter struct {
	primary, replica http.RoundTripper
}

func (h hostRouter) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Host == "paws-replica.virtual" {
		return h.replica.RoundTrip(req)
	}
	return h.primary.RoundTrip(req)
}

// brownoutGate drops every exchange while the world clock is inside
// one of the AP's brownout windows — the radio itself is out, so no
// endpoint helps.
type brownoutGate struct {
	inner   http.RoundTripper
	start   time.Time
	now     func() time.Time
	windows []faults.Window
}

func (g *brownoutGate) RoundTrip(req *http.Request) (*http.Response, error) {
	elapsed := g.now().Sub(g.start)
	for _, w := range g.windows {
		if elapsed >= w.From && elapsed < w.To {
			return nil, fmt.Errorf("chaos: radio brownout (%s into run)", elapsed)
		}
	}
	return g.inner.RoundTrip(req)
}

// ap is one fleet member's live stack.
type ap struct {
	sel  *core.ChannelSelector
	cl   *paws.Client
	buf  *apBuf
	loc  geo.Point
	skew time.Duration
	down bool
}

// Run executes one chaos world and returns its result. Every record
// the world emits is fed to the online invariant checker and, when out
// is non-nil, forwarded there too (that is how runner campaigns spill
// chaos traces to disk). Run fails the run — in Result, not by error —
// when the watchdog flags a violation; the error return is reserved
// for harness breakage (registry rejects an incumbent, etc.).
func Run(cfg Config, out trace.Recorder) (Result, error) {
	p := buildPlan(cfg)
	n, steps := cfg.aps(), cfg.steps()
	res := Result{Seed: cfg.Seed, APs: n, Steps: steps,
		PrimaryOutages: len(p.primary)}
	for _, s := range p.skew {
		if s != 0 {
			res.SkewedAPs++
		}
	}
	for _, w := range p.brownout {
		if len(w) > 0 {
			res.BrownoutAPs++
		}
	}

	start := time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC)
	var elapsed atomic.Int64
	vnow := func() time.Time { return start.Add(time.Duration(elapsed.Load())) }

	reg := spectrum.NewRegistry(spectrum.EU)
	reg.LeaseDuration = cfg.lease()
	srv := paws.NewServerWith(pawsdb.New(reg, pawsdb.Options{}))
	srv.Now = vnow

	wrap := func(windows []faults.Window) http.RoundTripper {
		return faults.HandlerTransport{Handler: &faults.FlakyHandler{
			Inner: srv, Windows: windows, Start: start, Now: vnow,
		}}
	}
	router := hostRouter{primary: wrap(p.primary), replica: wrap(p.replica)}

	checker := &invariant.Checker{Slack: cfg.MaxSkew}
	feed := func(r trace.Record) {
		checker.Record(r)
		if out != nil {
			out.Record(r)
		}
	}

	fleet := make([]*ap, n)
	locRNG := rand.New(rand.NewSource(cfg.Seed ^ 0x5ca1ab1e))
	mkAP := func(i int) *ap {
		a := &ap{
			buf: &apBuf{},
			loc: geo.Point{X: locRNG.Float64() * 1000, Y: locRNG.Float64() * 1000},
		}
		if fleet[i] != nil { // restart: keep identity-stable fields
			a.loc, a.skew = fleet[i].loc, fleet[i].skew
		} else {
			a.skew = p.skew[i]
		}
		a.cl = paws.NewClient("", fmt.Sprintf("AP-CHAOS-%d-%03d", cfg.Seed, i))
		a.cl.Endpoints = []string{PrimaryURL, ReplicaURL}
		a.cl.HTTPClient = &http.Client{Transport: &brownoutGate{
			inner: router, start: start, now: vnow, windows: p.brownout[i]}}
		a.cl.Retry = paws.RetryPolicy{
			MaxAttempts: 2,
			Seed:        cfg.Seed<<8 + int64(i) + 1,
			Sleep:       func(time.Duration) {}, // retries are instant in virtual time
		}
		a.sel = core.NewChannelSelector(a.cl, a.loc, 15)
		a.sel.Trace, a.sel.TraceAP = a.buf, int32(i)
		if cfg.BreakVacate && i == 0 {
			a.sel.UnsafeIgnoreVacateBudget = true
		}
		return a
	}
	for i := range fleet {
		fleet[i] = mkAP(i)
	}

	// retire folds a selector's lifetime counters into the result
	// (called when an AP crashes and once per AP at the end).
	retire := func(a *ap) {
		st := a.sel.Stats()
		res.Contacts += int64(st.Acquired + st.Renewed + st.Switched)
		res.Vacates += st.Vacated
		res.GraceEntries += st.GraceEntries
		res.Failovers += a.cl.Failovers()
	}

	// stormTarget picks the channel a storm lands on: the preferred
	// AP's current channel, else the first on-air AP scanning onward,
	// else the bottom of the EU plan.
	stormTarget := func(pref int) int {
		for k := 0; k < n; k++ {
			a := fleet[(pref+k)%n]
			if !a.down && a.sel.Current() != nil {
				return a.sel.Current().Channel
			}
		}
		first, _ := spectrum.EU.ChannelRange()
		return first
	}

	stormChan := map[int]int{} // storm id → channel
	nextEv := 0
	for step := 1; step <= steps; step++ {
		elapsed.Store(int64(step) * int64(time.Second))
		now := vnow()

		// 1. Apply the step's scheduled world events.
		for nextEv < len(p.events) && p.events[nextEv].step <= step {
			ev := p.events[nextEv]
			nextEv++
			switch ev.kind {
			case evCrash:
				a := fleet[ev.ap]
				if a.down {
					break
				}
				retire(a)
				a.down = true
				a.sel, a.cl = nil, nil
				res.Crashes++
				feed(trace.Record{T: now.UnixNano(), AP: int32(ev.ap),
					Kind: trace.KindAPLife, N: 1})
			case evRestart:
				if !fleet[ev.ap].down {
					break
				}
				fleet[ev.ap] = mkAP(ev.ap)
				res.Restarts++
				feed(trace.Record{T: now.UnixNano(), AP: int32(ev.ap),
					Kind: trace.KindAPLife, N: 1, Args: [trace.MaxArgs]int64{1}})
			case evStormArrive:
				ch := stormTarget(ev.ap)
				inc := spectrum.Incumbent{
					Kind: spectrum.WirelessMic, Channel: ch,
					Location: geo.Point{X: 500, Y: 500}, ProtectRadius: 1e7,
					From: now, To: now.Add(time.Duration(ev.dur) * time.Second),
				}
				if err := reg.AddIncumbent(inc); err != nil {
					return res, fmt.Errorf("chaos: storm %d: %w", ev.id, err)
				}
				stormChan[ev.id] = ch
				res.StormArrivals++
				feed(trace.Record{T: now.UnixNano(), AP: -1, Kind: trace.KindIncumbent,
					N: 3, Args: [trace.MaxArgs]int64{int64(ch), 1, int64(spectrum.WirelessMic)}})
			case evStormDepart:
				ch, ok := stormChan[ev.id]
				if !ok {
					break
				}
				delete(stormChan, ev.id)
				res.StormDeparts++
				feed(trace.Record{T: now.UnixNano(), AP: -1, Kind: trace.KindIncumbent,
					N: 3, Args: [trace.MaxArgs]int64{int64(ch), 0, int64(spectrum.WirelessMic)}})
			}
		}

		// 2. Every living AP polls concurrently — this is where the
		// server, lease store and cache see real contention.
		var wg sync.WaitGroup
		for _, a := range fleet {
			if a.down {
				continue
			}
			wg.Add(1)
			go func(a *ap) {
				defer wg.Done()
				a.sel.Refresh(now.Add(a.skew))
			}(a)
		}
		wg.Wait()

		// 3. Drain per-AP staging buffers in AP order (deterministic
		// single-threaded feed), then emit on-air evidence.
		for _, a := range fleet {
			if a.down {
				continue
			}
			for _, r := range a.buf.recs {
				feed(r)
			}
			a.buf.recs = a.buf.recs[:0]
		}
		for i, a := range fleet {
			if a.down {
				continue
			}
			apNow := now.Add(a.skew)
			if cur := a.sel.Current(); cur != nil && a.sel.TransmitAllowed(apNow) {
				res.TxRecords++
				feed(trace.Record{T: apNow.UnixNano(), AP: int32(i),
					Kind: trace.KindRadioTX, N: 1,
					Args: [trace.MaxArgs]int64{int64(cur.Channel)}})
			}
		}
	}

	for _, a := range fleet {
		if !a.down {
			retire(a)
		}
	}
	res.Records = checker.Records()
	res.Violations = checker.Total()
	res.First = checker.First()
	return res, nil
}

// Err renders the result's regulatory verdict: nil when the watchdog
// stayed green, the first violation otherwise.
func (r Result) Err() error {
	if r.First == nil {
		return nil
	}
	return fmt.Errorf("chaos: %d invariant violation(s), first: %s", r.Violations, r.First)
}
