package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// echoHandler returns a fixed JSON document with a stopTime field, the
// shape a PAWS AVAIL_SPECTRUM_RESP carries.
var echoHandler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, `{"jsonrpc":"2.0","result":{"spectrumSchedules":[{"stopTime":"2030-06-01T00:00:00Z","spectra":[{"channel":21}]}]},"id":1}`)
})

func doCall(t *testing.T, rt http.RoundTripper) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://paws.test/paws", strings.NewReader(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	return rt.RoundTrip(req)
}

func TestScriptFaults(t *testing.T) {
	script := Script{
		{Kind: None},
		{Kind: ServerError, Status: 502},
		{Kind: Drop},
		{Kind: MalformedJSON},
		{Kind: Truncate},
		{Kind: ClockSkew},
	}
	inj := NewInjector(HandlerTransport{echoHandler}, script)

	// Call 0: clean.
	resp, err := doCall(t, inj)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("clean call: %v %v", resp, err)
	}
	resp.Body.Close()

	// Call 1: synthetic 502, server never reached.
	resp, err = doCall(t, inj)
	if err != nil || resp.StatusCode != 502 {
		t.Fatalf("server-error call: %v %v", resp, err)
	}
	resp.Body.Close()

	// Call 2: dropped.
	if _, err = doCall(t, inj); err == nil {
		t.Fatal("drop fault did not error")
	}

	// Call 3: 200 but invalid JSON.
	resp, err = doCall(t, inj)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("malformed call: %v %v", resp, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if json.Valid(body) {
		t.Fatalf("malformed-json fault produced valid JSON: %s", body)
	}

	// Call 4: truncated — half the real body.
	resp, err = doCall(t, inj)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if json.Valid(body) || len(body) == 0 {
		t.Fatalf("truncate fault returned usable body (%d bytes)", len(body))
	}

	// Call 5: clock-skewed — stopTime rewritten into the past.
	resp, err = doCall(t, inj)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), skewedStopTime) {
		t.Fatalf("clock-skew fault left stopTime untouched: %s", body)
	}
	if strings.Contains(string(body), "2030-06-01") {
		t.Fatalf("original stopTime survived the skew: %s", body)
	}

	// Past the script: clean again.
	resp, err = doCall(t, inj)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("past-script call: %v %v", resp, err)
	}
	resp.Body.Close()

	if got := inj.Calls(); got != 7 {
		t.Fatalf("calls = %d, want 7", got)
	}
	if got := len(inj.Log()); got != 5 {
		t.Fatalf("logged events = %d, want 5 (None is unlogged)", got)
	}
}

func TestLatencyUsesInjectedSleep(t *testing.T) {
	var slept time.Duration
	inj := NewInjector(HandlerTransport{echoHandler}, Script{{Kind: Latency, Delay: 250 * time.Millisecond}})
	inj.Sleep = func(d time.Duration) { slept += d }
	resp, err := doCall(t, inj)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if slept != 250*time.Millisecond {
		t.Fatalf("slept %v, want 250ms", slept)
	}
}

// TestSeededScheduleDeterministic: same seed → byte-identical fault
// sequences; different seeds diverge; FaultFor is a pure function of
// the call index.
func TestSeededScheduleDeterministic(t *testing.T) {
	prof, ok := ProfileByName("heavy")
	if !ok {
		t.Fatal("heavy profile missing")
	}
	render := func(seed int64) string {
		s := NewSeeded(prof, seed)
		var b strings.Builder
		for i := 0; i < 500; i++ {
			f := s.FaultFor(i)
			fmt.Fprintf(&b, "%d:%s:%d:%d\n", i, f.Kind, f.Delay, f.Status)
		}
		return b.String()
	}
	a, b := render(42), render(42)
	if a != b {
		t.Fatal("same seed produced different schedules")
	}
	if render(42) == render(43) {
		t.Fatal("different seeds produced identical schedules")
	}
	// Pure function: out-of-order queries agree with in-order ones.
	s := NewSeeded(prof, 42)
	f100 := s.FaultFor(100)
	_ = s.FaultFor(7)
	if got := s.FaultFor(100); got != f100 {
		t.Fatalf("FaultFor(100) unstable: %v vs %v", got, f100)
	}
}

func TestSeededScheduleRespectsProfileMix(t *testing.T) {
	prof, _ := ProfileByName("mild")
	s := NewSeeded(prof, 7)
	faulted := 0
	for i := 0; i < 2000; i++ {
		if s.FaultFor(i).Kind != None {
			faulted++
		}
	}
	// mild claims 10/100 of calls; allow generous slack.
	if faulted < 100 || faulted > 350 {
		t.Fatalf("mild profile faulted %d/2000 calls, want ~200", faulted)
	}
}

func TestSeededBurstsAreBlockCorrelated(t *testing.T) {
	prof, _ := ProfileByName("outage")
	if prof.BurstLen <= 1 {
		t.Fatal("outage profile should be bursty")
	}
	s := NewSeeded(prof, 3)
	// Every call inside one block shares the block's fault decision.
	for block := 0; block < 50; block++ {
		first := s.FaultFor(block * prof.BurstLen)
		for i := 1; i < prof.BurstLen; i++ {
			if got := s.FaultFor(block*prof.BurstLen + i); got != first {
				t.Fatalf("block %d call %d = %+v, want %+v", block, i, got, first)
			}
		}
	}
	// And across many blocks both outcomes occur.
	down, up := 0, 0
	for block := 0; block < 200; block++ {
		if s.FaultFor(block*prof.BurstLen).Kind == None {
			up++
		} else {
			down++
		}
	}
	if down == 0 || up == 0 {
		t.Fatalf("outage profile degenerate: %d down, %d up blocks", down, up)
	}
}

func TestParseScript(t *testing.T) {
	s, err := ParseScript("none*2,server-error:502*3,latency:300ms,drop")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 7 {
		t.Fatalf("len = %d, want 7", len(s))
	}
	if s[2].Kind != ServerError || s[2].Status != 502 {
		t.Fatalf("entry 2 = %+v", s[2])
	}
	if s[5].Kind != Latency || s[5].Delay != 300*time.Millisecond {
		t.Fatalf("entry 5 = %+v", s[5])
	}
	if s[6].Kind != Drop {
		t.Fatalf("entry 6 = %+v", s[6])
	}
	for _, bad := range []string{"bogus", "latency:xyz", "drop:5", "none*0"} {
		if _, err := ParseScript(bad); err == nil {
			t.Fatalf("ParseScript(%q) accepted", bad)
		}
	}
}

func TestFlakyHandlerWindows(t *testing.T) {
	wins, err := ParseWindows("10s-30s,2m-3m")
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2017, 12, 12, 9, 0, 0, 0, time.UTC)
	now := t0
	fh := &FlakyHandler{
		Inner:   echoHandler,
		Windows: wins,
		Start:   t0,
		Now:     func() time.Time { return now },
	}
	rt := HandlerTransport{fh}
	statusAt := func(offset time.Duration) int {
		now = t0.Add(offset)
		resp, err := doCall(t, rt)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, tc := range []struct {
		at   time.Duration
		want int
	}{
		{0, 200}, {9 * time.Second, 200},
		{10 * time.Second, 503}, {29 * time.Second, 503},
		{30 * time.Second, 200},
		{2 * time.Minute, 503}, {3 * time.Minute, 200},
	} {
		if got := statusAt(tc.at); got != tc.want {
			t.Fatalf("status at %v = %d, want %d", tc.at, got, tc.want)
		}
	}

	if _, err := ParseWindows("30s-10s"); err == nil {
		t.Fatal("inverted window accepted")
	}
	if _, err := ParseWindows("junk"); err == nil {
		t.Fatal("junk window accepted")
	}
}
