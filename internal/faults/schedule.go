package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Schedule decides which fault (if any) applies to the i-th HTTP call.
// Implementations must be deterministic: the same index always yields
// the same fault, regardless of call order or wall-clock time.
type Schedule interface {
	FaultFor(call int) Fault
}

// Script is an explicit per-call schedule: call i receives Script[i];
// calls past the end pass through untouched.
type Script []Fault

// FaultFor implements Schedule.
func (s Script) FaultFor(call int) Fault {
	if call < 0 || call >= len(s) {
		return Fault{Kind: None}
	}
	return s[call]
}

// Profile is a named mix of fault probabilities. Weights are relative;
// whatever probability mass (out of Total) they do not claim passes
// through clean.
type Profile struct {
	Name string
	// Weight per kind, out of Total. Kinds absent inject never.
	Weights map[Kind]int
	// Total is the denominator; calls landing outside the summed
	// weights are clean. Zero means "sum of weights" (every call
	// faulted) — almost never what a soak wants.
	Total int
	// MaxLatency bounds injected latency (default 2s).
	MaxLatency time.Duration
	// BurstLen, when > 1, correlates faults in blocks of that many
	// consecutive calls: the whole block draws one fault decision.
	// Real database outages are sustained windows, not i.i.d. coin
	// flips per request — and only sustained windows can outlast a
	// lease and force the vacate fail-safe.
	BurstLen int
}

// Built-in profiles, selectable by name from the -chaos-profile flag.
var profiles = map[string]Profile{
	// mild: occasional glitches a healthy WAN shows. ~10% of calls.
	"mild": {
		Name: "mild",
		Weights: map[Kind]int{
			Latency: 4, Drop: 2, ServerError: 2, MalformedJSON: 1, Truncate: 1,
		},
		Total:      100,
		MaxLatency: 500 * time.Millisecond,
	},
	// heavy: a database having a bad day. ~45% of calls, all kinds.
	"heavy": {
		Name: "heavy",
		Weights: map[Kind]int{
			Latency: 10, Drop: 10, ServerError: 15, MalformedJSON: 4, Truncate: 4, ClockSkew: 2,
		},
		Total:      100,
		MaxLatency: 2 * time.Second,
	},
	// outage: sustained windows of hard failure — whole 40-call bursts
	// go dark at once, so outages outlast leases and exercise the
	// vacate budget hardest.
	"outage": {
		Name: "outage",
		Weights: map[Kind]int{
			ServerError: 35, Drop: 10,
		},
		Total:      100,
		MaxLatency: time.Second,
		BurstLen:   40,
	},
}

// ProfileByName returns a built-in profile ("mild", "heavy", "outage").
// The empty string and "off" return ok=false.
func ProfileByName(name string) (Profile, bool) {
	p, ok := profiles[strings.ToLower(name)]
	return p, ok
}

// ProfileNames lists the built-in profile names, sorted.
func ProfileNames() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Seeded is a deterministic pseudo-random schedule drawn from a
// profile. Each call index derives its own PRNG from (seed, call), so
// FaultFor is a pure function: retries, concurrency and partial
// replays all see the same faults.
type Seeded struct {
	Profile Profile
	Seed    int64
}

// NewSeeded returns a seeded schedule over the given profile.
func NewSeeded(p Profile, seed int64) *Seeded { return &Seeded{Profile: p, Seed: seed} }

// FaultFor implements Schedule.
func (s *Seeded) FaultFor(call int) Fault {
	// With bursts, every call in a block shares one decision.
	idx := call
	if s.Profile.BurstLen > 1 {
		idx = call / s.Profile.BurstLen
	}
	// splitmix-style mix of seed and call index; rand.NewSource on the
	// mixed value gives a decorrelated stream per call.
	h := uint64(s.Seed)*0x9e3779b97f4a7c15 + uint64(idx)*0xbf58476d1ce4e5b9
	h ^= h >> 31
	rng := rand.New(rand.NewSource(int64(h)))

	total := s.Profile.Total
	sum := 0
	// Deterministic kind order: iterate the enum, not the map.
	kinds := []Kind{Latency, Drop, ServerError, MalformedJSON, Truncate, ClockSkew}
	for _, k := range kinds {
		sum += s.Profile.Weights[k]
	}
	if total == 0 {
		total = sum
	}
	if total == 0 {
		return Fault{Kind: None}
	}
	roll := rng.Intn(total)
	for _, k := range kinds {
		w := s.Profile.Weights[k]
		if roll < w {
			return s.materialize(k, rng)
		}
		roll -= w
	}
	return Fault{Kind: None}
}

func (s *Seeded) materialize(k Kind, rng *rand.Rand) Fault {
	switch k {
	case Latency:
		max := s.Profile.MaxLatency
		if max <= 0 {
			max = 2 * time.Second
		}
		// At least 1ms so the fault is observable.
		d := time.Millisecond + time.Duration(rng.Int63n(int64(max)))
		if d > max {
			d = max
		}
		return Fault{Kind: Latency, Delay: d}
	case ServerError:
		statuses := []int{500, 502, 503, 504}
		return Fault{Kind: ServerError, Status: statuses[rng.Intn(len(statuses))]}
	default:
		return Fault{Kind: k}
	}
}

// ParseScript parses a compact scripted schedule: a comma-separated
// list of entries, each "kind", "kind*count", or for latency
// "latency:250ms" (optionally "latency:250ms*3"). Example:
//
//	none*5,server-error*10,latency:300ms,drop*2
//
// covers calls 0–17.
func ParseScript(spec string) (Script, error) {
	var out Script
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		count := 1
		if i := strings.IndexByte(entry, '*'); i >= 0 {
			if _, err := fmt.Sscanf(entry[i+1:], "%d", &count); err != nil || count < 1 {
				return nil, fmt.Errorf("faults: bad repeat in %q", entry)
			}
			entry = entry[:i]
		}
		f := Fault{}
		name, arg, hasArg := strings.Cut(entry, ":")
		found := false
		for k, kn := range kindNames {
			if kn == name {
				f.Kind = k
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("faults: unknown fault kind %q", name)
		}
		if hasArg {
			switch f.Kind {
			case Latency:
				d, err := time.ParseDuration(arg)
				if err != nil {
					return nil, fmt.Errorf("faults: bad latency %q: %v", arg, err)
				}
				f.Delay = d
			case ServerError:
				if _, err := fmt.Sscanf(arg, "%d", &f.Status); err != nil {
					return nil, fmt.Errorf("faults: bad status %q", arg)
				}
			default:
				return nil, fmt.Errorf("faults: %s takes no argument", name)
			}
		}
		for i := 0; i < count; i++ {
			out = append(out, f)
		}
	}
	return out, nil
}
