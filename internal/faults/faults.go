// Package faults is the repo's chaos-engineering toolkit for the PAWS
// control plane. It injects the failure modes a production white-space
// database exposes an access point to — latency spikes, dropped
// connections, 5xx outages, malformed or truncated JSON, and
// clock-skewed lease expiries — behind a deterministic, seedable
// schedule so that every chaos run is reproducible byte-for-byte.
//
// The two entry points are:
//
//   - Injector, an http.RoundTripper that wraps a device's transport
//     and perturbs calls per a Schedule (scripted or seeded random);
//   - FlakyHandler, a server-side wrapper that takes a live PAWS
//     database through scripted outage windows.
//
// The regulatory invariant the package exists to test: no matter what
// the schedule does, an AP must never transmit more than
// core.VacateDeadline past its last successful database contact.
package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// None passes the call through untouched.
	None Kind = iota
	// Latency delays the call by Fault.Delay before forwarding it.
	Latency
	// Drop fails the call with a transport error; the request never
	// reaches the server (connection reset / refused territory).
	Drop
	// ServerError short-circuits with an HTTP 5xx (Fault.Status,
	// default 503) without reaching the server.
	ServerError
	// MalformedJSON returns HTTP 200 with a Content-Type of JSON and a
	// body that is not valid JSON.
	MalformedJSON
	// Truncate forwards the call but cuts the response body in half,
	// simulating a connection torn down mid-transfer.
	Truncate
	// ClockSkew forwards the call but rewrites every "stopTime" in the
	// JSON response to a time far in the past — the lease arrives
	// already expired, as seen from a database with a skewed clock.
	ClockSkew
)

// kindNames doubles as the String table and the profile vocabulary.
var kindNames = map[Kind]string{
	None:          "none",
	Latency:       "latency",
	Drop:          "drop",
	ServerError:   "server-error",
	MalformedJSON: "malformed-json",
	Truncate:      "truncate",
	ClockSkew:     "clock-skew",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "?"
}

// Fault is one scheduled perturbation.
type Fault struct {
	Kind Kind
	// Delay is the injected latency for Latency faults.
	Delay time.Duration
	// Status is the HTTP status for ServerError faults (default 503).
	Status int
}

// Event records one applied fault, for telemetry and golden logs.
type Event struct {
	// Call is the zero-based index of the HTTP call the fault applied
	// to (retries count as separate calls).
	Call  int
	Fault Fault
}

// String renders the event in the stable form golden logs compare.
func (e Event) String() string {
	switch e.Fault.Kind {
	case Latency:
		return fmt.Sprintf("call=%d fault=%s delay=%s", e.Call, e.Fault.Kind, e.Fault.Delay)
	case ServerError:
		return fmt.Sprintf("call=%d fault=%s status=%d", e.Call, e.Fault.Kind, e.Fault.Status)
	default:
		return fmt.Sprintf("call=%d fault=%s", e.Call, e.Fault.Kind)
	}
}

// errInjectedDrop is the transport error Drop faults surface.
type errInjectedDrop struct{ call int }

func (e errInjectedDrop) Error() string {
	return fmt.Sprintf("faults: injected connection drop (call %d)", e.call)
}

// Injector is an http.RoundTripper that perturbs calls per a Schedule.
// It is safe for concurrent use; the call counter and event log are
// internally synchronised. For byte-determinism, drive it from a
// single goroutine (the PAWS client's poll loop is one).
type Injector struct {
	// Base is the wrapped transport; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Schedule decides the fault for each call; nil injects nothing.
	Schedule Schedule
	// Sleep implements Latency faults; nil means time.Sleep. Virtual-
	// time tests substitute a clock advance.
	Sleep func(time.Duration)

	mu    sync.Mutex
	calls int
	log   []Event
}

// NewInjector wraps base (nil for http.DefaultTransport) with the
// given schedule.
func NewInjector(base http.RoundTripper, sched Schedule) *Injector {
	return &Injector{Base: base, Schedule: sched}
}

// Calls returns how many HTTP calls the injector has seen.
func (in *Injector) Calls() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls
}

// Log returns a copy of the injected-fault event log (None faults are
// not recorded).
func (in *Injector) Log() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.log))
	copy(out, in.log)
	return out
}

// RoundTrip implements http.RoundTripper.
func (in *Injector) RoundTrip(req *http.Request) (*http.Response, error) {
	in.mu.Lock()
	call := in.calls
	in.calls++
	var f Fault
	if in.Schedule != nil {
		f = in.Schedule.FaultFor(call)
	}
	if f.Kind != None {
		in.log = append(in.log, Event{Call: call, Fault: f})
	}
	sleep := in.Sleep
	in.mu.Unlock()

	base := in.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if sleep == nil {
		sleep = time.Sleep
	}

	switch f.Kind {
	case None:
		return base.RoundTrip(req)
	case Latency:
		sleep(f.Delay)
		return base.RoundTrip(req)
	case Drop:
		drainBody(req)
		return nil, errInjectedDrop{call}
	case ServerError:
		drainBody(req)
		status := f.Status
		if status == 0 {
			status = http.StatusServiceUnavailable
		}
		return syntheticResponse(req, status, "text/plain; charset=utf-8",
			fmt.Sprintf("faults: injected outage (call %d)\n", call)), nil
	case MalformedJSON:
		drainBody(req)
		return syntheticResponse(req, http.StatusOK, "application/json",
			`{"jsonrpc":"2.0","result":{"truncated`), nil
	case Truncate:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return truncateBody(resp)
	case ClockSkew:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return skewStopTimes(resp)
	}
	return base.RoundTrip(req)
}

func drainBody(req *http.Request) {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
}

func syntheticResponse(req *http.Request, status int, contentType, body string) *http.Response {
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": {contentType}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateBody replaces resp.Body with its first half.
func truncateBody(resp *http.Response) (*http.Response, error) {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	cut := body[:len(body)/2]
	resp.Body = io.NopCloser(bytes.NewReader(cut))
	resp.ContentLength = int64(len(cut))
	return resp, nil
}

// skewedStopTime is what ClockSkew rewrites lease expiries to: far
// enough in the past that any sane lease arrives already expired.
const skewedStopTime = "2000-01-01T00:00:00Z"

// skewStopTimes rewrites every "stopTime" field in a JSON response
// body to skewedStopTime. Non-JSON bodies pass through untouched.
func skewStopTimes(resp *http.Response) (*http.Response, error) {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	var doc any
	if json.Unmarshal(body, &doc) == nil {
		rewriteKey(doc, "stopTime", skewedStopTime)
		if out, err := json.Marshal(doc); err == nil {
			body = out
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	return resp, nil
}

// rewriteKey walks a decoded JSON document and replaces every value
// under the given key.
func rewriteKey(doc any, key string, val any) {
	switch d := doc.(type) {
	case map[string]any:
		for k, v := range d {
			if k == key {
				d[k] = val
				continue
			}
			rewriteKey(v, key, val)
		}
	case []any:
		for _, v := range d {
			rewriteKey(v, key, val)
		}
	}
}
