package faults

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"
)

// Window is a half-open outage interval [From, To) expressed as
// offsets from the handler's start time.
type Window struct {
	From, To time.Duration
}

// ParseWindows parses a comma-separated list of outage windows in the
// form "from-to" (Go durations), e.g. "10s-30s,2m-2m30s".
func ParseWindows(spec string) ([]Window, error) {
	var out []Window
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		fromStr, toStr, ok := strings.Cut(strings.TrimSpace(entry), "-")
		if !ok {
			return nil, fmt.Errorf("faults: bad window %q, want from-to", entry)
		}
		from, err1 := time.ParseDuration(fromStr)
		to, err2 := time.ParseDuration(toStr)
		if err1 != nil || err2 != nil || to <= from {
			return nil, fmt.Errorf("faults: bad window %q", entry)
		}
		out = append(out, Window{From: from, To: to})
	}
	return out, nil
}

// FlakyHandler wraps an http.Handler (typically a paws.Server) and
// serves scripted outage windows: requests landing inside a window get
// Status (default 503) instead of reaching the inner handler. This is
// the server-side fault surface — pawsdb exposes it via -flaky so a
// real cellfi-ap process can be soak-tested against database outages.
type FlakyHandler struct {
	Inner http.Handler
	// Windows are the outage intervals, as offsets from Start.
	Windows []Window
	// Start anchors the windows; zero means the first request's time.
	Start time.Time
	// Now supplies time; nil means time.Now. Simulations override it.
	Now func() time.Time
	// Status is the outage response code; zero means 503.
	Status int

	mu sync.Mutex // guards lazy Start initialisation
}

// ServeHTTP implements http.Handler.
func (f *FlakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	if f.Now != nil {
		now = f.Now()
	}
	f.mu.Lock()
	if f.Start.IsZero() {
		f.Start = now
	}
	start := f.Start
	f.mu.Unlock()
	elapsed := now.Sub(start)
	for _, win := range f.Windows {
		if elapsed >= win.From && elapsed < win.To {
			status := f.Status
			if status == 0 {
				status = http.StatusServiceUnavailable
			}
			http.Error(w, fmt.Sprintf("faults: scripted outage (%s into run)", elapsed), status)
			return
		}
	}
	f.Inner.ServeHTTP(w, r)
}

// HandlerTransport adapts an http.Handler into an http.RoundTripper
// that serves requests in-process, with no sockets. Chaos tests wrap
// it in an Injector to drive tens of thousands of PAWS exchanges per
// second through the real wire encoding.
type HandlerTransport struct {
	Handler http.Handler
}

// RoundTrip implements http.RoundTripper.
func (t HandlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.Handler.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}
