package lte

import (
	"testing"
	"testing/quick"
)

func validSIB() SIB1 {
	return SIB1{
		CellID:         101,
		DownlinkEARFCN: 4740, // 474.0 MHz in 100 kHz units
		UplinkEARFCN:   4740,
		MaxTxPowerDBm:  20,
		TDDConfigIndex: 4,
		Bandwidth:      BW5MHz,
	}
}

func TestSIBRoundTrip(t *testing.T) {
	s := validSIB()
	raw, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSIB1(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, s)
	}
	// The broadcast is compact: 8+9+18+18+6+3+2 = 64 bits = 8 bytes.
	if len(raw) != 8 {
		t.Fatalf("SIB encodes to %d bytes, want 8", len(raw))
	}
}

func TestSIBQuickRoundTrip(t *testing.T) {
	f := func(cellID uint16, dl, ul uint32, pwr int8, tdd, bwSel uint8) bool {
		s := SIB1{
			CellID:         cellID % 504,
			DownlinkEARFCN: dl % (1 << 18),
			UplinkEARFCN:   ul % (1 << 18),
			MaxTxPowerDBm:  int8((int(pwr)%64+64)%64 - 30),
			TDDConfigIndex: tdd % 7,
			Bandwidth:      bwFromCode[bwSel%4],
		}
		raw, err := s.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalSIB1(raw)
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSIBValidation(t *testing.T) {
	cases := []func(*SIB1){
		func(s *SIB1) { s.CellID = 504 },
		func(s *SIB1) { s.DownlinkEARFCN = 1 << 18 },
		func(s *SIB1) { s.MaxTxPowerDBm = 40 },
		func(s *SIB1) { s.MaxTxPowerDBm = -31 },
		func(s *SIB1) { s.TDDConfigIndex = 7 },
		func(s *SIB1) { s.Bandwidth = Bandwidth(7) },
	}
	for i, mutate := range cases {
		s := validSIB()
		mutate(&s)
		if _, err := s.Marshal(); err == nil {
			t.Errorf("case %d: invalid SIB marshalled", i)
		}
	}
}

func TestSIBDecodeErrors(t *testing.T) {
	if _, err := UnmarshalSIB1(nil); err == nil {
		t.Error("empty broadcast decoded")
	}
	if _, err := UnmarshalSIB1([]byte{0x00, 1, 2, 3, 4, 5, 6, 7}); err == nil {
		t.Error("wrong magic decoded")
	}
	raw, _ := validSIB().Marshal()
	if _, err := UnmarshalSIB1(raw[:4]); err == nil {
		t.Error("truncated broadcast decoded")
	}
	// Corrupt the cell ID field beyond its range (set all 9 bits).
	bad := append([]byte(nil), raw...)
	bad[1] = 0xFF
	bad[2] |= 0x80
	if _, err := UnmarshalSIB1(bad); err == nil {
		t.Error("out-of-range decoded SIB accepted")
	}
}

// The channel-selection handoff of Section 4.2: lease -> broadcast,
// carrying the EARFCN at 100 kHz granularity and the database's power
// cap (clamped to the encodable ceiling).
func TestSIB1ForLease(t *testing.T) {
	s, err := SIB1ForLease(7, 474e6, 36, BW5MHz)
	if err != nil {
		t.Fatal(err)
	}
	if s.DownlinkEARFCN != 4740 || s.UplinkEARFCN != 4740 {
		t.Fatalf("EARFCN = %d/%d, want 4740", s.DownlinkEARFCN, s.UplinkEARFCN)
	}
	if s.MaxTxPowerDBm != 33 {
		t.Fatalf("power cap %d, want the encodable ceiling 33", s.MaxTxPowerDBm)
	}
	if got := FreqFromEARFCN(int(s.DownlinkEARFCN)); got != 474e6 {
		t.Fatalf("EARFCN decodes to %g Hz", got)
	}
	raw, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSIB1(raw)
	if err != nil || back != s {
		t.Fatalf("lease SIB round trip failed: %v", err)
	}
}
