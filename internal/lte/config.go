// Package lte implements the LTE substrate CellFi is built on: the
// resource-block/subchannel grid, TDD frame structure, per-subframe MAC
// scheduling, HARQ, CQI reporting (wideband and aperiodic mode 3-0
// sub-band reports), and PRACH — Zadoff-Chu preamble generation plus
// both a conventional detector and the paper's low-complexity
// cyclic-shift detector (Section 6.3.3).
package lte

import (
	"fmt"
	"time"
)

// Bandwidth is an LTE channel bandwidth.
type Bandwidth int

// LTE TDD channel bandwidths the PHY supports in TVWS (Section 3.1).
const (
	BW5MHz  Bandwidth = 5
	BW10MHz Bandwidth = 10
	BW15MHz Bandwidth = 15
	BW20MHz Bandwidth = 20
)

// Hz returns the bandwidth in hertz.
func (b Bandwidth) Hz() float64 { return float64(b) * 1e6 }

// ResourceBlocks returns the number of 180 kHz resource blocks.
func (b Bandwidth) ResourceBlocks() int {
	switch b {
	case BW5MHz:
		return 25
	case BW10MHz:
		return 50
	case BW15MHz:
		return 75
	case BW20MHz:
		return 100
	}
	panic(fmt.Sprintf("lte: invalid bandwidth %d", b))
}

// Subchannels returns the number of schedulable subchannels — the
// minimal sets of resource blocks that can be scheduled and for which
// sub-band channel-quality information exists (Section 5: 13 on a 5 MHz
// channel, 25 on 20 MHz). These correspond to resource-block groups.
func (b Bandwidth) Subchannels() int {
	switch b {
	case BW5MHz:
		return 13 // RBG size 2: 12 groups of 2 + 1 of 1
	case BW10MHz:
		return 17 // RBG size 3: 16 groups of 3 + 1 of 2
	case BW15MHz:
		return 19 // RBG size 4: 18 groups of 4 + 1 of 3
	case BW20MHz:
		return 25 // RBG size 4: 25 groups of 4
	}
	panic(fmt.Sprintf("lte: invalid bandwidth %d", b))
}

// RBGSize returns the resource-block-group size for the bandwidth
// (TS 36.213 Table 7.1.6.1-1).
func (b Bandwidth) RBGSize() int {
	switch b {
	case BW5MHz:
		return 2
	case BW10MHz:
		return 3
	case BW15MHz, BW20MHz:
		return 4
	}
	panic(fmt.Sprintf("lte: invalid bandwidth %d", b))
}

// SubchannelRBs returns how many resource blocks subchannel i spans.
// The last group may be smaller than the RBG size.
func (b Bandwidth) SubchannelRBs(i int) int {
	n := b.Subchannels()
	if i < 0 || i >= n {
		panic(fmt.Sprintf("lte: subchannel %d out of range 0..%d", i, n-1))
	}
	if i < n-1 {
		return b.RBGSize()
	}
	rem := b.ResourceBlocks() - (n-1)*b.RBGSize()
	return rem
}

// SubchannelHz returns the occupied bandwidth of subchannel i.
func (b Bandwidth) SubchannelHz(i int) float64 {
	return float64(b.SubchannelRBs(i)) * 180e3
}

// Frame and scheduling timing constants.
const (
	// SubframeDuration is the LTE TTI.
	SubframeDuration = time.Millisecond
	// FrameDuration is one radio frame (10 subframes).
	FrameDuration = 10 * time.Millisecond
	// RBBandwidthHz is one resource block's bandwidth.
	RBBandwidthHz = 180e3
)

// DataREPerRBPerSubframe is the number of resource elements carrying
// user data in one RB over one subframe: 12 subcarriers x 14 OFDM
// symbols = 168 REs, of which roughly 25% carry reference signals and
// control (PDCCH, PCFICH, CRS), leaving 126.
const DataREPerRBPerSubframe = 126

// SubframeKind classifies TDD subframes.
type SubframeKind int

const (
	Downlink SubframeKind = iota
	Uplink
	Special
)

func (k SubframeKind) String() string {
	switch k {
	case Downlink:
		return "D"
	case Uplink:
		return "U"
	case Special:
		return "S"
	}
	return "?"
}

// TDDConfig is a TDD uplink/downlink configuration: the kind of each of
// the 10 subframes in a frame.
type TDDConfig struct {
	Name    string
	Pattern [10]SubframeKind
}

// TDDConfigs holds all seven 3GPP TDD UL/DL configurations
// (TS 36.211 Table 4.2-2). Index 4 — DSUUDDDDDD, 7 downlink and 2
// uplink subframes per frame — is the one the paper's evaluation uses
// (Section 6.3.4).
var TDDConfigs = [7]TDDConfig{
	{Name: "TDD-0", Pattern: [10]SubframeKind{Downlink, Special, Uplink, Uplink, Uplink, Downlink, Special, Uplink, Uplink, Uplink}},
	{Name: "TDD-1", Pattern: [10]SubframeKind{Downlink, Special, Uplink, Uplink, Downlink, Downlink, Special, Uplink, Uplink, Downlink}},
	{Name: "TDD-2", Pattern: [10]SubframeKind{Downlink, Special, Uplink, Downlink, Downlink, Downlink, Special, Uplink, Downlink, Downlink}},
	{Name: "TDD-3", Pattern: [10]SubframeKind{Downlink, Special, Uplink, Uplink, Uplink, Downlink, Downlink, Downlink, Downlink, Downlink}},
	{Name: "TDD-4", Pattern: [10]SubframeKind{Downlink, Special, Uplink, Uplink, Downlink, Downlink, Downlink, Downlink, Downlink, Downlink}},
	{Name: "TDD-5", Pattern: [10]SubframeKind{Downlink, Special, Uplink, Downlink, Downlink, Downlink, Downlink, Downlink, Downlink, Downlink}},
	{Name: "TDD-6", Pattern: [10]SubframeKind{Downlink, Special, Uplink, Uplink, Uplink, Downlink, Special, Uplink, Uplink, Downlink}},
}

// TDDConfig4 is the evaluation's configuration (7 DL / 2 UL / 1 S).
var TDDConfig4 = TDDConfigs[4]

// Kind returns the kind of the subframe with the given absolute index.
func (c TDDConfig) Kind(subframe int64) SubframeKind {
	return c.Pattern[subframe%10]
}

// DownlinkFraction returns the fraction of subframes that carry
// downlink data. The special subframe's DwPTS carries downlink too; we
// count it as half.
func (c TDDConfig) DownlinkFraction() float64 {
	var dl float64
	for _, k := range c.Pattern {
		switch k {
		case Downlink:
			dl++
		case Special:
			dl += 0.5
		}
	}
	return dl / 10
}

// UplinkFraction returns the fraction of subframes carrying uplink.
func (c TDDConfig) UplinkFraction() float64 {
	var ul float64
	for _, k := range c.Pattern {
		if k == Uplink {
			ul++
		}
	}
	return ul / 10
}

// CellFi sensing/reporting cadence constants (Sections 5.1 and 6.3.4).
const (
	// CQIReportPeriod is the aperiodic mode 3-0 sub-band CQI cadence.
	CQIReportPeriod = 2 * time.Millisecond
	// CQIReportBits is the payload of one mode 3-0 report on 5 MHz:
	// one 4-bit wideband value plus 13 two-bit sub-band values,
	// reported by the paper as 20 bits.
	CQIReportBits = 20
	// PRACHSolicitPeriod is how often an AP issues PDCCH-order RACH
	// to solicit preambles from neighbourhood clients.
	PRACHSolicitPeriod = time.Second
	// PRACHDetectFloorDB is the SNR down to which a PRACH preamble is
	// reliably detectable.
	PRACHDetectFloorDB = -10
	// IMEpoch is the interference-management update interval.
	IMEpoch = time.Second
)

// CQISignalingOverheadBps returns the uplink signalling load of
// aperiodic CQI reporting (the paper: 20 bits / 2 ms = 10 kbps).
func CQISignalingOverheadBps() float64 {
	return CQIReportBits / CQIReportPeriod.Seconds()
}

// EARFCNFromFreq converts a downlink centre frequency to a pseudo-EARFCN
// in 100 kHz granularity, as the SIB carries it (Section 4.2). The
// offset is arbitrary but stable, mirroring how 3GPP numbers new bands.
func EARFCNFromFreq(freqHz float64) int {
	return int(freqHz / 100e3)
}

// FreqFromEARFCN inverts EARFCNFromFreq.
func FreqFromEARFCN(earfcn int) float64 {
	return float64(earfcn) * 100e3
}
