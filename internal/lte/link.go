package lte

import (
	"math"

	"cellfi/internal/geo"
	"cellfi/internal/propagation"
)

// Link-level radio model: cells, clients, and per-subchannel SINR
// computation including neighbouring-cell interference. This is the
// substrate for the paper's link experiments (Figures 1, 7 and 8).

// Activity describes what an interfering cell is transmitting.
type Activity int

const (
	// Off: radio disabled, no interference.
	Off Activity = iota
	// SignallingOnly: no user data, but reference signals, sync
	// signals and control channels are always on. Roughly 15% of
	// downlink resource elements, matching the paper's finding that
	// signalling-only interference costs at most ~20% goodput
	// (Figure 7b).
	SignallingOnly
	// FullBuffer: backlogged data in every subframe.
	FullBuffer
)

// DutyFactor returns the fraction of resource elements the activity
// level occupies, i.e. the effective interference scaling.
func (a Activity) DutyFactor() float64 {
	switch a {
	case Off:
		return 0
	case SignallingOnly:
		return 0.15
	case FullBuffer:
		return 1
	}
	return 0
}

func (a Activity) String() string {
	switch a {
	case Off:
		return "off"
	case SignallingOnly:
		return "signalling-only"
	case FullBuffer:
		return "full-buffer"
	}
	return "?"
}

// Cell is an LTE small-cell access point.
type Cell struct {
	ID         int
	Pos        geo.Point
	TxPowerDBm float64
	Antenna    propagation.Antenna
	BW         Bandwidth
	TDD        TDDConfig
	// Activity is the cell's transmit behaviour when viewed as an
	// interferer.
	Activity Activity
	// ActiveSubchannels restricts which subchannels the cell
	// transmits in; nil means all (plain LTE). This is the hook the
	// CellFi interference-management component drives.
	ActiveSubchannels map[int]bool
}

// TransmitsIn reports whether the cell emits data energy in subchannel
// sc. Signalling (CRS/sync/PDCCH) is spread across the whole carrier
// regardless of the data allocation, which is why a cell is never
// interference-free while powered on (Section 6.3.1).
func (c *Cell) TransmitsIn(sc int) bool {
	if c.Activity != FullBuffer {
		return false
	}
	if c.ActiveSubchannels == nil {
		return true
	}
	return c.ActiveSubchannels[sc]
}

// PerRBPowerDBm returns the transmit power allocated to one resource
// block: total power divided evenly across the carrier's RBs.
func (c *Cell) PerRBPowerDBm() float64 {
	return c.TxPowerDBm - 10*math.Log10(float64(c.BW.ResourceBlocks()))
}

// Client is a mobile device.
type Client struct {
	ID         int
	Pos        geo.Point
	TxPowerDBm float64
	// Serving is the attached cell (nil while detached).
	Serving *Cell
}

// Environment binds the propagation model to a noise figure and fading
// process, and answers SINR questions.
type Environment struct {
	Model         *propagation.Model
	Fading        *propagation.Fading
	NoiseFigureDB float64
	// Cache, when non-nil, memoizes the static link loss (path loss +
	// frozen shadowing) per (cell ID, client ID) pair, so per-subframe
	// SINR/CQI queries over a static topology skip the full model —
	// including the per-call RNG the shadowing term seeds. Positions
	// are only consulted on a miss: code that moves a cell or client
	// mid-run must call Invalidate with its ID. NewEnvironment enables
	// the cache; zero-value Environments compute uncached.
	Cache *propagation.LinkCache

	// rxTab caches the full per-subchannel received power — static
	// link gain plus the fading draw of the current coherence block —
	// in both dBm and mW, keyed by directed link and subchannel. The
	// fading process is a pure function of (link, subchannel, block),
	// so within one block the cached value is bit-identical to the
	// recomputation it replaces; entries self-expire when the block
	// advances. Active only when the link-loss cache is (the
	// Invalidate contract is the same: movers must call Invalidate,
	// which bumps rxEpoch). Interferer activity is NOT cached —
	// TransmitsIn gating stays per-call, so toggling a cell's
	// Activity or ActiveSubchannels mid-run is safe.
	//
	// The table is open-addressed with linear probing rather than a Go
	// map: every SINR query on the subframe path probes it several
	// times, and the key set (links x subchannels) is small and fixed,
	// so a flat table at < 1/2 load beats the general map by a wide
	// margin and allocates only while new keys appear.
	rxTab   []rxEntry
	rxUsed  int
	rxEpoch uint64

	// noise floor memo, guarded by the noise figure it was built for.
	noiseSet  bool
	noiseNF   float64
	noiseDBmC float64
	noiseMWC  float64
}

// rxEntry is one directed (cell -> receiver, subchannel) path's cached
// state: the coherence block's received power, plus a memo of the last
// interference denominator converted to dB (denDB is a pure function
// of denMW, so it needs no epoch/block validation — an exact match on
// the milliwatt sum guarantees an identical conversion).
type rxEntry struct {
	link  uint64
	sc    int32
	used  bool
	epoch uint64
	block int64
	// mw is filled on every (re)compute; dbm lazily on the first dB
	// query of the block (dbmOK) — interferer-only links never pay the
	// log10 at all.
	dbmOK        bool
	dbm, mw      float64
	denMW, denDB float64
}

// NewEnvironment builds the default evaluation environment: calibrated
// urban propagation, block Rayleigh fading, 7 dB receiver noise figure,
// link-gain caching on.
func NewEnvironment(seed int64) *Environment {
	model := propagation.DefaultUrban(seed)
	return &Environment{
		Model:         model,
		Fading:        propagation.NewFading(seed + 1),
		NoiseFigureDB: 7,
		Cache:         propagation.NewLinkCache(model, 0),
	}
}

// Invalidate marks every cached link touching the given cell or client
// ID stale. Call after moving a node.
func (e *Environment) Invalidate(nodeID int) {
	if e.Cache != nil {
		e.Cache.Invalidate(nodeID)
	}
	// Received-power entries fold the (now stale) static gain in, so
	// drop them all; the epoch bump is O(1) and misses repopulate from
	// the link-loss cache, which invalidates per node underneath.
	e.rxEpoch++
}

// linkLossDB returns the static link loss for the (cell, client) pair,
// through the cache when one is attached to the current model.
func (e *Environment) linkLossDB(cellID, clientID int, cellPos, clientPos geo.Point) float64 {
	if e.Cache != nil && e.Cache.Model() == e.Model {
		return e.Cache.LossDB(cellID, clientID, cellPos, clientPos)
	}
	return e.Model.LinkLossDB(cellPos, clientPos)
}

// rxPowerDBm returns the power a receiver at rxPos sees from cell tx on
// one resource block of subchannel sc at time tMS.
func (e *Environment) rxPowerDBm(tx *Cell, rxPos geo.Point, rxID, sc int, tMS int64) float64 {
	if e.memoActive() {
		ent := e.rxLookup(tx, rxPos, rxID, sc, tMS)
		if !ent.dbmOK {
			ent.dbm, ent.dbmOK = propagation.MWToDBm(ent.mw), true
		}
		return ent.dbm
	}
	return propagation.MWToDBm(e.rxPowerMWUncached(tx, rxPos, rxID, sc, tMS))
}

// rxPowerMW is rxPowerDBm in milliwatts — the interferer-summation form,
// and since kernel v2 the primary one: the memo computes mW first and
// derives dBm only on demand.
func (e *Environment) rxPowerMW(tx *Cell, rxPos geo.Point, rxID, sc int, tMS int64) float64 {
	if e.memoActive() {
		return e.rxLookup(tx, rxPos, rxID, sc, tMS).mw
	}
	return e.rxPowerMWUncached(tx, rxPos, rxID, sc, tMS)
}

// rxPowerMWUncached is the direct computation behind the memo, in the
// linear domain end to end: the static dB budget converts once, then the
// fading draw multiplies in as a linear gain (no per-call log10 of the
// fade). The cached and uncached paths both go through here, so they
// stay bit-identical.
func (e *Environment) rxPowerMWUncached(tx *Cell, rxPos geo.Point, rxID, sc int, tMS int64) float64 {
	gain := tx.Antenna.GainDB(tx.Pos.Bearing(rxPos))
	loss := e.linkLossDB(tx.ID, rxID, tx.Pos, rxPos)
	static := propagation.DBmToMW(tx.PerRBPowerDBm() + gain - loss)
	return static * e.Fading.GainLinear(propagation.LinkID(tx.ID, rxID), sc, tMS)
}

// memoActive mirrors linkLossDB's condition: received-power caching is
// on exactly when static-loss caching is, so the two layers share one
// Invalidate contract.
func (e *Environment) memoActive() bool {
	return e.Cache != nil && e.Cache.Model() == e.Model
}

// rxLookup serves rxPowerDBm/rxPowerMW from the memo, computing and
// storing the mW power on the first query of a coherence block (dBm
// converts lazily; see rxEntry). The returned pointer is only valid
// until the next rxSlot call, which may grow the table.
func (e *Environment) rxLookup(tx *Cell, rxPos geo.Point, rxID, sc int, tMS int64) *rxEntry {
	block := int64(0)
	if f := e.Fading; f != nil && !f.Disabled {
		block = tMS / f.BlockMS
	}
	ent := e.rxSlot(propagation.LinkID(tx.ID, rxID), int32(sc))
	if ent.epoch != e.rxEpoch || ent.block != block {
		ent.epoch, ent.block = e.rxEpoch, block
		ent.mw = e.rxPowerMWUncached(tx, rxPos, rxID, sc, tMS)
		ent.dbmOK = false
	}
	return ent
}

// rxSlot returns the table slot for (link, sc), inserting the key on
// its first appearance. Growth keeps the load factor under 1/2 so the
// linear probes in rxProbe stay short.
func (e *Environment) rxSlot(link uint64, sc int32) *rxEntry {
	if 2*(e.rxUsed+1) > len(e.rxTab) {
		e.rxGrow()
	}
	ent := rxProbe(e.rxTab, link, sc)
	if !ent.used {
		ent.used, ent.link, ent.sc = true, link, sc
		// block -1 never matches a real coherence block (time is
		// non-negative), so the first lookup always computes.
		ent.block = -1
		e.rxUsed++
	}
	return ent
}

// rxProbe finds the entry holding (link, sc), or the empty slot where
// it would be inserted. The table length is a power of two.
func rxProbe(tab []rxEntry, link uint64, sc int32) *rxEntry {
	mask := uint64(len(tab) - 1)
	h := (link ^ uint64(uint32(sc))*0x9E3779B97F4A7C15) * 0x9E3779B97F4A7C15
	for i := (h >> 32) & mask; ; i = (i + 1) & mask {
		ent := &tab[i]
		if !ent.used || (ent.link == link && ent.sc == sc) {
			return ent
		}
	}
}

// rxGrow doubles the table (or seeds it) and rehashes live entries.
func (e *Environment) rxGrow() {
	n := 2 * len(e.rxTab)
	if n < 64 {
		n = 64
	}
	old := e.rxTab
	e.rxTab = make([]rxEntry, n)
	for i := range old {
		if old[i].used {
			*rxProbe(e.rxTab, old[i].link, old[i].sc) = old[i]
		}
	}
}

// noise returns the per-resource-block thermal noise floor in dBm and
// mW, recomputed only when the environment's noise figure changes.
func (e *Environment) noise() (float64, float64) {
	if !e.noiseSet || e.noiseNF != e.NoiseFigureDB {
		e.noiseNF = e.NoiseFigureDB
		e.noiseDBmC = propagation.NoiseDBm(RBBandwidthHz, e.NoiseFigureDB)
		e.noiseMWC = propagation.DBmToMW(e.noiseDBmC)
		e.noiseSet = true
	}
	return e.noiseDBmC, e.noiseMWC
}

// DownlinkSINR returns the data-resource-element SINR a client sees in
// subchannel sc from its serving cell at time tMS (milliseconds). Only
// interferers actually transmitting *data* in sc contribute: control
// signalling from powered-on neighbours occupies different resource
// elements and is modelled as puncturing (see PuncturedGoodputFactor),
// matching the paper's finding that signalling-only interference leaves
// data SINR intact and costs at most ~20% goodput (Figure 7b).
func (e *Environment) DownlinkSINR(serving *Cell, interferers []*Cell, cl *Client, sc int, tMS int64) float64 {
	sig, den := e.DownlinkSINRParts(serving, interferers, cl, sc, tMS)
	if !e.memoActive() {
		return propagation.MWToDBm(sig) - propagation.MWToDBm(den)
	}
	// Serving-link dB via the memo's lazy conversion — bit-identical to
	// MWToDBm(sig), but cached for the rest of the coherence block.
	signal := e.rxPowerDBm(serving, cl.Pos, cl.ID, sc, tMS)
	// The mW denominator repeats for the whole coherence block while
	// the interferer set holds still, so memoize its dB conversion on
	// the serving link's table entry. Probe fresh: the interferer
	// lookups above may have grown the table, moving the entry the
	// signal lookup touched. The entry exists (rxPowerDBm inserted
	// it), and a zero-valued denMW can never match (den includes a
	// strictly positive noise floor), so first use always computes.
	ent := rxProbe(e.rxTab, propagation.LinkID(serving.ID, cl.ID), int32(sc))
	if ent.denMW != den {
		ent.denMW, ent.denDB = den, propagation.MWToDBm(den)
	}
	return signal - ent.denDB
}

// DownlinkSINRParts returns DownlinkSINR's ingredients in the linear
// domain: the serving-cell received power and the interference-plus-
// noise denominator, both in mW per resource block. Feeding them to
// phy.LTECQIFromLinearSINR yields the exact CQI the dB chain computes
// while skipping every log10 — the batch-kernel path CQI reporting
// rides (CQIReporter.ReportLinearInto).
func (e *Environment) DownlinkSINRParts(serving *Cell, interferers []*Cell, cl *Client, sc int, tMS int64) (sigMW, denMW float64) {
	sigMW = e.rxPowerMW(serving, cl.Pos, cl.ID, sc, tMS)
	_, denMW = e.noise()
	for _, ic := range interferers {
		if ic == serving || !ic.TransmitsIn(sc) {
			continue
		}
		denMW += e.rxPowerMW(ic, cl.Pos, cl.ID, sc, tMS)
	}
	return sigMW, denMW
}

// PuncturedGoodputFactor returns the fraction of goodput that survives
// control-channel collisions from powered-on neighbouring cells.
// Reference and control signals occupy ~15% of a cell's resource
// elements regardless of data load; where a neighbour's control REs
// land on the serving cell's data REs with power comparable to or above
// the signal, those REs are lost. The factor is
// 1 - sum_i 0.15 * kill_i, floored at 0.4, where kill_i is a logistic
// in the signal-to-interferer power gap.
func (e *Environment) PuncturedGoodputFactor(serving *Cell, interferers []*Cell, cl *Client, sc int, tMS int64) float64 {
	signal := e.rxPowerDBm(serving, cl.Pos, cl.ID, sc, tMS)
	loss := 0.0
	for _, ic := range interferers {
		if ic == serving || ic.Activity == Off {
			continue
		}
		p := e.rxPowerDBm(ic, cl.Pos, cl.ID, sc, tMS)
		// Probability one punctured RE is unrecoverable: ~1 when the
		// interferer is stronger than the signal, fading out as the
		// signal wins by more than a few dB.
		kill := 1 / (1 + math.Pow(10, (signal-p-3)/10))
		loss += SignallingOnly.DutyFactor() * kill
	}
	f := 1 - loss
	if f < 0.4 {
		f = 0.4
	}
	return f
}

// DownlinkRSSI returns the client's received signal strength from a
// cell over the full carrier (the QXDM-style metric of Figure 7b).
func (e *Environment) DownlinkRSSI(tx *Cell, cl *Client, tMS int64) float64 {
	perRB := e.rxPowerDBm(tx, cl.Pos, cl.ID, 0, tMS)
	return perRB + 10*math.Log10(float64(tx.BW.ResourceBlocks()))
}

// UplinkSINR returns the SINR the serving cell sees from a client that
// concentrates its transmit power in nRBs resource blocks of
// subchannel sc — the OFDMA narrow-allocation advantage of Figure 1c.
func (e *Environment) UplinkSINR(cl *Client, serving *Cell, nRBs, sc int, tMS int64) float64 {
	if nRBs <= 0 {
		panic("lte: uplink needs at least one RB")
	}
	perRB := cl.TxPowerDBm - 10*math.Log10(float64(nRBs))
	gain := serving.Antenna.GainDB(serving.Pos.Bearing(cl.Pos))
	// Link loss is symmetric, so the uplink shares the downlink's
	// (cell, client) cache entry.
	loss := e.linkLossDB(serving.ID, cl.ID, serving.Pos, cl.Pos)
	fade := e.Fading.GainDB(propagation.LinkID(cl.ID+1<<16, serving.ID), sc, tMS)
	signal := perRB + gain - loss + fade
	noise, _ := e.noise()
	return signal - noise
}

// SNRAtDistance returns the median (no shadowing, no fading) downlink
// SNR over the full carrier at the given distance — the link-budget
// helper behind the coverage discussions.
func (e *Environment) SNRAtDistance(tx *Cell, d float64) float64 {
	eirp := tx.TxPowerDBm + tx.Antenna.GainDBi
	noise := propagation.NoiseDBm(tx.BW.Hz(), e.NoiseFigureDB)
	return eirp - e.Model.PathLossDB(d) - noise
}
