package lte

import (
	"math"

	"cellfi/internal/geo"
	"cellfi/internal/propagation"
)

// Link-level radio model: cells, clients, and per-subchannel SINR
// computation including neighbouring-cell interference. This is the
// substrate for the paper's link experiments (Figures 1, 7 and 8).

// Activity describes what an interfering cell is transmitting.
type Activity int

const (
	// Off: radio disabled, no interference.
	Off Activity = iota
	// SignallingOnly: no user data, but reference signals, sync
	// signals and control channels are always on. Roughly 15% of
	// downlink resource elements, matching the paper's finding that
	// signalling-only interference costs at most ~20% goodput
	// (Figure 7b).
	SignallingOnly
	// FullBuffer: backlogged data in every subframe.
	FullBuffer
)

// DutyFactor returns the fraction of resource elements the activity
// level occupies, i.e. the effective interference scaling.
func (a Activity) DutyFactor() float64 {
	switch a {
	case Off:
		return 0
	case SignallingOnly:
		return 0.15
	case FullBuffer:
		return 1
	}
	return 0
}

func (a Activity) String() string {
	switch a {
	case Off:
		return "off"
	case SignallingOnly:
		return "signalling-only"
	case FullBuffer:
		return "full-buffer"
	}
	return "?"
}

// Cell is an LTE small-cell access point.
type Cell struct {
	ID         int
	Pos        geo.Point
	TxPowerDBm float64
	Antenna    propagation.Antenna
	BW         Bandwidth
	TDD        TDDConfig
	// Activity is the cell's transmit behaviour when viewed as an
	// interferer.
	Activity Activity
	// ActiveSubchannels restricts which subchannels the cell
	// transmits in; nil means all (plain LTE). This is the hook the
	// CellFi interference-management component drives.
	ActiveSubchannels map[int]bool
}

// TransmitsIn reports whether the cell emits data energy in subchannel
// sc. Signalling (CRS/sync/PDCCH) is spread across the whole carrier
// regardless of the data allocation, which is why a cell is never
// interference-free while powered on (Section 6.3.1).
func (c *Cell) TransmitsIn(sc int) bool {
	if c.Activity != FullBuffer {
		return false
	}
	if c.ActiveSubchannels == nil {
		return true
	}
	return c.ActiveSubchannels[sc]
}

// PerRBPowerDBm returns the transmit power allocated to one resource
// block: total power divided evenly across the carrier's RBs.
func (c *Cell) PerRBPowerDBm() float64 {
	return c.TxPowerDBm - 10*math.Log10(float64(c.BW.ResourceBlocks()))
}

// Client is a mobile device.
type Client struct {
	ID         int
	Pos        geo.Point
	TxPowerDBm float64
	// Serving is the attached cell (nil while detached).
	Serving *Cell
}

// Environment binds the propagation model to a noise figure and fading
// process, and answers SINR questions.
type Environment struct {
	Model         *propagation.Model
	Fading        *propagation.Fading
	NoiseFigureDB float64
	// Cache, when non-nil, memoizes the static link loss (path loss +
	// frozen shadowing) per (cell ID, client ID) pair, so per-subframe
	// SINR/CQI queries over a static topology skip the full model —
	// including the per-call RNG the shadowing term seeds. Positions
	// are only consulted on a miss: code that moves a cell or client
	// mid-run must call Invalidate with its ID. NewEnvironment enables
	// the cache; zero-value Environments compute uncached.
	Cache *propagation.LinkCache
}

// NewEnvironment builds the default evaluation environment: calibrated
// urban propagation, block Rayleigh fading, 7 dB receiver noise figure,
// link-gain caching on.
func NewEnvironment(seed int64) *Environment {
	model := propagation.DefaultUrban(seed)
	return &Environment{
		Model:         model,
		Fading:        propagation.NewFading(seed + 1),
		NoiseFigureDB: 7,
		Cache:         propagation.NewLinkCache(model, 0),
	}
}

// Invalidate marks every cached link touching the given cell or client
// ID stale. Call after moving a node.
func (e *Environment) Invalidate(nodeID int) {
	if e.Cache != nil {
		e.Cache.Invalidate(nodeID)
	}
}

// linkLossDB returns the static link loss for the (cell, client) pair,
// through the cache when one is attached to the current model.
func (e *Environment) linkLossDB(cellID, clientID int, cellPos, clientPos geo.Point) float64 {
	if e.Cache != nil && e.Cache.Model() == e.Model {
		return e.Cache.LossDB(cellID, clientID, cellPos, clientPos)
	}
	return e.Model.LinkLossDB(cellPos, clientPos)
}

// rxPowerDBm returns the power a receiver at rxPos sees from cell tx on
// one resource block of subchannel sc at time tMS.
func (e *Environment) rxPowerDBm(tx *Cell, rxPos geo.Point, rxID, sc int, tMS int64) float64 {
	gain := tx.Antenna.GainDB(tx.Pos.Bearing(rxPos))
	loss := e.linkLossDB(tx.ID, rxID, tx.Pos, rxPos)
	fade := e.Fading.GainDB(propagation.LinkID(tx.ID, rxID), sc, tMS)
	return tx.PerRBPowerDBm() + gain - loss + fade
}

// DownlinkSINR returns the data-resource-element SINR a client sees in
// subchannel sc from its serving cell at time tMS (milliseconds). Only
// interferers actually transmitting *data* in sc contribute: control
// signalling from powered-on neighbours occupies different resource
// elements and is modelled as puncturing (see PuncturedGoodputFactor),
// matching the paper's finding that signalling-only interference leaves
// data SINR intact and costs at most ~20% goodput (Figure 7b).
func (e *Environment) DownlinkSINR(serving *Cell, interferers []*Cell, cl *Client, sc int, tMS int64) float64 {
	signal := e.rxPowerDBm(serving, cl.Pos, cl.ID, sc, tMS)
	noise := propagation.NoiseDBm(RBBandwidthHz, e.NoiseFigureDB)
	den := propagation.DBmToMW(noise)
	for _, ic := range interferers {
		if ic == serving || !ic.TransmitsIn(sc) {
			continue
		}
		den += propagation.DBmToMW(e.rxPowerDBm(ic, cl.Pos, cl.ID, sc, tMS))
	}
	return signal - propagation.MWToDBm(den)
}

// PuncturedGoodputFactor returns the fraction of goodput that survives
// control-channel collisions from powered-on neighbouring cells.
// Reference and control signals occupy ~15% of a cell's resource
// elements regardless of data load; where a neighbour's control REs
// land on the serving cell's data REs with power comparable to or above
// the signal, those REs are lost. The factor is
// 1 - sum_i 0.15 * kill_i, floored at 0.4, where kill_i is a logistic
// in the signal-to-interferer power gap.
func (e *Environment) PuncturedGoodputFactor(serving *Cell, interferers []*Cell, cl *Client, sc int, tMS int64) float64 {
	signal := e.rxPowerDBm(serving, cl.Pos, cl.ID, sc, tMS)
	loss := 0.0
	for _, ic := range interferers {
		if ic == serving || ic.Activity == Off {
			continue
		}
		p := e.rxPowerDBm(ic, cl.Pos, cl.ID, sc, tMS)
		// Probability one punctured RE is unrecoverable: ~1 when the
		// interferer is stronger than the signal, fading out as the
		// signal wins by more than a few dB.
		kill := 1 / (1 + math.Pow(10, (signal-p-3)/10))
		loss += SignallingOnly.DutyFactor() * kill
	}
	f := 1 - loss
	if f < 0.4 {
		f = 0.4
	}
	return f
}

// DownlinkRSSI returns the client's received signal strength from a
// cell over the full carrier (the QXDM-style metric of Figure 7b).
func (e *Environment) DownlinkRSSI(tx *Cell, cl *Client, tMS int64) float64 {
	perRB := e.rxPowerDBm(tx, cl.Pos, cl.ID, 0, tMS)
	return perRB + 10*math.Log10(float64(tx.BW.ResourceBlocks()))
}

// UplinkSINR returns the SINR the serving cell sees from a client that
// concentrates its transmit power in nRBs resource blocks of
// subchannel sc — the OFDMA narrow-allocation advantage of Figure 1c.
func (e *Environment) UplinkSINR(cl *Client, serving *Cell, nRBs, sc int, tMS int64) float64 {
	if nRBs <= 0 {
		panic("lte: uplink needs at least one RB")
	}
	perRB := cl.TxPowerDBm - 10*math.Log10(float64(nRBs))
	gain := serving.Antenna.GainDB(serving.Pos.Bearing(cl.Pos))
	// Link loss is symmetric, so the uplink shares the downlink's
	// (cell, client) cache entry.
	loss := e.linkLossDB(serving.ID, cl.ID, serving.Pos, cl.Pos)
	fade := e.Fading.GainDB(propagation.LinkID(cl.ID+1<<16, serving.ID), sc, tMS)
	signal := perRB + gain - loss + fade
	noise := propagation.NoiseDBm(RBBandwidthHz, e.NoiseFigureDB)
	return signal - noise
}

// SNRAtDistance returns the median (no shadowing, no fading) downlink
// SNR over the full carrier at the given distance — the link-budget
// helper behind the coverage discussions.
func (e *Environment) SNRAtDistance(tx *Cell, d float64) float64 {
	eirp := tx.TxPowerDBm + tx.Antenna.GainDBi
	noise := propagation.NoiseDBm(tx.BW.Hz(), e.NoiseFigureDB)
	return eirp - e.Model.PathLossDB(d) - noise
}
