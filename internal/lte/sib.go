package lte

import (
	"errors"
	"fmt"
)

// System information broadcast. Section 4.2: once a channel is
// selected, the access point "sets the centre frequency (EARFCN) for
// downlink transmission and announces the uplink frequency in the LTE
// SIB control message, both in granularity of 100 kHz", along with the
// maximum transmit power the database allows. This file implements a
// compact bit-exact encoding of that broadcast — a simplified stand-in
// for the ASN.1 PER encoding real SIB1 uses, with the same fields and
// granularities.

// SIB1 carries the cell's operating parameters to clients.
type SIB1 struct {
	// CellID is the physical cell identity (0..503).
	CellID uint16
	// DownlinkEARFCN / UplinkEARFCN in 100 kHz units. TDD CellFi uses
	// the same value for both, but the encoding keeps them separate
	// as the standard does.
	DownlinkEARFCN uint32
	UplinkEARFCN   uint32
	// MaxTxPowerDBm is the database's EIRP cap for clients, encoded
	// in whole dB from -30..+33 (6 bits).
	MaxTxPowerDBm int8
	// TDDConfigIndex selects the UL/DL configuration (0..6).
	TDDConfigIndex uint8
	// Bandwidth in MHz (5, 10, 15, 20).
	Bandwidth Bandwidth
}

// sibMagic guards against decoding garbage.
const sibMagic = 0xC5

// field widths (bits)
const (
	cellIDBits = 9
	earfcnBits = 18 // covers 100 kHz units up to 26.2 GHz
	powerBits  = 6
	tddBits    = 3
	bwBits     = 2
)

var bwCode = map[Bandwidth]uint64{BW5MHz: 0, BW10MHz: 1, BW15MHz: 2, BW20MHz: 3}
var bwFromCode = [4]Bandwidth{BW5MHz, BW10MHz, BW15MHz, BW20MHz}

// bitWriter packs big-endian bit fields.
type bitWriter struct {
	buf  []byte
	nbit uint
}

func (w *bitWriter) write(v uint64, bits uint) {
	for i := int(bits) - 1; i >= 0; i-- {
		if w.nbit%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		if v&(1<<uint(i)) != 0 {
			w.buf[w.nbit/8] |= 1 << (7 - w.nbit%8)
		}
		w.nbit++
	}
}

// bitReader unpacks big-endian bit fields.
type bitReader struct {
	buf  []byte
	nbit uint
}

func (r *bitReader) read(bits uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < bits; i++ {
		byteIdx := r.nbit / 8
		if int(byteIdx) >= len(r.buf) {
			return 0, errors.New("lte: SIB truncated")
		}
		v <<= 1
		if r.buf[byteIdx]&(1<<(7-r.nbit%8)) != 0 {
			v |= 1
		}
		r.nbit++
	}
	return v, nil
}

// Validate checks field ranges before encoding.
func (s SIB1) Validate() error {
	if s.CellID > 503 {
		return fmt.Errorf("lte: cell ID %d out of range 0..503", s.CellID)
	}
	if s.DownlinkEARFCN >= 1<<earfcnBits || s.UplinkEARFCN >= 1<<earfcnBits {
		return errors.New("lte: EARFCN out of range")
	}
	if s.MaxTxPowerDBm < -30 || s.MaxTxPowerDBm > 33 {
		return fmt.Errorf("lte: max TX power %d outside -30..33 dBm", s.MaxTxPowerDBm)
	}
	if s.TDDConfigIndex > 6 {
		return fmt.Errorf("lte: TDD configuration %d out of range 0..6", s.TDDConfigIndex)
	}
	if _, ok := bwCode[s.Bandwidth]; !ok {
		return fmt.Errorf("lte: bandwidth %d MHz not encodable", s.Bandwidth)
	}
	return nil
}

// Marshal encodes the broadcast into its on-air byte form.
func (s SIB1) Marshal() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	w := &bitWriter{}
	w.write(sibMagic, 8)
	w.write(uint64(s.CellID), cellIDBits)
	w.write(uint64(s.DownlinkEARFCN), earfcnBits)
	w.write(uint64(s.UplinkEARFCN), earfcnBits)
	w.write(uint64(s.MaxTxPowerDBm+30), powerBits) // offset binary
	w.write(uint64(s.TDDConfigIndex), tddBits)
	w.write(bwCode[s.Bandwidth], bwBits)
	return w.buf, nil
}

// UnmarshalSIB1 decodes an on-air broadcast.
func UnmarshalSIB1(b []byte) (SIB1, error) {
	r := &bitReader{buf: b}
	magic, err := r.read(8)
	if err != nil {
		return SIB1{}, err
	}
	if magic != sibMagic {
		return SIB1{}, errors.New("lte: not a SIB1 broadcast")
	}
	var s SIB1
	fields := []struct {
		bits uint
		set  func(uint64)
	}{
		{cellIDBits, func(v uint64) { s.CellID = uint16(v) }},
		{earfcnBits, func(v uint64) { s.DownlinkEARFCN = uint32(v) }},
		{earfcnBits, func(v uint64) { s.UplinkEARFCN = uint32(v) }},
		{powerBits, func(v uint64) { s.MaxTxPowerDBm = int8(v) - 30 }},
		{tddBits, func(v uint64) { s.TDDConfigIndex = uint8(v) }},
		{bwBits, func(v uint64) { s.Bandwidth = bwFromCode[v] }},
	}
	for _, f := range fields {
		v, err := r.read(f.bits)
		if err != nil {
			return SIB1{}, err
		}
		f.set(v)
	}
	if err := s.Validate(); err != nil {
		return SIB1{}, fmt.Errorf("lte: decoded SIB invalid: %w", err)
	}
	return s, nil
}

// SIB1ForLease builds the broadcast a CellFi AP transmits after the
// channel selector hands it a lease: downlink and uplink EARFCN on the
// leased centre (TDD: identical), the database's power cap, and the
// evaluation's TDD configuration.
func SIB1ForLease(cellID uint16, centerFreqHz float64, maxEIRPdBm float64, bw Bandwidth) (SIB1, error) {
	earfcn := uint32(EARFCNFromFreq(centerFreqHz))
	cap := int8(maxEIRPdBm)
	if float64(cap) > 33 {
		cap = 33
	}
	s := SIB1{
		CellID:         cellID,
		DownlinkEARFCN: earfcn,
		UplinkEARFCN:   earfcn,
		MaxTxPowerDBm:  cap,
		TDDConfigIndex: 4,
		Bandwidth:      bw,
	}
	return s, s.Validate()
}
