package lte

import (
	"testing"
	"testing/quick"
)

func allSubchannels(bw Bandwidth) []int {
	out := make([]int, bw.Subchannels())
	for i := range out {
		out[i] = i
	}
	return out
}

func uniformCQI(bw Bandwidth, cqi int) []int {
	out := make([]int, bw.Subchannels())
	for i := range out {
		out[i] = cqi
	}
	return out
}

// allocMap renders a scratch allocation in the historical
// subchannel -> UE id form for test assertions.
func allocMap(s *AllocScratch, ues []*SchedUE) map[int]int {
	m := map[int]int{}
	for sc, ui := range s.UEOf {
		if ui >= 0 {
			m[sc] = ues[ui].ID
		}
	}
	return m
}

// servedMap renders per-UE served bits keyed by UE id.
func servedMap(s *AllocScratch, ues []*SchedUE) map[int]int64 {
	m := map[int]int64{}
	for i, b := range s.Served {
		if b != 0 {
			m[ues[i].ID] = b
		}
	}
	return m
}

func TestRoundRobinSharesEvenly(t *testing.T) {
	sched := &RoundRobin{}
	ues := []*SchedUE{
		{ID: 1, BacklogBits: 1 << 40, SubbandCQI: uniformCQI(BW5MHz, 10)},
		{ID: 2, BacklogBits: 1 << 40, SubbandCQI: uniformCQI(BW5MHz, 10)},
	}
	var scratch AllocScratch
	served := map[int]int64{}
	for sf := 0; sf < 100; sf++ {
		sched.Allocate(&scratch, BW5MHz, allSubchannels(BW5MHz), ues)
		for id, bits := range servedMap(&scratch, ues) {
			served[id] += bits
		}
	}
	if served[1] == 0 || served[2] == 0 {
		t.Fatal("a client starved under round robin")
	}
	ratio := float64(served[1]) / float64(served[2])
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("round robin imbalance: %d vs %d", served[1], served[2])
	}
}

func TestSchedulerRespectsAllowedSet(t *testing.T) {
	for _, sched := range []Scheduler{&RoundRobin{}, &ProportionalFair{}} {
		ues := []*SchedUE{{ID: 1, BacklogBits: 1 << 40, SubbandCQI: uniformCQI(BW5MHz, 10)}}
		allowed := []int{2, 5, 11}
		var scratch AllocScratch
		sched.Allocate(&scratch, BW5MHz, allowed, ues)
		alloc := allocMap(&scratch, ues)
		for sc := range alloc {
			ok := false
			for _, a := range allowed {
				if sc == a {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("%s scheduled outside allowed set: subchannel %d", sched.Name(), sc)
			}
		}
		if len(alloc) != len(allowed) {
			t.Fatalf("%s used %d of %d allowed subchannels for a backlogged client",
				sched.Name(), len(alloc), len(allowed))
		}
	}
}

func TestSchedulerDrainsBacklog(t *testing.T) {
	for _, sched := range []Scheduler{&RoundRobin{}, &ProportionalFair{}} {
		u := &SchedUE{ID: 1, BacklogBits: 3000, SubbandCQI: uniformCQI(BW5MHz, 15)}
		var scratch AllocScratch
		total := int64(0)
		for sf := 0; sf < 20 && u.BacklogBits > 0; sf++ {
			sched.Allocate(&scratch, BW5MHz, allSubchannels(BW5MHz), []*SchedUE{u})
			total += scratch.Served[0]
		}
		if u.BacklogBits != 0 {
			t.Fatalf("%s left %d bits queued", sched.Name(), u.BacklogBits)
		}
		if total != 3000 {
			t.Fatalf("%s served %d bits, want exactly the 3000 queued", sched.Name(), total)
		}
	}
}

func TestSchedulerSkipsIdleAndZeroCQI(t *testing.T) {
	for _, sched := range []Scheduler{&RoundRobin{}, &ProportionalFair{}} {
		ues := []*SchedUE{
			{ID: 1, BacklogBits: 0, SubbandCQI: uniformCQI(BW5MHz, 10)},      // idle
			{ID: 2, BacklogBits: 1 << 20, SubbandCQI: uniformCQI(BW5MHz, 0)}, // out of range
		}
		var scratch AllocScratch
		sched.Allocate(&scratch, BW5MHz, allSubchannels(BW5MHz), ues)
		if scratch.Grants() != 0 || len(servedMap(&scratch, ues)) != 0 {
			t.Fatalf("%s scheduled idle or undecodable clients: %v",
				sched.Name(), servedMap(&scratch, ues))
		}
	}
}

func TestProportionalFairPrefersGoodSubbands(t *testing.T) {
	// UE 1 is strong on low subchannels, UE 2 on high ones: PF should
	// give each its good half, beating round-robin's blind split.
	mkCQI := func(lowGood bool) []int {
		out := make([]int, BW5MHz.Subchannels())
		for i := range out {
			if (i < 7) == lowGood {
				out[i] = 12
			} else {
				out[i] = 2
			}
		}
		return out
	}
	pf := &ProportionalFair{}
	ues := []*SchedUE{
		{ID: 1, BacklogBits: 1 << 40, SubbandCQI: mkCQI(true)},
		{ID: 2, BacklogBits: 1 << 40, SubbandCQI: mkCQI(false)},
	}
	var scratch AllocScratch
	goodPlacements, total := 0, 0
	for sf := 0; sf < 200; sf++ {
		pf.Allocate(&scratch, BW5MHz, allSubchannels(BW5MHz), ues)
		for sc, id := range allocMap(&scratch, ues) {
			total++
			if (sc < 7 && id == 1) || (sc >= 7 && id == 2) {
				goodPlacements++
			}
		}
	}
	frac := float64(goodPlacements) / float64(total)
	if frac < 0.9 {
		t.Fatalf("PF placed only %.0f%% of grants on good subbands", frac*100)
	}
}

func TestProportionalFairLongRunFairness(t *testing.T) {
	// Symmetric clients must converge to equal shares.
	pf := &ProportionalFair{}
	ues := []*SchedUE{
		{ID: 1, BacklogBits: 1 << 50, SubbandCQI: uniformCQI(BW5MHz, 10)},
		{ID: 2, BacklogBits: 1 << 50, SubbandCQI: uniformCQI(BW5MHz, 10)},
		{ID: 3, BacklogBits: 1 << 50, SubbandCQI: uniformCQI(BW5MHz, 10)},
	}
	var scratch AllocScratch
	served := map[int]int64{}
	for sf := 0; sf < 3000; sf++ {
		pf.Allocate(&scratch, BW5MHz, allSubchannels(BW5MHz), ues)
		for id, b := range servedMap(&scratch, ues) {
			served[id] += b
		}
	}
	var min, max int64 = 1 << 62, 0
	for _, b := range served {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if float64(min)/float64(max) < 0.9 {
		t.Fatalf("PF long-run unfairness: min %d max %d", min, max)
	}
}

// Property: no scheduler ever serves more bits than the transport
// blocks of its allocated subchannels allow, and never goes negative.
func TestQuickSchedulerConservation(t *testing.T) {
	f := func(backlogs []uint16, cqiSeed uint8) bool {
		if len(backlogs) == 0 {
			return true
		}
		if len(backlogs) > 8 {
			backlogs = backlogs[:8]
		}
		mk := func() []*SchedUE {
			ues := make([]*SchedUE, len(backlogs))
			for i, b := range backlogs {
				cqi := 1 + (int(cqiSeed)+i)%15
				ues[i] = &SchedUE{ID: i, BacklogBits: int64(b), SubbandCQI: uniformCQI(BW5MHz, cqi)}
			}
			return ues
		}
		for _, sched := range []Scheduler{&RoundRobin{}, &ProportionalFair{}} {
			ues := mk()
			var want int64
			for _, u := range ues {
				want += u.BacklogBits
			}
			var scratch AllocScratch
			sched.Allocate(&scratch, BW5MHz, allSubchannels(BW5MHz), ues)
			var got, left int64
			for _, b := range scratch.Served {
				if b < 0 {
					return false
				}
				got += b
			}
			for _, u := range ues {
				if u.BacklogBits < 0 {
					return false
				}
				left += u.BacklogBits
			}
			if got+left != want {
				return false
			}
			// Per-UE capacity bound: a UE's served bits cannot
			// exceed the top-CQI transport blocks of exactly the
			// subchannels allocated to it.
			bound := map[int]int64{}
			for sc, id := range allocMap(&scratch, ues) {
				bound[id] += int64(TransportBlockBits(15, BW5MHz.SubchannelRBs(sc)))
			}
			for id, bits := range servedMap(&scratch, ues) {
				if bits > bound[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The steady-state scheduling path must be allocation-free: the
// scratch grows on the first call and is pure reuse afterwards.
func TestSchedulerAllocateZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name  string
		sched Scheduler
	}{
		{"RoundRobin", &RoundRobin{}},
		{"ProportionalFair", &ProportionalFair{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ues := make([]*SchedUE, 8)
			for i := range ues {
				ues[i] = &SchedUE{ID: i, SubbandCQI: uniformCQI(BW5MHz, 1+(i*3)%15)}
			}
			allowed := allSubchannels(BW5MHz)
			var scratch AllocScratch
			run := func() {
				for _, u := range ues {
					u.BacklogBits = 1 << 30
				}
				tc.sched.Allocate(&scratch, BW5MHz, allowed, ues)
			}
			run() // warm up: grow the scratch once
			if avg := testing.AllocsPerRun(200, run); avg != 0 {
				t.Fatalf("%s.Allocate allocates %.1f times per subframe in steady state", tc.name, avg)
			}
		})
	}
}

// AppendGrants shares the scratch's working buffers, so the grant path
// is allocation-free too once dst has grown.
func TestAppendGrantsZeroAllocs(t *testing.T) {
	ues := make([]*SchedUE, 8)
	for i := range ues {
		ues[i] = &SchedUE{ID: i, SubbandCQI: uniformCQI(BW5MHz, 1+(i*3)%15)}
	}
	allowed := allSubchannels(BW5MHz)
	pf := &ProportionalFair{}
	var scratch AllocScratch
	var dcis []DCI
	run := func() {
		for _, u := range ues {
			u.BacklogBits = 1 << 30
		}
		pf.Allocate(&scratch, BW5MHz, allowed, ues)
		dcis = AppendGrants(dcis[:0], BW5MHz, &scratch, ues)
	}
	run()
	if avg := testing.AllocsPerRun(200, run); avg != 0 {
		t.Fatalf("Allocate+AppendGrants allocates %.1f times per subframe", avg)
	}
	if len(dcis) == 0 {
		t.Fatal("no grants produced for backlogged clients")
	}
}

func BenchmarkProportionalFairSubframe(b *testing.B) {
	pf := &ProportionalFair{}
	ues := make([]*SchedUE, 6)
	for i := range ues {
		ues[i] = &SchedUE{ID: i, BacklogBits: 1 << 40, SubbandCQI: uniformCQI(BW5MHz, 1+i*2)}
	}
	allowed := allSubchannels(BW5MHz)
	var scratch AllocScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf.Allocate(&scratch, BW5MHz, allowed, ues)
	}
}
