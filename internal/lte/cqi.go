package lte

import (
	"math/rand"

	"cellfi/internal/phy"
)

// CQI reporting. LTE clients measure per-subchannel SINR and feed back
// channel-quality indicators. CellFi configures higher-layer aperiodic
// mode 3-0 sub-band reports every 2 ms (Section 5.1) and detects
// interference from drops in the reported values.

// CQIReport is one mode 3-0 report: a wideband CQI plus one CQI per
// subchannel (sub-band).
type CQIReport struct {
	Wideband int
	Subband  []int
	// Bits is the on-air payload of the report.
	Bits int
}

// CQIReporter quantizes a client's true per-subchannel SINRs into CQI
// reports, with optional measurement noise. One reporter models one
// client's feedback chain.
type CQIReporter struct {
	// NoiseProb is the probability that a sub-band CQI is off by one
	// step (either direction). The paper's detector is evaluated
	// against exactly this kind of imperfection.
	NoiseProb float64
	rng       *rand.Rand

	// Wideband EESM memo: the exact SINR vector of the last report and
	// the CQI it quantized to. Within a fading coherence block the
	// vector repeats bit-for-bit, so an element-wise equality check
	// replaces the per-subband exp/pow chain; any difference at all
	// recomputes. The memo draws nothing from rng, so the noise-draw
	// stream is unaffected.
	lastSinrs []float64
	lastWB    int
	lastSet   bool

	// lastScratch is ReportLinearInto's reusable ratio buffer.
	lastScratch []float64
}

// NewCQIReporter returns a reporter with the given measurement noise
// probability, using rng for the noise draws (may be nil when
// NoiseProb is zero).
func NewCQIReporter(noiseProb float64, rng *rand.Rand) *CQIReporter {
	return &CQIReporter{NoiseProb: noiseProb, rng: rng}
}

// Report builds a mode 3-0 report from true per-subchannel SINRs.
func (r *CQIReporter) Report(sinrsDB []float64) CQIReport {
	return r.ReportInto(sinrsDB, make([]int, len(sinrsDB)))
}

// ReportInto is Report writing the sub-band CQIs into the caller's sub
// slice (len(sub) must be at least len(sinrsDB)), so per-report callers
// like CellSim reuse one buffer instead of allocating every cycle. The
// returned report aliases sub. Noise draws happen in sub-band order
// followed by the wideband computation, exactly as Report always has,
// so rng streams stay aligned with pre-existing traces.
func (r *CQIReporter) ReportInto(sinrsDB []float64, sub []int) CQIReport {
	sub = sub[:len(sinrsDB)]
	for i, s := range sinrsDB {
		c := phy.LTECQIFromSINR(s)
		if r.NoiseProb > 0 && r.rng != nil && r.rng.Float64() < r.NoiseProb {
			if r.rng.Intn(2) == 0 {
				c--
			} else {
				c++
			}
			if c < 0 {
				c = 0
			}
			if c > phy.LTECQICount {
				c = phy.LTECQICount
			}
		}
		sub[i] = c
	}
	return CQIReport{
		Wideband: r.wideband(sinrsDB),
		Subband:  sub,
		Bits:     CQIReportBits,
	}
}

// ReportLinearInto is ReportInto fed linear-domain SINRs: sig[i]/den[i]
// is subchannel i's signal over interference-plus-noise, as produced by
// Environment.DownlinkSINRParts. Sub-band CQIs come from the linear
// thresholds (bit-identical to the dB chain, no log10 per sub-band);
// the wideband CQI comes from linear-domain EESM. Noise draws happen in
// sub-band order followed by the wideband computation, exactly like
// ReportInto, so the rng stream stays aligned. The wideband memo keys
// on the ratio vector, which repeats bit-for-bit within a coherence
// block just as the dB vector did.
func (r *CQIReporter) ReportLinearInto(sig, den []float64, sub []int) CQIReport {
	sub = sub[:len(sig)]
	ratios := r.lastScratch[:0]
	for i := range sig {
		ratio := sig[i] / den[i]
		ratios = append(ratios, ratio)
		c := phy.LTECQIFromLinearSINR(sig[i], den[i])
		if r.NoiseProb > 0 && r.rng != nil && r.rng.Float64() < r.NoiseProb {
			if r.rng.Intn(2) == 0 {
				c--
			} else {
				c++
			}
			if c < 0 {
				c = 0
			}
			if c > phy.LTECQICount {
				c = phy.LTECQICount
			}
		}
		sub[i] = c
	}
	r.lastScratch = ratios
	return CQIReport{
		Wideband: r.widebandLinear(ratios),
		Subband:  sub,
		Bits:     CQIReportBits,
	}
}

// widebandLinear serves the wideband CQI from linear ratios through the
// same memo slot the dB path uses (the two entry points are never mixed
// on one reporter: the memo vector's domain follows the caller's).
func (r *CQIReporter) widebandLinear(ratios []float64) int {
	if r.lastSet && len(r.lastSinrs) == len(ratios) {
		same := true
		for i, v := range ratios {
			if r.lastSinrs[i] != v {
				same = false
				break
			}
		}
		if same {
			return r.lastWB
		}
	}
	wb := phy.LTECQIFromSINR(phy.EffectiveSINRdBFromLinear(ratios))
	r.lastSinrs = append(r.lastSinrs[:0], ratios...)
	r.lastWB = wb
	r.lastSet = true
	return wb
}

// wideband serves the EESM-derived wideband CQI through the memo.
func (r *CQIReporter) wideband(sinrsDB []float64) int {
	if r.lastSet && len(r.lastSinrs) == len(sinrsDB) {
		same := true
		for i, s := range sinrsDB {
			if r.lastSinrs[i] != s {
				same = false
				break
			}
		}
		if same {
			return r.lastWB
		}
	}
	wb := phy.LTECQIFromSINR(phy.EffectiveSINRdB(sinrsDB))
	r.lastSinrs = append(r.lastSinrs[:0], sinrsDB...)
	r.lastWB = wb
	r.lastSet = true
	return wb
}

// CQITracker keeps, per subchannel, the maximum CQI observed in a
// sliding window. The CellFi interference detector (Section 6.3.2)
// compares fresh reports against this maximum: a sustained drop below
// 60% of the windowed max signals interference.
type CQITracker struct {
	subchannels int
	window      int
	history     [][]int // ring buffers per subchannel
	pos, filled int
}

// NewCQITracker tracks maxima over the given number of reports
// (the paper uses windows of a few hundred 2 ms samples).
func NewCQITracker(subchannels, window int) *CQITracker {
	if subchannels <= 0 || window <= 0 {
		panic("lte: tracker needs positive dimensions")
	}
	h := make([][]int, subchannels)
	for i := range h {
		h[i] = make([]int, window)
	}
	return &CQITracker{subchannels: subchannels, window: window, history: h}
}

// Add records one report's sub-band values.
func (t *CQITracker) Add(report CQIReport) {
	if len(report.Subband) != t.subchannels {
		panic("lte: report subchannel count mismatch")
	}
	for i, c := range report.Subband {
		t.history[i][t.pos] = c
	}
	t.pos = (t.pos + 1) % t.window
	if t.filled < t.window {
		t.filled++
	}
}

// Max returns the maximum CQI seen for a subchannel within the window,
// or 0 if nothing has been recorded.
func (t *CQITracker) Max(subchannel int) int {
	m := 0
	for i := 0; i < t.filled; i++ {
		if c := t.history[subchannel][i]; c > m {
			m = c
		}
	}
	return m
}

// Samples returns how many reports the window currently holds.
func (t *CQITracker) Samples() int { return t.filled }
