package lte

import (
	"math"
	"testing"
)

func TestBandwidthGrid(t *testing.T) {
	cases := []struct {
		bw              Bandwidth
		rbs, subch, rbg int
	}{
		{BW5MHz, 25, 13, 2},
		{BW10MHz, 50, 17, 3},
		{BW15MHz, 75, 19, 4},
		{BW20MHz, 100, 25, 4},
	}
	for _, c := range cases {
		if got := c.bw.ResourceBlocks(); got != c.rbs {
			t.Errorf("%d MHz RBs = %d, want %d", c.bw, got, c.rbs)
		}
		if got := c.bw.Subchannels(); got != c.subch {
			t.Errorf("%d MHz subchannels = %d, want %d", c.bw, got, c.subch)
		}
		if got := c.bw.RBGSize(); got != c.rbg {
			t.Errorf("%d MHz RBG = %d, want %d", c.bw, got, c.rbg)
		}
	}
}

// The paper: "there are 13 such subchannels on 5MHz channel and 25
// subchannels on a 20 MHz channel" (Section 5).
func TestPaperSubchannelCounts(t *testing.T) {
	if BW5MHz.Subchannels() != 13 || BW20MHz.Subchannels() != 25 {
		t.Fatal("subchannel counts disagree with the paper")
	}
}

func TestSubchannelRBsPartition(t *testing.T) {
	for _, bw := range []Bandwidth{BW5MHz, BW10MHz, BW15MHz, BW20MHz} {
		total := 0
		for i := 0; i < bw.Subchannels(); i++ {
			rbs := bw.SubchannelRBs(i)
			if rbs <= 0 || rbs > bw.RBGSize() {
				t.Errorf("%d MHz subchannel %d spans %d RBs", bw, i, rbs)
			}
			total += rbs
		}
		if total != bw.ResourceBlocks() {
			t.Errorf("%d MHz subchannels cover %d RBs, want %d", bw, total, bw.ResourceBlocks())
		}
	}
}

func TestSubchannelRBsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range subchannel should panic")
		}
	}()
	BW5MHz.SubchannelRBs(13)
}

func TestSubchannelHz(t *testing.T) {
	if got := BW5MHz.SubchannelHz(0); got != 360e3 {
		t.Errorf("first 5 MHz subchannel = %g Hz, want 360 kHz", got)
	}
	if got := BW5MHz.SubchannelHz(12); got != 180e3 {
		t.Errorf("last 5 MHz subchannel = %g Hz, want 180 kHz", got)
	}
}

// TDD configuration 4: 7 downlink, 2 uplink, 1 special (Section 6.3.4).
func TestTDDConfig4Pattern(t *testing.T) {
	var d, u, s int
	for i := int64(0); i < 10; i++ {
		switch TDDConfig4.Kind(i) {
		case Downlink:
			d++
		case Uplink:
			u++
		case Special:
			s++
		}
	}
	if d != 7 || u != 2 || s != 1 {
		t.Fatalf("TDD-4 pattern %dD/%dU/%dS, want 7/2/1", d, u, s)
	}
	// Pattern repeats every frame.
	if TDDConfig4.Kind(0) != TDDConfig4.Kind(10) || TDDConfig4.Kind(3) != TDDConfig4.Kind(23) {
		t.Fatal("TDD pattern does not repeat per frame")
	}
}

func TestTDDFractions(t *testing.T) {
	if got := TDDConfig4.DownlinkFraction(); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("DL fraction = %g, want 0.75 (7 + half the special)", got)
	}
	if got := TDDConfig4.UplinkFraction(); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("UL fraction = %g, want 0.2", got)
	}
}

// Section 6.3.4: "The overhead of signaling is 10 Kbps on the uplink
// for a reporting period of 2 ms."
func TestCQISignalingOverhead(t *testing.T) {
	if got := CQISignalingOverheadBps(); math.Abs(got-10e3) > 1 {
		t.Fatalf("CQI signalling overhead = %g bps, want 10 kbps", got)
	}
}

func TestEARFCNRoundTrip(t *testing.T) {
	for _, f := range []float64{474e6, 600e6, 695e6} {
		e := EARFCNFromFreq(f)
		if got := FreqFromEARFCN(e); got != f {
			t.Errorf("EARFCN round-trip %g -> %d -> %g", f, e, got)
		}
	}
	// 100 kHz granularity (Section 4.2): sub-100kHz detail is dropped.
	if EARFCNFromFreq(474.05e6) != EARFCNFromFreq(474.0e6) {
		t.Error("EARFCN granularity should be 100 kHz")
	}
}

func TestSubframeKindString(t *testing.T) {
	if Downlink.String() != "D" || Uplink.String() != "U" || Special.String() != "S" {
		t.Fatal("subframe kind strings wrong")
	}
}

// TS 36.211 Table 4.2-2 sanity: per-configuration DL/UL/S counts.
func TestAllTDDConfigs(t *testing.T) {
	wantDL := [7]int{2, 4, 6, 6, 7, 8, 3}
	wantUL := [7]int{6, 4, 2, 3, 2, 1, 5}
	wantS := [7]int{2, 2, 2, 1, 1, 1, 2}
	for i, cfg := range TDDConfigs {
		var d, u, s int
		for _, k := range cfg.Pattern {
			switch k {
			case Downlink:
				d++
			case Uplink:
				u++
			case Special:
				s++
			}
		}
		if d+u+s != 10 {
			t.Fatalf("%s pattern length wrong", cfg.Name)
		}
		if d != wantDL[i] {
			t.Errorf("%s downlink subframes = %d, want %d", cfg.Name, d, wantDL[i])
		}
		if u != wantUL[i] {
			t.Errorf("%s uplink subframes = %d, want %d", cfg.Name, u, wantUL[i])
		}
		if s != wantS[i] {
			t.Errorf("%s special subframes = %d, want %d", cfg.Name, s, wantS[i])
		}
		// Every configuration starts with a downlink subframe and has
		// a special subframe at index 1 (the standard's invariant).
		if cfg.Pattern[0] != Downlink || cfg.Pattern[1] != Special {
			t.Errorf("%s does not start D,S", cfg.Name)
		}
		// DL+UL fractions stay sane.
		if f := cfg.DownlinkFraction() + cfg.UplinkFraction(); f < 0.8 || f > 1.0 {
			t.Errorf("%s fractions sum to %g", cfg.Name, f)
		}
	}
	if TDDConfigs[4].Name != TDDConfig4.Name {
		t.Fatal("TDDConfig4 alias broken")
	}
}
