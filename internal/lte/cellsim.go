package lte

import (
	"math/rand"
	"time"

	"cellfi/internal/sim"
	"cellfi/internal/trace"
)

// CellSim is a subframe-granularity simulation of one LTE cell: every
// millisecond the TDD pattern decides the subframe kind, downlink
// subframes run the MAC scheduler over the subchannels the
// interference-management layer allows, transport blocks succeed or
// fail against the instantaneous per-subchannel SINR (driving HARQ
// retransmissions), and clients feed back aperiodic mode 3-0 CQI
// reports every 2 ms. This is the fine-grained counterpart to the
// fluid model in internal/netsim, used for link-level experiments and
// the scheduler ablation.
type CellSim struct {
	Cell *Cell
	Env  *Environment
	// Interferers seen by this cell's clients.
	Interferers []*Cell
	// Sched is the MAC policy (ProportionalFair by default).
	Sched Scheduler
	// Allowed restricts schedulable subchannels; nil means all.
	Allowed []int
	// ReportEvery is the CQI cadence (default CQIReportPeriod).
	ReportEvery time.Duration

	eng      *sim.Engine
	rng      *rand.Rand
	ues      []*simUE
	subframe int64
}

// simUE couples a radio client with its MAC state.
type simUE struct {
	client   *Client
	sched    *SchedUE
	reporter *CQIReporter
	// harq holds the in-flight process per subchannel (LTE runs 8+
	// parallel processes; one per subchannel is an adequate model at
	// this granularity).
	harq map[int]*harqEntry
	// delivered accumulates acknowledged bits.
	delivered int64
	// blocks/failures count first transmissions and their failures.
	blocks, failures int64
}

// NewCellSim builds a simulation of cell serving the given clients on
// the engine. CQI measurement noise follows the Figure 8 experiment
// (5%).
func NewCellSim(eng *sim.Engine, env *Environment, cell *Cell, clients []*Client) *CellSim {
	cs := &CellSim{
		Cell:        cell,
		Env:         env,
		Sched:       &ProportionalFair{},
		ReportEvery: CQIReportPeriod,
		eng:         eng,
		rng:         eng.NewStream("cellsim"),
	}
	for _, cl := range clients {
		cs.ues = append(cs.ues, &simUE{
			client: cl,
			sched: &SchedUE{
				ID:         cl.ID,
				SubbandCQI: make([]int, cell.BW.Subchannels()),
			},
			reporter: NewCQIReporter(0.05, eng.NewStream("cqi")),
			harq:     make(map[int]*harqEntry),
		})
	}
	return cs
}

// Start arms the per-subframe and CQI-report machinery.
func (cs *CellSim) Start() {
	cs.eng.EveryAt(0, SubframeDuration, cs.tick)
	cs.eng.EveryAt(cs.ReportEvery, cs.ReportEvery, cs.report)
}

// Backlog fills a client's downlink queue.
func (cs *CellSim) Backlog(clientID int, bits int64) {
	for _, ue := range cs.ues {
		if ue.client.ID == clientID {
			ue.sched.BacklogBits += bits
			return
		}
	}
	panic("lte: unknown client in Backlog")
}

// DeliveredBits returns a client's acknowledged downlink bits.
func (cs *CellSim) DeliveredBits(clientID int) int64 {
	for _, ue := range cs.ues {
		if ue.client.ID == clientID {
			return ue.delivered
		}
	}
	return 0
}

// FirstTxBLER returns the measured first-transmission block error rate
// across all clients — the quantity HARQ hides from upper layers.
func (cs *CellSim) FirstTxBLER() float64 {
	var blocks, fails int64
	for _, ue := range cs.ues {
		blocks += ue.blocks
		fails += ue.failures
	}
	if blocks == 0 {
		return 0
	}
	return float64(fails) / float64(blocks)
}

// report runs one aperiodic CQI cycle for every client.
func (cs *CellSim) report() {
	tMS := int64(cs.eng.Now() / time.Millisecond)
	s := cs.Cell.BW.Subchannels()
	rec := cs.eng.Recorder()
	for _, ue := range cs.ues {
		sinrs := make([]float64, s)
		for k := 0; k < s; k++ {
			sinrs[k] = cs.Env.DownlinkSINR(cs.Cell, cs.Interferers, ue.client, k, tMS)
		}
		rep := ue.reporter.Report(sinrs)
		copy(ue.sched.SubbandCQI, rep.Subband)
		if rec != nil {
			rec.Record(trace.Record{T: int64(cs.eng.Now()), AP: int32(cs.Cell.ID), Kind: trace.KindLTECQI,
				N: 2, Args: [trace.MaxArgs]int64{int64(ue.client.ID), int64(rep.Wideband)}})
		}
	}
}

// harqEntry binds an in-flight HARQ process to the exact number of
// queue bits its transport block carries, so delivery and drop
// accounting conserve bits precisely.
type harqEntry struct {
	p    *HARQProcess
	bits int64
}

// tick advances one subframe.
func (cs *CellSim) tick() {
	sf := cs.subframe
	cs.subframe++
	if cs.Cell.TDD.Kind(sf) != Downlink {
		return
	}
	allowed := cs.Allowed
	if allowed == nil {
		allowed = make([]int, cs.Cell.BW.Subchannels())
		for i := range allowed {
			allowed[i] = i
		}
	}
	// HARQ retransmissions take priority: a subchannel with an open
	// process retries there before new data is scheduled.
	tMS := int64(cs.eng.Now() / time.Millisecond)
	busy := map[int]bool{}
	for _, ue := range cs.ues {
		for _, k := range sortedHarqKeys(ue.harq) {
			e := ue.harq[k]
			busy[k] = true
			sinr := cs.Env.DownlinkSINR(cs.Cell, cs.Interferers, ue.client, k, tMS)
			if e.p.Transmit(sinr, cs.rng) {
				ue.delivered += e.bits
				delete(ue.harq, k)
			} else if e.p.Done() {
				// Dropped after max attempts: the bits return to
				// the queue (RLC retransmission).
				ue.sched.BacklogBits += e.bits
				delete(ue.harq, k)
			}
		}
	}
	free := allowed[:0:0]
	for _, k := range allowed {
		if !busy[k] {
			free = append(free, k)
		}
	}
	// New transmissions via the MAC scheduler. The scheduler drains
	// the queues; we split each UE's served total across its granted
	// subchannels so HARQ bookkeeping conserves bits exactly.
	scheds := make([]*SchedUE, len(cs.ues))
	for i, ue := range cs.ues {
		scheds[i] = ue.sched
	}
	alloc, served := cs.Sched.Allocate(cs.Cell.BW, free, scheds)
	// The allocation reaches clients as PDCCH grants: encode each DCI
	// and decode it on the "client side" — the control channel is a
	// real codec path, not a shared pointer.
	dcis := GrantFromAllocation(cs.Cell.BW, alloc, func(ue, sc int) int {
		u := cs.byID(ue)
		if sc < len(u.sched.SubbandCQI) {
			return u.sched.SubbandCQI[sc]
		}
		return 0
	})
	rec := cs.eng.Recorder()
	for _, g := range dcis {
		raw, err := g.Marshal(cs.Cell.BW)
		if err != nil {
			panic("lte: scheduler emitted an unencodable grant: " + err.Error())
		}
		decoded, err := UnmarshalDCI(raw, cs.Cell.BW)
		if err != nil {
			panic("lte: control channel corrupted a grant: " + err.Error())
		}
		id := int(decoded.RNTI)
		ks := decoded.Subchannels(cs.Cell.BW)
		remaining := served[id]
		grantBits := remaining
		ue := cs.byID(id)
		var grantMask int64
		for _, k := range ks {
			if k < 63 {
				grantMask |= 1 << k
			}
		}
		if rec != nil {
			rec.Record(trace.Record{T: int64(cs.eng.Now()), AP: int32(cs.Cell.ID), Kind: trace.KindLTEGrant,
				N: 3, Args: [trace.MaxArgs]int64{int64(id), grantMask, grantBits}})
		}
		for _, k := range ks {
			cqi := ue.sched.SubbandCQI[k]
			if cqi <= 0 {
				continue
			}
			nominal := int64(TransportBlockBits(cqi, cs.Cell.BW.SubchannelRBs(k)))
			bits := nominal
			if bits > remaining {
				bits = remaining
			}
			remaining -= bits
			if bits == 0 {
				continue
			}
			p := NewHARQProcess(cqi)
			sinr := cs.Env.DownlinkSINR(cs.Cell, cs.Interferers, ue.client, k, tMS)
			ue.blocks++
			if p.Transmit(sinr, cs.rng) {
				ue.delivered += bits
			} else {
				ue.failures++
				if p.Done() {
					ue.sched.BacklogBits += bits
				} else {
					ue.harq[k] = &harqEntry{p: p, bits: bits}
				}
			}
		}
	}
}

// sortedHarqKeys returns map keys ascending (deterministic iteration).
func sortedHarqKeys(m map[int]*harqEntry) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortInts(out)
	return out
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func (cs *CellSim) byID(id int) *simUE {
	for _, ue := range cs.ues {
		if ue.client.ID == id {
			return ue
		}
	}
	panic("lte: scheduler allocated to unknown UE")
}
