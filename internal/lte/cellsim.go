package lte

import (
	"math/rand"
	"time"

	"cellfi/internal/sim"
	"cellfi/internal/trace"
)

// CellSim is a subframe-granularity simulation of one LTE cell: every
// millisecond the TDD pattern decides the subframe kind, downlink
// subframes run the MAC scheduler over the subchannels the
// interference-management layer allows, transport blocks succeed or
// fail against the instantaneous per-subchannel SINR (driving HARQ
// retransmissions), and clients feed back aperiodic mode 3-0 CQI
// reports every 2 ms. This is the fine-grained counterpart to the
// fluid model in internal/netsim, used for link-level experiments and
// the scheduler ablation.
//
// The per-subframe path is allocation-free in steady state: the cell
// owns one AllocScratch, one DCI slice, one marshal buffer and one
// SINR scratch, all reused every TTI, and HARQ state lives in dense
// per-subchannel slots rather than maps. All per-subframe iteration is
// in ascending subchannel order, so behaviour is deterministic by
// construction.
type CellSim struct {
	Cell *Cell
	Env  *Environment
	// Interferers seen by this cell's clients.
	Interferers []*Cell
	// Sched is the MAC policy (ProportionalFair by default).
	Sched Scheduler
	// Allowed restricts schedulable subchannels; nil means all.
	Allowed []int
	// ReportEvery is the CQI cadence (default CQIReportPeriod).
	ReportEvery time.Duration

	eng      *sim.Engine
	rng      *rand.Rand
	ues      []*simUE
	subframe int64

	// Reused per-subframe working storage.
	scratch    AllocScratch
	scheds     []*SchedUE
	allAllowed []int
	busy       []bool
	free       []int
	dcis       []DCI
	dciBuf     []byte
	sinrs      []float64 // signal mW per subchannel (report cycle)
	dens       []float64 // interference+noise mW per subchannel
}

// simUE couples a radio client with its MAC state.
type simUE struct {
	client   *Client
	sched    *SchedUE
	reporter *CQIReporter
	// harq holds the in-flight process per subchannel, indexed by
	// subchannel (LTE runs 8+ parallel processes; one per subchannel
	// is an adequate model at this granularity). Slots are reused in
	// place; active marks the in-flight ones.
	harq []harqSlot
	// delivered accumulates acknowledged bits.
	delivered int64
	// blocks/failures count first transmissions and their failures.
	blocks, failures int64
}

// harqSlot binds an in-flight HARQ process to the exact number of
// queue bits its transport block carries, so delivery and drop
// accounting conserve bits precisely.
type harqSlot struct {
	p      HARQProcess
	bits   int64
	active bool
}

// NewCellSim builds a simulation of cell serving the given clients on
// the engine. CQI measurement noise follows the Figure 8 experiment
// (5%).
func NewCellSim(eng *sim.Engine, env *Environment, cell *Cell, clients []*Client) *CellSim {
	n := cell.BW.Subchannels()
	cs := &CellSim{
		Cell:        cell,
		Env:         env,
		Sched:       &ProportionalFair{},
		ReportEvery: CQIReportPeriod,
		eng:         eng,
		rng:         eng.NewStream("cellsim"),
		allAllowed:  make([]int, n),
		busy:        make([]bool, n),
		free:        make([]int, 0, n),
		sinrs:       make([]float64, n),
		dens:        make([]float64, n),
	}
	for i := range cs.allAllowed {
		cs.allAllowed[i] = i
	}
	for _, cl := range clients {
		cs.ues = append(cs.ues, &simUE{
			client: cl,
			sched: &SchedUE{
				ID:         cl.ID,
				SubbandCQI: make([]int, n),
			},
			reporter: NewCQIReporter(0.05, eng.NewStream("cqi")),
			harq:     make([]harqSlot, n),
		})
	}
	cs.scheds = make([]*SchedUE, len(cs.ues))
	for i, ue := range cs.ues {
		cs.scheds[i] = ue.sched
	}
	return cs
}

// Start arms the per-subframe and CQI-report machinery.
func (cs *CellSim) Start() {
	cs.eng.EveryAt(0, SubframeDuration, cs.tick)
	cs.eng.EveryAt(cs.ReportEvery, cs.ReportEvery, cs.report)
}

// Backlog fills a client's downlink queue.
func (cs *CellSim) Backlog(clientID int, bits int64) {
	for _, ue := range cs.ues {
		if ue.client.ID == clientID {
			ue.sched.BacklogBits += bits
			return
		}
	}
	panic("lte: unknown client in Backlog")
}

// DeliveredBits returns a client's acknowledged downlink bits.
func (cs *CellSim) DeliveredBits(clientID int) int64 {
	for _, ue := range cs.ues {
		if ue.client.ID == clientID {
			return ue.delivered
		}
	}
	return 0
}

// FirstTxBLER returns the measured first-transmission block error rate
// across all clients — the quantity HARQ hides from upper layers.
func (cs *CellSim) FirstTxBLER() float64 {
	var blocks, fails int64
	for _, ue := range cs.ues {
		blocks += ue.blocks
		fails += ue.failures
	}
	if blocks == 0 {
		return 0
	}
	return float64(fails) / float64(blocks)
}

// report runs one aperiodic CQI cycle for every client.
func (cs *CellSim) report() {
	tMS := int64(cs.eng.Now() / time.Millisecond)
	s := cs.Cell.BW.Subchannels()
	rec := cs.eng.Recorder()
	sigs, dens := cs.sinrs[:s], cs.dens[:s]
	for _, ue := range cs.ues {
		// Linear-domain measurement: per-subchannel (signal, denominator)
		// pairs feed the reporter's linear thresholds — same CQIs as the
		// dB chain without its log10 per subchannel per UE.
		for k := 0; k < s; k++ {
			sigs[k], dens[k] = cs.Env.DownlinkSINRParts(cs.Cell, cs.Interferers, ue.client, k, tMS)
		}
		rep := ue.reporter.ReportLinearInto(sigs, dens, ue.sched.SubbandCQI)
		if rec != nil {
			rec.Record(trace.Record{T: int64(cs.eng.Now()), AP: int32(cs.Cell.ID), Kind: trace.KindLTECQI,
				N: 2, Args: [trace.MaxArgs]int64{int64(ue.client.ID), int64(rep.Wideband)}})
		}
	}
}

// tick advances one subframe.
func (cs *CellSim) tick() {
	sf := cs.subframe
	cs.subframe++
	if cs.Cell.TDD.Kind(sf) != Downlink {
		return
	}
	allowed := cs.Allowed
	if allowed == nil {
		allowed = cs.allAllowed
	}
	// HARQ retransmissions take priority: a subchannel with an open
	// process retries there before new data is scheduled.
	tMS := int64(cs.eng.Now() / time.Millisecond)
	n := cs.Cell.BW.Subchannels()
	busy := cs.busy[:n]
	for i := range busy {
		busy[i] = false
	}
	for _, ue := range cs.ues {
		for k := range ue.harq {
			e := &ue.harq[k]
			if !e.active {
				continue
			}
			busy[k] = true
			sinr := cs.Env.DownlinkSINR(cs.Cell, cs.Interferers, ue.client, k, tMS)
			if e.p.Transmit(sinr, cs.rng) {
				ue.delivered += e.bits
				e.active = false
			} else if e.p.Done() {
				// Dropped after max attempts: the bits return to
				// the queue (RLC retransmission).
				ue.sched.BacklogBits += e.bits
				e.active = false
			}
		}
	}
	free := cs.free[:0]
	for _, k := range allowed {
		if !busy[k] {
			free = append(free, k)
		}
	}
	cs.free = free
	// New transmissions via the MAC scheduler. The scheduler drains
	// the queues; we split each UE's served total across its granted
	// subchannels so HARQ bookkeeping conserves bits exactly.
	cs.Sched.Allocate(&cs.scratch, cs.Cell.BW, free, cs.scheds)
	// The allocation reaches clients as PDCCH grants: encode each DCI
	// and decode it on the "client side" — the control channel is a
	// real codec path, not a shared pointer.
	cs.dcis = AppendGrants(cs.dcis[:0], cs.Cell.BW, &cs.scratch, cs.scheds)
	rec := cs.eng.Recorder()
	for _, g := range cs.dcis {
		raw, err := g.MarshalAppend(cs.dciBuf[:0], cs.Cell.BW)
		if err != nil {
			panic("lte: scheduler emitted an unencodable grant: " + err.Error())
		}
		cs.dciBuf = raw
		decoded, err := UnmarshalDCI(raw, cs.Cell.BW)
		if err != nil {
			panic("lte: control channel corrupted a grant: " + err.Error())
		}
		id := int(decoded.RNTI)
		ue, ui := cs.byID(id)
		remaining := cs.scratch.Served[ui]
		grantBits := remaining
		grantMask := int64(decoded.RBGMask)
		if rec != nil {
			rec.Record(trace.Record{T: int64(cs.eng.Now()), AP: int32(cs.Cell.ID), Kind: trace.KindLTEGrant,
				N: 3, Args: [trace.MaxArgs]int64{int64(id), grantMask, grantBits}})
		}
		for k := 0; k < n; k++ {
			if decoded.RBGMask&(1<<uint(k)) == 0 {
				continue
			}
			cqi := ue.sched.SubbandCQI[k]
			if cqi <= 0 {
				continue
			}
			nominal := int64(TransportBlockBits(cqi, cs.Cell.BW.SubchannelRBs(k)))
			bits := nominal
			if bits > remaining {
				bits = remaining
			}
			remaining -= bits
			if bits == 0 {
				continue
			}
			slot := &ue.harq[k]
			slot.p = HARQProcess{CQI: cqi}
			sinr := cs.Env.DownlinkSINR(cs.Cell, cs.Interferers, ue.client, k, tMS)
			ue.blocks++
			if slot.p.Transmit(sinr, cs.rng) {
				ue.delivered += bits
			} else {
				ue.failures++
				if slot.p.Done() {
					ue.sched.BacklogBits += bits
				} else {
					slot.bits = bits
					slot.active = true
				}
			}
		}
	}
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// byID resolves a scheduled client ID to its simUE and scheds index.
func (cs *CellSim) byID(id int) (*simUE, int) {
	for i, ue := range cs.ues {
		if ue.client.ID == id {
			return ue, i
		}
	}
	panic("lte: scheduler allocated to unknown UE")
}
