package lte

import (
	"testing"
	"time"

	"cellfi/internal/sim"
)

func TestRRCSingleClientAttaches(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewRRCSim(eng)
	var result *AttachResult
	r.OnConnected = func(a AttachResult) { result = &a }
	r.Connect(1)
	eng.Run(time.Second)
	if r.State(1) != RRCConnected {
		t.Fatalf("state = %v, want connected", r.State(1))
	}
	if result == nil || result.Attempts != 1 {
		t.Fatalf("result = %+v, want a 1-attempt attach", result)
	}
	// One occasion (10 ms grid) + RAR + Msg3/4: tens of milliseconds.
	if result.Took > 100*time.Millisecond {
		t.Fatalf("lone attach took %v", result.Took)
	}
}

func TestRRCManyClientsAllAttach(t *testing.T) {
	eng := sim.NewEngine(2)
	r := NewRRCSim(eng)
	done := 0
	totalAttempts := 0
	r.OnConnected = func(a AttachResult) { done++; totalAttempts += a.Attempts }
	const n = 40
	for i := 0; i < n; i++ {
		r.Connect(i)
	}
	eng.Run(5 * time.Second)
	if done != n {
		t.Fatalf("%d of %d clients attached", done, n)
	}
	if r.Connected() != n {
		t.Fatalf("Connected() = %d", r.Connected())
	}
	// 40 clients over 54 preambles: collisions are certain, so total
	// attempts must exceed n; but backoff resolves them quickly.
	if totalAttempts <= n {
		t.Fatalf("no contention observed (%d attempts for %d clients)", totalAttempts, n)
	}
}

func TestRRCCollisionBackoffResolves(t *testing.T) {
	// Two clients forced onto a 1-preamble pool collide forever at
	// each shared occasion; randomized backoff must eventually
	// desynchronize them... except with one preamble any shared
	// occasion collides, so they only succeed when their backoffs
	// differ. Verify both still attach.
	eng := sim.NewEngine(3)
	r := NewRRCSim(eng)
	r.Preambles = 1
	r.Connect(1)
	r.Connect(2)
	eng.Run(10 * time.Second)
	if r.State(1) != RRCConnected && r.State(2) != RRCConnected {
		t.Fatal("neither client ever won the single preamble")
	}
}

func TestRRCReleaseDuringProcedure(t *testing.T) {
	eng := sim.NewEngine(4)
	r := NewRRCSim(eng)
	r.Connect(7)
	// Release before the first occasion resolves: the client must end
	// idle, not connected.
	eng.After(5*time.Millisecond, func() { r.Release(7) })
	eng.Run(time.Second)
	if r.State(7) != RRCIdle {
		t.Fatalf("released client ended %v", r.State(7))
	}
}

func TestRRCReleaseAllAndReattach(t *testing.T) {
	eng := sim.NewEngine(5)
	r := NewRRCSim(eng)
	for i := 0; i < 5; i++ {
		r.Connect(i)
	}
	eng.Run(time.Second)
	if r.Connected() != 5 {
		t.Fatalf("setup failed: %d connected", r.Connected())
	}
	// The cell vacates its channel: everyone drops; later they return.
	r.ReleaseAll()
	if r.Connected() != 0 {
		t.Fatal("ReleaseAll left connections")
	}
	for i := 0; i < 5; i++ {
		r.Connect(i)
	}
	eng.Run(2 * time.Second)
	if r.Connected() != 5 {
		t.Fatalf("re-attach failed: %d connected", r.Connected())
	}
}

func TestRRCConnectIdempotentWhenConnected(t *testing.T) {
	eng := sim.NewEngine(6)
	r := NewRRCSim(eng)
	attaches := 0
	r.OnConnected = func(AttachResult) { attaches++ }
	r.Connect(1)
	eng.Run(time.Second)
	r.Connect(1) // no-op
	eng.Run(2 * time.Second)
	if attaches != 1 {
		t.Fatalf("connected client re-attached (%d events)", attaches)
	}
}

func TestRRCDeterministic(t *testing.T) {
	run := func() (int, sim.Time) {
		eng := sim.NewEngine(7)
		r := NewRRCSim(eng)
		var last sim.Time
		n := 0
		r.OnConnected = func(a AttachResult) { n++; last = a.Took }
		for i := 0; i < 20; i++ {
			r.Connect(i)
		}
		eng.Run(3 * time.Second)
		return n, last
	}
	n1, t1 := run()
	n2, t2 := run()
	if n1 != n2 || t1 != t2 {
		t.Fatal("RRC simulation not deterministic")
	}
}

func BenchmarkRRCAttachStorm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(int64(i))
		r := NewRRCSim(eng)
		for c := 0; c < 50; c++ {
			r.Connect(c)
		}
		eng.Run(3 * time.Second)
	}
}
