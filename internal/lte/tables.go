package lte

import "cellfi/internal/phy"

// Precomputed MAC-layer rate tables. The scheduler's inner loop asks
// "how many bits does one transport block carry at CQI c on subchannel
// k?" once per (UE, subchannel) pair every downlink TTI; doing the
// CQI -> MCS -> efficiency -> TBS float chain per grant is measurable
// GC-free but not free. The chain is a pure function of (cqi, rbs), so
// it is evaluated once here, at init, into integer tables, and the hot
// paths index instead of multiply. Table entries are produced by
// exactly the same expression the direct math uses, so lookups are
// bit-for-bit identical to the per-grant computation they replace.

// tbsMaxRBs covers every carrier the PHY supports (100 RBs at 20 MHz).
const tbsMaxRBs = 100

// tbsByRB[cqi][rbs] = transportBlockBitsMath(cqi, rbs) for cqi 0..15,
// rbs 0..100. Row 0 and column 0 stay zero (CQI 0 carries nothing).
var tbsByRB [phy.LTECQICount + 1][tbsMaxRBs + 1]int32

// scTBS[b][cqi][sc] = TransportBlockBits(cqi, b.SubchannelRBs(sc)):
// the full SINR-report -> CQI -> MCS -> TBS chain resolved per
// (bandwidth, subchannel), indexed by bwIndex.
var scTBS [4][phy.LTECQICount + 1][]int32

// bandwidths enumerates the supported carriers in bwIndex order.
var bandwidths = [4]Bandwidth{BW5MHz, BW10MHz, BW15MHz, BW20MHz}

func init() {
	for cqi := 1; cqi <= phy.LTECQICount; cqi++ {
		for rbs := 1; rbs <= tbsMaxRBs; rbs++ {
			tbsByRB[cqi][rbs] = int32(transportBlockBitsMath(cqi, rbs))
		}
	}
	for bi, b := range bandwidths {
		n := b.Subchannels()
		for cqi := 0; cqi <= phy.LTECQICount; cqi++ {
			row := make([]int32, n)
			for sc := 0; sc < n; sc++ {
				row[sc] = tbsByRB[cqi][b.SubchannelRBs(sc)]
			}
			scTBS[bi][cqi] = row
		}
	}
}

// bwIndex maps a Bandwidth to its dense table index.
func (b Bandwidth) bwIndex() int {
	switch b {
	case BW5MHz:
		return 0
	case BW10MHz:
		return 1
	case BW15MHz:
		return 2
	case BW20MHz:
		return 3
	}
	panic("lte: invalid bandwidth")
}

// transportBlockBitsMath is the direct computation behind the tables,
// kept for table construction and the tables-vs-math microbenchmark.
func transportBlockBitsMath(cqi, rbs int) int {
	if cqi <= 0 || rbs <= 0 {
		return 0
	}
	eff := phy.LTECQI(cqi).Efficiency
	return int(eff * float64(rbs) * DataREPerRBPerSubframe)
}
