package lte

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
)

// PRACH: random-access preambles. An LTE client opens a connection by
// transmitting a Zadoff-Chu preamble; CellFi access points additionally
// overhear preambles from clients of *other* cells to estimate the
// number of contending users (Section 5.1). This file implements
// preamble generation and the two detectors compared in Section 6.3.3:
// a conventional detector that correlates every candidate preamble in
// the time domain, and the paper's low-complexity detector that
// exploits the ZC time-shift <-> frequency-cyclic-shift duality to use
// just two correlation passes.

// PRACHSequenceLength is the Zadoff-Chu sequence length of preamble
// formats 0-3 (TS 36.211); it is prime.
const PRACHSequenceLength = 839

// PRACHPreamblesPerCell is the number of distinct preambles a cell
// exposes (TS 36.211: 64, generated from roots and cyclic shifts).
const PRACHPreamblesPerCell = 64

// ZadoffChu returns the length-n root-u Zadoff-Chu sequence
// x_u(k) = exp(-i*pi*u*k*(k+1)/n) for odd n. gcd(u, n) must be 1;
// with n prime any u in 1..n-1 works.
func ZadoffChu(u, n int) []complex128 {
	if n <= 0 || n%2 == 0 {
		panic("lte: Zadoff-Chu length must be odd and positive")
	}
	if u <= 0 || u >= n {
		panic("lte: Zadoff-Chu root must be in 1..n-1")
	}
	x := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*(k+1) mod 2n keeps the phase argument exact.
		kk := (int64(k) * int64(k+1)) % int64(2*n)
		ang := -math.Pi * float64(u) * float64(kk) / float64(n)
		x[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	return x
}

// Preamble identifies one of a cell's random-access preambles.
type Preamble struct {
	Root  int // ZC root sequence index
	Shift int // cyclic shift (multiple of N_cs in a real cell)
}

// GeneratePreamble returns the time-domain preamble: the root ZC
// sequence cyclically shifted by p.Shift.
func GeneratePreamble(p Preamble) []complex128 {
	base := ZadoffChu(p.Root, PRACHSequenceLength)
	if p.Shift%PRACHSequenceLength == 0 {
		return base
	}
	n := PRACHSequenceLength
	s := ((p.Shift % n) + n) % n
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = base[(k+s)%n]
	}
	return out
}

// AddAWGN adds complex white Gaussian noise to a unit-power signal so
// the resulting per-sample SNR is snrDB. It returns a new slice.
func AddAWGN(rng *rand.Rand, signal []complex128, snrDB float64) []complex128 {
	noisePower := math.Pow(10, -snrDB/10)
	sigma := math.Sqrt(noisePower / 2)
	out := make([]complex128, len(signal))
	for i, s := range signal {
		out[i] = s + complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return out
}

// Attenuate scales a signal to the given power ratio in dB (negative
// attenuates). Used to model weak preambles under a noise floor.
func Attenuate(signal []complex128, gainDB float64) []complex128 {
	g := complex(math.Pow(10, gainDB/20), 0)
	out := make([]complex128, len(signal))
	for i, s := range signal {
		out[i] = s * g
	}
	return out
}

// DetectionResult reports a detector's verdict.
type DetectionResult struct {
	Detected bool
	// Shift is the most likely cyclic shift (combining preamble index
	// and timing offset) when detected.
	Shift int
	// PeakToMean is the detection statistic: the correlation peak
	// power over the mean correlation power.
	PeakToMean float64
}

// DetectionThreshold is the peak-to-mean power ratio above which a
// preamble is declared present. Under noise alone the 839 correlation
// bins are i.i.d. exponential, so the expected peak-to-mean is
// ln(839) ~ 6.7 with a Gumbel tail: a threshold of 13 keeps the false-
// alarm rate near 0.2% per window. With N=839 the correlation
// processing gain is ~29 dB, so at -10 dB SNR a real preamble's peak
// stands near 84x the mean — far above the threshold.
const DetectionThreshold = 13.0

// DetectPreambleFast is the paper's modified detector. It performs one
// frequency-domain circular correlation of the received window against
// the root sequence (two DFTs amortized: the root's transform is
// precomputable) and finds the single strongest cyclic shift; the shift
// absorbs both the unknown preamble index and the unknown timing, so no
// per-preamble search is needed. The second "correlation" is the
// peak-value check against the detection threshold.
func DetectPreambleFast(rx []complex128, root int) DetectionResult {
	ref := ZadoffChu(root, PRACHSequenceLength)
	return detectFrom(CircularCorrelate(rx, ref))
}

// FastDetector precomputes the root sequence's conjugated spectrum and
// the Bluestein transform plans, so each detection pays only the
// forward and inverse transforms of the received window.
type FastDetector struct {
	refSpectrum []complex128
	fwd, inv    *DFTPlan
}

// NewFastDetector builds a detector for one root sequence.
func NewFastDetector(root int) *FastDetector {
	ref := ZadoffChu(root, PRACHSequenceLength)
	spec := DFT(ref)
	for i := range spec {
		spec[i] = complex(real(spec[i]), -imag(spec[i]))
	}
	return &FastDetector{
		refSpectrum: spec,
		fwd:         NewDFTPlan(PRACHSequenceLength, false),
		inv:         NewDFTPlan(PRACHSequenceLength, true),
	}
}

// Detect runs the two-correlation detection on one received window.
func (d *FastDetector) Detect(rx []complex128) DetectionResult {
	if len(rx) != PRACHSequenceLength {
		panic("lte: PRACH window must be 839 samples")
	}
	fa := d.fwd.Transform(rx)
	for i := range fa {
		fa[i] *= d.refSpectrum[i]
	}
	return detectFrom(d.inv.Transform(fa))
}

func detectFrom(corr []complex128) DetectionResult {
	var peak float64
	peakIdx := 0
	var sum float64
	for i, c := range corr {
		p := real(c)*real(c) + imag(c)*imag(c)
		sum += p
		if p > peak {
			peak = p
			peakIdx = i
		}
	}
	mean := sum / float64(len(corr))
	if mean == 0 {
		return DetectionResult{}
	}
	ptm := peak / mean
	// The correlation peaks at index (n - shift) mod n; invert so the
	// reported shift matches the transmitted preamble's cyclic shift.
	n := len(corr)
	return DetectionResult{
		Detected:   ptm >= DetectionThreshold,
		Shift:      (n - peakIdx) % n,
		PeakToMean: ptm,
	}
}

// DetectPreambleNaive is the conventional detector: it correlates the
// received window against every candidate preamble (all cyclic shifts
// of the root) directly in the time domain, O(N^2) per root versus the
// fast detector's O(N log N). Results are identical; only the cost
// differs — this is the comparison behind the paper's "16x faster than
// line rate" claim.
func DetectPreambleNaive(rx []complex128, root int) DetectionResult {
	n := PRACHSequenceLength
	if len(rx) != n {
		panic("lte: PRACH window must be 839 samples")
	}
	ref := ZadoffChu(root, n)
	var peak float64
	peakIdx := 0
	var sum float64
	for s := 0; s < n; s++ {
		var acc complex128
		for k := 0; k < n; k++ {
			acc += rx[k] * cmplx.Conj(ref[(k-s+n)%n])
		}
		p := real(acc)*real(acc) + imag(acc)*imag(acc)
		sum += p
		if p > peak {
			peak = p
			peakIdx = s
		}
	}
	mean := sum / float64(n)
	if mean == 0 {
		return DetectionResult{}
	}
	ptm := peak / mean
	return DetectionResult{Detected: ptm >= DetectionThreshold, Shift: (n - peakIdx) % n, PeakToMean: ptm}
}

// NcsGuard is the minimum cyclic-shift separation treated as two
// distinct preambles. It mirrors the zero-correlation-zone (N_cs)
// configuration that separates a cell's preambles: peaks closer than
// this are one preamble's energy (including its delay spread).
const NcsGuard = 13

// DetectMultiple finds every preamble present in one received window:
// clients of different cells (and different clients of one cell) land
// on distinct cyclic shifts, so the correlation has one peak per
// transmitter. Peaks above the detection threshold are accepted
// greedily in descending power with an NcsGuard exclusion zone around
// each. This is the detector a CellFi AP actually runs each second —
// its client census needs a count, not just a presence bit.
func (d *FastDetector) DetectMultiple(rx []complex128, maxCount int) []DetectionResult {
	if len(rx) != PRACHSequenceLength {
		panic("lte: PRACH window must be 839 samples")
	}
	fa := d.fwd.Transform(rx)
	for i := range fa {
		fa[i] *= d.refSpectrum[i]
	}
	corr := d.inv.Transform(fa)
	n := len(corr)

	powers := make([]float64, n)
	var sum float64
	for i, c := range corr {
		p := real(c)*real(c) + imag(c)*imag(c)
		powers[i] = p
		sum += p
	}
	mean := sum / float64(n)
	if mean == 0 {
		return nil
	}

	// Candidate indices in descending power order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return powers[order[a]] > powers[order[b]] })

	var out []DetectionResult
	taken := make([]bool, n)
	for _, idx := range order {
		if maxCount > 0 && len(out) >= maxCount {
			break
		}
		ptm := powers[idx] / mean
		if ptm < DetectionThreshold {
			break // powers are descending; nothing further qualifies
		}
		if taken[idx] {
			continue
		}
		// Exclude the guard zone around this peak.
		for off := -NcsGuard; off <= NcsGuard; off++ {
			taken[(idx+off+n)%n] = true
		}
		out = append(out, DetectionResult{
			Detected:   true,
			Shift:      (n - idx) % n,
			PeakToMean: ptm,
		})
	}
	return out
}

// Superpose mixes several unit-power signals at the given per-signal
// gains (dB) into one received window — the uplink of a busy RACH
// occasion.
func Superpose(signals [][]complex128, gainsDB []float64) []complex128 {
	if len(signals) == 0 {
		return nil
	}
	if len(signals) != len(gainsDB) {
		panic("lte: superpose needs one gain per signal")
	}
	n := len(signals[0])
	out := make([]complex128, n)
	for s, sig := range signals {
		if len(sig) != n {
			panic("lte: superpose length mismatch")
		}
		g := complex(math.Pow(10, gainsDB[s]/20), 0)
		for i, v := range sig {
			out[i] += v * g
		}
	}
	return out
}
