package lte

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"cellfi/internal/geo"
	"cellfi/internal/propagation"
)

// sinrWorld builds a density-scaled interference world: n cells on a
// square whose side grows with sqrt(n) so the neighborhood population
// stays roughly constant, a mix of activity levels and subchannel
// masks, and a handful of clients.
func sinrWorld(seed int64, n int) (*Environment, geo.Rect, []*Cell, []*Client) {
	rng := rand.New(rand.NewSource(seed))
	area := geo.Square(300 * math.Sqrt(float64(n)))
	env := NewEnvironment(seed)
	cells := make([]*Cell, n)
	for i := range cells {
		c := &Cell{
			ID:         i,
			Pos:        area.RandomPoint(rng),
			TxPowerDBm: 30,
			Antenna:    propagationSector(rng),
			BW:         BW5MHz,
			Activity:   FullBuffer,
		}
		switch rng.Intn(4) {
		case 0:
			c.Activity = SignallingOnly
		case 1:
			c.ActiveSubchannels = map[int]bool{0: true, 2: rng.Intn(2) == 0}
		}
		cells[i] = c
	}
	clients := make([]*Client, 8)
	for i := range clients {
		clients[i] = &Client{ID: n + i, Pos: area.RandomPoint(rng), TxPowerDBm: 20}
	}
	return env, area, cells, clients
}

// propagationSector gives half the cells a sector antenna, half omni.
func propagationSector(rng *rand.Rand) propagation.Antenna {
	if rng.Intn(2) == 0 {
		return propagation.Sector(rng.Float64() * 2 * math.Pi)
	}
	return propagation.Antenna{}
}

// TestDownlinkSINRNearEquivalence pins the determinism contract: the
// grid-indexed path and the brute-force truncated scan are bit-identical,
// across seeds, radii, subchannels and coherence blocks — in two
// independently constructed worlds, so nothing is shared but the seed.
func TestDownlinkSINRNearEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		envA, area, cellsA, clientsA := sinrWorld(seed, 120)
		envB, _, cellsB, clientsB := sinrWorld(seed, 120)
		for _, radius := range []float64{200, 650, 1e6} {
			nbIdx := NewNeighbors(cellsA, area, radius)
			nbBrute := BruteNeighbors(cellsB, radius)
			for ci, cl := range clientsA {
				serving := cellsA[ci%len(cellsA)]
				for sc := 0; sc < BW5MHz.Subchannels(); sc++ {
					for _, tMS := range []int64{0, 50, 150} {
						a := envA.DownlinkSINRNear(serving, nbIdx, cl, sc, tMS)
						b := envB.DownlinkSINRNear(cellsB[ci%len(cellsB)], nbBrute, clientsB[ci], sc, tMS)
						if a != b {
							t.Fatalf("seed %d radius %g client %d sc %d t %d: indexed %v != brute %v",
								seed, radius, ci, sc, tMS, a, b)
						}
					}
				}
			}
		}
	}
}

// With the radius covering the whole world, the neighborhood path must
// also agree bit-for-bit with the historical all-pairs DownlinkSINR.
func TestDownlinkSINRNearMatchesAllPairs(t *testing.T) {
	env, area, cells, clients := sinrWorld(3, 80)
	env2, _, cells2, clients2 := sinrWorld(3, 80)
	nb := NewNeighbors(cells, area, 1e9)
	for ci, cl := range clients {
		serving := cells[ci%len(cells)]
		for sc := 0; sc < BW5MHz.Subchannels(); sc++ {
			a := env.DownlinkSINRNear(serving, nb, cl, sc, 0)
			b := env2.DownlinkSINR(cells2[ci%len(cells2)], cells2, clients2[ci], sc, 0)
			if a != b {
				t.Fatalf("client %d sc %d: neighborhood %v != all-pairs %v", ci, sc, a, b)
			}
		}
	}
}

// Moving a cell must be visible through the index after Move +
// Invalidate (the two halves of the mobility contract).
func TestNeighborsMoveReindexes(t *testing.T) {
	env, area, cells, clients := sinrWorld(5, 60)
	env2, _, cells2, clients2 := sinrWorld(5, 60)
	nbIdx := NewNeighbors(cells, area, 650)
	nbBrute := BruteNeighbors(cells2, 650)
	rng := rand.New(rand.NewSource(99))
	rng2 := rand.New(rand.NewSource(99))
	for step := 0; step < 10; step++ {
		i := rng.Intn(len(cells))
		p := area.RandomPoint(rng)
		cells[i].Pos = p
		nbIdx.Move(i)
		env.Invalidate(cells[i].ID)
		cells2[rng2.Intn(len(cells2))].Pos = area.RandomPoint(rng2)
		env2.Invalidate(cells2[i].ID)
		for ci, cl := range clients {
			serving := cells[(ci+1)%len(cells)]
			a := env.DownlinkSINRNear(serving, nbIdx, cl, 1, int64(step)*10)
			b := env2.DownlinkSINRNear(cells2[(ci+1)%len(cells2)], nbBrute, clients2[ci], 1, int64(step)*10)
			if a != b {
				t.Fatalf("step %d client %d: indexed %v != brute %v after move", step, ci, a, b)
			}
		}
	}
}

// The indexed SINR query is the metro inner loop: once the rx memo and
// the scratch slice have warmed it must not allocate.
func TestDownlinkSINRNearZeroAllocs(t *testing.T) {
	env, area, cells, clients := sinrWorld(7, 200)
	nb := NewNeighbors(cells, area, 650)
	warm := func() {
		for ci, cl := range clients {
			for sc := 0; sc < BW5MHz.Subchannels(); sc++ {
				env.DownlinkSINRNear(cells[ci%len(cells)], nb, cl, sc, 0)
			}
		}
	}
	warm()
	allocs := testing.AllocsPerRun(100, warm)
	if allocs != 0 {
		t.Fatalf("DownlinkSINRNear allocates %.1f allocs/op, want 0", allocs)
	}
}

// The O(N) vs O(neighborhood) contrast the spatial index buys, at the
// three AP scales the regression gate tracks.
func BenchmarkLTESINR(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		env, area, cells, clients := sinrWorld(42, n)
		nbIdx := NewNeighbors(cells, area, 650)
		nbBrute := BruteNeighbors(cells, 650)
		// Warm the rx memo so both modes measure steady state.
		for ci, cl := range clients {
			for sc := 0; sc < BW5MHz.Subchannels(); sc++ {
				env.DownlinkSINRNear(cells[ci%len(cells)], nbIdx, cl, sc, 0)
				env.DownlinkSINRNear(cells[ci%len(cells)], nbBrute, cl, sc, 0)
			}
		}
		b.Run(fmt.Sprintf("brute/N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cl := clients[i%len(clients)]
				env.DownlinkSINRNear(cells[i%len(cells)], nbBrute, cl, i%4, 0)
			}
		})
		b.Run(fmt.Sprintf("indexed/N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cl := clients[i%len(clients)]
				env.DownlinkSINRNear(cells[i%len(cells)], nbIdx, cl, i%4, 0)
			}
		})
	}
}
