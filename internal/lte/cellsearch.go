package lte

import (
	"fmt"
	"sort"
	"time"
)

// Cell search. After an outage a client must find its cell again by
// scanning the 100 kHz EARFCN raster of every configured band for
// PSS/SSS synchronization signals. The paper measures 56 seconds for
// this on a commercial client scanning multiple LTE bands, and notes
// it "can be further reduced by disabling unused LTE bands" (Section
// 6.2). This model reproduces both the measured figure and that
// optimization.

// Band is a contiguous scanning range of downlink spectrum.
type Band struct {
	Name          string
	LowHz, HighHz float64
	// RasterHz is the candidate spacing (100 kHz in LTE).
	RasterHz float64
}

// Candidates returns the number of centre-frequency hypotheses the
// band contributes.
func (b Band) Candidates() int {
	if b.HighHz <= b.LowHz || b.RasterHz <= 0 {
		return 0
	}
	return int((b.HighHz-b.LowHz)/b.RasterHz) + 1
}

// Contains reports whether a frequency falls inside the band.
func (b Band) Contains(freqHz float64) bool {
	return freqHz >= b.LowHz && freqHz <= b.HighHz
}

// DefaultScanBands returns the band set a multi-band TVWS-capable
// client ships with: the broad sub-GHz ranges plus the wide TDD bands
// the paper mentions (bands 41-43 are 200 MHz wide). The exact list is
// calibrated so a full scan takes the paper's measured 56 s.
func DefaultScanBands() []Band {
	return []Band{
		{Name: "band-13", LowHz: 746e6, HighHz: 756e6, RasterHz: 100e3},
		{Name: "band-44/TVWS", LowHz: 470e6, HighHz: 698e6, RasterHz: 100e3},
		{Name: "band-41", LowHz: 2496e6, HighHz: 2690e6, RasterHz: 100e3},
		{Name: "band-42", LowHz: 3400e6, HighHz: 3600e6, RasterHz: 100e3},
		{Name: "band-43", LowHz: 3600e6, HighHz: 3800e6, RasterHz: 100e3},
	}
}

// CellSearcher models a client's synchronization scan.
type CellSearcher struct {
	Bands []Band
	// DwellPerCandidate is how long the receiver camps on one raster
	// hypothesis checking for PSS correlation (a few PSS periods).
	DwellPerCandidate time.Duration
	// SyncAndSIB is the fixed tail once the carrier is found: PSS/SSS
	// lock, MIB and SIB1 decode, PRACH attach.
	SyncAndSIB time.Duration
}

// NewCellSearcher returns the calibrated searcher: ~5.9 ms per raster
// candidate over the default bands lands the full-scan time at the
// paper's measured 56 s.
func NewCellSearcher() *CellSearcher {
	return &CellSearcher{
		Bands:             DefaultScanBands(),
		DwellPerCandidate: 5900 * time.Microsecond,
		SyncAndSIB:        2 * time.Second,
	}
}

// TotalCandidates sums raster hypotheses over all bands.
func (s *CellSearcher) TotalCandidates() int {
	total := 0
	for _, b := range s.Bands {
		total += b.Candidates()
	}
	return total
}

// FullScanTime is the worst-case time to sweep every configured band
// once and attach (the carrier is found on the last candidate).
func (s *CellSearcher) FullScanTime() time.Duration {
	return time.Duration(s.TotalCandidates())*s.DwellPerCandidate + s.SyncAndSIB
}

// SearchTime returns the time to find a carrier at the given frequency:
// bands are scanned in order, low edge first, so the cost is the dwell
// over all candidates visited before the carrier plus the fixed
// synchronization tail. An error is returned when no configured band
// covers the frequency.
func (s *CellSearcher) SearchTime(carrierHz float64) (time.Duration, error) {
	visited := 0
	for _, b := range s.Bands {
		if !b.Contains(carrierHz) {
			visited += b.Candidates()
			continue
		}
		within := int((carrierHz - b.LowHz) / b.RasterHz)
		visited += within + 1
		return time.Duration(visited)*s.DwellPerCandidate + s.SyncAndSIB, nil
	}
	return 0, fmt.Errorf("lte: frequency %.1f MHz outside all scan bands", carrierHz/1e6)
}

// RestrictToTVWS drops every band that does not overlap the TV
// broadcast range — the paper's proposed optimization for CellFi
// clients ("disabling unused LTE bands"). It returns the searcher for
// chaining.
func (s *CellSearcher) RestrictToTVWS() *CellSearcher {
	kept := s.Bands[:0:0]
	for _, b := range s.Bands {
		if b.LowHz < 800e6 && b.HighHz > 470e6 {
			kept = append(kept, b)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].LowHz < kept[j].LowHz })
	s.Bands = kept
	return s
}
