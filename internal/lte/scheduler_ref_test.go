package lte

import (
	"math"
	"math/rand"
	"testing"
)

// Reference schedulers: the pre-scratch map-based implementations,
// kept verbatim as a behavioural oracle. The slice-backed production
// schedulers must reproduce their output bit-for-bit — same per-UE
// served bytes, same subchannel assignment, same EWMA state — across
// arbitrary UE populations, backlogs and CQI mixes.

type refAllocation map[int]int

func refBacklogged(ues []*SchedUE) []*SchedUE {
	out := ues[:0:0]
	for _, u := range ues {
		if u.BacklogBits > 0 {
			out = append(out, u)
		}
	}
	return out
}

type refRoundRobin struct{ next int }

func (r *refRoundRobin) allocate(bw Bandwidth, allowed []int, ues []*SchedUE) (refAllocation, map[int]int64) {
	alloc := make(refAllocation)
	served := make(map[int]int64)
	for _, sc := range allowed {
		cands := refBacklogged(ues)
		if len(cands) == 0 {
			break
		}
		u := cands[r.next%len(cands)]
		r.next++
		bits := serve(bw, sc, u)
		if bits == 0 {
			continue
		}
		alloc[sc] = u.ID
		served[u.ID] += bits
	}
	return alloc, served
}

type refProportionalFair struct{ beta float64 }

func (p *refProportionalFair) allocate(bw Bandwidth, allowed []int, ues []*SchedUE) (refAllocation, map[int]int64) {
	beta := p.beta
	if beta == 0 {
		beta = 1.0 / 1000
	}
	alloc := make(refAllocation)
	served := make(map[int]int64)
	for _, sc := range allowed {
		var best *SchedUE
		bestMetric := math.Inf(-1)
		for _, u := range ues {
			if u.BacklogBits <= 0 {
				continue
			}
			cqi := 0
			if sc < len(u.SubbandCQI) {
				cqi = u.SubbandCQI[sc]
			}
			rate := float64(TransportBlockBits(cqi, bw.SubchannelRBs(sc)))
			if rate == 0 {
				continue
			}
			avg := u.avgRate
			if avg < 1 {
				avg = 1
			}
			if m := rate / avg; m > bestMetric {
				bestMetric = m
				best = u
			}
		}
		if best == nil {
			continue
		}
		bits := serve(bw, sc, best)
		if bits == 0 {
			continue
		}
		alloc[sc] = best.ID
		served[best.ID] += bits
	}
	for _, u := range ues {
		u.avgRate = (1-beta)*u.avgRate + beta*float64(served[u.ID])
	}
	return alloc, served
}

// cloneUEs deep-copies a UE population so the reference and production
// schedulers each mutate their own state.
func cloneUEs(ues []*SchedUE) []*SchedUE {
	out := make([]*SchedUE, len(ues))
	for i, u := range ues {
		cqi := make([]int, len(u.SubbandCQI))
		copy(cqi, u.SubbandCQI)
		out[i] = &SchedUE{ID: u.ID, BacklogBits: u.BacklogBits, SubbandCQI: cqi, avgRate: u.avgRate}
	}
	return out
}

// TestSchedulerEquivalenceWithMapReference drives both scheduler
// implementations through 50 seeded scenarios x several subframes and
// demands identical output at every step: allocation, served bits,
// remaining backlog and (for PF) the exact EWMA floats.
func TestSchedulerEquivalenceWithMapReference(t *testing.T) {
	bws := []Bandwidth{BW5MHz, BW10MHz, BW15MHz, BW20MHz}
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		bw := bws[rng.Intn(len(bws))]
		n := bw.Subchannels()
		nUE := 1 + rng.Intn(10)
		mk := func() []*SchedUE {
			r := rand.New(rand.NewSource(seed + 1000))
			ues := make([]*SchedUE, nUE)
			for i := range ues {
				cqi := make([]int, n)
				for k := range cqi {
					cqi[k] = r.Intn(16) // 0..15, including undecodable
				}
				var backlog int64
				switch r.Intn(3) {
				case 0:
					backlog = 0 // idle
				case 1:
					backlog = int64(r.Intn(5000)) // drains mid-run
				default:
					backlog = 1 << 30 // saturated
				}
				ues[i] = &SchedUE{ID: i*7 + 3, BacklogBits: backlog, SubbandCQI: cqi}
			}
			return ues
		}
		// A random allowed subset, sometimes the full carrier.
		var allowed []int
		if rng.Intn(3) == 0 {
			allowed = allSubchannels(bw)
		} else {
			for sc := 0; sc < n; sc++ {
				if rng.Intn(2) == 0 {
					allowed = append(allowed, sc)
				}
			}
		}

		check := func(name string, newSched Scheduler, refAlloc func(Bandwidth, []int, []*SchedUE) (refAllocation, map[int]int64)) {
			refUEs, newUEs := mk(), mk()
			var scratch AllocScratch
			for sf := 0; sf < 8; sf++ {
				wantAlloc, wantServed := refAlloc(bw, allowed, refUEs)
				newSched.Allocate(&scratch, bw, allowed, newUEs)
				gotAlloc := allocMap(&scratch, newUEs)
				gotServed := servedMap(&scratch, newUEs)
				if len(gotAlloc) != len(wantAlloc) {
					t.Fatalf("seed %d %s sf %d: %d grants, reference %d", seed, name, sf, len(gotAlloc), len(wantAlloc))
				}
				for sc, id := range wantAlloc {
					if gotAlloc[sc] != id {
						t.Fatalf("seed %d %s sf %d: subchannel %d -> UE %d, reference UE %d",
							seed, name, sf, sc, gotAlloc[sc], id)
					}
				}
				if len(gotServed) != len(wantServed) {
					t.Fatalf("seed %d %s sf %d: served map size %d, reference %d", seed, name, sf, len(gotServed), len(wantServed))
				}
				for id, bits := range wantServed {
					if gotServed[id] != bits {
						t.Fatalf("seed %d %s sf %d: UE %d served %d bits, reference %d",
							seed, name, sf, id, gotServed[id], bits)
					}
				}
				for i := range refUEs {
					if refUEs[i].BacklogBits != newUEs[i].BacklogBits {
						t.Fatalf("seed %d %s sf %d: UE %d backlog %d, reference %d",
							seed, name, sf, newUEs[i].ID, newUEs[i].BacklogBits, refUEs[i].BacklogBits)
					}
					if refUEs[i].avgRate != newUEs[i].avgRate {
						t.Fatalf("seed %d %s sf %d: UE %d avgRate %v, reference %v (EWMA drift)",
							seed, name, sf, newUEs[i].ID, newUEs[i].avgRate, refUEs[i].avgRate)
					}
				}
			}
		}
		check("round-robin", &RoundRobin{}, (&refRoundRobin{}).allocate)
		check("proportional-fair", &ProportionalFair{}, (&refProportionalFair{}).allocate)
	}
}
