package lte

import (
	"cellfi/internal/phy"
)

// TransportBlockBits returns the number of information bits carried by
// one subframe transmission spanning the given number of resource
// blocks at the given CQI. CQI 0 carries nothing. Served from the
// init-time tables in tables.go for every in-range (cqi, rbs) pair.
func TransportBlockBits(cqi, rbs int) int {
	if cqi <= 0 || rbs <= 0 {
		return 0
	}
	if cqi <= phy.LTECQICount && rbs <= tbsMaxRBs {
		return int(tbsByRB[cqi][rbs])
	}
	return transportBlockBitsMath(cqi, rbs)
}

// SubchannelRateBps returns the steady-state downlink data rate of one
// subchannel at the given CQI, accounting for the TDD downlink duty
// cycle. This is the fluid-model rate used by the large-scale
// evaluation.
func SubchannelRateBps(bw Bandwidth, tdd TDDConfig, subchannel, cqi int) float64 {
	bits := TransportBlockBits(cqi, bw.SubchannelRBs(subchannel))
	return float64(bits) / SubframeDuration.Seconds() * tdd.DownlinkFraction()
}

// PeakRateBps returns the full-carrier downlink rate at the top CQI —
// the cell's PHY ceiling.
func PeakRateBps(bw Bandwidth, tdd TDDConfig) float64 {
	bits := TransportBlockBits(phy.LTECQICount, bw.ResourceBlocks())
	return float64(bits) / SubframeDuration.Seconds() * tdd.DownlinkFraction()
}

// GoodputBitsPerSymbol converts a CQI and block error rate into the
// paper's Figure 7 metric: information bits per modulation symbol,
// bit/symbol = coding_rate * modulation_bits * (1 - BLER).
func GoodputBitsPerSymbol(cqi int, bler float64) float64 {
	if cqi <= 0 {
		return 0
	}
	m := phy.LTECQI(cqi)
	return m.Efficiency * (1 - bler)
}
