package lte

import (
	"math"
	"testing"
	"time"
)

func TestBandCandidates(t *testing.T) {
	b := Band{LowHz: 470e6, HighHz: 470.5e6, RasterHz: 100e3}
	if got := b.Candidates(); got != 6 {
		t.Fatalf("candidates = %d, want 6 (both edges inclusive)", got)
	}
	if (Band{LowHz: 1, HighHz: 0, RasterHz: 1}).Candidates() != 0 {
		t.Fatal("inverted band should contribute nothing")
	}
	if !b.Contains(470.2e6) || b.Contains(471e6) {
		t.Fatal("Contains wrong")
	}
}

// Section 6.2 calibration: a multi-band scan takes the measured ~56 s,
// dominated by the wide high bands.
func TestFullScanMatchesMeasured56s(t *testing.T) {
	s := NewCellSearcher()
	got := s.FullScanTime()
	want := 56 * time.Second
	if got < want-6*time.Second || got > want+6*time.Second {
		t.Fatalf("full scan = %v, want about %v", got, want)
	}
}

func TestSearchTimeOrdering(t *testing.T) {
	s := NewCellSearcher()
	// A carrier early in the first band is found quickly; one at the
	// end of the last band costs the full scan.
	early, err := s.SearchTime(746.1e6)
	if err != nil {
		t.Fatal(err)
	}
	late, err := s.SearchTime(3799.9e6)
	if err != nil {
		t.Fatal(err)
	}
	if early >= late {
		t.Fatalf("early carrier (%v) not faster than late carrier (%v)", early, late)
	}
	if late > s.FullScanTime() {
		t.Fatalf("late carrier %v exceeds the full scan %v", late, s.FullScanTime())
	}
	if _, err := s.SearchTime(10e9); err == nil {
		t.Fatal("frequency outside all bands should error")
	}
}

// The paper's optimization: restricting the scan to TVWS-overlapping
// bands cuts reconnection by an order of magnitude.
func TestRestrictToTVWS(t *testing.T) {
	full := NewCellSearcher().FullScanTime()
	s := NewCellSearcher().RestrictToTVWS()
	for _, b := range s.Bands {
		if b.LowHz >= 800e6 {
			t.Fatalf("band %s survived the TVWS restriction", b.Name)
		}
	}
	restricted := s.FullScanTime()
	if restricted > full/3 {
		t.Fatalf("TVWS-only scan %v should be far below the full %v", restricted, full)
	}
	// A TVWS carrier must still be findable.
	tvws, err := s.SearchTime(474e6)
	if err != nil {
		t.Fatal(err)
	}
	if tvws > restricted {
		t.Fatal("TVWS carrier search exceeds the restricted full scan")
	}
}

func TestSearchTimeMonotoneWithinBand(t *testing.T) {
	s := NewCellSearcher()
	prev := time.Duration(0)
	for f := 470e6; f <= 698e6; f += 25e6 {
		got, err := s.SearchTime(f)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev {
			t.Fatalf("search time decreased at %.0f MHz", f/1e6)
		}
		prev = got
	}
}

func TestScanTimeArithmetic(t *testing.T) {
	s := &CellSearcher{
		Bands:             []Band{{LowHz: 0, HighHz: 1e6, RasterHz: 100e3}},
		DwellPerCandidate: time.Millisecond,
		SyncAndSIB:        time.Second,
	}
	if got := s.TotalCandidates(); got != 11 {
		t.Fatalf("candidates = %d", got)
	}
	want := 11*time.Millisecond + time.Second
	if got := s.FullScanTime(); got != want {
		t.Fatalf("full scan = %v, want %v", got, want)
	}
	at, err := s.SearchTime(500e3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(at-(6*time.Millisecond+time.Second))) > float64(time.Millisecond) {
		t.Fatalf("search time = %v", at)
	}
}
