package lte

import (
	"cellfi/internal/geo"
	"cellfi/internal/propagation"
)

// Neighbors is an interference neighborhood over a dense cell slice:
// the set of cells whose downlink energy can matter at a receiver,
// bounded by the interference-significance radius (see
// propagation.Model.InterferenceRadius). With a spatial Source attached
// a SINR query scans only the cells near the client; with Source nil it
// scans every cell and applies the same distance truncation — the
// brute-force reference the equivalence tests compare against.
//
// The truncation model is identical on both paths (inclusive squared
// distance against the grid's stored positions), and both visit
// surviving cells in ascending slice order, so the interference
// denominator sums in the same float order and the two paths are
// bit-identical.
type Neighbors struct {
	// Cells is the dense cell table; index i is the spatial-index id.
	Cells []*Cell
	// RadiusM is the significance radius in metres.
	RadiusM float64
	// Source enumerates nearby cell indices; nil selects the truncated
	// full scan.
	Source propagation.NeighborSource

	scratch []int32
}

// NewNeighbors indexes cells on a grid bucketed at the significance
// radius. Cells that move afterwards must be re-indexed with Move.
func NewNeighbors(cells []*Cell, bounds geo.Rect, radiusM float64) *Neighbors {
	g := geo.NewGrid(bounds, radiusM)
	for i, c := range cells {
		g.Insert(int32(i), c.Pos)
	}
	return &Neighbors{Cells: cells, RadiusM: radiusM, Source: g}
}

// BruteNeighbors returns the reference neighborhood: no index, every
// SINR query scans all cells and truncates by distance.
func BruteNeighbors(cells []*Cell, radiusM float64) *Neighbors {
	return &Neighbors{Cells: cells, RadiusM: radiusM}
}

// Move re-indexes cell i after its Pos changed. The caller owns the
// matching Environment.Invalidate call (the grid only answers "who is
// near", never "how loud").
func (nb *Neighbors) Move(i int) {
	if g, ok := nb.Source.(*geo.Grid); ok {
		g.Move(int32(i), nb.Cells[i].Pos)
	}
}

// DownlinkSINRNear is DownlinkSINR with the interferer set drawn from
// the neighborhood instead of a caller-supplied slice: only cells
// within nb.RadiusM of the client contribute to the denominator. The
// serving cell is excluded regardless of distance.
func (e *Environment) DownlinkSINRNear(serving *Cell, nb *Neighbors, cl *Client, sc int, tMS int64) float64 {
	signal := e.rxPowerDBm(serving, cl.Pos, cl.ID, sc, tMS)
	_, den := e.noise()
	if nb.Source != nil {
		nb.scratch = nb.Source.AppendWithin(nb.scratch[:0], cl.Pos, nb.RadiusM)
		for _, id := range nb.scratch {
			ic := nb.Cells[id]
			if ic == serving || !ic.TransmitsIn(sc) {
				continue
			}
			den += e.rxPowerMW(ic, cl.Pos, cl.ID, sc, tMS)
		}
	} else {
		r2 := nb.RadiusM * nb.RadiusM
		for _, ic := range nb.Cells {
			if ic == serving || !ic.TransmitsIn(sc) {
				continue
			}
			// Same inclusive squared-distance test the grid applies.
			dx, dy := ic.Pos.X-cl.Pos.X, ic.Pos.Y-cl.Pos.Y
			if dx*dx+dy*dy > r2 {
				continue
			}
			den += e.rxPowerMW(ic, cl.Pos, cl.ID, sc, tMS)
		}
	}
	if !e.memoActive() {
		return signal - propagation.MWToDBm(den)
	}
	// Same denominator memo as DownlinkSINR; keyed on the exact mW sum,
	// so indexed, truncated and all-pairs calls can interleave safely.
	ent := rxProbe(e.rxTab, propagation.LinkID(serving.ID, cl.ID), int32(sc))
	if ent.denMW != den {
		ent.denMW, ent.denDB = den, propagation.MWToDBm(den)
	}
	return signal - ent.denDB
}
