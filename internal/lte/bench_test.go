package lte

import (
	"testing"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/sim"
)

// benchCellSim builds a cell with four backlogged clients at staggered
// ranges and an always-on interfering cell, so the subframe loop
// exercises scheduling, DCI encode/decode, HARQ and interference-laden
// SINR lookups every downlink subframe.
func benchCellSim(tb testing.TB) (*sim.Engine, *CellSim) {
	tb.Helper()
	eng := sim.NewEngine(1)
	env := NewEnvironment(1)
	cell := &Cell{
		ID: 1, Pos: geo.Point{}, TxPowerDBm: 30,
		BW: BW5MHz, TDD: TDDConfig4, Activity: FullBuffer,
	}
	interferer := &Cell{
		ID: 2, Pos: geo.Point{X: 900}, TxPowerDBm: 30,
		BW: BW5MHz, TDD: TDDConfig4, Activity: FullBuffer,
	}
	var clients []*Client
	for i, d := range []float64{100, 250, 400, 600} {
		clients = append(clients, &Client{ID: 100 + i, Pos: geo.Point{X: d}, TxPowerDBm: 20})
	}
	cs := NewCellSim(eng, env, cell, clients)
	cs.Interferers = []*Cell{interferer}
	cs.Start()
	for _, cl := range clients {
		cs.Backlog(cl.ID, 1<<40)
	}
	return eng, cs
}

// BenchmarkLTESubframeLoop measures one subframe of the cell simulation
// per op: TDD pattern, HARQ retransmissions, the MAC scheduler, DCI
// codec and per-subchannel SINR/CQI (cached link gains). Allocations
// are tracked because this is the engine's densest periodic callback;
// see BENCH_sim.json.
func BenchmarkLTESubframeLoop(b *testing.B) {
	eng, _ := benchCellSim(b)
	b.ReportAllocs()
	b.ResetTimer()
	horizon := sim.Time(0)
	for i := 0; i < b.N; i++ {
		horizon += SubframeDuration
		eng.Run(horizon)
	}
}

// BenchmarkLTESchedulerAllocate isolates the proportional-fair MAC
// policy: one full-band allocation over eight backlogged UEs, no radio
// model.
func BenchmarkLTESchedulerAllocate(b *testing.B) {
	bw := BW5MHz
	s := bw.Subchannels()
	allowed := make([]int, s)
	for i := range allowed {
		allowed[i] = i
	}
	ues := make([]*SchedUE, 8)
	for i := range ues {
		cqi := make([]int, s)
		for k := range cqi {
			cqi[k] = 3 + (i+k)%10
		}
		ues[i] = &SchedUE{ID: i, SubbandCQI: cqi}
	}
	pf := &ProportionalFair{}
	var scratch AllocScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range ues {
			u.BacklogBits = 1 << 30
		}
		pf.Allocate(&scratch, bw, allowed, ues)
	}
}

// BenchmarkTBSTable / BenchmarkTBSMath compare the init-time
// CQI -> MCS -> TBS lookup tables against the float chain they
// replaced; `make bench` prints both so the win stays visible.
func BenchmarkTBSTable(b *testing.B) {
	var sink int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink += TransportBlockBits(1+i%15, 1+i%25)
	}
	benchSink = sink
}

func BenchmarkTBSMath(b *testing.B) {
	var sink int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink += transportBlockBitsMath(1+i%15, 1+i%25)
	}
	benchSink = sink
}

var benchSink int

// The whole subframe callback — HARQ, scheduler, DCI codec, SINR
// lookups, trace-off — must be allocation-free once warmed up.
func TestCellSimSubframeZeroAllocs(t *testing.T) {
	eng, _ := benchCellSim(t)
	horizon := sim.Time(0)
	// Warm up past the first fading block so scratch buffers and the
	// rx-power memo are grown.
	for i := 0; i < 200; i++ {
		horizon += SubframeDuration
		eng.Run(horizon)
	}
	avg := testing.AllocsPerRun(100, func() {
		horizon += SubframeDuration
		eng.Run(horizon)
	})
	// The rx-power memo repopulates once per 100 ms coherence block;
	// amortized over subframes that rounds to zero, but a map bucket
	// growth can still land inside one sampled window early in the
	// run. Demand strictly amortized-zero behaviour.
	if avg != 0 {
		t.Fatalf("subframe loop allocates %.2f times per ms in steady state", avg)
	}
}

// Keep the fixture honest: the benchmark cell must actually deliver
// traffic under the cached-gain fast path.
func TestBenchCellSimDelivers(t *testing.T) {
	eng := sim.NewEngine(1)
	env := NewEnvironment(1)
	cell := &Cell{ID: 1, TxPowerDBm: 30, BW: BW5MHz, TDD: TDDConfig4, Activity: FullBuffer}
	cl := &Client{ID: 100, Pos: geo.Point{X: 150}, TxPowerDBm: 20}
	cs := NewCellSim(eng, env, cell, []*Client{cl})
	cs.Start()
	cs.Backlog(100, 1<<20)
	eng.Run(time.Second)
	if cs.DeliveredBits(100) == 0 {
		t.Fatal("benchmark-shaped cell delivered nothing")
	}
	if env.Cache == nil || env.Cache.Stats().Hits == 0 {
		t.Fatalf("link cache saw no hits: %+v", env.Cache.Stats())
	}
}
