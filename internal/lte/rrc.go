package lte

import (
	"math/rand"
	"time"

	"cellfi/internal/sim"
)

// RRC connection establishment. A client attaches through the
// contention-based random-access procedure: it transmits a PRACH
// preamble (Msg1), waits for the random-access response (Msg2), sends
// the RRC Connection Request (Msg3) and completes on Connection Setup
// (Msg4). Two clients picking the same preamble in the same RACH
// occasion collide and back off. CellFi leans on exactly this
// machinery: connected clients answer the PDCCH-order solicitations
// that drive the neighbour census, and a vacated cell's clients fall
// back to RRC Idle and must re-attach after the channel returns
// (the 56-second tail of Figure 6).

// RRCState is a client's connection state.
type RRCState int

const (
	// RRCIdle: camped, no connection.
	RRCIdle RRCState = iota
	// RRCConnecting: random access in progress.
	RRCConnecting
	// RRCConnected: SRB established, schedulable.
	RRCConnected
)

func (s RRCState) String() string {
	switch s {
	case RRCIdle:
		return "idle"
	case RRCConnecting:
		return "connecting"
	case RRCConnected:
		return "connected"
	}
	return "?"
}

// Random-access timing (TS 36.331-flavoured defaults).
const (
	// RachPeriod is the PRACH occasion spacing (one per frame).
	RachPeriod = 10 * time.Millisecond
	// RARWindow is how long after Msg1 the response arrives.
	RARWindow = 5 * time.Millisecond
	// Msg3Msg4Delay covers the RRC request/setup exchange.
	Msg3Msg4Delay = 20 * time.Millisecond
	// MaxRachAttempts before the client declares failure and goes
	// back to idle (to retry at the next opportunity).
	MaxRachAttempts = 10
)

// AttachResult reports one completed attach procedure.
type AttachResult struct {
	ClientID int
	Attempts int
	Took     sim.Time
}

// RRCSim runs the contention-based random access of many clients
// against one cell on the event engine. Collisions happen when two
// clients pick the same preamble for the same RACH occasion.
type RRCSim struct {
	eng *sim.Engine
	rng *rand.Rand
	// Preambles is the contention pool size (64 minus dedicated).
	Preambles int
	// OnConnected fires as each client completes.
	OnConnected func(AttachResult)

	states   map[int]RRCState
	attempts map[int]int
	started  map[int]sim.Time
	// pending preamble picks for the upcoming RACH occasion.
	pending map[int]int // clientID -> preamble
}

// NewRRCSim builds the state machine on an engine; the RACH occasion
// ticker starts immediately.
func NewRRCSim(eng *sim.Engine) *RRCSim {
	r := &RRCSim{
		eng:       eng,
		rng:       eng.NewStream("rrc"),
		Preambles: 54, // 64 minus 10 dedicated, a common split
		states:    make(map[int]RRCState),
		attempts:  make(map[int]int),
		started:   make(map[int]sim.Time),
		pending:   make(map[int]int),
	}
	eng.EveryAt(RachPeriod, RachPeriod, r.rachOccasion)
	return r
}

// State returns a client's connection state.
func (r *RRCSim) State(clientID int) RRCState { return r.states[clientID] }

// Connect starts (or restarts) a client's attach procedure.
func (r *RRCSim) Connect(clientID int) {
	if r.states[clientID] == RRCConnected {
		return
	}
	if r.states[clientID] == RRCIdle {
		r.started[clientID] = r.eng.Now()
		r.attempts[clientID] = 0
	}
	r.states[clientID] = RRCConnecting
	r.pickPreamble(clientID)
}

// Release drops a client to idle (cell vacated the channel, or
// inactivity timeout).
func (r *RRCSim) Release(clientID int) {
	r.states[clientID] = RRCIdle
	delete(r.pending, clientID)
}

// ReleaseAll drops every client — the cell going dark.
func (r *RRCSim) ReleaseAll() {
	for id := range r.states {
		r.Release(id)
	}
}

// Connected counts clients in RRCConnected.
func (r *RRCSim) Connected() int {
	n := 0
	for _, s := range r.states {
		if s == RRCConnected {
			n++
		}
	}
	return n
}

func (r *RRCSim) pickPreamble(clientID int) {
	r.pending[clientID] = r.rng.Intn(r.Preambles)
}

// rachOccasion resolves one PRACH opportunity: clients that picked a
// unique preamble proceed to Msg2-4; clashing clients back off and
// retry at a later occasion.
func (r *RRCSim) rachOccasion() {
	if len(r.pending) == 0 {
		return
	}
	// Count picks per preamble (deterministic iteration by scanning
	// preamble indices, not map order).
	byPreamble := make(map[int][]int)
	maxID := 0
	for id := range r.pending {
		if id > maxID {
			maxID = id
		}
	}
	for id := 0; id <= maxID; id++ {
		p, ok := r.pending[id]
		if !ok {
			continue
		}
		byPreamble[p] = append(byPreamble[p], id)
	}
	for id := 0; id <= maxID; id++ {
		p, ok := r.pending[id]
		if !ok {
			continue
		}
		delete(r.pending, id)
		clientID := id
		r.attempts[clientID]++
		if len(byPreamble[p]) > 1 {
			// Contention: no usable RAR for these clients.
			if r.attempts[clientID] >= MaxRachAttempts {
				r.states[clientID] = RRCIdle
				continue
			}
			// Backoff: retry in 1..4 occasions.
			delay := time.Duration(1+r.rng.Intn(4)) * RachPeriod
			r.eng.After(delay, func() {
				if r.states[clientID] == RRCConnecting {
					r.pickPreamble(clientID)
				}
			})
			continue
		}
		// Unique preamble: Msg2 in the RAR window, then Msg3/Msg4.
		r.eng.After(RARWindow+Msg3Msg4Delay, func() {
			if r.states[clientID] != RRCConnecting {
				return // released mid-procedure
			}
			r.states[clientID] = RRCConnected
			if r.OnConnected != nil {
				r.OnConnected(AttachResult{
					ClientID: clientID,
					Attempts: r.attempts[clientID],
					Took:     r.eng.Now() - r.started[clientID],
				})
			}
		})
	}
}
