package lte

import (
	"testing"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/sim"
)

func newCellSimFixture(seed int64, dists ...float64) (*sim.Engine, *CellSim) {
	eng := sim.NewEngine(seed)
	env := NewEnvironment(seed)
	env.Model.ShadowSigmaDB = 0
	cell := &Cell{
		ID: 1, Pos: geo.Point{}, TxPowerDBm: 30,
		BW: BW5MHz, TDD: TDDConfig4, Activity: FullBuffer,
	}
	var clients []*Client
	for i, d := range dists {
		clients = append(clients, &Client{ID: 100 + i, Pos: geo.Point{X: d}, TxPowerDBm: 20})
	}
	cs := NewCellSim(eng, env, cell, clients)
	cs.Start()
	return eng, cs
}

func TestCellSimServesBacklog(t *testing.T) {
	eng, cs := newCellSimFixture(1, 150)
	cs.Backlog(100, 4_000_000)
	eng.Run(2 * time.Second)
	got := cs.DeliveredBits(100)
	if got != 4_000_000 {
		t.Fatalf("delivered %d of 4,000,000 bits on a clean close link", got)
	}
}

func TestCellSimThroughputNearPeak(t *testing.T) {
	eng, cs := newCellSimFixture(2, 100)
	cs.Backlog(100, 1<<40)
	eng.Run(2 * time.Second)
	rate := float64(cs.DeliveredBits(100)) / 2
	peak := PeakRateBps(BW5MHz, TDDConfig4)
	if rate < 0.6*peak {
		t.Fatalf("close-in rate %.1f Mbps below 60%% of the %.1f Mbps peak", rate/1e6, peak/1e6)
	}
	if rate > peak*1.01 {
		t.Fatalf("rate %.1f Mbps exceeds the PHY peak %.1f", rate/1e6, peak/1e6)
	}
}

func TestCellSimSharesAmongClients(t *testing.T) {
	eng, cs := newCellSimFixture(3, 150, 160, 170)
	for _, id := range []int{100, 101, 102} {
		cs.Backlog(id, 1<<40)
	}
	eng.Run(2 * time.Second)
	var min, max int64 = 1 << 62, 0
	for _, id := range []int{100, 101, 102} {
		b := cs.DeliveredBits(id)
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if min == 0 || float64(min)/float64(max) < 0.5 {
		t.Fatalf("PF starved a symmetric client: min %d max %d", min, max)
	}
}

func TestCellSimRespectsAllowedSet(t *testing.T) {
	eng, cs := newCellSimFixture(4, 150)
	cs.Allowed = []int{0, 1} // IM grants only two subchannels
	cs.Backlog(100, 1<<40)
	eng.Run(time.Second)
	rate := float64(cs.DeliveredBits(100))
	full := SubchannelRateBps(BW5MHz, TDDConfig4, 0, 15) + SubchannelRateBps(BW5MHz, TDDConfig4, 1, 15)
	if rate > full*1.05 {
		t.Fatalf("rate %.2f Mbps exceeds the 2-subchannel ceiling %.2f", rate/1e6, full/1e6)
	}
	if rate == 0 {
		t.Fatal("no service over the allowed set")
	}
}

func TestCellSimHARQRecoversAtCellEdge(t *testing.T) {
	// A far client's first transmissions fail regularly; HARQ must
	// still deliver most of the traffic.
	eng, cs := newCellSimFixture(5, 1250)
	cs.Backlog(100, 1<<40)
	eng.Run(2 * time.Second)
	if cs.DeliveredBits(100) == 0 {
		t.Fatal("cell-edge client starved entirely")
	}
	bler := cs.FirstTxBLER()
	if bler <= 0.005 {
		t.Fatalf("first-tx BLER %.3f suspiciously clean at 1.25 km", bler)
	}
	if bler > 0.6 {
		t.Fatalf("first-tx BLER %.2f: link adaptation broken", bler)
	}
}

func TestCellSimConservesBits(t *testing.T) {
	eng, cs := newCellSimFixture(6, 900)
	const offered = int64(2_000_000)
	cs.Backlog(100, offered)
	eng.Run(5 * time.Second)
	delivered := cs.DeliveredBits(100)
	queued := cs.ues[0].sched.BacklogBits
	var inflight int64
	for _, e := range cs.ues[0].harq {
		if e.active {
			inflight += e.bits
		}
	}
	if got := delivered + queued + inflight; got != offered {
		t.Fatalf("bits not conserved: %d delivered + %d queued + %d in flight != %d",
			delivered, queued, inflight, offered)
	}
}

func TestCellSimDeterministic(t *testing.T) {
	run := func() int64 {
		eng, cs := newCellSimFixture(7, 400, 800)
		cs.Backlog(100, 1<<30)
		cs.Backlog(101, 1<<30)
		eng.Run(time.Second)
		return cs.DeliveredBits(100)<<1 ^ cs.DeliveredBits(101)
	}
	if run() != run() {
		t.Fatal("cell simulation not deterministic")
	}
}

// The scheduler ablation at subframe granularity: with frequency-
// selective fading, proportional fair beats round robin by scheduling
// each client on its good sub-bands.
func TestCellSimPFBeatsRRUnderFading(t *testing.T) {
	total := func(sched Scheduler, seed int64) int64 {
		eng, cs := newCellSimFixture(seed, 700, 750, 800, 850)
		cs.Sched = sched
		for _, id := range []int{100, 101, 102, 103} {
			cs.Backlog(id, 1<<40)
		}
		eng.Run(2 * time.Second)
		var sum int64
		for _, id := range []int{100, 101, 102, 103} {
			sum += cs.DeliveredBits(id)
		}
		return sum
	}
	var pf, rr int64
	for seed := int64(0); seed < 3; seed++ {
		pf += total(&ProportionalFair{}, 30+seed)
		rr += total(&RoundRobin{}, 30+seed)
	}
	if pf <= rr {
		t.Fatalf("PF (%d bits) did not beat RR (%d bits) under frequency-selective fading", pf, rr)
	}
}

func TestCellSimUnknownClientPanics(t *testing.T) {
	_, cs := newCellSimFixture(8, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("Backlog on unknown client should panic")
		}
	}()
	cs.Backlog(999, 1)
}

func BenchmarkCellSimSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng, cs := newCellSimFixture(int64(i), 200, 500, 900)
		for _, id := range []int{100, 101, 102} {
			cs.Backlog(id, 1<<40)
		}
		eng.Run(time.Second)
	}
}
