package lte

import "math"

// MAC scheduling. Every downlink subframe the eNodeB assigns each
// schedulable subchannel (resource-block group) to at most one client.
// CellFi does not modify the scheduler: the interference-management
// component only restricts the *set* of subchannels handed to it
// (Section 4.3), and the scheduler remains free to place any client in
// any permitted subchannel.

// SchedUE is a scheduler's view of one connected client.
type SchedUE struct {
	ID int
	// BacklogBits is the queued downlink data.
	BacklogBits int64
	// SubbandCQI is the latest per-subchannel CQI report (len =
	// subchannel count). Missing reports should be filled with the
	// wideband value.
	SubbandCQI []int
	// avgRate is the proportional-fair EWMA throughput in bits per
	// subframe. Managed by the scheduler.
	avgRate float64
}

// Allocation maps subchannel index -> scheduled UE id for one subframe.
type Allocation map[int]int

// Scheduler assigns allowed subchannels to clients each downlink
// subframe and returns the allocation plus the bits served per UE id.
type Scheduler interface {
	// Allocate may assume every UE's SubbandCQI covers every
	// subchannel in allowed. It must drain BacklogBits of scheduled
	// UEs by the amount served.
	Allocate(bw Bandwidth, allowed []int, ues []*SchedUE) (Allocation, map[int]int64)
	// Name identifies the policy in experiment output.
	Name() string
}

// backlogged filters UEs with data.
func backlogged(ues []*SchedUE) []*SchedUE {
	out := ues[:0:0]
	for _, u := range ues {
		if u.BacklogBits > 0 {
			out = append(out, u)
		}
	}
	return out
}

// serve grants subchannel sc of bw to u and returns the bits served.
func serve(bw Bandwidth, sc int, u *SchedUE) int64 {
	cqi := 0
	if sc < len(u.SubbandCQI) {
		cqi = u.SubbandCQI[sc]
	}
	bits := int64(TransportBlockBits(cqi, bw.SubchannelRBs(sc)))
	if bits > u.BacklogBits {
		bits = u.BacklogBits
	}
	u.BacklogBits -= bits
	return bits
}

// RoundRobin cycles through backlogged clients, one subchannel at a
// time, regardless of channel quality.
type RoundRobin struct {
	next int
}

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "round-robin" }

// Allocate implements Scheduler.
func (r *RoundRobin) Allocate(bw Bandwidth, allowed []int, ues []*SchedUE) (Allocation, map[int]int64) {
	alloc := make(Allocation)
	served := make(map[int]int64)
	for _, sc := range allowed {
		cands := backlogged(ues)
		if len(cands) == 0 {
			break
		}
		u := cands[r.next%len(cands)]
		r.next++
		bits := serve(bw, sc, u)
		if bits == 0 {
			continue
		}
		alloc[sc] = u.ID
		served[u.ID] += bits
	}
	return alloc, served
}

// ProportionalFair maximizes sum log-throughput: each subchannel goes
// to the client with the highest instantaneous-rate / average-rate
// ratio, exploiting multi-user diversity across sub-bands (the standard
// LTE policy).
type ProportionalFair struct {
	// Beta is the EWMA forgetting factor; the conventional 1/1000
	// (per subframe) by default.
	Beta float64
}

// Name implements Scheduler.
func (p *ProportionalFair) Name() string { return "proportional-fair" }

// Allocate implements Scheduler.
func (p *ProportionalFair) Allocate(bw Bandwidth, allowed []int, ues []*SchedUE) (Allocation, map[int]int64) {
	beta := p.Beta
	if beta == 0 {
		beta = 1.0 / 1000
	}
	alloc := make(Allocation)
	served := make(map[int]int64)
	for _, sc := range allowed {
		var best *SchedUE
		bestMetric := math.Inf(-1)
		for _, u := range ues {
			if u.BacklogBits <= 0 {
				continue
			}
			cqi := 0
			if sc < len(u.SubbandCQI) {
				cqi = u.SubbandCQI[sc]
			}
			rate := float64(TransportBlockBits(cqi, bw.SubchannelRBs(sc)))
			if rate == 0 {
				continue
			}
			avg := u.avgRate
			if avg < 1 {
				avg = 1 // new clients get immediate priority
			}
			if m := rate / avg; m > bestMetric {
				bestMetric = m
				best = u
			}
		}
		if best == nil {
			continue
		}
		bits := serve(bw, sc, best)
		if bits == 0 {
			continue
		}
		alloc[sc] = best.ID
		served[best.ID] += bits
	}
	// EWMA update for every client, scheduled or not.
	for _, u := range ues {
		u.avgRate = (1-beta)*u.avgRate + beta*float64(served[u.ID])
	}
	return alloc, served
}
