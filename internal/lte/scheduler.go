package lte

import "math"

// MAC scheduling. Every downlink subframe the eNodeB assigns each
// schedulable subchannel (resource-block group) to at most one client.
// CellFi does not modify the scheduler: the interference-management
// component only restricts the *set* of subchannels handed to it
// (Section 4.3), and the scheduler remains free to place any client in
// any permitted subchannel.
//
// The per-TTI output lives in an AllocScratch the caller owns and
// reuses, so steady-state scheduling performs zero heap allocations:
// the cell allocates one scratch at attach time and every subframe
// writes over it. Consumers iterate UEOf in ascending subchannel
// order, which is explicitly deterministic (unlike the map-keyed
// allocation this replaced, whose range order was unspecified).

// SchedUE is a scheduler's view of one connected client.
type SchedUE struct {
	ID int
	// BacklogBits is the queued downlink data.
	BacklogBits int64
	// SubbandCQI is the latest per-subchannel CQI report (len =
	// subchannel count). Missing reports should be filled with the
	// wideband value.
	SubbandCQI []int
	// avgRate is the proportional-fair EWMA throughput in bits per
	// subframe. Managed by the scheduler.
	avgRate float64
}

// AllocScratch holds one subframe's allocation result plus the
// scheduler's working buffers. It is owned by the caller (one per
// cell), passed to every Allocate call, and reused across TTIs; after
// the first few calls it never allocates. The zero value is ready to
// use.
type AllocScratch struct {
	// UEOf[sc] is the index into the ues slice of the client granted
	// subchannel sc, or -1 when sc is unallocated. Its length is the
	// carrier's subchannel count. Iterating it in ascending index
	// order is the canonical deterministic traversal.
	UEOf []int32
	// Served[i] is the number of bits served to ues[i] this subframe.
	Served []int64

	// Internal working storage, reused across calls.
	cands []int32 // round-robin: backlogged candidate indices
	masks []uint32
	worst []int32
	order []int32
	buf   []byte // DCI marshal scratch (used by CellSim)
}

// Reset sizes the scratch for a carrier with the given subchannel
// count and UE population, clearing UEOf and Served. Allocate
// implementations call it on entry; buffers grow once and are reused.
func (s *AllocScratch) Reset(subchannels, ues int) {
	if cap(s.UEOf) < subchannels {
		s.UEOf = make([]int32, subchannels)
	}
	s.UEOf = s.UEOf[:subchannels]
	for i := range s.UEOf {
		s.UEOf[i] = -1
	}
	if cap(s.Served) < ues {
		s.Served = make([]int64, ues)
	}
	s.Served = s.Served[:ues]
	for i := range s.Served {
		s.Served[i] = 0
	}
}

// Grants returns the number of subchannels allocated this subframe.
func (s *AllocScratch) Grants() int {
	n := 0
	for _, u := range s.UEOf {
		if u >= 0 {
			n++
		}
	}
	return n
}

// Scheduler assigns allowed subchannels to clients each downlink
// subframe, writing the allocation and the per-UE served bits into
// scratch.
type Scheduler interface {
	// Allocate may assume every UE's SubbandCQI covers every
	// subchannel in allowed. It must drain BacklogBits of scheduled
	// UEs by the amount served. It resets and overwrites scratch; the
	// caller owns the scratch and reuses it across subframes.
	Allocate(scratch *AllocScratch, bw Bandwidth, allowed []int, ues []*SchedUE)
	// Name identifies the policy in experiment output.
	Name() string
}

// serve grants subchannel sc of bw to u and returns the bits served.
func serve(bw Bandwidth, sc int, u *SchedUE) int64 {
	cqi := 0
	if sc < len(u.SubbandCQI) {
		cqi = u.SubbandCQI[sc]
	}
	bits := int64(TransportBlockBits(cqi, bw.SubchannelRBs(sc)))
	if bits > u.BacklogBits {
		bits = u.BacklogBits
	}
	u.BacklogBits -= bits
	return bits
}

// RoundRobin cycles through backlogged clients, one subchannel at a
// time, regardless of channel quality.
type RoundRobin struct {
	next int
}

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "round-robin" }

// Allocate implements Scheduler.
func (r *RoundRobin) Allocate(s *AllocScratch, bw Bandwidth, allowed []int, ues []*SchedUE) {
	s.Reset(bw.Subchannels(), len(ues))
	for _, sc := range allowed {
		s.cands = s.cands[:0]
		for i, u := range ues {
			if u.BacklogBits > 0 {
				s.cands = append(s.cands, int32(i))
			}
		}
		if len(s.cands) == 0 {
			break
		}
		i := s.cands[r.next%len(s.cands)]
		r.next++
		bits := serve(bw, sc, ues[i])
		if bits == 0 {
			continue
		}
		s.UEOf[sc] = i
		s.Served[i] += bits
	}
}

// ProportionalFair maximizes sum log-throughput: each subchannel goes
// to the client with the highest instantaneous-rate / average-rate
// ratio, exploiting multi-user diversity across sub-bands (the standard
// LTE policy).
type ProportionalFair struct {
	// Beta is the EWMA forgetting factor; the conventional 1/1000
	// (per subframe) by default.
	Beta float64
}

// Name implements Scheduler.
func (p *ProportionalFair) Name() string { return "proportional-fair" }

// Allocate implements Scheduler.
func (p *ProportionalFair) Allocate(s *AllocScratch, bw Bandwidth, allowed []int, ues []*SchedUE) {
	beta := p.Beta
	if beta == 0 {
		beta = 1.0 / 1000
	}
	s.Reset(bw.Subchannels(), len(ues))
	tbs := &scTBS[bw.bwIndex()]
	for _, sc := range allowed {
		best := -1
		bestMetric := math.Inf(-1)
		for i, u := range ues {
			if u.BacklogBits <= 0 {
				continue
			}
			cqi := 0
			if sc < len(u.SubbandCQI) {
				cqi = u.SubbandCQI[sc]
			}
			if cqi < 0 || cqi > len(tbs)-1 {
				continue
			}
			rate := float64(tbs[cqi][sc])
			if rate == 0 {
				continue
			}
			avg := u.avgRate
			if avg < 1 {
				avg = 1 // new clients get immediate priority
			}
			if m := rate / avg; m > bestMetric {
				bestMetric = m
				best = i
			}
		}
		if best < 0 {
			continue
		}
		bits := serve(bw, sc, ues[best])
		if bits == 0 {
			continue
		}
		s.UEOf[sc] = int32(best)
		s.Served[best] += bits
	}
	// EWMA update for every client, scheduled or not.
	for i, u := range ues {
		u.avgRate = (1-beta)*u.avgRate + beta*float64(s.Served[i])
	}
}
