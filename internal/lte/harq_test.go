package lte

import (
	"math"
	"math/rand"
	"testing"
)

func TestHARQFirstAttemptSuccess(t *testing.T) {
	// Far above threshold: deterministic rule decodes immediately.
	p := NewHARQProcess(7)
	ok := p.Transmit(30, nil)
	if !ok || !p.Delivered() || p.Attempts() != 1 {
		t.Fatalf("strong signal: ok=%v delivered=%v attempts=%d", ok, p.Delivered(), p.Attempts())
	}
}

func TestHARQCombiningGain(t *testing.T) {
	// Just below threshold: the first attempt fails (BLER >= 0.5 under
	// the deterministic rule), but chase combining adds 3 dB per copy
	// and the block eventually decodes.
	m := NewHARQProcess(7)
	sinr := 2.0 // CQI 7 threshold is 5.9 dB
	for !m.Done() {
		m.Transmit(sinr, nil)
	}
	if !m.Delivered() {
		t.Fatalf("combining failed to deliver: eff SINR %g after %d attempts",
			m.EffectiveSINRdB(), m.Attempts())
	}
	if m.Attempts() < 2 {
		t.Fatalf("expected retransmissions, got %d attempts", m.Attempts())
	}
	// Two equal-power copies are +3 dB.
	p := NewHARQProcess(7)
	p.Transmit(0, nil)
	p.Transmit(0, nil)
	if got := p.EffectiveSINRdB(); math.Abs(got-3.0103) > 0.01 {
		t.Errorf("two combined 0 dB copies = %g dB, want 3.01", got)
	}
}

func TestHARQDropsAfterMaxAttempts(t *testing.T) {
	p := NewHARQProcess(15) // needs 22.7 dB
	for i := 0; i < 10; i++ {
		p.Transmit(-20, nil)
	}
	if !p.Done() || p.Delivered() {
		t.Fatalf("hopeless block: done=%v delivered=%v", p.Done(), p.Delivered())
	}
	if p.Attempts() != MaxHARQTransmissions {
		t.Fatalf("attempts = %d, want %d", p.Attempts(), MaxHARQTransmissions)
	}
	// Further transmits are no-ops.
	if p.Transmit(30, nil) {
		t.Fatal("terminated process accepted another transmission")
	}
}

func TestHARQEffectiveSINREmpty(t *testing.T) {
	p := NewHARQProcess(5)
	if !math.IsInf(p.EffectiveSINRdB(), -1) {
		t.Fatal("no transmissions should mean -Inf effective SINR")
	}
}

func TestRunHARQStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Comfortably above threshold: nearly everything delivers on the
	// first try.
	st := RunHARQ(2000, 7, rng, func() float64 { return 12 })
	if st.DeliveryRate() < 0.99 {
		t.Errorf("strong-link delivery = %g", st.DeliveryRate())
	}
	if st.HARQFraction() > 0.05 {
		t.Errorf("strong-link HARQ fraction = %g", st.HARQFraction())
	}

	// At threshold: ~10% of first attempts fail, so the HARQ fraction
	// sits near 0.1 — the long-link regime of Figure 1.
	st = RunHARQ(4000, 7, rng, func() float64 { return 5.9 })
	if st.HARQFraction() < 0.05 || st.HARQFraction() > 0.2 {
		t.Errorf("at-threshold HARQ fraction = %g, want about 0.1", st.HARQFraction())
	}
	if st.DeliveryRate() < 0.999 {
		t.Errorf("at-threshold delivery = %g; combining should save nearly all", st.DeliveryRate())
	}

	// Deep fade regime: delivery collapses.
	st = RunHARQ(500, 15, rng, func() float64 { return -5 })
	if st.DeliveryRate() > 0.05 {
		t.Errorf("hopeless-link delivery = %g", st.DeliveryRate())
	}
	if st.Dropped+st.Delivered != st.Blocks {
		t.Error("blocks not conserved")
	}
}

func TestRunHARQVaryingChannel(t *testing.T) {
	// Fading channel around the threshold: HARQ fraction must exceed
	// the static case because bad draws force retransmissions, and
	// delivery stays high because good draws rescue them.
	rng := rand.New(rand.NewSource(2))
	fade := rand.New(rand.NewSource(3))
	st := RunHARQ(3000, 7, rng, func() float64 { return 5.9 + fade.NormFloat64()*6 })
	if st.DeliveryRate() < 0.9 {
		t.Errorf("fading delivery = %g", st.DeliveryRate())
	}
	if st.HARQFraction() < 0.1 {
		t.Errorf("fading HARQ fraction = %g, want noticeable retransmissions", st.HARQFraction())
	}
}

func BenchmarkHARQRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		_ = RunHARQ(100, 7, rng, func() float64 { return 6 })
	}
}
