package lte

import (
	"math/cmplx"
	"testing"
)

// FuzzDFTRoundTrip: IDFT(DFT(x)) must reproduce x for arbitrary
// lengths (Bluestein path included) and values.
func FuzzDFTRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0})
	f.Add([]byte{255, 0, 255, 0, 255, 0, 255, 0, 1, 2, 3})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 512 {
			return
		}
		x := make([]complex128, len(raw)/2+1)
		for i := range x {
			re := float64(int(raw[(2*i)%len(raw)]) - 128)
			im := float64(int(raw[(2*i+1)%len(raw)]) - 128)
			x[i] = complex(re, im)
		}
		y := IDFT(DFT(x))
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-6*float64(len(x)+1)*256 {
				t.Fatalf("round trip diverged at %d: %v vs %v (n=%d)", i, y[i], x[i], len(x))
			}
		}
	})
}
