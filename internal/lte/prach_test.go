package lte

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestZadoffChuConstantAmplitude(t *testing.T) {
	x := ZadoffChu(25, PRACHSequenceLength)
	for i, v := range x {
		if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
			t.Fatalf("sample %d has amplitude %g, want 1 (CAZAC property)", i, cmplx.Abs(v))
		}
	}
}

func TestZadoffChuZeroAutocorrelation(t *testing.T) {
	// CAZAC: the autocorrelation of a ZC sequence is zero at every
	// nonzero cyclic lag.
	x := ZadoffChu(7, 139)
	n := len(x)
	for lag := 1; lag < n; lag += 13 {
		var acc complex128
		for k := 0; k < n; k++ {
			acc += x[k] * cmplx.Conj(x[(k+lag)%n])
		}
		if cmplx.Abs(acc) > 1e-9*float64(n) {
			t.Fatalf("autocorrelation at lag %d = %g, want 0", lag, cmplx.Abs(acc))
		}
	}
}

func TestZadoffChuCrossCorrelationLow(t *testing.T) {
	// Different prime-length roots have constant sqrt(N) cross-
	// correlation — far below the N autocorrelation peak.
	n := PRACHSequenceLength
	a := ZadoffChu(3, n)
	b := ZadoffChu(11, n)
	var acc complex128
	for k := 0; k < n; k++ {
		acc += a[k] * cmplx.Conj(b[k])
	}
	if got := cmplx.Abs(acc); got > 1.5*math.Sqrt(float64(n)) {
		t.Fatalf("cross-correlation %g, want about sqrt(%d)=%g", got, n, math.Sqrt(float64(n)))
	}
}

func TestZadoffChuValidation(t *testing.T) {
	for _, c := range []struct{ u, n int }{{0, 839}, {839, 839}, {1, 838}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ZadoffChu(%d, %d) should panic", c.u, c.n)
				}
			}()
			ZadoffChu(c.u, c.n)
		}()
	}
}

func TestGeneratePreambleShift(t *testing.T) {
	base := ZadoffChu(5, PRACHSequenceLength)
	p := GeneratePreamble(Preamble{Root: 5, Shift: 100})
	for k := 0; k < PRACHSequenceLength; k++ {
		if p[k] != base[(k+100)%PRACHSequenceLength] {
			t.Fatalf("shifted preamble wrong at sample %d", k)
		}
	}
	// Zero shift returns the root itself.
	p0 := GeneratePreamble(Preamble{Root: 5})
	for k := range p0 {
		if p0[k] != base[k] {
			t.Fatal("zero-shift preamble differs from root")
		}
	}
}

func TestFastDetectorCleanSignal(t *testing.T) {
	for _, shift := range []int{0, 1, 119, 500, 838} {
		tx := GeneratePreamble(Preamble{Root: 25, Shift: shift})
		res := DetectPreambleFast(tx, 25)
		if !res.Detected {
			t.Fatalf("clean preamble shift %d not detected", shift)
		}
		if res.Shift != shift {
			t.Fatalf("shift %d detected as %d", shift, res.Shift)
		}
	}
}

func TestDetectorsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tx := GeneratePreamble(Preamble{Root: 17, Shift: 333})
	rx := AddAWGN(rng, tx, 0)
	fast := DetectPreambleFast(rx, 17)
	naive := DetectPreambleNaive(rx, 17)
	if fast.Detected != naive.Detected || fast.Shift != naive.Shift {
		t.Fatalf("detectors disagree: fast=%+v naive=%+v", fast, naive)
	}
	if math.Abs(fast.PeakToMean-naive.PeakToMean)/naive.PeakToMean > 1e-6 {
		t.Fatalf("statistics differ: %g vs %g", fast.PeakToMean, naive.PeakToMean)
	}
}

// The Section 6.3.3 claim: preambles are detectable at -10 dB SNR.
func TestDetectionAtMinus10dB(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	det := NewFastDetector(25)
	detected := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		tx := GeneratePreamble(Preamble{Root: 25, Shift: rng.Intn(PRACHSequenceLength)})
		rx := AddAWGN(rng, tx, PRACHDetectFloorDB)
		if det.Detect(rx).Detected {
			detected++
		}
	}
	if detected < 95 {
		t.Fatalf("detected %d/%d at -10 dB, want >= 95", detected, trials)
	}
}

func TestNoFalseAlarmsOnNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	det := NewFastDetector(25)
	falseAlarms := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		noise := make([]complex128, PRACHSequenceLength)
		rx := AddAWGN(rng, noise, 0) // pure unit-power noise
		if det.Detect(rx).Detected {
			falseAlarms++
		}
	}
	// CFAR-style expectation: essentially no false alarms at 10x
	// peak-to-mean over 839 bins.
	if falseAlarms > 4 {
		t.Fatalf("%d/%d false alarms on pure noise", falseAlarms, trials)
	}
}

func TestNoDetectionOfWrongRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	det := NewFastDetector(25)
	// A strong preamble from a different root must not register
	// (constant sqrt(N) cross-correlation keeps peak-to-mean ~1).
	tx := GeneratePreamble(Preamble{Root: 11, Shift: 50})
	rx := AddAWGN(rng, tx, 20)
	if res := det.Detect(rx); res.Detected {
		t.Fatalf("wrong-root preamble detected: %+v", res)
	}
}

func TestDetectionDegradesGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	det := NewFastDetector(25)
	rate := func(snrDB float64) float64 {
		hits := 0
		const trials = 60
		for i := 0; i < trials; i++ {
			tx := GeneratePreamble(Preamble{Root: 25, Shift: 100})
			if det.Detect(AddAWGN(rng, tx, snrDB)).Detected {
				hits++
			}
		}
		return float64(hits) / trials
	}
	if r := rate(-10); r < 0.9 {
		t.Errorf("detection rate at -10 dB = %g, want >= 0.9", r)
	}
	if r := rate(-24); r > 0.5 {
		t.Errorf("detection rate at -24 dB = %g; detector should fail well below the floor", r)
	}
}

func TestDetectorWindowValidation(t *testing.T) {
	det := NewFastDetector(25)
	defer func() {
		if recover() == nil {
			t.Fatal("short window should panic")
		}
	}()
	det.Detect(make([]complex128, 100))
}

func TestAttenuate(t *testing.T) {
	x := []complex128{1, 1i, -2}
	y := Attenuate(x, -20)
	for i := range y {
		if math.Abs(cmplx.Abs(y[i])-cmplx.Abs(x[i])*0.1) > 1e-12 {
			t.Fatalf("attenuation wrong at %d: %v", i, y[i])
		}
	}
}

// Section 6.3.3: the modified detector runs ~16x faster than the line
// rate. Our line-rate reference: one 839-sample preamble arrives per
// 0.8 ms PRACH window on a 10 MHz channel (1.048 Msps preamble
// sampling); the detector must process a window well under that.
func TestFastDetectorBeatsLineRate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("timing test: race instrumentation slows the detector severalfold")
	}
	det := NewFastDetector(25)
	rng := rand.New(rand.NewSource(6))
	rx := AddAWGN(rng, GeneratePreamble(Preamble{Root: 25, Shift: 42}), 0)
	const windows = 200
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < windows; j++ {
				_ = det.Detect(rx)
			}
		}
	})
	perWindow := res.T.Seconds() / float64(res.N) / windows
	// Line rate: one window per 0.8 ms. The paper reports 16x on an
	// i7; machines and concurrent load vary, so the test only asserts
	// the claim itself — the detector keeps up with line rate. The
	// prach experiment reports the actual multiple.
	if perWindow > 0.8e-3 {
		t.Errorf("detector takes %.3f ms per 0.8 ms window; not real-time", perWindow*1e3)
	}
}

func BenchmarkPRACHDetectFast(b *testing.B) {
	det := NewFastDetector(25)
	rng := rand.New(rand.NewSource(1))
	rx := AddAWGN(rng, GeneratePreamble(Preamble{Root: 25, Shift: 42}), -10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = det.Detect(rx)
	}
}

func BenchmarkPRACHDetectNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rx := AddAWGN(rng, GeneratePreamble(Preamble{Root: 25, Shift: 42}), -10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DetectPreambleNaive(rx, 25)
	}
}

func TestDetectMultiplePreambles(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	det := NewFastDetector(25)
	shifts := []int{50, 300, 700}
	var signals [][]complex128
	for _, s := range shifts {
		signals = append(signals, GeneratePreamble(Preamble{Root: 25, Shift: s}))
	}
	rx := AddAWGN(rng, Superpose(signals, []float64{0, -3, -6}), -3)
	got := det.DetectMultiple(rx, 0)
	if len(got) != 3 {
		t.Fatalf("detected %d preambles, want 3: %+v", len(got), got)
	}
	found := map[int]bool{}
	for _, r := range got {
		found[r.Shift] = true
	}
	for _, s := range shifts {
		ok := false
		for f := range found {
			if abs(f-s) <= 2 || abs(f-s) >= PRACHSequenceLength-2 {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("shift %d not recovered (found %v)", s, found)
		}
	}
	// Strongest first.
	for i := 1; i < len(got); i++ {
		if got[i].PeakToMean > got[i-1].PeakToMean {
			t.Fatal("results not in descending power order")
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestDetectMultipleGuardZone(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	det := NewFastDetector(25)
	// Two "preambles" within the N_cs guard (same client's multipath)
	// must count once.
	a := GeneratePreamble(Preamble{Root: 25, Shift: 100})
	b := GeneratePreamble(Preamble{Root: 25, Shift: 104})
	rx := AddAWGN(rng, Superpose([][]complex128{a, b}, []float64{0, -2}), 5)
	got := det.DetectMultiple(rx, 0)
	if len(got) != 1 {
		t.Fatalf("guard zone failed: %d detections for one delay-spread client", len(got))
	}
}

func TestDetectMultipleMaxCount(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	det := NewFastDetector(25)
	var signals [][]complex128
	gains := make([]float64, 4)
	for i, s := range []int{60, 260, 460, 660} {
		signals = append(signals, GeneratePreamble(Preamble{Root: 25, Shift: s}))
		gains[i] = 0
	}
	rx := AddAWGN(rng, Superpose(signals, gains), 0)
	if got := det.DetectMultiple(rx, 2); len(got) != 2 {
		t.Fatalf("maxCount not respected: %d", len(got))
	}
}

func TestDetectMultipleNoiseOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	det := NewFastDetector(25)
	rx := AddAWGN(rng, make([]complex128, PRACHSequenceLength), 0)
	if got := det.DetectMultiple(rx, 0); len(got) != 0 {
		t.Fatalf("detected %d preambles in pure noise", len(got))
	}
}

func TestSuperposeValidation(t *testing.T) {
	if Superpose(nil, nil) != nil {
		t.Fatal("empty superpose should be nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("gain count mismatch should panic")
		}
	}()
	Superpose([][]complex128{make([]complex128, 4)}, []float64{0, 1})
}

func BenchmarkPRACHDetectMultiple(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	det := NewFastDetector(25)
	sigs := [][]complex128{
		GeneratePreamble(Preamble{Root: 25, Shift: 100}),
		GeneratePreamble(Preamble{Root: 25, Shift: 500}),
	}
	rx := AddAWGN(rng, Superpose(sigs, []float64{0, -3}), -5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = det.DetectMultiple(rx, 0)
	}
}
