package lte

import (
	"errors"
	"fmt"
)

// Downlink control information. Section 3.2: "an access point is in
// charge of scheduling both uplink and downlink traffic. It assigns
// multiple resource blocks to various clients and the assignment is
// communicated over the control channel." This file implements a
// compact DCI format-1-style grant — RNTI, resource-block-group
// bitmap, MCS (CQI index here), HARQ process and new-data indicator —
// with a bit-exact codec, mirroring how the per-subframe scheduler's
// output actually reaches clients.

// DCI is one downlink grant as carried on the PDCCH.
type DCI struct {
	// RNTI addresses the client (16 bits).
	RNTI uint16
	// RBGMask selects resource-block groups (subchannels); bit k
	// grants subchannel k. Width depends on the carrier.
	RBGMask uint32
	// CQI is the transport format (1..15; 4 bits).
	CQI uint8
	// HARQProcess identifies the stop-and-wait process (3 bits).
	HARQProcess uint8
	// NewData toggles between fresh blocks and retransmissions.
	NewData bool
}

const dciMagic = 0xD1

// Subchannels lists the granted subchannel indices in ascending order.
func (d DCI) Subchannels(bw Bandwidth) []int {
	var out []int
	for k := 0; k < bw.Subchannels(); k++ {
		if d.RBGMask&(1<<uint(k)) != 0 {
			out = append(out, k)
		}
	}
	return out
}

// GrantFromAllocation builds per-client DCIs from a scheduler
// allocation (subchannel -> UE id), assigning HARQ process numbers
// round-robin per client.
func GrantFromAllocation(bw Bandwidth, alloc Allocation, cqiOf func(ue, subchannel int) int) []DCI {
	masks := map[int]uint32{}
	worstCQI := map[int]int{}
	var ids []int
	for sc := 0; sc < bw.Subchannels(); sc++ {
		ue, ok := alloc[sc]
		if !ok {
			continue
		}
		if _, seen := masks[ue]; !seen {
			ids = append(ids, ue)
			worstCQI[ue] = 15
		}
		masks[ue] |= 1 << uint(sc)
		if c := cqiOf(ue, sc); c < worstCQI[ue] {
			worstCQI[ue] = c
		}
	}
	sortInts(ids)
	out := make([]DCI, 0, len(ids))
	for i, ue := range ids {
		cqi := worstCQI[ue]
		if cqi < 1 {
			cqi = 1
		}
		out = append(out, DCI{
			RNTI:        uint16(ue),
			RBGMask:     masks[ue],
			CQI:         uint8(cqi),
			HARQProcess: uint8(i % 8),
			NewData:     true,
		})
	}
	return out
}

// Validate checks field ranges against the carrier.
func (d DCI) Validate(bw Bandwidth) error {
	if d.CQI < 1 || d.CQI > 15 {
		return fmt.Errorf("lte: DCI CQI %d out of range", d.CQI)
	}
	if d.HARQProcess > 7 {
		return fmt.Errorf("lte: HARQ process %d out of range", d.HARQProcess)
	}
	if d.RBGMask == 0 {
		return errors.New("lte: empty DCI grant")
	}
	if d.RBGMask >= 1<<uint(bw.Subchannels()) {
		return fmt.Errorf("lte: RBG mask %x exceeds the %d-subchannel carrier",
			d.RBGMask, bw.Subchannels())
	}
	return nil
}

// Marshal encodes the grant: magic(8) rnti(16) mask(25) cqi(4)
// harq(3) nd(1) = 57 bits -> 8 bytes. The mask width is fixed at the
// 20 MHz carrier's 25 subchannels so one codec serves every bandwidth.
func (d DCI) Marshal(bw Bandwidth) ([]byte, error) {
	if err := d.Validate(bw); err != nil {
		return nil, err
	}
	w := &bitWriter{}
	w.write(dciMagic, 8)
	w.write(uint64(d.RNTI), 16)
	w.write(uint64(d.RBGMask), 25)
	w.write(uint64(d.CQI), 4)
	w.write(uint64(d.HARQProcess), 3)
	nd := uint64(0)
	if d.NewData {
		nd = 1
	}
	w.write(nd, 1)
	return w.buf, nil
}

// UnmarshalDCI decodes a grant and validates it against the carrier.
func UnmarshalDCI(b []byte, bw Bandwidth) (DCI, error) {
	r := &bitReader{buf: b}
	magic, err := r.read(8)
	if err != nil {
		return DCI{}, err
	}
	if magic != dciMagic {
		return DCI{}, errors.New("lte: not a DCI grant")
	}
	var d DCI
	v, err := r.read(16)
	if err != nil {
		return DCI{}, err
	}
	d.RNTI = uint16(v)
	if v, err = r.read(25); err != nil {
		return DCI{}, err
	}
	d.RBGMask = uint32(v)
	if v, err = r.read(4); err != nil {
		return DCI{}, err
	}
	d.CQI = uint8(v)
	if v, err = r.read(3); err != nil {
		return DCI{}, err
	}
	d.HARQProcess = uint8(v)
	if v, err = r.read(1); err != nil {
		return DCI{}, err
	}
	d.NewData = v == 1
	if err := d.Validate(bw); err != nil {
		return DCI{}, fmt.Errorf("lte: decoded DCI invalid: %w", err)
	}
	return d, nil
}
