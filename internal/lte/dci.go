package lte

import (
	"errors"
	"fmt"
)

// Downlink control information. Section 3.2: "an access point is in
// charge of scheduling both uplink and downlink traffic. It assigns
// multiple resource blocks to various clients and the assignment is
// communicated over the control channel." This file implements a
// compact DCI format-1-style grant — RNTI, resource-block-group
// bitmap, MCS (CQI index here), HARQ process and new-data indicator —
// with a bit-exact codec, mirroring how the per-subframe scheduler's
// output actually reaches clients.

// DCI is one downlink grant as carried on the PDCCH.
type DCI struct {
	// RNTI addresses the client (16 bits).
	RNTI uint16
	// RBGMask selects resource-block groups (subchannels); bit k
	// grants subchannel k. Width depends on the carrier.
	RBGMask uint32
	// CQI is the transport format (1..15; 4 bits).
	CQI uint8
	// HARQProcess identifies the stop-and-wait process (3 bits).
	HARQProcess uint8
	// NewData toggles between fresh blocks and retransmissions.
	NewData bool
}

const dciMagic = 0xD1

// Subchannels lists the granted subchannel indices in ascending order.
func (d DCI) Subchannels(bw Bandwidth) []int {
	var out []int
	for k := 0; k < bw.Subchannels(); k++ {
		if d.RBGMask&(1<<uint(k)) != 0 {
			out = append(out, k)
		}
	}
	return out
}

// AppendGrants builds per-client DCIs from the subframe's allocation in
// scratch and appends them to dst, which it returns. Grants come out in
// ascending RNTI order with HARQ process numbers assigned round-robin,
// and each grant's CQI is the worst sub-band CQI across its granted
// subchannels (floored at 1 so the grant stays encodable). The scan
// over scratch.UEOf runs in ascending subchannel order, so the output
// is fully deterministic; scratch working buffers are reused, so
// steady-state calls with a pre-grown dst do not allocate.
func AppendGrants(dst []DCI, bw Bandwidth, s *AllocScratch, ues []*SchedUE) []DCI {
	n := bw.Subchannels()
	if len(s.UEOf) < n {
		n = len(s.UEOf) // scratch not sized for this carrier: trust it
	}
	if cap(s.masks) < len(ues) {
		s.masks = make([]uint32, len(ues))
	}
	if cap(s.worst) < len(ues) {
		s.worst = make([]int32, len(ues))
	}
	s.masks = s.masks[:len(ues)]
	s.worst = s.worst[:len(ues)]
	for i := range s.masks {
		s.masks[i] = 0
	}
	s.order = s.order[:0]
	for sc := 0; sc < n; sc++ {
		ui := s.UEOf[sc]
		if ui < 0 {
			continue
		}
		// A zero mask doubles as the "not seen yet" sentinel: any
		// granted UE gets at least one bit set right below.
		if s.masks[ui] == 0 {
			s.order = append(s.order, ui)
			s.worst[ui] = 15
		}
		s.masks[ui] |= 1 << uint(sc)
		c := 0
		if u := ues[ui]; sc < len(u.SubbandCQI) {
			c = u.SubbandCQI[sc]
		}
		if int32(c) < s.worst[ui] {
			s.worst[ui] = int32(c)
		}
	}
	ord := s.order
	for i := 1; i < len(ord); i++ {
		for j := i; j > 0 && ues[ord[j]].ID < ues[ord[j-1]].ID; j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	for i, ui := range ord {
		cqi := s.worst[ui]
		if cqi < 1 {
			cqi = 1
		}
		dst = append(dst, DCI{
			RNTI:        uint16(ues[ui].ID),
			RBGMask:     s.masks[ui],
			CQI:         uint8(cqi),
			HARQProcess: uint8(i % 8),
			NewData:     true,
		})
	}
	return dst
}

// Validate checks field ranges against the carrier.
func (d DCI) Validate(bw Bandwidth) error {
	if d.CQI < 1 || d.CQI > 15 {
		return fmt.Errorf("lte: DCI CQI %d out of range", d.CQI)
	}
	if d.HARQProcess > 7 {
		return fmt.Errorf("lte: HARQ process %d out of range", d.HARQProcess)
	}
	if d.RBGMask == 0 {
		return errors.New("lte: empty DCI grant")
	}
	if d.RBGMask >= 1<<uint(bw.Subchannels()) {
		return fmt.Errorf("lte: RBG mask %x exceeds the %d-subchannel carrier",
			d.RBGMask, bw.Subchannels())
	}
	return nil
}

// dciBytes is the encoded size: 57 bits rounded up.
const dciBytes = 8

// MarshalAppend encodes the grant — magic(8) rnti(16) mask(25) cqi(4)
// harq(3) nd(1) = 57 bits -> 8 bytes — appending to dst, which it
// returns. The mask width is fixed at the 20 MHz carrier's 25
// subchannels so one codec serves every bandwidth. The fields are
// packed into a single big-endian word, which produces exactly the
// bytes the original bit-at-a-time writer did without its per-grant
// buffer growth.
func (d DCI) MarshalAppend(dst []byte, bw Bandwidth) ([]byte, error) {
	if err := d.Validate(bw); err != nil {
		return nil, err
	}
	nd := uint64(0)
	if d.NewData {
		nd = 1
	}
	v := uint64(dciMagic)<<49 | uint64(d.RNTI)<<33 | uint64(d.RBGMask)<<8 |
		uint64(d.CQI)<<4 | uint64(d.HARQProcess)<<1 | nd
	v <<= 64 - 57 // left-align: the stream is MSB-first
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v)), nil
}

// Marshal encodes the grant into a fresh buffer.
func (d DCI) Marshal(bw Bandwidth) ([]byte, error) {
	return d.MarshalAppend(nil, bw)
}

// UnmarshalDCI decodes a grant and validates it against the carrier.
func UnmarshalDCI(b []byte, bw Bandwidth) (DCI, error) {
	if len(b) == 0 {
		return DCI{}, errors.New("lte: SIB truncated")
	}
	if b[0] != dciMagic {
		return DCI{}, errors.New("lte: not a DCI grant")
	}
	if len(b) < dciBytes {
		return DCI{}, errors.New("lte: SIB truncated")
	}
	v := uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
	v >>= 64 - 57
	d := DCI{
		RNTI:        uint16(v >> 33),
		RBGMask:     uint32(v>>8) & (1<<25 - 1),
		CQI:         uint8(v>>4) & 0xF,
		HARQProcess: uint8(v>>1) & 0x7,
		NewData:     v&1 == 1,
	}
	if err := d.Validate(bw); err != nil {
		return DCI{}, fmt.Errorf("lte: decoded DCI invalid: %w", err)
	}
	return d, nil
}
