package lte

import (
	"math"
	"math/rand"

	"cellfi/internal/phy"
)

// HARQ: hybrid automatic repeat request with chase combining. A failed
// transport block is retransmitted and the receiver combines the soft
// energy of all attempts, so each retransmission adds the full SINR of
// its copy in the linear domain. This is the mechanism behind the
// paper's observation that 25% of packets beyond 500 m used HARQ
// (Section 3.1) and part of why LTE holds links Wi-Fi cannot.

// MaxHARQTransmissions is the maximum number of attempts (1 initial + 3
// retransmissions), the common LTE configuration.
const MaxHARQTransmissions = 4

// HARQProcess tracks one transport block across attempts.
type HARQProcess struct {
	// CQI is the transport format the block was built for.
	CQI int
	// attempts made so far.
	attempts int
	// accSINRLinear is the chase-combined SINR.
	accSINRLinear float64
	// done marks delivered or abandoned blocks.
	done, delivered bool
}

// NewHARQProcess starts a process for a block encoded at the given CQI.
func NewHARQProcess(cqi int) *HARQProcess {
	return &HARQProcess{CQI: cqi}
}

// Attempts returns the number of transmissions performed.
func (h *HARQProcess) Attempts() int { return h.attempts }

// Delivered reports whether the block was decoded.
func (h *HARQProcess) Delivered() bool { return h.delivered }

// Done reports whether the process has terminated (success or drop).
func (h *HARQProcess) Done() bool { return h.done }

// EffectiveSINRdB returns the chase-combined SINR after the attempts so
// far.
func (h *HARQProcess) EffectiveSINRdB() float64 {
	if h.accSINRLinear <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(h.accSINRLinear)
}

// Transmit performs one attempt at the given instantaneous SINR and
// returns whether the block decoded. The rng drives the block-error
// coin flip; pass nil for a deterministic "decode iff BLER < 0.5" rule.
func (h *HARQProcess) Transmit(sinrDB float64, rng *rand.Rand) bool {
	if h.done {
		return h.delivered
	}
	h.attempts++
	h.accSINRLinear += math.Pow(10, sinrDB/10)
	bler := phy.BLER(h.EffectiveSINRdB(), phy.LTECQI(h.CQI))
	var ok bool
	if rng == nil {
		ok = bler < 0.5
	} else {
		ok = rng.Float64() >= bler
	}
	if ok {
		h.done = true
		h.delivered = true
	} else if h.attempts >= MaxHARQTransmissions {
		h.done = true
	}
	return ok
}

// DeliveryStats summarizes many HARQ runs.
type DeliveryStats struct {
	Blocks      int
	Delivered   int
	Retransmits int // blocks that needed at least one retransmission
	Dropped     int
}

// DeliveryRate is the fraction of blocks delivered.
func (s DeliveryStats) DeliveryRate() float64 {
	if s.Blocks == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(s.Blocks)
}

// HARQFraction is the fraction of blocks that needed at least one
// retransmission — the Figure 1 "25% of packets beyond 500 m" metric.
func (s DeliveryStats) HARQFraction() float64 {
	if s.Blocks == 0 {
		return 0
	}
	return float64(s.Retransmits) / float64(s.Blocks)
}

// RunHARQ transmits n blocks at the given CQI, drawing each attempt's
// SINR from sinrFn (called once per attempt), and aggregates statistics.
func RunHARQ(n, cqi int, rng *rand.Rand, sinrFn func() float64) DeliveryStats {
	var st DeliveryStats
	st.Blocks = n
	for i := 0; i < n; i++ {
		p := NewHARQProcess(cqi)
		for !p.Done() {
			p.Transmit(sinrFn(), rng)
		}
		if p.Delivered() {
			st.Delivered++
		} else {
			st.Dropped++
		}
		if p.Attempts() > 1 {
			st.Retransmits++
		}
	}
	return st
}
