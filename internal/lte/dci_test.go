package lte

import (
	"testing"
	"testing/quick"
)

func TestDCIRoundTrip(t *testing.T) {
	d := DCI{RNTI: 61, RBGMask: 0b1010110, CQI: 9, HARQProcess: 3, NewData: true}
	raw, err := d.Marshal(BW5MHz)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 8 {
		t.Fatalf("DCI encodes to %d bytes, want 8", len(raw))
	}
	got, err := UnmarshalDCI(raw, BW5MHz)
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatalf("round trip: %+v vs %+v", got, d)
	}
}

func TestDCIQuickRoundTrip(t *testing.T) {
	f := func(rnti uint16, mask uint32, cqi, harq uint8, nd bool) bool {
		d := DCI{
			RNTI:        rnti,
			RBGMask:     mask%(1<<25-1) + 1, // nonzero, within 25 bits
			CQI:         cqi%15 + 1,
			HARQProcess: harq % 8,
			NewData:     nd,
		}
		raw, err := d.Marshal(BW20MHz)
		if err != nil {
			return false
		}
		got, err := UnmarshalDCI(raw, BW20MHz)
		return err == nil && got == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDCIValidation(t *testing.T) {
	base := DCI{RNTI: 1, RBGMask: 1, CQI: 5, HARQProcess: 0, NewData: true}
	cases := []func(*DCI){
		func(d *DCI) { d.CQI = 0 },
		func(d *DCI) { d.CQI = 16 },
		func(d *DCI) { d.HARQProcess = 8 },
		func(d *DCI) { d.RBGMask = 0 },
		func(d *DCI) { d.RBGMask = 1 << 13 }, // beyond a 5 MHz carrier
	}
	for i, mutate := range cases {
		d := base
		mutate(&d)
		if _, err := d.Marshal(BW5MHz); err == nil {
			t.Errorf("case %d: invalid DCI marshalled", i)
		}
	}
	if _, err := UnmarshalDCI([]byte{0x00, 1, 2, 3, 4, 5, 6, 7}, BW5MHz); err == nil {
		t.Error("wrong magic decoded")
	}
	if _, err := UnmarshalDCI(nil, BW5MHz); err == nil {
		t.Error("empty buffer decoded")
	}
}

func TestDCISubchannels(t *testing.T) {
	d := DCI{RBGMask: 0b1000000000101}
	got := d.Subchannels(BW5MHz)
	want := []int{0, 2, 12}
	if len(got) != len(want) {
		t.Fatalf("subchannels = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("subchannels = %v, want %v", got, want)
		}
	}
}

// The scheduler -> control channel path: an allocation becomes one DCI
// per scheduled client whose mask reproduces exactly the granted set.
func TestAppendGrants(t *testing.T) {
	// UE 7 holds subchannels 0, 1 and 12 (12 at its weakest CQI, 4);
	// UE 3 holds subchannel 5. Deliberately listed out of ID order to
	// exercise the ascending-RNTI output sort.
	cqi7 := uniformCQI(BW5MHz, 11)
	cqi7[12] = 4
	ues := []*SchedUE{
		{ID: 7, SubbandCQI: cqi7},
		{ID: 3, SubbandCQI: uniformCQI(BW5MHz, 11)},
	}
	var scratch AllocScratch
	scratch.Reset(BW5MHz.Subchannels(), len(ues))
	scratch.UEOf[0] = 0
	scratch.UEOf[1] = 0
	scratch.UEOf[5] = 1
	scratch.UEOf[12] = 0
	grants := AppendGrants(nil, BW5MHz, &scratch, ues)
	if len(grants) != 2 {
		t.Fatalf("grants = %d, want 2", len(grants))
	}
	if grants[0].RNTI != 3 || grants[1].RNTI != 7 {
		t.Fatalf("grants not in ascending RNTI order: %d, %d", grants[0].RNTI, grants[1].RNTI)
	}
	byRNTI := map[uint16]DCI{}
	for _, g := range grants {
		if err := g.Validate(BW5MHz); err != nil {
			t.Fatal(err)
		}
		byRNTI[g.RNTI] = g
		// Codec round trip for every emitted grant.
		raw, err := g.Marshal(BW5MHz)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalDCI(raw, BW5MHz)
		if err != nil || back != g {
			t.Fatalf("grant round trip failed: %v", err)
		}
	}
	g7 := byRNTI[7]
	got := g7.Subchannels(BW5MHz)
	want := []int{0, 1, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("UE 7 granted %v, want %v", got, want)
		}
	}
	// Transport format follows the worst granted sub-band.
	if g7.CQI != 4 {
		t.Fatalf("UE 7 CQI = %d, want the conservative 4", g7.CQI)
	}
	if byRNTI[3].RBGMask != 1<<5 {
		t.Fatalf("UE 3 mask = %b", byRNTI[3].RBGMask)
	}
	// Distinct HARQ processes.
	if grants[0].HARQProcess == grants[1].HARQProcess {
		t.Fatal("HARQ processes collide")
	}
}

func TestAppendGrantsEmpty(t *testing.T) {
	var scratch AllocScratch
	scratch.Reset(BW5MHz.Subchannels(), 0)
	if got := AppendGrants(nil, BW5MHz, &scratch, nil); len(got) != 0 {
		t.Fatalf("empty allocation produced %d grants", len(got))
	}
	// An unsized scratch (never Reset) must also yield no grants
	// rather than index out of range.
	var fresh AllocScratch
	if got := AppendGrants(nil, BW5MHz, &fresh, nil); len(got) != 0 {
		t.Fatalf("unsized scratch produced %d grants", len(got))
	}
}
