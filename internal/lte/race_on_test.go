//go:build race

package lte

// raceEnabled reports whether the race detector instruments this build;
// wall-clock performance assertions skip themselves when it does.
const raceEnabled = true
