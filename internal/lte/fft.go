package lte

import (
	"math"
	"math/bits"
	"sync"
)

// twiddleCache holds forward twiddle factors w_n^k = exp(-2*pi*i*k/n)
// for k < n/2, keyed by n. Smaller stages reuse the table with a
// stride. Inverse transforms conjugate on the fly.
var twiddleCache sync.Map // map[int][]complex128

func twiddles(n int) []complex128 {
	if v, ok := twiddleCache.Load(n); ok {
		return v.([]complex128)
	}
	tw := make([]complex128, n/2)
	for k := range tw {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		tw[k] = complex(c, s)
	}
	twiddleCache.Store(n, tw)
	return tw
}

// This file implements the discrete Fourier transforms the PRACH
// detector needs: an iterative radix-2 FFT for power-of-two lengths and
// Bluestein's chirp-z algorithm for arbitrary lengths (PRACH preambles
// are 839 samples long, a prime).

// FFT computes the in-order forward DFT of x. The input length must be
// a power of two; use DFT for arbitrary lengths. The input slice is not
// modified.
func FFT(x []complex128) []complex128 {
	return fftDir(x, false)
}

// IFFT computes the inverse DFT (with 1/N normalization) of x. The
// input length must be a power of two.
func IFFT(x []complex128) []complex128 {
	y := fftDir(x, true)
	n := complex(float64(len(y)), 0)
	for i := range y {
		y[i] /= n
	}
	return y
}

func fftDir(x []complex128, inverse bool) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		panic("lte: FFT length must be a power of two")
	}
	y := make([]complex128, n)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		y[bits.Reverse64(uint64(i))>>shift] = x[i]
	}
	// Iterative Cooley-Tukey butterflies with cached twiddles. The
	// table for n serves every stage: stage `size` uses stride n/size.
	tw := twiddles(n)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		stride := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := tw[k*stride]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				a := y[start+k]
				b := y[start+k+half] * w
				y[start+k] = a + b
				y[start+k+half] = a - b
			}
		}
	}
	return y
}

// DFT computes the forward DFT of x for any length, using Bluestein's
// algorithm on top of the radix-2 FFT. For power-of-two lengths it
// falls through to FFT directly.
func DFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		return FFT(x)
	}
	return bluestein(x, false)
}

// IDFT computes the inverse DFT (1/N normalized) for any length.
func IDFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		return IFFT(x)
	}
	y := bluestein(x, true)
	nc := complex(float64(n), 0)
	for i := range y {
		y[i] /= nc
	}
	return y
}

// bluestein converts a length-n DFT into a circular convolution of
// length m >= 2n-1 (m a power of two), which the radix-2 FFT handles.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign * i*pi*k^2/n). Use k^2 mod 2n to keep the
	// angle argument small and exact.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := sign * math.Pi * float64(kk) / float64(n)
		chirp[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	a := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
	}
	b := make([]complex128, m)
	b[0] = cmplxConj(chirp[0])
	for k := 1; k < n; k++ {
		c := cmplxConj(chirp[k])
		b[k] = c
		b[m-k] = c
	}
	fa := FFT(a)
	fb := FFT(b)
	for i := range fa {
		fa[i] *= fb[i]
	}
	conv := IFFT(fa)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = conv[k] * chirp[k]
	}
	return out
}

func cmplxConj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// DFTPlan precomputes the chirp sequences and reference spectra for
// repeated fixed-length transforms. For power-of-two lengths it
// delegates to the radix-2 FFT; otherwise it runs Bluestein with all
// per-call trigonometry and the kernel transform amortized away. The
// PRACH detector uses plans to stay far ahead of line rate.
type DFTPlan struct {
	n, m    int
	inverse bool
	chirp   []complex128 // nil for power-of-two lengths
	fb      []complex128 // FFT of the Bluestein kernel
}

// NewDFTPlan builds a plan for length-n transforms in the given
// direction.
func NewDFTPlan(n int, inverse bool) *DFTPlan {
	p := &DFTPlan{n: n, inverse: inverse}
	if n <= 0 || n&(n-1) == 0 {
		return p
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	p.m = m
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	p.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := sign * math.Pi * float64(kk) / float64(n)
		p.chirp[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	b := make([]complex128, m)
	b[0] = cmplxConj(p.chirp[0])
	for k := 1; k < n; k++ {
		c := cmplxConj(p.chirp[k])
		b[k] = c
		b[m-k] = c
	}
	p.fb = FFT(b)
	return p
}

// Transform applies the planned DFT to x (len(x) must equal the plan
// length) and returns a new slice.
func (p *DFTPlan) Transform(x []complex128) []complex128 {
	if len(x) != p.n {
		panic("lte: DFTPlan length mismatch")
	}
	if p.chirp == nil {
		if p.inverse {
			return IFFT(x)
		}
		return FFT(x)
	}
	a := make([]complex128, p.m)
	for k := 0; k < p.n; k++ {
		a[k] = x[k] * p.chirp[k]
	}
	fa := FFT(a)
	for i := range fa {
		fa[i] *= p.fb[i]
	}
	conv := IFFT(fa)
	out := make([]complex128, p.n)
	if p.inverse {
		nc := complex(float64(p.n), 0)
		for k := 0; k < p.n; k++ {
			out[k] = conv[k] * p.chirp[k] / nc
		}
	} else {
		for k := 0; k < p.n; k++ {
			out[k] = conv[k] * p.chirp[k]
		}
	}
	return out
}

// CircularCorrelate returns the circular cross-correlation of a against
// b (both length n): out[s] = sum_k a[k] * conj(b[k-s mod n]). It is
// computed in the frequency domain: IDFT(DFT(a) * conj(DFT(b))).
// A peak at index s means b appears in a with a cyclic shift of s.
func CircularCorrelate(a, b []complex128) []complex128 {
	if len(a) != len(b) {
		panic("lte: correlate length mismatch")
	}
	fa := DFT(a)
	fb := DFT(b)
	for i := range fa {
		fa[i] *= cmplxConj(fb[i])
	}
	return IDFT(fa)
}
