package lte

import (
	"math/rand"
	"testing"

	"cellfi/internal/phy"
)

func TestCQIReporterNoiseless(t *testing.T) {
	r := NewCQIReporter(0, nil)
	sinrs := []float64{-10, -6.7, 0.2, 10.3, 25}
	rep := r.Report(sinrs)
	want := []int{0, 1, 4, 9, 15}
	for i := range want {
		if rep.Subband[i] != want[i] {
			t.Errorf("subband %d CQI = %d, want %d", i, rep.Subband[i], want[i])
		}
	}
	if rep.Bits != CQIReportBits {
		t.Errorf("report bits = %d, want %d", rep.Bits, CQIReportBits)
	}
	// Wideband summarizes: must lie within the subband range.
	if rep.Wideband < 0 || rep.Wideband > 15 {
		t.Errorf("wideband CQI %d out of range", rep.Wideband)
	}
}

func TestCQIReporterWidebandDominatedByWeak(t *testing.T) {
	r := NewCQIReporter(0, nil)
	// One very bad subchannel drags the EESM wideband value well
	// below the best subband CQI.
	rep := r.Report([]float64{-20, 20, 20, 20})
	best := 0
	for _, c := range rep.Subband {
		if c > best {
			best = c
		}
	}
	if rep.Wideband >= best {
		t.Errorf("wideband %d not below best subband %d", rep.Wideband, best)
	}
}

func TestCQIReporterNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewCQIReporter(0.3, rng)
	diffs := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		rep := r.Report([]float64{10})
		truth := phy.LTECQIFromSINR(10)
		d := rep.Subband[0] - truth
		if d != 0 {
			diffs++
			if d < -1 || d > 1 {
				t.Fatalf("noise moved CQI by %d steps", d)
			}
		}
	}
	frac := float64(diffs) / trials
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("noise rate = %g, want about 0.3", frac)
	}
}

func TestCQIReporterNoiseClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := NewCQIReporter(1, rng) // always noisy
	for i := 0; i < 200; i++ {
		rep := r.Report([]float64{-20, 40})
		if rep.Subband[0] < 0 || rep.Subband[1] > phy.LTECQICount {
			t.Fatalf("noise escaped valid range: %v", rep.Subband)
		}
	}
}

func TestCQITrackerMaxWindow(t *testing.T) {
	tr := NewCQITracker(2, 3)
	add := func(a, b int) { tr.Add(CQIReport{Subband: []int{a, b}}) }
	add(5, 10)
	add(7, 9)
	if tr.Max(0) != 7 || tr.Max(1) != 10 {
		t.Fatalf("max = %d,%d want 7,10", tr.Max(0), tr.Max(1))
	}
	if tr.Samples() != 2 {
		t.Fatalf("samples = %d", tr.Samples())
	}
	// Window slides: the 5 and the 10 fall out after 3 more adds.
	add(3, 2)
	add(3, 2)
	add(3, 2)
	if tr.Max(0) != 3 || tr.Max(1) != 2 {
		t.Fatalf("stale maxima survived: %d,%d", tr.Max(0), tr.Max(1))
	}
	if tr.Samples() != 3 {
		t.Fatalf("samples = %d, want window size 3", tr.Samples())
	}
}

func TestCQITrackerEmpty(t *testing.T) {
	tr := NewCQITracker(4, 8)
	if tr.Max(2) != 0 || tr.Samples() != 0 {
		t.Fatal("empty tracker should report zero")
	}
}

func TestCQITrackerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched report should panic")
		}
	}()
	tr := NewCQITracker(3, 4)
	tr.Add(CQIReport{Subband: []int{1, 2}})
}

func TestNewCQITrackerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window should panic")
		}
	}()
	NewCQITracker(1, 0)
}
