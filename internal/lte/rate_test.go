package lte

import (
	"math"
	"testing"

	"cellfi/internal/phy"
)

func TestTransportBlockBits(t *testing.T) {
	if got := TransportBlockBits(0, 10); got != 0 {
		t.Errorf("CQI 0 carries %d bits, want 0", got)
	}
	if got := TransportBlockBits(5, 0); got != 0 {
		t.Errorf("0 RBs carry %d bits, want 0", got)
	}
	// CQI 15 over 2 RBs: 5.5547 * 2 * 126 = 1399 bits.
	want := int(phy.LTECQI(15).Efficiency * 2 * DataREPerRBPerSubframe)
	if got := TransportBlockBits(15, 2); got != want {
		t.Errorf("TBS(15, 2RB) = %d, want %d", got, want)
	}
	// Monotone in both arguments.
	for cqi := 2; cqi <= 15; cqi++ {
		if TransportBlockBits(cqi, 4) <= TransportBlockBits(cqi-1, 4) {
			t.Errorf("TBS not monotone in CQI at %d", cqi)
		}
	}
	if TransportBlockBits(8, 5) <= TransportBlockBits(8, 4) {
		t.Error("TBS not monotone in RBs")
	}
}

// The cell's PHY ceiling must land in the real-LTE ballpark: a 5 MHz
// TDD carrier peaks around 12-14 Mbps downlink (FDD would be ~18 Mbps).
func TestPeakRatePlausible(t *testing.T) {
	peak := PeakRateBps(BW5MHz, TDDConfig4)
	if peak < 10e6 || peak > 16e6 {
		t.Fatalf("5 MHz TDD peak = %.1f Mbps, want 10-16", peak/1e6)
	}
	peak20 := PeakRateBps(BW20MHz, TDDConfig4)
	if peak20 < 3.8*peak || peak20 > 4.2*peak {
		t.Fatalf("20 MHz peak should be ~4x the 5 MHz peak (got %.1f vs %.1f Mbps)",
			peak20/1e6, peak/1e6)
	}
}

// The paper's 1 Mbps per-user requirement is within a single carrier
// down to roughly CQI 4, and the lowest coding rates still deliver
// usable hundreds of kbps — the "1 Mbps at 85% of locations" regime.
func TestEdgeRateMeetsRequirement(t *testing.T) {
	rate := func(cqi int) float64 {
		bits := TransportBlockBits(cqi, BW5MHz.ResourceBlocks())
		return float64(bits) / SubframeDuration.Seconds() * TDDConfig4.DownlinkFraction()
	}
	if r := rate(4); r < 1e6 {
		t.Fatalf("CQI 4 full-carrier rate = %.2f Mbps, want >= 1", r/1e6)
	}
	if r := rate(3); r < 0.5e6 {
		t.Fatalf("CQI 3 full-carrier rate = %.2f Mbps, want >= 0.5", r/1e6)
	}
}

func TestSubchannelRateBps(t *testing.T) {
	// Sum of subchannel rates equals the full-carrier rate at the
	// same CQI (subchannels partition the carrier).
	var sum float64
	for sc := 0; sc < BW5MHz.Subchannels(); sc++ {
		sum += SubchannelRateBps(BW5MHz, TDDConfig4, sc, 10)
	}
	full := float64(TransportBlockBits(10, 25)) / SubframeDuration.Seconds() * TDDConfig4.DownlinkFraction()
	if math.Abs(sum-full)/full > 0.01 {
		t.Fatalf("subchannel rates sum to %g, full carrier %g", sum, full)
	}
}

func TestGoodputBitsPerSymbol(t *testing.T) {
	if GoodputBitsPerSymbol(0, 0) != 0 {
		t.Error("CQI 0 should carry nothing")
	}
	g := GoodputBitsPerSymbol(6, 0)
	want := phy.LTECQI(6).Efficiency
	if math.Abs(g-want) > 1e-12 {
		t.Errorf("goodput at BLER 0 = %g, want efficiency %g", g, want)
	}
	if got := GoodputBitsPerSymbol(6, 0.5); math.Abs(got-want/2) > 1e-12 {
		t.Errorf("goodput at BLER 0.5 = %g, want %g", got, want/2)
	}
	// The Figure 7 y-axis tops out around 1 bit/symbol for the mid
	// CQIs the outdoor walk actually achieves.
	if g := GoodputBitsPerSymbol(6, 0.1); g < 0.9 || g > 1.2 {
		t.Errorf("CQI 6 goodput = %g bit/symbol; Figure 7's scale expects ~1", g)
	}
}
