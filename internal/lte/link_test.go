package lte

import (
	"math"
	"testing"

	"cellfi/internal/geo"
	"cellfi/internal/propagation"
)

func testCell(id int, x, y float64) *Cell {
	return &Cell{
		ID:         id,
		Pos:        geo.Point{X: x, Y: y},
		TxPowerDBm: 30,
		Antenna:    propagation.Antenna{GainDBi: 6},
		BW:         BW5MHz,
		TDD:        TDDConfig4,
		Activity:   FullBuffer,
	}
}

func quietEnv(seed int64) *Environment {
	e := NewEnvironment(seed)
	e.Model.ShadowSigmaDB = 0
	e.Fading.Disabled = true
	return e
}

func TestActivityDutyFactors(t *testing.T) {
	if Off.DutyFactor() != 0 || FullBuffer.DutyFactor() != 1 {
		t.Fatal("off/full duty factors wrong")
	}
	d := SignallingOnly.DutyFactor()
	if d <= 0 || d >= 0.3 {
		t.Fatalf("signalling duty = %g, want small but nonzero", d)
	}
}

func TestPerRBPower(t *testing.T) {
	c := testCell(1, 0, 0)
	// 30 dBm over 25 RBs: about 16 dBm per RB.
	if got := c.PerRBPowerDBm(); math.Abs(got-(30-10*math.Log10(25))) > 1e-9 {
		t.Fatalf("per-RB power = %g", got)
	}
}

func TestTransmitsIn(t *testing.T) {
	c := testCell(1, 0, 0)
	if !c.TransmitsIn(5) {
		t.Fatal("nil mask should mean all subchannels")
	}
	c.ActiveSubchannels = map[int]bool{3: true}
	if c.TransmitsIn(5) || !c.TransmitsIn(3) {
		t.Fatal("mask not respected")
	}
	c.Activity = SignallingOnly
	if c.TransmitsIn(3) {
		t.Fatal("signalling-only cell should not transmit data")
	}
}

func TestDownlinkSINRNoInterference(t *testing.T) {
	e := quietEnv(1)
	serving := testCell(1, 0, 0)
	cl := &Client{ID: 100, Pos: geo.Point{X: 200, Y: 0}, TxPowerDBm: 20}
	sinr := e.DownlinkSINR(serving, nil, cl, 0, 0)
	// Budget check: per-RB 16 dBm + 6 dBi - PL(200m) vs RB noise.
	pl := e.Model.PathLossDB(200)
	want := serving.PerRBPowerDBm() + 6 - pl - propagation.NoiseDBm(RBBandwidthHz, 7)
	if math.Abs(sinr-want) > 1e-9 {
		t.Fatalf("SINR = %g, want %g", sinr, want)
	}
}

// Figure 7's contrast: signalling-only interference leaves the data
// SINR intact and costs at most ~20% goodput even when the interferer
// is much stronger than the signal, while full data interference
// collapses the SINR itself.
func TestInterferenceActivityContrast(t *testing.T) {
	e := quietEnv(2)
	serving := testCell(1, 0, 0)
	interferer := testCell(2, 600, 0)
	cl := &Client{ID: 100, Pos: geo.Point{X: 400, Y: 0}} // closer to the interferer
	ifs := []*Cell{interferer}

	interferer.Activity = Off
	offSINR := e.DownlinkSINR(serving, ifs, cl, 0, 0)
	offFactor := e.PuncturedGoodputFactor(serving, ifs, cl, 0, 0)

	interferer.Activity = SignallingOnly
	sigSINR := e.DownlinkSINR(serving, ifs, cl, 0, 0)
	sigFactor := e.PuncturedGoodputFactor(serving, ifs, cl, 0, 0)

	interferer.Activity = FullBuffer
	fullSINR := e.DownlinkSINR(serving, ifs, cl, 0, 0)

	if offFactor != 1 {
		t.Errorf("off interferer should not puncture (factor %g)", offFactor)
	}
	if sigSINR != offSINR {
		t.Errorf("signalling interference changed data SINR: %g vs %g", sigSINR, offSINR)
	}
	if sigFactor >= 1 || sigFactor < 0.8 {
		t.Errorf("signalling puncture factor = %g, want within 20%% of 1 (Figure 7b)", sigFactor)
	}
	if fullSINR >= sigSINR-5 {
		t.Errorf("full data interference should collapse SINR (sig=%g full=%g)", sigSINR, fullSINR)
	}
}

// A distant, weak signalling interferer must cost almost nothing: the
// kill probability fades with signal advantage.
func TestPunctureNegligibleForWeakInterferer(t *testing.T) {
	e := quietEnv(21)
	serving := testCell(1, 0, 0)
	interferer := testCell(2, 5000, 0)
	interferer.Activity = SignallingOnly
	cl := &Client{ID: 100, Pos: geo.Point{X: 100, Y: 0}}
	f := e.PuncturedGoodputFactor(serving, []*Cell{interferer}, cl, 0, 0)
	if f < 0.99 {
		t.Fatalf("weak interferer punctured %g of goodput", 1-f)
	}
}

func TestPunctureFactorFloor(t *testing.T) {
	e := quietEnv(22)
	serving := testCell(1, 0, 0)
	cl := &Client{ID: 100, Pos: geo.Point{X: 1200, Y: 0}}
	// Many overwhelming interferers: factor must floor at 0.4, not 0.
	var ifs []*Cell
	for i := 0; i < 8; i++ {
		ic := testCell(10+i, 1250, float64(i*10))
		ic.Activity = SignallingOnly
		ifs = append(ifs, ic)
	}
	f := e.PuncturedGoodputFactor(serving, ifs, cl, 0, 0)
	if f != 0.4 {
		t.Fatalf("puncture floor = %g, want 0.4", f)
	}
}

func TestDownlinkSINRSubchannelMask(t *testing.T) {
	e := quietEnv(3)
	serving := testCell(1, 0, 0)
	interferer := testCell(2, 500, 0)
	interferer.ActiveSubchannels = map[int]bool{0: true}
	cl := &Client{ID: 100, Pos: geo.Point{X: 350, Y: 0}}
	ifs := []*Cell{interferer}
	hit := e.DownlinkSINR(serving, ifs, cl, 0, 0)
	clear := e.DownlinkSINR(serving, ifs, cl, 7, 0)
	if clear <= hit {
		t.Fatalf("masked subchannel not cleaner: hit=%g clear=%g", hit, clear)
	}
	// This is the whole point of CellFi's interference management: a
	// subchannel the neighbour vacates recovers (nearly) the
	// interference-free SINR, control overhead aside.
	interferer.Activity = Off
	pristine := e.DownlinkSINR(serving, ifs, cl, 7, 0)
	if clear != pristine {
		t.Fatalf("vacated subchannel data SINR %g != pristine %g", clear, pristine)
	}
}

func TestServingCellExcludedFromInterference(t *testing.T) {
	e := quietEnv(4)
	serving := testCell(1, 0, 0)
	cl := &Client{ID: 100, Pos: geo.Point{X: 300, Y: 0}}
	with := e.DownlinkSINR(serving, []*Cell{serving}, cl, 0, 0)
	without := e.DownlinkSINR(serving, nil, cl, 0, 0)
	if with != without {
		t.Fatal("serving cell counted as its own interferer")
	}
}

func TestUplinkOFDMAAdvantage(t *testing.T) {
	// Figure 1c: concentrating uplink power in one RB instead of the
	// full carrier buys 10*log10(25) ~ 14 dB.
	e := quietEnv(5)
	serving := testCell(1, 0, 0)
	cl := &Client{ID: 100, Pos: geo.Point{X: 1000, Y: 0}, TxPowerDBm: 20}
	one := e.UplinkSINR(cl, serving, 1, 0, 0)
	full := e.UplinkSINR(cl, serving, 25, 0, 0)
	if gap := one - full; math.Abs(gap-10*math.Log10(25)) > 0.2 {
		t.Fatalf("single-RB advantage = %g dB, want ~14", gap)
	}
}

func TestUplinkValidation(t *testing.T) {
	e := quietEnv(6)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-RB uplink should panic")
		}
	}()
	e.UplinkSINR(&Client{}, testCell(1, 0, 0), 0, 0, 0)
}

func TestDownlinkRSSIConsistent(t *testing.T) {
	e := quietEnv(7)
	c := testCell(1, 0, 0)
	cl := &Client{ID: 100, Pos: geo.Point{X: 250, Y: 0}}
	rssi := e.DownlinkRSSI(c, cl, 0)
	perRB := e.rxPowerDBm(c, cl.Pos, cl.ID, 0, 0)
	if math.Abs(rssi-(perRB+10*math.Log10(25))) > 1e-9 {
		t.Fatalf("RSSI = %g inconsistent with per-RB %g", rssi, perRB)
	}
}

// Range calibration at link level: a 36 dBm EIRP cell holds a decodable
// downlink at 1.3 km and loses it beyond (Section 3.1), in the median
// channel.
func TestLinkRangeCalibration(t *testing.T) {
	e := quietEnv(8)
	c := testCell(1, 0, 0)
	if snr := e.SNRAtDistance(c, 1300); snr < -3 {
		t.Errorf("median SNR at 1.3 km = %g dB; link should be alive", snr)
	}
	if snr := e.SNRAtDistance(c, 2500); snr > -3 {
		t.Errorf("median SNR at 2.5 km = %g dB; link should be dead", snr)
	}
}

func TestFadingVariesSINROverTime(t *testing.T) {
	e := NewEnvironment(9)
	e.Model.ShadowSigmaDB = 0
	c := testCell(1, 0, 0)
	cl := &Client{ID: 100, Pos: geo.Point{X: 600, Y: 0}}
	a := e.DownlinkSINR(c, nil, cl, 0, 0)
	b := e.DownlinkSINR(c, nil, cl, 0, 500) // different coherence block
	if a == b {
		t.Fatal("fading produced identical SINR across blocks")
	}
	if e.DownlinkSINR(c, nil, cl, 0, 50) != a {
		t.Fatal("SINR changed within a coherence block")
	}
}

func BenchmarkDownlinkSINR(b *testing.B) {
	e := NewEnvironment(1)
	serving := testCell(1, 0, 0)
	ifs := []*Cell{testCell(2, 700, 100), testCell(3, -500, 300), testCell(4, 200, -900)}
	cl := &Client{ID: 100, Pos: geo.Point{X: 400, Y: 100}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.DownlinkSINR(serving, ifs, cl, i%13, int64(i))
	}
}
