package lte

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(N^2) reference implementation tests compare against.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var acc complex128
		for t := 0; t < n; t++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(t) / float64(n)
			acc += x[t] * cmplx.Exp(complex(0, ang))
		}
		if inverse {
			acc /= complex(float64(n), 0)
		}
		out[k] = acc
	}
	return out
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestFFTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 256, 1024} {
		x := randComplex(rng, n)
		if e := maxErr(FFT(x), naiveDFT(x, false)); e > 1e-8*float64(n) {
			t.Errorf("FFT n=%d max error %g", n, e)
		}
	}
}

func TestFFTPanicsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FFT(len 3) should panic")
		}
	}()
	FFT(make([]complex128, 3))
}

func TestDFTArbitraryLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 5, 7, 12, 100, 839} {
		x := randComplex(rng, n)
		if e := maxErr(DFT(x), naiveDFT(x, false)); e > 1e-7*float64(n) {
			t.Errorf("DFT n=%d max error %g", n, e)
		}
	}
}

func TestIDFTInverts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{8, 13, 839, 1024} {
		x := randComplex(rng, n)
		if e := maxErr(IDFT(DFT(x)), x); e > 1e-8*float64(n) {
			t.Errorf("IDFT(DFT) n=%d round-trip error %g", n, e)
		}
	}
}

func TestDFTKnownValues(t *testing.T) {
	// DFT of an impulse is all-ones.
	x := make([]complex128, 8)
	x[0] = 1
	for _, v := range FFT(x) {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse DFT value %v, want 1", v)
		}
	}
	// DFT of all-ones is an impulse of height N.
	for i := range x {
		x[i] = 1
	}
	y := FFT(x)
	if cmplx.Abs(y[0]-8) > 1e-12 {
		t.Fatalf("DC bin = %v, want 8", y[0])
	}
	for _, v := range y[1:] {
		if cmplx.Abs(v) > 1e-12 {
			t.Fatalf("non-DC bin %v, want 0", v)
		}
	}
}

func TestParsevalEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{64, 839} {
		x := randComplex(rng, n)
		var et, ef float64
		for _, v := range x {
			et += real(v)*real(v) + imag(v)*imag(v)
		}
		for _, v := range DFT(x) {
			ef += real(v)*real(v) + imag(v)*imag(v)
		}
		ef /= float64(n)
		if math.Abs(et-ef)/et > 1e-10 {
			t.Errorf("Parseval violated at n=%d: time %g freq %g", n, et, ef)
		}
	}
}

func TestCircularCorrelateFindsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 101
	base := randComplex(rng, n)
	for _, shift := range []int{0, 1, 17, 100} {
		shifted := make([]complex128, n)
		for k := 0; k < n; k++ {
			shifted[k] = base[(k+shift)%n]
		}
		corr := CircularCorrelate(shifted, base)
		best, bestIdx := 0.0, -1
		for i, c := range corr {
			if a := cmplx.Abs(c); a > best {
				best, bestIdx = a, i
			}
		}
		if got := (n - bestIdx) % n; got != shift {
			t.Errorf("shift %d detected as %d", shift, got)
		}
	}
}

func TestCircularCorrelateLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	CircularCorrelate(make([]complex128, 4), make([]complex128, 8))
}

func TestEmptyTransforms(t *testing.T) {
	if DFT(nil) != nil || IDFT(nil) != nil || FFT(nil) != nil {
		t.Fatal("empty input should return nil")
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := randComplex(rand.New(rand.NewSource(1)), 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FFT(x)
	}
}

func BenchmarkDFT839Bluestein(b *testing.B) {
	x := randComplex(rand.New(rand.NewSource(1)), 839)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DFT(x)
	}
}
