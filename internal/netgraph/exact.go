package netgraph

// Exact multi-colouring by backtracking, for small graphs. The
// centralized oracle uses greedy colouring, which is fast but not
// optimal; this exact solver provides a ground-truth reference so
// tests can bound how much the greedy heuristic leaves on the table.

// ExactColorable reports whether the demands can be met with m
// subchannels, searching exhaustively with pruning. Exponential in the
// worst case: intended for n <= ~12 in tests and validation runs.
func (g *Graph) ExactColorable(m int) (Assignment, bool) {
	n := g.n
	// Order vertices by descending neighbourhood demand (most
	// constrained first) for effective pruning.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && g.NeighborhoodDemand(order[j]) > g.NeighborhoodDemand(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	assign := make([][]int, n)
	// blocked[v] tracks, per vertex, how many of its neighbours hold
	// each subchannel.
	blocked := make([][]int, n)
	for i := range blocked {
		blocked[i] = make([]int, m)
	}

	var place func(idx int) bool
	place = func(idx int) bool {
		if idx == n {
			return true
		}
		v := order[idx]
		d := g.Demand[v]
		if d == 0 {
			return place(idx + 1)
		}
		// Candidate subchannels: not held by any neighbour.
		var free []int
		for c := 0; c < m; c++ {
			if blocked[v][c] == 0 {
				free = append(free, c)
			}
		}
		if len(free) < d {
			return false
		}
		// Enumerate d-subsets of free in lexicographic order.
		subset := make([]int, d)
		var choose func(start, k int) bool
		choose = func(start, k int) bool {
			if k == d {
				assign[v] = append([]int(nil), subset...)
				for _, c := range subset {
					for _, u := range g.Neighbors(v) {
						blocked[u][c]++
					}
				}
				if place(idx + 1) {
					return true
				}
				for _, c := range subset {
					for _, u := range g.Neighbors(v) {
						blocked[u][c]--
					}
				}
				assign[v] = nil
				return false
			}
			// Prune: not enough candidates left.
			for i := start; i <= len(free)-(d-k); i++ {
				subset[k] = free[i]
				if choose(i+1, k+1) {
					return true
				}
			}
			return false
		}
		return choose(0, 0)
	}

	if !place(0) {
		return nil, false
	}
	out := make(Assignment, n)
	for v := range out {
		out[v] = assign[v]
		if out[v] == nil {
			out[v] = []int{}
		}
	}
	return out, true
}

// MinSubchannels returns the smallest m for which the demands are
// exactly satisfiable — the multi-chromatic number of the demand
// graph. Exponential; small graphs only.
func (g *Graph) MinSubchannels(maxM int) (int, bool) {
	// Lower bound: no vertex can hold more subchannels than exist,
	// and two adjacent vertices need the sum of their demands.
	lo := 0
	for v := 0; v < g.n; v++ {
		if g.Demand[v] > lo {
			lo = g.Demand[v]
		}
		for _, u := range g.Neighbors(v) {
			if s := g.Demand[v] + g.Demand[u]; s > lo {
				lo = s
			}
		}
	}
	for m := lo; m <= maxM; m++ {
		if _, ok := g.ExactColorable(m); ok {
			return m, true
		}
	}
	return 0, false
}
