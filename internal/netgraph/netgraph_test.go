package netgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func line(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestBasicsAndSelfLoop(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 1) // ignored
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
	if g.HasEdge(1, 1) {
		t.Fatal("self-loop recorded")
	}
	if g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(1), g.Degree(2))
	}
	if got := g.Neighbors(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Neighbors(0) = %v", got)
	}
}

func TestNeighborhoodDemand(t *testing.T) {
	g := line(4)
	g.Demand = []int{1, 2, 3, 4}
	// Vertex 1 sees itself + vertices 0 and 2: 2+1+3 = 6.
	if got := g.NeighborhoodDemand(1); got != 6 {
		t.Fatalf("NeighborhoodDemand(1) = %d, want 6", got)
	}
	if got := g.NeighborhoodDemand(3); got != 7 {
		t.Fatalf("NeighborhoodDemand(3) = %d, want 7", got)
	}
	if got := g.MaxNeighborhoodDemand(); got != 9 { // vertex 2: 2+3+4
		t.Fatalf("MaxNeighborhoodDemand = %d, want 9", got)
	}
}

func TestGamma(t *testing.T) {
	g := line(3)
	g.Demand = []int{4, 4, 4}
	// Worst neighbourhood is vertex 1 with 12 demand; with M=16,
	// gamma = 1 - 12/16 = 0.25.
	if got := g.Gamma(16); got != 0.25 {
		t.Fatalf("Gamma = %g, want 0.25", got)
	}
	// Infeasible: gamma <= 0.
	if got := g.Gamma(12); got > 0 {
		t.Fatalf("Gamma at the boundary = %g, want 0", got)
	}
}

func TestGreedyColorLine(t *testing.T) {
	g := line(5)
	g.Demand = []int{3, 3, 3, 3, 3}
	// A line needs at most demand(v)+demands of two neighbours = 9.
	a, ok := g.GreedyColor(9)
	if !ok {
		t.Fatal("greedy failed on a feasible line")
	}
	if err := g.Valid(a, 9); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyColorClique(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
		}
	}
	g.Demand = []int{3, 3, 3, 4}
	a, ok := g.GreedyColor(13)
	if !ok {
		t.Fatal("greedy failed on exactly-feasible clique")
	}
	if err := g.Valid(a, 13); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.GreedyColor(12); ok {
		t.Fatal("greedy claimed success with too few subchannels on a clique")
	}
}

func TestValidCatchesViolations(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.Demand = []int{1, 1}
	cases := []struct {
		name string
		a    Assignment
	}{
		{"conflict", Assignment{{0}, {0}}},
		{"short", Assignment{{}, {0}}},
		{"out-of-range", Assignment{{5}, {0}}},
		{"duplicate", Assignment{{0, 0}, {1}}},
		{"wrong-len", Assignment{{0}}},
	}
	for _, c := range cases {
		if err := g.Valid(c.a, 2); err == nil {
			t.Errorf("%s: Valid accepted %v", c.name, c.a)
		}
	}
	if err := g.Valid(Assignment{{0}, {1}}, 2); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
}

// Property: on random graphs satisfying the Demand Assumption with
// gamma > 0, greedy colouring always succeeds and validates. (Greedy
// multi-colouring needs only neighbourhood demand <= M, which gamma > 0
// guarantees.)
func TestQuickGreedyFeasible(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%10
		m := 13
		if mRaw%2 == 0 {
			m = 25
		}
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(i, j)
				}
			}
		}
		// Assign demands that respect the assumption: scale down
		// until every neighbourhood fits with slack.
		for v := 0; v < n; v++ {
			g.Demand[v] = 1 + rng.Intn(3)
		}
		for v := 0; v < n; v++ {
			for g.NeighborhoodDemand(v) > m-1 {
				// Shrink the largest demand in this neighbourhood.
				maxU, maxD := v, g.Demand[v]
				for _, u := range g.Neighbors(v) {
					if g.Demand[u] > maxD {
						maxU, maxD = u, g.Demand[u]
					}
				}
				if g.Demand[maxU] == 0 {
					break
				}
				g.Demand[maxU]--
			}
		}
		if g.Gamma(m) <= 0 {
			return true // shrinking degenerated; vacuous case
		}
		a, ok := g.GreedyColor(m)
		return ok && g.Valid(a, m) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGreedyColor(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := New(14)
	for i := 0; i < 14; i++ {
		for j := i + 1; j < 14; j++ {
			if rng.Float64() < 0.4 {
				g.AddEdge(i, j)
			}
		}
	}
	for i := range g.Demand {
		g.Demand[i] = 1 + rng.Intn(2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.GreedyColor(13)
	}
}

func TestExactColorableSimple(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.Demand = []int{2, 2, 2}
	// A path needs max adjacent-pair sum = 4.
	if _, ok := g.ExactColorable(3); ok {
		t.Fatal("3 subchannels should not satisfy a 2-2-2 path")
	}
	a, ok := g.ExactColorable(4)
	if !ok {
		t.Fatal("4 subchannels should satisfy a 2-2-2 path")
	}
	if err := g.Valid(a, 4); err != nil {
		t.Fatal(err)
	}
	if m, ok := g.MinSubchannels(13); !ok || m != 4 {
		t.Fatalf("MinSubchannels = %d (%v), want 4", m, ok)
	}
}

func TestExactColorableClique(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
		}
	}
	g.Demand = []int{3, 3, 3, 4}
	if m, ok := g.MinSubchannels(20); !ok || m != 13 {
		t.Fatalf("clique needs sum of demands: got %d (%v), want 13", m, ok)
	}
}

// Greedy against the exact optimum on random small graphs: greedy
// multi-colouring may need more subchannels, but whenever greedy
// succeeds the exact solver must too, and greedy's requirement should
// stay within 2x of optimal on these instances.
func TestGreedyVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(5)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(i, j)
				}
			}
		}
		for v := 0; v < n; v++ {
			g.Demand[v] = 1 + rng.Intn(3)
		}
		opt, ok := g.MinSubchannels(40)
		if !ok {
			t.Fatal("exact solver failed within 40 subchannels")
		}
		// Find greedy's requirement.
		greedyM := -1
		for m := opt; m <= 40; m++ {
			if a, ok := g.GreedyColor(m); ok {
				if err := g.Valid(a, m); err != nil {
					t.Fatal(err)
				}
				greedyM = m
				break
			}
		}
		if greedyM < 0 {
			t.Fatal("greedy never succeeded")
		}
		if greedyM < opt {
			t.Fatalf("greedy beat the optimum?! %d < %d", greedyM, opt)
		}
		if greedyM > 2*opt {
			t.Fatalf("greedy needs %d vs optimal %d", greedyM, opt)
		}
	}
}
