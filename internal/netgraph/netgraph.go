// Package netgraph models the interference relationships CellFi's
// analysis is phrased in (Section 5.5): an undirected conflict graph
// whose vertices are access points, with an edge wherever one AP can
// interfere with the other's clients. It provides neighbourhood demand
// sums (the Demand Assumption's gamma), greedy weighted colouring used
// by the centralized oracle, and feasibility checks used by tests.
package netgraph

import "fmt"

// Graph is an undirected conflict graph over vertices 0..N-1, each with
// an integer subchannel demand.
type Graph struct {
	n      int
	adj    [][]bool
	Demand []int
}

// New returns an edgeless graph with n vertices and zero demands.
func New(n int) *Graph {
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	return &Graph{n: n, adj: adj, Demand: make([]int, n)}
}

// Len returns the number of vertices.
func (g *Graph) Len() int { return g.n }

// AddEdge connects u and v (self-loops are ignored).
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// HasEdge reports whether u and v conflict.
func (g *Graph) HasEdge(u, v int) bool { return g.adj[u][v] }

// Neighbors returns the vertices adjacent to v.
func (g *Graph) Neighbors(v int) []int {
	var out []int
	for u := 0; u < g.n; u++ {
		if g.adj[v][u] {
			out = append(out, u)
		}
	}
	return out
}

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int {
	d := 0
	for u := 0; u < g.n; u++ {
		if g.adj[v][u] {
			d++
		}
	}
	return d
}

// NeighborhoodDemand returns demand(v) plus the demands of v's
// neighbours — the left side of the paper's Demand Assumption.
func (g *Graph) NeighborhoodDemand(v int) int {
	sum := g.Demand[v]
	for u := 0; u < g.n; u++ {
		if g.adj[v][u] {
			sum += g.Demand[u]
		}
	}
	return sum
}

// Gamma returns the largest 1-gamma slack factor consistent with the
// Demand Assumption for M subchannels:
// for all v, sum_{u in N(v) union {v}} demand(u) <= (1-gamma)*M.
// It returns the tightest gamma over all vertices; a non-positive value
// means the assumption is violated.
func (g *Graph) Gamma(m int) float64 {
	gamma := 1.0
	for v := 0; v < g.n; v++ {
		got := 1 - float64(g.NeighborhoodDemand(v))/float64(m)
		if got < gamma {
			gamma = got
		}
	}
	return gamma
}

// Assignment maps each vertex to its set of subchannels.
type Assignment [][]int

// Valid checks that the assignment satisfies demands without conflicts:
// every vertex holds exactly its demand, all within 0..m-1, without
// duplicates, and no two adjacent vertices share a subchannel.
func (g *Graph) Valid(a Assignment, m int) error {
	if len(a) != g.n {
		return fmt.Errorf("netgraph: assignment covers %d of %d vertices", len(a), g.n)
	}
	for v := 0; v < g.n; v++ {
		if len(a[v]) != g.Demand[v] {
			return fmt.Errorf("netgraph: vertex %d holds %d subchannels, demand %d", v, len(a[v]), g.Demand[v])
		}
		seen := map[int]bool{}
		for _, c := range a[v] {
			if c < 0 || c >= m {
				return fmt.Errorf("netgraph: vertex %d uses invalid subchannel %d", v, c)
			}
			if seen[c] {
				return fmt.Errorf("netgraph: vertex %d holds subchannel %d twice", v, c)
			}
			seen[c] = true
		}
		for u := v + 1; u < g.n; u++ {
			if !g.adj[v][u] {
				continue
			}
			for _, c := range a[u] {
				if seen[c] {
					return fmt.Errorf("netgraph: adjacent vertices %d and %d share subchannel %d", v, u, c)
				}
			}
		}
	}
	return nil
}

// GreedyColor produces a conflict-free multi-colouring meeting each
// vertex's demand if one exists greedily: vertices in descending
// neighbourhood-demand order take their lowest-indexed free
// subchannels. Returns the assignment and whether all demands were met
// within m subchannels.
func (g *Graph) GreedyColor(m int) (Assignment, bool) {
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	// Descending neighbourhood demand: the most constrained first.
	for i := 1; i < g.n; i++ {
		for j := i; j > 0 && g.NeighborhoodDemand(order[j]) > g.NeighborhoodDemand(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	a := make(Assignment, g.n)
	used := make([]map[int]bool, g.n) // per-vertex blocked subchannels
	for i := range used {
		used[i] = map[int]bool{}
	}
	ok := true
	for _, v := range order {
		for c := 0; c < m && len(a[v]) < g.Demand[v]; c++ {
			if used[v][c] {
				continue
			}
			a[v] = append(a[v], c)
			for u := 0; u < g.n; u++ {
				if g.adj[v][u] {
					used[u][c] = true
				}
			}
		}
		if len(a[v]) < g.Demand[v] {
			ok = false
		}
	}
	return a, ok
}

// MaxNeighborhoodDemand returns the largest neighbourhood demand sum —
// the colouring lower bound the oracle compares against.
func (g *Graph) MaxNeighborhoodDemand() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.NeighborhoodDemand(v); d > max {
			max = d
		}
	}
	return max
}
