package experiments

import (
	"cellfi/internal/core"
	"cellfi/internal/lte"
	"cellfi/internal/netsim"
	"cellfi/internal/runner"
	"cellfi/internal/stats"
	"cellfi/internal/topo"
)

func init() {
	register("hybrid", HybridExtension)
	register("hopping", HoppingBaseline)
	register("uplink", UplinkExtension)
	register("aggregation", AggregationExtension)
	register("mobility", MobilityExtension)
}

// schemeSweep runs several schemes over common topologies and returns
// per-scheme client throughputs plus hop counts. Trials fan out as
// fleet legs; each leg runs every scheme on its shared topology.
func schemeSweep(campaign string, schemes []netsim.Scheme, seed int64, trials, epochs, aps, clients int) (map[netsim.Scheme][]float64, map[netsim.Scheme]int) {
	type sweepTrial struct {
		th   map[netsim.Scheme][]float64
		hops map[netsim.Scheme]int
	}
	th := map[netsim.Scheme][]float64{}
	hops := map[netsim.Scheme]int{}
	for _, r := range trialFleet(campaign, trials,
		func(tr int) int64 { return seed + int64(tr) },
		func(c *runner.Ctx, tr int) sweepTrial {
			tp := topo.Generate(topo.Paper(aps, clients), seed+int64(tr)*3571)
			out := sweepTrial{th: map[netsim.Scheme][]float64{}, hops: map[netsim.Scheme]int{}}
			for _, s := range schemes {
				n := netsim.New(tp, netsim.DefaultConfig(s, c.Seed()))
				out.th[s] = n.Run(epochs)
				out.hops[s] = n.Hops
				addSteps(c, epochs)
			}
			return out
		}) {
		for _, s := range schemes {
			th[s] = append(th[s], r.th[s]...)
			hops[s] += r.hops[s]
		}
	}
	return th, hops
}

// HybridExtension evaluates the Section 7 proposal: centralized
// coordination inside each provider, CellFi's distributed protocol
// across providers — against plain CellFi and the full oracle.
func HybridExtension(seed int64, quick bool) Result {
	trials, epochs := 4, 25
	if quick {
		trials, epochs = 1, 10
	}
	schemes := []netsim.Scheme{netsim.SchemeCellFi, netsim.SchemeHybrid, netsim.SchemeOracle}
	th, hops := schemeSweep("hybrid", schemes, seed, trials, epochs, 10, 6)

	t := &stats.Table{
		Title:   "Extension (Section 7): per-provider centralized + cross-provider distributed",
		Headers: []string{"Metric", "CellFi", "Hybrid (2 providers)", "Oracle"},
	}
	row := func(name string, f func(c *stats.CDF) string) {
		t.AddRow(name,
			f(stats.NewCDF(th[netsim.SchemeCellFi])),
			f(stats.NewCDF(th[netsim.SchemeHybrid])),
			f(stats.NewCDF(th[netsim.SchemeOracle])))
	}
	row("Median (Mbps)", func(c *stats.CDF) string { return stats.Fmt(c.Median()) })
	row("Mean (Mbps)", func(c *stats.CDF) string { return stats.Fmt(c.Mean()) })
	row("Starved (%)", func(c *stats.CDF) string {
		return stats.Fmt(c.FractionBelow(StarveThresholdMbps) * 100)
	})
	t.AddRow("Distributed hops",
		stats.Fmt(float64(hops[netsim.SchemeCellFi])),
		stats.Fmt(float64(hops[netsim.SchemeHybrid])),
		"-")

	cf := stats.NewCDF(th[netsim.SchemeCellFi])
	hy := stats.NewCDF(th[netsim.SchemeHybrid])
	return Result{
		ID:     "hybrid",
		Title:  "Extension: hybrid control plane (Section 7)",
		Tables: []*stats.Table{t},
		Series: []stats.Series{
			cdfSeries("hybrid: CellFi throughput CDF (Mbps)", th[netsim.SchemeCellFi], 41),
			cdfSeries("hybrid: hybrid throughput CDF (Mbps)", th[netsim.SchemeHybrid], 41),
			cdfSeries("hybrid: oracle throughput CDF (Mbps)", th[netsim.SchemeOracle], 41),
		},
		Notes: []string{
			note("hybrid starves %.1f%% vs CellFi's %.1f%% — confirming the paper's speculation that intra-provider coordination 'could further improve performance'",
				hy.FractionBelow(StarveThresholdMbps)*100, cf.FractionBelow(StarveThresholdMbps)*100),
			note("the distributed layer is untouched; each operator only deconflicts its own cells over backhaul"),
		},
	}
}

// HoppingBaseline ablates CellFi's exponential-bucket protocol against
// memoryless random re-hopping with identical sensing — the Markovian-
// scheme family (IQ-hopping [23]) CellFi adapts.
func HoppingBaseline(seed int64, quick bool) Result {
	trials, epochs := 4, 25
	if quick {
		trials, epochs = 1, 10
	}
	schemes := []netsim.Scheme{netsim.SchemeCellFi, netsim.SchemeRandomHop}
	th, hops := schemeSweep("hopping", schemes, seed, trials, epochs, 10, 6)

	cf := stats.NewCDF(th[netsim.SchemeCellFi])
	rh := stats.NewCDF(th[netsim.SchemeRandomHop])
	t := &stats.Table{
		Title:   "Ablation: exponential buckets vs memoryless random hopping",
		Headers: []string{"Metric", "CellFi (buckets)", "Random hop"},
	}
	t.AddRow("Median (Mbps)", stats.Fmt(cf.Median()), stats.Fmt(rh.Median()))
	t.AddRow("Starved (%)", stats.Fmt(cf.FractionBelow(StarveThresholdMbps)*100),
		stats.Fmt(rh.FractionBelow(StarveThresholdMbps)*100))
	t.AddRow("Total hops", stats.Fmt(float64(hops[netsim.SchemeCellFi])),
		stats.Fmt(float64(hops[netsim.SchemeRandomHop])))

	return Result{
		ID:     "hopping",
		Title:  "Ablation: the bucket protocol vs naive hopping",
		Tables: []*stats.Table{t},
		Notes: []string{
			note("buckets hop %.1fx less than memoryless re-hopping (%d vs %d) — the hysteresis that lets reservations converge",
				float64(hops[netsim.SchemeRandomHop])/maxf(float64(hops[netsim.SchemeCellFi]), 1),
				hops[netsim.SchemeCellFi], hops[netsim.SchemeRandomHop]),
		},
	}
}

// UplinkExtension evaluates the Section 5 remark that "the uplink can
// be managed similarly": uplink throughput over the same TDD
// reservations, CellFi vs unmanaged LTE.
func UplinkExtension(seed int64, quick bool) Result {
	trials, epochs := 4, 20
	if quick {
		trials, epochs = 1, 10
	}
	ulSchemes := []netsim.Scheme{netsim.SchemeLTE, netsim.SchemeCellFi}
	th := map[netsim.Scheme][]float64{}
	for _, r := range trialFleet("uplink", trials,
		func(tr int) int64 { return seed + int64(tr) },
		func(c *runner.Ctx, tr int) map[netsim.Scheme][]float64 {
			tp := topo.Generate(topo.Paper(10, 6), seed+int64(tr)*4219)
			out := map[netsim.Scheme][]float64{}
			for _, s := range ulSchemes {
				n := netsim.New(tp, netsim.DefaultConfig(s, c.Seed()))
				out[s] = n.UplinkThroughputs(epochs)
				addSteps(c, epochs)
			}
			return out
		}) {
		for _, s := range ulSchemes {
			th[s] = append(th[s], r[s]...)
		}
	}
	lteCDF := stats.NewCDF(th[netsim.SchemeLTE])
	cfCDF := stats.NewCDF(th[netsim.SchemeCellFi])
	t := &stats.Table{
		Title:   "Extension (Section 5): uplink over the same reservations",
		Headers: []string{"Metric", "LTE uplink", "CellFi uplink"},
	}
	t.AddRow("Median (Mbps)", stats.Fmt(lteCDF.Median()), stats.Fmt(cfCDF.Median()))
	t.AddRow("Starved (< 10 kbps)", stats.Fmt(lteCDF.FractionBelow(0.01)*100)+"%",
		stats.Fmt(cfCDF.FractionBelow(0.01)*100)+"%")
	return Result{
		ID:     "uplink",
		Title:  "Extension: uplink interference management",
		Tables: []*stats.Table{t},
		Series: []stats.Series{
			cdfSeries("uplink: LTE uplink throughput CDF (Mbps)", th[netsim.SchemeLTE], 41),
			cdfSeries("uplink: CellFi uplink throughput CDF (Mbps)", th[netsim.SchemeCellFi], 41),
		},
		Notes: []string{
			note("the TDD reservations protect PUSCH too: CellFi's uplink starves %.1f%% vs LTE's %.1f%%",
				cfCDF.FractionBelow(0.01)*100, lteCDF.FractionBelow(0.01)*100),
		},
	}
}

// AggregationExtension explores the Section 7 future-work item of
// channel aggregation: the same deployment run on 5, 10 and 20 MHz
// carriers (1, 2 and 3-4 aggregated TV channels). Subchannel counts
// and the IM protocol scale automatically (13 / 17 / 25 subchannels).
func AggregationExtension(seed int64, quick bool) Result {
	trials, epochs := 3, 20
	if quick {
		trials, epochs = 1, 10
	}
	bws := []lte.Bandwidth{lte.BW5MHz, lte.BW10MHz, lte.BW20MHz}
	t := &stats.Table{
		Title:   "Extension (Section 7): carrier width via TV-channel aggregation",
		Headers: []string{"Carrier", "Subchannels", "TV channels (EU)", "Median Mbps", "Starved %"},
	}
	// One leg per (bandwidth, trial); aggregate bandwidth-major.
	var aggLegs []leg[[]float64]
	for _, bw := range bws {
		bw := bw
		for tr := 0; tr < trials; tr++ {
			tr := tr
			aggLegs = append(aggLegs, leg[[]float64]{
				label: note("aggregation/bw=%gMHz/trial=%d", float64(bw), tr),
				seed:  seed + int64(tr),
				run: func(c *runner.Ctx) []float64 {
					tp := topo.Generate(topo.Paper(10, 6), seed+int64(tr)*6113)
					cfg := netsim.DefaultConfig(netsim.SchemeCellFi, c.Seed())
					cfg.BW = bw
					n := netsim.New(tp, cfg)
					th := n.Run(epochs)
					addSteps(c, epochs)
					return th
				},
			})
		}
	}
	aggRuns := fleet("aggregation", aggLegs)
	medians := map[lte.Bandwidth]float64{}
	for bi, bw := range bws {
		var th []float64
		for tr := 0; tr < trials; tr++ {
			th = append(th, aggRuns[bi*trials+tr]...)
		}
		c := stats.NewCDF(th)
		medians[bw] = c.Median()
		t.AddRow(
			stats.Fmt(float64(bw))+" MHz",
			stats.Fmt(float64(bw.Subchannels())),
			stats.Fmt(float64(core.RequiredTVChannels(bw, 8e6))),
			stats.Fmt(c.Median()),
			stats.Fmt(c.FractionBelow(StarveThresholdMbps)*100))
	}
	return Result{
		ID:     "aggregation",
		Title:  "Extension: channel aggregation (Section 7)",
		Tables: []*stats.Table{t},
		Notes: []string{
			note("median client throughput scales %.1fx from one TV channel to an aggregated 20 MHz carrier; the IM protocol needs no changes, only more subchannels",
				medians[lte.BW20MHz]/maxf(medians[lte.BW5MHz], 1e-9)),
			note("wider carriers need runs of contiguous free TV channels, which the channel selector already demands (RequiredTVChannels)"),
		},
	}
}

// MobilityExtension evaluates the Section 7 roaming claim: pedestrian
// and vehicular random-waypoint clients over CellFi, with handovers
// handled by the standard strongest-cell rule. Coverage should hold
// close to the static case while shares track the moving census.
func MobilityExtension(seed int64, quick bool) Result {
	trials, epochs := 3, 30
	if quick {
		trials, epochs = 1, 15
	}
	type outcome struct {
		starved   float64
		median    float64
		handovers int
	}
	type mobilityTrial struct {
		th        []float64
		handovers int
	}
	run := func(name string, speed float64) outcome {
		var th []float64
		ho := 0
		for _, r := range trialFleet("mobility/"+name, trials,
			func(tr int) int64 { return seed + int64(tr) },
			func(c *runner.Ctx, tr int) mobilityTrial {
				tp := topo.Generate(topo.Paper(10, 6), seed+int64(tr)*8191)
				n := netsim.New(tp, netsim.DefaultConfig(netsim.SchemeCellFi, c.Seed()))
				if speed > 0 {
					cfg := netsim.DefaultMobility()
					cfg.SpeedMps = speed
					n.EnableMobility(cfg)
				}
				out := mobilityTrial{th: n.Run(epochs), handovers: n.Handovers()}
				addSteps(c, epochs)
				return out
			}) {
			th = append(th, r.th...)
			ho += r.handovers
		}
		c := stats.NewCDF(th)
		return outcome{
			starved:   c.FractionBelow(StarveThresholdMbps) * 100,
			median:    c.Median(),
			handovers: ho,
		}
	}
	static := run("static", 0)
	walk := run("walk", 1.5)
	drive := run("drive", 15)

	t := &stats.Table{
		Title:   "Extension (Section 7): mobility and roaming under CellFi",
		Headers: []string{"Scenario", "Median Mbps", "Starved %", "Handovers"},
	}
	t.AddRow("Static", stats.Fmt(static.median), stats.Fmt(static.starved), "0")
	t.AddRow("Pedestrian (1.5 m/s)", stats.Fmt(walk.median), stats.Fmt(walk.starved),
		stats.Fmt(float64(walk.handovers)))
	t.AddRow("Vehicular (15 m/s)", stats.Fmt(drive.median), stats.Fmt(drive.starved),
		stats.Fmt(float64(drive.handovers)))

	return Result{
		ID:     "mobility",
		Title:  "Extension: mobility and roaming (Section 7)",
		Tables: []*stats.Table{t},
		Notes: []string{
			note("vehicular clients hand over %d times yet starvation moves %.1f -> %.1f%% — the PRACH census tracks movers with no protocol additions",
				drive.handovers, static.starved, drive.starved),
		},
	}
}
