package experiments

import (
	"math"

	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/phy"
	"cellfi/internal/propagation"
	"cellfi/internal/runner"
	"cellfi/internal/stats"
)

func init() { register("fig1", Figure1) }

// tcpEfficiency derates PHY goodput to TCP goodput (headers, ACK
// clocking, slow-start transients over the walk).
const tcpEfficiency = 0.85

// driveTestCell is the Section 3.1 transmitter: 30 dBm into a sector
// antenna for 36 dBm EIRP at boresight.
func driveTestCell() *lte.Cell {
	return &lte.Cell{
		ID:         1,
		Pos:        geo.Point{X: 0, Y: 0},
		TxPowerDBm: 30,
		Antenna:    propagation.Sector(0),
		BW:         lte.BW5MHz,
		TDD:        lte.TDDConfig4,
		Activity:   lte.FullBuffer,
	}
}

// Figure1 reproduces the outdoor drive test of Section 3.1: a single
// 36 dBm EIRP LTE cell, a client walked outward to beyond 1.3 km.
// Outputs: (a) TCP throughput vs distance, (b) CDFs of the coding rate
// used on uplink and downlink, (c) CDFs of the fraction of the channel
// used, plus the HARQ usage beyond 500 m.
func Figure1(seed int64, quick bool) Result {
	step := 10.0
	blocksPerLoc := 20
	if quick {
		step = 50
		blocksPerLoc = 6
	}

	// One fleet leg per measurement location. Fading and shadowing are
	// pure hashes of (seed, link, time), so per-leg environments with
	// the same seed reproduce the sequential walk bit for bit.
	var dists []float64
	for d := 30.0; d <= 1500; d += step {
		dists = append(dists, d)
	}
	type fig1Loc struct {
		tput                              float64
		dlBlocks                          int
		dlRates, ulRates, ulFrac, farBLER []float64
	}
	locs := trialFleet("fig1", len(dists),
		func(i int) int64 { return seed },
		func(c *runner.Ctx, i int) fig1Loc {
			d := dists[i]
			env := lte.NewEnvironment(seed)
			cell := driveTestCell()
			s := lte.BW5MHz.Subchannels()
			var out fig1Loc
			cl := &lte.Client{ID: 1000, Pos: geo.Point{X: d, Y: 0}, TxPowerDBm: 20}
			var locBits float64
			prevWideband := make([]int, s)
			for b := 0; b < blocksPerLoc; b++ {
				tMS := int64(b) * 100
				// Downlink: the lone client gets the full carrier.
				for k := 0; k < s; k++ {
					sinr := env.DownlinkSINR(cell, nil, cl, k, tMS)
					cqi := phy.LTECQIFromSINR(sinr)
					locBits += lte.SubchannelRateBps(lte.BW5MHz, lte.TDDConfig4, k, cqi) * 0.1
					if cqi > 0 {
						out.dlRates = append(out.dlRates, phy.LTECQI(cqi).CodeRate)
						// Link adaptation lag: the transport format came
						// from the previous block's report, backed off
						// one step as real eNodeB outer loops do; measure
						// the first-attempt failure probability now.
						prev := prevWideband[k] - 1
						if prev > 0 && d > 500 {
							out.farBLER = append(out.farBLER, phy.BLER(sinr, phy.LTECQI(prev)))
						}
					}
					prevWideband[k] = cqi
				}
				out.dlBlocks++ // backlogged DL fills the carrier

				// Uplink: TCP ACK stream, about 1.5% of the downlink
				// volume (delayed ACKs), concentrated in as few RBs as
				// possible (Figure 1c's OFDMA trick).
				ulSINR := env.UplinkSINR(cl, cell, 1, 0, tMS)
				ulCQI := phy.LTECQIFromSINR(ulSINR)
				if ulCQI > 0 {
					perRB := float64(lte.TransportBlockBits(ulCQI, 1)) /
						lte.SubframeDuration.Seconds() * lte.TDDConfig4.UplinkFraction()
					need := locBits / (0.1 * float64(b+1)) * 0.015
					nRBs := int(math.Ceil(need / perRB))
					if nRBs < 1 {
						nRBs = 1
					}
					if nRBs > 25 {
						nRBs = 25
					}
					out.ulRates = append(out.ulRates, phy.LTECQI(ulCQI).CodeRate)
					out.ulFrac = append(out.ulFrac, float64(nRBs)/25)
				}
			}
			addSteps(c, blocksPerLoc)
			out.tput = locBits / (float64(blocksPerLoc) * 0.1) * tcpEfficiency / 1e6
			return out
		})

	var aPoints [][2]float64
	var dlRates, ulRates, dlFrac, ulFrac []float64
	var farBLER []float64 // first-transmission failure prob beyond 500 m
	var locations, covered1Mbps int
	maxRange1Mbps := 0.0
	for i, loc := range locs {
		d := dists[i]
		dlRates = append(dlRates, loc.dlRates...)
		ulRates = append(ulRates, loc.ulRates...)
		ulFrac = append(ulFrac, loc.ulFrac...)
		farBLER = append(farBLER, loc.farBLER...)
		for b := 0; b < loc.dlBlocks; b++ {
			dlFrac = append(dlFrac, 1.0)
		}
		aPoints = append(aPoints, [2]float64{d, loc.tput})
		locations++
		if loc.tput >= 1 {
			covered1Mbps++
			if d > maxRange1Mbps {
				maxRange1Mbps = d
			}
		}
	}

	coveredFrac := float64(covered1Mbps) / float64(locations)
	medianDL := stats.NewCDF(dlRates).Median()
	medianUL := stats.NewCDF(ulRates).Median()
	var harqFrac float64
	if len(farBLER) > 0 {
		harqFrac = stats.NewCDF(farBLER).Mean()
	}

	t := &stats.Table{
		Title:   "Figure 1 summary: outdoor LTE drive test (36 dBm EIRP)",
		Headers: []string{"Metric", "Paper", "Measured"},
	}
	t.AddRow("Range (urban)", "1.3 km", stats.Fmt(maxRange1Mbps/1000)+" km")
	t.AddRow("Locations with >= 1 Mbps", ">= 85%", stats.Fmt(coveredFrac*100)+"%")
	t.AddRow("Median DL coding rate", "~0.5", stats.Fmt(medianDL))
	t.AddRow("Median UL coding rate", "~0.5", stats.Fmt(medianUL))
	t.AddRow("Median UL channel fraction", "1 RB (0.04)", stats.Fmt(stats.NewCDF(ulFrac).Median()))
	t.AddRow("HARQ fraction beyond 500 m", "~25%", stats.Fmt(harqFrac*100)+"%")

	return Result{
		ID:     "fig1",
		Title:  "Figure 1: LTE coverage, coding rates, channel usage",
		Tables: []*stats.Table{t},
		Series: []stats.Series{
			{Name: "fig1a: TCP throughput vs distance (Mbps)", Points: aPoints},
			cdfSeries("fig1b: DL coding rate CDF", dlRates, 41),
			cdfSeries("fig1b: UL coding rate CDF", ulRates, 41),
			cdfSeries("fig1c: DL channel fraction CDF", dlFrac, 11),
			cdfSeries("fig1c: UL channel fraction CDF", ulFrac, 41),
		},
		Notes: []string{
			note("range with >= 1 Mbps: %.2f km (paper: 1.3 km)", maxRange1Mbps/1000),
			note("%.0f%% of locations at >= 1 Mbps (paper: > 85%%)", coveredFrac*100),
			note("uplink rides in a single resource block at most locations — the OFDMA advantage of Figure 1c"),
		},
	}
}
