package experiments

import (
	"fmt"

	"cellfi/internal/lte"
	"cellfi/internal/phy"
	"cellfi/internal/stats"
	"cellfi/internal/wifi"
)

func init() { register("table1", Table1) }

// Table1 reproduces the paper's Table 1 — the PHY/MAC property
// comparison between 802.11af and LTE — computed from the models'
// actual constants rather than transcribed.
func Table1(seed int64, quick bool) Result {
	af := wifi.Params11af()

	minWiFiRate := 1.0
	for i := 0; i < phy.WiFiMCSCount(); i++ {
		if r := phy.WiFiMCS(i).CodeRate; r < minWiFiRate {
			minWiFiRate = r
		}
	}
	minLTERate := phy.LTECQI(1).CodeRate

	t := &stats.Table{
		Title:   "Table 1: Summary of differences between 802.11af and LTE",
		Headers: []string{"Property", "802.11af", "LTE"},
	}
	t.AddRow("PHY design", "OFDM", "OFDMA")
	t.AddRow("Freq. chunks",
		fmt.Sprintf("%.0f-8 MHz channel", af.ChannelWidthHz/1e6),
		fmt.Sprintf("%.0f kHz resource blocks", lte.RBBandwidthHz/1e3))
	t.AddRow("Min coding rate",
		fmt.Sprintf(">= %.2f", minWiFiRate),
		fmt.Sprintf(">= %.2f", minLTERate))
	t.AddRow("Hybrid ARQ", "no", fmt.Sprintf("yes (up to %d tx)", lte.MaxHARQTransmissions))
	t.AddRow("Access", "CSMA", "scheduled (static)")
	t.AddRow("TX duration",
		fmt.Sprintf("up to %v", af.MaxTXDuration),
		fmt.Sprintf("%v subframes", lte.SubframeDuration))
	t.AddRow("Mode", "uncoordinated", "coordinated")
	t.AddRow("Decode floor (SINR)",
		fmt.Sprintf("%.1f dB", phy.WiFiMinSINRdB),
		fmt.Sprintf("%.1f dB", phy.LTEMinSINRdB))

	return Result{
		ID:     "table1",
		Title:  "Table 1: 802.11af vs LTE properties",
		Tables: []*stats.Table{t},
		Notes: []string{
			note("LTE decodes %.1f dB deeper than Wi-Fi and codes down to rate %.2f vs %.2f — the PHY half of the paper's range argument",
				phy.WiFiMinSINRdB-phy.LTEMinSINRdB, minLTERate, minWiFiRate),
		},
	}
}
