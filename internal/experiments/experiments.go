// Package experiments regenerates every table and figure of the
// paper's evaluation. Each experiment is a Runner keyed by the ID used
// in EXPERIMENTS.md (table1, fig1, fig2, fig6, fig7, fig8, prach,
// fig9a, fig9b, fig9c, theorem1, overhead, reuse, lambda); runners
// return typed tables and series that cmd/experiments prints and
// bench_test.go exercises.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"cellfi/internal/stats"
)

// Result is one experiment's reproduced output.
type Result struct {
	ID    string
	Title string
	// Tables hold paper-style rows.
	Tables []*stats.Table
	// Series hold plottable lines (for the figure-shaped results).
	Series []stats.Series
	// Notes record paper-vs-measured observations.
	Notes []string
}

// Runner executes an experiment. quick trades trial counts and run
// lengths for speed (used by tests and benchmarks); the full mode
// matches the paper's scale.
type Runner func(seed int64, quick bool) Result

// registry maps experiment IDs to runners.
var registry = map[string]Runner{}

// ordered preserves presentation order.
var ordered []string

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
	ordered = append(ordered, id)
}

// Get returns the runner for an experiment ID.
func Get(id string) (Runner, bool) {
	r, ok := registry[id]
	return r, ok
}

// canonicalOrder is the paper's presentation order; registered
// experiments not listed here are appended at the end.
var canonicalOrder = []string{
	"table1", "fig1", "fig2", "fig6", "fig7", "fig8", "prach",
	"fig9a", "fig9b", "fig9c", "theorem1", "overhead",
	"reuse", "lambda", "sensing", "hopping", "hybrid", "sched", "uplink", "aggregation", "mobility",
}

// IDs returns all experiment IDs in presentation order.
func IDs() []string {
	out := make([]string, 0, len(ordered))
	seen := map[string]bool{}
	for _, id := range canonicalOrder {
		if _, ok := registry[id]; ok {
			out = append(out, id)
			seen[id] = true
		}
	}
	for _, id := range ordered {
		if !seen[id] {
			out = append(out, id)
		}
	}
	return out
}

// note formats a paper-vs-measured annotation.
func note(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

// cdfSeries converts samples into a plottable CDF line.
func cdfSeries(name string, samples []float64, points int) stats.Series {
	return stats.Series{Name: name, Points: stats.NewCDF(samples).Points(points)}
}

// sortedCopy returns an ascending copy (handy for medians in notes).
func sortedCopy(v []float64) []float64 {
	out := append([]float64(nil), v...)
	sort.Float64s(out)
	return out
}

// newSeededRand returns a rand.Rand on its own deterministic source.
func newSeededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
