package experiments

import (
	"fmt"
	"strings"
	"testing"

	"cellfi/internal/runner"
)

// render flattens a Result to a canonical string: every table cell,
// note, and raw series point. Timing-free experiments must render
// byte-identically at any worker count.
func render(r Result) string {
	var b strings.Builder
	b.WriteString(r.Title + "\n")
	for _, t := range r.Tables {
		b.WriteString(t.String() + "\n")
	}
	for _, n := range r.Notes {
		b.WriteString(n + "\n")
	}
	for _, s := range r.Series {
		b.WriteString(s.Name + "\n")
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%.17g\t%.17g\n", p[0], p[1])
		}
	}
	return b.String()
}

// TestExperimentsDeterministicAcrossWorkerCounts runs a cross-section
// of fleet-ported experiments serially and on an 8-worker pool and
// requires byte-identical output. prach is excluded only because its
// complexity table contains wall-clock timings.
func TestExperimentsDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment fleets are slow")
	}
	ids := []string{"theorem1", "sensing", "fig2"}
	defer SetWorkers(0)
	for _, id := range ids {
		run, ok := Get(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		SetWorkers(1)
		serial := render(run(42, true))
		SetWorkers(8)
		parallel := render(run(42, true))
		if serial != parallel {
			t.Errorf("%s: output differs between workers=1 and workers=8\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, serial, parallel)
		}
	}
}

// TestFleetReportsAccumulate checks that experiment campaigns leave
// telemetry behind for cmd/experiments -telemetry to drain and merge.
func TestFleetReportsAccumulate(t *testing.T) {
	DrainReports() // discard campaigns from other tests
	run, ok := Get("theorem1")
	if !ok {
		t.Fatal("theorem1 not registered")
	}
	run(7, true)
	reps := DrainReports()
	if len(reps) == 0 {
		t.Fatal("no campaign reports recorded")
	}
	var events int64
	for _, rp := range reps {
		events += rp.TotalSimEvents
	}
	if events == 0 {
		t.Error("campaigns recorded zero sim events (AddSteps/Engine tracking broken)")
	}
	if _, err := runner.Merge("test", reps...); err != nil {
		t.Fatalf("merging campaign reports: %v", err)
	}
}
