package experiments

import (
	"cellfi/internal/lte"
	"cellfi/internal/netsim"
	"cellfi/internal/runner"
	"cellfi/internal/stats"
	"cellfi/internal/topo"
)

func init() {
	register("reuse", ReuseAblation)
	register("lambda", LambdaAblation)
	register("sensing", SensingAblation)
}

// coreCQIOverheadKbps returns the computed CQI overhead in kbps.
func coreCQIOverheadKbps() float64 { return lte.CQISignalingOverheadBps() / 1e3 }

// cellfiRun runs one backlogged CellFi network and returns throughputs
// plus accumulated hops. c may be nil outside a fleet.
func cellfiRun(c *runner.Ctx, tp *topo.Topology, cfg netsim.Config, epochs int) ([]float64, int) {
	n := netsim.New(tp, cfg)
	th := n.Run(epochs)
	addSteps(c, epochs)
	return th, n.Hops
}

// ReuseAblation measures the Section 5.3 channel re-use heuristic: the
// paper reports faster convergence and up to 2x throughput gain for
// exposed clients. We compare packing on/off on dense topologies.
func ReuseAblation(seed int64, quick bool) Result {
	trials, epochs := 4, 25
	if quick {
		trials, epochs = 1, 10
	}
	var onTh, offTh []float64
	var onHops, offHops int
	var onLowIdx, offLowIdx float64
	lowIdxFrac := func(n *netsim.Network) float64 {
		held, low := 0, 0
		for i := range n.Cells {
			for _, k := range n.Allowed(i) {
				held++
				if k < n.Cfg.BW.Subchannels()/2 {
					low++
				}
			}
		}
		if held == 0 {
			return 0
		}
		return float64(low) / float64(held)
	}
	type reuseTrial struct {
		onTh, offTh         []float64
		onHops, offHops     int
		onLowIdx, offLowIdx float64
	}
	for _, r := range trialFleet("reuse", trials,
		func(tr int) int64 { return seed + int64(tr) },
		func(c *runner.Ctx, tr int) reuseTrial {
			tp := topo.Generate(topo.Paper(10, 6), seed+int64(tr)*911)
			cfgOn := netsim.DefaultConfig(netsim.SchemeCellFi, c.Seed())
			nOn := netsim.New(tp, cfgOn)
			var out reuseTrial
			out.onTh = nOn.Run(epochs)
			out.onHops = nOn.Hops
			out.onLowIdx = lowIdxFrac(nOn)

			cfgOff := cfgOn
			cfgOff.PackingEnabled = false
			nOff := netsim.New(tp, cfgOff)
			out.offTh = nOff.Run(epochs)
			out.offHops = nOff.Hops
			out.offLowIdx = lowIdxFrac(nOff)
			addSteps(c, 2*epochs)
			return out
		}) {
		onTh = append(onTh, r.onTh...)
		onHops += r.onHops
		onLowIdx += r.onLowIdx
		offTh = append(offTh, r.offTh...)
		offHops += r.offHops
		offLowIdx += r.offLowIdx
	}
	onLowIdx /= float64(trials)
	offLowIdx /= float64(trials)
	on, off := stats.NewCDF(onTh), stats.NewCDF(offTh)
	t := &stats.Table{
		Title:   "Ablation: channel re-use (packing) heuristic",
		Headers: []string{"Metric", "Packing on", "Packing off"},
	}
	t.AddRow("Median throughput (Mbps)", stats.Fmt(on.Median()), stats.Fmt(off.Median()))
	t.AddRow("90th pct throughput (Mbps)", stats.Fmt(on.Quantile(0.9)), stats.Fmt(off.Quantile(0.9)))
	t.AddRow("Starved (%)", stats.Fmt(on.FractionBelow(StarveThresholdMbps)*100),
		stats.Fmt(off.FractionBelow(StarveThresholdMbps)*100))
	t.AddRow("Total hops", stats.Fmt(float64(onHops)), stats.Fmt(float64(offHops)))
	t.AddRow("Low-index concentration", stats.Fmt(onLowIdx*100)+"%", stats.Fmt(offLowIdx*100)+"%")
	return Result{
		ID:     "reuse",
		Title:  "Ablation: channel re-use heuristic (Section 5.3)",
		Tables: []*stats.Table{t},
		Notes: []string{
			note("packing concentrates reservations on low-index subchannels (%.0f%% vs %.0f%% without), the self-organization Section 5.3 describes; in dense random topologies its throughput effect is small, while exposed near-AP clients gain by overlapping harmlessly",
				onLowIdx*100, offLowIdx*100),
		},
	}
}

// LambdaAblation sweeps the exponential bucket mean: the paper "found
// lambda = 10 to be a good choice experimentally". Small lambdas churn
// (hop too eagerly); large ones react too slowly to interference.
func LambdaAblation(seed int64, quick bool) Result {
	lambdas := []float64{1, 5, 10, 20, 50}
	trials, epochs := 3, 25
	if quick {
		lambdas = []float64{1, 10, 50}
		trials, epochs = 1, 10
	}
	t := &stats.Table{
		Title:   "Ablation: hopping bucket mean (lambda)",
		Headers: []string{"Lambda", "Median Mbps", "Starved %", "Hops"},
	}
	// One leg per (lambda, trial) pair; aggregate lambda-major.
	type lambdaRun struct {
		th   []float64
		hops int
	}
	var legs []leg[lambdaRun]
	for _, l := range lambdas {
		l := l
		for tr := 0; tr < trials; tr++ {
			tr := tr
			legs = append(legs, leg[lambdaRun]{
				label: note("lambda/l=%g/trial=%d", l, tr),
				seed:  seed + int64(tr),
				run: func(c *runner.Ctx) lambdaRun {
					tp := topo.Generate(topo.Paper(10, 6), seed+int64(tr)*733)
					cfg := netsim.DefaultConfig(netsim.SchemeCellFi, c.Seed())
					cfg.Lambda = l
					r, h := cellfiRun(c, tp, cfg, epochs)
					return lambdaRun{th: r, hops: h}
				},
			})
		}
	}
	runs := fleet("lambda", legs)
	for li := range lambdas {
		var th []float64
		hops := 0
		for tr := 0; tr < trials; tr++ {
			r := runs[li*trials+tr]
			th = append(th, r.th...)
			hops += r.hops
		}
		c := stats.NewCDF(th)
		t.AddRow(stats.Fmt(lambdas[li]), stats.Fmt(c.Median()),
			stats.Fmt(c.FractionBelow(StarveThresholdMbps)*100), stats.Fmt(float64(hops)))
	}
	return Result{
		ID:     "lambda",
		Title:  "Ablation: bucket mean lambda (paper uses 10)",
		Tables: []*stats.Table{t},
		Notes:  []string{note("small lambda drains buckets instantly and churns; large lambda tolerates persistent interference too long")},
	}
}

// SensingAblation isolates the cost of imperfect sensing: the measured
// 80% detection / 2% false positives versus a perfect-sensing CellFi.
func SensingAblation(seed int64, quick bool) Result {
	trials, epochs := 3, 25
	if quick {
		trials, epochs = 1, 10
	}
	var measTh, perfTh []float64
	type sensingTrial struct {
		meas, perf []float64
	}
	for _, r := range trialFleet("sensing", trials,
		func(tr int) int64 { return seed + int64(tr) },
		func(c *runner.Ctx, tr int) sensingTrial {
			tp := topo.Generate(topo.Paper(10, 6), seed+int64(tr)*577)
			cfg := netsim.DefaultConfig(netsim.SchemeCellFi, c.Seed())
			var out sensingTrial
			out.meas, _ = cellfiRun(c, tp, cfg, epochs)

			cfg.PerfectSensing = true
			out.perf, _ = cellfiRun(c, tp, cfg, epochs)
			return out
		}) {
		measTh = append(measTh, r.meas...)
		perfTh = append(perfTh, r.perf...)
	}
	m, p := stats.NewCDF(measTh), stats.NewCDF(perfTh)
	t := &stats.Table{
		Title:   "Ablation: measured vs perfect sensing",
		Headers: []string{"Metric", "Measured (80%/2%)", "Perfect"},
	}
	t.AddRow("Median throughput (Mbps)", stats.Fmt(m.Median()), stats.Fmt(p.Median()))
	t.AddRow("Starved (%)", stats.Fmt(m.FractionBelow(StarveThresholdMbps)*100),
		stats.Fmt(p.FractionBelow(StarveThresholdMbps)*100))
	return Result{
		ID:     "sensing",
		Title:  "Ablation: sensing imperfection injection (Section 6.3.2)",
		Tables: []*stats.Table{t},
		Notes:  []string{note("the measured error rates cost little — the detector's conservatism (Section 5.2) absorbs them")},
	}
}
