package experiments

import (
	"time"

	"cellfi/internal/netsim"
	"cellfi/internal/propagation"
	"cellfi/internal/runner"
	"cellfi/internal/stats"
	"cellfi/internal/topo"
	"cellfi/internal/traffic"
	"cellfi/internal/wifi"
)

func init() {
	register("fig9a", Figure9a)
	register("fig9b", Figure9b)
	register("fig9c", Figure9c)
}

// StarveThresholdMbps defines a "starved"/unconnected client: average
// throughput below 50 kbps under a backlogged load.
const StarveThresholdMbps = 0.05

// fig9Schemes are the systems compared in Figure 9.
type fig9Throughputs struct {
	wifi, lte, cellfi, oracle []float64
}

// runFig9Trial produces per-client backlogged throughputs for all four
// systems over one topology. c may be nil outside a fleet.
func runFig9Trial(c *runner.Ctx, aps, clients int, seed int64, epochs int, wifiDur time.Duration, withOracle bool) fig9Throughputs {
	var out fig9Throughputs
	tp := topo.Generate(topo.Paper(aps, clients), seed)

	// 802.11af on a 6 MHz TV channel (the paper's Wi-Fi arm).
	out.wifi = wifiBackloggedThroughputs(c, tp, wifi.Params11af(), 30, seed, wifiDur)

	for _, s := range []netsim.Scheme{netsim.SchemeLTE, netsim.SchemeCellFi, netsim.SchemeOracle} {
		if s == netsim.SchemeOracle && !withOracle {
			continue
		}
		n := netsim.New(tp, netsim.DefaultConfig(s, seed))
		th := n.Run(epochs)
		addSteps(c, epochs)
		switch s {
		case netsim.SchemeLTE:
			out.lte = th
		case netsim.SchemeCellFi:
			out.cellfi = th
		case netsim.SchemeOracle:
			out.oracle = th
		}
	}
	return out
}

// wifiBackloggedThroughputs runs the event-driven Wi-Fi simulator over
// a topology with saturated downlink queues.
func wifiBackloggedThroughputs(c *runner.Ctx, tp *topo.Topology, params wifi.Params, power float64, seed int64, dur time.Duration) []float64 {
	eng := fleetEngine(c, seed)
	n := wifi.NewNetwork(eng, propagation.DefaultUrban(seed), params)
	id := 1
	for i, apPos := range tp.APs {
		ap := n.AddAP(id, apPos, power)
		id++
		for _, cp := range tp.Clients[i] {
			n.AddClient(id, cp, power, ap)
			id++
		}
	}
	top := func() {
		for _, ap := range n.APs() {
			for _, c := range ap.Clients() {
				if ap.QueuedBits(c) < 1<<22 {
					ap.Enqueue(c, 1<<26)
				}
			}
		}
	}
	top()
	eng.EveryAt(0, 100*time.Millisecond, top)
	eng.Run(dur)
	var out []float64
	for _, ap := range n.APs() {
		for _, c := range ap.Clients() {
			out = append(out, float64(ap.DeliveredBits(c))/dur.Seconds()/1e6)
		}
	}
	return out
}

func connectedFrac(th []float64) float64 {
	return 1 - stats.NewCDF(th).FractionBelow(StarveThresholdMbps)
}

// Figure9a reproduces coverage versus density: the fraction of
// connected (non-starved) clients as the number of APs in the
// 2 km x 2 km area grows from 6 to 14, with 6 clients per AP.
func Figure9a(seed int64, quick bool) Result {
	densities := []int{6, 8, 10, 12, 14}
	trials, epochs, wifiDur := 3, 20, 2*time.Second
	if quick {
		densities = []int{6, 14}
		trials, epochs, wifiDur = 1, 10, 500*time.Millisecond
	}
	t := &stats.Table{
		Title:   "Figure 9(a): fraction of connected users (%) vs density",
		Headers: []string{"APs", "802.11af", "LTE", "CellFi"},
	}
	var sWifi, sLTE, sCellFi [][2]float64
	var last struct{ wifi, lte, cellfi float64 }
	// One fleet leg per (density, trial) point; legs are independent
	// scenario runs, aggregated below in density order.
	var legs []leg[fig9Throughputs]
	for _, aps := range densities {
		aps := aps
		for tr := 0; tr < trials; tr++ {
			tr := tr
			legs = append(legs, leg[fig9Throughputs]{
				label: note("fig9a/aps=%d/trial=%d", aps, tr),
				seed:  seed + int64(tr)*7919 + int64(aps),
				run: func(c *runner.Ctx) fig9Throughputs {
					return runFig9Trial(c, aps, 6, c.Seed(), epochs, wifiDur, false)
				},
			})
		}
	}
	points := fleet("fig9a", legs)
	for di, aps := range densities {
		var wifiTh, lteTh, cfTh []float64
		for tr := 0; tr < trials; tr++ {
			r := points[di*trials+tr]
			wifiTh = append(wifiTh, r.wifi...)
			lteTh = append(lteTh, r.lte...)
			cfTh = append(cfTh, r.cellfi...)
		}
		w, l, c := connectedFrac(wifiTh)*100, connectedFrac(lteTh)*100, connectedFrac(cfTh)*100
		t.AddRow(stats.Fmt(float64(aps)), stats.Fmt(w), stats.Fmt(l), stats.Fmt(c))
		sWifi = append(sWifi, [2]float64{float64(aps), w})
		sLTE = append(sLTE, [2]float64{float64(aps), l})
		sCellFi = append(sCellFi, [2]float64{float64(aps), c})
		last.wifi, last.lte, last.cellfi = w, l, c
	}
	// The paper's denser variant: 16 clients per AP at 14 APs ("CellFi
	// still offers coverage to more than 80% of users, an increase of
	// 32% and 8% compared to Wi-Fi and LTE").
	t16 := &stats.Table{
		Title:   "Densest scenario: 14 APs x 16 clients",
		Headers: []string{"System", "Connected %"},
	}
	var dense struct{ wifi, lte, cellfi float64 }
	{
		var wifiTh, lteTh, cfTh []float64
		denseTrials := trials
		if denseTrials > 2 {
			denseTrials = 2
		}
		denseRuns := trialFleet("fig9a-dense", denseTrials,
			func(tr int) int64 { return seed + int64(tr)*52361 },
			func(c *runner.Ctx, tr int) fig9Throughputs {
				return runFig9Trial(c, 14, 16, c.Seed(), epochs, wifiDur, false)
			})
		for _, r := range denseRuns {
			wifiTh = append(wifiTh, r.wifi...)
			lteTh = append(lteTh, r.lte...)
			cfTh = append(cfTh, r.cellfi...)
		}
		// With 224 users on one 5 MHz channel the perfectly-fair share
		// is ~55 kbps, so the 6-client 50 kbps threshold would label
		// half of a perfect network "starved". Scale the connectivity
		// bar with the load (50 kbps x 6/16 ~ 19 kbps).
		denseBar := StarveThresholdMbps * 6 / 16
		conn := func(th []float64) float64 {
			return (1 - stats.NewCDF(th).FractionBelow(denseBar)) * 100
		}
		dense.wifi = conn(wifiTh)
		dense.lte = conn(lteTh)
		dense.cellfi = conn(cfTh)
		t16.AddRow("802.11af", stats.Fmt(dense.wifi))
		t16.AddRow("LTE", stats.Fmt(dense.lte))
		t16.AddRow("CellFi", stats.Fmt(dense.cellfi))
	}

	return Result{
		ID:     "fig9a",
		Title:  "Figure 9(a): coverage vs density",
		Tables: []*stats.Table{t, t16},
		Series: []stats.Series{
			{Name: "fig9a: 802.11af connected %", Points: sWifi},
			{Name: "fig9a: LTE connected %", Points: sLTE},
			{Name: "fig9a: CellFi connected %", Points: sCellFi},
		},
		Notes: []string{
			note("at the densest point CellFi connects %.0f%% vs Wi-Fi %.0f%% and LTE %.0f%% (paper: +37%% vs Wi-Fi, +16%% vs LTE at 14 APs)",
				last.cellfi, last.wifi, last.lte),
			note("with 16 clients per AP (224 users on 5 MHz) CellFi still connects %.0f%% (paper: more than 80%%) vs Wi-Fi %.0f%% and LTE %.0f%%",
				dense.cellfi, dense.wifi, dense.lte),
		},
	}
}

// Figure9b reproduces the client-throughput CDFs in the densest
// scenario (14 APs, 6 clients each: 84 clients on one 5 MHz channel),
// including the centralized oracle.
func Figure9b(seed int64, quick bool) Result {
	trials, epochs, wifiDur := 5, 25, 2*time.Second
	if quick {
		trials, epochs, wifiDur = 1, 10, 500*time.Millisecond
	}
	var agg fig9Throughputs
	for _, r := range trialFleet("fig9b", trials,
		func(tr int) int64 { return seed + int64(tr)*104729 },
		func(c *runner.Ctx, tr int) fig9Throughputs {
			return runFig9Trial(c, 14, 6, c.Seed(), epochs, wifiDur, true)
		}) {
		agg.wifi = append(agg.wifi, r.wifi...)
		agg.lte = append(agg.lte, r.lte...)
		agg.cellfi = append(agg.cellfi, r.cellfi...)
		agg.oracle = append(agg.oracle, r.oracle...)
	}
	w, l, c, o := stats.NewCDF(agg.wifi), stats.NewCDF(agg.lte), stats.NewCDF(agg.cellfi), stats.NewCDF(agg.oracle)

	t := &stats.Table{
		Title:   "Figure 9(b): client throughput, 14 APs x 6 clients on 5 MHz",
		Headers: []string{"Metric", "802.11af", "LTE", "CellFi", "Oracle"},
	}
	t.AddRow("Median (Mbps)", stats.Fmt(w.Median()), stats.Fmt(l.Median()), stats.Fmt(c.Median()), stats.Fmt(o.Median()))
	t.AddRow("Mean (Mbps)", stats.Fmt(w.Mean()), stats.Fmt(l.Mean()), stats.Fmt(c.Mean()), stats.Fmt(o.Mean()))
	starve := func(cd *stats.CDF) string { return stats.Fmt(cd.FractionBelow(StarveThresholdMbps)*100) + "%" }
	t.AddRow("Starved", starve(w), starve(l), starve(c), starve(o))
	t.AddRow("Jain fairness",
		stats.Fmt(stats.JainIndex(agg.wifi)), stats.Fmt(stats.JainIndex(agg.lte)),
		stats.Fmt(stats.JainIndex(agg.cellfi)), stats.Fmt(stats.JainIndex(agg.oracle)))

	starvedReductionWifi := 1 - c.FractionBelow(StarveThresholdMbps)/maxf(w.FractionBelow(StarveThresholdMbps), 1e-9)
	starvedReductionLTE := 1 - c.FractionBelow(StarveThresholdMbps)/maxf(l.FractionBelow(StarveThresholdMbps), 1e-9)

	return Result{
		ID:     "fig9b",
		Title:  "Figure 9(b): throughput CDFs vs the oracle",
		Tables: []*stats.Table{t},
		Series: []stats.Series{
			cdfSeries("fig9b: 802.11af throughput CDF (Mbps)", agg.wifi, 41),
			cdfSeries("fig9b: LTE throughput CDF (Mbps)", agg.lte, 41),
			cdfSeries("fig9b: CellFi throughput CDF (Mbps)", agg.cellfi, 41),
			cdfSeries("fig9b: Oracle throughput CDF (Mbps)", agg.oracle, 41),
		},
		Notes: []string{
			note("CellFi cuts starved clients by %.0f%% vs Wi-Fi and %.0f%% vs LTE (paper: 70-90%%)",
				starvedReductionWifi*100, starvedReductionLTE*100),
			note("CellFi median %.2f Mbps vs Wi-Fi %.2f (paper: roughly 2x at the median) and tracks the oracle's %.2f",
				c.Median(), w.Median(), o.Median()),
		},
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Figure9c reproduces the web-workload page-load-time comparison:
// CellFi and LTE run on the fluid simulator with per-client page
// arrivals; 802.11af runs the same workload through the event-driven
// CSMA simulator.
func Figure9c(seed int64, quick bool) Result {
	aps, clients := 10, 6
	durS := 120
	trials := 2
	if quick {
		durS, trials = 30, 1
	}

	// The workload must stress the network for the MAC differences to
	// matter (the paper's dense web scenario): a 10 s mean think time
	// over 60 clients offers ~8 Mbps, which exceeds the single
	// collision domain 802.11af sustains over a 2 km area but sits
	// within the LTE schemes' spatial-reuse capacity.
	web := traffic.DefaultWebParams()
	web.ThinkTimeMean = 10 * time.Second
	// Fan out each trial's three system arms as independent legs; every
	// arm regenerates the trial topology from the same seed, so the
	// split changes nothing but wall-clock time.
	type arm struct {
		name string
		run  func(c *runner.Ctx, tp *topo.Topology, trialSeed int64) []float64
	}
	arms := []arm{
		{"wifi", func(c *runner.Ctx, tp *topo.Topology, trialSeed int64) []float64 {
			return wifiWebPageLoads(c, tp, web, trialSeed, durS)
		}},
		{"lte", func(c *runner.Ctx, tp *topo.Topology, trialSeed int64) []float64 {
			return netsimWebPageLoads(c, tp, web, netsim.SchemeLTE, trialSeed, durS)
		}},
		{"cellfi", func(c *runner.Ctx, tp *topo.Topology, trialSeed int64) []float64 {
			return netsimWebPageLoads(c, tp, web, netsim.SchemeCellFi, trialSeed, durS)
		}},
	}
	var legs []leg[[]float64]
	for tr := 0; tr < trials; tr++ {
		trialSeed := seed + int64(tr)*60013
		for _, a := range arms {
			a := a
			legs = append(legs, leg[[]float64]{
				label: note("fig9c/%s/trial=%d", a.name, tr),
				seed:  trialSeed,
				run: func(c *runner.Ctx) []float64 {
					tp := topo.Generate(topo.Paper(aps, clients), c.Seed())
					return a.run(c, tp, c.Seed())
				},
			})
		}
	}
	plts := fleet("fig9c", legs)
	var wifiPLT, ltePLT, cfPLT []float64
	for tr := 0; tr < trials; tr++ {
		wifiPLT = append(wifiPLT, plts[tr*len(arms)]...)
		ltePLT = append(ltePLT, plts[tr*len(arms)+1]...)
		cfPLT = append(cfPLT, plts[tr*len(arms)+2]...)
	}
	w, l, c := stats.NewCDF(wifiPLT), stats.NewCDF(ltePLT), stats.NewCDF(cfPLT)

	t := &stats.Table{
		Title:   "Figure 9(c): page load time (s), web workload",
		Headers: []string{"Metric", "802.11af", "LTE", "CellFi"},
	}
	t.AddRow("Median (s)", stats.Fmt(w.Median()), stats.Fmt(l.Median()), stats.Fmt(c.Median()))
	t.AddRow("90th pct (s)", stats.Fmt(w.Quantile(0.9)), stats.Fmt(l.Quantile(0.9)), stats.Fmt(c.Quantile(0.9)))
	t.AddRow("Pages (incl. censored)", stats.Fmt(float64(w.Len())), stats.Fmt(float64(l.Len())), stats.Fmt(float64(c.Len())))

	speedup := w.Median() / maxf(c.Median(), 1e-9)
	return Result{
		ID:     "fig9c",
		Title:  "Figure 9(c): application-level performance",
		Tables: []*stats.Table{t},
		Series: []stats.Series{
			cdfSeries("fig9c: 802.11af page load time CDF (s)", wifiPLT, 41),
			cdfSeries("fig9c: LTE page load time CDF (s)", ltePLT, 41),
			cdfSeries("fig9c: CellFi page load time CDF (s)", cfPLT, 41),
		},
		Notes: []string{
			note("CellFi median page load %.1fx faster than 802.11af (paper: 2.3x)", speedup),
			note("CellFi vs LTE median: %.2f s vs %.2f s — direction matches the paper (CellFi ahead, LTE's tail far worse); our unmanaged-LTE arm degrades harder than the paper's because every busy cell occupies the whole carrier at full duty in the fluid model",
				c.Median(), l.Median()),
		},
	}
}

// netsimWebPageLoads drives the fluid simulator with the web workload
// and returns completed page load times in seconds.
func netsimWebPageLoads(c *runner.Ctx, tp *topo.Topology, web traffic.WebParams, scheme netsim.Scheme, seed int64, durS int) []float64 {
	addSteps(c, durS)
	n := netsim.New(tp, netsim.DefaultConfig(scheme, seed))
	gens := make([]*traffic.WebGenerator, len(n.Clients))
	next := make([]traffic.Page, len(n.Clients))
	tracker := traffic.NewFlowTracker()
	for i := range gens {
		gens[i] = traffic.NewWebGenerator(web, newSeededRand(seed+int64(i)*31+7))
		next[i] = gens[i].NextPage(i, 0)
	}
	for e := 0; e < durS; e++ {
		now := time.Duration(e) * time.Second
		for i := range n.Clients {
			for next[i].Arrival <= now {
				for _, f := range next[i].Flows {
					tracker.Enqueue(f)
					n.AddBits(i, f.Bits)
				}
				next[i] = gens[i].NextPage(i, next[i].Arrival)
			}
		}
		before := make([]int64, len(n.Clients))
		for i, c := range n.Clients {
			before[i] = c.DeliveredBits
		}
		n.Step()
		// Interpolate completions inside the epoch (service is fluid)
		// so page-load times are not quantized to whole seconds.
		const subSteps = 5
		for s := 1; s <= subSteps; s++ {
			at := now + time.Duration(s)*time.Second/subSteps
			for i, c := range n.Clients {
				served := c.DeliveredBits - before[i]
				tracker.Progress(i, before[i]+served*int64(s)/subSteps, at)
			}
		}
	}
	return pageLoadSamples(tracker, time.Duration(durS)*time.Second)
}

// pageLoadSamples builds the page-load-time distribution the paper
// plots: completed pages at their true load time, and pages still
// outstanding at the horizon censored at their current age (the CDF
// plateau of Figure 9c). Pages arriving in the final 15 s are excluded
// to avoid trivially censoring fresh arrivals.
func pageLoadSamples(tracker *traffic.FlowTracker, horizon time.Duration) []float64 {
	cutoff := horizon - 15*time.Second
	var out []float64
	for _, p := range tracker.CompletedPages() {
		if p.Arrival <= cutoff {
			out = append(out, p.LoadTime().Seconds())
		}
	}
	for _, p := range tracker.OutstandingPages() {
		if p.Arrival <= cutoff {
			out = append(out, (horizon - p.Arrival).Seconds())
		}
	}
	return out
}

// wifiWebPageLoads drives the CSMA simulator with the same workload.
// Page arrivals are quantized to whole seconds exactly as the fluid
// simulator's epochs quantize them, so neither side gets a head start.
func wifiWebPageLoads(c *runner.Ctx, tp *topo.Topology, web traffic.WebParams, seed int64, durS int) []float64 {
	eng := fleetEngine(c, seed)
	n := wifi.NewNetwork(eng, propagation.DefaultUrban(seed), wifi.Params11af())
	tracker := traffic.NewFlowTracker()
	type pair struct {
		ap, cl *wifi.Node
	}
	var pairs []pair
	id := 1
	for i, apPos := range tp.APs {
		ap := n.AddAP(id, apPos, 30)
		id++
		for _, cp := range tp.Clients[i] {
			cl := n.AddClient(id, cp, 30, ap)
			id++
			pairs = append(pairs, pair{ap, cl})
		}
	}
	for i := range pairs {
		i := i
		gen := traffic.NewWebGenerator(web, newSeededRand(seed+int64(i)*31+7))
		var schedule func(p traffic.Page)
		schedule = func(p traffic.Page) {
			// Quantize the enqueue instant to the next whole second,
			// mirroring the fluid simulator's epoch boundaries.
			enqueueAt := p.Arrival.Truncate(time.Second)
			if enqueueAt < p.Arrival {
				enqueueAt += time.Second
			}
			delay := enqueueAt - eng.Now()
			if delay < 0 {
				delay = 0
			}
			eng.After(delay, func() {
				for _, f := range p.Flows {
					f.ClientID = i
					tracker.Enqueue(f)
					pairs[i].ap.Enqueue(pairs[i].cl, f.Bits)
				}
				schedule(gen.NextPage(i, p.Arrival))
			})
		}
		schedule(gen.NextPage(i, 0))
	}
	eng.EveryAt(100*time.Millisecond, 100*time.Millisecond, func() {
		for i := range pairs {
			tracker.Progress(i, pairs[i].ap.DeliveredBits(pairs[i].cl), eng.Now())
		}
	})
	eng.Run(time.Duration(durS) * time.Second)
	return pageLoadSamples(tracker, time.Duration(durS)*time.Second)
}
