package experiments

import (
	"time"

	"cellfi/internal/propagation"
	"cellfi/internal/runner"
	"cellfi/internal/stats"
	"cellfi/internal/topo"
	"cellfi/internal/wifi"
)

func init() { register("fig2", Figure2) }

// wifiTrial runs one backlogged Wi-Fi network over a topology and
// returns per-client throughput in Mbps.
func wifiTrial(c *runner.Ctx, t *topo.Topology, params wifi.Params, model *propagation.Model, txPowerDBm float64, seed int64, dur time.Duration) []float64 {
	eng := fleetEngine(c, seed)
	n := wifi.NewNetwork(eng, model, params)
	id := 1
	for i, apPos := range t.APs {
		ap := n.AddAP(id, apPos, txPowerDBm)
		id++
		for _, cp := range t.Clients[i] {
			n.AddClient(id, cp, txPowerDBm, ap)
			id++
		}
	}
	top := func() {
		for _, ap := range n.APs() {
			for _, c := range ap.Clients() {
				if ap.QueuedBits(c) < 1<<22 {
					ap.Enqueue(c, 1<<26)
				}
			}
		}
	}
	top()
	eng.EveryAt(0, 50*time.Millisecond, top)
	eng.Run(dur)
	var out []float64
	for _, ap := range n.APs() {
		for _, c := range ap.Clients() {
			out = append(out, float64(ap.DeliveredBits(c))/dur.Seconds()/1e6)
		}
	}
	return out
}

// Figure2 reproduces the Wi-Fi MAC inefficiency comparison of Section
// 3.2: the same access points run once as an outdoor 802.11af network
// (30 dBm, clients up to 700 m out) and once as a short-range 802.11ac
// deployment (20 dBm, clients within the radius that gives the same
// edge SNR over indoor propagation), both on 20 MHz with RTS/CTS.
// Equal receiver SNRs make the
// PHY rates comparable; what differs is the MAC: the long-range
// network's carrier-sense footprint couples every cell in the area and
// breeds hidden/exposed terminals, while the short-range cells barely
// hear each other — plus the down-clocked 802.11af timing stretches
// every contention round.
func Figure2(seed int64, quick bool) Result {
	trials, dur := 5, 2*time.Second
	if quick {
		trials, dur = 2, 500*time.Millisecond
	}
	// Each trial contributes two independent legs: the outdoor
	// 802.11af network (30 dBm, 700 m cells) and the short-range
	// 802.11ac deployment (20 dBm, the radius giving the same edge SNR
	// over indoor propagation — Section 3.2: "same number of clients
	// within the corresponding range of each access point ... average
	// SNR at the receiver is same").
	var legs []leg[[]float64]
	for tr := 0; tr < trials; tr++ {
		trialSeed := seed + int64(tr)*131
		legs = append(legs,
			leg[[]float64]{
				label: note("fig2/11af/trial=%d", tr),
				seed:  trialSeed,
				run: func(c *runner.Ctx) []float64 {
					afTopo := topo.Generate(topo.Paper(8, 6), c.Seed())
					return wifiTrial(c, afTopo, wifi.Params11af20(),
						propagation.DefaultUrban(c.Seed()), 30, c.Seed(), dur)
				},
			},
			leg[[]float64]{
				label: note("fig2/11ac/trial=%d", tr),
				seed:  trialSeed,
				run: func(c *runner.Ctx) []float64 {
					acParams := topo.Paper(8, 6)
					acParams.CellRadius = 290 // 20 dBm indoor edge SNR == 30 dBm urban at 700 m
					acTopo := topo.Generate(acParams, c.Seed())
					return wifiTrial(c, acTopo, wifi.Params11ac20(),
						propagation.IndoorShortRange(c.Seed()), 20, c.Seed(), dur)
				},
			})
	}
	runs := fleet("fig2", legs)
	var af, ac []float64
	for tr := 0; tr < trials; tr++ {
		af = append(af, runs[2*tr]...)
		ac = append(ac, runs[2*tr+1]...)
	}
	afCDF, acCDF := stats.NewCDF(af), stats.NewCDF(ac)

	t := &stats.Table{
		Title:   "Figure 2: client throughput, 802.11af vs 802.11ac (equal SNRs)",
		Headers: []string{"Metric", "802.11af", "802.11ac"},
	}
	t.AddRow("Median (Mbps)", stats.Fmt(afCDF.Median()), stats.Fmt(acCDF.Median()))
	t.AddRow("Mean (Mbps)", stats.Fmt(afCDF.Mean()), stats.Fmt(acCDF.Mean()))
	t.AddRow("Starved (< 0.1 Mbps)",
		stats.Fmt(afCDF.FractionBelow(0.1)*100)+"%",
		stats.Fmt(acCDF.FractionBelow(0.1)*100)+"%")

	return Result{
		ID:     "fig2",
		Title:  "Figure 2: Wi-Fi MAC inefficiencies on long links",
		Tables: []*stats.Table{t},
		Series: []stats.Series{
			cdfSeries("fig2: 802.11af client throughput CDF (Mbps)", af, 41),
			cdfSeries("fig2: 802.11ac client throughput CDF (Mbps)", ac, 41),
		},
		Notes: []string{
			note("802.11af median %.2f Mbps vs 802.11ac %.2f Mbps — the paper's Figure 2 gap direction",
				afCDF.Median(), acCDF.Median()),
		},
	}
}
