package experiments

import (
	"math/rand"

	"cellfi/internal/core"
	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/runner"
	"cellfi/internal/stats"
)

func init() { register("fig8", Figure8) }

// Figure8 reproduces the CQI/interference-tracking experiment of
// Section 6.3.2: PHY throughput and reported CQI during alternating
// ON/OFF periods of an interfering radio, over a fading channel, and
// the error rates of the CQI-drop interference detector (paper: < 2%
// false positives, ~80% detection).
func Figure8(seed int64, quick bool) Result {
	// Timeline: 5 seconds, interferer toggling every ~1.25 s —
	// OFF ON OFF ON as in the figure. CQI sampled every 2 ms.
	totalMS := int64(5000)
	sampleEveryMS := int64(2)
	if quick {
		totalMS = 1500
	}
	onAt := func(t int64) bool { return (t/1250)%2 == 1 }

	// The rooftop geometry, rebuilt per leg (the interferer's Activity
	// is mutated while measuring).
	type fig8Rig struct {
		env        *lte.Environment
		serving    *lte.Cell
		interferer *lte.Cell
		ifs        []*lte.Cell
		cl         *lte.Client
	}
	rig := func() fig8Rig {
		serving := &lte.Cell{
			ID: 1, Pos: geo.Point{X: 0, Y: 0}, TxPowerDBm: 23,
			BW: lte.BW5MHz, TDD: lte.TDDConfig4, Activity: lte.FullBuffer,
		}
		interferer := &lte.Cell{
			ID: 2, Pos: geo.Point{X: 120, Y: 40}, TxPowerDBm: 23,
			BW: lte.BW5MHz, TDD: lte.TDDConfig4,
		}
		return fig8Rig{
			env:        lte.NewEnvironment(seed),
			serving:    serving,
			interferer: interferer,
			ifs:        []*lte.Cell{interferer},
			cl:         &lte.Client{ID: 700, Pos: geo.Point{X: 90, Y: 0}, TxPowerDBm: 20},
		}
	}

	// Two independent legs: the ON/OFF interference timeline and the
	// clean-channel false-positive scan. Each leg owns a CQI reporter
	// on a seed-derived stream, so the fleet is order independent.
	type fig8Timeline struct {
		tputSeries, cqiSeries      [][2]float64
		detectedEpisodes, episodes int
		fpSamples, cleanSamples    int
	}
	legs := []leg[fig8Timeline]{
		{label: "fig8/timeline", seed: seed, run: func(c *runner.Ctx) fig8Timeline {
			r := rig()
			reporter := lte.NewCQIReporter(0.05, rand.New(rand.NewSource(seed)))
			detector := core.NewInterferenceDetector(500)
			var out fig8Timeline
			var fpOnsets int
			inEpisode, episodeHit, prevTrip := false, false, false
			for t := int64(0); t < totalMS; t += sampleEveryMS {
				if onAt(t) {
					r.interferer.Activity = lte.FullBuffer
				} else {
					r.interferer.Activity = lte.Off
				}
				if on := onAt(t); on != inEpisode {
					if on {
						out.episodes++
						episodeHit = false
					} else if episodeHit {
						out.detectedEpisodes++
					}
					inEpisode = on
				}
				sinr := r.env.DownlinkSINR(r.serving, r.ifs, r.cl, 6, t)
				rep := reporter.Report([]float64{sinr})
				cqi := rep.Subband[0]
				tput := lte.SubchannelRateBps(lte.BW5MHz, lte.TDDConfig4, 6, cqi) *
					float64(lte.BW5MHz.Subchannels()) / 1e6
				if t%50 == 0 { // decimate for the plotted series
					out.tputSeries = append(out.tputSeries, [2]float64{float64(t) / 1000, tput})
					out.cqiSeries = append(out.cqiSeries, [2]float64{float64(t) / 1000, float64(cqi)})
				}
				trip := detector.Observe(cqi)
				if trip && !prevTrip {
					if inEpisode {
						episodeHit = true
					} else {
						fpOnsets++
					}
				}
				prevTrip = trip
			}
			if inEpisode && episodeHit {
				out.detectedEpisodes++
			}
			addSteps(c, int(totalMS/sampleEveryMS))
			return out
		}},
		// False-positive rate per sample on a clean channel (fresh
		// detector, no interferer), matching the paper's metric of <2%
		// of samples.
		{label: "fig8/clean", seed: seed + 1, run: func(c *runner.Ctx) fig8Timeline {
			r := rig()
			reporter := lte.NewCQIReporter(0.05, rand.New(rand.NewSource(seed+1)))
			cleanDetector := core.NewInterferenceDetector(500)
			r.interferer.Activity = lte.Off
			var out fig8Timeline
			for t := int64(0); t < totalMS; t += sampleEveryMS {
				sinr := r.env.DownlinkSINR(r.serving, r.ifs, r.cl, 6, t+777777)
				rep := reporter.Report([]float64{sinr})
				if cleanDetector.Observe(rep.Subband[0]) {
					out.fpSamples++
				}
				out.cleanSamples++
			}
			addSteps(c, int(totalMS/sampleEveryMS))
			return out
		}},
	}
	runs := fleet("fig8", legs)
	timeline, clean := runs[0], runs[1]
	tputSeries, cqiSeries := timeline.tputSeries, timeline.cqiSeries
	detectedEpisodes, episodes := timeline.detectedEpisodes, timeline.episodes
	fpSamples, cleanSamples := clean.fpSamples, clean.cleanSamples

	detRate := 0.0
	if episodes > 0 {
		detRate = float64(detectedEpisodes) / float64(episodes)
	}
	fpRate := float64(fpSamples) / float64(cleanSamples)

	t := &stats.Table{
		Title:   "Figure 8: CQI interference detector",
		Headers: []string{"Metric", "Paper", "Measured"},
	}
	t.AddRow("Detection rate (strong interference)", "~80%", stats.Fmt(detRate*100)+"%")
	t.AddRow("False positives (clean fading channel)", "< 2%", stats.Fmt(fpRate*100)+"%")
	t.AddRow("Interference episodes", "-", stats.Fmt(float64(episodes)))

	return Result{
		ID:     "fig8",
		Title:  "Figure 8: PHY throughput and CQI under ON/OFF interference",
		Tables: []*stats.Table{t},
		Series: []stats.Series{
			{Name: "fig8: PHY throughput (Mbps) vs time (s)", Points: tputSeries},
			{Name: "fig8: reported CQI vs time (s)", Points: cqiSeries},
		},
		Notes: []string{
			note("detector caught %d/%d interference episodes (paper: ~80%% of strong interference)", detectedEpisodes, episodes),
			note("false-positive rate %.2f%% on the clean fading channel (paper: < 2%%)", fpRate*100),
			note("CQI drops track the interferer's ON periods; deep fades without interference do not trip the detector (run-length rule)"),
		},
	}
}
