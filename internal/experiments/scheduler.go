package experiments

import (
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/runner"
	"cellfi/internal/stats"
)

func init() { register("sched", SchedulerAblation) }

// SchedulerAblation exercises the claim behind Section 4.3 — that the
// unmodified LTE scheduler composes with CellFi's subchannel grants —
// at subframe granularity: a single cell with mixed-distance clients
// runs two seconds of per-millisecond scheduling under proportional
// fair and round robin, over the full carrier and over a CellFi-style
// 5-subchannel grant. PF's multi-user diversity gain and the grant's
// proportional rate cut are the expected signatures.
func SchedulerAblation(seed int64, quick bool) Result {
	dur := 2 * time.Second
	seeds := 3
	if quick {
		dur = 500 * time.Millisecond
		seeds = 1
	}
	dists := []float64{200, 500, 800, 1100}

	run := func(c *runner.Ctx, sched lte.Scheduler, allowed []int, s int64) (total int64, min int64, bler float64) {
		eng := fleetEngine(c, s)
		env := lte.NewEnvironment(s)
		env.Model.ShadowSigmaDB = 0
		cell := &lte.Cell{
			ID: 1, Pos: geo.Point{}, TxPowerDBm: 30,
			BW: lte.BW5MHz, TDD: lte.TDDConfig4, Activity: lte.FullBuffer,
		}
		var clients []*lte.Client
		for i, d := range dists {
			clients = append(clients, &lte.Client{ID: 100 + i, Pos: geo.Point{X: d}, TxPowerDBm: 20})
		}
		cs := lte.NewCellSim(eng, env, cell, clients)
		cs.Sched = sched
		cs.Allowed = allowed
		cs.Start()
		for _, c := range clients {
			cs.Backlog(c.ID, 1<<40)
		}
		eng.Run(dur)
		min = 1 << 62
		for _, c := range clients {
			b := cs.DeliveredBits(c.ID)
			total += b
			if b < min {
				min = b
			}
		}
		return total, min, cs.FirstTxBLER()
	}

	grant := []int{2, 5, 7, 9, 11} // a CellFi-style 5-subchannel share

	type row struct {
		name    string
		sched   func() lte.Scheduler
		allowed []int
	}
	rows := []row{
		{"PF, full carrier", func() lte.Scheduler { return &lte.ProportionalFair{} }, nil},
		{"RR, full carrier", func() lte.Scheduler { return &lte.RoundRobin{} }, nil},
		{"PF, 5-subchannel grant", func() lte.Scheduler { return &lte.ProportionalFair{} }, grant},
		{"RR, 5-subchannel grant", func() lte.Scheduler { return &lte.RoundRobin{} }, grant},
	}
	t := &stats.Table{
		Title:   "Scheduler composition at subframe granularity (4 clients, 200-1100 m)",
		Headers: []string{"Configuration", "Cell Mbps", "Worst client Mbps", "First-tx BLER"},
	}
	// One leg per (configuration, seed); aggregate configuration-major.
	type schedRun struct {
		total, min int64
		bler       float64
	}
	var legs []leg[schedRun]
	for _, r := range rows {
		r := r
		for s := int64(0); s < int64(seeds); s++ {
			s := s
			legs = append(legs, leg[schedRun]{
				label: note("sched/%s/seed=%d", r.name, s),
				seed:  seed + s,
				run: func(c *runner.Ctx) schedRun {
					tt, mm, bb := run(c, r.sched(), r.allowed, c.Seed())
					return schedRun{total: tt, min: mm, bler: bb}
				},
			})
		}
	}
	runs := fleet("sched", legs)
	results := map[string][2]float64{}
	for ri, r := range rows {
		var total, min int64
		var bler float64
		for s := 0; s < seeds; s++ {
			sr := runs[ri*seeds+s]
			total += sr.total
			min += sr.min
			bler += sr.bler
		}
		secs := dur.Seconds() * float64(seeds)
		t.AddRow(r.name,
			stats.Fmt(float64(total)/secs/1e6),
			stats.Fmt(float64(min)/secs/1e6),
			stats.Fmt(bler/float64(seeds)))
		results[r.name] = [2]float64{float64(total) / secs / 1e6, float64(min) / secs / 1e6}
	}

	pfGain := results["PF, full carrier"][0] / maxf(results["RR, full carrier"][0], 1e-9)
	grantCut := results["PF, 5-subchannel grant"][0] / maxf(results["PF, full carrier"][0], 1e-9)
	return Result{
		ID:     "sched",
		Title:  "Section 4.3: the unmodified scheduler over CellFi grants",
		Tables: []*stats.Table{t},
		Notes: []string{
			note("proportional fair carries %.2fx round robin's cell throughput via sub-band diversity", pfGain),
			note("a 5/13-subchannel CellFi grant delivers %.0f%% of the full carrier — the scheduler simply works inside the granted set, as Section 4.3 requires", grantCut*100),
		},
	}
}
