package experiments

import (
	"math"
	"math/rand"

	"cellfi/internal/core"
	"cellfi/internal/netgraph"
	"cellfi/internal/runner"
	"cellfi/internal/stats"
)

func init() {
	register("theorem1", Theorem1)
	register("overhead", Overhead)
}

// Theorem1 validates the Section 5.5 convergence analysis empirically:
// the abstract hopping process converges, and its mean convergence
// time scales like M log n / ((1 - p) * gamma) — we sweep n, p and the
// demand slack gamma and report measured rounds next to the bound's
// shape.
func Theorem1(seed int64, quick bool) Result {
	trials := 60
	if quick {
		trials = 12
	}
	const m = 13

	mean := func(n int, p, budgetFrac float64, rng *rand.Rand) (float64, float64) {
		var sum, gammaSum float64
		for tr := 0; tr < trials; tr++ {
			g := netgraph.New(n)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if rng.Float64() < 3.0/float64(n) {
						g.AddEdge(i, j)
					}
				}
			}
			budget := int(budgetFrac * m)
			for v := 0; v < n; v++ {
				g.Demand[v] = 1 + rng.Intn(2)
			}
			for v := 0; v < n; v++ {
				for g.NeighborhoodDemand(v) > budget {
					maxU, maxD := v, g.Demand[v]
					for _, u := range g.Neighbors(v) {
						if g.Demand[u] > maxD {
							maxU, maxD = u, g.Demand[u]
						}
					}
					if g.Demand[maxU] <= 1 {
						break
					}
					g.Demand[maxU]--
				}
			}
			h := core.NewHopModel(g, m, p, rng)
			r, ok := h.RunToConvergence(200000)
			if !ok {
				r = 200000
			}
			sum += float64(r)
			gammaSum += g.Gamma(m)
		}
		return sum / float64(trials), gammaSum / float64(trials)
	}

	t := &stats.Table{
		Title:   "Theorem 1: measured convergence rounds vs the O(M log n / ((1-p) gamma)) bound shape",
		Headers: []string{"n", "p", "gamma (achieved)", "Mean rounds", "M*ln(n)/((1-p)*gamma)"},
	}
	var series [][2]float64
	type cfg struct {
		n         int
		p, budget float64
	}
	cases := []cfg{
		{6, 0, 0.8}, {12, 0, 0.8}, {24, 0, 0.8}, {48, 0, 0.8},
		{12, 0.3, 0.8}, {12, 0.6, 0.8},
		{12, 0, 0.95},
	}
	if quick {
		cases = []cfg{{6, 0, 0.8}, {24, 0, 0.8}, {12, 0.6, 0.8}}
	}
	// Each case owns a seed-derived random stream, so the cases fan out
	// as independent fleet legs.
	type caseRun struct{ rounds, gamma float64 }
	runs := trialFleet("theorem1", len(cases),
		func(i int) int64 { return seed + int64(i)*50021 },
		func(c *runner.Ctx, i int) caseRun {
			rng := rand.New(rand.NewSource(c.Seed()))
			r, gamma := mean(cases[i].n, cases[i].p, cases[i].budget, rng)
			addSteps(c, trials)
			return caseRun{rounds: r, gamma: gamma}
		})
	for i, c := range cases {
		r, gamma := runs[i].rounds, runs[i].gamma
		// Use the *achieved* mean slack after demand shrinking, not
		// the nominal budget, so the bound column is meaningful.
		bound := float64(m) * math.Log(float64(c.n)) / ((1 - c.p) * gamma)
		t.AddRow(stats.Fmt(float64(c.n)), stats.Fmt(c.p), stats.Fmt(gamma),
			stats.Fmt(r), stats.Fmt(bound))
		if c.p == 0 && c.budget == 0.8 {
			series = append(series, [2]float64{float64(c.n), r})
		}
	}

	return Result{
		ID:     "theorem1",
		Title:  "Theorem 1: convergence of the hopping process",
		Tables: []*stats.Table{t},
		Series: []stats.Series{{Name: "theorem1: mean rounds vs n (p=0)", Points: series}},
		Notes: []string{
			note("rounds grow logarithmically in n, inversely in (1-p), and inversely in the slack gamma — the Theorem 1 shape"),
		},
	}
}

// Overhead reports the CQI signalling overhead computation of Section
// 6.3.4: a mode 3-0 report is 20 bits every 2 ms = 10 kbps of uplink.
func Overhead(seed int64, quick bool) Result {
	t := &stats.Table{
		Title:   "Signalling overheads",
		Headers: []string{"Mechanism", "Paper", "Computed"},
	}
	t.AddRow("CQI mode 3-0 uplink overhead", "10 kbps",
		stats.Fmt(coreCQIOverheadKbps())+" kbps")
	t.AddRow("PRACH solicitation period", "1 s", "1 s")
	t.AddRow("IM epoch", "1 s", "1 s")
	return Result{
		ID:     "overhead",
		Title:  "Section 6.3.4: overheads of signalling",
		Tables: []*stats.Table{t},
		Notes:  []string{note("20-bit report every 2 ms = 10 kbps on the uplink, as the paper computes")},
	}
}
