package experiments

import (
	"math/rand"
	"time"

	"cellfi/internal/lte"
	"cellfi/internal/runner"
	"cellfi/internal/stats"
)

func init() { register("prach", PRACH) }

// PRACH reproduces the Section 6.3.3 evaluation of the low-complexity
// PRACH detector: detection probability versus SNR (reliable at
// -10 dB), false alarms on noise, agreement with the conventional
// detector, and the speed-versus-line-rate factor (the paper reports
// 16x on an Intel i7 for a 10 MHz channel).
func PRACH(seed int64, quick bool) Result {
	trials := 200
	if quick {
		trials = 40
	}

	// One fleet leg per SNR point plus a noise-only false-alarm leg.
	// Each leg owns its detector and random stream.
	snrs := []float64{-24, -20, -16, -13, -10, -6, 0}
	counts := trialFleet("prach", len(snrs)+1,
		func(i int) int64 { return seed + int64(i)*9973 },
		func(c *runner.Ctx, i int) int {
			rng := rand.New(rand.NewSource(c.Seed()))
			det := lte.NewFastDetector(25)
			hits := 0
			for tr := 0; tr < trials; tr++ {
				var rx []complex128
				if i < len(snrs) {
					tx := lte.GeneratePreamble(lte.Preamble{Root: 25, Shift: rng.Intn(lte.PRACHSequenceLength)})
					rx = lte.AddAWGN(rng, tx, snrs[i])
				} else {
					rx = lte.AddAWGN(rng, make([]complex128, lte.PRACHSequenceLength), 0)
				}
				if det.Detect(rx).Detected {
					hits++
				}
			}
			addSteps(c, trials)
			return hits
		})

	t := &stats.Table{
		Title:   "PRACH detector: detection probability vs SNR",
		Headers: []string{"SNR (dB)", "Detection rate"},
	}
	var series [][2]float64
	rateAt := map[float64]float64{}
	for i, snr := range snrs {
		r := float64(counts[i]) / float64(trials)
		rateAt[snr] = r
		t.AddRow(stats.Fmt(snr), stats.Fmt(r))
		series = append(series, [2]float64{snr, r})
	}
	fa := counts[len(snrs)] // false alarms on pure noise

	// Speed: windows per second for the fast and naive detectors; the
	// line rate is one 839-sample preamble window per 0.8 ms. Timing is
	// wall clock, so it stays out of the fleet.
	rng := rand.New(rand.NewSource(seed))
	det := lte.NewFastDetector(25)
	rx := lte.AddAWGN(rng, lte.GeneratePreamble(lte.Preamble{Root: 25, Shift: 42}), -10)
	timeIt := func(f func()) time.Duration {
		n := 20
		if quick {
			n = 5
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		return time.Since(start) / time.Duration(n)
	}
	fastPer := timeIt(func() { det.Detect(rx) })
	naivePer := timeIt(func() { lte.DetectPreambleNaive(rx, 25) })
	const lineWindow = 800 * time.Microsecond
	fastFactor := float64(lineWindow) / float64(fastPer)
	naiveFactor := float64(lineWindow) / float64(naivePer)

	t2 := &stats.Table{
		Title:   "PRACH detector: complexity",
		Headers: []string{"Detector", "Per window", "x line rate"},
	}
	t2.AddRow("modified (2-correlation, FFT)", fastPer.String(), stats.Fmt(fastFactor))
	t2.AddRow("conventional (time-domain)", naivePer.String(), stats.Fmt(naiveFactor))

	return Result{
		ID:     "prach",
		Title:  "Section 6.3.3: PRACH preamble detection",
		Tables: []*stats.Table{t, t2},
		Series: []stats.Series{{Name: "prach: detection rate vs SNR", Points: series}},
		Notes: []string{
			note("detection at -10 dB SNR: %.0f%% (paper: reliable at -10 dB)", rateAt[-10]*100),
			note("%d/%d false alarms on pure noise", fa, trials),
			note("modified detector runs %.1fx line rate vs the conventional detector's %.1fx (paper: 16x on an i7; the ratio between detectors is the architecture-independent claim: %.1fx)",
				fastFactor, naiveFactor, float64(naivePer)/float64(fastPer)),
		},
	}
}
