package experiments

import (
	"fmt"
	"net/http/httptest"
	"time"

	"cellfi/internal/core"
	"cellfi/internal/geo"
	"cellfi/internal/paws"
	"cellfi/internal/runner"
	"cellfi/internal/spectrum"
	"cellfi/internal/stats"
)

func init() { register("fig6", Figure6) }

// Figure6 reproduces the spectrum-database interaction experiment of
// Section 6.2 over the real PAWS wire protocol: at t=57 s the channel
// is removed from the database for 5 minutes; the AP must stop
// transmitting within the ETSI one-minute budget (the paper measures
// 2 s); when the channel returns, the AP reboots its radio (measured
// 1 m 36 s) and the client performs multi-band cell search (measured
// 56 s) before traffic resumes.
func Figure6(seed int64, quick bool) Result {
	// A single scripted timeline: one fleet leg, so the campaign report
	// still carries its wall time and poll count.
	runs := fleet("fig6", []leg[Result]{
		{label: "fig6/timeline", seed: seed, run: figure6Timeline},
	})
	return runs[0]
}

func figure6Timeline(cx *runner.Ctx) Result {
	t0 := time.Date(2017, 12, 12, 9, 0, 0, 0, time.UTC)
	now := t0
	reg := spectrum.NewRegistry(spectrum.EU)
	srv := paws.NewServer(reg)
	srv.Now = func() time.Time { return now }
	hs := httptest.NewServer(srv)
	defer hs.Close()

	apPos := geo.Point{X: 100, Y: 100}
	sel := core.NewChannelSelector(paws.NewClient(hs.URL, "AP-FIG6"), apPos, 15)

	type event struct {
		at   time.Duration
		what string
	}
	var timeline []event
	mark := func(what string) { timeline = append(timeline, event{now.Sub(t0), what}) }

	// t=0: AP acquires a channel and serves traffic.
	if _, err := sel.Refresh(now); err != nil {
		return Result{ID: "fig6", Title: "Figure 6 (failed)", Notes: []string{err.Error()}}
	}
	ch := sel.Current().Channel
	mark(fmt.Sprintf("AP on channel %d, client passing traffic", ch))

	// t=57 s: the channel is removed from the database for 5 minutes.
	// The paper's AP has a single operating channel, so we model the
	// event as a wide-band incumbent (e.g. a wireless-mic production)
	// covering every channel — the AP must go dark rather than switch.
	revokeAt := 57 * time.Second
	srv.Lock()
	for _, c := range spectrum.EU.Channels() {
		_ = reg.AddIncumbent(spectrum.Incumbent{
			Kind: spectrum.WirelessMic, Channel: c, Location: apPos,
			ProtectRadius: 3000,
			From:          t0.Add(revokeAt), To: t0.Add(revokeAt + 5*time.Minute),
		})
	}
	srv.Unlock()

	// The AP polls the database every second (the paper's client).
	var apOffAt, apOnAt, clientOnAt time.Duration
	step := time.Second
	horizon := 12 * time.Minute
	apRadioOn := true
	var channelBackAt time.Duration
	for now = t0; now.Sub(t0) < horizon; now = now.Add(step) {
		act, _ := sel.Refresh(now)
		switch act {
		case core.Vacated, core.Switched:
			if apRadioOn {
				// The measured stack takes 2 s from DB change to
				// radio off (Figure 6).
				apOffAt = now.Sub(t0) + core.MeasuredVacateDelay - time.Second
				apRadioOn = false
				mark("channel removed from DB")
				timeline = append(timeline, event{apOffAt, "AP radio off, client stops transmitting"})
			}
		case core.Acquired:
			if !apRadioOn {
				channelBackAt = now.Sub(t0)
				mark("channel back in DB; AP reboots radio")
				apOnAt = channelBackAt + core.MeasuredAPRebootDelay
				clientOnAt = apOnAt + core.MeasuredClientReconnectDelay
				apRadioOn = true
			}
		}
		if clientOnAt > 0 && now.Sub(t0) >= clientOnAt {
			break
		}
	}
	if apOnAt > 0 {
		timeline = append(timeline, event{apOnAt, "AP radio up after reboot"})
		timeline = append(timeline, event{clientOnAt, "client reconnected, traffic resumes"})
	}
	addSteps(cx, int(now.Sub(t0)/step)) // one step per database poll

	t := &stats.Table{
		Title:   "Figure 6: spectrum database interaction timeline",
		Headers: []string{"t", "Event"},
	}
	for _, e := range timeline {
		t.AddRow(e.at.String(), e.what)
	}
	cmp := &stats.Table{
		Title:   "Figure 6: paper vs measured delays",
		Headers: []string{"Interval", "Paper", "Measured"},
	}
	vacateDelay := apOffAt - revokeAt
	cmp.AddRow("DB change -> radio off", "2 s", vacateDelay.String())
	cmp.AddRow("ETSI deadline", "60 s", "met: "+fmt.Sprint(vacateDelay <= core.VacateDeadline))
	cmp.AddRow("AP reboot", "1m36s", core.MeasuredAPRebootDelay.String())
	cmp.AddRow("Client reconnect", "56 s", core.MeasuredClientReconnectDelay.String())
	cmp.AddRow("Total outage", "~7m34s", (clientOnAt - apOffAt).String())

	return Result{
		ID:     "fig6",
		Title:  "Figure 6: spectrum database vacate/reacquire cycle",
		Tables: []*stats.Table{t, cmp},
		Notes: []string{
			note("vacated %v after the channel left the database (ETSI budget 60 s, paper measured 2 s)", vacateDelay),
			note("client traffic resumed %v after the outage began (paper: 17m34s end-to-end including the 5-minute revocation)", clientOnAt-apOffAt),
		},
	}
}
