package experiments

import (
	"math"

	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/phy"
	"cellfi/internal/propagation"
	"cellfi/internal/runner"
	"cellfi/internal/stats"
)

func init() { register("fig7", Figure7) }

// Figure7 reproduces the outdoor two-cell interference experiment of
// Section 6.3.1: a serving and an interfering E40 cell on a rooftop,
// a client walked along a path whose SINR spans -15..+30 dB. Three
// conditions: interferer off, interferer on but idle (signalling
// only), interferer fully backlogged. The metric is goodput in bits
// per modulation symbol: coding_rate * modulation_bits * (1 - BLER).
func Figure7(seed int64, quick bool) Result {
	step := 8.0
	blocks := 10
	if quick {
		step = 25
		blocks = 4
	}

	var dists []float64
	for d := 30.0; d <= 1250; d += step {
		dists = append(dists, d)
	}

	// One fleet leg per path position. Each leg owns its cells (the
	// interferer's Activity toggles during measurement) and its
	// environment; the hash-based fading makes legs bit-identical to
	// the sequential walk.
	type fig7Loc struct {
		bOff, bSig  [][2]float64
		cSig, cFull []float64
		disconnects int
		points      int
	}
	goodput := func(sinr float64, factor float64) float64 {
		cqi := phy.LTECQIFromSINR(sinr)
		if cqi == 0 {
			return 0
		}
		return lte.GoodputBitsPerSymbol(cqi, phy.BLER(sinr, phy.LTECQI(cqi))) * factor
	}
	locs := trialFleet("fig7", len(dists),
		func(i int) int64 { return seed },
		func(c *runner.Ctx, i int) fig7Loc {
			env := lte.NewEnvironment(seed)
			// The serving cell's sector points down the walk; the
			// interfering cell sits far beyond the path end with its
			// sector pointing back at it. Walking outward, the serving
			// signal weakens while the interference strengthens —
			// reproducing the paper's -15..+30 dB SINR spread with the
			// worst conditions at the path end, exactly as their
			// Figure 7(a) rooftop geometry behaves.
			serving := &lte.Cell{
				ID: 1, Pos: geo.Point{X: 0, Y: 0}, TxPowerDBm: 23,
				Antenna: propagation.Sector(0), BW: lte.BW5MHz, TDD: lte.TDDConfig4,
				Activity: lte.FullBuffer,
			}
			interferer := &lte.Cell{
				ID: 2, Pos: geo.Point{X: 2300, Y: 80}, TxPowerDBm: 23,
				Antenna: propagation.Sector(3.14159), BW: lte.BW5MHz, TDD: lte.TDDConfig4,
			}
			ifs := []*lte.Cell{interferer}
			var out fig7Loc
			pos := geo.Point{X: dists[i], Y: 0}
			cl := &lte.Client{ID: 500, Pos: pos, TxPowerDBm: 20}
			for b := 0; b < blocks; b++ {
				tMS := int64(b) * 100
				rssi := env.DownlinkRSSI(serving, cl, tMS)

				// Off: pure SNR.
				interferer.Activity = lte.Off
				offSINR := env.DownlinkSINR(serving, ifs, cl, 6, tMS)
				gOff := goodput(offSINR, 1)

				// Signalling only: same data SINR, punctured goodput.
				interferer.Activity = lte.SignallingOnly
				sigFactor := env.PuncturedGoodputFactor(serving, ifs, cl, 6, tMS)
				gSig := goodput(offSINR, sigFactor)

				// Full buffer: collapsed SINR.
				interferer.Activity = lte.FullBuffer
				fullSINR := env.DownlinkSINR(serving, ifs, cl, 6, tMS)
				gFull := goodput(fullSINR, env.PuncturedGoodputFactor(serving, ifs, cl, 6, tMS))

				out.bOff = append(out.bOff, [2]float64{rssi, gOff})
				out.bSig = append(out.bSig, [2]float64{rssi, gSig})
				out.points++

				// Figure 7(c) conditions on the weak-signal region of the
				// path (SINR below 10 dB — at the far end the client has
				// left the serving sector, so its signal is weak with or
				// without interference). As in the paper, disconnections
				// are counted but not included in the goodput CDFs — "we
				// cannot register goodput during these intervals".
				if offSINR < 10 {
					if phy.LTECQIFromSINR(fullSINR) == 0 {
						out.disconnects++
					} else {
						out.cSig = append(out.cSig, gSig)
						out.cFull = append(out.cFull, gFull)
					}
				}
			}
			addSteps(c, blocks)
			return out
		})

	// Series (b): goodput vs RSSI for off vs signalling-only.
	var bOff, bSig [][2]float64
	// Series (c): goodput CDFs where SINR < 10 dB, signalling vs full.
	var cSig, cFull []float64
	disconnects := 0
	points := 0
	for _, loc := range locs {
		bOff = append(bOff, loc.bOff...)
		bSig = append(bSig, loc.bSig...)
		cSig = append(cSig, loc.cSig...)
		cFull = append(cFull, loc.cFull...)
		disconnects += loc.disconnects
		points += loc.points
	}

	// Summary statistics for the paper's claims.
	var worstSigLoss, meanSigLoss float64
	for i := range bOff {
		if bOff[i][1] <= 0 {
			continue
		}
		loss := 1 - bSig[i][1]/bOff[i][1]
		meanSigLoss += loss
		if loss > worstSigLoss {
			worstSigLoss = loss
		}
	}
	meanSigLoss /= float64(len(bOff))
	sigCDF, fullCDF := stats.NewCDF(cSig), stats.NewCDF(cFull)
	medianReduction := 0.0
	if sigCDF.Median() > 0 {
		medianReduction = 1 - fullCDF.Median()/sigCDF.Median()
	}

	t := &stats.Table{
		Title:   "Figure 7: control vs data interference (goodput in bit/symbol)",
		Headers: []string{"Metric", "Paper", "Measured"},
	}
	t.AddRow("Worst signalling-only goodput loss", "<= 20%", stats.Fmt(worstSigLoss*100)+"%")
	t.AddRow("Mean signalling-only loss", "much less", stats.Fmt(meanSigLoss*100)+"%")
	t.AddRow("Median goodput loss, full vs signalling (SINR<10dB)", "up to 50%", stats.Fmt(medianReduction*100)+"%")
	t.AddRow("Disconnections under full interference", "frequent at path end",
		stats.Fmt(float64(disconnects)))

	return Result{
		ID:     "fig7",
		Title:  "Figure 7: LTE interference experiment",
		Tables: []*stats.Table{t},
		Series: []stats.Series{
			{Name: "fig7b: goodput vs RSSI, no interference", Points: bOff},
			{Name: "fig7b: goodput vs RSSI, signalling interference", Points: bSig},
			cdfSeries("fig7c: goodput CDF, signalling-only (SINR<10dB)", cSig, 41),
			cdfSeries("fig7c: goodput CDF, full interference (SINR<10dB)", cFull, 41),
		},
		Notes: []string{
			note("signalling-only interference costs at most %.0f%% goodput (paper: <= 20%%)", math.Ceil(worstSigLoss*100)),
			note("full data interference cuts median goodput by %.0f%% in the weak-signal region and causes %d disconnection samples (paper: up to 50%% reductions and frequent disconnects at the path end)",
				medianReduction*100, disconnects),
		},
	}
}
