package experiments

import (
	"context"
	"fmt"
	"sync"

	"cellfi/internal/runner"
	"cellfi/internal/sim"
)

// Experiment fleets: every trial loop in this package fans out through
// internal/runner. Each leg derives all randomness from its own seed,
// and legs are aggregated in spec order, so experiment output is
// bit-identical for any worker count (parallel_test.go enforces this).

var (
	fleetMu       sync.Mutex
	fleetWorkers  int // 0 = GOMAXPROCS
	fleetProgress func(runner.Progress)
	fleetReports  []*runner.Report
)

// SetWorkers bounds the worker pool used by experiment fleets
// (cmd/experiments -workers). Zero restores the GOMAXPROCS default.
func SetWorkers(n int) {
	fleetMu.Lock()
	fleetWorkers = n
	fleetMu.Unlock()
}

// SetProgress installs a callback observing every fleet run (used by
// cmd/experiments -v). Pass nil to disable.
func SetProgress(fn func(runner.Progress)) {
	fleetMu.Lock()
	fleetProgress = fn
	fleetMu.Unlock()
}

// DrainReports returns the telemetry reports of every campaign run
// since the previous call, oldest first.
func DrainReports() []*runner.Report {
	fleetMu.Lock()
	defer fleetMu.Unlock()
	out := fleetReports
	fleetReports = nil
	return out
}

func fleetOptions() runner.Options {
	fleetMu.Lock()
	defer fleetMu.Unlock()
	return runner.Options{Workers: fleetWorkers, OnProgress: fleetProgress}
}

func recordReport(rep *runner.Report) {
	fleetMu.Lock()
	fleetReports = append(fleetReports, rep)
	fleetMu.Unlock()
}

// leg is one unit of an experiment fleet.
type leg[T any] struct {
	label string
	seed  int64
	run   func(c *runner.Ctx) T
}

// fleet runs the legs through the shared pool and returns their values
// in leg order. A failed leg aborts the experiment by panicking — the
// sequential code had no partial-trial semantics and silent gaps would
// skew aggregated statistics — but only after every other leg has
// finished, so the failure report names the exact scenario and seed.
func fleet[T any](campaign string, legs []leg[T]) []T {
	specs := make([]runner.Spec, len(legs))
	for i := range legs {
		l := legs[i]
		specs[i] = runner.Spec{
			Label: l.label,
			Seed:  l.seed,
			Run:   func(c *runner.Ctx) (any, error) { return l.run(c), nil },
		}
	}
	rep := runner.Run(context.Background(), campaign, specs, fleetOptions())
	recordReport(rep)
	vals, err := runner.Values[T](rep)
	if err != nil {
		panic(fmt.Sprintf("experiments: campaign %s: %v", campaign, err))
	}
	return vals
}

// fleetEngine returns a telemetry-tracked engine when running inside a
// fleet, or a plain engine when the scenario helper is called directly
// (tests, examples) with a nil Ctx.
func fleetEngine(c *runner.Ctx, seed int64) *sim.Engine {
	if c != nil {
		return c.Engine(seed)
	}
	return sim.NewEngine(seed)
}

// addSteps accounts coarse work (fluid-simulator epochs) when inside a
// fleet; a no-op with a nil Ctx.
func addSteps(c *runner.Ctx, n int) {
	if c != nil {
		c.AddSteps(int64(n))
	}
}

// trialFleet is the common special case: n trials of one scenario,
// labelled by index, each seeded by seedOf.
func trialFleet[T any](campaign string, n int, seedOf func(tr int) int64, run func(c *runner.Ctx, tr int) T) []T {
	legs := make([]leg[T], n)
	for i := 0; i < n; i++ {
		tr := i
		legs[i] = leg[T]{
			label: fmt.Sprintf("%s/trial=%d", campaign, tr),
			seed:  seedOf(tr),
			run:   func(c *runner.Ctx) T { return run(c, tr) },
		}
	}
	return fleet(campaign, legs)
}
