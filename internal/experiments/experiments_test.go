package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig1", "fig2", "fig6", "fig7", "fig8",
		"prach", "fig9a", "fig9b", "fig9c", "theorem1", "overhead",
		"reuse", "lambda", "sensing", "hopping", "hybrid", "sched", "uplink", "aggregation", "mobility"}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
		if _, ok := Get(id); !ok {
			t.Errorf("Get(%q) failed", id)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get should fail for unknown IDs")
	}
}

// Every registered experiment must run in quick mode and produce
// non-degenerate output.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still takes tens of seconds")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			r, _ := Get(id)
			res := r(42, true)
			if res.ID != id {
				t.Fatalf("result ID %q != %q", res.ID, id)
			}
			if res.Title == "" {
				t.Fatal("empty title")
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range res.Tables {
				out := tb.String()
				if len(out) < 20 || !strings.Contains(out, "\n") {
					t.Fatalf("degenerate table: %q", out)
				}
			}
			for _, n := range res.Notes {
				t.Log(n)
			}
		})
	}
}

func TestTable1Properties(t *testing.T) {
	res := Table1(1, true)
	out := res.Tables[0].String()
	for _, want := range []string{"OFDMA", "CSMA", "Hybrid ARQ", "180 kHz"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

// Figure 1's headline calibration targets, in quick mode.
func TestFigure1Calibration(t *testing.T) {
	res := Figure1(7, true)
	// Range series: throughput must decay with distance overall.
	var pts [][2]float64
	for _, s := range res.Series {
		if strings.HasPrefix(s.Name, "fig1a") {
			pts = s.Points
		}
	}
	if len(pts) < 10 {
		t.Fatal("fig1a series too short")
	}
	nearAvg, farAvg := 0.0, 0.0
	n := len(pts)
	for _, p := range pts[:n/4] {
		nearAvg += p[1]
	}
	for _, p := range pts[3*n/4:] {
		farAvg += p[1]
	}
	nearAvg /= float64(n / 4)
	farAvg /= float64(n - 3*n/4)
	if nearAvg <= farAvg*2 {
		t.Fatalf("throughput does not decay with distance: near %.1f far %.1f", nearAvg, farAvg)
	}
	// The far quarter spans beyond 1.1 km and still shows life.
	if farAvg <= 0 {
		t.Fatal("network dead in the far quarter; range calibration broken")
	}
}

// Figure 6 timing must satisfy the ETSI deadline.
func TestFigure6ETSI(t *testing.T) {
	res := Figure6(1, true)
	joined := strings.Join(res.Notes, " ")
	if !strings.Contains(joined, "vacated") {
		t.Fatalf("figure 6 did not vacate: %v", res.Notes)
	}
	out := res.Tables[1].String()
	if !strings.Contains(out, "met: true") {
		t.Fatalf("ETSI deadline not met:\n%s", out)
	}
}

// The Figure 9b claims, in reduced form: CellFi starves fewer clients
// than both LTE and Wi-Fi.
func TestFigure9bDirections(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system simulation")
	}
	r := runFig9Trial(nil, 10, 6, 99, 12, 500000000, true) // 0.5 s Wi-Fi
	starve := func(th []float64) float64 {
		n := 0
		for _, v := range th {
			if v < StarveThresholdMbps {
				n++
			}
		}
		return float64(n) / float64(len(th))
	}
	cf, lte, wf := starve(r.cellfi), starve(r.lte), starve(r.wifi)
	if cf > lte {
		t.Errorf("CellFi starved %.2f > LTE %.2f", cf, lte)
	}
	if cf > wf {
		t.Errorf("CellFi starved %.2f > Wi-Fi %.2f", cf, wf)
	}
	if len(r.oracle) == 0 {
		t.Error("oracle arm missing")
	}
}
