package runner

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"cellfi/internal/shard"
)

// A run that drives shard clusters surfaces their telemetry: the widest
// cluster's shard count, summed windows and barrier stall, and per-shard
// utilization recomputed from the summed busy/wall nanoseconds.
func TestShardTelemetry(t *testing.T) {
	specs := []Spec{{
		Label: "sharded", Seed: 1,
		Run: func(c *Ctx) (any, error) {
			c.AddShardStats(shard.Stats{
				Shards:  2,
				Windows: 10,
				WallNS:  1_000_000,
				BusyNS:  []int64{600_000, 200_000},
				StallNS: []int64{100_000, 500_000},
			})
			c.AddShardStats(shard.Stats{
				Shards:  4,
				Windows: 6,
				WallNS:  1_000_000,
				BusyNS:  []int64{400_000, 400_000, 300_000, 100_000},
				StallNS: []int64{0, 0, 0, 400_000},
			})
			return "done", nil
		},
	}, {
		Label: "plain", Seed: 2,
		Run: func(c *Ctx) (any, error) { return "done", nil },
	}}
	rep := Run(context.Background(), "shard-telemetry", specs, Options{Workers: 1})
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}

	r := rep.Runs[0]
	if r.Shards != 4 {
		t.Fatalf("Shards = %d, want 4 (widest cluster)", r.Shards)
	}
	if r.ShardWindows != 16 {
		t.Fatalf("ShardWindows = %d, want 16", r.ShardWindows)
	}
	if r.ShardBarrierStallMS != 1.0 {
		t.Fatalf("ShardBarrierStallMS = %v, want 1.0", r.ShardBarrierStallMS)
	}
	want := []float64{0.5, 0.3, 0.15, 0.05}
	if len(r.ShardUtilization) != len(want) {
		t.Fatalf("ShardUtilization = %v, want %v", r.ShardUtilization, want)
	}
	for i, u := range r.ShardUtilization {
		if u != want[i] {
			t.Fatalf("ShardUtilization[%d] = %v, want %v", i, u, want[i])
		}
	}
	if plain := rep.Runs[1]; plain.Shards != 0 || plain.ShardUtilization != nil {
		t.Fatalf("engine-less run reports shard telemetry: %+v", plain)
	}

	// The serialized report pins the machine (num_cpu / go_max_procs —
	// benchdiff refuses cross-core speedup comparisons without them) and
	// carries the sharded run's fields while omitting them for the plain
	// run.
	if rep.NumCPU != runtime.NumCPU() || rep.GoMaxProcs != runtime.GOMAXPROCS(0) {
		t.Fatalf("NumCPU/GoMaxProcs = %d/%d, want %d/%d",
			rep.NumCPU, rep.GoMaxProcs, runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"num_cpu", "go_max_procs"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("report JSON missing %q", key)
		}
	}
	runs := decoded["runs"].([]any)
	sharded := runs[0].(map[string]any)
	for _, key := range []string{"shards", "shard_windows", "shard_utilization",
		"shard_barrier_stall_ms"} {
		if _, ok := sharded[key]; !ok {
			t.Errorf("sharded run JSON missing %q", key)
		}
	}
	plain := runs[1].(map[string]any)
	if _, ok := plain["shards"]; ok {
		t.Errorf("plain run JSON should omit \"shards\"")
	}
}
