package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"
)

// Status classifies how a run ended.
type Status string

const (
	// StatusOK: the scenario returned a value.
	StatusOK Status = "ok"
	// StatusFailed: the scenario returned an error or panicked.
	StatusFailed Status = "failed"
	// StatusCanceled: the campaign context was cancelled before the
	// run was claimed.
	StatusCanceled Status = "canceled"
)

// RunResult is the telemetry record of one scenario run.
type RunResult struct {
	Index  int    `json:"index"`
	Label  string `json:"label"`
	Seed   int64  `json:"seed"`
	Status Status `json:"status"`
	Err    string `json:"error,omitempty"`
	// WallMS is the run's wall-clock time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// SimEvents counts discrete events fired by the run's tracked
	// sim.Engines plus coarse steps recorded via Ctx.AddSteps.
	SimEvents int64 `json:"sim_events"`
	// SimClockMS is the total virtual time advanced by tracked
	// engines (plus Ctx.AddSimTime), in milliseconds.
	SimClockMS float64 `json:"sim_clock_ms"`
	// SimRealtimeFactor is SimClockMS / WallMS — how much faster than
	// the wall clock this run simulated. > 1 means faster than real
	// time; 0 when the run advanced no tracked virtual time.
	SimRealtimeFactor float64 `json:"sim_realtime_factor,omitempty"`
	// SimMaxPending is the deepest any tracked engine's event heap
	// got — the run's peak event concurrency.
	SimMaxPending int `json:"sim_max_pending,omitempty"`
	// SimEventSlots sums the event slots tracked engines allocated.
	// Slots recycle through a free list, so this is the engines'
	// steady-state event memory, not the event count; a run whose
	// slots stay near its pending depth schedules allocation-free.
	SimEventSlots int `json:"sim_event_slots,omitempty"`
	// TracePath is the run's flight-recorder stream on disk, present
	// only when the campaign captured traces (Options.TraceDir).
	TracePath string `json:"trace_path,omitempty"`
	// TraceRecords / TraceDropped count records captured and records
	// lost (spill-write failures) for the run's trace.
	TraceRecords int64 `json:"trace_records,omitempty"`
	TraceDropped int64 `json:"trace_dropped,omitempty"`
	// InvariantRecords counts records the online regulatory verifier
	// consumed (Options.Invariants); the remaining invariant_* fields
	// are present only when the run violated the catalog: the total
	// violation count, the rule, and the first violating record (its
	// stream index and stable dump form).
	InvariantRecords    int64  `json:"invariant_records,omitempty"`
	InvariantViolations int    `json:"invariant_violations,omitempty"`
	InvariantRule       string `json:"invariant_rule,omitempty"`
	InvariantIndex      int    `json:"invariant_index,omitempty"`
	InvariantRecord     string `json:"invariant_record,omitempty"`
	// Shard telemetry (Ctx.AddShardStats): shard count of the run's
	// widest cluster, conservative windows executed, per-shard busy
	// fraction of parallel wall time, and total time shards spent
	// parked at lockstep barriers.
	Shards              int       `json:"shards,omitempty"`
	ShardWindows        int64     `json:"shard_windows,omitempty"`
	ShardUtilization    []float64 `json:"shard_utilization,omitempty"`
	ShardBarrierStallMS float64   `json:"shard_barrier_stall_ms,omitempty"`
	// Value is the scenario's return value (not serialized).
	Value any `json:"-"`
}

// Report is the aggregate account of one campaign.
type Report struct {
	Campaign string    `json:"campaign"`
	Workers  int       `json:"workers"`
	Started  time.Time `json:"started"`
	// WallMS is the whole campaign's wall-clock time.
	WallMS   float64 `json:"wall_ms"`
	OK       int     `json:"ok"`
	Failed   int     `json:"failed"`
	Canceled int     `json:"canceled"`
	// TotalSimEvents sums SimEvents over all runs; EventsPerSec is
	// that total divided by campaign wall time — the fleet's
	// simulation throughput.
	TotalSimEvents int64   `json:"total_sim_events"`
	EventsPerSec   float64 `json:"sim_events_per_sec"`
	// SimRealtimeFactor is total virtual time over campaign wall time.
	// With parallel workers this measures fleet-level speedup (it can
	// exceed any single run's factor).
	SimRealtimeFactor float64 `json:"sim_realtime_factor,omitempty"`
	// PeakRSSMB is the process's peak resident set in MiB at report
	// finalization (ru_maxrss on Linux, the Go runtime's residency
	// estimate elsewhere) — the scale headroom signal for fleet sizing.
	PeakRSSMB float64 `json:"peak_rss_mb,omitempty"`
	// NumCPU / GoMaxProcs pin the machine the campaign ran on.
	// Throughput and speedup numbers are only comparable between
	// reports taken at the same core count; scripts/benchdiff.sh skips
	// speedup gates when they differ.
	NumCPU     int         `json:"num_cpu"`
	GoMaxProcs int         `json:"go_max_procs"`
	Runs       []RunResult `json:"runs"`
}

// finalize computes the aggregate counters from Runs.
func (r *Report) finalize() {
	r.OK, r.Failed, r.Canceled, r.TotalSimEvents = 0, 0, 0, 0
	var simClockMS float64
	for i := range r.Runs {
		switch r.Runs[i].Status {
		case StatusOK:
			r.OK++
		case StatusCanceled:
			r.Canceled++
		default:
			r.Failed++
		}
		r.TotalSimEvents += r.Runs[i].SimEvents
		simClockMS += r.Runs[i].SimClockMS
	}
	if r.WallMS > 0 {
		r.EventsPerSec = float64(r.TotalSimEvents) / (r.WallMS / 1000)
		r.SimRealtimeFactor = simClockMS / r.WallMS
	}
	r.PeakRSSMB = peakRSSMB()
	r.NumCPU = runtime.NumCPU()
	r.GoMaxProcs = runtime.GOMAXPROCS(0)
}

// Err returns an error describing the first unsuccessful run, or nil
// if every run completed.
func (r *Report) Err() error {
	for i := range r.Runs {
		if r.Runs[i].Status != StatusOK {
			return fmt.Errorf("run %d (%s) %s: %s",
				r.Runs[i].Index, r.Runs[i].Label, r.Runs[i].Status, r.Runs[i].Err)
		}
	}
	return nil
}

// RawValues returns every run's value in spec order. Failed or
// canceled runs contribute their zero value (nil).
func (r *Report) RawValues() []any {
	out := make([]any, len(r.Runs))
	for i := range r.Runs {
		out[i] = r.Runs[i].Value
	}
	return out
}

// Values returns every run's value in spec order, asserted to T.
// It fails if any run did not succeed — callers that tolerate partial
// campaigns should walk Runs directly.
func Values[T any](r *Report) ([]T, error) {
	if err := r.Err(); err != nil {
		return nil, err
	}
	out := make([]T, len(r.Runs))
	for i := range r.Runs {
		v, ok := r.Runs[i].Value.(T)
		if !ok {
			return nil, fmt.Errorf("run %d (%s): value is %T, not %T",
				i, r.Runs[i].Label, r.Runs[i].Value, *new(T))
		}
		out[i] = v
	}
	return out, nil
}

// WriteJSON serializes the report (indented) to path.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: encode report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Merge combines several campaign reports into one named campaign —
// the shape cmd/experiments writes when a session spans many fleets.
// Wall time is summed (campaigns ran back to back), workers is the
// maximum, and runs are concatenated with indices rebased.
func Merge(name string, reps ...*Report) (*Report, error) {
	if len(reps) == 0 {
		return nil, errors.New("runner: merge of zero reports")
	}
	out := &Report{Campaign: name, Started: reps[0].Started}
	for _, rp := range reps {
		if rp.Workers > out.Workers {
			out.Workers = rp.Workers
		}
		if rp.Started.Before(out.Started) {
			out.Started = rp.Started
		}
		out.WallMS += rp.WallMS
		for _, run := range rp.Runs {
			run.Index = len(out.Runs)
			out.Runs = append(out.Runs, run)
		}
	}
	out.finalize()
	return out, nil
}
