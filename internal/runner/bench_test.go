package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// cpuSpecs builds a CPU-bound fleet: each scenario drives a sim.Engine
// through `events` dispatches with seed-derived jitter — the shape of
// the Wi-Fi/LTE event simulations behind Figures 1, 2 and 9.
func cpuSpecs(n, events int) []Spec {
	specs := make([]Spec, n)
	for i := 0; i < n; i++ {
		specs[i] = Spec{
			Label: fmt.Sprintf("cpu/%02d", i),
			Seed:  int64(i)*2654435761 + 1,
			Run: func(c *Ctx) (any, error) {
				eng := c.Engine(c.Seed())
				rng := eng.NewStream("bench")
				sum, fired := 0.0, 0
				var tick func()
				tick = func() {
					sum += rng.Float64()
					fired++
					if fired < events {
						eng.After(time.Duration(1+rng.Intn(100))*time.Microsecond, tick)
					}
				}
				eng.After(0, tick)
				eng.RunAll()
				return sum, nil
			},
		}
	}
	return specs
}

// latencySpecs builds a latency-bound fleet: each scenario waits on a
// fixed external delay — the shape of PAWS database campaigns, where a
// run blocks on HTTP round trips rather than the CPU.
func latencySpecs(n int, d time.Duration) []Spec {
	specs := make([]Spec, n)
	for i := 0; i < n; i++ {
		specs[i] = Spec{
			Label: fmt.Sprintf("latency/%02d", i),
			Seed:  int64(i),
			Run: func(c *Ctx) (any, error) {
				select {
				case <-time.After(d):
				case <-c.Context().Done():
					return nil, c.Context().Err()
				}
				c.AddSteps(1)
				return float64(c.Seed()), nil
			},
		}
	}
	return specs
}

// BenchmarkFleet reports campaign wall time per worker count; on a
// multi-core machine the CPU-bound fleet scales near-linearly until
// workers exceed cores.
func BenchmarkFleet(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := Run(context.Background(), "bench", cpuSpecs(32, 2000),
					Options{Workers: workers})
				if err := rep.Err(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchArtifact is the schema of BENCH_runner.json: the committed
// perf-trajectory baseline for the fleet executor.
type benchArtifact struct {
	Generated   time.Time `json:"generated"`
	GoMaxProcs  int       `json:"go_max_procs"`
	NumCPU      int       `json:"num_cpu"`
	GoVersion   string    `json:"go_version"`
	Description string    `json:"description"`
	// Speedups are 1-worker wall time divided by 8-worker wall time
	// for a 32-scenario campaign of each shape.
	CPUBoundSpeedup8W     float64 `json:"cpu_bound_speedup_8w"`
	LatencyBoundSpeedup8W float64 `json:"latency_bound_speedup_8w"`
	// EngineEventsPerSec is single-run dispatch throughput measured by
	// the CPU campaign (TotalSimEvents / sum of run wall times).
	EngineEventsPerSec float64   `json:"engine_events_per_sec"`
	Campaigns          []*Report `json:"campaigns"`
}

// TestCampaignSpeedup runs the acceptance campaign: 32 scenarios, 1
// worker vs 8 workers, byte-identical results, and a >= 3x wall-clock
// speedup with 8 workers (CPU-bound on machines with >= 4 cores, and
// always for the latency-bound fleet). With RUNNER_BENCH_OUT set it
// also writes the BENCH_runner.json artifact.
func TestCampaignSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second timing campaign")
	}
	const fleet = 32

	// Latency-bound: speedup must appear on any machine.
	lat1 := Run(context.Background(), "latency-1w", latencySpecs(fleet, 40*time.Millisecond), Options{Workers: 1})
	lat8 := Run(context.Background(), "latency-8w", latencySpecs(fleet, 40*time.Millisecond), Options{Workers: 8})
	if err := lat1.Err(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aggregate(t, lat1), aggregate(t, lat8)) {
		t.Fatal("latency fleet results differ across worker counts")
	}
	latSpeedup := lat1.WallMS / lat8.WallMS
	if latSpeedup < 3 {
		t.Errorf("latency-bound speedup %.2fx with 8 workers, want >= 3x", latSpeedup)
	}

	// CPU-bound: near-linear only with real cores under it.
	cpu1 := Run(context.Background(), "cpu-1w", cpuSpecs(fleet, 20000), Options{Workers: 1})
	cpu8 := Run(context.Background(), "cpu-8w", cpuSpecs(fleet, 20000), Options{Workers: 8})
	if err := cpu8.Err(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aggregate(t, cpu1), aggregate(t, cpu8)) {
		t.Fatal("cpu fleet results differ across worker counts")
	}
	cpuSpeedup := cpu1.WallMS / cpu8.WallMS
	if runtime.NumCPU() >= 4 && cpuSpeedup < 3 {
		t.Errorf("cpu-bound speedup %.2fx with 8 workers on %d cores, want >= 3x",
			cpuSpeedup, runtime.NumCPU())
	}
	t.Logf("speedups with 8 workers on %d cores: cpu-bound %.2fx, latency-bound %.2fx",
		runtime.NumCPU(), cpuSpeedup, latSpeedup)

	out := os.Getenv("RUNNER_BENCH_OUT")
	if out == "" {
		return
	}
	var runWallMS float64
	for _, r := range cpu1.Runs {
		runWallMS += r.WallMS
	}
	art := benchArtifact{
		Generated:  time.Now().UTC(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Description: "internal/runner fleet-executor baseline: a 32-scenario campaign " +
			"run with 1 and 8 workers. cpu campaigns drive sim.Engine event chains; " +
			"latency campaigns model database-bound scenarios (40 ms external wait each). " +
			"Speedup = wall(1 worker) / wall(8 workers); cpu-bound speedup tracks core " +
			"count, latency-bound speedup tracks worker count.",
		CPUBoundSpeedup8W:     cpuSpeedup,
		LatencyBoundSpeedup8W: latSpeedup,
		EngineEventsPerSec:    float64(cpu1.TotalSimEvents) / (runWallMS / 1000),
		Campaigns:             []*Report{cpu1, cpu8, lat1, lat8},
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
