// Package runner executes fleets of independent simulation scenarios —
// "campaigns" — across a bounded worker pool, with deterministic
// results, panic isolation and per-run telemetry.
//
// Every figure reproduction, parameter sweep and ablation in this repo
// is a set of independent deterministic runs: build a scenario from a
// seed, simulate, reduce. That is an embarrassingly parallel shape, so
// the runner fans a []Spec across workers (GOMAXPROCS by default) that
// claim work from a shared index — idle workers steal whatever spec is
// next, so an expensive run never serializes the rest of the fleet.
//
// Determinism: each Spec carries its own seed, scenario code derives
// all randomness from it (via Ctx.Engine or the seed directly), and
// results land in a slice indexed by spec order. Aggregated output is
// therefore bit-identical regardless of worker count or scheduling
// order; runner_test.go enforces this.
//
// Failure isolation: a panicking scenario is recorded as a failed run
// (with its stack) and the campaign continues. Cancelling the context
// stops workers from claiming new specs; already-running scenarios
// finish and runs never claimed are recorded as canceled.
//
// Telemetry: each run records wall time and the event counters of
// every sim.Engine it registered through its Ctx; Report aggregates
// them and serializes to JSON (see report.go and BENCH_runner.json).
package runner

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"cellfi/internal/invariant"
	"cellfi/internal/shard"
	"cellfi/internal/sim"
	"cellfi/internal/trace"
)

// Spec describes one scenario run: a label for telemetry, the seed all
// scenario randomness must derive from, and the scenario constructor/
// executor itself.
type Spec struct {
	// Label identifies the run in reports ("fig9a/aps=14/trial=2").
	Label string
	// Seed is the run's deterministic seed. The runner never touches
	// it; it is recorded in telemetry and exposed via Ctx.Seed.
	Seed int64
	// Run builds and executes the scenario. The returned value is
	// collected into the Report in spec order. Returning an error or
	// panicking marks the run failed without aborting the campaign.
	Run func(c *Ctx) (any, error)
}

// Ctx is the per-run context handed to a Spec's Run function. It wires
// scenario-internal simulation engines into the campaign telemetry and
// carries the cancellation signal. A Ctx is owned by one run; it is
// safe for use from goroutines the scenario itself spawns.
type Ctx struct {
	ctx   context.Context
	spec  *Spec
	index int
	opts  *Options

	mu         sync.Mutex
	engines    []*sim.Engine
	steps      int64
	simTime    time.Duration
	shardStats []shard.Stats

	traceRing *trace.Ring
	tracePath string
	traceErr  error

	checker *invariant.Checker
	rec     trace.Recorder
}

// Context returns the campaign's cancellation context.
func (c *Ctx) Context() context.Context { return c.ctx }

// Seed returns the spec's deterministic seed.
func (c *Ctx) Seed() int64 { return c.spec.Seed }

// Label returns the spec's label.
func (c *Ctx) Label() string { return c.spec.Label }

// Index returns the spec's position in the campaign.
func (c *Ctx) Index() int { return c.index }

// Engine creates a discrete-event engine seeded with seed and tracks
// it: its event counters are pulled into the run's telemetry after the
// scenario finishes. With trace capture on (Options.TraceDir) the
// engine's flight recorder is attached automatically.
func (c *Ctx) Engine(seed int64) *sim.Engine {
	e := sim.NewEngine(seed)
	c.mu.Lock()
	c.engines = append(c.engines, e)
	if r := c.recorderLocked(); r != nil {
		e.SetRecorder(r)
	}
	c.mu.Unlock()
	return e
}

// Recorder returns the run's flight recorder, or nil when the campaign
// neither captures traces (Options.TraceDir) nor verifies invariants
// (Options.Invariants). With capture on, records spill to
// <TraceDir>/run<index>-<label>.trace; the file is flushed and closed
// after the scenario finishes, and its path lands in
// RunResult.TracePath. With invariants on, the same stream feeds an
// online invariant.Checker whose verdict lands in the result (a
// violation fails the run); both together tee the stream.
//
// The returned recorder is not synchronized: scenarios that spawn
// goroutines must record from a single one.
func (c *Ctx) Recorder() trace.Recorder {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recorderLocked()
}

// recorderLocked composes the run's record sink from the invariant
// checker and/or the spill ring, caching the result. Callers hold
// c.mu. A nil return means neither capture nor verification is on.
func (c *Ctx) recorderLocked() trace.Recorder {
	if c.rec != nil {
		return c.rec
	}
	ring := c.ringLocked()
	if c.opts != nil && c.opts.Invariants && c.checker == nil {
		c.checker = &invariant.Checker{Slack: c.opts.InvariantSlack}
	}
	switch {
	case c.checker != nil:
		var next trace.Recorder
		if ring != nil {
			next = ring
		}
		c.rec = c.checker.Tee(next)
	case ring != nil:
		c.rec = ring
	}
	return c.rec
}

// ringLocked lazily opens the spill file and ring. Callers hold c.mu.
// A nil return means capture is off or the open failed (traceErr set).
func (c *Ctx) ringLocked() *trace.Ring {
	if c.opts == nil || c.opts.TraceDir == "" {
		return nil
	}
	if c.traceRing == nil && c.traceErr == nil {
		path := filepath.Join(c.opts.TraceDir,
			fmt.Sprintf("run%04d-%s.trace", c.index, sanitizeLabel(c.spec.Label)))
		f, err := os.Create(path)
		if err != nil {
			c.traceErr = fmt.Errorf("runner: open trace file: %w", err)
			return nil
		}
		r := trace.NewRing(c.opts.TraceRing)
		r.SpillTo(f)
		c.traceRing = r
		c.tracePath = path
	}
	return c.traceRing
}

// sanitizeLabel maps a run label onto the filename-safe alphabet
// [a-zA-Z0-9._-], bounded to 64 bytes, so labels like
// "fig9a/aps=14/trial=2" become stable file names.
func sanitizeLabel(s string) string {
	out := []byte(s)
	for i, b := range out {
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z',
			b >= '0' && b <= '9', b == '.', b == '-', b == '_':
		default:
			out[i] = '_'
		}
	}
	if len(out) > 64 {
		out = out[:64]
	}
	return string(out)
}

// closeTrace finalizes the run's trace capture: flush + close the spill
// file and publish path/counters into the result. A capture failure on
// an otherwise-successful run marks it failed — a campaign recorded for
// replay-diff must not silently produce torn streams.
func (c *Ctx) closeTrace(res *RunResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.traceErr != nil && res.Status == StatusOK {
		res.Status = StatusFailed
		res.Err = c.traceErr.Error()
	}
	if c.traceRing == nil {
		return
	}
	st := c.traceRing.Stats()
	res.TracePath = c.tracePath
	res.TraceRecords = int64(st.Recorded)
	res.TraceDropped = int64(st.Dropped)
	if err := c.traceRing.Close(); err != nil && res.Status == StatusOK {
		res.Status = StatusFailed
		res.Err = err.Error()
	}
}

// closeInvariants publishes the online checker's verdict: record
// count always, and on any violation the rule, the first violating
// record and the total — failing an otherwise-successful run. A
// regulatory violation must never hide behind a green campaign.
func (c *Ctx) closeInvariants(res *RunResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.checker == nil {
		return
	}
	res.InvariantRecords = int64(c.checker.Records())
	v := c.checker.First()
	if v == nil {
		return
	}
	res.InvariantViolations = c.checker.Total()
	res.InvariantRule = v.Rule
	res.InvariantIndex = v.Index
	res.InvariantRecord = v.Rec.String()
	if res.Status == StatusOK {
		res.Status = StatusFailed
		res.Err = c.checker.Err().Error()
	}
}

// Track registers an externally constructed engine for telemetry.
func (c *Ctx) Track(e *sim.Engine) {
	c.mu.Lock()
	c.engines = append(c.engines, e)
	c.mu.Unlock()
}

// AddSteps accounts coarse simulation work for scenarios that are not
// driven by a sim.Engine (the fluid epoch simulator, analytic models).
// Steps are added to the run's SimEvents count.
func (c *Ctx) AddSteps(n int64) {
	c.mu.Lock()
	c.steps += n
	c.mu.Unlock()
}

// AddSimTime accounts virtual time advanced by scenarios that are not
// driven by a sim.Engine (the epoch simulators advance one second per
// epoch, the metro world likewise). It feeds the run's SimClockMS and
// hence its sim_realtime_factor.
func (c *Ctx) AddSimTime(d time.Duration) {
	c.mu.Lock()
	c.simTime += d
	c.mu.Unlock()
}

// AddShardStats records the final telemetry snapshot of a shard
// cluster the scenario drove (shard.Cluster.Stats, taken after the last
// Run/Do). The run's RunResult surfaces shard count, windows executed,
// per-shard utilization and total barrier-stall time; a scenario that
// drives several clusters calls this once per cluster and the snapshots
// aggregate.
func (c *Ctx) AddShardStats(st shard.Stats) {
	c.mu.Lock()
	c.shardStats = append(c.shardStats, st)
	c.mu.Unlock()
}

// collect sums telemetry from tracked engines. Called by the worker
// after Run returns (WallMS already set), so no engine is still being
// driven.
func (c *Ctx) collect(res *RunResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res.SimEvents = c.steps
	res.SimClockMS = float64(c.simTime) / float64(time.Millisecond)
	for _, e := range c.engines {
		st := e.Stats()
		res.SimEvents += int64(st.Fired)
		res.SimClockMS += float64(st.Clock) / float64(time.Millisecond)
		if st.MaxPending > res.SimMaxPending {
			res.SimMaxPending = st.MaxPending
		}
		res.SimEventSlots += st.EventSlots
	}
	if res.WallMS > 0 {
		res.SimRealtimeFactor = res.SimClockMS / res.WallMS
	}
	c.collectShardsLocked(res)
}

// collectShardsLocked aggregates AddShardStats snapshots into the
// result: shard count is the widest cluster, windows and barrier stall
// sum, and per-shard utilization recomputes from the summed busy and
// wall nanoseconds so multi-cluster runs stay wall-weighted.
func (c *Ctx) collectShardsLocked(res *RunResult) {
	if len(c.shardStats) == 0 {
		return
	}
	var wallNS int64
	var busyNS []int64
	var stallNS int64
	for _, st := range c.shardStats {
		if st.Shards > res.Shards {
			res.Shards = st.Shards
		}
		res.ShardWindows += st.Windows
		wallNS += st.WallNS
		for i, b := range st.BusyNS {
			if i >= len(busyNS) {
				busyNS = append(busyNS, 0)
			}
			busyNS[i] += b
		}
		for _, s := range st.StallNS {
			stallNS += s
		}
	}
	res.ShardBarrierStallMS = float64(stallNS) / 1e6
	res.ShardUtilization = make([]float64, len(busyNS))
	if wallNS > 0 {
		for i, b := range busyNS {
			u := float64(b) / float64(wallNS)
			if u > 1 {
				u = 1
			}
			res.ShardUtilization[i] = u
		}
	}
}

// Progress is delivered to Options.OnProgress after every finished run.
type Progress struct {
	Campaign string
	// Done counts finished runs (ok, failed or canceled); Total is the
	// campaign size.
	Done, Total int
	Failed      int
	// Label is the run that just finished.
	Label   string
	Elapsed time.Duration
}

// Options tunes a campaign.
type Options struct {
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// OnProgress, if set, is called after each run completes. Calls are
	// serialized; the callback must not block for long.
	OnProgress func(Progress)
	// TraceDir, when non-empty, turns on per-run flight recording:
	// every engine a run creates via Ctx.Engine (and whatever else the
	// scenario wires to Ctx.Recorder) spills a binary trace stream to
	// <TraceDir>/run<index>-<label>.trace. The directory must exist.
	TraceDir string
	// TraceRing caps the per-run in-memory record buffer before a
	// spill; <= 0 uses trace.DefaultRingSize.
	TraceRing int
	// Invariants, when true, attaches an online regulatory verifier
	// (invariant.Checker) to every run's record stream — everything a
	// scenario emits through Ctx.Recorder or a Ctx.Engine flight
	// recorder is checked as it is written. A violation fails the run
	// and its details land in the RunResult (invariant_* JSON fields).
	// Works with or without TraceDir.
	Invariants bool
	// InvariantSlack widens the checker's cross-clock incumbent rule;
	// set it to the scenario's maximum per-AP clock skew.
	InvariantSlack time.Duration
}

// Run executes the campaign and returns its report. It blocks until
// every claimed run has finished. The error cases — scenario failures,
// cancellation — are recorded per run in the report, never returned:
// a campaign always yields a complete, ordered account of its fleet.
func Run(ctx context.Context, name string, specs []Spec, opts Options) *Report {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}

	rep := &Report{
		Campaign: name,
		Workers:  workers,
		Started:  time.Now().UTC(),
		Runs:     make([]RunResult, len(specs)),
	}
	start := time.Now()

	var (
		mu     sync.Mutex // guards next, done, failed, OnProgress
		next   int
		done   int
		failed int
		wg     sync.WaitGroup
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(specs) {
			return -1
		}
		i := next
		next++
		return i
	}
	finish := func(i int) {
		mu.Lock()
		done++
		if rep.Runs[i].Status != StatusOK {
			failed++
		}
		p := Progress{
			Campaign: name,
			Done:     done,
			Total:    len(specs),
			Failed:   failed,
			Label:    rep.Runs[i].Label,
			Elapsed:  time.Since(start),
		}
		cb := opts.OnProgress
		mu.Unlock()
		if cb != nil {
			cb(p)
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				res := &rep.Runs[i]
				res.Index = i
				res.Label = specs[i].Label
				res.Seed = specs[i].Seed
				if ctx.Err() != nil {
					res.Status = StatusCanceled
					res.Err = ctx.Err().Error()
				} else {
					runOne(ctx, &specs[i], i, res, &opts)
				}
				finish(i)
			}
		}()
	}
	wg.Wait()

	rep.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	rep.finalize()
	return rep
}

// runOne executes a single spec with panic isolation and telemetry.
func runOne(ctx context.Context, s *Spec, i int, res *RunResult, opts *Options) {
	c := &Ctx{ctx: ctx, spec: s, index: i, opts: opts}
	t0 := time.Now()
	func() {
		defer func() {
			if r := recover(); r != nil {
				res.Status = StatusFailed
				res.Err = fmt.Sprintf("panic: %v\n%s", r, debug.Stack())
			}
		}()
		v, err := s.Run(c)
		if err != nil {
			res.Status = StatusFailed
			res.Err = err.Error()
			return
		}
		res.Status = StatusOK
		res.Value = v
	}()
	res.WallMS = float64(time.Since(t0)) / float64(time.Millisecond)
	c.collect(res)
	c.closeTrace(res)
	c.closeInvariants(res)
}
