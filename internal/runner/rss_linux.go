//go:build linux

package runner

import "syscall"

// peakRSSMB reports the process's peak resident set size in MiB.
// Linux ru_maxrss is in kilobytes; if getrusage somehow fails, fall
// back to the portable runtime estimate rather than reporting zero.
func peakRSSMB() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return rssFallbackMB()
	}
	return float64(ru.Maxrss) / 1024
}
