package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cellfi/internal/trace"
)

// scenarioSpecs builds a campaign of n deterministic scenarios: each
// drives a sim.Engine chain seeded from its spec seed and reduces its
// RNG stream to a float64. The reduction is sensitive to both the seed
// and the number of events fired, so any cross-run interference or
// scheduling dependence shows up as a changed value.
func scenarioSpecs(n int) []Spec {
	specs := make([]Spec, n)
	for i := 0; i < n; i++ {
		i := i
		specs[i] = Spec{
			Label: fmt.Sprintf("scenario/%02d", i),
			Seed:  int64(1000 + i*7919),
			Run: func(c *Ctx) (any, error) {
				eng := c.Engine(c.Seed())
				rng := eng.NewStream("load")
				sum := 0.0
				var tick func()
				fires := 0
				tick = func() {
					sum += rng.Float64() * float64(eng.Now().Microseconds()+1)
					fires++
					if fires < 200+c.Index()*13 {
						eng.After(time.Duration(1+rng.Intn(50))*time.Microsecond, tick)
					}
				}
				eng.After(0, tick)
				eng.RunAll()
				return sum, nil
			},
		}
	}
	return specs
}

// aggregate reduces a campaign's values to bytes, mimicking how the
// experiments package renders tables from ordered trial results.
func aggregate(t *testing.T, rep *Report) []byte {
	t.Helper()
	vals, err := Values[float64](rep)
	if err != nil {
		t.Fatalf("values: %v", err)
	}
	var buf bytes.Buffer
	for i, v := range vals {
		fmt.Fprintf(&buf, "%d %.17g\n", i, v)
	}
	return buf.Bytes()
}

// TestDeterministicAcrossWorkerCounts is the campaign determinism
// contract: a >= 32-scenario fleet aggregated with 1 worker and with 8
// workers must produce byte-identical results.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	specs := scenarioSpecs(32)
	rep1 := Run(context.Background(), "det", specs, Options{Workers: 1})
	rep8 := Run(context.Background(), "det", specs, Options{Workers: 8})
	if rep1.Workers != 1 || rep8.Workers != 8 {
		t.Fatalf("worker counts %d/%d, want 1/8", rep1.Workers, rep8.Workers)
	}
	b1, b8 := aggregate(t, rep1), aggregate(t, rep8)
	if !bytes.Equal(b1, b8) {
		t.Fatalf("aggregated results differ between 1 and 8 workers:\n%s\nvs\n%s", b1, b8)
	}
	// Run order metadata must also be stable.
	for i := range rep8.Runs {
		if rep8.Runs[i].Index != i || rep8.Runs[i].Label != specs[i].Label ||
			rep8.Runs[i].Seed != specs[i].Seed {
			t.Fatalf("run %d metadata out of order: %+v", i, rep8.Runs[i])
		}
	}
}

// TestPanicIsolation injects a panicking scenario into the middle of a
// fleet and requires the campaign to finish every other run.
func TestPanicIsolation(t *testing.T) {
	specs := scenarioSpecs(9)
	specs[4].Run = func(c *Ctx) (any, error) { panic("injected scenario crash") }
	rep := Run(context.Background(), "panic", specs, Options{Workers: 4})
	if rep.OK != 8 || rep.Failed != 1 {
		t.Fatalf("ok=%d failed=%d, want 8/1", rep.OK, rep.Failed)
	}
	r := rep.Runs[4]
	if r.Status != StatusFailed {
		t.Fatalf("run 4 status %q, want failed", r.Status)
	}
	if want := "injected scenario crash"; !bytes.Contains([]byte(r.Err), []byte(want)) {
		t.Fatalf("run 4 error %q does not mention %q", r.Err, want)
	}
	if !bytes.Contains([]byte(r.Err), []byte("goroutine")) {
		t.Fatalf("panic record lacks a stack trace: %q", r.Err)
	}
	if err := rep.Err(); err == nil {
		t.Fatal("Err() = nil for a campaign with a failed run")
	}
	if _, err := Values[float64](rep); err == nil {
		t.Fatal("Values must refuse a campaign with failures")
	}
	// The healthy runs kept their values.
	for i, run := range rep.Runs {
		if i == 4 {
			continue
		}
		if run.Status != StatusOK || run.Value == nil {
			t.Fatalf("run %d lost its result: %+v", i, run)
		}
	}
}

// TestErrorsAreFailures: a returned error marks the run failed too.
func TestErrorsAreFailures(t *testing.T) {
	specs := scenarioSpecs(3)
	sentinel := errors.New("scenario declined")
	specs[1].Run = func(c *Ctx) (any, error) { return nil, sentinel }
	rep := Run(context.Background(), "err", specs, Options{Workers: 2})
	if rep.Failed != 1 || rep.Runs[1].Err != sentinel.Error() {
		t.Fatalf("error not recorded: %+v", rep.Runs[1])
	}
}

// TestCancellation: cancelling mid-campaign stops new claims; the
// report still accounts for every spec.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	specs := make([]Spec, 16)
	for i := range specs {
		specs[i] = Spec{
			Label: fmt.Sprintf("c/%d", i),
			Seed:  int64(i),
			Run: func(c *Ctx) (any, error) {
				once.Do(cancel)
				return 0.0, nil
			},
		}
	}
	rep := Run(ctx, "cancel", specs, Options{Workers: 2})
	if got := rep.OK + rep.Failed + rep.Canceled; got != len(specs) {
		t.Fatalf("accounted %d of %d runs", got, len(specs))
	}
	if rep.Canceled == 0 {
		t.Fatal("no runs recorded as canceled")
	}
	for _, r := range rep.Runs {
		if r.Status == StatusCanceled && r.Err == "" {
			t.Fatalf("canceled run %d lacks a reason", r.Index)
		}
	}
}

// TestTelemetry checks the per-run counters: wall time present, engine
// events and virtual clock pulled via Ctx, AddSteps accounted, and the
// JSON report round-trips with the documented schema.
func TestTelemetry(t *testing.T) {
	specs := []Spec{
		{
			Label: "engine", Seed: 7,
			Run: func(c *Ctx) (any, error) {
				eng := c.Engine(c.Seed())
				for i := 0; i < 100; i++ {
					eng.After(time.Duration(i)*time.Millisecond, func() {})
				}
				eng.RunAll()
				return "done", nil
			},
		},
		{
			Label: "fluid", Seed: 8,
			Run: func(c *Ctx) (any, error) {
				c.AddSteps(42)
				return "done", nil
			},
		},
	}
	rep := Run(context.Background(), "telemetry", specs, Options{Workers: 2})
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Runs[0].SimEvents != 100 {
		t.Fatalf("engine run SimEvents = %d, want 100", rep.Runs[0].SimEvents)
	}
	if rep.Runs[0].SimClockMS != 99 {
		t.Fatalf("engine run SimClockMS = %v, want 99", rep.Runs[0].SimClockMS)
	}
	// All 100 events are queued before RunAll drains them, so the
	// engine's peak queue depth and slot high-water mark are both 100.
	if rep.Runs[0].SimMaxPending != 100 {
		t.Fatalf("engine run SimMaxPending = %d, want 100", rep.Runs[0].SimMaxPending)
	}
	if rep.Runs[0].SimEventSlots != 100 {
		t.Fatalf("engine run SimEventSlots = %d, want 100", rep.Runs[0].SimEventSlots)
	}
	if rep.Runs[1].SimEvents != 42 {
		t.Fatalf("AddSteps run SimEvents = %d, want 42", rep.Runs[1].SimEvents)
	}
	if rep.Runs[1].SimMaxPending != 0 || rep.Runs[1].SimEventSlots != 0 {
		t.Fatalf("engine-less run reports queue depth %d/%d, want 0/0",
			rep.Runs[1].SimMaxPending, rep.Runs[1].SimEventSlots)
	}
	if rep.TotalSimEvents != 142 {
		t.Fatalf("TotalSimEvents = %d, want 142", rep.TotalSimEvents)
	}
	for _, r := range rep.Runs {
		if r.WallMS < 0 {
			t.Fatalf("run %d has negative wall time", r.Index)
		}
	}

	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{"campaign", "workers", "wall_ms", "ok",
		"total_sim_events", "sim_events_per_sec", "runs"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("report JSON missing %q", key)
		}
	}
	runs := decoded["runs"].([]any)
	first := runs[0].(map[string]any)
	for _, key := range []string{"index", "label", "seed", "status", "wall_ms", "sim_events",
		"sim_max_pending", "sim_event_slots"} {
		if _, ok := first[key]; !ok {
			t.Errorf("run JSON missing %q", key)
		}
	}
}

// TestProgressCallback: every run reports exactly once, Done reaches
// Total, failures are counted.
func TestProgressCallback(t *testing.T) {
	specs := scenarioSpecs(10)
	specs[3].Run = func(c *Ctx) (any, error) { return nil, errors.New("x") }
	var mu sync.Mutex
	var seen []Progress
	rep := Run(context.Background(), "progress", specs, Options{
		Workers: 3,
		OnProgress: func(p Progress) {
			mu.Lock()
			seen = append(seen, p)
			mu.Unlock()
		},
	})
	if len(seen) != len(specs) {
		t.Fatalf("progress fired %d times, want %d", len(seen), len(specs))
	}
	last := seen[len(seen)-1]
	if last.Done != len(specs) || last.Total != len(specs) || last.Failed != 1 {
		t.Fatalf("final progress %+v", last)
	}
	if rep.OK != 9 {
		t.Fatalf("ok=%d", rep.OK)
	}
}

// TestMerge concatenates campaign reports with rebased indices.
func TestMerge(t *testing.T) {
	a := Run(context.Background(), "a", scenarioSpecs(3), Options{Workers: 2})
	b := Run(context.Background(), "b", scenarioSpecs(2), Options{Workers: 1})
	m, err := Merge("session", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Runs) != 5 || m.OK != 5 || m.Workers != 2 {
		t.Fatalf("merge: %d runs, ok=%d, workers=%d", len(m.Runs), m.OK, m.Workers)
	}
	for i, r := range m.Runs {
		if r.Index != i {
			t.Fatalf("run %d has index %d after merge", i, r.Index)
		}
	}
	if m.WallMS < a.WallMS || m.WallMS < b.WallMS {
		t.Fatal("merged wall time lost a component")
	}
	if _, err := Merge("empty"); err == nil {
		t.Fatal("merge of zero reports must fail")
	}
}

// TestWorkerDefaults: zero workers resolves to GOMAXPROCS and is
// capped by fleet size.
func TestWorkerDefaults(t *testing.T) {
	rep := Run(context.Background(), "defaults", scenarioSpecs(2), Options{})
	if rep.Workers < 1 || rep.Workers > 2 {
		t.Fatalf("workers = %d, want within [1,2]", rep.Workers)
	}
}

// TestSharedStateWouldBeCaught documents why specs must not share
// RNGs: two specs drawing from one rand.Rand produce worker-count-
// dependent values. The runner cannot forbid it, but the determinism
// test pattern (compare aggregates across worker counts) catches it —
// here we only verify the safe pattern composes under -race: many
// specs, each with seed-derived randomness, running concurrently.
func TestSharedStateWouldBeCaught(t *testing.T) {
	specs := make([]Spec, 24)
	for i := range specs {
		seed := int64(i) * 31
		specs[i] = Spec{
			Label: fmt.Sprintf("iso/%d", i),
			Seed:  seed,
			Run: func(c *Ctx) (any, error) {
				rng := rand.New(rand.NewSource(c.Seed()))
				total := 0.0
				for j := 0; j < 1000; j++ {
					total += rng.Float64()
				}
				return total, nil
			},
		}
	}
	r1 := Run(context.Background(), "iso", specs, Options{Workers: 1})
	r8 := Run(context.Background(), "iso", specs, Options{Workers: 8})
	if !bytes.Equal(aggregate(t, r1), aggregate(t, r8)) {
		t.Fatal("seed-derived randomness must be scheduling independent")
	}
}

// traceSpecs builds a campaign whose scenarios drive a traced engine;
// with identical seeds the captured streams must be byte-identical.
func traceSpecs(seedOf func(i int) int64, n int) []Spec {
	specs := make([]Spec, n)
	for i := 0; i < n; i++ {
		i := i
		specs[i] = Spec{
			Label: fmt.Sprintf("shard/%d", i),
			Seed:  seedOf(i),
			Run: func(c *Ctx) (any, error) {
				eng := c.Engine(c.Seed())
				rng := rand.New(rand.NewSource(c.Seed()))
				var tick func()
				n := 0
				tick = func() {
					n++
					if n < 200 {
						eng.After(time.Duration(1+rng.Intn(50))*time.Millisecond, tick)
					}
				}
				eng.After(time.Millisecond, tick)
				eng.RunAll()
				return n, nil
			},
		}
	}
	return specs
}

// TestTraceCapture: TraceDir produces one decodable stream per run,
// publishes its path and counters in the telemetry, and same-seed runs
// capture byte-identical streams while different seeds diverge.
func TestTraceCapture(t *testing.T) {
	dir := t.TempDir()
	rep := Run(context.Background(), "traced",
		traceSpecs(func(i int) int64 { return 42 }, 2), // identical seeds
		Options{Workers: 2, TraceDir: dir, TraceRing: 64})
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	var raws [][]byte
	for _, r := range rep.Runs {
		if r.TracePath == "" {
			t.Fatalf("run %d: no trace path in telemetry", r.Index)
		}
		if r.TraceRecords == 0 || r.TraceDropped != 0 {
			t.Fatalf("run %d: records=%d dropped=%d", r.Index, r.TraceRecords, r.TraceDropped)
		}
		recs, err := trace.ReadFile(r.TracePath)
		if err != nil {
			t.Fatalf("run %d: decode %s: %v", r.Index, r.TracePath, err)
		}
		if int64(len(recs)) != r.TraceRecords {
			t.Fatalf("run %d: decoded %d records, telemetry says %d",
				r.Index, len(recs), r.TraceRecords)
		}
		raw, err := os.ReadFile(r.TracePath)
		if err != nil {
			t.Fatal(err)
		}
		raws = append(raws, raw)
	}
	if !bytes.Equal(raws[0], raws[1]) {
		t.Fatal("same-seed shards must capture byte-identical traces")
	}
	d := trace.Diff(raws[0], raws[1])
	if !d.Identical {
		t.Fatalf("Diff on same-seed shards: %s", d.String())
	}

	// Different seeds must diverge, and Diff must localize it.
	rep2 := Run(context.Background(), "traced2",
		traceSpecs(func(i int) int64 { return int64(100 + i) }, 2),
		Options{Workers: 1, TraceDir: dir})
	if err := rep2.Err(); err != nil {
		t.Fatal(err)
	}
	rawA, _ := os.ReadFile(rep2.Runs[0].TracePath)
	rawB, _ := os.ReadFile(rep2.Runs[1].TracePath)
	d = trace.Diff(rawA, rawB)
	if d.Identical {
		t.Fatal("different-seed shards produced identical traces")
	}
	if d.A == nil && d.B == nil && d.CountA == d.CountB {
		t.Fatalf("divergence not localized: %+v", d)
	}
}

// TestTraceDirOff: without TraceDir, Recorder returns untyped nil and
// results carry no trace fields.
func TestTraceDirOff(t *testing.T) {
	specs := []Spec{{Label: "plain", Seed: 1, Run: func(c *Ctx) (any, error) {
		if r := c.Recorder(); r != nil {
			return nil, fmt.Errorf("Recorder() = %v, want nil", r)
		}
		return nil, nil
	}}}
	rep := Run(context.Background(), "off", specs, Options{})
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Runs[0].TracePath != "" || rep.Runs[0].TraceRecords != 0 {
		t.Fatalf("trace telemetry present with capture off: %+v", rep.Runs[0])
	}
}

// TestTraceOpenFailure: an unopenable trace file fails the run rather
// than silently dropping the capture.
func TestTraceOpenFailure(t *testing.T) {
	specs := []Spec{{Label: "open-fail", Seed: 1, Run: func(c *Ctx) (any, error) {
		c.Recorder() // trigger the open
		return nil, nil
	}}}
	rep := Run(context.Background(), "openfail", specs,
		Options{TraceDir: filepath.Join(t.TempDir(), "does", "not", "exist")})
	if rep.Runs[0].Status != StatusFailed {
		t.Fatalf("status = %s, want failed", rep.Runs[0].Status)
	}
}

// TestSanitizeLabel pins the filename mapping.
func TestSanitizeLabel(t *testing.T) {
	got := sanitizeLabel("fig9a/aps=14 trial:2")
	if got != "fig9a_aps_14_trial_2" {
		t.Fatalf("sanitizeLabel = %q", got)
	}
}

// Realtime telemetry: a run that advances virtual time — via a tracked
// engine or AddSimTime — reports sim_realtime_factor, and the campaign
// aggregates it plus the peak-RSS estimate.
func TestRealtimeFactorTelemetry(t *testing.T) {
	specs := []Spec{
		{
			Label: "engine-driven",
			Seed:  1,
			Run: func(c *Ctx) (any, error) {
				eng := c.Engine(c.Seed())
				eng.After(2*time.Second, func() {})
				eng.RunAll()
				return nil, nil
			},
		},
		{
			Label: "epoch-driven",
			Seed:  2,
			Run: func(c *Ctx) (any, error) {
				c.AddSimTime(30 * time.Second) // 30 fluid epochs
				return nil, nil
			},
		},
	}
	rep := Run(context.Background(), "realtime", specs, Options{Workers: 1})
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Runs {
		if r.SimClockMS <= 0 {
			t.Fatalf("run %q: sim_clock_ms %v, want > 0", r.Label, r.SimClockMS)
		}
		// Both scenarios do ~zero real work over seconds of virtual
		// time, so they must be far faster than real time.
		if r.SimRealtimeFactor <= 1 {
			t.Fatalf("run %q: sim_realtime_factor %v, want > 1", r.Label, r.SimRealtimeFactor)
		}
	}
	if rep.SimRealtimeFactor <= 1 {
		t.Fatalf("campaign sim_realtime_factor %v, want > 1", rep.SimRealtimeFactor)
	}
	if rss := peakRSSMB(); rss > 0 && rep.PeakRSSMB <= 0 {
		t.Fatalf("peak_rss_mb %v despite rusage reporting %v", rep.PeakRSSMB, rss)
	}

	// The fields must survive the JSON round trip fleet tooling reads.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded["sim_realtime_factor"]; !ok {
		t.Fatal("report JSON lacks sim_realtime_factor")
	}
	if rep.PeakRSSMB > 0 {
		if _, ok := decoded["peak_rss_mb"]; !ok {
			t.Fatal("report JSON lacks peak_rss_mb")
		}
	}
}
