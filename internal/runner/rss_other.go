//go:build !linux

package runner

// peakRSSMB has no getrusage peak counter off Linux; report the
// portable runtime estimate instead of omitting the field.
func peakRSSMB() float64 { return rssFallbackMB() }
