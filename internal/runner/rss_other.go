//go:build !linux

package runner

// peakRSSMB is unavailable off Linux; reports omit the field.
func peakRSSMB() float64 { return 0 }
