package runner

import "runtime"

// rssFallbackMB estimates the process's resident footprint from the Go
// runtime's own accounting when an OS peak-RSS counter is unavailable:
// memory obtained from the OS minus heap pages returned to it. It is an
// approximation of current (not peak) residency and ignores non-Go
// mappings, but it is portable, monotone enough for fleet-sizing
// trends, and never zero on a live process.
func rssFallbackMB() float64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.Sys-ms.HeapReleased) / (1 << 20)
}
