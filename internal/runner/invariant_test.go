package runner

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cellfi/internal/invariant"
	"cellfi/internal/trace"
)

// invariantSpecs builds a two-run campaign: a clean scenario (budget
// then in-budget transmissions) and a violating one (a transmission
// past the vacate budget).
func invariantSpecs() []Spec {
	emit := func(c *Ctx, lastTX time.Duration) {
		rec := c.Recorder()
		if rec == nil {
			return
		}
		rec.Record(trace.Record{T: 0, AP: 1, Kind: trace.KindLeaseBudget, N: 3,
			Args: [trace.MaxArgs]int64{21, int64(5 * time.Minute), int64(time.Minute)}})
		for t := 10 * time.Second; t <= lastTX; t += 10 * time.Second {
			rec.Record(trace.Record{T: int64(t), AP: 1, Kind: trace.KindRadioTX, N: 1,
				Args: [trace.MaxArgs]int64{21}})
		}
	}
	return []Spec{
		{Label: "clean", Seed: 1, Run: func(c *Ctx) (any, error) {
			emit(c, time.Minute)
			return "ok", nil
		}},
		{Label: "violating", Seed: 2, Run: func(c *Ctx) (any, error) {
			emit(c, 2*time.Minute)
			return "ok", nil
		}},
	}
}

// TestInvariantsFailViolatingRun: with Options.Invariants on, the
// clean run passes, the violating run fails with the rule and first
// violating record in its telemetry — even without trace capture.
func TestInvariantsFailViolatingRun(t *testing.T) {
	rep := Run(context.Background(), "inv", invariantSpecs(), Options{Invariants: true})
	clean, bad := rep.Runs[0], rep.Runs[1]

	if clean.Status != StatusOK {
		t.Fatalf("clean run: %s (%s)", clean.Status, clean.Err)
	}
	if clean.InvariantRecords == 0 || clean.InvariantViolations != 0 {
		t.Fatalf("clean run checker state: %+v", clean)
	}

	if bad.Status != StatusFailed {
		t.Fatalf("violating run status = %s, want failed", bad.Status)
	}
	if bad.InvariantRule != invariant.RuleTxPastVacateBudget {
		t.Fatalf("rule = %q, want %q", bad.InvariantRule, invariant.RuleTxPastVacateBudget)
	}
	if bad.InvariantRecord == "" || bad.InvariantIndex == 0 || bad.InvariantViolations == 0 {
		t.Fatalf("violation details missing: %+v", bad)
	}
	if rep.Failed != 1 || rep.OK != 1 {
		t.Fatalf("report counts: ok=%d failed=%d", rep.OK, rep.Failed)
	}
}

// TestInvariantsOff: without the flag, the violating stream passes and
// no checker fields are populated.
func TestInvariantsOff(t *testing.T) {
	rep := Run(context.Background(), "inv-off", invariantSpecs(), Options{})
	for i := range rep.Runs {
		if rep.Runs[i].InvariantRecords != 0 || rep.Runs[i].InvariantRule != "" {
			t.Fatalf("run %d has checker fields without Invariants: %+v", i, rep.Runs[i])
		}
	}
}

// TestInvariantsTeeWithCapture: Invariants + TraceDir tee the stream —
// the violating run both fails verification and still spills a
// complete, decodable trace (the evidence file an audit replays).
func TestInvariantsTeeWithCapture(t *testing.T) {
	dir := t.TempDir()
	rep := Run(context.Background(), "inv-tee", invariantSpecs(),
		Options{Invariants: true, TraceDir: dir})
	bad := rep.Runs[1]
	if bad.Status != StatusFailed || bad.InvariantRule == "" {
		t.Fatalf("violating run not flagged: %+v", bad)
	}
	if bad.TracePath == "" {
		t.Fatal("no trace captured alongside verification")
	}
	data, err := os.ReadFile(filepath.Join(dir, filepath.Base(bad.TracePath)))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.Decode(data)
	if err != nil {
		t.Fatalf("teed trace not decodable: %v", err)
	}
	if int64(len(recs)) != bad.InvariantRecords || int64(len(recs)) != bad.TraceRecords {
		t.Fatalf("stream fan-out mismatch: decoded=%d checker=%d ring=%d",
			len(recs), bad.InvariantRecords, bad.TraceRecords)
	}
	// The offline verdict matches the online one.
	if v := invariant.Verify(recs); v == nil || v.Rec.String() != bad.InvariantRecord {
		t.Fatalf("offline verify disagrees: %v vs %q", v, bad.InvariantRecord)
	}
}
