package runner

import (
	"math"
	"testing"
)

// The portable fallback must report a positive, finite, sane residency
// on any platform — it is what peak_rss_mb carries off Linux.
func TestRSSFallback(t *testing.T) {
	got := rssFallbackMB()
	if got <= 0 || math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("rssFallbackMB() = %v, want positive finite", got)
	}
	if got > 1<<20 { // a terabyte of accounted memory is a unit bug
		t.Fatalf("rssFallbackMB() = %v MiB, implausibly large", got)
	}
}

// The platform peakRSSMB must never report zero: Linux reads ru_maxrss,
// everything else takes the runtime fallback.
func TestPeakRSSNonZero(t *testing.T) {
	if got := peakRSSMB(); got <= 0 {
		t.Fatalf("peakRSSMB() = %v, want > 0", got)
	}
}
