// Package spectrum models the TV-white-space channel plan and incumbent
// (primary-user) occupancy that the CellFi channel-selection component
// must respect. It provides the regulatory channel grids for the US
// (6 MHz channels) and EU/UK (8 MHz channels), incumbent registrations
// with time schedules and protection areas, and availability queries of
// the kind a PAWS database answers.
package spectrum

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"cellfi/internal/geo"
)

// Domain selects a regulatory channel plan.
type Domain int

const (
	// US: 6 MHz TV channels; white-space UHF channels 14..51.
	US Domain = iota
	// EU: 8 MHz TV channels in 470-790 MHz; channels 21..60
	// (ETSI EN 301 598).
	EU
)

// String names the domain.
func (d Domain) String() string {
	if d == US {
		return "US"
	}
	return "EU"
}

// ChannelWidthHz returns the TV channel bandwidth for the domain.
func (d Domain) ChannelWidthHz() float64 {
	if d == US {
		return 6e6
	}
	return 8e6
}

// ChannelRange returns the first and last usable white-space UHF channel
// numbers for the domain.
func (d Domain) ChannelRange() (first, last int) {
	if d == US {
		return 14, 51
	}
	return 21, 60
}

// CenterFreqHz returns the centre frequency of TV channel ch.
func (d Domain) CenterFreqHz(ch int) (float64, error) {
	first, last := d.ChannelRange()
	if ch < first || ch > last {
		return 0, fmt.Errorf("spectrum: channel %d outside %s plan %d..%d", ch, d, first, last)
	}
	w := d.ChannelWidthHz()
	var base float64
	if d == US {
		base = 470e6 // channel 14 lower edge
	} else {
		base = 470e6 // channel 21 lower edge
	}
	return base + float64(ch-first)*w + w/2, nil
}

// Channels lists all channel numbers in the domain plan.
func (d Domain) Channels() []int {
	first, last := d.ChannelRange()
	chs := make([]int, 0, last-first+1)
	for c := first; c <= last; c++ {
		chs = append(chs, c)
	}
	return chs
}

// IncumbentKind distinguishes protected primary users.
type IncumbentKind int

const (
	TVStation IncumbentKind = iota
	WirelessMic
)

func (k IncumbentKind) String() string {
	if k == TVStation {
		return "tv-station"
	}
	return "wireless-mic"
}

// Incumbent is a registered primary user of a TV channel. A device
// located within ProtectRadius of Location may not use Channel while the
// incumbent's schedule is active. A zero To means "indefinitely".
type Incumbent struct {
	Kind          IncumbentKind
	Channel       int
	Location      geo.Point
	ProtectRadius float64
	From, To      time.Time
}

// ActiveAt reports whether the incumbent's schedule covers t.
func (inc Incumbent) ActiveAt(t time.Time) bool {
	if t.Before(inc.From) {
		return false
	}
	return inc.To.IsZero() || t.Before(inc.To)
}

// Protects reports whether the incumbent blocks use of its channel at
// location p and time t.
func (inc Incumbent) Protects(p geo.Point, t time.Time) bool {
	return inc.ActiveAt(t) && inc.Location.Dist(p) <= inc.ProtectRadius
}

// ChannelInfo describes one available channel in an availability answer.
type ChannelInfo struct {
	Channel      int
	CenterFreqHz float64
	WidthHz      float64
	// MaxEIRPdBm is the regulatory power cap for this channel at the
	// queried location.
	MaxEIRPdBm float64
	// Until is when the availability expires and must be re-queried.
	Until time.Time
}

// Registry is the authoritative incumbent database backing a PAWS
// server. It is not safe for concurrent mutation; the PAWS server
// serializes access.
type Registry struct {
	Domain Domain
	// DefaultMaxEIRPdBm is the power cap for fixed white-space
	// devices (36 dBm EIRP under FCC rules, the figure the paper's
	// deployment uses).
	DefaultMaxEIRPdBm float64
	// LeaseDuration is how long an availability answer stays valid.
	LeaseDuration time.Duration
	incumbents    []Incumbent
	// epoch counts incumbent-set mutations. Derived structures (the
	// pawsdb grid index and response cache) compare it against the
	// epoch they were built at and rebuild when it moves. It is the
	// only Registry field safe to read without external locking.
	epoch atomic.Int64
}

// NewRegistry returns a registry for the given domain with the FCC fixed
// device power cap and 12-hour lease granularity (the paper notes
// channel availability changes on the scale of hours and days).
func NewRegistry(d Domain) *Registry {
	return &Registry{
		Domain:            d,
		DefaultMaxEIRPdBm: 36,
		LeaseDuration:     12 * time.Hour,
	}
}

// AddIncumbent registers a primary user.
func (r *Registry) AddIncumbent(inc Incumbent) error {
	first, last := r.Domain.ChannelRange()
	if inc.Channel < first || inc.Channel > last {
		return fmt.Errorf("spectrum: incumbent channel %d outside %s plan", inc.Channel, r.Domain)
	}
	if inc.ProtectRadius < 0 {
		return fmt.Errorf("spectrum: negative protection radius")
	}
	r.incumbents = append(r.incumbents, inc)
	r.epoch.Add(1)
	return nil
}

// Epoch returns the incumbent-set mutation counter. It is safe to read
// concurrently with queries; mutation itself still requires the
// caller's serialization (the PAWS server's Lock/Unlock).
func (r *Registry) Epoch() int64 { return r.epoch.Load() }

// IncumbentCount returns how many incumbents are registered, without
// copying them (used by health endpoints).
func (r *Registry) IncumbentCount() int { return len(r.incumbents) }

// RemoveIncumbents deletes all incumbents on the given channel and
// returns how many were removed. (Used by tests and the Figure 6
// experiment to "reintroduce" a channel.)
func (r *Registry) RemoveIncumbents(channel int) int {
	kept := r.incumbents[:0]
	removed := 0
	for _, inc := range r.incumbents {
		if inc.Channel == channel {
			removed++
			continue
		}
		kept = append(kept, inc)
	}
	r.incumbents = kept
	if removed > 0 {
		r.epoch.Add(1)
	}
	return removed
}

// Incumbents returns a copy of the registered incumbents.
func (r *Registry) Incumbents() []Incumbent {
	out := make([]Incumbent, len(r.incumbents))
	copy(out, r.incumbents)
	return out
}

// AvailableAt answers the regulatory question: which channels may a
// secondary device at location p use at time t? Channels are returned in
// ascending channel-number order.
func (r *Registry) AvailableAt(p geo.Point, t time.Time) []ChannelInfo {
	var out []ChannelInfo
	for _, ch := range r.Domain.Channels() {
		if r.blocked(ch, p, t) {
			continue
		}
		f, err := r.Domain.CenterFreqHz(ch)
		if err != nil {
			continue
		}
		out = append(out, ChannelInfo{
			Channel:      ch,
			CenterFreqHz: f,
			WidthHz:      r.Domain.ChannelWidthHz(),
			MaxEIRPdBm:   r.DefaultMaxEIRPdBm,
			Until:        t.Add(r.LeaseDuration),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Channel < out[j].Channel })
	return out
}

// ChannelAvailable reports whether a single channel is usable at (p, t).
func (r *Registry) ChannelAvailable(ch int, p geo.Point, t time.Time) bool {
	first, last := r.Domain.ChannelRange()
	if ch < first || ch > last {
		return false
	}
	return !r.blocked(ch, p, t)
}

func (r *Registry) blocked(ch int, p geo.Point, t time.Time) bool {
	for _, inc := range r.incumbents {
		if inc.Channel == ch && inc.Protects(p, t) {
			return true
		}
	}
	return false
}

// ContiguousRuns groups an availability answer into runs of adjacent
// channels and returns, for each run, the first channel and the run
// length. LTE needs 5/10/15/20 MHz of contiguous spectrum (Section 3.1),
// so the channel selector prefers longer runs.
func ContiguousRuns(avail []ChannelInfo) [][2]int {
	var runs [][2]int
	for i := 0; i < len(avail); {
		j := i
		for j+1 < len(avail) && avail[j+1].Channel == avail[j].Channel+1 {
			j++
		}
		runs = append(runs, [2]int{avail[i].Channel, j - i + 1})
		i = j + 1
	}
	return runs
}
