package spectrum

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"cellfi/internal/geo"
)

var t0 = time.Date(2017, 12, 12, 9, 0, 0, 0, time.UTC) // CoNEXT '17 week

func TestDomainPlans(t *testing.T) {
	if US.ChannelWidthHz() != 6e6 || EU.ChannelWidthHz() != 8e6 {
		t.Fatal("channel widths wrong")
	}
	f, err := US.CenterFreqHz(14)
	if err != nil || math.Abs(f-473e6) > 1 {
		t.Errorf("US ch14 centre = %g (%v), want 473 MHz", f, err)
	}
	f, _ = US.CenterFreqHz(51)
	if math.Abs(f-695e6) > 1 {
		t.Errorf("US ch51 centre = %g, want 695 MHz", f)
	}
	f, err = EU.CenterFreqHz(21)
	if err != nil || math.Abs(f-474e6) > 1 {
		t.Errorf("EU ch21 centre = %g (%v), want 474 MHz", f, err)
	}
	// EU band tops out below 790 MHz (ETSI EN 301 598 scope).
	f, _ = EU.CenterFreqHz(60)
	if f+4e6 > 790e6+1 {
		t.Errorf("EU ch60 upper edge %g exceeds 790 MHz", f+4e6)
	}
}

func TestCenterFreqOutOfPlan(t *testing.T) {
	if _, err := US.CenterFreqHz(13); err == nil {
		t.Error("US channel 13 should be rejected")
	}
	if _, err := US.CenterFreqHz(52); err == nil {
		t.Error("US channel 52 should be rejected")
	}
	if _, err := EU.CenterFreqHz(20); err == nil {
		t.Error("EU channel 20 should be rejected")
	}
}

func TestChannelsList(t *testing.T) {
	chs := US.Channels()
	if len(chs) != 38 || chs[0] != 14 || chs[len(chs)-1] != 51 {
		t.Errorf("US plan has %d channels [%d..%d]", len(chs), chs[0], chs[len(chs)-1])
	}
	if got := len(EU.Channels()); got != 40 {
		t.Errorf("EU plan has %d channels, want 40", got)
	}
}

func TestChannelSpacingUniform(t *testing.T) {
	f := func(ch uint8) bool {
		c := 14 + int(ch)%37 // 14..50
		f1, err1 := US.CenterFreqHz(c)
		f2, err2 := US.CenterFreqHz(c + 1)
		return err1 == nil && err2 == nil && math.Abs(f2-f1-6e6) < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIncumbentSchedule(t *testing.T) {
	inc := Incumbent{
		Kind: WirelessMic, Channel: 30,
		Location: geo.Point{X: 0, Y: 0}, ProtectRadius: 1000,
		From: t0, To: t0.Add(2 * time.Hour),
	}
	if inc.ActiveAt(t0.Add(-time.Minute)) {
		t.Error("active before schedule start")
	}
	if !inc.ActiveAt(t0) || !inc.ActiveAt(t0.Add(time.Hour)) {
		t.Error("inactive during schedule")
	}
	if inc.ActiveAt(t0.Add(2 * time.Hour)) {
		t.Error("active after schedule end")
	}
	// Indefinite incumbent.
	tv := Incumbent{Kind: TVStation, Channel: 20, ProtectRadius: 50000, From: t0}
	if !tv.ActiveAt(t0.Add(1000 * time.Hour)) {
		t.Error("indefinite incumbent expired")
	}
}

func TestIncumbentProtectionArea(t *testing.T) {
	inc := Incumbent{Channel: 25, Location: geo.Point{X: 0, Y: 0}, ProtectRadius: 500, From: t0}
	if !inc.Protects(geo.Point{X: 300, Y: 400}, t0) { // dist 500, boundary inclusive
		t.Error("boundary point should be protected")
	}
	if inc.Protects(geo.Point{X: 300, Y: 401}, t0) {
		t.Error("point outside radius should not be protected")
	}
}

func TestRegistryAvailability(t *testing.T) {
	r := NewRegistry(US)
	p := geo.Point{X: 1000, Y: 1000}
	all := r.AvailableAt(p, t0)
	if len(all) != 38 {
		t.Fatalf("empty registry offers %d channels, want 38", len(all))
	}
	for _, ci := range all {
		if ci.MaxEIRPdBm != 36 {
			t.Fatalf("channel %d cap %g dBm, want 36", ci.Channel, ci.MaxEIRPdBm)
		}
		if !ci.Until.After(t0) {
			t.Fatalf("channel %d lease already expired", ci.Channel)
		}
	}

	// Block channel 30 near p, channel 40 far away.
	if err := r.AddIncumbent(Incumbent{Kind: TVStation, Channel: 30, Location: p, ProtectRadius: 5000, From: t0}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddIncumbent(Incumbent{Kind: TVStation, Channel: 40, Location: geo.Point{X: 1e6, Y: 1e6}, ProtectRadius: 5000, From: t0}); err != nil {
		t.Fatal(err)
	}
	avail := r.AvailableAt(p, t0)
	if len(avail) != 37 {
		t.Fatalf("got %d channels, want 37 (only ch30 blocked)", len(avail))
	}
	for _, ci := range avail {
		if ci.Channel == 30 {
			t.Fatal("blocked channel 30 still offered")
		}
	}
	if !r.ChannelAvailable(40, p, t0) {
		t.Error("distant incumbent should not block channel 40 here")
	}
	if r.ChannelAvailable(30, p, t0) {
		t.Error("channel 30 should be blocked")
	}
}

func TestRegistryTimeVaryingAvailability(t *testing.T) {
	r := NewRegistry(EU)
	p := geo.Point{}
	// Mic event 14:00-16:00 on channel 38 — the Figure 6 scenario shape.
	ev := Incumbent{Kind: WirelessMic, Channel: 38, Location: p, ProtectRadius: 2000,
		From: t0.Add(5 * time.Hour), To: t0.Add(7 * time.Hour)}
	if err := r.AddIncumbent(ev); err != nil {
		t.Fatal(err)
	}
	if !r.ChannelAvailable(38, p, t0) {
		t.Error("channel should be free before the event")
	}
	if r.ChannelAvailable(38, p, t0.Add(6*time.Hour)) {
		t.Error("channel should be blocked during the event")
	}
	if !r.ChannelAvailable(38, p, t0.Add(8*time.Hour)) {
		t.Error("channel should be free after the event")
	}
}

func TestRegistryRejectsBadIncumbents(t *testing.T) {
	r := NewRegistry(US)
	if err := r.AddIncumbent(Incumbent{Channel: 5}); err == nil {
		t.Error("channel outside plan accepted")
	}
	if err := r.AddIncumbent(Incumbent{Channel: 20, ProtectRadius: -1}); err == nil {
		t.Error("negative radius accepted")
	}
}

func TestRemoveIncumbents(t *testing.T) {
	r := NewRegistry(US)
	p := geo.Point{}
	for i := 0; i < 3; i++ {
		if err := r.AddIncumbent(Incumbent{Channel: 22, Location: p, ProtectRadius: 1000, From: t0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.AddIncumbent(Incumbent{Channel: 23, Location: p, ProtectRadius: 1000, From: t0}); err != nil {
		t.Fatal(err)
	}
	if n := r.RemoveIncumbents(22); n != 3 {
		t.Fatalf("removed %d, want 3", n)
	}
	if !r.ChannelAvailable(22, p, t0) {
		t.Error("channel 22 should be free after removal")
	}
	if r.ChannelAvailable(23, p, t0) {
		t.Error("channel 23 should remain blocked")
	}
	if len(r.Incumbents()) != 1 {
		t.Errorf("registry holds %d incumbents, want 1", len(r.Incumbents()))
	}
}

func TestContiguousRuns(t *testing.T) {
	mk := func(chs ...int) []ChannelInfo {
		out := make([]ChannelInfo, len(chs))
		for i, c := range chs {
			out[i] = ChannelInfo{Channel: c}
		}
		return out
	}
	cases := []struct {
		in   []ChannelInfo
		want [][2]int
	}{
		{mk(), nil},
		{mk(14), [][2]int{{14, 1}}},
		{mk(14, 15, 16, 20, 21, 30), [][2]int{{14, 3}, {20, 2}, {30, 1}}},
		{mk(40, 41, 42, 43), [][2]int{{40, 4}}},
	}
	for _, c := range cases {
		got := ContiguousRuns(c.in)
		if len(got) != len(c.want) {
			t.Errorf("runs(%v) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("runs(%v)[%d] = %v, want %v", c.in, i, got[i], c.want[i])
			}
		}
	}
}

// Property: availability answers never include a channel any active
// in-range incumbent occupies, and always include every other channel.
func TestQuickAvailabilityComplete(t *testing.T) {
	f := func(blockedIdx []uint8) bool {
		r := NewRegistry(US)
		p := geo.Point{X: 500, Y: 500}
		blocked := map[int]bool{}
		for _, b := range blockedIdx {
			ch := 14 + int(b)%38
			blocked[ch] = true
			if err := r.AddIncumbent(Incumbent{Channel: ch, Location: p, ProtectRadius: 100, From: t0}); err != nil {
				return false
			}
		}
		avail := r.AvailableAt(p, t0)
		seen := map[int]bool{}
		for _, ci := range avail {
			if blocked[ci.Channel] {
				return false
			}
			seen[ci.Channel] = true
		}
		for _, ch := range US.Channels() {
			if !blocked[ch] && !seen[ch] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAvailability(b *testing.B) {
	r := NewRegistry(US)
	p := geo.Point{X: 500, Y: 500}
	for ch := 14; ch < 30; ch++ {
		_ = r.AddIncumbent(Incumbent{Channel: ch, Location: p, ProtectRadius: 1000, From: t0})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.AvailableAt(p, t0)
	}
}
