package spectrum

import (
	"testing"
	"time"

	"cellfi/internal/geo"
)

// TestAvailableAtProtectRadiusBoundary pins the regulatory edge of
// AvailableAt: a device sitting exactly ProtectRadius from the
// incumbent is inside the protection area (Protects uses <=), one
// epsilon further out it is not. The pawsdb grid index mirrors this
// exact predicate, so the boundary being inclusive here is what the
// 100-seed equivalence suite holds it to.
func TestAvailableAtProtectRadiusBoundary(t *testing.T) {
	r := NewRegistry(EU)
	if err := r.AddIncumbent(Incumbent{
		Kind: TVStation, Channel: 30,
		Location: geo.Point{X: 1000, Y: 2000}, ProtectRadius: 700, From: t0,
	}); err != nil {
		t.Fatal(err)
	}
	offered := func(p geo.Point) bool {
		for _, ci := range r.AvailableAt(p, t0) {
			if ci.Channel == 30 {
				return true
			}
		}
		return false
	}
	// Axis-aligned so the float64 distance is exact.
	if offered(geo.Point{X: 1700, Y: 2000}) {
		t.Error("point exactly at ProtectRadius must be protected (boundary inclusive)")
	}
	if !offered(geo.Point{X: 1700.001, Y: 2000}) {
		t.Error("point 1mm past ProtectRadius must be offered the channel")
	}
	if offered(geo.Point{X: 1000, Y: 2000}) {
		t.Error("incumbent's own location must be protected")
	}
}

// TestAvailableAtOverlappingIncumbents: a TV station and a scheduled
// wireless mic protect the same channel with different footprints and
// schedules. The channel must be withheld whenever ANY active
// incumbent covers the point, and RemoveIncumbents on the channel
// clears both at once.
func TestAvailableAtOverlappingIncumbents(t *testing.T) {
	r := NewRegistry(EU)
	// TV: always on, 2 km around the origin.
	if err := r.AddIncumbent(Incumbent{
		Kind: TVStation, Channel: 40, ProtectRadius: 2000, From: t0.Add(-time.Hour),
	}); err != nil {
		t.Fatal(err)
	}
	// Mic: 5 km around the same origin, active only for one hour.
	if err := r.AddIncumbent(Incumbent{
		Kind: WirelessMic, Channel: 40, ProtectRadius: 5000,
		From: t0.Add(time.Hour), To: t0.Add(2 * time.Hour),
	}); err != nil {
		t.Fatal(err)
	}
	offered := func(p geo.Point, at time.Time) bool {
		for _, ci := range r.AvailableAt(p, at) {
			if ci.Channel == 40 {
				return true
			}
		}
		return false
	}
	inner := geo.Point{X: 1500}        // inside both footprints
	ring := geo.Point{X: 3500}         // mic-only ring
	outside := geo.Point{X: 6000}      // outside both
	during := t0.Add(90 * time.Minute) // mic active
	after := t0.Add(3 * time.Hour)     // mic over

	if offered(inner, t0) || offered(inner, during) || offered(inner, after) {
		t.Error("TV footprint must block at all times regardless of the mic")
	}
	if !offered(ring, t0) {
		t.Error("mic-only ring must be free before the mic activates")
	}
	if offered(ring, during) {
		t.Error("mic-only ring must be blocked while the mic is active")
	}
	if !offered(ring, after) {
		t.Error("mic-only ring must be free again after the mic ends")
	}
	if !offered(outside, during) {
		t.Error("point outside both footprints must always be offered")
	}
	// Channel-keyed removal clears the TV and the mic together.
	if n := r.RemoveIncumbents(40); n != 2 {
		t.Fatalf("RemoveIncumbents(40) removed %d, want both overlapping incumbents", n)
	}
	if !offered(inner, during) {
		t.Error("channel still withheld after both incumbents were removed")
	}
}

// TestAvailableAtDomainMaps: the EU and US channel plans differ in
// numbering, count and width, and each registry rejects channels from
// the other plan.
func TestAvailableAtDomainMaps(t *testing.T) {
	cases := []struct {
		dom         Domain
		first, last int
		count       int
		widthHz     float64
		foreignCh   int // valid only in the other domain
	}{
		{EU, 21, 60, 40, 8e6, 14},
		{US, 14, 51, 38, 6e6, 60},
	}
	for _, c := range cases {
		r := NewRegistry(c.dom)
		avail := r.AvailableAt(geo.Point{}, t0)
		if len(avail) != c.count {
			t.Errorf("%s: empty registry offers %d channels, want %d", c.dom, len(avail), c.count)
		}
		if got := avail[0].Channel; got != c.first {
			t.Errorf("%s: first channel %d, want %d", c.dom, got, c.first)
		}
		if got := avail[len(avail)-1].Channel; got != c.last {
			t.Errorf("%s: last channel %d, want %d", c.dom, got, c.last)
		}
		for _, ci := range avail {
			if ci.WidthHz != c.widthHz {
				t.Errorf("%s: channel %d width %g Hz, want %g", c.dom, ci.Channel, ci.WidthHz, c.widthHz)
				break
			}
		}
		if err := r.AddIncumbent(Incumbent{Channel: c.foreignCh, From: t0}); err == nil {
			t.Errorf("%s: accepted channel %d from the other domain's plan", c.dom, c.foreignCh)
		}
	}
}
