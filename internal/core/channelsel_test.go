package core

import (
	"net/http/httptest"
	"testing"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/paws"
	"cellfi/internal/spectrum"
)

var t0 = time.Date(2017, 12, 12, 9, 0, 0, 0, time.UTC)

type selFixture struct {
	srv *paws.Server
	sel *ChannelSelector
	now time.Time
}

func newSelFixture(t *testing.T) *selFixture {
	t.Helper()
	reg := spectrum.NewRegistry(spectrum.EU)
	srv := paws.NewServer(reg)
	f := &selFixture{srv: srv, now: t0}
	srv.Now = func() time.Time { return f.now }
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	client := paws.NewClient(hs.URL, "AP-0001")
	f.sel = NewChannelSelector(client, geo.Point{X: 100, Y: 100}, 15)
	return f
}

func (f *selFixture) block(t *testing.T, ch int, dur time.Duration) {
	t.Helper()
	f.srv.Lock()
	defer f.srv.Unlock()
	inc := spectrum.Incumbent{
		Kind: spectrum.WirelessMic, Channel: ch,
		Location: geo.Point{X: 100, Y: 100}, ProtectRadius: 3000, From: f.now,
	}
	if dur > 0 {
		inc.To = f.now.Add(dur)
	}
	if err := f.srv.Registry().AddIncumbent(inc); err != nil {
		t.Fatal(err)
	}
}

func TestSelectorAcquires(t *testing.T) {
	f := newSelFixture(t)
	act, err := f.sel.Refresh(f.now)
	if err != nil || act != Acquired {
		t.Fatalf("first refresh: %v, %v", act, err)
	}
	l := f.sel.Current()
	if l == nil {
		t.Fatal("no lease after acquisition")
	}
	if l.Channel != 21 {
		t.Fatalf("picked channel %d, want lowest idle 21", l.Channel)
	}
	if l.EARFCN != lte.EARFCNFromFreq(l.CenterFreqHz) {
		t.Fatal("EARFCN inconsistent with centre frequency")
	}
	if l.MaxEIRPdBm != 36 {
		t.Fatalf("EIRP cap %g, want 36", l.MaxEIRPdBm)
	}
	// Stable on re-poll.
	if act, _ := f.sel.Refresh(f.now.Add(time.Second)); act != NoChange {
		t.Fatalf("idle re-poll returned %v", act)
	}
}

func TestSelectorVacatesAndSwitches(t *testing.T) {
	f := newSelFixture(t)
	if _, err := f.sel.Refresh(f.now); err != nil {
		t.Fatal(err)
	}
	ch := f.sel.Current().Channel
	// Withdraw the channel: selector must switch to another.
	f.block(t, ch, 5*time.Minute)
	f.now = f.now.Add(time.Second)
	act, err := f.sel.Refresh(f.now)
	if err != nil || act != Switched {
		t.Fatalf("after withdrawal: %v, %v", act, err)
	}
	if got := f.sel.Current().Channel; got == ch {
		t.Fatalf("still on withdrawn channel %d", got)
	}
}

func TestSelectorVacatesWhenNothingLeft(t *testing.T) {
	f := newSelFixture(t)
	if _, err := f.sel.Refresh(f.now); err != nil {
		t.Fatal(err)
	}
	for _, ch := range spectrum.EU.Channels() {
		f.block(t, ch, 0)
	}
	f.now = f.now.Add(time.Second)
	act, err := f.sel.Refresh(f.now)
	if act != Vacated {
		t.Fatalf("expected Vacated, got %v (%v)", act, err)
	}
	if f.sel.Current() != nil {
		t.Fatal("lease survived total withdrawal")
	}
}

func TestSelectorNetworkListenPreference(t *testing.T) {
	f := newSelFixture(t)
	// Low channels occupied by another technology, mid by CellFi,
	// only channel 40 idle: selector must pick 40.
	f.sel.Listen = func(ch int) Occupancy {
		switch {
		case ch < 30:
			return OtherTechOccupied
		case ch == 40:
			return Idle
		default:
			return CellFiOccupied
		}
	}
	if _, err := f.sel.Refresh(f.now); err != nil {
		t.Fatal(err)
	}
	if got := f.sel.Current().Channel; got != 40 {
		t.Fatalf("picked %d, want the idle 40", got)
	}
	// No idle channels: prefer CellFi-occupied over other tech.
	f2 := newSelFixture(t)
	f2.sel.Listen = func(ch int) Occupancy {
		if ch < 30 {
			return OtherTechOccupied
		}
		return CellFiOccupied
	}
	if _, err := f2.sel.Refresh(f2.now); err != nil {
		t.Fatal(err)
	}
	if got := f2.sel.Current().Channel; got != 30 {
		t.Fatalf("picked %d, want lowest CellFi-occupied 30", got)
	}
}

func TestSelectorWideCarrierNeedsContiguousRun(t *testing.T) {
	f := newSelFixture(t)
	f.sel.Bandwidth = lte.BW20MHz // needs ceil(20/8)=3 contiguous EU channels
	// Block channels so only 50,51,52 form a wide-enough run; leave
	// isolated singles elsewhere.
	for _, ch := range spectrum.EU.Channels() {
		switch ch {
		case 25, 50, 51, 52:
			continue
		default:
			f.block(t, ch, 0)
		}
	}
	if _, err := f.sel.Refresh(f.now); err != nil {
		t.Fatal(err)
	}
	l := f.sel.Current()
	if l == nil || l.Channel != 50 {
		t.Fatalf("20 MHz carrier got %+v, want run starting at 50", l)
	}
	// Carrier centre covers the 3-channel run, not just channel 50.
	c50, _ := spectrum.EU.CenterFreqHz(50)
	want := c50 + 8e6
	if l.CenterFreqHz != want {
		t.Fatalf("carrier centre %g, want %g", l.CenterFreqHz, want)
	}
}

func TestRequiredTVChannels(t *testing.T) {
	cases := []struct {
		bw    lte.Bandwidth
		width float64
		want  int
	}{
		{lte.BW5MHz, 6e6, 1}, {lte.BW5MHz, 8e6, 1},
		{lte.BW10MHz, 6e6, 2}, {lte.BW10MHz, 8e6, 2},
		{lte.BW20MHz, 6e6, 4}, {lte.BW20MHz, 8e6, 3},
	}
	for _, c := range cases {
		if got := RequiredTVChannels(c.bw, c.width); got != c.want {
			t.Errorf("RequiredTVChannels(%d MHz, %g) = %d, want %d", c.bw, c.width, got, c.want)
		}
	}
}

// The Figure 6 protocol cycle end-to-end over real HTTP: acquire,
// withdraw for five minutes, verify the selector is off-channel within
// the ETSI deadline, then reacquire when the incumbent leaves.
func TestSelectorFigure6Cycle(t *testing.T) {
	f := newSelFixture(t)
	if _, err := f.sel.Refresh(f.now); err != nil {
		t.Fatal(err)
	}
	ch := f.sel.Current().Channel
	// Block EVERY channel so no switch is possible — the paper's
	// experiment has the AP go dark.
	for _, c := range spectrum.EU.Channels() {
		f.block(t, c, 5*time.Minute)
	}
	// Poll once per second as the experiment does; the selector must
	// vacate at the first poll after withdrawal — far inside the
	// 60-second ETSI budget.
	var vacatedAt time.Time
	for i := 1; i <= 60; i++ {
		f.now = t0.Add(time.Duration(i) * time.Second)
		act, _ := f.sel.Refresh(f.now)
		if act == Vacated {
			vacatedAt = f.now
			break
		}
	}
	if vacatedAt.IsZero() {
		t.Fatal("never vacated within the ETSI deadline")
	}
	if vacatedAt.Sub(t0) > VacateDeadline {
		t.Fatalf("vacated after %v, deadline %v", vacatedAt.Sub(t0), VacateDeadline)
	}
	// Five minutes later the mics leave; the AP reacquires.
	f.now = t0.Add(5*time.Minute + 2*time.Second)
	act, err := f.sel.Refresh(f.now)
	if err != nil || act != Acquired {
		t.Fatalf("reacquisition: %v, %v", act, err)
	}
	if f.sel.Current().Channel != ch {
		t.Fatalf("reacquired %d, want original %d", f.sel.Current().Channel, ch)
	}
}
