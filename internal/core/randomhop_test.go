package core

import (
	"math/rand"
	"testing"
)

func newHopper(seed int64) *RandomHopper {
	return NewRandomHopper(13, rand.New(rand.NewSource(seed)))
}

func TestRandomHopperAcquiresAndShrinks(t *testing.T) {
	h := newHopper(1)
	held := h.Epoch(EpochInput{TargetShare: 7})
	if len(held) != 7 {
		t.Fatalf("held %d, want 7", len(held))
	}
	held = h.Epoch(EpochInput{TargetShare: 2})
	if len(held) != 2 {
		t.Fatalf("held %d after shrink, want 2", len(held))
	}
	if len(h.Epoch(EpochInput{TargetShare: 99})) != 13 {
		t.Fatal("over-target not clamped to channel size")
	}
	if len(h.Epoch(EpochInput{TargetShare: -3})) != 0 {
		t.Fatal("negative target not clamped")
	}
}

func TestRandomHopperDropsBadImmediately(t *testing.T) {
	h := newHopper(2)
	h.Epoch(EpochInput{TargetShare: 1})
	k := h.Held()[0]
	// The tiniest bad fraction evicts instantly — no bucket
	// hysteresis. (The replacement draw may land back on k, so mark
	// it busy to observe the eviction.)
	held := h.Epoch(EpochInput{
		TargetShare: 1,
		BadFrac:     map[int]float64{k: 0.01},
		SensedBusy:  map[int]bool{k: true},
	})
	if len(held) != 1 || held[0] == k {
		t.Fatalf("bad subchannel %d not evicted: %v", k, held)
	}
	if h.HopCount() != 1 {
		t.Fatalf("hops = %d, want 1", h.HopCount())
	}
}

func TestRandomHopperAvoidsBusy(t *testing.T) {
	h := newHopper(3)
	busy := map[int]bool{}
	for k := 0; k < 12; k++ {
		busy[k] = true
	}
	held := h.Epoch(EpochInput{TargetShare: 5, SensedBusy: busy})
	if len(held) != 1 || held[0] != 12 {
		t.Fatalf("held %v, want just subchannel 12", held)
	}
}

// The ablation's point: under sustained contention the bucketless
// hopper churns far more than the CellFi controller. Two neighbours
// fight over a channel that only fits one of their shares at a time.
func TestRandomHopperChurnsMoreThanBuckets(t *testing.T) {
	churn := func(mk func(seed int64) IM) int {
		a, b := mk(10), mk(20)
		toBusy := func(h []int) map[int]bool {
			m := map[int]bool{}
			for _, k := range h {
				m[k] = true
			}
			return m
		}
		var ha, hb []int
		for i := 0; i < 120; i++ {
			// Each side sees the other's holdings as interference on
			// overlap, plus transient noise marks (shared pattern).
			inA := EpochInput{TargetShare: 7, BadFrac: overlapBad(ha, hb), SensedBusy: toBusy(hb)}
			// Transient false positives on one held subchannel.
			if len(ha) > 0 && i%4 == 0 {
				inA.BadFrac[ha[i%len(ha)]] += 0.3
			}
			ha = a.Epoch(inA)
			inB := EpochInput{TargetShare: 7, BadFrac: overlapBad(hb, ha), SensedBusy: toBusy(ha)}
			if len(hb) > 0 && i%4 == 2 {
				inB.BadFrac[hb[i%len(hb)]] += 0.3
			}
			hb = b.Epoch(inB)
		}
		return a.HopCount() + b.HopCount()
	}
	bucketed := churn(func(seed int64) IM {
		return NewController(13, rand.New(rand.NewSource(seed)))
	})
	random := churn(func(seed int64) IM {
		return NewRandomHopper(13, rand.New(rand.NewSource(seed)))
	})
	if random <= bucketed {
		t.Fatalf("bucketless hopper churned less (%d) than CellFi (%d)?", random, bucketed)
	}
}

func TestRandomHopperIsIM(t *testing.T) {
	var _ IM = newHopper(5)
	var _ IM = NewController(13, rand.New(rand.NewSource(5)))
}

func TestRandomHopperZeroSubchannelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRandomHopper(0, nil)
}
