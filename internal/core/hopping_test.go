package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newCtl(seed int64) *Controller {
	return NewController(13, rand.New(rand.NewSource(seed)))
}

func TestControllerAcquiresShare(t *testing.T) {
	c := newCtl(1)
	held := c.Epoch(EpochInput{TargetShare: 5})
	if len(held) != 5 {
		t.Fatalf("held %d subchannels, want 5", len(held))
	}
	for _, k := range held {
		if k < 0 || k >= 13 {
			t.Fatalf("invalid subchannel %d", k)
		}
	}
	// Idempotent at steady state.
	again := c.Epoch(EpochInput{TargetShare: 5})
	if len(again) != 5 {
		t.Fatalf("steady state drifted to %d", len(again))
	}
	if c.Hops != 0 {
		t.Fatalf("counted %d hops during clean acquisition", c.Hops)
	}
}

func TestControllerShrinksShare(t *testing.T) {
	c := newCtl(2)
	c.Epoch(EpochInput{TargetShare: 10})
	held := c.Epoch(EpochInput{TargetShare: 3})
	if len(held) != 3 {
		t.Fatalf("held %d after shrink, want 3", len(held))
	}
}

func TestControllerReleasesLowestUtility(t *testing.T) {
	c := newCtl(3)
	c.Epoch(EpochInput{TargetShare: 3, Utility: map[int]float64{}})
	held := c.Held()
	util := map[int]float64{held[0]: 5, held[1]: 1, held[2]: 9}
	after := c.Epoch(EpochInput{TargetShare: 2, Utility: util})
	for _, k := range after {
		if k == held[1] {
			t.Fatalf("kept the lowest-utility subchannel %d", held[1])
		}
	}
}

func TestControllerAvoidsSensedBusy(t *testing.T) {
	c := newCtl(4)
	busy := map[int]bool{}
	for k := 0; k < 13; k++ {
		if k != 7 {
			busy[k] = true
		}
	}
	held := c.Epoch(EpochInput{TargetShare: 3, SensedBusy: busy})
	if len(held) != 1 || held[0] != 7 {
		t.Fatalf("held %v, want just the only free subchannel 7", held)
	}
	// Nothing free at all: hold what we have, retry later.
	busy[7] = true
	held = c.Epoch(EpochInput{TargetShare: 3, SensedBusy: busy})
	if len(held) != 1 {
		t.Fatalf("held %v with a fully busy channel", held)
	}
}

func TestBucketDecrementAndHop(t *testing.T) {
	c := newCtl(5)
	c.Epoch(EpochInput{TargetShare: 1})
	orig := c.Held()[0]
	// Hammer the held subchannel with full-time bad reports; the
	// exponential bucket (mean 10) must drain and force a hop.
	hops := 0
	for i := 0; i < 200; i++ {
		held := c.Epoch(EpochInput{
			TargetShare: 1,
			BadFrac:     map[int]float64{c.Held()[0]: 1.0},
		})
		if len(held) != 1 {
			t.Fatalf("share lost during hopping: %v", held)
		}
		if held[0] != orig {
			hops++
			orig = held[0]
		}
	}
	if hops < 3 {
		t.Fatalf("only %d hops under constant interference; buckets not draining", hops)
	}
	// The counter can exceed observed changes: a random replacement may
	// land back on the subchannel just vacated.
	if c.Hops < hops {
		t.Fatalf("hop counter %d below observed %d", c.Hops, hops)
	}
}

// The bucket update rule guarantees a newcomer can win a subchannel no
// matter how long the incumbent held it: the bucket only ever drains.
func TestBucketNeverRefillsWhileHeld(t *testing.T) {
	c := newCtl(6)
	c.Epoch(EpochInput{TargetShare: 1})
	k := c.Held()[0]
	// Partial-time interference (frac 0.25): expected drain time is
	// bucket/0.25 epochs, i.e. bounded; it must eventually hop.
	hopped := false
	for i := 0; i < 400; i++ {
		held := c.Epoch(EpochInput{TargetShare: 1, BadFrac: map[int]float64{k: 0.25}})
		if held[0] != k {
			hopped = true
			break
		}
	}
	if !hopped {
		t.Fatal("incumbent never yielded under sustained fractional interference")
	}
}

func TestHopPrefersUtility(t *testing.T) {
	// When hopping off a bad subchannel, the controller takes the
	// maximum-utility replacement (Section 5.3's hopping procedure).
	wins := 0
	for seed := int64(0); seed < 20; seed++ {
		c := newCtl(100 + seed)
		c.Epoch(EpochInput{TargetShare: 1})
		k := c.Held()[0]
		util := map[int]float64{}
		best := (k + 5) % 13
		for i := 0; i < 13; i++ {
			if i != k {
				util[i] = 1
			}
		}
		util[best] = 10
		for i := 0; i < 300 && c.Held()[0] == k; i++ {
			c.Epoch(EpochInput{TargetShare: 1, BadFrac: map[int]float64{k: 1}, Utility: util})
		}
		if c.Held()[0] == best {
			wins++
		}
	}
	if wins < 18 {
		t.Fatalf("hopped to max-utility subchannel only %d/20 times", wins)
	}
}

func TestPackingMovesToLowerIndex(t *testing.T) {
	c := newCtl(7)
	c.Epoch(EpochInput{TargetShare: 1, SensedBusy: map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true, 5: true, 6: true, 7: true, 8: true, 9: true, 10: true, 11: true}})
	if c.Held()[0] != 12 {
		t.Fatalf("setup failed: held %v", c.Held())
	}
	held := c.Epoch(EpochInput{TargetShare: 1, PackCandidate: map[int]int{12: 2}})
	if held[0] != 2 {
		t.Fatalf("packing did not move 12 -> 2: %v", held)
	}
	if c.Hops != 1 {
		t.Fatalf("packing should count as a hop (got %d)", c.Hops)
	}
}

func TestPackingRespectsConstraints(t *testing.T) {
	c := newCtl(8)
	c.Epoch(EpochInput{TargetShare: 2})
	held := c.Held()
	lo, hi := held[0], held[1]
	// Refuse upward moves, moves onto held subchannels, and moves
	// onto sensed-busy targets.
	after := c.Epoch(EpochInput{TargetShare: 2, PackCandidate: map[int]int{lo: hi}})
	if after[0] != lo || after[1] != hi {
		t.Fatalf("upward/held pack accepted: %v -> %v", held, after)
	}
	target := 0
	if lo == 0 {
		target = lo // self-move, also refused via to >= from
	}
	after = c.Epoch(EpochInput{TargetShare: 2,
		PackCandidate: map[int]int{hi: target},
		SensedBusy:    map[int]bool{target: true}})
	for _, k := range after {
		if k == target && target != lo {
			t.Fatalf("packed onto sensed-busy subchannel: %v", after)
		}
	}
}

func TestPackingDisabled(t *testing.T) {
	c := newCtl(9)
	c.PackingEnabled = false
	c.Epoch(EpochInput{TargetShare: 1, SensedBusy: map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true, 5: true, 6: true, 7: true, 8: true, 9: true, 10: true, 11: true}})
	held := c.Epoch(EpochInput{TargetShare: 1, PackCandidate: map[int]int{12: 0}})
	if held[0] != 12 {
		t.Fatalf("packing ran while disabled: %v", held)
	}
}

func TestControllerTargetClamping(t *testing.T) {
	c := newCtl(10)
	if held := c.Epoch(EpochInput{TargetShare: 99}); len(held) != 13 {
		t.Fatalf("over-target held %d, want all 13", len(held))
	}
	if held := c.Epoch(EpochInput{TargetShare: -1}); len(held) != 0 {
		t.Fatalf("negative target held %d, want 0", len(held))
	}
}

// Property: the held set never contains duplicates, never exceeds the
// target or the channel, and never includes a sensed-busy subchannel
// that was not already held.
func TestQuickControllerInvariants(t *testing.T) {
	f := func(seed int64, targets []uint8, busyMask uint16) bool {
		c := NewController(13, rand.New(rand.NewSource(seed)))
		if len(targets) > 30 {
			targets = targets[:30]
		}
		prev := map[int]bool{}
		for _, tr := range targets {
			target := int(tr) % 15
			busy := map[int]bool{}
			for k := 0; k < 13; k++ {
				if busyMask&(1<<k) != 0 {
					busy[k] = true
				}
			}
			bad := map[int]float64{}
			for _, k := range c.Held() {
				if k%3 == 0 {
					bad[k] = 0.5
				}
			}
			held := c.Epoch(EpochInput{TargetShare: target, SensedBusy: busy, BadFrac: bad})
			seen := map[int]bool{}
			for _, k := range held {
				if k < 0 || k >= 13 || seen[k] {
					return false
				}
				seen[k] = true
				if busy[k] && !prev[k] {
					return false // acquired a busy subchannel
				}
			}
			want := target
			if want > 13 {
				want = 13
			}
			if len(held) > want {
				return false
			}
			prev = seen
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Two controllers with complementary sensing should converge to
// disjoint sets when each marks the other's holdings busy — the
// one-dimensional essence of distributed subchannel selection.
func TestTwoControllersConvergeDisjoint(t *testing.T) {
	a := newCtl(11)
	b := newCtl(12)
	toBusy := func(held []int) map[int]bool {
		m := map[int]bool{}
		for _, k := range held {
			m[k] = true
		}
		return m
	}
	var ha, hb []int
	for i := 0; i < 50; i++ {
		ha = a.Epoch(EpochInput{TargetShare: 6, SensedBusy: toBusy(hb)})
		hb = b.Epoch(EpochInput{TargetShare: 6, SensedBusy: toBusy(ha), BadFrac: overlapBad(hb, ha)})
	}
	overlap := 0
	inA := map[int]bool{}
	for _, k := range ha {
		inA[k] = true
	}
	for _, k := range hb {
		if inA[k] {
			overlap++
		}
	}
	if overlap != 0 {
		t.Fatalf("controllers still overlap on %d subchannels: %v vs %v", overlap, ha, hb)
	}
	if len(ha) != 6 || len(hb) != 6 {
		t.Fatalf("shares not met: %d and %d", len(ha), len(hb))
	}
}

// overlapBad marks b-held subchannels that a also holds as fully bad.
func overlapBad(mine, theirs []int) map[int]float64 {
	inTheirs := map[int]bool{}
	for _, k := range theirs {
		inTheirs[k] = true
	}
	out := map[int]float64{}
	for _, k := range mine {
		if inTheirs[k] {
			out[k] = 1
		}
	}
	return out
}

func TestBucketDistribution(t *testing.T) {
	// Fresh buckets are exponential with mean Lambda: sample via
	// repeated acquisition.
	c := newCtl(13)
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		c.buckets = map[int]float64{}
		c.Epoch(EpochInput{TargetShare: 1})
		for _, v := range c.buckets {
			sum += v
		}
	}
	mean := sum / n
	if math.Abs(mean-DefaultLambda) > 1 {
		t.Fatalf("bucket mean = %g, want about %g", mean, DefaultLambda)
	}
}
