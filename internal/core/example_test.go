package core_test

import (
	"fmt"
	"math/rand"

	"cellfi/internal/core"
)

// The share calculation of Section 5.2: an AP serving 6 clients that
// senses 12 active clients in its neighbourhood claims half of the 13
// subchannels.
func ExampleShare() {
	fmt.Println(core.Share(13, 6, 12))
	fmt.Println(core.Share(13, 6, 6)) // alone: the whole channel
	fmt.Println(core.Share(13, 1, 26))
	// Output:
	// 6
	// 13
	// 1
}

// A controller acquires its share, suffers interference on one
// subchannel until the exponential bucket drains, and hops off it.
func ExampleController() {
	ctl := core.NewController(13, rand.New(rand.NewSource(7)))
	held := ctl.Epoch(core.EpochInput{TargetShare: 3})
	fmt.Println("held:", len(held))

	victim := held[0]
	for i := 0; i < 100 && ctl.Holds(victim); i++ {
		ctl.Epoch(core.EpochInput{
			TargetShare: 3,
			BadFrac:     map[int]float64{victim: 1},
			SensedBusy:  map[int]bool{victim: true},
		})
	}
	fmt.Println("still holds the interfered subchannel:", ctl.Holds(victim))
	fmt.Println("share preserved:", len(ctl.Held()) == 3)
	// Output:
	// held: 3
	// still holds the interfered subchannel: false
	// share preserved: true
}

// The interference detector trips only after a sustained CQI drop —
// ten consecutive reports below 60% of the windowed maximum.
func ExampleInterferenceDetector() {
	det := core.NewInterferenceDetector(100)
	for i := 0; i < 50; i++ {
		det.Observe(12) // clean baseline
	}
	det.Observe(5) // one bad report: not enough
	fmt.Println("after one drop:", det.Detected())
	for i := 0; i < 10; i++ {
		det.Observe(5)
	}
	fmt.Println("after a sustained drop:", det.Detected())
	// Output:
	// after one drop: false
	// after a sustained drop: true
}
