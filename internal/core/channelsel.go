package core

import (
	"fmt"
	"math"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/paws"
	"cellfi/internal/spectrum"
	"cellfi/internal/trace"
)

// Channel selection (Section 4.2): the CellFi AP maintains a valid TV-
// channel lease from a PAWS spectrum database, vacates within the
// regulatory deadline when the channel is withdrawn, and picks among
// offered channels by network listen — preferring idle channels, then
// channels occupied by other CellFi cells (whose interference the IM
// component can manage), and avoiding channels occupied by non-LTE
// technologies.

// Regulatory and measured timing constants for the Figure 6 experiment.
const (
	// VacateDeadline: ETSI EN 301 598 requires transmissions to stop
	// within one minute of channel withdrawal.
	VacateDeadline = time.Minute
	// MeasuredVacateDelay is what the paper's testbed achieved (the
	// AP radio off 2 s after the database change was observed).
	MeasuredVacateDelay = 2 * time.Second
	// MeasuredAPRebootDelay: the E40 needs 1 m 36 s to reboot after
	// radio parameter changes.
	MeasuredAPRebootDelay = 96 * time.Second
	// MeasuredClientReconnectDelay: the client's multi-band cell
	// search takes 56 s before traffic resumes.
	MeasuredClientReconnectDelay = 56 * time.Second
)

// Occupancy classifies what network listen hears on a TV channel.
type Occupancy int

const (
	// Idle: no transmissions detected.
	Idle Occupancy = iota
	// CellFiOccupied: other CellFi/LTE cells detected — sharable via
	// intra-channel interference management.
	CellFiOccupied
	// OtherTechOccupied: a non-LTE secondary user (e.g. 802.11af) —
	// avoided, since inter-technology coexistence is out of scope
	// (Section 2).
	OtherTechOccupied
)

func (o Occupancy) String() string {
	switch o {
	case Idle:
		return "idle"
	case CellFiOccupied:
		return "cellfi"
	case OtherTechOccupied:
		return "other-tech"
	}
	return "?"
}

// ListenFunc reports network-listen occupancy for a TV channel.
type ListenFunc func(channel int) Occupancy

// Lease is the channel the AP currently operates in.
type Lease struct {
	Channel      int
	CenterFreqHz float64
	EARFCN       int
	MaxEIRPdBm   float64
	Until        time.Time
}

// Action describes the outcome of a selector refresh.
type Action int

const (
	// NoChange: current lease still valid.
	NoChange Action = iota
	// Acquired: a (new) channel was selected.
	Acquired
	// Vacated: the current channel was withdrawn and no replacement
	// is available.
	Vacated
	// Switched: current channel withdrawn, a replacement acquired.
	Switched
)

func (a Action) String() string {
	switch a {
	case NoChange:
		return "no-change"
	case Acquired:
		return "acquired"
	case Vacated:
		return "vacated"
	case Switched:
		return "switched"
	}
	return "?"
}

// ChannelSelector drives the PAWS client for one access point.
type ChannelSelector struct {
	DB             *paws.Client
	Location       geo.Point
	AntennaHeightM float64
	// Bandwidth the LTE carrier needs; wider carriers need runs of
	// contiguous TV channels.
	Bandwidth lte.Bandwidth
	// Listen is the network-listen probe; nil treats everything as
	// idle.
	Listen ListenFunc
	// OnTransition, when set, observes every lease state-machine edge
	// (telemetry hook; see lease.go). It must not call back into the
	// selector.
	OnTransition func(Transition)
	// Trace, when non-nil, receives a lease record per state-machine
	// edge, timestamped with the poll time that caused it; TraceAP
	// tags the owning access point.
	Trace   trace.Recorder
	TraceAP int32
	// UnsafeIgnoreVacateBudget disables the regulatory fail-safe: the
	// radio stays on past the vacate budget and the lost-contact vacate
	// never fires. It exists ONLY so chaos harnesses can prove the
	// invariant watchdog catches a broken gate (internal/chaos's
	// broken-selector scenario); never set it outside such a proof.
	UnsafeIgnoreVacateBudget bool

	current     *Lease
	state       LeaseState
	lastContact time.Time
	stats       SelectorStats
}

// NewChannelSelector returns a selector for an AP at the given
// location using a 5 MHz carrier.
func NewChannelSelector(db *paws.Client, loc geo.Point, heightM float64) *ChannelSelector {
	return &ChannelSelector{DB: db, Location: loc, AntennaHeightM: heightM, Bandwidth: lte.BW5MHz}
}

// Current returns the active lease, or nil when off-channel.
func (s *ChannelSelector) Current() *Lease { return s.current }

// RequiredTVChannels returns how many contiguous TV channels of the
// given width the LTE bandwidth needs.
func RequiredTVChannels(bw lte.Bandwidth, tvWidthHz float64) int {
	return int(math.Ceil(bw.Hz() / tvWidthHz))
}

// Refresh queries the database and reconciles the lease, driving the
// lifecycle state machine (lease.go). It returns the action taken.
// Refresh must be called at least once per the database's
// MaxPollingSecs; the Figure 6 experiment polls every second.
func (s *ChannelSelector) Refresh(now time.Time) (Action, error) {
	s.stats.Refreshes++
	switch {
	case s.current != nil:
		s.transition(StateRenewing, now, "renewal poll")
	case s.state == StateVacated:
		s.transition(StateAcquiring, now, "reacquisition poll")
	}
	resp, err := s.DB.GetSpectrum(s.Location, s.AntennaHeightM)
	if err != nil {
		s.stats.Failures++
		return s.refreshFailed(now, err)
	}
	s.lastContact = now
	avail := usableAt(resp.Channels(), now)
	had := s.current != nil

	if had && s.channelStillOffered(avail) {
		// Refresh the expiry from the new answer.
		for _, ci := range avail {
			if ci.Channel == s.current.Channel {
				s.current.Until = ci.Until
				s.current.MaxEIRPdBm = ci.MaxEIRPdBm
			}
		}
		s.stats.Renewed++
		s.transition(StateGranted, now, "lease renewed")
		return NoChange, nil
	}

	next, ok := s.pick(avail)
	switch {
	case !ok && had:
		s.current = nil
		s.transition(StateVacated, now, "channel withdrawn")
		return Vacated, nil
	case !ok:
		return NoChange, fmt.Errorf("core: no usable channel offered")
	case had:
		s.current = next
		s.stats.Switched++
		s.transition(StateGranted, now, "channel switched")
		return Switched, nil
	default:
		s.current = next
		s.stats.Acquired++
		s.transition(StateGranted, now, "channel acquired")
		return Acquired, nil
	}
}

// refreshFailed reconciles a failed database poll against the vacate
// budget: regulatory denials vacate immediately; transient failures
// ride the grace period until min(lease expiry, last contact +
// VacateDeadline); past the budget the fail-safe fires.
func (s *ChannelSelector) refreshFailed(now time.Time, err error) (Action, error) {
	if paws.Classify(err) == paws.RegulatoryDeny && s.current != nil {
		s.current = nil
		s.transition(StateVacated, now, "regulatory deny")
		return Vacated, err
	}
	if s.current == nil {
		// Off-channel: keep acquiring; nothing to vacate.
		return NoChange, err
	}
	if now.After(s.VacateBy()) && !s.UnsafeIgnoreVacateBudget {
		s.current = nil
		s.transition(StateVacated, now, "vacate budget expired")
		return Vacated, err
	}
	s.transition(StateGracePeriod, now, "renewal failed")
	return NoChange, err
}

// usableAt drops offers that are already expired at the poll time. A
// clock-skewed database can hand out leases that end in the past;
// treating them as absent (rather than carrying a dead lease) is what
// keeps Granted ⇒ TransmitAllowed coherent.
func usableAt(avail []spectrum.ChannelInfo, now time.Time) []spectrum.ChannelInfo {
	out := avail[:0]
	for _, ci := range avail {
		if ci.Until.After(now) {
			out = append(out, ci)
		}
	}
	return out
}

func (s *ChannelSelector) channelStillOffered(avail []spectrum.ChannelInfo) bool {
	for _, ci := range avail {
		if ci.Channel == s.current.Channel {
			return true
		}
	}
	return false
}

// pick selects the best channel: only channels inside contiguous runs
// wide enough for the carrier qualify; idle channels beat CellFi-
// occupied ones; other-technology channels are used only as a last
// resort. Within a class, the lowest channel number wins
// (deterministic, and it concentrates secondary users).
func (s *ChannelSelector) pick(avail []spectrum.ChannelInfo) (*Lease, bool) {
	if len(avail) == 0 {
		return nil, false
	}
	need := RequiredTVChannels(s.Bandwidth, avail[0].WidthHz)
	eligible := map[int]spectrum.ChannelInfo{}
	for _, run := range spectrum.ContiguousRuns(avail) {
		if run[1] < need {
			continue
		}
		// Any start position within the run that leaves `need`
		// channels qualifies; we track the first channel of the
		// carrier placement.
		for c := run[0]; c <= run[0]+run[1]-need; c++ {
			for _, ci := range avail {
				if ci.Channel == c {
					eligible[c] = ci
				}
			}
		}
	}
	if len(eligible) == 0 {
		return nil, false
	}
	listen := s.Listen
	if listen == nil {
		listen = func(int) Occupancy { return Idle }
	}
	best, bestClass := -1, Occupancy(99)
	for c := range eligible {
		cls := listen(c)
		if cls < bestClass || (cls == bestClass && c < best) {
			best, bestClass = c, cls
		}
	}
	ci := eligible[best]
	// Centre the LTE carrier on the (first) TV channel's centre; for
	// multi-channel carriers the centre shifts to cover the run.
	center := ci.CenterFreqHz + float64(need-1)*ci.WidthHz/2
	return &Lease{
		Channel:      best,
		CenterFreqHz: center,
		EARFCN:       lte.EARFCNFromFreq(center),
		MaxEIRPdBm:   ci.MaxEIRPdBm,
		Until:        ci.Until,
	}, true
}
