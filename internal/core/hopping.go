package core

import (
	"math/rand"
	"sort"

	"cellfi/internal/trace"
)

// sortedKeysF returns the keys of a float-valued map in ascending order.
func sortedKeysF(m map[int]float64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// sortedKeysI returns the keys of an int-valued map in ascending order.
func sortedKeysI(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Distributed subchannel selection (Section 5.3). Each epoch the
// controller reconciles its held subchannel set against the target
// share, decrements exponential bucket values for subchannels its
// clients report as bad, hops off exhausted subchannels onto the
// highest-utility alternatives, and runs the channel re-use packing
// heuristic toward low-index subchannels.

// DefaultLambda is the mean of the exponential bucket distribution;
// the paper found 10 to work well experimentally.
const DefaultLambda = 10.0

// Controller is the per-AP interference-management state machine.
type Controller struct {
	// S is the number of subchannels in the channel.
	S int
	// Lambda is the bucket mean.
	Lambda float64
	// PackingEnabled turns the channel re-use heuristic on (the
	// default; off for the ablation).
	PackingEnabled bool

	// Trace, when non-nil, receives an im-share record per Epoch and
	// an im-hop record per holding change; TraceAP tags them with the
	// owning cell. The controller has no clock of its own, so the
	// driving layer (internal/netsim) sets TraceNowNS to the epoch
	// timestamp before each update.
	Trace      trace.Recorder
	TraceAP    int32
	TraceNowNS int64

	rng     *rand.Rand
	buckets map[int]float64 // held subchannel -> remaining bucket value
	// Hops counts subchannel changes (for convergence reporting).
	Hops int
}

// traceHop emits one im-hop record; from/to use -1 for "none".
func (c *Controller) traceHop(from, to, cause int64) {
	if c.Trace == nil {
		return
	}
	c.Trace.Record(trace.Record{T: c.TraceNowNS, AP: c.TraceAP, Kind: trace.KindIMHop,
		N: 3, Args: [trace.MaxArgs]int64{from, to, cause}})
}

// traceShare emits the end-of-epoch im-share record: the target the
// share calculation produced and the holdings the update settled on.
func (c *Controller) traceShare(target int) {
	if c.Trace == nil {
		return
	}
	var mask int64
	for k := range c.buckets {
		if k < 63 {
			mask |= 1 << k
		}
	}
	c.Trace.Record(trace.Record{T: c.TraceNowNS, AP: c.TraceAP, Kind: trace.KindIMShare,
		N: 3, Args: [trace.MaxArgs]int64{int64(target), mask, int64(len(c.buckets))}})
}

// EpochInput carries one epoch's observations into the controller.
type EpochInput struct {
	// TargetShare is the share-calculation output for this epoch.
	TargetShare int
	// BadFrac maps held subchannels to the scheduled-time fraction
	// of clients that observed them as interfered (the bucket
	// decrement of Section 5.3). Absent key = observed good.
	BadFrac map[int]float64
	// Utility scores candidate subchannels: estimated achievable
	// throughput summed over the clients recently scheduled there
	// (higher is better). Used to pick replacement subchannels. May
	// be nil, in which case replacements are random.
	Utility map[int]float64
	// SensedBusy marks subchannels the AP believes other networks
	// currently occupy; hopping avoids them. (Derived from client
	// CQI reports; imperfect.)
	SensedBusy map[int]bool
	// PackCandidate maps a held subchannel to a lower-index
	// subchannel that all of its recently scheduled users observed
	// as free for a contiguous period (Section 5.3 channel re-use).
	PackCandidate map[int]int
}

// NewController returns a controller for S subchannels using the given
// random stream.
func NewController(s int, rng *rand.Rand) *Controller {
	if s <= 0 {
		panic("core: controller needs at least one subchannel")
	}
	return &Controller{
		S:              s,
		Lambda:         DefaultLambda,
		PackingEnabled: true,
		rng:            rng,
		buckets:        make(map[int]float64),
	}
}

// Held returns the currently held subchannels in ascending order.
func (c *Controller) Held() []int {
	out := make([]int, 0, len(c.buckets))
	for k := range c.buckets {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Holds reports whether subchannel k is held.
func (c *Controller) Holds(k int) bool {
	_, ok := c.buckets[k]
	return ok
}

// drawBucket samples a fresh exponential bucket value.
func (c *Controller) drawBucket() float64 {
	return c.rng.ExpFloat64() * c.Lambda
}

// Epoch runs one 1-second interference-management update and returns
// the held set after the update.
func (c *Controller) Epoch(in EpochInput) []int {
	target := in.TargetShare
	if target > c.S {
		target = c.S
	}
	if target < 0 {
		target = 0
	}

	// 1. Bucket updates: decrement buckets of subchannels observed
	// bad; give up the ones that reach zero and hop to the best
	// available alternative. Keys are visited in ascending order so
	// runs are deterministic for a given seed.
	for _, k := range sortedKeysF(in.BadFrac) {
		frac := in.BadFrac[k]
		if _, held := c.buckets[k]; !held || frac <= 0 {
			continue
		}
		c.buckets[k] -= frac
		if c.buckets[k] <= 0 {
			delete(c.buckets, k)
			to := int64(-1)
			if repl, ok := c.pickReplacement(in); ok {
				c.buckets[repl] = c.drawBucket()
				to = int64(repl)
			}
			c.Hops++
			c.traceHop(int64(k), to, trace.HopCauseBucket)
		}
	}

	// 2. Share reconciliation.
	for len(c.buckets) > target {
		// Release the held subchannel with the lowest utility
		// (least valuable to our clients).
		if dropped := c.release(in.Utility); dropped >= 0 {
			c.traceHop(int64(dropped), -1, trace.HopCauseShareShrink)
		}
	}
	for len(c.buckets) < target {
		k, ok := c.pickReplacement(in)
		if !ok {
			break // nothing sensed free; try again next epoch
		}
		c.buckets[k] = c.drawBucket()
		c.traceHop(-1, int64(k), trace.HopCauseShareGrow)
	}

	// 3. Channel re-use packing: migrate toward low-index free
	// subchannels so lightly interfered cells spontaneously overlap
	// there (Section 5.3).
	if c.PackingEnabled {
		for _, from := range sortedKeysI(in.PackCandidate) {
			to := in.PackCandidate[from]
			if !c.Holds(from) || c.Holds(to) || to >= from {
				continue
			}
			if in.SensedBusy[to] {
				continue
			}
			delete(c.buckets, from)
			c.buckets[to] = c.drawBucket()
			c.Hops++
			c.traceHop(int64(from), int64(to), trace.HopCausePack)
		}
	}
	c.traceShare(target)
	return c.Held()
}

// release drops the held subchannel with the lowest utility (lowest
// index among ties, keeping runs deterministic) and returns it, -1 if
// nothing was held.
func (c *Controller) release(utility map[int]float64) int {
	worst, worstScore := -1, 0.0
	for _, k := range c.Held() {
		score := utility[k]
		if worst == -1 || score < worstScore {
			worst, worstScore = k, score
		}
	}
	if worst >= 0 {
		delete(c.buckets, worst)
	}
	return worst
}

// pickReplacement chooses an unheld, not-sensed-busy subchannel with
// maximum utility; ties (and the nil-utility case) break uniformly at
// random.
func (c *Controller) pickReplacement(in EpochInput) (int, bool) {
	var best []int
	bestScore := 0.0
	for k := 0; k < c.S; k++ {
		if c.Holds(k) || in.SensedBusy[k] {
			continue
		}
		score := in.Utility[k]
		switch {
		case len(best) == 0 || score > bestScore:
			best = best[:0]
			best = append(best, k)
			bestScore = score
		case score == bestScore:
			best = append(best, k)
		}
	}
	if len(best) == 0 {
		return 0, false
	}
	return best[c.rng.Intn(len(best))], true
}

// Release drops a held subchannel (no hop counted: the caller is a
// coordinated reassignment, not a contention loss). It reports whether
// the subchannel was held.
func (c *Controller) Release(k int) bool {
	if _, ok := c.buckets[k]; !ok {
		return false
	}
	delete(c.buckets, k)
	c.traceHop(int64(k), -1, trace.HopCauseRelease)
	return true
}

// Acquire takes a specific subchannel with a fresh bucket, counting a
// hop. Used by coordinated layers (e.g. an operator deconflicting its
// own cells) that place cells deterministically.
func (c *Controller) Acquire(k int) {
	if k < 0 || k >= c.S {
		panic("core: acquire out of range")
	}
	if _, ok := c.buckets[k]; ok {
		return
	}
	c.buckets[k] = c.drawBucket()
	c.Hops++
	c.traceHop(-1, int64(k), trace.HopCauseAcquire)
}
