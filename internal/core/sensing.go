// Package core implements the paper's contribution: the CellFi access
// point's decentralized interference-management and channel-selection
// components (Sections 4 and 5).
//
// Interference management splits into sensing (PRACH overhearing to
// count contending clients, CQI-drop detection of subchannel
// interference), distributed share calculation, and the randomized
// subchannel hopping procedure with exponential buckets and the
// channel re-use packing heuristic. Channel selection drives a PAWS
// spectrum database through the paws package and performs
// network-listen channel choice among the offered TV channels.
package core

import (
	"math"
	"time"

	"cellfi/internal/sim"
)

// ClientEstimator tracks clients overheard via PRACH preambles. CellFi
// APs solicit preambles every second (PDCCH-order RACH) and expire each
// sighting after one second so inactive clients age out (Section 5.1).
type ClientEstimator struct {
	// Expiry is how long one sighting stays valid (default 1 s).
	Expiry time.Duration
	seen   map[int]sim.Time
}

// NewClientEstimator returns an estimator with the paper's 1-second
// expiry.
func NewClientEstimator() *ClientEstimator {
	return &ClientEstimator{Expiry: time.Second, seen: make(map[int]sim.Time)}
}

// Hear records a preamble from the given client at time now.
func (e *ClientEstimator) Hear(clientID int, now sim.Time) {
	e.seen[clientID] = now
}

// Count returns the number of distinct clients heard within the expiry
// window ending at now. Expired entries are pruned.
func (e *ClientEstimator) Count(now sim.Time) int {
	for id, at := range e.seen {
		if now-at > e.Expiry {
			delete(e.seen, id)
		}
	}
	return len(e.seen)
}

// Interference detector constants (Section 6.3.2).
const (
	// DetectDropFraction: interference is declared when CQI falls
	// below this fraction of the windowed maximum...
	DetectDropFraction = 0.6
	// DetectRunLength: ...for this many consecutive reports.
	DetectRunLength = 10
	// MeasuredFalsePositiveRate and MeasuredDetectionRate are the
	// test-bed error rates the large-scale simulation injects.
	MeasuredFalsePositiveRate = 0.02
	MeasuredDetectionRate     = 0.80
)

// InterferenceDetector implements the paper's CQI-drop estimator for
// one (client, subchannel) pair: it keeps the maximum CQI observed in a
// sliding window as the interference-free reference and declares
// interference after DetectRunLength consecutive reports below
// DetectDropFraction of that maximum.
type InterferenceDetector struct {
	window  []int
	pos     int
	filled  int
	run     int
	tripped bool
}

// NewInterferenceDetector keeps the max over the given number of
// reports (at 2 ms per report, 500 covers one second).
func NewInterferenceDetector(windowSamples int) *InterferenceDetector {
	if windowSamples <= 0 {
		panic("core: detector window must be positive")
	}
	return &InterferenceDetector{window: make([]int, windowSamples)}
}

// Observe feeds one CQI report and returns whether interference is
// currently declared.
func (d *InterferenceDetector) Observe(cqi int) bool {
	d.window[d.pos] = cqi
	d.pos = (d.pos + 1) % len(d.window)
	if d.filled < len(d.window) {
		d.filled++
	}
	max := 0
	for i := 0; i < d.filled; i++ {
		if c := d.window[i]; c > max {
			max = c
		}
	}
	if max == 0 {
		d.run = 0
		d.tripped = false
		return false
	}
	if float64(cqi) < DetectDropFraction*float64(max) {
		d.run++
	} else {
		d.run = 0
	}
	d.tripped = d.run >= DetectRunLength
	return d.tripped
}

// Detected reports the current verdict without feeding a sample.
func (d *InterferenceDetector) Detected() bool { return d.tripped }

// Share calculation (Section 5.2): AP i with Ni associated active
// clients, sensing NPi active clients in its neighbourhood (its own
// included), reserves Si = Ni * S / NPi of the S subchannels. The
// result is clamped to [min(1, Ni), S] — an AP with clients always
// claims at least one subchannel, and sensing glitches can never push
// the share beyond the carrier.
func Share(totalSubchannels, ownClients, sensedClients int) int {
	if ownClients <= 0 {
		return 0
	}
	if sensedClients < ownClients {
		// Sensing must at least include our own clients.
		sensedClients = ownClients
	}
	s := int(math.Floor(float64(ownClients) * float64(totalSubchannels) / float64(sensedClients)))
	if s < 1 {
		s = 1
	}
	if s > totalSubchannels {
		s = totalSubchannels
	}
	return s
}
