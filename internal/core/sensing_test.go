package core

import (
	"math/rand"
	"testing"
	"time"
)

func TestClientEstimatorExpiry(t *testing.T) {
	e := NewClientEstimator()
	e.Hear(1, 0)
	e.Hear(2, 0)
	e.Hear(3, 500*time.Millisecond)
	if got := e.Count(900 * time.Millisecond); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	// At 1.2 s, the sightings at t=0 have expired (1 s window).
	if got := e.Count(1200 * time.Millisecond); got != 1 {
		t.Fatalf("count after expiry = %d, want 1", got)
	}
	// Re-hearing refreshes.
	e.Hear(1, 1300*time.Millisecond)
	if got := e.Count(1400 * time.Millisecond); got != 2 {
		t.Fatalf("count after refresh = %d, want 2", got)
	}
}

func TestClientEstimatorDuplicates(t *testing.T) {
	e := NewClientEstimator()
	for i := 0; i < 10; i++ {
		e.Hear(42, sim2ms(i))
	}
	if got := e.Count(sim2ms(10)); got != 1 {
		t.Fatalf("duplicate preambles counted %d times", got)
	}
}

func sim2ms(i int) time.Duration { return time.Duration(i) * 2 * time.Millisecond }

func TestShareCalculation(t *testing.T) {
	cases := []struct {
		s, own, sensed, want int
	}{
		{13, 6, 6, 13},  // alone: everything
		{13, 6, 12, 6},  // half the neighbourhood: half the channel
		{13, 3, 12, 3},  // quarter
		{13, 1, 26, 1},  // floor at one subchannel
		{13, 0, 10, 0},  // no clients, no share
		{13, 6, 3, 13},  // sensing undercounts below own clients: clamp
		{25, 5, 10, 12}, // 20 MHz carrier
	}
	for _, c := range cases {
		if got := Share(c.s, c.own, c.sensed); got != c.want {
			t.Errorf("Share(%d,%d,%d) = %d, want %d", c.s, c.own, c.sensed, got, c.want)
		}
	}
}

// Frequency fair-sharing (Section 5.2): two APs with equal client
// counts sensing each other's clients end up with complementary,
// feasible shares.
func TestShareFairSplit(t *testing.T) {
	s1 := Share(13, 6, 12)
	s2 := Share(13, 6, 12)
	if s1+s2 > 13 {
		t.Fatalf("shares %d+%d exceed the channel", s1, s2)
	}
	if s1 != s2 {
		t.Fatalf("symmetric APs got asymmetric shares %d vs %d", s1, s2)
	}
	// Asymmetric load: 9 vs 3 clients.
	a, b := Share(13, 9, 12), Share(13, 3, 12)
	if a <= b {
		t.Fatalf("more-loaded AP should get the bigger share: %d vs %d", a, b)
	}
	if a+b > 13 {
		t.Fatalf("shares %d+%d exceed the channel", a, b)
	}
}

func TestInterferenceDetectorTriggers(t *testing.T) {
	d := NewInterferenceDetector(100)
	// Establish a clean baseline of CQI 10.
	for i := 0; i < 50; i++ {
		if d.Observe(10) {
			t.Fatal("false trigger during clean baseline")
		}
	}
	// Interference drops CQI to 4 (< 60% of max 10): needs 10
	// consecutive reports to trip.
	for i := 0; i < DetectRunLength-1; i++ {
		if d.Observe(4) {
			t.Fatalf("tripped after only %d low reports", i+1)
		}
	}
	if !d.Observe(4) {
		t.Fatal("did not trip after the full run of low reports")
	}
	if !d.Detected() {
		t.Fatal("Detected() disagrees with Observe result")
	}
}

func TestInterferenceDetectorRunResets(t *testing.T) {
	d := NewInterferenceDetector(100)
	for i := 0; i < 50; i++ {
		d.Observe(10)
	}
	// Bursty weak interference with recoveries never trips: the run
	// resets on each good sample (the "should not trigger reallocation
	// on weak interference" property of Section 6.3.2).
	for i := 0; i < 100; i++ {
		if i%5 == 4 {
			d.Observe(10)
		} else {
			d.Observe(4)
		}
		if d.Detected() {
			t.Fatal("detector tripped on interrupted low runs")
		}
	}
}

func TestInterferenceDetectorBoundary(t *testing.T) {
	d := NewInterferenceDetector(100)
	for i := 0; i < 30; i++ {
		d.Observe(10)
	}
	// Exactly 60% of max (6 of 10) is NOT below the threshold.
	for i := 0; i < 50; i++ {
		if d.Observe(6) {
			t.Fatal("tripped at exactly the 60% boundary")
		}
	}
	// 5 of 10 is below.
	for i := 0; i < DetectRunLength; i++ {
		d.Observe(5)
	}
	if !d.Detected() {
		t.Fatal("did not trip below the boundary")
	}
}

func TestInterferenceDetectorAdaptsAfterWindow(t *testing.T) {
	d := NewInterferenceDetector(20)
	for i := 0; i < 30; i++ {
		d.Observe(12)
	}
	// Channel genuinely degrades to CQI 5 and stays there. Once the
	// old max slides out of the window, 5 becomes the new baseline
	// and the detector must stop crying interference.
	for i := 0; i < 20+DetectRunLength; i++ {
		d.Observe(5)
	}
	if d.Observe(5) {
		t.Fatal("detector did not adapt to a new, lower baseline")
	}
}

func TestInterferenceDetectorZeroWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window should panic")
		}
	}()
	NewInterferenceDetector(0)
}

// Measured behaviour check (Section 6.3.2): against a fading channel
// without interference the detector false-positives rarely; against
// strong interference it detects most episodes.
func TestDetectorErrorRatesOnSyntheticChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Clean channel: CQI fluctuates 9..12 with occasional deep fade.
	d := NewInterferenceDetector(500)
	fp := 0
	const n = 20000
	prevTripped := false
	for i := 0; i < n; i++ {
		cqi := 9 + rng.Intn(4)
		if rng.Float64() < 0.01 { // isolated deep fades
			cqi = 4
		}
		tripped := d.Observe(cqi)
		if tripped && !prevTripped {
			fp++
		}
		prevTripped = tripped
	}
	// Isolated fades never produce 10-in-a-row: expect ~0 triggers.
	if fp > 3 {
		t.Fatalf("%d false triggers on clean fading channel", fp)
	}

	// Strong interference episodes: CQI halves for 50-sample bursts.
	episodes, detected := 0, 0
	d2 := NewInterferenceDetector(500)
	for i := 0; i < 200; i++ {
		d2.Observe(10 + rng.Intn(3))
	}
	for ep := 0; ep < 100; ep++ {
		episodes++
		hit := false
		for i := 0; i < 50; i++ {
			// Interference with its own fading: occasionally an
			// interfered sample still reads high.
			cqi := 3 + rng.Intn(2)
			if rng.Float64() < 0.15 {
				cqi = 9
			}
			if d2.Observe(cqi) {
				hit = true
			}
		}
		if hit {
			detected++
		}
		for i := 0; i < 100; i++ { // recovery gap
			d2.Observe(10 + rng.Intn(3))
		}
	}
	rate := float64(detected) / float64(episodes)
	if rate < 0.7 {
		t.Fatalf("detection rate = %g, want >= 0.7 (paper: 0.8)", rate)
	}
}
