package core

import (
	"math/rand"
	"sort"
)

// IM is the interface the network simulator drives: any per-AP
// intra-channel interference-management policy — CellFi's bucket
// controller, the memoryless random hopper below, or future variants.
type IM interface {
	// Epoch applies one 1-second update and returns the held set.
	Epoch(in EpochInput) []int
	// Held returns the current subchannel set in ascending order.
	Held() []int
	// HopCount reports cumulative subchannel changes.
	HopCount() int
}

// HopCount implements IM for the CellFi controller.
func (c *Controller) HopCount() int { return c.Hops }

var _ IM = (*Controller)(nil)

// RandomHopper is the memoryless baseline CellFi's bucket mechanism is
// an improvement over: any subchannel reported bad is dropped
// immediately and replaced with a uniform random pick. Without the
// exponential buckets there is no hysteresis — transient interference
// (or a detector false positive) instantly evicts the AP, and two
// contending APs can chase each other indefinitely. The "lambda"
// ablation quantifies the difference.
type RandomHopper struct {
	// S is the number of subchannels.
	S int

	rng  *rand.Rand
	held map[int]bool
	hops int
}

// NewRandomHopper returns a hopper over s subchannels.
func NewRandomHopper(s int, rng *rand.Rand) *RandomHopper {
	if s <= 0 {
		panic("core: hopper needs at least one subchannel")
	}
	return &RandomHopper{S: s, rng: rng, held: make(map[int]bool)}
}

// Held implements IM.
func (r *RandomHopper) Held() []int {
	out := make([]int, 0, len(r.held))
	for k := range r.held {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// HopCount implements IM.
func (r *RandomHopper) HopCount() int { return r.hops }

// Epoch implements IM: drop every bad subchannel, then reconcile to
// the target with uniform random picks among not-sensed-busy
// subchannels.
func (r *RandomHopper) Epoch(in EpochInput) []int {
	target := in.TargetShare
	if target > r.S {
		target = r.S
	}
	if target < 0 {
		target = 0
	}
	for _, k := range sortedKeysF(in.BadFrac) {
		if in.BadFrac[k] > 0 && r.held[k] {
			delete(r.held, k)
			r.hops++
		}
	}
	// Shrink (arbitrary-but-deterministic: highest index first).
	for len(r.held) > target {
		held := r.Held()
		delete(r.held, held[len(held)-1])
	}
	// Grow with uniform random picks.
	for len(r.held) < target {
		var free []int
		for k := 0; k < r.S; k++ {
			if !r.held[k] && !in.SensedBusy[k] {
				free = append(free, k)
			}
		}
		if len(free) == 0 {
			break
		}
		r.held[free[r.rng.Intn(len(free))]] = true
	}
	return r.Held()
}

var _ IM = (*RandomHopper)(nil)
