package core

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/paws"
	"cellfi/internal/spectrum"
)

// Lease lifecycle state-machine tests, plus the three distinct
// GetSpectrum failure paths the selector must tell apart: an empty
// spectra list (a valid "nothing for you" answer), an RPC error (the
// database answered with a protocol error), and an HTTP timeout (the
// database never answered).

// scriptedDB serves canned JSON-RPC responses: mode selects among a
// real server, an empty-spectra answer, an RPC error, or a stall.
// mode is mutex-guarded: a stalled handler goroutine outlives its
// client-side timeout, so the test's next setMode races its read.
type scriptedDB struct {
	inner *paws.Server
	mu    sync.Mutex
	mode  string // "real", "empty", "rpc-error", "stall"
	stall chan struct{}
}

func (d *scriptedDB) setMode(m string) {
	d.mu.Lock()
	d.mode = m
	d.mu.Unlock()
}

func (d *scriptedDB) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	mode := d.mode
	d.mu.Unlock()
	switch mode {
	case "empty":
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"jsonrpc":"2.0","result":{"timestamp":"2017-12-12T09:00:00Z","spectrumSchedules":[{"startTime":"2017-12-12T09:00:00Z","stopTime":"2017-12-12T21:00:00Z","spectra":[]}]},"id":1}`)
	case "rpc-error":
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"jsonrpc":"2.0","error":{"code":%d,"message":"outside coverage"},"id":1}`,
			paws.ErrCodeOutsideCoverage)
	case "stall":
		<-d.stall
	default:
		d.inner.ServeHTTP(w, r)
	}
}

func newScriptedFixture(t *testing.T) (*scriptedDB, *ChannelSelector) {
	t.Helper()
	reg := spectrum.NewRegistry(spectrum.EU)
	reg.LeaseDuration = 30 * time.Second
	srv := paws.NewServer(reg)
	srv.Now = func() time.Time { return t0 }
	db := &scriptedDB{inner: srv, mode: "real", stall: make(chan struct{})}
	hs := httptest.NewServer(db)
	t.Cleanup(hs.Close)
	t.Cleanup(func() { close(db.stall) })
	cl := paws.NewClient(hs.URL, "AP-SCRIPTED")
	cl.CallTimeout = 100 * time.Millisecond
	return db, NewChannelSelector(cl, geo.Point{X: 5, Y: 5}, 15)
}

func TestEmptySpectraListWithoutLease(t *testing.T) {
	db, sel := newScriptedFixture(t)
	db.setMode("empty")
	act, err := sel.Refresh(t0)
	if err == nil || !strings.Contains(err.Error(), "no usable channel") {
		t.Fatalf("empty offer should report no usable channel, got %v", err)
	}
	if act != NoChange || sel.State() != StateAcquiring {
		t.Fatalf("empty offer off-channel: act=%v state=%v", act, sel.State())
	}
	// The database answered: this is contact, not a failure.
	st := sel.Stats()
	if st.Failures != 0 || !st.LastContact.Equal(t0) {
		t.Fatalf("empty answer miscounted: %+v", st)
	}
}

func TestEmptySpectraListWithdrawsLease(t *testing.T) {
	db, sel := newScriptedFixture(t)
	if act, err := sel.Refresh(t0); err != nil || act != Acquired {
		t.Fatalf("acquire: %v %v", act, err)
	}
	db.setMode("empty")
	at := t0.Add(time.Second)
	act, err := sel.Refresh(at)
	if err != nil {
		t.Fatalf("withdrawal via empty list is a valid answer: %v", err)
	}
	if act != Vacated || sel.State() != StateVacated || sel.Current() != nil {
		t.Fatalf("empty offer with lease: act=%v state=%v", act, sel.State())
	}
	if sel.TransmitAllowed(at) {
		t.Fatal("radio on after withdrawal")
	}
}

func TestRPCErrorVacatesImmediately(t *testing.T) {
	db, sel := newScriptedFixture(t)
	if _, err := sel.Refresh(t0); err != nil {
		t.Fatal(err)
	}
	db.setMode("rpc-error")
	// Regulatory deny: no grace period, radio off now — even though
	// the lease itself is valid for another 29 s.
	at := t0.Add(time.Second)
	act, err := sel.Refresh(at)
	if paws.Classify(err) != paws.RegulatoryDeny {
		t.Fatalf("classification = %v, want regulatory-deny", paws.Classify(err))
	}
	if act != Vacated || sel.State() != StateVacated {
		t.Fatalf("regulatory deny: act=%v state=%v", act, sel.State())
	}
	if sel.TransmitAllowed(at) {
		t.Fatal("radio on after regulatory deny")
	}
}

func TestHTTPTimeoutEntersGracePeriod(t *testing.T) {
	db, sel := newScriptedFixture(t)
	if _, err := sel.Refresh(t0); err != nil {
		t.Fatal(err)
	}
	db.setMode("stall")
	at := t0.Add(time.Second)
	act, err := sel.Refresh(at)
	if err == nil {
		t.Fatal("stalled database should time out")
	}
	if paws.Classify(err) != paws.Transient {
		t.Fatalf("timeout classified %v, want transient", paws.Classify(err))
	}
	if act != NoChange || sel.State() != StateGracePeriod {
		t.Fatalf("timeout inside lease: act=%v state=%v", act, sel.State())
	}
	if !sel.TransmitAllowed(at) {
		t.Fatal("grace period should keep the radio on inside the budget")
	}
	// Recovery: the next good answer returns to Granted.
	db.setMode("real")
	if act, err := sel.Refresh(t0.Add(2 * time.Second)); err != nil || act != NoChange {
		t.Fatalf("recovery: %v %v", act, err)
	}
	if sel.State() != StateGranted {
		t.Fatalf("state after recovery = %v", sel.State())
	}
}

func TestTransmitGateHoldsBetweenPolls(t *testing.T) {
	// The radio gate must shut off at the vacate budget even if
	// Refresh is never called again (a wedged poll loop must not keep
	// transmitting).
	db, sel := newScriptedFixture(t)
	if _, err := sel.Refresh(t0); err != nil {
		t.Fatal(err)
	}
	db.setMode("stall")
	if _, err := sel.Refresh(t0.Add(time.Second)); err == nil {
		t.Fatal("expected timeout")
	}
	if !sel.TransmitAllowed(t0.Add(29 * time.Second)) {
		t.Fatal("radio off inside the lease and budget")
	}
	// Lease (30 s) is the binding bound here, tighter than the 60 s
	// ETSI budget.
	if sel.TransmitAllowed(t0.Add(31 * time.Second)) {
		t.Fatal("radio on past lease expiry without contact")
	}
	if got := sel.VacateBy(); !got.Equal(t0.Add(30 * time.Second)) {
		t.Fatalf("VacateBy = %v, want t0+30s", got)
	}
}

func TestLifecycleTransitionsAndStats(t *testing.T) {
	db, sel := newScriptedFixture(t)
	var edges []string
	sel.OnTransition = func(tr Transition) { edges = append(edges, tr.String()) }

	if sel.State() != StateAcquiring {
		t.Fatalf("zero state = %v, want acquiring", sel.State())
	}
	sel.Refresh(t0)                  // acquire
	sel.Refresh(t0.Add(time.Second)) // renew
	db.setMode("stall")
	sel.Refresh(t0.Add(2 * time.Second)) // fail → grace
	db.setMode("real")
	sel.Refresh(t0.Add(3 * time.Second)) // recover
	db.setMode("empty")
	sel.Refresh(t0.Add(4 * time.Second)) // withdrawn → vacated
	db.setMode("real")
	sel.Refresh(t0.Add(5 * time.Second)) // reacquire

	want := []string{
		`acquiring->granted reason="channel acquired"`,
		`granted->renewing reason="renewal poll"`,
		`renewing->granted reason="lease renewed"`,
		`granted->renewing reason="renewal poll"`,
		`renewing->grace-period reason="renewal failed"`,
		`grace-period->renewing reason="renewal poll"`,
		`renewing->granted reason="lease renewed"`,
		`granted->renewing reason="renewal poll"`,
		`renewing->vacated reason="channel withdrawn"`,
		`vacated->acquiring reason="reacquisition poll"`,
		`acquiring->granted reason="channel acquired"`,
	}
	if len(edges) != len(want) {
		t.Fatalf("got %d edges:\n%s", len(edges), strings.Join(edges, "\n"))
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edge %d = %s, want %s", i, edges[i], want[i])
		}
	}

	st := sel.Stats()
	if st.Refreshes != 6 || st.Failures != 1 || st.Acquired != 2 ||
		st.Renewed != 2 || st.GraceEntries != 1 || st.Vacated != 1 ||
		st.Transitions != uint64(len(want)) || st.State != StateGranted {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClockSkewedLeaseIsUnusable(t *testing.T) {
	// A database whose clock is skewed hands out leases that are
	// already expired; the selector must not carry one.
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"jsonrpc":"2.0","result":{"spectrumSchedules":[{"startTime":"2000-01-01T00:00:00Z","stopTime":"2000-01-01T00:00:00Z","spectra":[{"startHz":4.7e8,"stopHz":4.78e8,"maxEirpDbm":36,"channel":21}]}]},"id":1}`)
	})
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	sel := NewChannelSelector(paws.NewClient(hs.URL, "AP-SKEW"), geo.Point{}, 15)
	act, err := sel.Refresh(t0)
	if err == nil || act != NoChange || sel.Current() != nil {
		t.Fatalf("expired offer accepted: act=%v err=%v", act, err)
	}
	if sel.TransmitAllowed(t0) {
		t.Fatal("radio on from an already-expired lease")
	}
}
