package core

import (
	"fmt"
	"time"

	"cellfi/internal/trace"
)

// Lease lifecycle state machine. The selector's regulatory contract
// (ETSI EN 301 598, Section 4.2.2 of the paper) is a five-state
// machine:
//
//	Acquiring → Granted → Renewing → GracePeriod → Vacated
//	    ↑                                              │
//	    └──────────────────────────────────────────────┘
//
// Acquiring: off-channel, polling for an offer. Granted: a fresh lease
// is held and the radio may transmit. Renewing: a renewal poll is in
// flight (entered at the top of every Refresh while a lease is held).
// GracePeriod: the last renewal failed; the radio stays on, but only
// until the vacate budget — min(lease expiry, last successful database
// contact + VacateDeadline) — runs out. Vacated: the budget expired or
// the database withdrew the channel; the radio is off.
//
// TransmitAllowed is the radio gate derived from this machine: it is a
// pure function of (state, now) so that the ETSI invariant — never
// transmit more than VacateDeadline past the last successful contact —
// holds between polls, not just at poll instants.

// LeaseState is a lease lifecycle state.
type LeaseState int

const (
	// StateAcquiring: no lease; polling the database for an offer.
	StateAcquiring LeaseState = iota
	// StateGranted: lease held, last poll succeeded; radio on.
	StateGranted
	// StateRenewing: lease held, renewal poll in flight.
	StateRenewing
	// StateGracePeriod: lease held but the last renewal failed; radio
	// on only inside the vacate budget.
	StateGracePeriod
	// StateVacated: radio off after a withdrawal or budget expiry.
	StateVacated
)

func (s LeaseState) String() string {
	switch s {
	case StateAcquiring:
		return "acquiring"
	case StateGranted:
		return "granted"
	case StateRenewing:
		return "renewing"
	case StateGracePeriod:
		return "grace-period"
	case StateVacated:
		return "vacated"
	}
	return "?"
}

// Transition is one state-machine edge, delivered to OnTransition
// hooks and accumulated by chaos harnesses into golden logs.
type Transition struct {
	From, To LeaseState
	// At is the poll time that caused the edge.
	At time.Time
	// Reason is a short stable description ("lease renewed",
	// "renewal failed", ...). Golden logs compare it byte-for-byte,
	// so changing one is a test-visible change.
	Reason string
}

// String renders the transition in the stable form golden logs use.
func (t Transition) String() string {
	return fmt.Sprintf("%s->%s reason=%q", t.From, t.To, t.Reason)
}

// leaseReasons is the closed set of transition reasons the selector
// emits, in trace-code order. Codes are part of the trace wire
// contract: append new reasons, never reorder.
var leaseReasons = []string{
	"renewal poll",
	"reacquisition poll",
	"lease renewed",
	"channel withdrawn",
	"channel switched",
	"channel acquired",
	"regulatory deny",
	"vacate budget expired",
	"renewal failed",
}

// LeaseReasonCode maps a transition reason to its stable trace code,
// -1 for reasons outside the known set.
func LeaseReasonCode(reason string) int64 {
	for i, r := range leaseReasons {
		if r == reason {
			return int64(i)
		}
	}
	return -1
}

// LeaseReasonString inverts LeaseReasonCode for trace rendering.
func LeaseReasonString(code int64) string {
	if code < 0 || code >= int64(len(leaseReasons)) {
		return fmt.Sprintf("reason(%d)", code)
	}
	return leaseReasons[code]
}

// SelectorStats is a counter snapshot of a ChannelSelector, in the
// mould of sim.Engine.Stats: monotonic counters plus current state,
// cheap enough to sample every poll.
type SelectorStats struct {
	// Refreshes counts Refresh calls.
	Refreshes uint64
	// Failures counts Refresh calls whose database query failed.
	Failures uint64
	// Transitions counts state-machine edges (self-loops excluded).
	Transitions uint64
	// Acquired counts entries into Granted from off-channel.
	Acquired uint64
	// Renewed counts successful lease renewals.
	Renewed uint64
	// Switched counts withdrawals resolved by moving channel.
	Switched uint64
	// GraceEntries counts entries into GracePeriod.
	GraceEntries uint64
	// Vacated counts entries into Vacated.
	Vacated uint64
	// State is the current lifecycle state.
	State LeaseState
	// LastContact is the time of the last successful database answer
	// (zero before the first).
	LastContact time.Time
}

// State returns the selector's current lifecycle state.
func (s *ChannelSelector) State() LeaseState { return s.state }

// Stats returns a snapshot of the selector's activity counters.
func (s *ChannelSelector) Stats() SelectorStats {
	st := s.stats
	st.State = s.state
	st.LastContact = s.lastContact
	return st
}

// LastContact returns when the database last answered successfully.
func (s *ChannelSelector) LastContact() time.Time { return s.lastContact }

// VacateBy returns the instant the radio must be off by if no further
// database contact succeeds: the earlier of the lease expiry and
// LastContact+VacateDeadline. Off-channel it returns the zero time.
func (s *ChannelSelector) VacateBy() time.Time {
	if s.current == nil {
		return time.Time{}
	}
	budget := s.lastContact.Add(VacateDeadline)
	if s.current.Until.Before(budget) {
		return s.current.Until
	}
	return budget
}

// TransmitAllowed is the radio gate: true only while a lease is held
// and now is inside the vacate budget. It is a pure function of the
// selector's state and now, so callers polling slower than the budget
// still shut the radio off in time.
func (s *ChannelSelector) TransmitAllowed(now time.Time) bool {
	if s.current == nil || s.state == StateVacated || s.state == StateAcquiring {
		return false
	}
	if s.UnsafeIgnoreVacateBudget {
		// Broken-gate mode: hold the channel regardless of budget or
		// expiry. The invariant watchdog must flag this.
		return true
	}
	return !now.After(s.VacateBy())
}

// transition moves the machine to state `to`, firing the OnTransition
// hook and bumping counters. Self-loops are no-ops.
func (s *ChannelSelector) transition(to LeaseState, at time.Time, reason string) {
	if s.state == to {
		return
	}
	tr := Transition{From: s.state, To: to, At: at, Reason: reason}
	s.state = to
	s.stats.Transitions++
	switch to {
	case StateGracePeriod:
		s.stats.GraceEntries++
	case StateVacated:
		s.stats.Vacated++
	}
	if s.Trace != nil {
		ch := int64(-1)
		if s.current != nil {
			ch = int64(s.current.Channel)
		}
		s.Trace.Record(trace.Record{T: at.UnixNano(), AP: s.TraceAP, Kind: trace.KindLease,
			N: 4, Args: [trace.MaxArgs]int64{int64(tr.From), int64(to), LeaseReasonCode(reason), ch}})
		// Every entry into Granted follows a successful contact, so the
		// lease expiry and vacate budget are both fresh here: emit them
		// as the evidence record the invariant verifier bounds every
		// later transmission against.
		if to == StateGranted && s.current != nil {
			s.Trace.Record(trace.Record{T: at.UnixNano(), AP: s.TraceAP, Kind: trace.KindLeaseBudget,
				N: 3, Args: [trace.MaxArgs]int64{ch, s.current.Until.UnixNano(), s.VacateBy().UnixNano()}})
		}
	}
	if s.OnTransition != nil {
		s.OnTransition(tr)
	}
}
