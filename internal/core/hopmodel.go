package core

import (
	"math/rand"
	"sort"

	"cellfi/internal/netgraph"
)

// HopModel is the abstract randomized-hopping process analysed in
// Section 5.5: vertices of a conflict graph with integer demands
// attempt, round by round, to acquire subchannels none of their
// neighbours hold. Each attempt fails if a neighbour made the same
// choice in the same round (clash) or the chosen subchannel is faded
// (probability p, independent per attempt). Theorem 1: under the
// Demand Assumption (gamma > 0), convergence takes
// O(M log n / ((1-p) * gamma)) rounds with high probability.
type HopModel struct {
	Graph *netgraph.Graph
	// M is the number of subchannels.
	M int
	// FadeProb is the per-attempt fading probability p.
	FadeProb float64

	rng  *rand.Rand
	held []map[int]bool
}

// NewHopModel builds the process; demands live in g.Demand.
func NewHopModel(g *netgraph.Graph, m int, fadeProb float64, rng *rand.Rand) *HopModel {
	held := make([]map[int]bool, g.Len())
	for i := range held {
		held[i] = make(map[int]bool)
	}
	return &HopModel{Graph: g, M: m, FadeProb: fadeProb, rng: rng, held: held}
}

// Converged reports whether every vertex has satisfied its demand.
func (h *HopModel) Converged() bool {
	for v := 0; v < h.Graph.Len(); v++ {
		if len(h.held[v]) < h.Graph.Demand[v] {
			return false
		}
	}
	return true
}

// Held returns vertex v's acquired subchannels.
func (h *HopModel) Held(v int) []int {
	out := make([]int, 0, len(h.held[v]))
	for k := range h.held[v] {
		out = append(out, k)
	}
	return out
}

// Assignment exports the current state for validation.
func (h *HopModel) Assignment() netgraph.Assignment {
	a := make(netgraph.Assignment, h.Graph.Len())
	for v := range a {
		a[v] = h.Held(v)
	}
	return a
}

// Round executes one synchronous hopping round: every vertex with
// unmet demand makes one attempt per missing unit. An attempt picks a
// uniform subchannel among those sensed free (not held by the vertex
// or any neighbour); it succeeds unless a neighbour attempted the same
// subchannel this round or the subchannel fades.
func (h *HopModel) Round() {
	n := h.Graph.Len()
	// Collect this round's attempts: vertex -> set of subchannels.
	attempts := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		missing := h.Graph.Demand[v] - len(h.held[v])
		if missing <= 0 {
			continue
		}
		free := h.sensedFree(v)
		if len(free) == 0 {
			continue
		}
		attempts[v] = make(map[int]bool)
		for a := 0; a < missing; a++ {
			attempts[v][free[h.rng.Intn(len(free))]] = true
		}
	}
	// Resolve: clash if any neighbour attempted the same subchannel
	// (or already holds it — cannot happen by construction of free).
	// Attempts are resolved in ascending subchannel order so runs are
	// deterministic for a given seed.
	for v := 0; v < n; v++ {
		ks := make([]int, 0, len(attempts[v]))
		for k := range attempts[v] {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		for _, k := range ks {
			clash := false
			for _, u := range h.Graph.Neighbors(v) {
				if attempts[u][k] {
					clash = true
					break
				}
			}
			if clash || h.rng.Float64() < h.FadeProb {
				continue
			}
			if len(h.held[v]) < h.Graph.Demand[v] {
				h.held[v][k] = true
			}
		}
	}
}

// sensedFree lists subchannels neither v nor its neighbours hold.
func (h *HopModel) sensedFree(v int) []int {
	blocked := make(map[int]bool, len(h.held[v]))
	for k := range h.held[v] {
		blocked[k] = true
	}
	for _, u := range h.Graph.Neighbors(v) {
		for k := range h.held[u] {
			blocked[k] = true
		}
	}
	free := make([]int, 0, h.M)
	for k := 0; k < h.M; k++ {
		if !blocked[k] {
			free = append(free, k)
		}
	}
	return free
}

// RunToConvergence executes rounds until convergence or maxRounds and
// returns the number of rounds taken plus whether it converged.
func (h *HopModel) RunToConvergence(maxRounds int) (int, bool) {
	for r := 0; r < maxRounds; r++ {
		if h.Converged() {
			return r, true
		}
		h.Round()
	}
	return maxRounds, h.Converged()
}
