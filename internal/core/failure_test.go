package core

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/paws"
	"cellfi/internal/spectrum"
)

// Failure injection around the channel selector: spectrum databases go
// down, answers get slow, connections break. The regulatory invariant
// under every failure: a device without a fresh answer past its lease
// expiry must go silent.

// flakyDB wraps a real PAWS server and fails requests on demand.
type flakyDB struct {
	inner *paws.Server
	// failing, when nonzero, turns every request into a 500.
	failing atomic.Bool
}

func (f *flakyDB) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.failing.Load() {
		http.Error(w, "database outage", http.StatusInternalServerError)
		return
	}
	f.inner.ServeHTTP(w, r)
}

func newFlakyFixture(t *testing.T) (*flakyDB, *ChannelSelector, *paws.Server, func(time.Time)) {
	t.Helper()
	reg := spectrum.NewRegistry(spectrum.EU)
	// Short leases so outage-past-expiry is quick to reach.
	reg.LeaseDuration = 30 * time.Second
	srv := paws.NewServer(reg)
	now := t0
	srv.Now = func() time.Time { return now }
	flaky := &flakyDB{inner: srv}
	hs := httptest.NewServer(flaky)
	t.Cleanup(hs.Close)
	sel := NewChannelSelector(paws.NewClient(hs.URL, "AP-FLAKY"), geo.Point{X: 5, Y: 5}, 15)
	setNow := func(tm time.Time) { now = tm }
	return flaky, sel, srv, setNow
}

func TestSelectorSurvivesTransientOutage(t *testing.T) {
	flaky, sel, _, _ := newFlakyFixture(t)
	if act, err := sel.Refresh(t0); err != nil || act != Acquired {
		t.Fatalf("acquire: %v %v", act, err)
	}
	ch := sel.Current().Channel

	// A short outage well inside the lease: the AP keeps operating on
	// its valid lease.
	flaky.failing.Store(true)
	act, err := sel.Refresh(t0.Add(5 * time.Second))
	if err == nil {
		t.Fatal("outage should surface an error")
	}
	if act != NoChange || sel.Current() == nil || sel.Current().Channel != ch {
		t.Fatalf("valid lease dropped during transient outage: %v", act)
	}

	// Database recovers: business as usual.
	flaky.failing.Store(false)
	if act, err := sel.Refresh(t0.Add(10 * time.Second)); err != nil || act != NoChange {
		t.Fatalf("post-recovery refresh: %v %v", act, err)
	}
}

func TestSelectorGoesSilentWhenOutagePassesLeaseExpiry(t *testing.T) {
	flaky, sel, _, setNow := newFlakyFixture(t)
	if _, err := sel.Refresh(t0); err != nil {
		t.Fatal(err)
	}
	flaky.failing.Store(true)
	// Poll through the outage; once the lease (30 s) expires with no
	// fresh answer, the AP must vacate — the fail-safe the regulations
	// demand.
	var vacatedAt time.Duration
	for s := 1; s <= 60; s++ {
		at := t0.Add(time.Duration(s) * time.Second)
		setNow(at)
		act, _ := sel.Refresh(at)
		if act == Vacated {
			vacatedAt = time.Duration(s) * time.Second
			break
		}
	}
	if vacatedAt == 0 {
		t.Fatal("AP kept transmitting through an outage past lease expiry")
	}
	if vacatedAt < 30*time.Second {
		t.Fatalf("vacated at %v, before the lease actually expired", vacatedAt)
	}
	if sel.Current() != nil {
		t.Fatal("lease present after fail-safe vacate")
	}
}

func TestSelectorAgainstDeadEndpoint(t *testing.T) {
	// Connection refused (no server at all): Refresh errors, no lease
	// ever exists, nothing panics.
	sel := NewChannelSelector(paws.NewClient("http://127.0.0.1:1", "AP-DEAD"), geo.Point{}, 15)
	act, err := sel.Refresh(t0)
	if err == nil {
		t.Fatal("dead endpoint should error")
	}
	if act != NoChange || sel.Current() != nil {
		t.Fatalf("dead endpoint produced state: %v %v", act, sel.Current())
	}
}

func TestSelectorReacquiresAfterFailSafe(t *testing.T) {
	flaky, sel, _, setNow := newFlakyFixture(t)
	if _, err := sel.Refresh(t0); err != nil {
		t.Fatal(err)
	}
	flaky.failing.Store(true)
	at := t0.Add(45 * time.Second) // past the 30 s lease
	setNow(at)
	if act, _ := sel.Refresh(at); act != Vacated {
		t.Fatalf("expected fail-safe vacate, got %v", act)
	}
	flaky.failing.Store(false)
	at = at.Add(time.Second)
	setNow(at)
	if act, err := sel.Refresh(at); err != nil || act != Acquired {
		t.Fatalf("reacquisition after recovery: %v %v", act, err)
	}
}
