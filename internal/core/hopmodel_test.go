package core

import (
	"math"
	"math/rand"
	"testing"

	"cellfi/internal/netgraph"
)

func randomFeasibleGraph(rng *rand.Rand, n, m int, edgeProb float64) *netgraph.Graph {
	g := netgraph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < edgeProb {
				g.AddEdge(i, j)
			}
		}
	}
	for v := 0; v < n; v++ {
		g.Demand[v] = 1 + rng.Intn(2)
	}
	// Enforce the Demand Assumption with slack: every neighbourhood
	// fits in (1-gamma)M with gamma >= ~0.2.
	budget := int(0.8 * float64(m))
	for v := 0; v < n; v++ {
		for g.NeighborhoodDemand(v) > budget {
			maxU, maxD := v, g.Demand[v]
			for _, u := range g.Neighbors(v) {
				if g.Demand[u] > maxD {
					maxU, maxD = u, g.Demand[u]
				}
			}
			if g.Demand[maxU] <= 1 {
				g.Demand[maxU] = 1
				break
			}
			g.Demand[maxU]--
		}
	}
	return g
}

func TestHopModelConvergesNoFading(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g := randomFeasibleGraph(rng, 10, 13, 0.3)
		h := NewHopModel(g, 13, 0, rng)
		rounds, ok := h.RunToConvergence(2000)
		if !ok {
			t.Fatalf("trial %d did not converge (gamma=%g)", trial, g.Gamma(13))
		}
		if err := g.Valid(h.Assignment(), 13); err != nil {
			t.Fatalf("trial %d converged to invalid state: %v", trial, err)
		}
		_ = rounds
	}
}

func TestHopModelConvergesWithFading(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		g := randomFeasibleGraph(rng, 8, 13, 0.3)
		h := NewHopModel(g, 13, 0.3, rng)
		if _, ok := h.RunToConvergence(5000); !ok {
			t.Fatalf("trial %d did not converge under fading", trial)
		}
		if err := g.Valid(h.Assignment(), 13); err != nil {
			t.Fatal(err)
		}
	}
}

// Theorem 1's scaling: convergence time grows when fading worsens
// ((1-p) in the denominator). Compare mean rounds at p=0 vs p=0.6.
func TestHopModelFadingSlowsConvergence(t *testing.T) {
	mean := func(p float64, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		var sum float64
		const trials = 40
		for i := 0; i < trials; i++ {
			g := randomFeasibleGraph(rng, 8, 13, 0.35)
			h := NewHopModel(g, 13, p, rng)
			r, ok := h.RunToConvergence(10000)
			if !ok {
				t.Fatal("non-convergence during scaling test")
			}
			sum += float64(r)
		}
		return sum / trials
	}
	fast := mean(0, 3)
	slow := mean(0.6, 4)
	if slow <= fast {
		t.Fatalf("fading p=0.6 converged faster (%.1f) than p=0 (%.1f)", slow, fast)
	}
}

// Theorem 1's O(log n) dependence: doubling n far less than doubles
// convergence time on sparse graphs with fixed gamma. We check
// sub-linearity: rounds(n=24) < 2 * rounds(n=6) despite 4x the nodes.
func TestHopModelLogNScaling(t *testing.T) {
	mean := func(n int, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		var sum float64
		const trials = 30
		for i := 0; i < trials; i++ {
			g := randomFeasibleGraph(rng, n, 13, 3.0/float64(n)) // constant avg degree
			h := NewHopModel(g, 13, 0.2, rng)
			r, ok := h.RunToConvergence(20000)
			if !ok {
				t.Fatal("non-convergence during scaling test")
			}
			sum += float64(r)
		}
		return sum / trials
	}
	small := mean(6, 5)
	big := mean(24, 6)
	if big > 2*small+2 {
		t.Fatalf("rounds grew superlinearly: n=6 -> %.1f, n=24 -> %.1f", small, big)
	}
}

// Converged nodes stop moving: the process is absorbing.
func TestHopModelAbsorbing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomFeasibleGraph(rng, 8, 13, 0.3)
	h := NewHopModel(g, 13, 0.1, rng)
	if _, ok := h.RunToConvergence(5000); !ok {
		t.Fatal("did not converge")
	}
	before := h.Assignment()
	for i := 0; i < 50; i++ {
		h.Round()
	}
	after := h.Assignment()
	for v := range before {
		if len(before[v]) != len(after[v]) {
			t.Fatalf("vertex %d changed after convergence", v)
		}
		set := map[int]bool{}
		for _, k := range before[v] {
			set[k] = true
		}
		for _, k := range after[v] {
			if !set[k] {
				t.Fatalf("vertex %d hopped after convergence", v)
			}
		}
	}
}

// Expected convergence bound sanity: with gamma >= 0.2 and p = 0, mean
// rounds should sit well under the Theorem 1 ceiling M*log(n)/gamma.
func TestHopModelWithinTheoremBound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n, m = 12, 13
	bound := float64(m) * math.Log(float64(n)) / 0.2 * 5 // generous constant
	var worst float64
	for trial := 0; trial < 30; trial++ {
		g := randomFeasibleGraph(rng, n, m, 0.3)
		h := NewHopModel(g, m, 0, rng)
		r, ok := h.RunToConvergence(int(bound) * 10)
		if !ok {
			t.Fatal("did not converge")
		}
		if float64(r) > worst {
			worst = float64(r)
		}
	}
	if worst > bound {
		t.Fatalf("worst convergence %g rounds exceeds theorem-scale bound %g", worst, bound)
	}
}

func BenchmarkHopModelConvergence(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		g := randomFeasibleGraph(rng, 14, 13, 0.3)
		h := NewHopModel(g, 13, 0.2, rng)
		if _, ok := h.RunToConvergence(10000); !ok {
			b.Fatal("non-convergence")
		}
	}
}
