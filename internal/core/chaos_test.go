package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"cellfi/internal/faults"
	"cellfi/internal/geo"
	"cellfi/internal/paws"
	"cellfi/internal/spectrum"
)

// The headline robustness artifact: for randomized fault schedules the
// AP must NEVER transmit more than VacateDeadline past its last
// successful database contact (ETSI EN 301 598's 60-second budget).
//
// "Successful contact" is judged by an independent observer sitting on
// the wire between the client and the chaos injector — not by the
// selector's own bookkeeping — so a bug in the selector's lastContact
// accounting cannot quietly weaken the invariant.
//
// Scale knobs (for `make chaos` soaks):
//
//	CHAOS_SEEDS — number of seeded schedules (default 100)
//	CHAOS_STEPS — steps per schedule (default 400; one schedule
//	              always runs 10000 regardless)

// contactObserver records, in virtual time, every exchange in which
// the database coherently answered (HTTP 200, valid JSON-RPC, no
// error member) — the regulatory notion of "contact".
type contactObserver struct {
	inner http.RoundTripper
	now   func() time.Time
	last  time.Time
	n     int
}

func (o *contactObserver) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := o.inner.RoundTrip(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		return resp, err
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	resp.Body = io.NopCloser(bytes.NewReader(body))
	if rerr != nil {
		return resp, err
	}
	var rr struct {
		Result json.RawMessage `json:"result"`
		Error  *paws.RPCError  `json:"error"`
	}
	if json.Unmarshal(body, &rr) == nil && rr.Error == nil && rr.Result != nil {
		o.last = o.now()
		o.n++
	}
	return resp, err
}

type chaosResult struct {
	transitions []string
	faultLog    []string
	stats       SelectorStats
	txSteps     int
	contacts    int
}

// render joins the deterministic artifacts into the byte-exact form
// the golden test compares.
func (r chaosResult) render() string {
	var b strings.Builder
	b.WriteString("# transitions\n")
	for _, tr := range r.transitions {
		b.WriteString(tr)
		b.WriteByte('\n')
	}
	b.WriteString("# faults\n")
	for _, f := range r.faultLog {
		b.WriteString(f)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "# stats refreshes=%d failures=%d transitions=%d acquired=%d renewed=%d switched=%d grace=%d vacated=%d tx-steps=%d contacts=%d\n",
		r.stats.Refreshes, r.stats.Failures, r.stats.Transitions,
		r.stats.Acquired, r.stats.Renewed, r.stats.Switched,
		r.stats.GraceEntries, r.stats.Vacated, r.txSteps, r.contacts)
	return b.String()
}

// runChaos drives one selector through `steps` virtual seconds of a
// seeded fault schedule, asserting the ETSI invariant at every step.
func runChaos(t *testing.T, seed int64, steps int) chaosResult {
	t.Helper()

	reg := spectrum.NewRegistry(spectrum.EU)
	// Vary which bound binds: short leases make lease expiry the
	// tight constraint, long ones make the ETSI budget the tight one.
	leases := []time.Duration{20 * time.Second, 45 * time.Second, 90 * time.Second, 2 * time.Hour}
	reg.LeaseDuration = leases[int(seed)%len(leases)]

	vnow := t0
	srv := paws.NewServer(reg)
	srv.Now = func() time.Time { return vnow }

	profileNames := faults.ProfileNames()
	prof, ok := faults.ProfileByName(profileNames[int(seed)%len(profileNames)])
	if !ok {
		t.Fatal("missing chaos profile")
	}
	obs := &contactObserver{
		inner: faults.HandlerTransport{Handler: srv},
		now:   func() time.Time { return vnow },
	}
	inj := faults.NewInjector(obs, faults.NewSeeded(prof, seed))
	inj.Sleep = func(d time.Duration) { vnow = vnow.Add(d) }

	cl := paws.NewClient("http://pawsdb.virtual/paws", fmt.Sprintf("AP-CHAOS-%d", seed))
	cl.HTTPClient = &http.Client{Transport: inj}
	cl.Retry = paws.RetryPolicy{
		MaxAttempts: 2,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    time.Second,
		Jitter:      0.5,
		Seed:        seed,
		Sleep:       func(d time.Duration) { vnow = vnow.Add(d) },
	}

	sel := NewChannelSelector(cl, geo.Point{X: 5, Y: 5}, 15)
	var res chaosResult
	sel.OnTransition = func(tr Transition) {
		res.transitions = append(res.transitions,
			fmt.Sprintf("t=+%ds %s", int(tr.At.Sub(t0)/time.Second), tr))
	}

	// Incumbent churn: a second seeded stream occasionally drops a
	// wireless mic onto the AP's channel, forcing real withdrawals.
	churn := rand.New(rand.NewSource(seed*7919 + 13))

	for step := 0; step < steps; step++ {
		vnow = vnow.Add(time.Second)
		if cur := sel.Current(); cur != nil && churn.Intn(211) == 0 {
			dur := time.Duration(30+churn.Intn(90)) * time.Second
			if err := reg.AddIncumbent(spectrum.Incumbent{
				Kind: spectrum.WirelessMic, Channel: cur.Channel,
				Location: geo.Point{X: 5, Y: 5}, ProtectRadius: 1e7,
				From: vnow, To: vnow.Add(dur),
			}); err != nil {
				t.Fatalf("seed %d step %d: churn: %v", seed, step, err)
			}
		}
		sel.Refresh(vnow)

		if sel.TransmitAllowed(vnow) {
			res.txSteps++
			// THE invariant: transmission implies fresh contact,
			// judged by the wire observer, not the selector.
			if obs.last.IsZero() {
				t.Fatalf("seed %d step %d: transmitting with no successful contact ever", seed, step)
			}
			if age := vnow.Sub(obs.last); age > VacateDeadline {
				t.Fatalf("seed %d step %d: transmitting %v past last contact (budget %v)",
					seed, step, age, VacateDeadline)
			}
			// Coherence: transmitting implies a live lease and an
			// on-air state.
			cur := sel.Current()
			if cur == nil || vnow.After(cur.Until) {
				t.Fatalf("seed %d step %d: transmitting on dead lease %+v", seed, step, cur)
			}
			switch sel.State() {
			case StateGranted, StateRenewing, StateGracePeriod:
			default:
				t.Fatalf("seed %d step %d: transmitting in state %v", seed, step, sel.State())
			}
		}
	}
	for _, ev := range inj.Log() {
		res.faultLog = append(res.faultLog, ev.String())
	}
	res.stats = sel.Stats()
	res.contacts = obs.n
	return res
}

func chaosEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestETSIVacateProperty is the acceptance property: ≥100 seeded
// random fault schedules, every one holding the vacate invariant, and
// one long 10k-step schedule regardless of the CHAOS_STEPS knob.
func TestETSIVacateProperty(t *testing.T) {
	seeds := chaosEnvInt("CHAOS_SEEDS", 100)
	steps := chaosEnvInt("CHAOS_STEPS", 400)
	if testing.Short() {
		seeds, steps = 10, 300
	}
	totalTx, totalContacts := 0, 0
	for seed := 0; seed < seeds; seed++ {
		res := runChaos(t, int64(seed), steps)
		totalTx += res.txSteps
		totalContacts += res.contacts
	}
	// The run must actually exercise both sides of the gate: a
	// vacuously-silent (or vacuously-healthy) AP proves nothing.
	if totalTx == 0 {
		t.Fatal("chaos fleet never transmitted; schedules too hostile to test the invariant")
	}
	if totalContacts == 0 {
		t.Fatal("chaos fleet never reached the database")
	}
}

// TestETSIVacatePropertyLongSchedule is the 10k-step headline run on
// the nastiest profile mix, independent of the env knobs.
func TestETSIVacatePropertyLongSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("long schedule skipped in -short")
	}
	res := runChaos(t, 2, 10_000) // seed 2 selects the outage profile
	if res.txSteps == 0 || res.stats.Vacated == 0 {
		t.Fatalf("long schedule did not exercise vacate: %+v", res.stats)
	}
}

// popUpRaceTransport stages the tightest incumbent pop-up race the
// protocol allows: when armed, it lets the server render its answer
// from the pre-incumbent registry, then drops a wireless mic onto the
// AP's channel while those stale bytes are still "in flight" back to
// the client — and severs the database so no later poll can deliver
// the withdrawal. Only the ETSI budget can save the invariant.
type popUpRaceTransport struct {
	inner   http.RoundTripper
	reg     *spectrum.Registry
	now     func() time.Time
	armed   bool
	dead    bool
	victim  int
	arrival time.Time
}

func (p *popUpRaceTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if p.dead {
		return nil, fmt.Errorf("database unreachable after pop-up")
	}
	resp, err := p.inner.RoundTrip(req)
	if err == nil && p.armed {
		p.armed, p.dead = false, true
		p.arrival = p.now()
		if aerr := p.reg.AddIncumbent(spectrum.Incumbent{
			Kind: spectrum.WirelessMic, Channel: p.victim,
			Location: geo.Point{X: 5, Y: 5}, ProtectRadius: 1e7,
			From: p.arrival, To: p.arrival.Add(10 * time.Minute),
		}); aerr != nil {
			return nil, fmt.Errorf("pop-up injection: %w", aerr)
		}
	}
	return resp, err
}

// TestIncumbentPopUpDuringRenewal is the lease-FSM race-window case:
// an incumbent arrives while a renewal answer is in flight, so the
// renewal "succeeds" with a stale grant of a now-occupied channel and
// the database goes dark before any poll can reveal the withdrawal.
// The selector must still cease transmission within VacateDeadline of
// the arrival — the stale contact is the last contact, so the ETSI
// budget expires exactly one deadline after the race.
func TestIncumbentPopUpDuringRenewal(t *testing.T) {
	reg := spectrum.NewRegistry(spectrum.EU)
	reg.LeaseDuration = 90 * time.Second // looser than the budget: the ETSI minute must bind

	vnow := t0
	srv := paws.NewServer(reg)
	srv.Now = func() time.Time { return vnow }

	race := &popUpRaceTransport{
		inner: faults.HandlerTransport{Handler: srv},
		reg:   reg,
		now:   func() time.Time { return vnow },
	}
	cl := paws.NewClient("http://pawsdb.virtual/paws", "AP-RACE-1")
	cl.HTTPClient = &http.Client{Transport: race}
	cl.Retry = paws.RetryPolicy{
		MaxAttempts: 2,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    time.Second,
		Seed:        1,
		Sleep:       func(d time.Duration) { vnow = vnow.Add(d) },
	}

	sel := NewChannelSelector(cl, geo.Point{X: 5, Y: 5}, 15)
	vnow = vnow.Add(time.Second)
	if act, err := sel.Refresh(vnow); err != nil || act != Acquired {
		t.Fatalf("initial acquire: act=%v err=%v", act, err)
	}
	race.victim = sel.Current().Channel

	// Arm the race: the NEXT renewal poll carries the pop-up.
	race.armed = true
	vnow = vnow.Add(time.Second)
	if act, err := sel.Refresh(vnow); err != nil || act != NoChange {
		t.Fatalf("raced renewal: act=%v err=%v", act, err)
	}
	if race.arrival.IsZero() {
		t.Fatal("race never fired: renewal exchange did not reach the transport")
	}
	// The stale answer really did land: the selector holds a "valid"
	// lease on an occupied channel, with no way to hear otherwise.
	if sel.State() != StateGranted || !sel.TransmitAllowed(vnow) {
		t.Fatalf("stale renewal rejected early: state=%v — race window not exercised", sel.State())
	}

	lastTX := time.Time{}
	for step := 0; step < 300 && sel.State() != StateVacated; step++ {
		vnow = vnow.Add(time.Second)
		sel.Refresh(vnow)
		if sel.TransmitAllowed(vnow) {
			lastTX = vnow
		}
	}
	if sel.State() != StateVacated {
		t.Fatalf("selector never vacated after pop-up; state=%v", sel.State())
	}
	if lastTX.IsZero() {
		t.Fatal("no transmission after the race; window was vacuous")
	}
	if over := lastTX.Sub(race.arrival); over > VacateDeadline {
		t.Fatalf("transmitted %v past incumbent arrival (budget %v)", over, VacateDeadline)
	}
	if st := sel.Stats(); st.Vacated != 1 || st.GraceEntries == 0 {
		t.Fatalf("expected one grace-then-vacate after the blackout: %+v", st)
	}
}

// TestChaosDeterminism: the harness is byte-deterministic — the same
// seed yields the identical schedule, transition log and counters.
func TestChaosDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		a := runChaos(t, seed, 400).render()
		b := runChaos(t, seed, 400).render()
		if a != b {
			t.Fatalf("seed %d: chaos run not byte-deterministic:\n--- run A\n%s\n--- run B\n%s", seed, a, b)
		}
	}
}

// TestChaosGoldenTransitionLog pins seed 42's transition log to a
// committed golden file, so any change to the schedule derivation,
// retry timing or state machine shows up as a reviewable diff.
// Regenerate with CHAOS_GOLDEN_UPDATE=1 go test -run Golden ./internal/core
func TestChaosGoldenTransitionLog(t *testing.T) {
	got := runChaos(t, 42, 180).render()
	path := filepath.Join("testdata", "chaos_seed42.golden")
	if os.Getenv("CHAOS_GOLDEN_UPDATE") == "1" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with CHAOS_GOLDEN_UPDATE=1): %v", err)
	}
	if got != string(want) {
		t.Fatalf("transition log diverged from golden:\n--- got\n%s\n--- want\n%s", got, want)
	}
}
