package core

import "testing"

// FuzzShareInvariants: the Section 5.2 share stays within [0, S], never
// zeroes an AP with clients, and is monotone in own client count.
func FuzzShareInvariants(f *testing.F) {
	f.Add(13, 6, 12)
	f.Add(25, 0, 5)
	f.Add(13, 100, 3)
	f.Add(1, 1, 1)
	f.Fuzz(func(t *testing.T, s, own, sensed int) {
		if s <= 0 || s > 1000 || own < 0 || own > 10000 || sensed < 0 || sensed > 10000 {
			return
		}
		got := Share(s, own, sensed)
		if got < 0 || got > s {
			t.Fatalf("Share(%d,%d,%d) = %d out of range", s, own, sensed, got)
		}
		if own > 0 && got == 0 {
			t.Fatalf("Share(%d,%d,%d) = 0 despite own clients", s, own, sensed)
		}
		if more := Share(s, own+1, sensed); more < got {
			t.Fatalf("Share not monotone in own clients: %d -> %d", got, more)
		}
		if fewer := Share(s, own, sensed+1); fewer > got {
			t.Fatalf("Share not antitone in sensed contenders: %d -> %d", got, fewer)
		}
	})
}
