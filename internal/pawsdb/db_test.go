package pawsdb

import (
	"math"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/spectrum"
)

var t0 = time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC)

// randomRegistry builds a seeded registry whose incumbents exercise
// every index path: tiny and huge protect radii (huge ones land on the
// global list), schedule windows around t0, both incumbent kinds, and
// occasional co-channel overlaps.
func randomRegistry(rng *rand.Rand, dom spectrum.Domain) *spectrum.Registry {
	reg := spectrum.NewRegistry(dom)
	first, last := dom.ChannelRange()
	n := rng.Intn(40)
	for i := 0; i < n; i++ {
		inc := spectrum.Incumbent{
			Kind:    spectrum.IncumbentKind(rng.Intn(2)),
			Channel: first + rng.Intn(last-first+1),
			Location: geo.Point{
				X: (rng.Float64() - 0.5) * 60000,
				Y: (rng.Float64() - 0.5) * 60000,
			},
		}
		switch rng.Intn(5) {
		case 0:
			inc.ProtectRadius = 0
		case 1:
			inc.ProtectRadius = rng.Float64() * 500
		case 2:
			inc.ProtectRadius = 1000 + rng.Float64()*8000
		case 3:
			inc.ProtectRadius = 50000 + rng.Float64()*100000 // global list
		case 4:
			inc.ProtectRadius = 1e7 // blanket coverage
		}
		switch rng.Intn(3) {
		case 0: // always on
			inc.From = t0.Add(-time.Hour)
		case 1: // scheduled window near the query times
			inc.From = t0.Add(time.Duration(rng.Intn(600)-300) * time.Second)
			inc.To = inc.From.Add(time.Duration(30+rng.Intn(600)) * time.Second)
		case 2: // not yet active
			inc.From = t0.Add(time.Duration(rng.Intn(600)) * time.Second)
		}
		if err := reg.AddIncumbent(inc); err != nil {
			panic(err)
		}
	}
	return reg
}

// queryPoints mixes uniform random points with adversarial ones that
// sit exactly on protection boundaries (distance == ProtectRadius) and
// exactly on grid-cell edges.
func queryPoints(rng *rand.Rand, reg *spectrum.Registry, cellSize float64, n int) []geo.Point {
	pts := make([]geo.Point, 0, n)
	incs := reg.Incumbents()
	for i := 0; i < n; i++ {
		switch {
		case len(incs) > 0 && i%4 == 1:
			// Exactly on a protect-radius boundary, axis-aligned so
			// the distance computation is exact in float64.
			inc := incs[rng.Intn(len(incs))]
			pts = append(pts, geo.Point{X: inc.Location.X + inc.ProtectRadius, Y: inc.Location.Y})
		case len(incs) > 0 && i%4 == 2:
			// Just inside / just outside a boundary.
			inc := incs[rng.Intn(len(incs))]
			d := inc.ProtectRadius * (1 + (rng.Float64()-0.5)*1e-3)
			th := rng.Float64() * 6.28318
			pts = append(pts, geo.Point{
				X: inc.Location.X + d*mathCos(th),
				Y: inc.Location.Y + d*mathSin(th),
			})
		case i%4 == 3:
			// Exactly on a grid-cell corner.
			pts = append(pts, geo.Point{
				X: float64(rng.Intn(40)-20) * cellSize,
				Y: float64(rng.Intn(40)-20) * cellSize,
			})
		default:
			pts = append(pts, geo.Point{
				X: (rng.Float64() - 0.5) * 80000,
				Y: (rng.Float64() - 0.5) * 80000,
			})
		}
	}
	return pts
}

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestIndexScanEquivalence is the acceptance property for the grid
// index and response cache: across 100 seeded random registries
// (PAWSDB_SEEDS overrides), at boundary-adversarial points and times
// that cross incumbent schedule edges, DB.AvailableAt must return a
// byte-identical ChannelInfo set to the registry's linear scan — with
// the cache cold, warm, and disabled. Repeated queries per point make
// the second pass hit the cache, so a cache that ever served a wrong
// cell-wide answer fails here too.
func TestIndexScanEquivalence(t *testing.T) {
	seeds := envInt("PAWSDB_SEEDS", 100)
	if testing.Short() {
		seeds = 20
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		dom := spectrum.US
		if seed%2 == 1 {
			dom = spectrum.EU
		}
		reg := randomRegistry(rng, dom)
		cellSize := []float64{500, 2000, 7000}[seed%3]
		db := New(reg, Options{CellSizeM: cellSize})
		dbNoCache := New(reg, Options{CellSizeM: cellSize, DisableCache: true})
		pts := queryPoints(rng, reg, cellSize, 40)
		times := []time.Time{
			t0,
			t0.Add(90 * time.Second),
			t0.Add(400 * time.Second),
			t0.Add(20 * time.Minute),
		}
		for _, now := range times {
			for pi, p := range pts {
				want := reg.AvailableAt(p, now)
				for pass := 0; pass < 2; pass++ { // cold then (maybe) cached
					got := db.AvailableAt(p, now)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d cell %.0f t=%v point %d pass %d: index answer diverged from linear scan\n got %v\nwant %v",
							seed, cellSize, now.Sub(t0), pi, pass, got, want)
					}
				}
				if got := dbNoCache.AvailableAt(p, now); !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d cell %.0f t=%v point %d: uncached index diverged\n got %v\nwant %v",
						seed, cellSize, now.Sub(t0), pi, got, want)
				}
				// Single-channel path must agree with the set answer.
				first, last := reg.Domain.ChannelRange()
				for ch := first; ch <= last; ch += 7 {
					if got, want := db.ChannelAvailable(ch, p, now), reg.ChannelAvailable(ch, p, now); got != want {
						t.Fatalf("seed %d: ChannelAvailable(%d) = %v, linear scan %v", seed, ch, got, want)
					}
				}
			}
		}
	}
}

// TestEquivalenceAcrossMutation: adding and removing incumbents must
// invalidate the cache (snapshot epoch) so stale answers never leak.
func TestEquivalenceAcrossMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	reg := randomRegistry(rng, spectrum.EU)
	db := New(reg, Options{})
	pts := queryPoints(rng, reg, 2000, 25)
	now := t0
	for round := 0; round < 8; round++ {
		now = now.Add(45 * time.Second)
		for _, p := range pts {
			want := reg.AvailableAt(p, now)
			if got := db.AvailableAt(p, now); !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d: diverged after mutation\n got %v\nwant %v", round, got, want)
			}
		}
		if round%2 == 0 {
			_ = reg.AddIncumbent(spectrum.Incumbent{
				Kind: spectrum.WirelessMic, Channel: 21 + rng.Intn(40),
				Location:      pts[rng.Intn(len(pts))],
				ProtectRadius: rng.Float64() * 20000,
				From:          now,
			})
		} else {
			reg.RemoveIncumbents(21 + rng.Intn(40))
		}
	}
	// Every effective mutation (RemoveIncumbents on an empty channel
	// bumps nothing) must have produced a fresh snapshot.
	if r := db.Metrics().Rebuilds.Load(); r < 4 {
		t.Errorf("expected snapshot rebuilds to track mutations, got %d", r)
	}
}

// TestCacheBasics checks hit accounting, the uniformity rule and the
// schedule-boundary validity window directly.
func TestCacheBasics(t *testing.T) {
	reg := spectrum.NewRegistry(spectrum.EU)
	// A blanket mic event active from t0+100s for 60s: it fully
	// covers the probe cell (uniform answer) but is scheduled, so
	// cached entries must expire at its activation edge.
	if err := reg.AddIncumbent(spectrum.Incumbent{
		Kind: spectrum.WirelessMic, Channel: 30,
		Location: geo.Point{X: 500, Y: 500}, ProtectRadius: 1e7,
		From: t0.Add(100 * time.Second), To: t0.Add(160 * time.Second),
	}); err != nil {
		t.Fatal(err)
	}
	db := New(reg, Options{CellSizeM: 1000})
	p := geo.Point{X: 500, Y: 500}

	r1 := db.Query(p, "FIXED", "ETSI", t0)
	if r1.Hit || r1.Entry == nil {
		t.Fatalf("first query: hit=%v entry=%v, want miss+stored", r1.Hit, r1.Entry)
	}
	r2 := db.Query(p, "FIXED", "ETSI", t0.Add(10*time.Second))
	if !r2.Hit || r2.Entry != r1.Entry {
		t.Fatalf("second query should hit the stored entry")
	}
	// Different device class: distinct cache slot.
	if r := db.Query(p, "MODE_2", "ETSI", t0.Add(10*time.Second)); r.Hit {
		t.Fatalf("device class must partition the cache")
	}
	// The entry's window must end at the mic's activation edge.
	if got := r1.Entry.until; !got.Equal(t0.Add(100 * time.Second)) {
		t.Fatalf("entry validity = %v, want the schedule edge %v", got, t0.Add(100*time.Second))
	}
	if r := db.Query(p, "FIXED", "ETSI", t0.Add(120*time.Second)); r.Hit {
		t.Fatalf("entry must expire at the incumbent's activation edge")
	}

	// A boundary crossing the queried cell makes it uncacheable.
	if err := reg.AddIncumbent(spectrum.Incumbent{
		Kind: spectrum.TVStation, Channel: 25,
		Location: geo.Point{X: 0, Y: 0}, ProtectRadius: 700, From: t0,
	}); err != nil {
		t.Fatal(err)
	}
	r3 := db.Query(p, "FIXED", "ETSI", t0)
	if r3.Entry != nil {
		t.Fatalf("boundary-crossed cell must be uncacheable")
	}
	if db.Metrics().CacheUncacheable.Load() == 0 {
		t.Error("uncacheable counter not bumped")
	}
}

// TestOversizedIncumbentGoesGlobal pins the footprint cap: a
// country-scale protect radius must not explode the cell map.
func TestOversizedIncumbentGoesGlobal(t *testing.T) {
	reg := spectrum.NewRegistry(spectrum.EU)
	if err := reg.AddIncumbent(spectrum.Incumbent{
		Kind: spectrum.TVStation, Channel: 21,
		ProtectRadius: 1e7, From: t0.Add(-time.Hour),
	}); err != nil {
		t.Fatal(err)
	}
	db := New(reg, Options{CellSizeM: 2000})
	avail := db.AvailableAt(geo.Point{X: 1e6, Y: 1e6}, t0)
	for _, ci := range avail {
		if ci.Channel == 21 {
			t.Fatal("blanket incumbent not enforced far from origin")
		}
	}
	g := db.snapshotNow().index
	if len(g.global) != 1 || len(g.cells) != 0 {
		t.Fatalf("blanket incumbent should be global-only: global=%d cells=%d", len(g.global), len(g.cells))
	}
}

func mathCos(x float64) float64 { return math.Cos(x) }
func mathSin(x float64) float64 { return math.Sin(x) }
