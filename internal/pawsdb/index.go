package pawsdb

import (
	"math"
	"math/bits"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/spectrum"
)

// CellKey identifies one uniform grid cell. Cells are half-open
// squares [cx*size, (cx+1)*size) × [cy*size, (cy+1)*size).
type CellKey struct {
	CX, CY int32
}

// cellBucket lists the incumbents whose protection footprint overlaps
// one grid cell, plus the union of their channels as a bitmask so
// whole channels can be skipped without touching the incumbent list.
type cellBucket struct {
	incs []int32
	mask uint64
}

// gridIndex is the immutable geospatial availability index inside a
// snapshot. Incumbents whose footprint would span more than
// maxFootprintCells cells per axis go to the global list (a
// blanket-coverage TV station protecting half a country would
// otherwise appear in millions of buckets); they are checked on every
// query, which degrades gracefully to the old linear scan when all
// incumbents are oversized.
type gridIndex struct {
	cellSize float64
	cells    map[CellKey]*cellBucket
	global   []int32
	incs     []spectrum.Incumbent

	first, last int // domain channel range
	centers     []float64
	widthHz     float64
}

// chanBit maps a channel number to its bit in availability masks.
// Both domains span at most 40 channels, so a uint64 covers the plan.
func (g *gridIndex) chanBit(ch int) uint64 {
	return 1 << uint(ch-g.first)
}

func buildIndex(reg *spectrum.Registry, cellSize float64, maxFootprintCells int) *gridIndex {
	first, last := reg.Domain.ChannelRange()
	g := &gridIndex{
		cellSize: cellSize,
		cells:    make(map[CellKey]*cellBucket),
		incs:     reg.Incumbents(),
		first:    first,
		last:     last,
		centers:  make([]float64, last-first+1),
		widthHz:  reg.Domain.ChannelWidthHz(),
	}
	for ch := first; ch <= last; ch++ {
		f, err := reg.Domain.CenterFreqHz(ch)
		if err != nil {
			// Unreachable for in-range channels; keep the linear
			// scan's behaviour (skip) if it ever happens.
			f = math.NaN()
		}
		g.centers[ch-first] = f
	}
	for i, inc := range g.incs {
		loCX := g.coord(inc.Location.X - inc.ProtectRadius)
		hiCX := g.coord(inc.Location.X + inc.ProtectRadius)
		loCY := g.coord(inc.Location.Y - inc.ProtectRadius)
		hiCY := g.coord(inc.Location.Y + inc.ProtectRadius)
		span := int64(maxFootprintCells)
		if int64(hiCX)-int64(loCX) >= span || int64(hiCY)-int64(loCY) >= span {
			g.global = append(g.global, int32(i))
			continue
		}
		bit := g.chanBit(inc.Channel)
		for cx := loCX; cx <= hiCX; cx++ {
			for cy := loCY; cy <= hiCY; cy++ {
				key := CellKey{cx, cy}
				b := g.cells[key]
				if b == nil {
					b = &cellBucket{}
					g.cells[key] = b
				}
				b.incs = append(b.incs, int32(i))
				b.mask |= bit
			}
		}
	}
	return g
}

func (g *gridIndex) coord(v float64) int32 {
	return int32(math.Floor(v / g.cellSize))
}

// CellOf returns the grid cell containing p.
func (g *gridIndex) cellOf(p geo.Point) CellKey {
	return CellKey{g.coord(p.X), g.coord(p.Y)}
}

func (g *gridIndex) cellRect(key CellKey) geo.Rect {
	return geo.Rect{
		MinX: float64(key.CX) * g.cellSize,
		MinY: float64(key.CY) * g.cellSize,
		MaxX: float64(key.CX+1) * g.cellSize,
		MaxY: float64(key.CY+1) * g.cellSize,
	}
}

// blockedAt returns the bitmask of channels an incumbent protects
// against use at (p, t), consulting only the query cell's bucket and
// the global list. Exactness: an incumbent with Dist(p) <= R has p
// inside its footprint square, so it was inserted into p's cell —
// pruned incumbents can never have protected p.
func (g *gridIndex) blockedAt(p geo.Point, t time.Time) uint64 {
	var blocked uint64
	for _, i := range g.global {
		inc := &g.incs[i]
		if blocked&g.chanBit(inc.Channel) == 0 && inc.Protects(p, t) {
			blocked |= g.chanBit(inc.Channel)
		}
	}
	if b := g.cells[g.cellOf(p)]; b != nil && b.mask&^blocked != 0 {
		for _, i := range b.incs {
			inc := &g.incs[i]
			if blocked&g.chanBit(inc.Channel) == 0 && inc.Protects(p, t) {
				blocked |= g.chanBit(inc.Channel)
			}
		}
	}
	return blocked
}

// uniformEps is the guard band for the cell-uniformity test: a
// protection boundary within eps of the cell is treated as crossing
// it, so floating-point rounding in distance computations can never
// make a cached cell-wide answer disagree with exact per-point
// evaluation.
func uniformEps(r float64) float64 { return r*1e-9 + 1e-6 }

// cellAnswer is the result of evaluating one cell for caching:
// blockedAtP is the exact answer for the query point; if uniform is
// true that answer holds for every point of the cell, valid from the
// query time until validUntil (zero = no schedule boundary ahead).
type cellAnswer struct {
	blockedAtP uint64
	uniform    bool
	validUntil time.Time
}

// evalCell computes the exact availability at p and, in the same pass,
// whether that answer is uniform across p's whole cell: every active
// candidate incumbent must either cover the cell entirely (its minimum
// distance to the farthest cell corner is within the protect radius)
// or miss it entirely. Candidates whose boundary crosses the cell make
// the answer non-uniform and thus uncacheable. validUntil is the
// earliest upcoming From/To schedule edge among all candidates —
// cached entries expire there because an incumbent switching on or
// off changes the answer without an incumbent-set mutation.
func (g *gridIndex) evalCell(key CellKey, p geo.Point, t time.Time) cellAnswer {
	ans := cellAnswer{uniform: true}
	rect := g.cellRect(key)
	scan := func(i int32) {
		inc := &g.incs[i]
		// Track the next activation/deactivation edge.
		if t.Before(inc.From) {
			ans.bound(inc.From)
		} else if !inc.To.IsZero() && t.Before(inc.To) {
			ans.bound(inc.To)
		}
		if !inc.ActiveAt(t) {
			return
		}
		bit := g.chanBit(inc.Channel)
		if inc.Location.Dist(p) <= inc.ProtectRadius {
			ans.blockedAtP |= bit
		}
		dmin, dmax := rectDistRange(rect, inc.Location)
		eps := uniformEps(inc.ProtectRadius)
		switch {
		case dmax <= inc.ProtectRadius-eps:
			// Covers the whole cell; blockedAtP already has the bit.
		case dmin > inc.ProtectRadius+eps:
			// Misses the whole cell.
		default:
			ans.uniform = false
		}
	}
	for _, i := range g.global {
		scan(i)
	}
	if b := g.cells[key]; b != nil {
		for _, i := range b.incs {
			scan(i)
		}
	}
	return ans
}

func (a *cellAnswer) bound(t time.Time) {
	if a.validUntil.IsZero() || t.Before(a.validUntil) {
		a.validUntil = t
	}
}

// rectDistRange returns the minimum and maximum distance from c to any
// point of the closed rectangle r.
func rectDistRange(r geo.Rect, c geo.Point) (dmin, dmax float64) {
	dx := math.Max(math.Max(r.MinX-c.X, 0), c.X-r.MaxX)
	dy := math.Max(math.Max(r.MinY-c.Y, 0), c.Y-r.MaxY)
	dmin = math.Hypot(dx, dy)
	fx := math.Max(c.X-r.MinX, r.MaxX-c.X)
	fy := math.Max(c.Y-r.MinY, r.MaxY-c.Y)
	dmax = math.Hypot(fx, fy)
	return dmin, dmax
}

// materialize expands a blocked-channel mask into the ChannelInfo
// slice the registry's linear scan would have produced: ascending
// channel order, per-query power cap and lease expiry, nil when
// nothing is available.
func (g *gridIndex) materialize(blocked uint64, maxEIRPdBm float64, until time.Time) []spectrum.ChannelInfo {
	n := len(g.centers)
	free := n - bits.OnesCount64(blocked&((1<<uint(n))-1))
	if free == 0 {
		return nil
	}
	out := make([]spectrum.ChannelInfo, 0, free)
	for i := 0; i < n; i++ {
		if blocked&(1<<uint(i)) != 0 || math.IsNaN(g.centers[i]) {
			continue
		}
		out = append(out, spectrum.ChannelInfo{
			Channel:      g.first + i,
			CenterFreqHz: g.centers[i],
			WidthHz:      g.widthHz,
			MaxEIRPdBm:   maxEIRPdBm,
			Until:        until,
		})
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
