package pawsdb

import (
	"sync"
	"time"
)

// Lease-store geometry. 64 shards keep concurrent grants from
// serializing; each shard owns a 512-slot timing wheel with 1-second
// slots, so eviction work per operation is O(slots touched since the
// shard's last advance), capped at one full wheel sweep even when a
// simulation jumps virtual time by hours.
const (
	leaseShards    = 64
	wheelSlots     = 512
	wheelSlotWidth = time.Second
)

// lease is one device's outstanding availability grant.
type lease struct {
	serial string
	class  string
	cell   CellKey
	until  time.Time
	// gen invalidates stale wheel references: renewals bump it and
	// re-insert, and the sweep drops references whose gen no longer
	// matches (lazy deletion — no wheel search on the renewal path).
	gen uint32
}

type wheelRef struct {
	l   *lease
	gen uint32
}

type leaseShard struct {
	mu       sync.Mutex
	m        map[string]*lease
	wheel    [wheelSlots][]wheelRef
	lastSlot int64 // absolute slot index the wheel has advanced to; 0 = uninitialized
}

// LeaseStore tracks per-device spectrum grants with TTL eviction. It
// is driven entirely by the clock values callers pass in (the PAWS
// server's injectable Now), so simulations in virtual time evict
// exactly as a wall-clock deployment would — no background goroutine.
type LeaseStore struct {
	shards [leaseShards]leaseShard
	met    *Metrics
}

func newLeaseStore(met *Metrics) *LeaseStore {
	s := &LeaseStore{met: met}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*lease)
	}
	return s
}

func (s *LeaseStore) shard(serial string) *leaseShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(serial); i++ {
		h ^= uint64(serial[i])
		h *= 1099511628211
	}
	return &s.shards[h%leaseShards]
}

func slotOf(t time.Time) int64 { return t.UnixNano() / int64(wheelSlotWidth) }

// wheelIdx maps an absolute slot to a ring position, handling the
// negative slot numbers of pre-1970 clocks (the zero time.Time).
func wheelIdx(abs int64) int { return int(((abs % wheelSlots) + wheelSlots) % wheelSlots) }

// advance sweeps wheel slots between the shard's last position and
// now, evicting expired leases and re-bucketing far-future ones that
// were clamped to the wheel horizon. Caller holds sh.mu.
func (s *LeaseStore) advance(sh *leaseShard, now time.Time) {
	target := slotOf(now)
	if sh.lastSlot == 0 {
		sh.lastSlot = target
		return
	}
	steps := target - sh.lastSlot
	if steps <= 0 {
		return
	}
	if steps > wheelSlots {
		steps = wheelSlots
	}
	for i := int64(1); i <= steps; i++ {
		idx := wheelIdx(sh.lastSlot + i)
		slot := sh.wheel[idx]
		if len(slot) == 0 {
			continue
		}
		sh.wheel[idx] = slot[:0]
		for _, ref := range slot {
			if ref.gen != ref.l.gen {
				continue // stale reference from before a renewal
			}
			if !ref.l.until.After(now) {
				delete(sh.m, ref.l.serial)
				if s.met != nil {
					s.met.LeasesExpired.Add(1)
				}
				continue
			}
			s.insertRef(sh, target, ref)
		}
	}
	sh.lastSlot = target
}

// insertRef buckets a reference by expiry, clamping expiries beyond
// the wheel horizon to the farthest slot (they re-bucket on sweep).
// Caller holds sh.mu; cur is the wheel's current absolute slot.
func (s *LeaseStore) insertRef(sh *leaseShard, cur int64, ref wheelRef) {
	slot := slotOf(ref.l.until)
	if slot <= cur {
		slot = cur + 1
	}
	if slot > cur+wheelSlots-1 {
		slot = cur + wheelSlots - 1
	}
	idx := wheelIdx(slot)
	sh.wheel[idx] = append(sh.wheel[idx], ref)
}

// Acquire grants or renews the lease for a device serial. Renewal is
// the fast path: an existing live lease is refreshed in place (map
// entry reused, one wheel append) rather than deleted and re-created.
// Returns true when this was a renewal.
func (s *LeaseStore) Acquire(serial, class string, cell CellKey, until, now time.Time) (renewed bool) {
	sh := s.shard(serial)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.advance(sh, now)
	cur := sh.lastSlot
	if l, ok := sh.m[serial]; ok && l.until.After(now) {
		l.until = until
		l.cell = cell
		l.class = class
		l.gen++
		s.insertRef(sh, cur, wheelRef{l, l.gen})
		if s.met != nil {
			s.met.LeasesRenewed.Add(1)
		}
		return true
	}
	l := &lease{serial: serial, class: class, cell: cell, until: until, gen: 1}
	sh.m[serial] = l
	s.insertRef(sh, cur, wheelRef{l, l.gen})
	if s.met != nil {
		s.met.LeasesGranted.Add(1)
	}
	return false
}

// Release drops a device's lease (a polite vacate / cessation notify).
// Returns true if a lease existed.
func (s *LeaseStore) Release(serial string, now time.Time) bool {
	sh := s.shard(serial)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.advance(sh, now)
	if _, ok := sh.m[serial]; ok {
		delete(sh.m, serial) // wheel refs go stale and sweep out
		return true
	}
	return false
}

// Active returns the exact number of unexpired leases at now,
// advancing every shard's wheel on the way.
func (s *LeaseStore) Active(now time.Time) int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		s.advance(sh, now)
		for _, l := range sh.m {
			if l.until.After(now) {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Occupancy summarizes how leases spread across the store's shards —
// the health-probe view of hash balance. A Max far above Total/Shards
// means one shard is serializing grants (hot serial prefix or a bad
// hash); Occupied counts shards holding at least one unexpired lease.
type Occupancy struct {
	Shards   int `json:"shards"`
	Occupied int `json:"occupied"`
	Max      int `json:"max_per_shard"`
	Total    int `json:"total"`
}

// Occupancy walks every shard at now, advancing wheels the same way
// Active does, and reports the distribution of unexpired leases.
func (s *LeaseStore) Occupancy(now time.Time) Occupancy {
	o := Occupancy{Shards: leaseShards}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		s.advance(sh, now)
		n := 0
		for _, l := range sh.m {
			if l.until.After(now) {
				n++
			}
		}
		sh.mu.Unlock()
		if n > 0 {
			o.Occupied++
		}
		if n > o.Max {
			o.Max = n
		}
		o.Total += n
	}
	return o
}
