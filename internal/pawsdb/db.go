package pawsdb

import (
	"sync"
	"sync/atomic"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/spectrum"
)

// Options configure a DB. The zero value gives production defaults.
type Options struct {
	// CellSizeM is the grid cell edge in metres (index and cache
	// granularity). Default 2000 — metro AP densities put hundreds of
	// APs per cell, TV protection contours span many cells.
	CellSizeM float64
	// MaxFootprintCells caps how many cells per axis one incumbent's
	// footprint may bucket into before it is moved to the global
	// always-checked list. Default 64 (128 km at the default cell).
	MaxFootprintCells int
	// DisableCache turns the response cache off (every query computes
	// from the index). Used by the load harness to measure the
	// cache's win and by tests.
	DisableCache bool
}

func (o Options) withDefaults() Options {
	if o.CellSizeM <= 0 {
		o.CellSizeM = 2000
	}
	if o.MaxFootprintCells <= 0 {
		o.MaxFootprintCells = 64
	}
	return o
}

// snapshot is one immutable (index, cache) pair built from the
// registry at a specific incumbent-set epoch.
type snapshot struct {
	epoch   int64
	index   *gridIndex
	cache   *respCache
	spectra *spectraCache
}

// DB is the spectrum-database core: a spectrum.Registry wrapped with
// the grid index, response cache, lease store and metrics. See the
// package comment for the concurrency model.
type DB struct {
	reg    *spectrum.Registry
	opts   Options
	mu     sync.Mutex // serializes snapshot rebuilds and external registry mutation
	snap   atomic.Pointer[snapshot]
	leases *LeaseStore
	met    Metrics
}

// New wraps a registry. The registry stays the single source of truth
// for incumbents; the DB notices mutations via Registry.Epoch.
func New(reg *spectrum.Registry, opts Options) *DB {
	db := &DB{reg: reg, opts: opts.withDefaults()}
	db.leases = newLeaseStore(&db.met)
	return db
}

// Registry exposes the backing registry.
func (db *DB) Registry() *spectrum.Registry { return db.reg }

// Leases exposes the lease store.
func (db *DB) Leases() *LeaseStore { return db.leases }

// Metrics exposes the live counters for hot-path updates.
func (db *DB) Metrics() *Metrics { return &db.met }

// SnapshotEpoch reports the incumbent-set epoch the currently served
// (index, cache) snapshot was built from, or -1 before the first
// query forces a build. A health probe comparing it against
// Registry().Epoch() can tell a stale snapshot from a fresh one
// without paying for a rebuild.
func (db *DB) SnapshotEpoch() int64 {
	if s := db.snap.Load(); s != nil {
		return s.epoch
	}
	return -1
}

// Lock and Unlock guard external registry mutation while the DB is
// serving (the paws.Server Lock/Unlock contract). Queries running
// concurrently with a held lock serve the previous snapshot until the
// mutation bumps the registry epoch.
func (db *DB) Lock()   { db.mu.Lock() }
func (db *DB) Unlock() { db.mu.Unlock() }

// snapshotNow returns a snapshot current for the registry's epoch,
// rebuilding index and cache if incumbents changed since the last one.
func (db *DB) snapshotNow() *snapshot {
	s := db.snap.Load()
	v := db.reg.Epoch()
	if s != nil && s.epoch == v {
		return s
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	s = db.snap.Load()
	v = db.reg.Epoch()
	if s != nil && s.epoch == v {
		return s
	}
	s = &snapshot{
		epoch: v,
		index: buildIndex(db.reg, db.opts.CellSizeM, db.opts.MaxFootprintCells),
	}
	if !db.opts.DisableCache {
		s.cache = newRespCache()
		s.spectra = &spectraCache{}
	}
	db.snap.Store(s)
	db.met.Rebuilds.Add(1)
	return s
}

// QueryResult carries one availability answer plus the cache context
// the PAWS server uses for response rendering.
type QueryResult struct {
	// Avail is exactly what spectrum.Registry.AvailableAt would have
	// returned for the same (point, time).
	Avail []spectrum.ChannelInfo
	// Entry is the cache entry the answer was served from or stored
	// into; nil when the cell's answer was not uniform (uncacheable)
	// or the cache is disabled.
	Entry *CacheEntry
	// Hit reports whether Entry existed before this query.
	Hit bool
	// Mask is the blocked-channel bitmask behind Avail (bit i =
	// channel first+i blocked). It keys the premarshaled-spectra
	// slots, so boundary cells share renderings with uniform ones.
	Mask uint64
	// Spectra is the rendering slot for Mask in the snapshot that
	// answered this query; nil when the cache is disabled or the mask
	// table is full. The PAWS server stores the marshaled spectra JSON
	// here and reuses it for any answer with the same mask.
	Spectra *AuxSlot
	// Cell is the grid cell the query fell in.
	Cell CellKey
}

// Query answers the regulatory availability question for a device of
// the given class under the given ruleset. It is safe for arbitrary
// concurrency and lock-free when the cache hits.
func (db *DB) Query(p geo.Point, class, ruleset string, t time.Time) QueryResult {
	db.met.Queries.Add(1)
	s := db.snapshotNow()
	g := s.index
	res := QueryResult{Cell: g.cellOf(p)}
	until := t.Add(db.reg.LeaseDuration)
	eirp := db.reg.DefaultMaxEIRPdBm

	if s.cache != nil {
		key := cacheKey{cell: res.Cell, class: class, ruleset: ruleset}
		e := s.cache.get(key, t)
		switch {
		case e != nil && e.nonuniform:
			// Negative hit: the cell is known to straddle a protection
			// boundary until the next schedule edge, so skip the
			// cell-uniformity scan and answer point-exact from the
			// index.
			db.met.CacheNegHits.Add(1)
			res.Mask = g.blockedAt(p, t)
		case e != nil:
			db.met.CacheHits.Add(1)
			res.Entry, res.Hit = e, true
			res.Mask = e.blocked
		default:
			db.met.CacheMisses.Add(1)
			ans := g.evalCell(res.Cell, p, t)
			res.Mask = ans.blockedAtP
			if ans.uniform {
				ne := &CacheEntry{blocked: ans.blockedAtP, from: t, until: ans.validUntil}
				s.cache.put(key, ne)
				res.Entry = ne
			} else {
				db.met.CacheUncacheable.Add(1)
				s.cache.put(key, &CacheEntry{nonuniform: true, from: t, until: ans.validUntil})
			}
		}
		res.Avail = g.materialize(res.Mask, eirp, until)
		res.Spectra = s.spectra.slot(res.Mask)
		return res
	}

	res.Mask = g.blockedAt(p, t)
	res.Avail = g.materialize(res.Mask, eirp, until)
	return res
}

// AvailableAt is the drop-in replacement for
// spectrum.Registry.AvailableAt, answered through the index and cache.
func (db *DB) AvailableAt(p geo.Point, t time.Time) []spectrum.ChannelInfo {
	return db.Query(p, "", "", t).Avail
}

// ChannelAvailable reports whether one channel is usable at (p, t),
// answered through the index (no cache — single-channel checks are
// already cheap and appear on the notify path where exactness against
// the reported location matters).
func (db *DB) ChannelAvailable(ch int, p geo.Point, t time.Time) bool {
	g := db.snapshotNow().index
	if ch < g.first || ch > g.last {
		return false
	}
	return g.blockedAt(p, t)&g.chanBit(ch) == 0
}
