package pawsdb

import (
	"fmt"
	"testing"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/spectrum"
)

// TestSnapshotEpoch: the health probe's staleness signal. -1 before
// any snapshot exists, tracks the registry epoch once queries build
// one, and lags behind a registry mutation until the next query.
func TestSnapshotEpoch(t *testing.T) {
	reg := spectrum.NewRegistry(spectrum.EU)
	db := New(reg, Options{})

	if e := db.SnapshotEpoch(); e != -1 {
		t.Fatalf("epoch before first build = %d, want -1", e)
	}
	db.AvailableAt(geo.Point{}, t0)
	if e := db.SnapshotEpoch(); e != reg.Epoch() {
		t.Fatalf("epoch after build = %d, registry at %d", e, reg.Epoch())
	}
	db.Lock()
	err := reg.AddIncumbent(spectrum.Incumbent{
		Kind: spectrum.WirelessMic, Channel: 21,
		ProtectRadius: 1000, From: t0,
	})
	db.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if e := db.SnapshotEpoch(); e == reg.Epoch() {
		t.Fatal("snapshot claims current epoch before rebuild")
	}
	db.AvailableAt(geo.Point{}, t0)
	if e := db.SnapshotEpoch(); e != reg.Epoch() {
		t.Fatalf("epoch after mutation+query = %d, registry at %d", e, reg.Epoch())
	}
}

// TestLeaseOccupancy: the shard-distribution gauge agrees with Active
// and its aggregate bounds hold as leases are granted and expire.
func TestLeaseOccupancy(t *testing.T) {
	s := newLeaseStore(nil)
	now := t0

	o := s.Occupancy(now)
	if o.Shards != leaseShards || o.Total != 0 || o.Occupied != 0 || o.Max != 0 {
		t.Fatalf("empty store occupancy = %+v", o)
	}

	const n = 500
	for i := 0; i < n; i++ {
		s.Acquire(fmt.Sprintf("AP-%04d", i), "FIXED", CellKey{}, now.Add(time.Minute), now)
	}
	o = s.Occupancy(now)
	if o.Total != n {
		t.Fatalf("total = %d, want %d", o.Total, n)
	}
	if o.Total != s.Active(now) {
		t.Fatalf("occupancy total %d != Active %d", o.Total, s.Active(now))
	}
	if o.Occupied < 2 || o.Occupied > leaseShards {
		t.Fatalf("occupied shards = %d — serial hash is degenerate", o.Occupied)
	}
	// Max is at least the mean (pigeonhole) and never exceeds Total.
	if o.Max*o.Shards < o.Total || o.Max > o.Total {
		t.Fatalf("max/shard = %d inconsistent with total %d over %d shards",
			o.Max, o.Total, o.Shards)
	}

	// Expiry drains the gauge.
	now = now.Add(2 * time.Minute)
	if o = s.Occupancy(now); o.Total != 0 || o.Occupied != 0 || o.Max != 0 {
		t.Fatalf("occupancy after expiry = %+v", o)
	}
}
