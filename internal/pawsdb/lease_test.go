package pawsdb

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestLeaseAcquireRenewExpire(t *testing.T) {
	var met Metrics
	s := newLeaseStore(&met)
	now := t0
	cell := CellKey{1, 1}

	if renewed := s.Acquire("AP-1", "FIXED", cell, now.Add(30*time.Second), now); renewed {
		t.Fatal("first acquire reported as renewal")
	}
	if n := s.Active(now); n != 1 {
		t.Fatalf("active = %d, want 1", n)
	}
	// Renewal fast path before expiry.
	now = now.Add(20 * time.Second)
	if renewed := s.Acquire("AP-1", "FIXED", cell, now.Add(30*time.Second), now); !renewed {
		t.Fatal("in-lease acquire should renew")
	}
	// The renewal extended the TTL past the original expiry.
	now = now.Add(25 * time.Second) // t0+45s: original until (t0+30) passed
	if n := s.Active(now); n != 1 {
		t.Fatalf("renewed lease dropped early: active = %d", n)
	}
	// Let it lapse; a fresh acquire is a grant, not a renewal.
	now = now.Add(10 * time.Second)
	if n := s.Active(now); n != 0 {
		t.Fatalf("lease not evicted after expiry: active = %d", n)
	}
	if renewed := s.Acquire("AP-1", "FIXED", cell, now.Add(30*time.Second), now); renewed {
		t.Fatal("acquire after expiry should be a fresh grant")
	}
	if g, r, e := met.LeasesGranted.Load(), met.LeasesRenewed.Load(), met.LeasesExpired.Load(); g != 2 || r != 1 || e < 1 {
		t.Fatalf("churn counters granted=%d renewed=%d expired=%d, want 2/1/>=1", g, r, e)
	}
}

func TestLeaseVirtualTimeJump(t *testing.T) {
	s := newLeaseStore(nil)
	now := t0
	for i := 0; i < 1000; i++ {
		s.Acquire(fmt.Sprintf("AP-%d", i), "FIXED", CellKey{}, now.Add(time.Duration(1+i)*time.Second), now)
	}
	if n := s.Active(now); n != 1000 {
		t.Fatalf("active = %d, want 1000", n)
	}
	// A simulation jumping hours forward must evict everything in one
	// bounded sweep, not iterate hour/slot-width empty slots.
	now = now.Add(12 * time.Hour)
	if n := s.Active(now); n != 0 {
		t.Fatalf("active after 12h jump = %d, want 0", n)
	}
}

func TestLeaseFarFutureExpiry(t *testing.T) {
	s := newLeaseStore(nil)
	now := t0
	// Until far beyond the wheel horizon (512 s): must survive
	// repeated sweeps via re-bucketing until it really expires.
	s.Acquire("AP-far", "FIXED", CellKey{}, now.Add(2*time.Hour), now)
	for step := 0; step < 24; step++ {
		now = now.Add(5 * time.Minute)
		want := 1
		if !t0.Add(2 * time.Hour).After(now) {
			want = 0
		}
		if n := s.Active(now); n != want {
			t.Fatalf("step %d (+%v): active = %d, want %d", step, now.Sub(t0), n, want)
		}
	}
}

func TestLeaseRelease(t *testing.T) {
	s := newLeaseStore(nil)
	now := t0
	s.Acquire("AP-9", "FIXED", CellKey{}, now.Add(time.Hour), now)
	if !s.Release("AP-9", now) {
		t.Fatal("release of live lease returned false")
	}
	if s.Release("AP-9", now) {
		t.Fatal("double release returned true")
	}
	if n := s.Active(now); n != 0 {
		t.Fatalf("active after release = %d", n)
	}
}

func TestLeaseConcurrent(t *testing.T) {
	s := newLeaseStore(nil)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			now := t0
			for i := 0; i < per; i++ {
				serial := fmt.Sprintf("AP-%d-%d", w, i%50)
				now = now.Add(137 * time.Millisecond)
				s.Acquire(serial, "FIXED", CellKey{int32(w), int32(i)}, now.Add(20*time.Second), now)
			}
		}(w)
	}
	wg.Wait()
	if n := s.Active(t0.Add(per * 137 * time.Millisecond)); n == 0 {
		t.Fatal("no leases survived the concurrent churn")
	}
}
