package pawsdb

import (
	"sync/atomic"
	"time"

	"cellfi/internal/stats"
)

// Metrics are the database's operational counters. All fields are
// updated with atomics on the request hot path; Snapshot renders them
// into the JSON shape /metrics serves. Latency is dispatch latency
// (decode → answer → encode), recorded by the PAWS server around each
// JSON-RPC call.
type Metrics struct {
	Queries          atomic.Int64
	CacheHits        atomic.Int64
	CacheNegHits     atomic.Int64
	CacheMisses      atomic.Int64
	CacheUncacheable atomic.Int64
	Rebuilds         atomic.Int64
	NotifyOK         atomic.Int64
	NotifyRejected   atomic.Int64
	LeasesGranted    atomic.Int64
	LeasesRenewed    atomic.Int64
	LeasesExpired    atomic.Int64
	Errors           atomic.Int64

	Latency stats.Histogram
}

// MetricsSnapshot is the JSON rendering of Metrics plus the gauges
// (lease count, incumbent count, cache entries) only the DB can read.
type MetricsSnapshot struct {
	Queries          int64   `json:"queries"`
	CacheHits        int64   `json:"cache_hits"`
	CacheNegHits     int64   `json:"cache_neg_hits"`
	CacheMisses      int64   `json:"cache_misses"`
	CacheUncacheable int64   `json:"cache_uncacheable"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	CacheEntries     int     `json:"cache_entries"`
	Rebuilds         int64   `json:"index_rebuilds"`
	NotifyOK         int64   `json:"notify_ok"`
	NotifyRejected   int64   `json:"notify_rejected"`
	LeasesGranted    int64   `json:"leases_granted"`
	LeasesRenewed    int64   `json:"leases_renewed"`
	LeasesExpired    int64   `json:"leases_expired"`
	ActiveLeases     int     `json:"active_leases"`
	Incumbents       int     `json:"incumbents"`
	Errors           int64   `json:"errors"`

	LatencyCount  int64   `json:"latency_count"`
	LatencyMeanNs float64 `json:"latency_mean_ns"`
	LatencyP50Ns  int64   `json:"latency_p50_ns"`
	LatencyP99Ns  int64   `json:"latency_p99_ns"`
}

// Snapshot renders the counters at time now (now drives lease-wheel
// advancement for the active-lease gauge).
func (db *DB) Snapshot(now time.Time) MetricsSnapshot {
	m := &db.met
	s := MetricsSnapshot{
		Queries:          m.Queries.Load(),
		CacheHits:        m.CacheHits.Load(),
		CacheNegHits:     m.CacheNegHits.Load(),
		CacheMisses:      m.CacheMisses.Load(),
		CacheUncacheable: m.CacheUncacheable.Load(),
		Rebuilds:         m.Rebuilds.Load(),
		NotifyOK:         m.NotifyOK.Load(),
		NotifyRejected:   m.NotifyRejected.Load(),
		LeasesGranted:    m.LeasesGranted.Load(),
		LeasesRenewed:    m.LeasesRenewed.Load(),
		LeasesExpired:    m.LeasesExpired.Load(),
		ActiveLeases:     db.leases.Active(now),
		Incumbents:       db.reg.IncumbentCount(),
		Errors:           m.Errors.Load(),
	}
	// Negative hits count as lookups but not hits: they still pay a
	// per-point index evaluation, so inflating the hit rate with them
	// would hide boundary-cell load.
	if lookups := s.CacheHits + s.CacheNegHits + s.CacheMisses; lookups > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(lookups)
	}
	if snap := db.snap.Load(); snap != nil && snap.cache != nil {
		s.CacheEntries = snap.cache.entries()
	}
	lat := m.Latency.Snapshot()
	s.LatencyCount = lat.N
	s.LatencyMeanNs = lat.Mean()
	s.LatencyP50Ns = lat.Quantile(0.50)
	s.LatencyP99Ns = lat.Quantile(0.99)
	return s
}
