// Package pawsdb is the production-shaped spectrum-database core that
// backs the RFC 7545 PAWS server in internal/paws. In the paper's
// deployment a single Nominet-style database is the coordination point
// for every white-space AP in a country, so this layer is built for
// metro-scale query rates rather than the linear incumbent scan the
// seed used:
//
//   - a geospatial channel-availability index (uniform grid over
//     internal/geo cells; incumbents bucketed into every cell their
//     protect-radius footprint overlaps, with oversized footprints
//     falling back to a short always-checked list) that answers
//     AvailableAt by testing only the incumbents that can possibly
//     protect the query point — byte-identical to the registry's
//     linear scan, which a 100-seed randomized equivalence test pins;
//
//   - a response cache keyed on (location cell, device class,
//     ruleset). An entry is stored only when the answer is provably
//     uniform across the whole cell (every candidate incumbent's
//     protection circle either fully covers or fully misses the cell,
//     with an epsilon guard band so floating-point edge cases fall
//     back to exact evaluation) and carries a validity window bounded
//     by the next incumbent schedule boundary, so cached answers are
//     never approximations. Boundary-straddling cells get a negative
//     entry with the same validity window, so repeat queries skip the
//     uniformity scan and evaluate point-exact; marshaled spectra are
//     cached separately, keyed by blocked-channel mask, and shared by
//     every cell with the same availability. Incumbent-set changes
//     invalidate all of it wholesale through the snapshot epoch;
//
//   - a lease store keyed by device serial with a TTL timing wheel
//     for eviction and a renewal fast path that refreshes an existing
//     lease in place, sharded 64 ways so concurrent grants do not
//     serialize;
//
//   - metrics: atomic counters (queries, cache hits/misses, rebuilds,
//     lease churn) plus a lock-free latency histogram giving p50/p99.
//
// Concurrency model: the read path is lock-free. The index and cache
// live in an immutable snapshot behind an atomic pointer; queries load
// the snapshot, compare its epoch against spectrum.Registry.Epoch()
// and only take the rebuild mutex when incumbents actually changed
// (the registry's own mutation contract — the PAWS server's
// Lock/Unlock — is unchanged). The snapshot swap IS the cache epoch:
// a new incumbent set produces a fresh snapshot with an empty cache,
// so no per-entry epoch checks are needed on the hot path.
package pawsdb
