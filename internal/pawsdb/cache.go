package pawsdb

import (
	"sync"
	"sync/atomic"
	"time"
)

// cacheShards spreads the response cache over independently locked
// shards so hot metro cells served from many goroutines do not
// serialize on one mutex. Reads take an RLock; only a fill takes the
// write lock.
const cacheShards = 64

// maxEntriesPerShard bounds cache memory against adversarial query
// scatter (every query in a fresh cell). Crossing the bound flushes
// the shard — crude, but the cache is rebuilt from scratch on every
// incumbent change anyway, so entries are cheap to recompute.
const maxEntriesPerShard = 4096

// cacheKey identifies one cached answer: the grid cell the query fell
// in, the device class it was asked for, and the ruleset it was
// answered under. Today neither class nor ruleset changes the computed
// answer (the power cap is registry-uniform), but they are part of the
// key so per-class EIRP rules slot in without a cache redesign.
type cacheKey struct {
	cell    CellKey
	class   string
	ruleset string
}

// CacheEntry is one immutable cached availability answer. The blocked
// mask is the exact answer for every point of the cell during
// [from, until); callers re-materialize per-query fields (power cap,
// lease expiry) around it.
//
// A nonuniform entry is a negative result: it records that the cell
// straddles at least one protection boundary, so per-point evaluation
// is required. That fact can only change when an incumbent's schedule
// edge passes (activation can't move a contour; only a candidate
// becoming active or inactive alters which circles cross the cell),
// so the same [from, until) window bounds it. Repeat queries into a
// boundary cell then skip the full cell-uniformity scan and go
// straight to the point-exact index lookup.
type CacheEntry struct {
	blocked    uint64
	nonuniform bool
	from       time.Time
	until      time.Time // zero: no schedule boundary ahead
}

// live reports whether the entry answers queries at time t.
func (e *CacheEntry) live(t time.Time) bool {
	if t.Before(e.from) {
		return false
	}
	return e.until.IsZero() || t.Before(e.until)
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[cacheKey]*CacheEntry
}

// respCache is the per-snapshot response cache. A snapshot swap (the
// incumbent-set epoch moving) abandons the whole cache, which is the
// epoch-invalidation contract: entries never outlive the incumbent
// set they were computed from.
type respCache struct {
	shards [cacheShards]cacheShard
}

func newRespCache() *respCache {
	c := &respCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[cacheKey]*CacheEntry)
	}
	return c
}

func (c *respCache) shard(k cacheKey) *cacheShard {
	h := uint64(uint32(k.cell.CX))*0x9e3779b1 ^ uint64(uint32(k.cell.CY))*0x85ebca77
	for i := 0; i < len(k.class); i++ {
		h = h*131 + uint64(k.class[i])
	}
	return &c.shards[h%cacheShards]
}

func (c *respCache) get(k cacheKey, t time.Time) *CacheEntry {
	s := c.shard(k)
	s.mu.RLock()
	e := s.m[k]
	s.mu.RUnlock()
	if e != nil && e.live(t) {
		return e
	}
	return nil
}

func (c *respCache) put(k cacheKey, e *CacheEntry) {
	s := c.shard(k)
	s.mu.Lock()
	if len(s.m) >= maxEntriesPerShard {
		s.m = make(map[cacheKey]*CacheEntry)
	}
	s.m[k] = e
	s.mu.Unlock()
}

// entries returns the total number of cached answers (for metrics).
func (c *respCache) entries() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return n
}

// AuxSlot holds one caller-owned rendering of an availability answer.
// The PAWS server stores the marshaled spectra JSON here. Writes are
// racy by design (concurrent requests may both render and store the
// same bytes); last write wins.
type AuxSlot struct{ v atomic.Value }

// Load returns the value stored by Store, or nil.
func (s *AuxSlot) Load() any { return s.v.Load() }

// Store attaches a caller-owned value to the slot.
func (s *AuxSlot) Store(v any) { s.v.Store(v) }

// maxSpectraSlots bounds the mask→rendering table against adversarial
// query scatter (a metro registry yields a handful of distinct masks;
// a pathological one could yield one per point). Past the cap new
// masks are simply rendered per request.
const maxSpectraSlots = 1 << 14

// spectraCache maps a blocked-channel mask to the rendering slot for
// answers with that mask. Spectra bytes depend only on the mask (the
// channel plan and power cap are registry-fixed for a snapshot's
// lifetime; the lease stop time lives in the schedule envelope, not
// the spectra), so one slot serves every cell — uniform or boundary —
// that resolves to the same mask.
type spectraCache struct {
	m sync.Map // uint64 blocked mask -> *AuxSlot
	n atomic.Int64
}

func (c *spectraCache) slot(mask uint64) *AuxSlot {
	if v, ok := c.m.Load(mask); ok {
		return v.(*AuxSlot)
	}
	if c.n.Load() >= maxSpectraSlots {
		return nil
	}
	v, loaded := c.m.LoadOrStore(mask, new(AuxSlot))
	if !loaded {
		c.n.Add(1)
	}
	return v.(*AuxSlot)
}
