package paws

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cellfi/internal/spectrum"
)

// FuzzParse throws arbitrary bytes at the client-side JSON-RPC
// response parser — the surface a chaos injector's malformed-JSON,
// truncation and clock-skew faults hit. It must never panic, and on
// success the decoded result must be structurally sane.
func FuzzParse(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"jsonrpc":"2.0","result":{},"id":1}`,
		`{"jsonrpc":"2.0","error":{"code":-104,"message":"outside coverage"},"id":1}`,
		`{"jsonrpc":"2.0","result":{"spectrumSchedules":[{"startTime":"2017-12-12T09:00:00Z","stopTime":"2017-12-12T21:00:00Z","spectra":[{"startHz":4.74e8,"stopHz":4.82e8,"maxEirpDbm":36,"channel":21}]}]},"id":2}`,
		`{"jsonrpc":"2.0","result":{"spectrumSchedules":[{"stopTime":"2000-01-01T00:00:00Z"}]},"id":3}`,
		`{"jsonrpc":"2.0","result":{"truncated`,
		`{"jsonrpc":"2.0","result":12345,"id":4}`,
		`null`,
		"\xff\xfe",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		var out AvailSpectrumResp
		err := decodeRPCResponse(MethodGetSpectrum, body, &out)
		if err == nil {
			// A successful parse must yield a response whose Channels
			// flattening does not panic either.
			_ = out.Channels()
			return
		}
		switch err.Class {
		case Transient, Fatal, RegulatoryDeny:
		default:
			t.Fatalf("unclassified parse error %v for %q", err, body)
		}
		if err.Error() == "" {
			t.Fatalf("empty error string for %q", body)
		}
	})
}

// FuzzServerRobustness throws arbitrary bodies at the PAWS endpoint:
// the server must never panic and must always answer with either an
// HTTP error or a well-formed JSON-RPC envelope.
func FuzzServerRobustness(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"jsonrpc":"2.0"}`,
		`{"jsonrpc":"2.0","method":"spectrum.paws.init","params":{},"id":1}`,
		`{"jsonrpc":"2.0","method":"spectrum.paws.getSpectrum","params":{"deviceDesc":{"serialNumber":"x"},"location":{"latitude":52.2,"longitude":0.12}},"id":2}`,
		`{"jsonrpc":"1.0","method":"spectrum.paws.init","params":{},"id":3}`,
		`{"jsonrpc":"2.0","method":"bogus","params":null,"id":4}`,
		`{"jsonrpc":"2.0","method":"spectrum.paws.notifySpectrumUse","params":{"deviceDesc":{"serialNumber":"x"},"spectra":[{"channel":99}]},"id":5}`,
		`[1,2,3]`,
		`{"jsonrpc":"2.0","method":"spectrum.paws.init","params":"not-an-object","id":6}`,
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	reg := spectrum.NewRegistry(spectrum.EU)
	srv := NewServer(reg)
	srv.Now = func() time.Time { return time.Date(2017, 12, 12, 9, 0, 0, 0, time.UTC) }
	hs := httptest.NewServer(srv)
	f.Cleanup(hs.Close)

	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := http.Post(hs.URL, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("transport error: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return // HTTP-level rejection is fine
		}
		var rr struct {
			JSONRPC string          `json:"jsonrpc"`
			Result  json.RawMessage `json:"result"`
			Error   *RPCError       `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatalf("non-JSON 200 response for body %q: %v", body, err)
		}
		if rr.JSONRPC != "2.0" {
			t.Fatalf("response missing jsonrpc version for body %q", body)
		}
		if rr.Error == nil && rr.Result == nil {
			t.Fatalf("response carries neither result nor error for body %q", body)
		}
	})
}
