// Package paws implements the Protocol to Access White-Space databases
// (PAWS, RFC 7545) subset that CellFi's channel-selection component
// uses: the INIT handshake, AVAIL_SPECTRUM queries and SPECTRUM_USE
// notifications, carried as JSON-RPC 2.0 over HTTP.
//
// The server side wraps a spectrum.Registry (the incumbent database);
// the client side is what a CellFi access point embeds. Both accept an
// injectable clock so simulations can drive virtual time through the
// real wire protocol.
package paws

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/spectrum"
)

// JSON-RPC method names defined by RFC 7545.
const (
	MethodInit        = "spectrum.paws.init"
	MethodGetSpectrum = "spectrum.paws.getSpectrum"
	MethodNotifyUse   = "spectrum.paws.notifySpectrumUse"
	MethodRegister    = "spectrum.paws.register"
)

// PAWS error codes (RFC 7545 Table 1, subset).
const (
	ErrCodeVersion         = -101
	ErrCodeUnsupported     = -102
	ErrCodeOutsideCoverage = -104
	ErrCodeMissing         = -201
	ErrCodeInvalidValue    = -202
	ErrCodeNotRegistered   = -302
)

// rpcRequest is the JSON-RPC 2.0 envelope.
type rpcRequest struct {
	JSONRPC string          `json:"jsonrpc"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params"`
	ID      int64           `json:"id"`
}

// RPCRequest builds a marshal-ready JSON-RPC 2.0 request envelope for
// the given method. Load generators use it to pre-marshal request
// bodies once and replay them; the Client builds its own envelopes.
func RPCRequest(method string, params json.RawMessage, id int64) any {
	return rpcRequest{JSONRPC: "2.0", Method: method, Params: params, ID: id}
}

type rpcResponse struct {
	JSONRPC string          `json:"jsonrpc"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   *RPCError       `json:"error,omitempty"`
	ID      int64           `json:"id"`
}

// RPCError is a JSON-RPC / PAWS error.
type RPCError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *RPCError) Error() string {
	return fmt.Sprintf("paws: error %d: %s", e.Code, e.Message)
}

// DeviceDescriptor identifies a white-space device (RFC 7545 5.2).
type DeviceDescriptor struct {
	SerialNumber   string `json:"serialNumber"`
	ManufacturerID string `json:"manufacturerId,omitempty"`
	ModelID        string `json:"modelId,omitempty"`
	// DeviceType is "FIXED" or "MODE_1"/"MODE_2" per ETSI/FCC rules.
	DeviceType string   `json:"etsiEnDeviceType,omitempty"`
	RulesetIDs []string `json:"rulesetIds,omitempty"`
}

// GeoLocation is a WGS84 point (RFC 7545 5.1). CellFi simulations work
// in projected metres; ToGeo/FromGeo convert against a reference origin.
type GeoLocation struct {
	Latitude  float64 `json:"latitude"`
	Longitude float64 `json:"longitude"`
	// UncertaintyM is the location uncertainty in metres; mobile
	// clients served under the AP's generic parameters use the cell
	// radius here (Section 4.2).
	UncertaintyM float64 `json:"uncertainty,omitempty"`
}

// Origin anchors the simulation's metre grid on the globe. The default
// is Cambridge, UK — the paper's deployment area.
var Origin = GeoLocation{Latitude: 52.2053, Longitude: 0.1218}

const metersPerDegLat = 111320.0

// ToGeo converts a simulation point in metres to a GeoLocation.
func ToGeo(p geo.Point) GeoLocation {
	lat := Origin.Latitude + p.Y/metersPerDegLat
	lon := Origin.Longitude + p.X/(metersPerDegLat*math.Cos(Origin.Latitude*math.Pi/180))
	return GeoLocation{Latitude: lat, Longitude: lon}
}

// FromGeo converts a GeoLocation back to simulation metres.
func FromGeo(g GeoLocation) geo.Point {
	y := (g.Latitude - Origin.Latitude) * metersPerDegLat
	x := (g.Longitude - Origin.Longitude) * metersPerDegLat * math.Cos(Origin.Latitude*math.Pi/180)
	return geo.Point{X: x, Y: y}
}

// InitReq is the INIT_REQ message.
type InitReq struct {
	DeviceDesc DeviceDescriptor `json:"deviceDesc"`
	Location   GeoLocation      `json:"location"`
}

// InitResp is the INIT_RESP message.
type InitResp struct {
	RulesetInfos []RulesetInfo `json:"rulesetInfos"`
}

// RulesetInfo describes the regulatory ruleset the database enforces.
type RulesetInfo struct {
	Authority string `json:"authority"`
	RulesetID string `json:"rulesetId"`
	// MaxLocationChangeM: device must re-query after moving this far.
	MaxLocationChangeM float64 `json:"maxLocationChange"`
	// MaxPollingSecs: maximum seconds between availability re-checks.
	MaxPollingSecs int `json:"maxPollingSecs"`
}

// RegisterReq registers a fixed device (required before getSpectrum for
// FIXED devices under FCC rules).
type RegisterReq struct {
	DeviceDesc DeviceDescriptor `json:"deviceDesc"`
	Location   GeoLocation      `json:"location"`
	Owner      string           `json:"deviceOwner,omitempty"`
}

// RegisterResp acknowledges registration.
type RegisterResp struct {
	RulesetInfos []RulesetInfo `json:"rulesetInfos"`
}

// AvailSpectrumReq is the AVAIL_SPECTRUM_REQ message.
type AvailSpectrumReq struct {
	DeviceDesc DeviceDescriptor `json:"deviceDesc"`
	Location   GeoLocation      `json:"location"`
	// AntennaHeightM is the height above ground of the transmit
	// antenna (the paper's rooftop cells sit at 15 m).
	AntennaHeightM float64 `json:"antennaHeight,omitempty"`
}

// FrequencyRange is a [start, stop) band with a power cap.
type FrequencyRange struct {
	StartHz    float64 `json:"startHz"`
	StopHz     float64 `json:"stopHz"`
	MaxEIRPdBm float64 `json:"maxEirpDbm"`
	// Channel is the TV channel number (informative convenience the
	// real protocol derives from the frequency range).
	Channel int `json:"channel"`
}

// SpectrumSchedule binds frequency ranges to a validity window.
type SpectrumSchedule struct {
	StartTime time.Time        `json:"startTime"`
	StopTime  time.Time        `json:"stopTime"`
	Spectra   []FrequencyRange `json:"spectra"`
}

// AvailSpectrumResp is the AVAIL_SPECTRUM_RESP message.
type AvailSpectrumResp struct {
	Timestamp   time.Time          `json:"timestamp"`
	RulesetInfo RulesetInfo        `json:"rulesetInfo"`
	Schedules   []SpectrumSchedule `json:"spectrumSchedules"`
	// NeedsSpectrumReport asks the device to send SPECTRUM_USE_NOTIFY.
	NeedsSpectrumReport bool `json:"needsSpectrumReport"`
}

// Channels flattens the first schedule into per-channel info sorted by
// channel number, the form the channel selector consumes.
func (r *AvailSpectrumResp) Channels() []spectrum.ChannelInfo {
	if len(r.Schedules) == 0 {
		return nil
	}
	s := r.Schedules[0]
	out := make([]spectrum.ChannelInfo, 0, len(s.Spectra))
	for _, fr := range s.Spectra {
		out = append(out, spectrum.ChannelInfo{
			Channel:      fr.Channel,
			CenterFreqHz: (fr.StartHz + fr.StopHz) / 2,
			WidthHz:      fr.StopHz - fr.StartHz,
			MaxEIRPdBm:   fr.MaxEIRPdBm,
			Until:        s.StopTime,
		})
	}
	return out
}

// NotifyUseReq is the SPECTRUM_USE_NOTIFY message: the device reports
// which spectrum it is actually transmitting in.
type NotifyUseReq struct {
	DeviceDesc DeviceDescriptor `json:"deviceDesc"`
	Location   GeoLocation      `json:"location"`
	Spectra    []FrequencyRange `json:"spectra"`
}

// NotifyUseResp acknowledges a use notification.
type NotifyUseResp struct{}
