package paws

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cellfi/internal/pawsdb"
	"cellfi/internal/spectrum"
)

// DefaultUseLogCapacity bounds the spectrum-use notification log. The
// seed's unbounded slice grew forever under load; the log is now a
// ring that keeps the most recent notifications and counts what it
// dropped.
const DefaultUseLogCapacity = 4096

// Server is a PAWS white-space database server. It serves the RFC 7545
// JSON-RPC methods over HTTP on top of a pawsdb.DB (geospatial index,
// response cache, lease store, metrics); the request path is lock-free
// except for the registration map and the use-notification ring, so
// concurrent queries scale with cores instead of serializing on one
// mutex. It implements http.Handler.
type Server struct {
	db      *pawsdb.DB
	ruleset RulesetInfo
	// rulesetJSON is the ruleset premarshaled once at construction;
	// the getSpectrum fast path splices it into hand-assembled
	// responses instead of re-encoding it per request.
	rulesetJSON []byte
	// Now supplies the database's notion of time; simulations override
	// it to drive virtual time. Defaults to time.Now. Set before
	// serving traffic.
	Now func() time.Time
	// RequireRegistration rejects getSpectrum from unregistered FIXED
	// devices (FCC behaviour); off by default for ETSI mode. Set
	// before serving traffic.
	RequireRegistration bool

	// registered remembers fixed-device registrations by serial.
	regMu      sync.RWMutex
	registered map[string]RegisterReq

	// useLog is a bounded ring of spectrum-use notifications:
	// useLog[useHead] is the oldest of useCount entries.
	useMu      sync.Mutex
	useLog     []NotifyUseReq
	useHead    int
	useCount   int
	useCap     int
	useDropped atomic.Int64
}

// NewServer returns a PAWS server over the given incumbent registry,
// announcing an ETSI EN 301 598 ruleset (the one the paper's Nominet
// database implements). The registry is wrapped in a pawsdb.DB with
// default options; use NewServerWith to configure the database layer.
func NewServer(reg *spectrum.Registry) *Server {
	return NewServerWith(pawsdb.New(reg, pawsdb.Options{}))
}

// NewServerWith returns a PAWS server over an explicitly configured
// spectrum-database core.
func NewServerWith(db *pawsdb.DB) *Server {
	s := &Server{
		db: db,
		ruleset: RulesetInfo{
			Authority:          "gb",
			RulesetID:          "ETSI-EN-301-598-2014",
			MaxLocationChangeM: 50,
			MaxPollingSecs:     3600,
		},
		Now:        time.Now,
		registered: make(map[string]RegisterReq),
		useCap:     DefaultUseLogCapacity,
	}
	s.rulesetJSON, _ = json.Marshal(s.ruleset)
	return s
}

// Registry exposes the backing registry. Callers that mutate it while
// the server is live should do so under Lock/Unlock.
func (s *Server) Registry() *spectrum.Registry { return s.db.Registry() }

// DB exposes the spectrum-database core (index, cache, leases,
// metrics).
func (s *Server) DB() *pawsdb.DB { return s.db }

// Lock and Unlock guard external registry mutation (e.g. an experiment
// revoking a channel mid-run). Queries keep serving the pre-mutation
// snapshot until the mutation lands.
func (s *Server) Lock()   { s.db.Lock() }
func (s *Server) Unlock() { s.db.Unlock() }

// SetUseLogCapacity resizes the spectrum-use ring, keeping the newest
// entries. Capacity 0 disables retention entirely (every notification
// counts as dropped).
func (s *Server) SetUseLogCapacity(n int) {
	if n < 0 {
		n = 0
	}
	s.useMu.Lock()
	defer s.useMu.Unlock()
	cur := s.useSnapshotLocked()
	if len(cur) > n {
		s.useDropped.Add(int64(len(cur) - n))
		cur = cur[len(cur)-n:]
	}
	s.useCap = n
	s.useLog = cur
	s.useHead = 0
	s.useCount = len(cur)
}

// UseNotifications returns a copy of the retained spectrum-use
// reports, oldest first.
func (s *Server) UseNotifications() []NotifyUseReq {
	s.useMu.Lock()
	defer s.useMu.Unlock()
	return s.useSnapshotLocked()
}

// UseNotificationsDropped reports how many notifications the ring has
// discarded since the server started.
func (s *Server) UseNotificationsDropped() int64 { return s.useDropped.Load() }

func (s *Server) useSnapshotLocked() []NotifyUseReq {
	out := make([]NotifyUseReq, 0, s.useCount)
	for i := 0; i < s.useCount; i++ {
		out = append(out, s.useLog[(s.useHead+i)%len(s.useLog)])
	}
	return out
}

func (s *Server) recordUse(p NotifyUseReq) {
	s.useMu.Lock()
	defer s.useMu.Unlock()
	if s.useCap == 0 {
		s.useDropped.Add(1)
		return
	}
	if s.useCount < s.useCap {
		s.useLog = append(s.useLog, p)
		s.useCount++
		return
	}
	// Full: overwrite the oldest.
	s.useLog[s.useHead] = p
	s.useHead = (s.useHead + 1) % len(s.useLog)
	s.useDropped.Add(1)
}

// bufPool recycles the scratch buffers of the request hot path: the
// request-body read, the hand-assembled getSpectrum result, and the
// response envelope. At 50k+ queries/sec the per-request garbage these
// would otherwise generate dominates the profile.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// rawResult wraps a pooled, fully marshaled JSON result. Handlers on
// the hot path return it to tell ServeHTTP the encoding is already
// done; the buffer goes back to the pool after the envelope is
// written.
type rawResult struct{ buf *bytes.Buffer }

// ServeHTTP handles one JSON-RPC request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "paws: POST only", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	met := s.db.Metrics()
	bb := bufPool.Get().(*bytes.Buffer)
	bb.Reset()
	defer bufPool.Put(bb)
	if _, err := bb.ReadFrom(io.LimitReader(r.Body, 1<<20)); err != nil {
		http.Error(w, "paws: read error", http.StatusBadRequest)
		met.Errors.Add(1)
		return
	}
	var req rpcRequest
	if err := json.Unmarshal(bb.Bytes(), &req); err != nil {
		writeRPC(w, rpcResponse{JSONRPC: "2.0", Error: &RPCError{ErrCodeInvalidValue, "malformed JSON-RPC"}, ID: 0})
		met.Errors.Add(1)
		return
	}
	if req.JSONRPC != "2.0" {
		writeRPC(w, rpcResponse{JSONRPC: "2.0", Error: &RPCError{ErrCodeVersion, "jsonrpc must be 2.0"}, ID: req.ID})
		met.Errors.Add(1)
		return
	}

	result, rpcErr := s.dispatch(req.Method, req.Params)

	resp := rpcResponse{JSONRPC: "2.0", ID: req.ID}
	var recycle *bytes.Buffer
	switch {
	case rpcErr != nil:
		resp.Error = rpcErr
		met.Errors.Add(1)
	default:
		if rr, ok := result.(rawResult); ok {
			resp.Result = rr.buf.Bytes()
			recycle = rr.buf
		} else if raw, err := json.Marshal(result); err != nil {
			resp.Error = &RPCError{ErrCodeInvalidValue, "encode failure"}
		} else {
			resp.Result = raw
		}
	}
	writeRPC(w, resp)
	if recycle != nil {
		bufPool.Put(recycle)
	}
	met.Latency.Observe(time.Since(start))
}

// writeRPC writes the JSON-RPC envelope. Success envelopes are
// assembled by hand from parts that are already compact JSON — the
// bytes are identical to json.Encoder output (which would re-validate
// and re-compact the embedded result on every response), without the
// second pass over the body. Error envelopes take the encoder path so
// message escaping stays exactly the stdlib's.
func writeRPC(w http.ResponseWriter, resp rpcResponse) {
	w.Header().Set("Content-Type", "application/json")
	if resp.Error == nil && resp.Result != nil && resp.JSONRPC == "2.0" {
		eb := bufPool.Get().(*bytes.Buffer)
		eb.Reset()
		eb.WriteString(`{"jsonrpc":"2.0","result":`)
		eb.Write(resp.Result)
		eb.WriteString(`,"id":`)
		eb.Write(strconv.AppendInt(eb.AvailableBuffer(), resp.ID, 10))
		eb.WriteString("}\n")
		_, _ = w.Write(eb.Bytes())
		bufPool.Put(eb)
		return
	}
	_ = json.NewEncoder(w).Encode(resp)
}

func (s *Server) dispatch(method string, params json.RawMessage) (any, *RPCError) {
	switch method {
	case MethodInit:
		var p InitReq
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, &RPCError{ErrCodeInvalidValue, "bad INIT_REQ"}
		}
		return s.handleInit(p)
	case MethodRegister:
		var p RegisterReq
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, &RPCError{ErrCodeInvalidValue, "bad REGISTRATION_REQ"}
		}
		return s.handleRegister(p)
	case MethodGetSpectrum:
		var p AvailSpectrumReq
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, &RPCError{ErrCodeInvalidValue, "bad AVAIL_SPECTRUM_REQ"}
		}
		return s.handleGetSpectrum(p)
	case MethodNotifyUse:
		var p NotifyUseReq
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, &RPCError{ErrCodeInvalidValue, "bad SPECTRUM_USE_NOTIFY"}
		}
		return s.handleNotifyUse(p)
	default:
		return nil, &RPCError{ErrCodeUnsupported, fmt.Sprintf("unsupported method %q", method)}
	}
}

func (s *Server) handleInit(p InitReq) (any, *RPCError) {
	if p.DeviceDesc.SerialNumber == "" {
		return nil, &RPCError{ErrCodeMissing, "deviceDesc.serialNumber required"}
	}
	return InitResp{RulesetInfos: []RulesetInfo{s.ruleset}}, nil
}

func (s *Server) handleRegister(p RegisterReq) (any, *RPCError) {
	if p.DeviceDesc.SerialNumber == "" {
		return nil, &RPCError{ErrCodeMissing, "deviceDesc.serialNumber required"}
	}
	s.regMu.Lock()
	s.registered[p.DeviceDesc.SerialNumber] = p
	s.regMu.Unlock()
	return RegisterResp{RulesetInfos: []RulesetInfo{s.ruleset}}, nil
}

// availSpectrumRespRaw mirrors AvailSpectrumResp but carries the
// spectra as pre-marshaled JSON, so cache hits skip re-encoding the
// (up to 40-element) frequency-range list. The bytes come from
// json.Marshal of the exact []FrequencyRange the un-cached path would
// have embedded, so the wire output is byte-identical either way.
type availSpectrumRespRaw struct {
	Timestamp           time.Time             `json:"timestamp"`
	RulesetInfo         RulesetInfo           `json:"rulesetInfo"`
	Schedules           []spectrumScheduleRaw `json:"spectrumSchedules"`
	NeedsSpectrumReport bool                  `json:"needsSpectrumReport"`
}

type spectrumScheduleRaw struct {
	StartTime time.Time       `json:"startTime"`
	StopTime  time.Time       `json:"stopTime"`
	Spectra   json.RawMessage `json:"spectra"`
}

func (s *Server) handleGetSpectrum(p AvailSpectrumReq) (any, *RPCError) {
	if p.DeviceDesc.SerialNumber == "" {
		return nil, &RPCError{ErrCodeMissing, "deviceDesc.serialNumber required"}
	}
	if s.RequireRegistration && p.DeviceDesc.DeviceType == "FIXED" {
		s.regMu.RLock()
		_, ok := s.registered[p.DeviceDesc.SerialNumber]
		s.regMu.RUnlock()
		if !ok {
			return nil, &RPCError{ErrCodeNotRegistered, "fixed device must register first"}
		}
	}
	loc := FromGeo(p.Location)
	now := s.Now()
	q := s.db.Query(loc, p.DeviceDesc.DeviceType, s.ruleset.RulesetID, now)

	// Validity window: until the earliest lease expiry in the answer
	// (they are uniform today, but keep the min for safety).
	stop := now.Add(s.db.Registry().LeaseDuration)
	for _, ci := range q.Avail {
		if ci.Until.Before(stop) {
			stop = ci.Until
		}
	}

	// Record the grant in the lease store: renewal when the device
	// already holds a live lease, fresh grant otherwise.
	if len(q.Avail) > 0 {
		s.db.Leases().Acquire(p.DeviceDesc.SerialNumber, p.DeviceDesc.DeviceType, q.Cell, stop, now)
	}

	// Spectra bytes are a pure function of the blocked mask, so the
	// rendering cache is keyed on the mask rather than the cache entry:
	// boundary cells (which never get an entry) still reuse renderings,
	// and distinct cells with the same availability share one.
	var raw json.RawMessage
	slot := q.Spectra
	if slot != nil {
		if v := slot.Load(); v != nil {
			raw = v.(json.RawMessage)
		}
	}
	if raw == nil {
		spectra := make([]FrequencyRange, 0, len(q.Avail))
		for _, ci := range q.Avail {
			spectra = append(spectra, FrequencyRange{
				StartHz:    ci.CenterFreqHz - ci.WidthHz/2,
				StopHz:     ci.CenterFreqHz + ci.WidthHz/2,
				MaxEIRPdBm: ci.MaxEIRPdBm,
				Channel:    ci.Channel,
			})
		}
		b, err := json.Marshal(spectra)
		if err != nil {
			return nil, &RPCError{ErrCodeInvalidValue, "encode failure"}
		}
		raw = b
		if slot != nil {
			slot.Store(raw)
		}
	}

	// Assemble the AVAIL_SPECTRUM_RESP by hand, splicing in the
	// premarshaled ruleset and spectra. The layout mirrors
	// availSpectrumRespRaw field for field, so the bytes are identical
	// to json.Marshal of that struct — without reflecting over it and
	// re-compacting the embedded raw segments on every request.
	rb := bufPool.Get().(*bytes.Buffer)
	rb.Reset()
	rb.WriteString(`{"timestamp":`)
	writeTimeJSON(rb, now)
	rb.WriteString(`,"rulesetInfo":`)
	rb.Write(s.rulesetJSON)
	rb.WriteString(`,"spectrumSchedules":[{"startTime":`)
	writeTimeJSON(rb, now)
	rb.WriteString(`,"stopTime":`)
	writeTimeJSON(rb, stop)
	rb.WriteString(`,"spectra":`)
	rb.Write(raw)
	rb.WriteString(`}],"needsSpectrumReport":true}`)
	return rawResult{buf: rb}, nil
}

// writeTimeJSON appends t exactly as encoding/json marshals time.Time:
// a quoted RFC 3339 timestamp with nanoseconds trimmed.
func writeTimeJSON(b *bytes.Buffer, t time.Time) {
	b.WriteByte('"')
	b.Write(t.AppendFormat(b.AvailableBuffer(), time.RFC3339Nano))
	b.WriteByte('"')
}

func (s *Server) handleNotifyUse(p NotifyUseReq) (any, *RPCError) {
	if p.DeviceDesc.SerialNumber == "" {
		return nil, &RPCError{ErrCodeMissing, "deviceDesc.serialNumber required"}
	}
	// Validate the claimed use against current availability: a
	// compliant device never reports spectrum it may not use.
	loc := FromGeo(p.Location)
	now := s.Now()
	met := s.db.Metrics()
	for _, fr := range p.Spectra {
		if !s.db.ChannelAvailable(fr.Channel, loc, now) {
			met.NotifyRejected.Add(1)
			return nil, &RPCError{ErrCodeInvalidValue,
				fmt.Sprintf("channel %d not available at reported location", fr.Channel)}
		}
	}
	met.NotifyOK.Add(1)
	s.recordUse(p)
	return NotifyUseResp{}, nil
}
