package paws

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"cellfi/internal/spectrum"
)

// Server is a PAWS white-space database server. It wraps a
// spectrum.Registry and serves the RFC 7545 JSON-RPC methods over HTTP.
// It implements http.Handler.
type Server struct {
	mu       sync.Mutex
	registry *spectrum.Registry
	ruleset  RulesetInfo
	// Now supplies the database's notion of time; simulations override
	// it to drive virtual time. Defaults to time.Now.
	Now func() time.Time
	// registered remembers fixed-device registrations by serial.
	registered map[string]RegisterReq
	// useLog records spectrum-use notifications for inspection.
	useLog []NotifyUseReq
	// RequireRegistration rejects getSpectrum from unregistered FIXED
	// devices (FCC behaviour); off by default for ETSI mode.
	RequireRegistration bool
}

// NewServer returns a PAWS server over the given incumbent registry,
// announcing an ETSI EN 301 598 ruleset (the one the paper's Nominet
// database implements).
func NewServer(reg *spectrum.Registry) *Server {
	return &Server{
		registry: reg,
		ruleset: RulesetInfo{
			Authority:          "gb",
			RulesetID:          "ETSI-EN-301-598-2014",
			MaxLocationChangeM: 50,
			MaxPollingSecs:     3600,
		},
		Now:        time.Now,
		registered: make(map[string]RegisterReq),
	}
}

// Registry exposes the backing registry. Callers that mutate it while
// the server is live should do so under Lock/Unlock.
func (s *Server) Registry() *spectrum.Registry { return s.registry }

// Lock and Unlock guard external registry mutation (e.g. an experiment
// revoking a channel mid-run).
func (s *Server) Lock()   { s.mu.Lock() }
func (s *Server) Unlock() { s.mu.Unlock() }

// UseNotifications returns a copy of the spectrum-use reports received.
func (s *Server) UseNotifications() []NotifyUseReq {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]NotifyUseReq, len(s.useLog))
	copy(out, s.useLog)
	return out
}

// ServeHTTP handles one JSON-RPC request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "paws: POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "paws: read error", http.StatusBadRequest)
		return
	}
	var req rpcRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeRPC(w, rpcResponse{JSONRPC: "2.0", Error: &RPCError{ErrCodeInvalidValue, "malformed JSON-RPC"}, ID: 0})
		return
	}
	if req.JSONRPC != "2.0" {
		writeRPC(w, rpcResponse{JSONRPC: "2.0", Error: &RPCError{ErrCodeVersion, "jsonrpc must be 2.0"}, ID: req.ID})
		return
	}

	s.mu.Lock()
	result, rpcErr := s.dispatch(req.Method, req.Params)
	s.mu.Unlock()

	resp := rpcResponse{JSONRPC: "2.0", ID: req.ID}
	if rpcErr != nil {
		resp.Error = rpcErr
	} else {
		raw, err := json.Marshal(result)
		if err != nil {
			resp.Error = &RPCError{ErrCodeInvalidValue, "encode failure"}
		} else {
			resp.Result = raw
		}
	}
	writeRPC(w, resp)
}

func writeRPC(w http.ResponseWriter, resp rpcResponse) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (s *Server) dispatch(method string, params json.RawMessage) (any, *RPCError) {
	switch method {
	case MethodInit:
		var p InitReq
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, &RPCError{ErrCodeInvalidValue, "bad INIT_REQ"}
		}
		return s.handleInit(p)
	case MethodRegister:
		var p RegisterReq
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, &RPCError{ErrCodeInvalidValue, "bad REGISTRATION_REQ"}
		}
		return s.handleRegister(p)
	case MethodGetSpectrum:
		var p AvailSpectrumReq
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, &RPCError{ErrCodeInvalidValue, "bad AVAIL_SPECTRUM_REQ"}
		}
		return s.handleGetSpectrum(p)
	case MethodNotifyUse:
		var p NotifyUseReq
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, &RPCError{ErrCodeInvalidValue, "bad SPECTRUM_USE_NOTIFY"}
		}
		return s.handleNotifyUse(p)
	default:
		return nil, &RPCError{ErrCodeUnsupported, fmt.Sprintf("unsupported method %q", method)}
	}
}

func (s *Server) handleInit(p InitReq) (any, *RPCError) {
	if p.DeviceDesc.SerialNumber == "" {
		return nil, &RPCError{ErrCodeMissing, "deviceDesc.serialNumber required"}
	}
	return InitResp{RulesetInfos: []RulesetInfo{s.ruleset}}, nil
}

func (s *Server) handleRegister(p RegisterReq) (any, *RPCError) {
	if p.DeviceDesc.SerialNumber == "" {
		return nil, &RPCError{ErrCodeMissing, "deviceDesc.serialNumber required"}
	}
	s.registered[p.DeviceDesc.SerialNumber] = p
	return RegisterResp{RulesetInfos: []RulesetInfo{s.ruleset}}, nil
}

func (s *Server) handleGetSpectrum(p AvailSpectrumReq) (any, *RPCError) {
	if p.DeviceDesc.SerialNumber == "" {
		return nil, &RPCError{ErrCodeMissing, "deviceDesc.serialNumber required"}
	}
	if s.RequireRegistration && p.DeviceDesc.DeviceType == "FIXED" {
		if _, ok := s.registered[p.DeviceDesc.SerialNumber]; !ok {
			return nil, &RPCError{ErrCodeNotRegistered, "fixed device must register first"}
		}
	}
	loc := FromGeo(p.Location)
	now := s.Now()
	avail := s.registry.AvailableAt(loc, now)

	// Validity window: until the earliest lease expiry in the answer
	// (they are uniform today, but keep the min for safety).
	stop := now.Add(s.registry.LeaseDuration)
	for _, ci := range avail {
		if ci.Until.Before(stop) {
			stop = ci.Until
		}
	}
	spectra := make([]FrequencyRange, 0, len(avail))
	for _, ci := range avail {
		spectra = append(spectra, FrequencyRange{
			StartHz:    ci.CenterFreqHz - ci.WidthHz/2,
			StopHz:     ci.CenterFreqHz + ci.WidthHz/2,
			MaxEIRPdBm: ci.MaxEIRPdBm,
			Channel:    ci.Channel,
		})
	}
	return AvailSpectrumResp{
		Timestamp:   now,
		RulesetInfo: s.ruleset,
		Schedules: []SpectrumSchedule{{
			StartTime: now,
			StopTime:  stop,
			Spectra:   spectra,
		}},
		NeedsSpectrumReport: true,
	}, nil
}

func (s *Server) handleNotifyUse(p NotifyUseReq) (any, *RPCError) {
	if p.DeviceDesc.SerialNumber == "" {
		return nil, &RPCError{ErrCodeMissing, "deviceDesc.serialNumber required"}
	}
	// Validate the claimed use against current availability: a
	// compliant device never reports spectrum it may not use.
	loc := FromGeo(p.Location)
	now := s.Now()
	for _, fr := range p.Spectra {
		if !s.registry.ChannelAvailable(fr.Channel, loc, now) {
			return nil, &RPCError{ErrCodeInvalidValue,
				fmt.Sprintf("channel %d not available at reported location", fr.Channel)}
		}
	}
	s.useLog = append(s.useLog, p)
	return NotifyUseResp{}, nil
}
