package paws

import (
	"time"
)

// RetryPolicy bounds how a Client retries transient failures:
// exponential backoff with jitter, capped per attempt and in attempt
// count. The zero value disables retries (single-shot), which keeps
// existing callers' timing behaviour unchanged. RetryPolicy is pure
// configuration and may be copied freely; the jitter RNG lives on the
// Client.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first;
	// values < 2 mean single-shot.
	MaxAttempts int
	// BaseDelay is the first backoff step (default 100ms when
	// retries are enabled).
	BaseDelay time.Duration
	// MaxDelay caps any single backoff step (default 5s).
	MaxDelay time.Duration
	// Jitter is the fraction of each step drawn uniformly at random:
	// delay = step * (1 - Jitter + Jitter*U[0,1)). 0 means
	// deterministic full steps; 1 means full jitter. Values outside
	// [0,1] are clamped.
	Jitter float64
	// Seed makes the jitter stream reproducible. 0 seeds from 1 (a
	// fixed default: chaos tests demand byte-determinism, and an AP
	// gains nothing from nondeterministic jitter).
	Seed int64
	// Sleep is the wait primitive; nil means time.Sleep. Virtual-time
	// tests substitute a clock advance.
	Sleep func(time.Duration)
}

// DefaultRetry is the policy cmd/cellfi-ap runs with: four attempts
// spanning roughly a second of backoff — small against the vacate
// deadline, large against a momentary database hiccup.
func DefaultRetry(seed int64) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    5 * time.Second,
		Jitter:      0.5,
		Seed:        seed,
	}
}

// enabled reports whether the policy retries at all.
func (p RetryPolicy) enabled() bool { return p.MaxAttempts >= 2 }

// backoff returns the wait before the next try given the 1-based
// attempt number that just failed and a uniform draw u in [0,1).
func (p RetryPolicy) backoff(attempt int, u float64) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 5 * time.Second
	}
	step := base << uint(attempt-1)
	if step <= 0 || step > max { // <= 0 catches shift overflow
		step = max
	}
	j := p.Jitter
	if j < 0 {
		j = 0
	}
	if j > 1 {
		j = 1
	}
	if j == 0 {
		return step
	}
	return time.Duration(float64(step) * (1 - j + j*u))
}

// sleep waits for d via the configured primitive.
func (p RetryPolicy) sleep(d time.Duration) {
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}
