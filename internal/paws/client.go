package paws

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"cellfi/internal/geo"
)

// defaultHTTPClient is the transport used when Client.HTTPClient is
// nil. Unlike http.DefaultClient it carries a timeout, so a stalled
// database cannot wedge an access point's vacate path indefinitely —
// the ETSI 60-second budget (Section 6.2) leaves no room for hung
// connections. It is also immune to other packages mutating the
// global http.DefaultClient.
var defaultHTTPClient = &http.Client{Timeout: 10 * time.Second}

// Client is the device-side PAWS implementation a CellFi access point
// embeds. It issues JSON-RPC calls against a database URL.
//
// A single Client manages the access point and all its mobile clients:
// per Section 4.2 of the paper, mobile devices use the AP's generic
// location parameters, so only the AP ever queries the database.
type Client struct {
	// URL is the database endpoint.
	URL string
	// HTTPClient overrides the transport. When nil, an owned client
	// with a 10-second timeout is used (never http.DefaultClient).
	HTTPClient *http.Client
	// Device identifies this access point.
	Device DeviceDescriptor

	nextID int64
}

// NewClient returns a client for the given database URL and device
// serial number, declaring a FIXED (mast-mounted) device type.
func NewClient(url, serial string) *Client {
	return &Client{
		URL: url,
		Device: DeviceDescriptor{
			SerialNumber:   serial,
			ManufacturerID: "cellfi",
			ModelID:        "ap-e40",
			DeviceType:     "FIXED",
			RulesetIDs:     []string{"ETSI-EN-301-598-2014"},
		},
	}
}

func (c *Client) call(method string, params, result any) error {
	raw, err := json.Marshal(params)
	if err != nil {
		return fmt.Errorf("paws: encode params: %w", err)
	}
	req := rpcRequest{
		JSONRPC: "2.0",
		Method:  method,
		Params:  raw,
		ID:      atomic.AddInt64(&c.nextID, 1),
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("paws: encode request: %w", err)
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = defaultHTTPClient
	}
	httpResp, err := hc.Post(c.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("paws: %s: %w", method, err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return fmt.Errorf("paws: %s: HTTP %d", method, httpResp.StatusCode)
	}
	var resp rpcResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return fmt.Errorf("paws: decode response: %w", err)
	}
	if resp.Error != nil {
		return resp.Error
	}
	if result != nil {
		if err := json.Unmarshal(resp.Result, result); err != nil {
			return fmt.Errorf("paws: decode result: %w", err)
		}
	}
	return nil
}

// Init performs the INIT handshake and returns the database ruleset.
func (c *Client) Init(location geo.Point) (InitResp, error) {
	var out InitResp
	err := c.call(MethodInit, InitReq{DeviceDesc: c.Device, Location: ToGeo(location)}, &out)
	return out, err
}

// Register registers this fixed device with the database.
func (c *Client) Register(location geo.Point, owner string) (RegisterResp, error) {
	var out RegisterResp
	err := c.call(MethodRegister, RegisterReq{
		DeviceDesc: c.Device, Location: ToGeo(location), Owner: owner,
	}, &out)
	return out, err
}

// GetSpectrum queries available spectrum at the given location and
// antenna height.
func (c *Client) GetSpectrum(location geo.Point, antennaHeightM float64) (AvailSpectrumResp, error) {
	var out AvailSpectrumResp
	err := c.call(MethodGetSpectrum, AvailSpectrumReq{
		DeviceDesc:     c.Device,
		Location:       ToGeo(location),
		AntennaHeightM: antennaHeightM,
	}, &out)
	return out, err
}

// NotifyUse reports the spectrum this device is transmitting in.
func (c *Client) NotifyUse(location geo.Point, spectra []FrequencyRange) error {
	return c.call(MethodNotifyUse, NotifyUseReq{
		DeviceDesc: c.Device, Location: ToGeo(location), Spectra: spectra,
	}, &NotifyUseResp{})
}
