package paws

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"mime"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/trace"
)

// methodCode maps a JSON-RPC method name to its trace encoding.
func methodCode(method string) int64 {
	switch method {
	case MethodInit:
		return trace.PAWSMethodInit
	case MethodGetSpectrum:
		return trace.PAWSMethodGetSpectrum
	case MethodNotifyUse:
		return trace.PAWSMethodNotify
	default:
		return trace.PAWSMethodOther
	}
}

// defaultHTTPClient is the transport used when Client.HTTPClient is
// nil. Unlike http.DefaultClient it carries a timeout, so a stalled
// database cannot wedge an access point's vacate path indefinitely —
// the ETSI 60-second budget (Section 6.2) leaves no room for hung
// connections. It is also immune to other packages mutating the
// global http.DefaultClient.
var defaultHTTPClient = &http.Client{Timeout: 10 * time.Second}

// maxResponseBytes caps how much of a database response the client
// will buffer. A misbehaving (or malicious) database streaming an
// unbounded body must not OOM an access point; no legitimate PAWS
// answer approaches a mebibyte.
const maxResponseBytes = 1 << 20

// Client is the device-side PAWS implementation a CellFi access point
// embeds. It issues JSON-RPC calls against a database URL.
//
// A single Client manages the access point and all its mobile clients:
// per Section 4.2 of the paper, mobile devices use the AP's generic
// location parameters, so only the AP ever queries the database.
//
// Every call failure is a *paws.Error carrying an ErrorClass, and with
// Retry configured the client absorbs Transient failures behind
// bounded exponential backoff before surfacing one.
type Client struct {
	// URL is the database endpoint.
	URL string
	// Endpoints, when non-empty, is an ordered endpoint list — the
	// primary first, replicas after — and overrides URL. The client
	// pins the first endpoint until FailoverAfter consecutive
	// Transient failures, then advances to the next (wrapping), and
	// probes back toward the primary after the active replica proves
	// healthy (see PrimaryProbeAfter). Non-transient answers — success,
	// regulatory denials, fatal RPC errors — count as healthy: the
	// database answered, the content is someone else's problem.
	Endpoints []string
	// FailoverAfter is the consecutive-Transient-failure threshold
	// that triggers failover; zero means 1 (the ETSI vacate budget is
	// too tight to burn it re-asking a dead primary).
	FailoverAfter int
	// PrimaryProbeAfter is how many consecutive successes on a
	// non-primary endpoint earn one probe of the primary; zero
	// means 8. A failed probe just stays on the replica.
	PrimaryProbeAfter int
	// HTTPClient overrides the transport. When nil, an owned client
	// with a 10-second timeout is used (never http.DefaultClient).
	HTTPClient *http.Client
	// Device identifies this access point.
	Device DeviceDescriptor
	// Retry bounds in-call retries of Transient failures. The zero
	// value is single-shot.
	Retry RetryPolicy
	// CallTimeout is a per-attempt deadline applied via context; zero
	// falls back to the HTTP client's own timeout.
	CallTimeout time.Duration
	// Trace, when non-nil, receives a paws-query record per completed
	// call (after in-call retries); TraceAP tags the owning access
	// point. TraceNow supplies record timestamps — inject a simulated
	// clock to keep trace streams deterministic; nil uses time.Now.
	Trace    trace.Recorder
	TraceAP  int32
	TraceNow func() time.Time

	nextID int64

	retryMu  sync.Mutex
	retryRNG *rand.Rand

	epMu      sync.Mutex
	epIdx     int
	epFails   int
	epOK      int
	failovers uint64
}

// failoverAfter / probeAfter apply the documented zero-value defaults.
func (c *Client) failoverAfter() int {
	if c.FailoverAfter > 0 {
		return c.FailoverAfter
	}
	return 1
}

func (c *Client) probeAfter() int {
	if c.PrimaryProbeAfter > 0 {
		return c.PrimaryProbeAfter
	}
	return 8
}

// pickEndpoint chooses the URL and endpoint index for one attempt:
// the active endpoint, or the primary when the active replica has
// earned a health probe.
func (c *Client) pickEndpoint() (string, int) {
	if len(c.Endpoints) == 0 {
		return c.URL, 0
	}
	c.epMu.Lock()
	defer c.epMu.Unlock()
	idx := c.epIdx
	if idx != 0 && c.epOK >= c.probeAfter() {
		c.epOK = 0
		idx = 0 // spend the earned probe on the primary
	}
	return c.Endpoints[idx], idx
}

// endpointResult feeds an attempt's outcome back into the failover
// state machine. transient means the endpoint itself failed (network,
// 5xx, torn body); anything the database answered counts as healthy.
func (c *Client) endpointResult(idx int, transient bool) {
	if len(c.Endpoints) == 0 {
		return
	}
	c.epMu.Lock()
	defer c.epMu.Unlock()
	switch {
	case !transient:
		if idx != c.epIdx {
			// Primary probe succeeded: fail back.
			c.epIdx = idx
		}
		c.epFails = 0
		if c.epIdx != 0 {
			c.epOK++
		}
	case idx != c.epIdx:
		// Failed primary probe; stay on the replica (the probe budget
		// was already spent in pickEndpoint).
	default:
		c.epFails++
		if c.epFails >= c.failoverAfter() {
			c.epIdx = (c.epIdx + 1) % len(c.Endpoints)
			c.epFails, c.epOK = 0, 0
			c.failovers++
		}
	}
}

// ActiveEndpoint returns the endpoint the next call will use (modulo
// a pending primary probe); URL when no endpoint list is configured.
func (c *Client) ActiveEndpoint() string {
	if len(c.Endpoints) == 0 {
		return c.URL
	}
	c.epMu.Lock()
	defer c.epMu.Unlock()
	return c.Endpoints[c.epIdx]
}

// Failovers returns how many times the client advanced to another
// endpoint after exhausting the failure threshold.
func (c *Client) Failovers() uint64 {
	c.epMu.Lock()
	defer c.epMu.Unlock()
	return c.failovers
}

// jitterU draws from the client's seeded jitter stream, creating it on
// first use from Retry.Seed.
func (c *Client) jitterU() float64 {
	c.retryMu.Lock()
	defer c.retryMu.Unlock()
	if c.retryRNG == nil {
		seed := c.Retry.Seed
		if seed == 0 {
			seed = 1
		}
		c.retryRNG = rand.New(rand.NewSource(seed))
	}
	return c.retryRNG.Float64()
}

// NewClient returns a client for the given database URL and device
// serial number, declaring a FIXED (mast-mounted) device type.
func NewClient(url, serial string) *Client {
	return &Client{
		URL: url,
		Device: DeviceDescriptor{
			SerialNumber:   serial,
			ManufacturerID: "cellfi",
			ModelID:        "ap-e40",
			DeviceType:     "FIXED",
			RulesetIDs:     []string{"ETSI-EN-301-598-2014"},
		},
	}
}

// call runs one JSON-RPC method with the client's retry policy:
// Transient failures are retried up to Retry.MaxAttempts with
// exponential backoff and jitter; Fatal and RegulatoryDeny failures
// surface immediately.
func (c *Client) call(method string, params, result any) error {
	raw, err := json.Marshal(params)
	if err != nil {
		return &Error{Method: method, Class: Fatal, Attempts: 1,
			Err: fmt.Errorf("encode params: %w", err)}
	}
	attempts := 1
	if c.Retry.enabled() {
		attempts = c.Retry.MaxAttempts
	}
	var last *Error
	lastEp := 0
	for attempt := 1; attempt <= attempts; attempt++ {
		url, epIdx := c.pickEndpoint()
		lastEp = epIdx
		last = c.callOnce(method, url, raw, result)
		c.endpointResult(epIdx, last != nil && last.Class == Transient)
		if last == nil {
			c.traceQuery(method, -1, attempt, epIdx)
			return nil
		}
		last.Attempts = attempt
		if last.Class != Transient || attempt == attempts {
			break
		}
		c.Retry.sleep(c.Retry.backoff(attempt, c.jitterU()))
	}
	c.traceQuery(method, int64(last.Class), last.Attempts, lastEp)
	return last
}

// traceQuery emits one paws-query record for a completed call; class
// is -1 on success, the ErrorClass otherwise. With an endpoint list
// configured the record grows a fourth arg: the endpoint index that
// served the final attempt (0 = primary).
func (c *Client) traceQuery(method string, class int64, attempts, endpoint int) {
	if c.Trace == nil {
		return
	}
	var t int64
	if c.TraceNow != nil {
		t = c.TraceNow().UnixNano()
	} else {
		t = time.Now().UnixNano()
	}
	rec := trace.Record{T: t, AP: c.TraceAP, Kind: trace.KindPAWSQuery,
		N: 3, Args: [trace.MaxArgs]int64{methodCode(method), class, int64(attempts)}}
	if len(c.Endpoints) > 0 {
		rec.N = 4
		rec.Args[3] = int64(endpoint)
	}
	c.Trace.Record(rec)
}

// callOnce performs a single HTTP exchange against url. It returns
// nil on success and a classified *Error otherwise.
func (c *Client) callOnce(method, url string, params json.RawMessage, result any) *Error {
	fail := func(class ErrorClass, err error) *Error {
		return &Error{Method: method, Class: class, Err: err}
	}
	req := rpcRequest{
		JSONRPC: "2.0",
		Method:  method,
		Params:  params,
		ID:      atomic.AddInt64(&c.nextID, 1),
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fail(Fatal, fmt.Errorf("encode request: %w", err))
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = defaultHTTPClient
	}
	ctx := context.Background()
	if c.CallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.CallTimeout)
		defer cancel()
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return fail(Fatal, fmt.Errorf("build request: %w", err))
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := hc.Do(httpReq)
	if err != nil {
		// Network-level failure: connection refused/reset, timeout.
		return fail(Transient, err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		class := Fatal
		if httpResp.StatusCode >= 500 {
			class = Transient
		}
		// Drain (bounded) so the connection can be reused.
		io.Copy(io.Discard, io.LimitReader(httpResp.Body, maxResponseBytes))
		return fail(class, fmt.Errorf("HTTP %d", httpResp.StatusCode))
	}
	if mt, _, err := mime.ParseMediaType(httpResp.Header.Get("Content-Type")); err != nil || mt != "application/json" {
		// A proxy error page or garbage endpoint; retryable because
		// intermediaries come and go.
		return fail(Transient, fmt.Errorf("non-JSON content type %q", httpResp.Header.Get("Content-Type")))
	}
	respBody, err := io.ReadAll(io.LimitReader(httpResp.Body, maxResponseBytes+1))
	if err != nil {
		return fail(Transient, fmt.Errorf("read response: %w", err))
	}
	if len(respBody) > maxResponseBytes {
		return fail(Transient, fmt.Errorf("response exceeds %d bytes", maxResponseBytes))
	}
	return decodeRPCResponse(method, respBody, result)
}

// decodeRPCResponse parses a JSON-RPC response body into result. It is
// the parsing surface FuzzParse exercises: arbitrary bytes must yield
// either a nil error or a classified *Error, never a panic.
func decodeRPCResponse(method string, body []byte, result any) *Error {
	var resp rpcResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		// Malformed or truncated JSON: classically a torn connection
		// or a mid-failover proxy — retryable.
		return &Error{Method: method, Class: Transient,
			Err: fmt.Errorf("decode response: %w", err)}
	}
	if resp.Error != nil {
		return &Error{Method: method, Class: classifyRPC(resp.Error), Err: resp.Error}
	}
	if result != nil {
		if err := json.Unmarshal(resp.Result, result); err != nil {
			return &Error{Method: method, Class: Transient,
				Err: fmt.Errorf("decode result: %w", err)}
		}
	}
	return nil
}

// Init performs the INIT handshake and returns the database ruleset.
func (c *Client) Init(location geo.Point) (InitResp, error) {
	var out InitResp
	err := c.call(MethodInit, InitReq{DeviceDesc: c.Device, Location: ToGeo(location)}, &out)
	return out, err
}

// Register registers this fixed device with the database.
func (c *Client) Register(location geo.Point, owner string) (RegisterResp, error) {
	var out RegisterResp
	err := c.call(MethodRegister, RegisterReq{
		DeviceDesc: c.Device, Location: ToGeo(location), Owner: owner,
	}, &out)
	return out, err
}

// GetSpectrum queries available spectrum at the given location and
// antenna height.
func (c *Client) GetSpectrum(location geo.Point, antennaHeightM float64) (AvailSpectrumResp, error) {
	var out AvailSpectrumResp
	err := c.call(MethodGetSpectrum, AvailSpectrumReq{
		DeviceDesc:     c.Device,
		Location:       ToGeo(location),
		AntennaHeightM: antennaHeightM,
	}, &out)
	return out, err
}

// NotifyUse reports the spectrum this device is transmitting in. An
// empty spectra list is the cessation report a vacating AP sends on
// shutdown.
func (c *Client) NotifyUse(location geo.Point, spectra []FrequencyRange) error {
	return c.call(MethodNotifyUse, NotifyUseReq{
		DeviceDesc: c.Device, Location: ToGeo(location), Spectra: spectra,
	}, &NotifyUseResp{})
}
