package paws

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"testing/quick"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/spectrum"
)

var t0 = time.Date(2017, 12, 12, 9, 0, 0, 0, time.UTC)

func newTestServer(t *testing.T, dom spectrum.Domain) (*Server, *httptest.Server, *Client) {
	t.Helper()
	reg := spectrum.NewRegistry(dom)
	srv := NewServer(reg)
	srv.Now = func() time.Time { return t0 }
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	c := NewClient(hs.URL, "AP-0001")
	return srv, hs, c
}

func TestGeoConversionRoundTrip(t *testing.T) {
	f := func(x, y float64) bool {
		p := geo.Point{X: math.Mod(x, 5e4), Y: math.Mod(y, 5e4)}
		q := FromGeo(ToGeo(p))
		return p.Dist(q) < 0.01 // centimetre accuracy over a 50 km grid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInitHandshake(t *testing.T) {
	_, _, c := newTestServer(t, spectrum.EU)
	resp, err := c.Init(geo.Point{X: 100, Y: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.RulesetInfos) != 1 {
		t.Fatalf("got %d rulesets, want 1", len(resp.RulesetInfos))
	}
	rs := resp.RulesetInfos[0]
	if rs.RulesetID != "ETSI-EN-301-598-2014" || rs.Authority != "gb" {
		t.Errorf("unexpected ruleset %+v", rs)
	}
	if rs.MaxPollingSecs <= 0 {
		t.Error("ruleset must bound the polling interval")
	}
}

func TestGetSpectrumEmptyRegistry(t *testing.T) {
	_, _, c := newTestServer(t, spectrum.EU)
	resp, err := c.GetSpectrum(geo.Point{X: 500, Y: 500}, 15)
	if err != nil {
		t.Fatal(err)
	}
	chans := resp.Channels()
	if len(chans) != 40 {
		t.Fatalf("got %d channels, want all 40 EU channels", len(chans))
	}
	for _, ci := range chans {
		if ci.WidthHz != 8e6 {
			t.Fatalf("channel %d width %g, want 8 MHz", ci.Channel, ci.WidthHz)
		}
		if ci.MaxEIRPdBm != 36 {
			t.Fatalf("channel %d cap %g dBm", ci.Channel, ci.MaxEIRPdBm)
		}
		if !ci.Until.After(t0) {
			t.Fatalf("channel %d lease not in the future", ci.Channel)
		}
	}
	if !resp.NeedsSpectrumReport {
		t.Error("server should request spectrum-use reports")
	}
}

func TestGetSpectrumRespectsIncumbents(t *testing.T) {
	srv, _, c := newTestServer(t, spectrum.EU)
	ap := geo.Point{X: 1000, Y: 1000}
	srv.Lock()
	err := srv.Registry().AddIncumbent(spectrum.Incumbent{
		Kind: spectrum.WirelessMic, Channel: 38,
		Location: ap, ProtectRadius: 3000, From: t0,
	})
	srv.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.GetSpectrum(ap, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, ci := range resp.Channels() {
		if ci.Channel == 38 {
			t.Fatal("protected channel 38 offered to secondary device")
		}
	}
	if got := len(resp.Channels()); got != 39 {
		t.Fatalf("got %d channels, want 39", got)
	}
}

func TestNotifyUse(t *testing.T) {
	srv, _, c := newTestServer(t, spectrum.EU)
	ap := geo.Point{X: 10, Y: 10}
	resp, err := c.GetSpectrum(ap, 15)
	if err != nil {
		t.Fatal(err)
	}
	use := resp.Schedules[0].Spectra[:1]
	if err := c.NotifyUse(ap, use); err != nil {
		t.Fatal(err)
	}
	log := srv.UseNotifications()
	if len(log) != 1 || log[0].Spectra[0].Channel != use[0].Channel {
		t.Fatalf("use log = %+v", log)
	}
}

func TestNotifyUseRejectsProtectedChannel(t *testing.T) {
	srv, _, c := newTestServer(t, spectrum.EU)
	ap := geo.Point{X: 10, Y: 10}
	srv.Lock()
	_ = srv.Registry().AddIncumbent(spectrum.Incumbent{
		Channel: 21, Location: ap, ProtectRadius: 1000, From: t0,
	})
	srv.Unlock()
	err := c.NotifyUse(ap, []FrequencyRange{{Channel: 21, StartHz: 470e6, StopHz: 478e6}})
	var rpcErr *RPCError
	if !errors.As(err, &rpcErr) || rpcErr.Code != ErrCodeInvalidValue {
		t.Fatalf("want INVALID_VALUE error, got %v", err)
	}
}

func TestRegistrationFlow(t *testing.T) {
	srv, _, c := newTestServer(t, spectrum.US)
	srv.RequireRegistration = true
	ap := geo.Point{X: 0, Y: 0}

	_, err := c.GetSpectrum(ap, 15)
	var rpcErr *RPCError
	if !errors.As(err, &rpcErr) || rpcErr.Code != ErrCodeNotRegistered {
		t.Fatalf("unregistered fixed device should be rejected, got %v", err)
	}
	if _, err := c.Register(ap, "Example Charity"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetSpectrum(ap, 15); err != nil {
		t.Fatalf("registered device rejected: %v", err)
	}
}

func TestServerRejectsMissingSerial(t *testing.T) {
	_, hs, _ := newTestServer(t, spectrum.EU)
	c := NewClient(hs.URL, "")
	_, err := c.Init(geo.Point{})
	var rpcErr *RPCError
	if !errors.As(err, &rpcErr) || rpcErr.Code != ErrCodeMissing {
		t.Fatalf("want MISSING error, got %v", err)
	}
}

func TestServerRejectsUnknownMethod(t *testing.T) {
	_, hs, _ := newTestServer(t, spectrum.EU)
	body, _ := json.Marshal(rpcRequest{JSONRPC: "2.0", Method: "spectrum.paws.bogus", Params: []byte("{}"), ID: 1})
	resp, err := http.Post(hs.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr rpcResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Error == nil || rr.Error.Code != ErrCodeUnsupported {
		t.Fatalf("want UNSUPPORTED, got %+v", rr.Error)
	}
}

func TestServerRejectsBadVersionAndMethodNotAllowed(t *testing.T) {
	_, hs, _ := newTestServer(t, spectrum.EU)
	body, _ := json.Marshal(rpcRequest{JSONRPC: "1.0", Method: MethodInit, Params: []byte("{}"), ID: 7})
	resp, err := http.Post(hs.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rr rpcResponse
	_ = json.NewDecoder(resp.Body).Decode(&rr)
	resp.Body.Close()
	if rr.Error == nil || rr.Error.Code != ErrCodeVersion || rr.ID != 7 {
		t.Fatalf("want VERSION error echoing id, got %+v", rr)
	}

	getResp, err := http.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET returned %d, want 405", getResp.StatusCode)
	}
}

// The Figure 6 interaction at protocol level: a channel in use is
// revoked in the database; the next availability answer omits it; after
// the incumbent's event, the channel returns.
func TestRevokeAndReacquireCycle(t *testing.T) {
	srv, _, c := newTestServer(t, spectrum.EU)
	ap := geo.Point{X: 0, Y: 0}
	now := t0
	srv.Now = func() time.Time { return now }

	resp, err := c.GetSpectrum(ap, 15)
	if err != nil {
		t.Fatal(err)
	}
	ch := resp.Channels()[0].Channel

	// Revoke: a wireless mic registers for 5 minutes (the paper's
	// experiment removes the channel from the DB for 5 min).
	srv.Lock()
	_ = srv.Registry().AddIncumbent(spectrum.Incumbent{
		Kind: spectrum.WirelessMic, Channel: ch, Location: ap,
		ProtectRadius: 2000, From: now, To: now.Add(5 * time.Minute),
	})
	srv.Unlock()

	resp, err = c.GetSpectrum(ap, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, ci := range resp.Channels() {
		if ci.Channel == ch {
			t.Fatal("revoked channel still offered")
		}
	}

	// 5 minutes later the channel is back.
	now = now.Add(5*time.Minute + time.Second)
	resp, err = c.GetSpectrum(ap, 15)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ci := range resp.Channels() {
		if ci.Channel == ch {
			found = true
		}
	}
	if !found {
		t.Fatal("channel not reoffered after incumbent event ended")
	}
}

func TestWireFormatIsJSONRPC(t *testing.T) {
	// The encoded request must carry the RFC 7545 envelope fields.
	c := NewClient("http://unused", "AP-1")
	raw, err := json.Marshal(rpcRequest{JSONRPC: "2.0", Method: MethodGetSpectrum, Params: []byte(`{}`), ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"jsonrpc", "method", "params", "id"} {
		if _, ok := m[k]; !ok {
			t.Errorf("envelope missing %q", k)
		}
	}
	_ = c
}

func TestChannelsEmptySchedules(t *testing.T) {
	var r AvailSpectrumResp
	if r.Channels() != nil {
		t.Error("no schedules should yield nil channels")
	}
}

func BenchmarkGetSpectrumRoundTrip(b *testing.B) {
	reg := spectrum.NewRegistry(spectrum.EU)
	srv := NewServer(reg)
	srv.Now = func() time.Time { return t0 }
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := NewClient(hs.URL, "AP-0001")
	p := geo.Point{X: 100, Y: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.GetSpectrum(p, 15); err != nil {
			b.Fatal(err)
		}
	}
}
