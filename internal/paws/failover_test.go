package paws

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/spectrum"
	"cellfi/internal/trace"
)

// failoverWorld stands up a primary and a replica database server
// over the same registry, each with an independent kill switch.
type failoverWorld struct {
	primary, replica         *httptest.Server
	primaryDown, replicaDown atomic.Bool
	primaryHits, replicaHits atomic.Int64
}

func newFailoverWorld(t *testing.T) *failoverWorld {
	t.Helper()
	reg := spectrum.NewRegistry(spectrum.EU)
	srv := NewServer(reg)
	w := &failoverWorld{}
	gate := func(down *atomic.Bool, hits *atomic.Int64) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			if down.Load() {
				http.Error(rw, "database offline", http.StatusServiceUnavailable)
				return
			}
			srv.ServeHTTP(rw, r)
		})
	}
	w.primary = httptest.NewServer(gate(&w.primaryDown, &w.primaryHits))
	w.replica = httptest.NewServer(gate(&w.replicaDown, &w.replicaHits))
	t.Cleanup(w.primary.Close)
	t.Cleanup(w.replica.Close)
	return w
}

func (w *failoverWorld) client() *Client {
	c := NewClient("", "fo-ap")
	c.Endpoints = []string{w.primary.URL, w.replica.URL}
	c.PrimaryProbeAfter = 3
	return c
}

func TestFailoverToReplicaAndBack(t *testing.T) {
	w := newFailoverWorld(t)
	c := w.client()
	loc := geo.Point{}

	if _, err := c.GetSpectrum(loc, 10); err != nil {
		t.Fatalf("healthy primary: %v", err)
	}
	if got := c.ActiveEndpoint(); got != w.primary.URL {
		t.Fatalf("active endpoint = %q, want primary", got)
	}

	// Kill the primary: the next call fails over (default threshold 1)
	// but still surfaces the transient error for that call.
	w.primaryDown.Store(true)
	if _, err := c.GetSpectrum(loc, 10); err == nil {
		t.Fatal("call during primary outage with single-shot retry should fail")
	}
	if got := c.ActiveEndpoint(); got != w.replica.URL {
		t.Fatalf("active endpoint after outage = %q, want replica", got)
	}
	if c.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", c.Failovers())
	}

	// Subsequent calls land on the replica and succeed; three in a row
	// earn a primary probe.
	for i := 0; i < 3; i++ {
		if _, err := c.GetSpectrum(loc, 10); err != nil {
			t.Fatalf("replica call %d: %v", i, err)
		}
	}
	replicaBefore := w.replicaHits.Load()
	primaryBefore := w.primaryHits.Load()

	// Primary recovers; the third consecutive replica success earns a
	// probe, which succeeds and fails back.
	w.primaryDown.Store(false)
	if _, err := c.GetSpectrum(loc, 10); err != nil {
		t.Fatalf("probe call: %v", err)
	}
	if w.primaryHits.Load() != primaryBefore+1 {
		t.Fatalf("probe did not reach primary (hits %d -> %d)", primaryBefore, w.primaryHits.Load())
	}
	if w.replicaHits.Load() != replicaBefore {
		t.Fatalf("probe also hit replica")
	}
	if got := c.ActiveEndpoint(); got != w.primary.URL {
		t.Fatalf("active endpoint after recovery = %q, want primary", got)
	}
	// Failing back is not a failover.
	if c.Failovers() != 1 {
		t.Fatalf("failovers after fail-back = %d, want 1", c.Failovers())
	}
}

func TestFailedPrimaryProbeStaysOnReplica(t *testing.T) {
	w := newFailoverWorld(t)
	c := w.client()
	loc := geo.Point{}

	w.primaryDown.Store(true)
	c.GetSpectrum(loc, 10) // transient failure; advances to the replica
	for i := 0; i < 3; i++ {
		if _, err := c.GetSpectrum(loc, 10); err != nil {
			t.Fatalf("replica call %d: %v", i, err)
		}
	}
	// The earned probe hits the (still dead) primary and that call
	// fails, but the client stays homed on the replica.
	if _, err := c.GetSpectrum(loc, 10); err == nil {
		t.Fatal("probe against dead primary should surface the failure")
	}
	if got := c.ActiveEndpoint(); got != w.replica.URL {
		t.Fatalf("active endpoint after failed probe = %q, want replica", got)
	}
	if _, err := c.GetSpectrum(loc, 10); err != nil {
		t.Fatalf("call after failed probe: %v", err)
	}
}

func TestRetryRidesThroughFailover(t *testing.T) {
	// With in-call retries enabled, a single GetSpectrum survives the
	// primary dying: attempt 1 fails on the primary, attempt 2 lands
	// on the replica.
	w := newFailoverWorld(t)
	c := w.client()
	c.Retry = RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}}
	ring := trace.NewRing(16)
	c.Trace = ring

	w.primaryDown.Store(true)
	if _, err := c.GetSpectrum(geo.Point{}, 10); err != nil {
		t.Fatalf("retrying call across failover: %v", err)
	}
	recs := ring.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("got %d trace records, want 1", len(recs))
	}
	r := recs[0]
	if r.Kind != trace.KindPAWSQuery || r.N != 4 {
		t.Fatalf("paws-query record = %v, want N=4 with endpoint arg", r)
	}
	if r.Args[1] != -1 || r.Args[2] != 2 || r.Args[3] != 1 {
		t.Fatalf("record args = %v, want success on attempt 2 via endpoint 1", r.Args)
	}
}

func TestSingleURLModeUnchanged(t *testing.T) {
	w := newFailoverWorld(t)
	c := NewClient(w.primary.URL, "fo-ap")
	ring := trace.NewRing(4)
	c.Trace = ring
	if _, err := c.GetSpectrum(geo.Point{}, 10); err != nil {
		t.Fatalf("single-URL call: %v", err)
	}
	if got := c.ActiveEndpoint(); got != w.primary.URL {
		t.Fatalf("ActiveEndpoint = %q, want URL", got)
	}
	if r := ring.Snapshot()[0]; r.N != 3 {
		t.Fatalf("single-URL paws-query N = %d, want 3 (no endpoint arg)", r.N)
	}
}
