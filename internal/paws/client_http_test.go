package paws

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/spectrum"
)

// The zero-value Client must not ride on http.DefaultClient: the
// owned default carries a timeout so a stalled database cannot hang
// the vacate path past the ETSI budget.
func TestDefaultHTTPClientHasTimeout(t *testing.T) {
	if defaultHTTPClient == http.DefaultClient {
		t.Fatal("paws default transport is http.DefaultClient")
	}
	if defaultHTTPClient.Timeout != 10*time.Second {
		t.Fatalf("default timeout = %v, want 10s", defaultHTTPClient.Timeout)
	}
	if http.DefaultClient.Timeout != 0 {
		t.Fatalf("http.DefaultClient was mutated (timeout %v)", http.DefaultClient.Timeout)
	}
}

func TestNilHTTPClientStillTalksToServer(t *testing.T) {
	srv := NewServer(spectrum.NewRegistry(spectrum.EU))
	hs := httptest.NewServer(srv)
	defer hs.Close()

	c := NewClient(hs.URL, "AP-TIMEOUT-TEST")
	if c.HTTPClient != nil {
		t.Fatal("NewClient should leave HTTPClient nil (owned default)")
	}
	if _, err := c.Init(geo.Point{X: 100, Y: 100}); err != nil {
		t.Fatalf("Init over the owned default client: %v", err)
	}
}
