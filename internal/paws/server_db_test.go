package paws

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/pawsdb"
	"cellfi/internal/spectrum"
)

func rpcCall(t *testing.T, srv *Server, method string, params any) rpcResponse {
	t.Helper()
	raw, err := json.Marshal(params)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(rpcRequest{JSONRPC: "2.0", Method: method, Params: raw, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/paws", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var resp rpcResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad RPC envelope: %v", err)
	}
	return resp
}

// TestUseLogRing: the spectrum-use log must stay bounded under load,
// keep the newest notifications in order, and count what it dropped.
func TestUseLogRing(t *testing.T) {
	srv := NewServer(spectrum.NewRegistry(spectrum.EU))
	srv.Now = func() time.Time { return time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC) }
	srv.SetUseLogCapacity(3)

	for i := 0; i < 5; i++ {
		resp := rpcCall(t, srv, MethodNotifyUse, NotifyUseReq{
			DeviceDesc: DeviceDescriptor{SerialNumber: fmt.Sprintf("AP-%d", i)},
			Location:   ToGeo(geo.Point{}),
			Spectra:    []FrequencyRange{{Channel: 21 + i}},
		})
		if resp.Error != nil {
			t.Fatalf("notify %d: %v", i, resp.Error)
		}
	}
	log := srv.UseNotifications()
	if len(log) != 3 {
		t.Fatalf("ring retained %d entries, want 3", len(log))
	}
	for i, want := range []string{"AP-2", "AP-3", "AP-4"} {
		if got := log[i].DeviceDesc.SerialNumber; got != want {
			t.Errorf("ring[%d] = %s, want %s (oldest-first order)", i, got, want)
		}
	}
	if d := srv.UseNotificationsDropped(); d != 2 {
		t.Errorf("dropped = %d, want 2", d)
	}
	// Shrinking discards oldest retained entries and counts them.
	srv.SetUseLogCapacity(1)
	log = srv.UseNotifications()
	if len(log) != 1 || log[0].DeviceDesc.SerialNumber != "AP-4" {
		t.Fatalf("after shrink: %+v", log)
	}
	if d := srv.UseNotificationsDropped(); d != 4 {
		t.Errorf("dropped after shrink = %d, want 4", d)
	}
}

// TestServerLeaseAndMetricsWiring: getSpectrum grants a lease keyed on
// the device serial, a re-query renews it, and the metrics counters
// see queries and cache traffic.
func TestServerLeaseAndMetricsWiring(t *testing.T) {
	reg := spectrum.NewRegistry(spectrum.EU)
	srv := NewServer(reg)
	now := time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC)
	srv.Now = func() time.Time { return now }

	ask := func(serial string) {
		t.Helper()
		resp := rpcCall(t, srv, MethodGetSpectrum, AvailSpectrumReq{
			DeviceDesc: DeviceDescriptor{SerialNumber: serial, DeviceType: "FIXED"},
			Location:   ToGeo(geo.Point{X: 100, Y: 100}),
		})
		if resp.Error != nil {
			t.Fatalf("getSpectrum: %v", resp.Error)
		}
	}
	ask("AP-A")
	ask("AP-B")
	ask("AP-A") // renewal

	db := srv.DB()
	if n := db.Leases().Active(now); n != 2 {
		t.Fatalf("active leases = %d, want 2", n)
	}
	m := db.Snapshot(now)
	if m.Queries != 3 || m.LeasesGranted != 2 || m.LeasesRenewed != 1 {
		t.Fatalf("metrics %+v: want 3 queries, 2 grants, 1 renewal", m)
	}
	if m.CacheHits < 1 {
		t.Fatalf("same-cell re-queries should hit the cache: %+v", m)
	}
	if m.LatencyCount != 3 || m.LatencyP99Ns <= 0 {
		t.Fatalf("latency histogram not wired: %+v", m)
	}
	// Leases expire with virtual time.
	now = now.Add(13 * time.Hour)
	if n := db.Leases().Active(now); n != 0 {
		t.Fatalf("leases survived past expiry: %d", n)
	}
}

// TestCachedResponseBytesIdentical: a cache-hit response must be
// byte-identical to the cold-path response for the same virtual time,
// including the pre-marshaled spectra fast path.
func TestCachedResponseBytesIdentical(t *testing.T) {
	mk := func(opts pawsdb.Options) *Server {
		reg := spectrum.NewRegistry(spectrum.EU)
		for ch := 25; ch <= 28; ch++ {
			if err := reg.AddIncumbent(spectrum.Incumbent{
				Kind: spectrum.TVStation, Channel: ch, ProtectRadius: 1e7,
				From: time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
			}); err != nil {
				t.Fatal(err)
			}
		}
		srv := NewServerWith(pawsdb.New(reg, opts))
		srv.Now = func() time.Time { return time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC) }
		return srv
	}
	body := func(srv *Server) []byte {
		raw, _ := json.Marshal(AvailSpectrumReq{
			DeviceDesc: DeviceDescriptor{SerialNumber: "AP-X", DeviceType: "FIXED"},
			Location:   ToGeo(geo.Point{X: 10, Y: 10}),
		})
		reqBody, _ := json.Marshal(rpcRequest{JSONRPC: "2.0", Method: MethodGetSpectrum, Params: raw, ID: 7})
		req := httptest.NewRequest(http.MethodPost, "/paws", bytes.NewReader(reqBody))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec.Body.Bytes()
	}

	cached := mk(pawsdb.Options{})
	uncached := mk(pawsdb.Options{DisableCache: true})
	cold := body(uncached)
	warm1 := body(cached) // fills cache + aux
	warm2 := body(cached) // served from cache + aux
	if !bytes.Equal(cold, warm1) || !bytes.Equal(warm1, warm2) {
		t.Fatalf("cache changed the wire bytes:\ncold  %s\nwarm1 %s\nwarm2 %s", cold, warm1, warm2)
	}
	if hits := cached.DB().Metrics().CacheHits.Load(); hits != 1 {
		t.Fatalf("expected exactly one cache hit, got %d", hits)
	}
	// The hand-assembled envelope and result must match what the
	// stdlib encoder produces for the same decoded values — this pins
	// the fast path's byte layout to encoding/json's.
	var resp rpcResponse
	if err := json.Unmarshal(warm2, &resp); err != nil {
		t.Fatal(err)
	}
	var env bytes.Buffer
	if err := json.NewEncoder(&env).Encode(resp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(env.Bytes(), warm2) {
		t.Fatalf("envelope diverges from encoding/json output:\n fast %s\n json %s", warm2, env.Bytes())
	}
	var rawResp availSpectrumRespRaw
	if err := json.Unmarshal(resp.Result, &rawResp); err != nil {
		t.Fatal(err)
	}
	reenc, err := json.Marshal(rawResp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, []byte(resp.Result)) {
		t.Fatalf("result diverges from encoding/json output:\n fast %s\n json %s", resp.Result, reenc)
	}
	var avail AvailSpectrumResp
	if err := json.Unmarshal(resp.Result, &avail); err != nil {
		t.Fatal(err)
	}
	want := cached.Registry().AvailableAt(geo.Point{X: 10, Y: 10}, cached.Now())
	if got := avail.Channels(); !reflect.DeepEqual(got, want) {
		t.Fatalf("decoded channels diverge from registry scan:\n got %v\nwant %v", got, want)
	}
}
