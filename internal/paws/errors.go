package paws

import (
	"errors"
	"fmt"
)

// ErrorClass partitions PAWS call failures by what the caller should
// do about them. The channel-selection state machine keys its
// grace-period / vacate decisions off this classification.
type ErrorClass int

const (
	// Transient: the database may answer on retry — network errors,
	// timeouts, 5xx, malformed or truncated responses. The AP keeps
	// its lease and retries within the vacate budget.
	Transient ErrorClass = iota
	// Fatal: retrying the identical call cannot succeed — protocol
	// misuse, unsupported method, un-encodable requests, 4xx. The AP
	// needs operator attention, not a retry loop.
	Fatal
	// RegulatoryDeny: the database answered and the answer is "no
	// spectrum for you here" (e.g. outside coverage). The AP must not
	// ride out a grace period — it vacates immediately.
	RegulatoryDeny
)

func (c ErrorClass) String() string {
	switch c {
	case Transient:
		return "transient"
	case Fatal:
		return "fatal"
	case RegulatoryDeny:
		return "regulatory-deny"
	}
	return "?"
}

// Error is the typed failure every Client call returns: the method
// that failed, its retry classification, and how many attempts were
// made before giving up.
type Error struct {
	Method   string
	Class    ErrorClass
	Attempts int
	Err      error
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("paws: %s: %v (%s, %d attempts)", e.Method, e.Err, e.Class, e.Attempts)
	}
	return fmt.Sprintf("paws: %s: %v (%s)", e.Method, e.Err, e.Class)
}

// Unwrap exposes the underlying cause (errors.As reaches *RPCError
// through it).
func (e *Error) Unwrap() error { return e.Err }

// Classify reports the ErrorClass of any error a Client call
// returned. Unrecognised errors classify as Transient: when in doubt
// the safe reading is "the database might still answer", because the
// grace-period budget, not the classification, is what bounds how
// long an AP keeps transmitting.
func Classify(err error) ErrorClass {
	var pe *Error
	if errors.As(err, &pe) {
		return pe.Class
	}
	var rpc *RPCError
	if errors.As(err, &rpc) {
		return classifyRPC(rpc)
	}
	return Transient
}

// classifyRPC maps PAWS protocol error codes onto classes.
func classifyRPC(e *RPCError) ErrorClass {
	switch e.Code {
	case ErrCodeOutsideCoverage:
		// The database serves this region but offers the device
		// nothing: a regulatory answer, not a malfunction.
		return RegulatoryDeny
	case ErrCodeVersion, ErrCodeUnsupported, ErrCodeMissing,
		ErrCodeInvalidValue, ErrCodeNotRegistered:
		return Fatal
	}
	// Unknown PAWS codes: the database is answering coherently, so a
	// retry of the same request is pointless.
	return Fatal
}
