package paws

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/spectrum"
)

// newTestClient wires a client to a handler with retries enabled and
// sleeps stubbed out (recorded, not slept).
func newTestClient(t *testing.T, h http.Handler, attempts int) (*Client, *[]time.Duration) {
	t.Helper()
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	var slept []time.Duration
	c := NewClient(hs.URL, "AP-RETRY")
	c.Retry = RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    time.Second,
		Jitter:      0.5,
		Seed:        42,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	return c, &slept
}

func TestRetryRecoversFromTransient5xx(t *testing.T) {
	real := NewServer(spectrum.NewRegistry(spectrum.EU))
	var hits atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "outage", http.StatusServiceUnavailable)
			return
		}
		real.ServeHTTP(w, r)
	})
	c, slept := newTestClient(t, h, 4)
	if _, err := c.Init(geo.Point{}); err != nil {
		t.Fatalf("Init should survive two 503s: %v", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("server hit %d times, want 3", hits.Load())
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
	// Exponential growth modulo jitter: second wait drawn from a
	// doubled step.
	for i, d := range *slept {
		if d <= 0 {
			t.Fatalf("backoff %d = %v", i, d)
		}
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	var hits atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "outage", http.StatusInternalServerError)
	})
	c, _ := newTestClient(t, h, 3)
	_, err := c.Init(geo.Point{})
	if err == nil {
		t.Fatal("persistent 500 should fail")
	}
	if hits.Load() != 3 {
		t.Fatalf("server hit %d times, want 3", hits.Load())
	}
	var pe *Error
	if !errors.As(err, &pe) || pe.Class != Transient || pe.Attempts != 3 {
		t.Fatalf("error = %v, want Transient after 3 attempts", err)
	}
}

func TestNoRetryOnFatal4xx(t *testing.T) {
	var hits atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "nope", http.StatusBadRequest)
	})
	c, slept := newTestClient(t, h, 4)
	_, err := c.Init(geo.Point{})
	if Classify(err) != Fatal {
		t.Fatalf("HTTP 400 classified %v, want fatal", Classify(err))
	}
	if hits.Load() != 1 || len(*slept) != 0 {
		t.Fatalf("fatal error retried: %d hits", hits.Load())
	}
}

func TestNoRetryOnRegulatoryDeny(t *testing.T) {
	var hits atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"jsonrpc":"2.0","error":{"code":%d,"message":"outside coverage"},"id":1}`,
			ErrCodeOutsideCoverage)
	})
	c, _ := newTestClient(t, h, 4)
	_, err := c.GetSpectrum(geo.Point{}, 15)
	if Classify(err) != RegulatoryDeny {
		t.Fatalf("outside-coverage classified %v, want regulatory-deny", Classify(err))
	}
	if hits.Load() != 1 {
		t.Fatalf("regulatory deny retried: %d hits", hits.Load())
	}
	// The PAWS code must still be reachable through the wrapper.
	var rpc *RPCError
	if !errors.As(err, &rpc) || rpc.Code != ErrCodeOutsideCoverage {
		t.Fatalf("RPCError not reachable via errors.As: %v", err)
	}
}

func TestOversizedResponseRejected(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"jsonrpc":"2.0","result":"`))
		io.Copy(w, strings.NewReader(strings.Repeat("x", maxResponseBytes+100)))
		w.Write([]byte(`","id":1}`))
	})
	c, _ := newTestClient(t, h, 1)
	_, err := c.Init(geo.Point{})
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized response accepted: %v", err)
	}
}

func TestNonJSONContentTypeRejected(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, "<html>proxy error page</html>")
	})
	c, _ := newTestClient(t, h, 1)
	_, err := c.Init(geo.Point{})
	if err == nil || !strings.Contains(err.Error(), "content type") {
		t.Fatalf("HTML response accepted: %v", err)
	}
	if Classify(err) != Transient {
		t.Fatalf("content-type error classified %v, want transient", Classify(err))
	}
}

func TestCallTimeoutBoundsSlowDatabase(t *testing.T) {
	release := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	})
	c, _ := newTestClient(t, h, 1)
	// Registered after newTestClient's hs.Close so it runs first
	// (LIFO): the blocked handler must return before Close can.
	t.Cleanup(func() { close(release) })
	c.CallTimeout = 50 * time.Millisecond
	start := time.Now()
	_, err := c.Init(geo.Point{})
	if err == nil {
		t.Fatal("stalled database should time the call out")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("call took %v despite 50ms deadline", elapsed)
	}
	if Classify(err) != Transient {
		t.Fatalf("timeout classified %v, want transient", Classify(err))
	}
}

func TestBackoffShape(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	// Jitter 0: deterministic doubling capped at MaxDelay.
	for i, want := range []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	} {
		if got := p.backoff(i+1, 0.99); got != want {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, want)
		}
	}
	// Jitter 1, u=0 → zero delay floor; u→1 approaches the full step.
	p.Jitter = 1
	if got := p.backoff(1, 0); got != 0 {
		t.Fatalf("full-jitter floor = %v, want 0", got)
	}
	// Huge attempt index must not overflow into a negative delay.
	if got := p.backoff(200, 0.5); got <= 0 || got > time.Second {
		t.Fatalf("overflow backoff = %v", got)
	}
}

func TestClassifyDefaults(t *testing.T) {
	if Classify(errors.New("some net glitch")) != Transient {
		t.Fatal("unknown errors should default to transient")
	}
	if Classify(&RPCError{Code: ErrCodeUnsupported, Message: "x"}) != Fatal {
		t.Fatal("unsupported-method should be fatal")
	}
	if Classify(&RPCError{Code: -999, Message: "x"}) != Fatal {
		t.Fatal("unknown RPC code should be fatal")
	}
}
