package stats

import (
	"math"
	"strings"
	"testing"
)

func linePoints(f func(x float64) float64, from, to float64, n int) [][2]float64 {
	pts := make([][2]float64, n)
	for i := range pts {
		x := from + (to-from)*float64(i)/float64(n-1)
		pts[i] = [2]float64{x, f(x)}
	}
	return pts
}

func TestPlotBasicShape(t *testing.T) {
	s := Series{Name: "line", Points: linePoints(func(x float64) float64 { return x }, 0, 10, 50)}
	out := Plot([]Series{s}, DefaultPlotOptions())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 18 {
		t.Fatalf("plot too short: %d lines", len(lines))
	}
	// Axis bounds rendered.
	if !strings.Contains(out, "10") || !strings.Contains(out, "0") {
		t.Fatal("axis bounds missing")
	}
	// An increasing line: the glyph in the top row must be to the
	// right of the glyph in the bottom data row.
	topIdx := strings.IndexByte(lines[0], '*')
	botIdx := strings.IndexByte(lines[17], '*')
	if topIdx < 0 || botIdx < 0 {
		t.Fatalf("glyphs missing: top %d bottom %d\n%s", topIdx, botIdx, out)
	}
	if topIdx <= botIdx {
		t.Fatalf("increasing line rendered decreasing\n%s", out)
	}
}

func TestPlotMultipleSeriesLegend(t *testing.T) {
	a := Series{Name: "first", Points: linePoints(func(x float64) float64 { return x }, 0, 1, 10)}
	b := Series{Name: "second", Points: linePoints(func(x float64) float64 { return 1 - x }, 0, 1, 10)}
	out := Plot([]Series{a, b}, DefaultPlotOptions())
	if !strings.Contains(out, "* first") || !strings.Contains(out, "o second") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "o") {
		t.Fatal("second glyph not drawn")
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	if got := Plot(nil, DefaultPlotOptions()); got != "(no data)\n" {
		t.Fatalf("empty plot = %q", got)
	}
	nanSeries := Series{Points: [][2]float64{{math.NaN(), math.NaN()}}}
	if got := Plot([]Series{nanSeries}, DefaultPlotOptions()); got != "(no data)\n" {
		t.Fatalf("NaN-only plot = %q", got)
	}
	// A single point (zero range) must not divide by zero.
	one := Series{Points: [][2]float64{{5, 5}}}
	out := Plot([]Series{one}, DefaultPlotOptions())
	if !strings.Contains(out, "*") {
		t.Fatal("single point not rendered")
	}
}

func TestPlotRespectsSize(t *testing.T) {
	s := Series{Points: linePoints(math.Sin, 0, 6.28, 100)}
	out := Plot([]Series{s}, PlotOptions{Width: 40, Height: 10})
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 40+13 {
			t.Fatalf("line too wide: %q", line)
		}
	}
}

func TestPlotTinySizeFallsBack(t *testing.T) {
	s := Series{Points: linePoints(math.Sin, 0, 1, 5)}
	out := Plot([]Series{s}, PlotOptions{Width: 1, Height: 1})
	if len(strings.Split(out, "\n")) < 10 {
		t.Fatal("tiny options should fall back to defaults")
	}
}

func TestTrimNum(t *testing.T) {
	cases := map[float64]string{
		0:     "0",
		10:    "10",
		123.4: "123",
		1.25:  "1.2",
		0.125: "0.125",
	}
	for in, want := range cases {
		if got := trimNum(in); got != want {
			t.Errorf("trimNum(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestHeatmapBasics(t *testing.T) {
	grid := [][]float64{
		{0, 1, 2},
		{3, 4, 5},
		{6, 7, 8},
	}
	out := Heatmap(grid, map[[2]int]byte{{1, 1}: 'A'})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("heatmap lines = %d", len(lines))
	}
	if lines[1][1] != 'A' {
		t.Fatalf("mark not placed: %q", lines[1])
	}
	// Intensity increases down the grid: last row darker than first.
	if lines[0][0] != ' ' {
		t.Fatalf("minimum cell should be the lightest glyph: %q", lines[0])
	}
	if lines[2][2] != '@' {
		t.Fatalf("maximum cell should be the darkest glyph: %q", lines[2])
	}
	if !strings.Contains(lines[3], "scale:") {
		t.Fatal("scale line missing")
	}
}

func TestHeatmapDegenerate(t *testing.T) {
	if Heatmap(nil, nil) != "(no data)\n" {
		t.Fatal("empty heatmap")
	}
	nan := [][]float64{{math.NaN()}}
	if Heatmap(nan, nil) != "(no data)\n" {
		t.Fatal("NaN-only heatmap")
	}
	flat := [][]float64{{5, 5}, {5, 5}}
	out := Heatmap(flat, nil)
	if !strings.Contains(out, "scale:") {
		t.Fatal("flat heatmap broke")
	}
}

// TestHeatmapMarksOverlay: marks take precedence over every cell kind —
// values, NaN holes — and land at exact (row, col) positions; marks
// addressing cells outside the grid are ignored.
func TestHeatmapMarksOverlay(t *testing.T) {
	grid := [][]float64{
		{0, math.NaN(), 10},
		{10, 0, math.NaN()},
	}
	marks := map[[2]int]byte{
		{0, 1}: 'N', // over a NaN hole
		{1, 0}: 'M', // over the maximum
		{9, 9}: 'Z', // outside the grid: ignored
	}
	out := Heatmap(grid, marks)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("heatmap lines = %d, want 2 rows + scale", len(lines))
	}
	if lines[0][1] != 'N' {
		t.Fatalf("mark over NaN not placed: %q", lines[0])
	}
	if lines[1][0] != 'M' {
		t.Fatalf("mark over value not placed: %q", lines[1])
	}
	if lines[1][2] != ' ' {
		t.Fatalf("unmarked NaN cell should render as space: %q", lines[1])
	}
	if lines[0][2] != '@' || lines[0][0] != ' ' {
		t.Fatalf("ramp extremes wrong around marks: %q", lines[0])
	}
	if strings.ContainsRune(out, 'Z') {
		t.Fatal("out-of-grid mark leaked into the rendering")
	}
}

// TestHeatmapOccupancyTimeline pins the rendering cellfi-trace timeline
// relies on: a 0/1 occupancy grid renders held cells with the darkest
// glyph, free cells as spaces, and hop marks on top.
func TestHeatmapOccupancyTimeline(t *testing.T) {
	grid := [][]float64{
		{1, 1, 0, 0},
		{0, 0, 1, 1},
	}
	marks := map[[2]int]byte{{0, 2}: 'x', {1, 2}: '+'}
	out := Heatmap(grid, marks)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "@@x " {
		t.Fatalf("row 0 = %q, want \"@@x \"", lines[0])
	}
	if lines[1] != "  +@" {
		t.Fatalf("row 1 = %q, want \"  +@\"", lines[1])
	}
	if !strings.Contains(lines[2], "' ' = 0") || !strings.Contains(lines[2], "'@' = 1") {
		t.Fatalf("scale line = %q", lines[2])
	}
}

// TestHeatmapRaggedRows: rows of different lengths render at their own
// width without panicking or bleeding marks across rows.
func TestHeatmapRaggedRows(t *testing.T) {
	grid := [][]float64{
		{0, 1, 2, 3},
		{3},
	}
	out := Heatmap(grid, map[[2]int]byte{{1, 0}: 'R'})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines[0]) != 4 || len(lines[1]) != 1 {
		t.Fatalf("row widths = %d,%d, want 4,1", len(lines[0]), len(lines[1]))
	}
	if lines[1] != "R" {
		t.Fatalf("ragged-row mark lost: %q", lines[1])
	}
}
