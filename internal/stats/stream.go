package stats

import (
	"fmt"
	"math"
)

// Streaming statistics for city-scale runs: a metric observed once per
// UE per epoch at 100k UEs produces hundreds of millions of samples per
// simulated hour, far past what CDF's retained-sample model can hold.
// StreamStat and QuantileSketch absorb unbounded streams in bounded
// memory and merge exactly across shards.
//
// The sketch is a log-bucket (DDSketch-family) design rather than P² or
// Greenwald-Khanna: buckets are fixed functions of the value alone, so
// merging two sketches is an exact bucket-wise add — merge(a,b) answers
// queries identically to a single sketch that saw both streams, in any
// merge order. P² keeps five order-dependent markers and cannot merge;
// GK merges only by inflating its error bound. Exact merge is what a
// sharded metro run needs, and the price — a fixed relative error α on
// the value axis instead of a rank guarantee — is the right trade for
// heavy-tailed throughput/latency metrics.

// DefaultSketchAlpha is the default relative accuracy: quantiles are
// within ±1% of the true sample value.
const DefaultSketchAlpha = 0.01

// QuantileSketch is a bounded-memory quantile estimator for
// non-negative observations with relative value error at most alpha.
// The zero value is not ready; use NewQuantileSketch.
//
// Bucket counts live in a dense slice rather than a map: the hot Add
// path (once per UE per epoch in the metro sweep) becomes a log, an
// index and an increment, with no hashing. Real metric streams occupy a
// contiguous-ish index range, so the slice stays small; it grows (with
// slack) only when a sample lands outside the covered range, which
// makes steady-state Add allocation-free.
type QuantileSketch struct {
	gamma    float64 // bucket base: (1+alpha)/(1-alpha)
	logGamma float64
	lo       int     // bucket index of counts[0]
	counts   []int64 // counts[i] holds bucket lo+i, values > 0
	zeros    int64   // exact count of v == 0
	count    int64
}

// NewQuantileSketch returns a sketch with the given relative accuracy
// (0 < alpha < 1); alpha <= 0 selects DefaultSketchAlpha.
func NewQuantileSketch(alpha float64) *QuantileSketch {
	if alpha <= 0 {
		alpha = DefaultSketchAlpha
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &QuantileSketch{
		gamma:    gamma,
		logGamma: math.Log(gamma),
	}
}

// Add absorbs one observation. Negative or NaN values panic: the
// callers feed physical metrics (rates, delays, factors) where a
// negative sample is a bug worth crashing on.
func (s *QuantileSketch) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		panic(fmt.Sprintf("stats: QuantileSketch.Add(%v): negative or NaN", v))
	}
	s.count++
	if v == 0 {
		s.zeros++
		return
	}
	i := s.bucketOf(v) - s.lo
	if i >= 0 && i < len(s.counts) {
		s.counts[i]++
		return
	}
	s.bump(i + s.lo)
}

// bump increments bucket idx, growing the covered range with slack so
// repeated out-of-range samples amortize to O(1).
func (s *QuantileSketch) bump(idx int) {
	const slack = 64
	if len(s.counts) == 0 {
		s.lo = idx - slack
		s.counts = make([]int64, 2*slack+1)
		s.counts[idx-s.lo]++
		return
	}
	lo, hi := s.lo, s.lo+len(s.counts)-1 // inclusive covered range
	if idx < lo {
		lo = idx - slack
	}
	if idx > hi {
		hi = idx + slack
	}
	grown := make([]int64, hi-lo+1)
	copy(grown[s.lo-lo:], s.counts)
	s.lo, s.counts = lo, grown
	s.counts[idx-s.lo]++
}

// bucketOf maps a positive value to its log bucket: the smallest i with
// gamma^i >= v.
func (s *QuantileSketch) bucketOf(v float64) int {
	return int(math.Ceil(math.Log(v) / s.logGamma))
}

// valueOf returns the representative value of bucket i — the geometric
// midpoint, within alpha of every value the bucket admits.
func (s *QuantileSketch) valueOf(i int) float64 {
	return 2 * math.Pow(s.gamma, float64(i)) / (1 + s.gamma)
}

// Count returns the number of observations absorbed.
func (s *QuantileSketch) Count() int64 { return s.count }

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) within
// relative error alpha of the true sample value. Empty sketches return
// 0.
func (s *QuantileSketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation in ascending order, 0-based.
	rank := int64(q * float64(s.count-1))
	if rank < s.zeros {
		return 0
	}
	seen := s.zeros
	last := s.lo
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		last = s.lo + i
		seen += c
		if seen > rank {
			return s.valueOf(last)
		}
	}
	// Unreachable if counts are consistent; fall back to the top bucket.
	return s.valueOf(last)
}

// Reset empties the sketch, retaining bucket capacity so a
// reset-and-remerge cycle (the sharded metro fold) is allocation-free
// in steady state.
func (s *QuantileSketch) Reset() {
	clear(s.counts)
	s.zeros = 0
	s.count = 0
}

// Merge folds other into s. Both sketches must share the same alpha
// (same gamma); merging is an exact bucket-wise add, so the result
// answers every query exactly as a single sketch fed both streams.
func (s *QuantileSketch) Merge(other *QuantileSketch) {
	if other == nil || other.count == 0 {
		return
	}
	if s.gamma != other.gamma {
		panic("stats: QuantileSketch.Merge: mismatched alpha")
	}
	s.count += other.count
	s.zeros += other.zeros
	for i, c := range other.counts {
		if c != 0 {
			idx := other.lo + i - s.lo
			if idx >= 0 && idx < len(s.counts) {
				s.counts[idx] += c
			} else {
				s.bump(other.lo + i)
				s.counts[other.lo+i-s.lo] += c - 1
			}
		}
	}
}

// StreamStat tracks count, mean, variance (Welford), min, max and sum
// of an unbounded stream in O(1) memory. The zero value is ready to
// use; Merge combines shards exactly (Chan et al. parallel variance).
type StreamStat struct {
	N          int64
	MeanV, m2  float64
	MinV, MaxV float64
	SumV       float64
}

// Add absorbs one observation.
func (t *StreamStat) Add(v float64) {
	t.N++
	if t.N == 1 {
		t.MinV, t.MaxV = v, v
	} else {
		if v < t.MinV {
			t.MinV = v
		}
		if v > t.MaxV {
			t.MaxV = v
		}
	}
	t.SumV += v
	d := v - t.MeanV
	t.MeanV += d / float64(t.N)
	t.m2 += d * (v - t.MeanV)
}

// Merge folds other into t.
func (t *StreamStat) Merge(other StreamStat) {
	if other.N == 0 {
		return
	}
	if t.N == 0 {
		*t = other
		return
	}
	n1, n2 := float64(t.N), float64(other.N)
	d := other.MeanV - t.MeanV
	t.m2 += other.m2 + d*d*n1*n2/(n1+n2)
	t.MeanV += d * n2 / (n1 + n2)
	t.N += other.N
	t.SumV += other.SumV
	if other.MinV < t.MinV {
		t.MinV = other.MinV
	}
	if other.MaxV > t.MaxV {
		t.MaxV = other.MaxV
	}
}

// Count returns the number of observations.
func (t *StreamStat) Count() int64 { return t.N }

// Mean returns the running mean (0 when empty).
func (t *StreamStat) Mean() float64 { return t.MeanV }

// Min returns the smallest observation (0 when empty).
func (t *StreamStat) Min() float64 { return t.MinV }

// Max returns the largest observation (0 when empty).
func (t *StreamStat) Max() float64 { return t.MaxV }

// Sum returns the sum of observations.
func (t *StreamStat) Sum() float64 { return t.SumV }

// Variance returns the population variance (0 for fewer than two
// observations).
func (t *StreamStat) Variance() float64 {
	if t.N < 2 {
		return 0
	}
	return t.m2 / float64(t.N)
}

// Stddev returns the population standard deviation.
func (t *StreamStat) Stddev() float64 { return math.Sqrt(t.Variance()) }
