package stats

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestHistIndexMonotoneAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1 << 40, math.MaxInt64} {
		idx := histIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", v, idx)
		}
		if idx < prev {
			t.Fatalf("histIndex not monotone at %d", v)
		}
		prev = idx
		if up := histUpper(idx); up < v {
			t.Errorf("histUpper(%d) = %d < recorded value %d", idx, up, v)
		}
	}
	if histIndex(-5) != 0 {
		t.Errorf("negative values should clamp to bucket 0")
	}
}

func TestHistUpperIsTightBound(t *testing.T) {
	// Every value's bucket upper bound must be within ~3.2% (1/32) of
	// the value itself — the histogram's advertised resolution.
	for v := int64(1); v < 1<<40; v = v*17/16 + 1 {
		up := histUpper(histIndex(v))
		if up < v {
			t.Fatalf("upper(%d) = %d below value", v, up)
		}
		if float64(up-v) > float64(v)/16+1 {
			t.Fatalf("upper(%d) = %d too loose", v, up)
		}
	}
}

func TestHistogramQuantileAgainstCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	samples := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-normal-ish latencies between ~1µs and ~100ms.
		v := int64(math.Exp(rng.NormFloat64()*1.5+10)) + 1
		h.Record(v)
		samples = append(samples, float64(v))
	}
	sort.Float64s(samples)
	cdf := NewCDF(samples)
	snap := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := cdf.Quantile(q)
		got := float64(snap.Quantile(q))
		if got < exact*0.97 || got > exact*1.10 {
			t.Errorf("q=%.3f: histogram %v vs exact %v out of tolerance", q, got, exact)
		}
	}
	if snap.N != 20000 {
		t.Errorf("snapshot N = %d, want 20000", snap.N)
	}
	if m := snap.Mean(); math.Abs(m-cdf.Mean()) > 1e-6 {
		t.Errorf("mean drifted: %v vs %v", m, cdf.Mean())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Intn(1e6)))
			}
		}(w)
	}
	wg.Wait()
	if n := h.Count(); n != workers*per {
		t.Fatalf("lost observations: %d != %d", n, workers*per)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 2e6 {
		t.Fatalf("implausible median %d", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should read as zeros")
	}
}
