package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile mirrors the sketch's rank convention on a sorted copy.
func exactQuantile(samples []float64, q float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := int(q * float64(len(s)-1))
	return s[rank]
}

// checkSketchAccuracy asserts every decile estimate is within the
// advertised relative error of the exact sample quantile.
func checkSketchAccuracy(t *testing.T, name string, samples []float64, alpha float64) {
	t.Helper()
	s := NewQuantileSketch(alpha)
	for _, v := range samples {
		s.Add(v)
	}
	if s.Count() != int64(len(samples)) {
		t.Fatalf("%s: count %d, want %d", name, s.Count(), len(samples))
	}
	for q := 0.0; q <= 1.0; q += 0.1 {
		got := s.Quantile(q)
		want := exactQuantile(samples, q)
		if want == 0 {
			if got != 0 {
				t.Fatalf("%s q=%.1f: got %v, want exactly 0", name, q, got)
			}
			continue
		}
		if rel := math.Abs(got-want) / want; rel > alpha {
			t.Fatalf("%s q=%.1f: got %v, want %v (rel err %.4f > alpha %.2f)",
				name, q, got, want, rel, alpha)
		}
	}
}

// The sketch's error bound must hold regardless of arrival order — the
// orderings that break order-sensitive estimators like P².
func TestQuantileSketchAdversarialOrderings(t *testing.T) {
	const n, alpha = 20000, 0.01
	rng := rand.New(rand.NewSource(1))
	base := make([]float64, n)
	for i := range base {
		// Heavy-tailed: throughputs span ~6 decades.
		base[i] = math.Exp(rng.NormFloat64()*2 + 1)
	}

	sorted := append([]float64(nil), base...)
	sort.Float64s(sorted)
	reversed := make([]float64, n)
	for i, v := range sorted {
		reversed[n-1-i] = v
	}
	// Duplicate-heavy: 16 distinct values, many repeats, some zeros.
	dupes := make([]float64, n)
	for i := range dupes {
		k := rng.Intn(16)
		if k == 0 {
			dupes[i] = 0
		} else {
			dupes[i] = float64(k) * 1.5
		}
	}

	checkSketchAccuracy(t, "random", base, alpha)
	checkSketchAccuracy(t, "sorted", sorted, alpha)
	checkSketchAccuracy(t, "reversed", reversed, alpha)
	checkSketchAccuracy(t, "duplicate-heavy", dupes, alpha)
}

// Merging shard sketches must answer queries exactly like one sketch
// that saw the concatenated stream — the property P²/GK lack and the
// reason the log-bucket design was chosen.
func TestQuantileSketchMergeExact(t *testing.T) {
	const shards, perShard = 8, 5000
	rng := rand.New(rand.NewSource(2))
	single := NewQuantileSketch(0.01)
	parts := make([]*QuantileSketch, shards)
	for sh := range parts {
		parts[sh] = NewQuantileSketch(0.01)
		for i := 0; i < perShard; i++ {
			v := math.Exp(rng.NormFloat64() * 3)
			if rng.Intn(50) == 0 {
				v = 0
			}
			single.Add(v)
			parts[sh].Add(v)
		}
	}
	// Merge in a scrambled order: exactness must be order-independent.
	merged := NewQuantileSketch(0.01)
	for _, sh := range rng.Perm(shards) {
		merged.Merge(parts[sh])
	}
	if merged.Count() != single.Count() {
		t.Fatalf("merged count %d, want %d", merged.Count(), single.Count())
	}
	for q := 0.0; q <= 1.0; q += 0.05 {
		if a, b := merged.Quantile(q), single.Quantile(q); a != b {
			t.Fatalf("q=%.2f: merged %v != single-stream %v", q, a, b)
		}
	}
}

func TestQuantileSketchRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	NewQuantileSketch(0).Add(-1)
}

func TestStreamStatMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var st StreamStat
	samples := make([]float64, 10000)
	for i := range samples {
		samples[i] = rng.NormFloat64()*7 + 3
		st.Add(samples[i])
	}
	var sum float64
	mn, mx := samples[0], samples[0]
	for _, v := range samples {
		sum += v
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	mean := sum / float64(len(samples))
	var m2 float64
	for _, v := range samples {
		m2 += (v - mean) * (v - mean)
	}
	if math.Abs(st.Mean()-mean) > 1e-9 {
		t.Fatalf("mean %v, want %v", st.Mean(), mean)
	}
	if math.Abs(st.Variance()-m2/float64(len(samples))) > 1e-6 {
		t.Fatalf("variance %v, want %v", st.Variance(), m2/float64(len(samples)))
	}
	if st.Min() != mn || st.Max() != mx {
		t.Fatalf("min/max %v/%v, want %v/%v", st.Min(), st.Max(), mn, mx)
	}
	if st.Count() != int64(len(samples)) {
		t.Fatalf("count %d, want %d", st.Count(), len(samples))
	}
}

// Sharded StreamStats merged in any order must agree with the
// single-stream accumulator to floating-point noise.
func TestStreamStatMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var whole StreamStat
	parts := make([]StreamStat, 5)
	for sh := range parts {
		n := 100 + rng.Intn(5000) // uneven shards
		for i := 0; i < n; i++ {
			v := math.Exp(rng.NormFloat64())
			whole.Add(v)
			parts[sh].Add(v)
		}
	}
	var merged StreamStat
	for _, sh := range rng.Perm(len(parts)) {
		merged.Merge(parts[sh])
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("count %d, want %d", merged.Count(), whole.Count())
	}
	if math.Abs(merged.Mean()-whole.Mean()) > 1e-9*math.Abs(whole.Mean()) {
		t.Fatalf("mean %v, want %v", merged.Mean(), whole.Mean())
	}
	if math.Abs(merged.Variance()-whole.Variance()) > 1e-9*whole.Variance() {
		t.Fatalf("variance %v, want %v", merged.Variance(), whole.Variance())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("min/max diverge")
	}
	// Merging an empty shard is a no-op; merging into empty copies.
	var empty StreamStat
	before := merged
	merged.Merge(empty)
	if merged != before {
		t.Fatal("merging empty changed the accumulator")
	}
	var fresh StreamStat
	fresh.Merge(whole)
	if fresh != whole {
		t.Fatal("merge into empty did not copy")
	}
}

func BenchmarkQuantileSketchAdd(b *testing.B) {
	s := NewQuantileSketch(0.01)
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = math.Exp(rng.NormFloat64() * 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(vals[i&1023])
	}
}
