package stats

import (
	"fmt"
	"math"
	"strings"
)

// ASCII plotting: cmd/experiments renders every figure's series as a
// terminal plot so the reproduced shapes can be eyeballed next to the
// paper without leaving the shell.

// PlotOptions sizes a terminal plot.
type PlotOptions struct {
	Width, Height int
	// XLabel / YLabel annotate the axes.
	XLabel, YLabel string
}

// DefaultPlotOptions fits a standard terminal.
func DefaultPlotOptions() PlotOptions {
	return PlotOptions{Width: 72, Height: 18}
}

// plotGlyphs distinguishes up to eight overlaid series.
var plotGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Plot renders one or more series into a character grid with shared
// axes. Series are drawn in order; later series overwrite earlier ones
// where they collide.
func Plot(series []Series, opts PlotOptions) string {
	if opts.Width <= 10 || opts.Height <= 4 {
		opts = DefaultPlotOptions()
	}
	// Bounds across all series.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	total := 0
	for _, s := range series {
		for _, p := range s.Points {
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
				continue
			}
			minX, maxX = math.Min(minX, p[0]), math.Max(maxX, p[0])
			minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
			total++
		}
	}
	if total == 0 {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	w, h := opts.Width, opts.Height
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range series {
		glyph := plotGlyphs[si%len(plotGlyphs)]
		for _, p := range s.Points {
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
				continue
			}
			col := int((p[0] - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((p[1]-minY)/(maxY-minY)*float64(h-1))
			grid[row][col] = glyph
		}
	}

	var b strings.Builder
	if opts.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", opts.YLabel)
	}
	for r, line := range grid {
		var label string
		switch r {
		case 0:
			label = trimNum(maxY)
		case h - 1:
			label = trimNum(minY)
		}
		fmt.Fprintf(&b, "%10s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%10s  %-*s%s\n", "", w-len(trimNum(maxX)), trimNum(minX), trimNum(maxX))
	if opts.XLabel != "" {
		fmt.Fprintf(&b, "%10s  %s\n", "", opts.XLabel)
	}
	if len(series) > 1 {
		b.WriteString("            ")
		for si, s := range series {
			if si > 0 {
				b.WriteString("   ")
			}
			fmt.Fprintf(&b, "%c %s", plotGlyphs[si%len(plotGlyphs)], s.Name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// trimNum formats an axis bound compactly.
func trimNum(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e6:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// heatRamp maps normalized intensity to characters, light to dark.
var heatRamp = []byte(" .:-=+*#%@")

// Heatmap renders a row-major grid of values as an ASCII intensity
// map. Rows render top-down; NaN cells render as spaces. Marks places
// labelled glyphs on top (e.g. access-point positions).
func Heatmap(grid [][]float64, marks map[[2]int]byte) string {
	if len(grid) == 0 {
		return "(no data)\n"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range grid {
		for _, v := range row {
			if math.IsNaN(v) {
				continue
			}
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return "(no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	for r, row := range grid {
		for c, v := range row {
			if g, ok := marks[[2]int{r, c}]; ok {
				b.WriteByte(g)
				continue
			}
			if math.IsNaN(v) {
				b.WriteByte(' ')
				continue
			}
			idx := int((v - lo) / (hi - lo) * float64(len(heatRamp)-1))
			b.WriteByte(heatRamp[idx])
		}
		b.WriteByte('\n')
		_ = r
	}
	fmt.Fprintf(&b, "scale: '%c' = %s  ..  '%c' = %s\n",
		heatRamp[0], trimNum(lo), heatRamp[len(heatRamp)-1], trimNum(hi))
	return b.String()
}
