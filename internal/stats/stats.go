// Package stats provides the small statistics toolkit the experiment
// harness uses: empirical CDFs, percentiles, and fixed-width table
// rendering for paper-style output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF copies and sorts the samples.
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1) by linear
// interpolation.
func (c *CDF) Quantile(q float64) float64 {
	n := len(c.sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return c.sorted[n-1]
	}
	return c.sorted[lo]*(1-frac) + c.sorted[lo+1]*frac
}

// Median is Quantile(0.5).
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}

// Min and Max return the extremes.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// FractionBelow returns the fraction of samples strictly below x —
// e.g. the "starved clients" metric with a rate threshold.
func (c *CDF) FractionBelow(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] >= x })
	return float64(i) / float64(len(c.sorted))
}

// Points samples the CDF at n evenly spaced quantiles for plotting:
// pairs of (value, cumulative probability).
func (c *CDF) Points(n int) [][2]float64 {
	if n < 2 || len(c.sorted) == 0 {
		return nil
	}
	out := make([][2]float64, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		out[i] = [2]float64{c.Quantile(q), q}
	}
	return out
}

// Series is a named sequence of (x, y) points — one plotted line.
type Series struct {
	Name   string
	Points [][2]float64
}

// Table renders rows with aligned columns for terminal output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var row strings.Builder
		for i, cell := range cells {
			if i > 0 {
				row.WriteString("  ")
			}
			fmt.Fprintf(&row, "%-*s", widths[i], cell)
		}
		b.WriteString(strings.TrimRight(row.String(), " "))
		b.WriteByte('\n')
	}
	line(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Fmt formats a float compactly for table cells.
func Fmt(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// JainIndex returns Jain's fairness index of the samples:
// (sum x)^2 / (n * sum x^2), in (0, 1]; 1 is perfectly fair. The
// paper's Figure 9(b) discussion claims CellFi "improves the overall
// coverage and fairness" — this is the standard way to score it.
func JainIndex(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	var sum, sumSq float64
	for _, v := range samples {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return math.NaN()
	}
	return sum * sum / (float64(len(samples)) * sumSq)
}
