package stats_test

import (
	"fmt"

	"cellfi/internal/stats"
)

// An empirical CDF answers the evaluation's recurring questions:
// medians, starvation fractions, tail quantiles.
func ExampleCDF() {
	th := []float64{0.01, 0.02, 0.2, 0.4, 0.5, 0.9, 1.4, 2.0}
	c := stats.NewCDF(th)
	fmt.Printf("median: %.2f Mbps\n", c.Median())
	fmt.Printf("starved (<0.05): %.0f%%\n", c.FractionBelow(0.05)*100)
	fmt.Printf("p90: %.2f Mbps\n", c.Quantile(0.9))
	// Output:
	// median: 0.45 Mbps
	// starved (<0.05): 25%
	// p90: 1.58 Mbps
}

// Tables render with aligned columns for paper-style rows.
func ExampleTable() {
	t := &stats.Table{
		Title:   "Coverage",
		Headers: []string{"System", "Connected"},
	}
	t.AddRow("CellFi", "85%")
	t.AddRow("802.11af", "42%")
	fmt.Print(t.String())
	// Output:
	// Coverage
	// System    Connected
	// --------  ---------
	// CellFi    85%
	// 802.11af  42%
}
