package stats

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a concurrent, fixed-footprint, log-linear histogram for
// latency-style measurements (HdrHistogram bucketing: 32 linear
// sub-buckets per power of two, ~3% relative error). Values are
// non-negative int64s — by convention nanoseconds. The zero value is
// ready to use; Record and the read side are lock-free, so request
// hot paths can share one Histogram across goroutines without
// coordination. Unlike CDF (which sorts retained samples) a Histogram
// holds O(1) memory regardless of how many observations it absorbs,
// which is what an open-loop load harness pushing millions of requests
// needs.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// histBuckets: indices 0..31 hold exact values 0..31; each further
// 32-bucket block b covers [32<<(b-1), 64<<(b-1)) with linear
// sub-buckets. 60 blocks cover the full int64 range.
const histBuckets = 32 + 60*32

func histIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < 32 {
		return int(u)
	}
	msb := bits.Len64(u) - 1 // >= 5
	sub := (u >> (msb - 5)) & 31
	return (msb-4)*32 + int(sub)
}

// histUpper returns the largest value mapping to bucket idx — the
// conservative (over-)estimate quantiles report.
func histUpper(idx int) int64 {
	if idx < 32 {
		return int64(idx)
	}
	block := idx/32 - 1 // >= 0
	sub := int64(idx % 32)
	lower := (32 + sub) << block
	return lower + (int64(1) << block) - 1
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[histIndex(v)].Add(1)
}

// Observe records a duration in nanoseconds.
func (h *Histogram) Observe(d time.Duration) { h.Record(int64(d)) }

// Count returns how many observations have been recorded.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the arithmetic mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) with
// ~3% relative error, or 0 when empty. For consistent multi-quantile
// reads under concurrent writers, take a Snapshot first.
func (h *Histogram) Quantile(q float64) int64 { return h.Snapshot().Quantile(q) }

// HistSnapshot is an immutable copy of a Histogram's state.
type HistSnapshot struct {
	N       int64
	Sum     int64
	buckets [histBuckets]int64
}

// Snapshot copies the current counts. Under concurrent writers the
// copy is not a single atomic cut, but every bucket value is itself
// consistent, which is all quantile estimation needs.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.N = h.count.Load()
	s.Sum = h.sum.Load()
	total := int64(0)
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.buckets[i] = c
		total += c
	}
	// The bucket sweep may observe more or fewer samples than the
	// count field did; rank against what the sweep actually saw.
	s.N = total
	return s
}

// Quantile returns an upper bound for the q-quantile of the snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(s.N-1)) + 1 // 1-based rank of the target sample
	seen := int64(0)
	for i := range s.buckets {
		seen += s.buckets[i]
		if seen >= rank {
			return histUpper(i)
		}
	}
	return histUpper(histBuckets - 1)
}

// Mean returns the arithmetic mean of the snapshot (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.N)
}
