package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4})
	if c.Len() != 4 {
		t.Fatal("length wrong")
	}
	if c.Min() != 1 || c.Max() != 4 {
		t.Fatalf("extremes %g %g", c.Min(), c.Max())
	}
	if got := c.At(2); got != 0.5 {
		t.Fatalf("At(2) = %g, want 0.5", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Fatalf("At(0.5) = %g, want 0", got)
	}
	if got := c.At(100); got != 1 {
		t.Fatalf("At(100) = %g, want 1", got)
	}
	if got := c.Mean(); got != 2.5 {
		t.Fatalf("mean = %g", got)
	}
	if got := c.Median(); got != 2.5 {
		t.Fatalf("median = %g", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	if got := c.Quantile(0.25); got != 2.5 {
		t.Fatalf("Q(0.25) = %g, want 2.5", got)
	}
	if c.Quantile(0) != 0 || c.Quantile(1) != 10 {
		t.Fatal("extreme quantiles wrong")
	}
	if c.Quantile(-1) != 0 || c.Quantile(2) != 10 {
		t.Fatal("out-of-range quantiles should clamp")
	}
}

func TestEmptyCDF(t *testing.T) {
	c := NewCDF(nil)
	if !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Mean()) {
		t.Fatal("empty CDF should be NaN")
	}
	if c.At(1) != 0 || c.FractionBelow(1) != 0 {
		t.Fatal("empty CDF probabilities should be 0")
	}
	if c.Points(5) != nil {
		t.Fatal("empty CDF points should be nil")
	}
}

func TestFractionBelow(t *testing.T) {
	c := NewCDF([]float64{0, 0, 1, 2})
	if got := c.FractionBelow(1); got != 0.5 {
		t.Fatalf("FractionBelow(1) = %g, want 0.5 (strict)", got)
	}
	if got := c.FractionBelow(0); got != 0 {
		t.Fatalf("FractionBelow(0) = %g, want 0", got)
	}
	if got := c.FractionBelow(5); got != 1 {
		t.Fatalf("FractionBelow(5) = %g, want 1", got)
	}
}

func TestPointsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = rng.NormFloat64() * 10
	}
	pts := NewCDF(samples).Points(33)
	if len(pts) != 33 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Fatal("CDF points not monotone")
		}
	}
	if pts[0][1] != 0 || pts[len(pts)-1][1] != 1 {
		t.Fatal("CDF endpoints wrong")
	}
}

// Property: quantile is monotone and At() is its rough inverse.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, qa, qb float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		a := math.Mod(math.Abs(qa), 1)
		b := math.Mod(math.Abs(qb), 1)
		if a > b {
			a, b = b, a
		}
		c := NewCDF(raw)
		return c.Quantile(a) <= c.Quantile(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileMatchesSortedSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	samples := make([]float64, 1001)
	for i := range samples {
		samples[i] = rng.Float64() * 100
	}
	c := NewCDF(samples)
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	// With n=1001, Quantile(k/1000) lands exactly on sorted[k].
	for _, k := range []int{0, 100, 500, 900, 1000} {
		if got := c.Quantile(float64(k) / 1000); got != sorted[k] {
			t.Fatalf("Quantile(%d/1000) = %g, want %g", k, got, sorted[k])
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "Figure 9(a): coverage vs density",
		Headers: []string{"APs", "CellFi", "Wi-Fi"},
	}
	tb.AddRow("6", "98.3", "81.0")
	tb.AddRow("14", "90.1", "65.7")
	out := tb.String()
	if !strings.Contains(out, "Figure 9(a)") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("rendered %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Fatalf("rule line malformed: %q", lines[2])
	}
	// Columns align: header and rows share the first separator column.
	hIdx := strings.Index(lines[1], "CellFi")
	rIdx := strings.Index(lines[3], "98.3")
	if hIdx != rIdx {
		t.Fatalf("columns misaligned: header at %d, row at %d", hIdx, rIdx)
	}
}

func TestFmt(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{math.NaN(), "-"},
		{0, "0.00"},
		{0.001, "1.00e-03"},
		{12.345, "12.35"},
		{123456, "123456"},
	}
	for _, c := range cases {
		if got := Fmt(c.in); got != c.want {
			t.Errorf("Fmt(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal shares index = %g, want 1", got)
	}
	// One user hogging everything: index -> 1/n.
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("monopolized index = %g, want 0.25", got)
	}
	mixed := JainIndex([]float64{1, 2, 3, 4})
	if mixed <= 0.25 || mixed >= 1 {
		t.Fatalf("mixed index = %g, want strictly between 1/n and 1", mixed)
	}
	if !math.IsNaN(JainIndex(nil)) || !math.IsNaN(JainIndex([]float64{0, 0})) {
		t.Fatal("degenerate inputs should be NaN")
	}
}
