// Package traffic generates the two workloads of the paper's
// evaluation (Section 6.3.4): fully backlogged flows for throughput and
// coverage measurements, and a web-like workload — pages composed of
// objects with heavy-tailed sizes separated by think times — for the
// page-load-time experiment of Figure 9c.
package traffic

import (
	"math"
	"math/rand"
	"time"
)

// Flow is one downlink transfer toward a client.
type Flow struct {
	ID       int
	ClientID int
	// Bits is the flow size.
	Bits int64
	// Arrival is when the flow entered the AP queue.
	Arrival time.Duration
	// PageID groups object flows into pages.
	PageID int
}

// WebParams shapes the web workload. Defaults follow the measurements
// the paper cites: a page has a handful of objects, object sizes are
// log-normal with a heavy tail, and think times between pages are
// exponential on the order of tens of seconds.
type WebParams struct {
	// ObjectsPerPageMean is the mean object count (geometric).
	ObjectsPerPageMean float64
	// ObjectSizeLogMean / ObjectSizeLogStd parametrize the log-normal
	// object size in bytes (medians around 10 kB, means ~30 kB).
	ObjectSizeLogMean, ObjectSizeLogStd float64
	// MaxObjectBytes truncates the tail.
	MaxObjectBytes int64
	// ThinkTimeMean separates consecutive pages of one client.
	ThinkTimeMean time.Duration
}

// DefaultWebParams returns the evaluation workload parameters.
func DefaultWebParams() WebParams {
	return WebParams{
		ObjectsPerPageMean: 8,
		ObjectSizeLogMean:  math.Log(12 * 1024), // median 12 kB
		ObjectSizeLogStd:   1.2,
		MaxObjectBytes:     2 << 20,
		ThinkTimeMean:      20 * time.Second,
	}
}

// Page is one generated web page: a burst of object flows.
type Page struct {
	ID      int
	Arrival time.Duration
	Flows   []*Flow
	// TotalBits across objects.
	TotalBits int64
}

// WebGenerator produces a page arrival sequence per client.
type WebGenerator struct {
	Params WebParams
	rng    *rand.Rand
	nextID int
}

// NewWebGenerator builds a generator on the given random stream.
func NewWebGenerator(p WebParams, rng *rand.Rand) *WebGenerator {
	return &WebGenerator{Params: p, rng: rng}
}

// NextPage generates the page a client requests after the given time;
// the returned page's Arrival includes a think-time gap.
func (g *WebGenerator) NextPage(clientID int, after time.Duration) Page {
	think := time.Duration(g.rng.ExpFloat64() * float64(g.Params.ThinkTimeMean))
	arrival := after + think
	// Geometric object count with the configured mean (>= 1).
	n := 1
	p := 1 / g.Params.ObjectsPerPageMean
	for g.rng.Float64() > p && n < 64 {
		n++
	}
	g.nextID++
	pageID := g.nextID
	page := Page{ID: pageID, Arrival: arrival}
	for i := 0; i < n; i++ {
		bytes := int64(math.Exp(g.rng.NormFloat64()*g.Params.ObjectSizeLogStd + g.Params.ObjectSizeLogMean))
		if bytes < 256 {
			bytes = 256
		}
		if bytes > g.Params.MaxObjectBytes {
			bytes = g.Params.MaxObjectBytes
		}
		g.nextID++
		f := &Flow{ID: g.nextID, ClientID: clientID, Bits: bytes * 8, Arrival: arrival, PageID: pageID}
		page.Flows = append(page.Flows, f)
		page.TotalBits += f.Bits
	}
	return page
}

// FlowTracker resolves flow and page completion times from cumulative
// delivered bits on a per-client FIFO queue. Enqueue flows in arrival
// order; report delivered totals monotonically.
type FlowTracker struct {
	// pending flows per client in FIFO order with their cumulative
	// completion thresholds.
	pending map[int][]pendingFlow
	// enqueued cumulative bits per client.
	enqueued map[int]int64
	// page bookkeeping.
	pageFlows  map[int]int
	pageStart  map[int]time.Duration
	pageClient map[int]int
	completed  []CompletedFlow
	pages      []CompletedPage
}

type pendingFlow struct {
	flow      *Flow
	threshold int64 // cumulative delivered bits at which it completes
}

// CompletedFlow records one finished transfer.
type CompletedFlow struct {
	Flow     *Flow
	Finished time.Duration
}

// CompletedPage records a fully loaded page.
type CompletedPage struct {
	PageID   int
	ClientID int
	Arrival  time.Duration
	Finished time.Duration
	Bits     int64
}

// LoadTime returns the page-load latency.
func (p CompletedPage) LoadTime() time.Duration { return p.Finished - p.Arrival }

// NewFlowTracker returns an empty tracker.
func NewFlowTracker() *FlowTracker {
	return &FlowTracker{
		pending:    make(map[int][]pendingFlow),
		enqueued:   make(map[int]int64),
		pageFlows:  make(map[int]int),
		pageStart:  make(map[int]time.Duration),
		pageClient: make(map[int]int),
	}
}

// Enqueue registers a flow entering its client's AP queue.
func (t *FlowTracker) Enqueue(f *Flow) {
	t.enqueued[f.ClientID] += f.Bits
	t.pending[f.ClientID] = append(t.pending[f.ClientID], pendingFlow{
		flow:      f,
		threshold: t.enqueued[f.ClientID],
	})
	t.pageFlows[f.PageID]++
	t.pageClient[f.PageID] = f.ClientID
	if _, ok := t.pageStart[f.PageID]; !ok {
		t.pageStart[f.PageID] = f.Arrival
	}
}

// QueuedBits returns the bits a client still has outstanding given the
// delivered total.
func (t *FlowTracker) QueuedBits(clientID int, delivered int64) int64 {
	q := t.enqueued[clientID] - delivered
	if q < 0 {
		return 0
	}
	return q
}

// Progress reports the client's cumulative delivered bits at time now,
// completing any flows whose thresholds were crossed.
func (t *FlowTracker) Progress(clientID int, delivered int64, now time.Duration) {
	q := t.pending[clientID]
	for len(q) > 0 && delivered >= q[0].threshold {
		pf := q[0]
		q = q[1:]
		t.completed = append(t.completed, CompletedFlow{Flow: pf.flow, Finished: now})
		t.pageFlows[pf.flow.PageID]--
		if t.pageFlows[pf.flow.PageID] == 0 {
			t.pages = append(t.pages, CompletedPage{
				PageID:   pf.flow.PageID,
				ClientID: clientID,
				Arrival:  t.pageStart[pf.flow.PageID],
				Finished: now,
				Bits:     0,
			})
			delete(t.pageFlows, pf.flow.PageID)
			delete(t.pageStart, pf.flow.PageID)
			delete(t.pageClient, pf.flow.PageID)
		}
	}
	t.pending[clientID] = q
}

// CompletedFlows returns the finished transfers so far.
func (t *FlowTracker) CompletedFlows() []CompletedFlow { return t.completed }

// CompletedPages returns the fully loaded pages so far.
func (t *FlowTracker) CompletedPages() []CompletedPage { return t.pages }

// OutstandingPage describes a page still loading.
type OutstandingPage struct {
	PageID   int
	ClientID int
	Arrival  time.Duration
}

// OutstandingPages returns pages with flows still queued — the censored
// tail of a page-load-time distribution.
func (t *FlowTracker) OutstandingPages() []OutstandingPage {
	out := make([]OutstandingPage, 0, len(t.pageStart))
	for id, at := range t.pageStart {
		out = append(out, OutstandingPage{PageID: id, ClientID: t.pageClient[id], Arrival: at})
	}
	return out
}
