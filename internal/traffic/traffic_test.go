package traffic

import (
	"math/rand"
	"testing"
	"time"
)

func TestWebGeneratorShapes(t *testing.T) {
	g := NewWebGenerator(DefaultWebParams(), rand.New(rand.NewSource(1)))
	var objects, pages int
	var totalBits int64
	var at time.Duration
	for i := 0; i < 2000; i++ {
		p := g.NextPage(1, at)
		if p.Arrival < at {
			t.Fatal("page arrived before its think time started")
		}
		if len(p.Flows) == 0 {
			t.Fatal("empty page")
		}
		var sum int64
		for _, f := range p.Flows {
			if f.Bits < 256*8 {
				t.Fatalf("object below minimum size: %d bits", f.Bits)
			}
			if f.Bits > DefaultWebParams().MaxObjectBytes*8 {
				t.Fatalf("object above cap: %d bits", f.Bits)
			}
			if f.PageID != p.ID {
				t.Fatal("flow not linked to its page")
			}
			sum += f.Bits
		}
		if sum != p.TotalBits {
			t.Fatal("page TotalBits inconsistent")
		}
		objects += len(p.Flows)
		pages++
		totalBits += p.TotalBits
		at = p.Arrival
	}
	meanObjects := float64(objects) / float64(pages)
	if meanObjects < 5 || meanObjects > 12 {
		t.Errorf("mean objects/page = %g, want around 8", meanObjects)
	}
	meanPageKB := float64(totalBits) / 8 / 1024 / float64(pages)
	if meanPageKB < 80 || meanPageKB > 2000 {
		t.Errorf("mean page size = %g kB; web pages run hundreds of kB", meanPageKB)
	}
	meanThink := at.Seconds() / float64(pages)
	if meanThink < 10 || meanThink > 35 {
		t.Errorf("mean inter-page gap = %gs, want around 20", meanThink)
	}
}

func TestWebGeneratorUniqueIDs(t *testing.T) {
	g := NewWebGenerator(DefaultWebParams(), rand.New(rand.NewSource(2)))
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		p := g.NextPage(1, 0)
		if seen[p.ID] {
			t.Fatal("duplicate page ID")
		}
		seen[p.ID] = true
		for _, f := range p.Flows {
			if seen[f.ID] {
				t.Fatal("duplicate flow ID")
			}
			seen[f.ID] = true
		}
	}
}

func TestFlowTrackerFIFOCompletion(t *testing.T) {
	tr := NewFlowTracker()
	f1 := &Flow{ID: 1, ClientID: 9, Bits: 1000, Arrival: 0, PageID: 100}
	f2 := &Flow{ID: 2, ClientID: 9, Bits: 500, Arrival: 0, PageID: 100}
	tr.Enqueue(f1)
	tr.Enqueue(f2)

	tr.Progress(9, 999, time.Second)
	if got := len(tr.CompletedFlows()); got != 0 {
		t.Fatalf("%d flows completed at 999/1000 bits", got)
	}
	if q := tr.QueuedBits(9, 999); q != 501 {
		t.Fatalf("queued = %d, want 501", q)
	}
	tr.Progress(9, 1000, 2*time.Second)
	if got := len(tr.CompletedFlows()); got != 1 || tr.CompletedFlows()[0].Flow.ID != 1 {
		t.Fatalf("flow 1 not completed first: %+v", tr.CompletedFlows())
	}
	if len(tr.CompletedPages()) != 0 {
		t.Fatal("page completed with a flow outstanding")
	}
	tr.Progress(9, 1500, 3*time.Second)
	if got := len(tr.CompletedFlows()); got != 2 {
		t.Fatalf("flows completed = %d, want 2", got)
	}
	pages := tr.CompletedPages()
	if len(pages) != 1 || pages[0].PageID != 100 {
		t.Fatalf("pages = %+v", pages)
	}
	if pages[0].LoadTime() != 3*time.Second {
		t.Fatalf("page load time = %v, want 3s", pages[0].LoadTime())
	}
}

func TestFlowTrackerMultipleClients(t *testing.T) {
	tr := NewFlowTracker()
	tr.Enqueue(&Flow{ID: 1, ClientID: 1, Bits: 100, PageID: 10})
	tr.Enqueue(&Flow{ID: 2, ClientID: 2, Bits: 100, PageID: 20})
	tr.Progress(1, 100, time.Second)
	if len(tr.CompletedPages()) != 1 {
		t.Fatal("client 1's page should be done")
	}
	if tr.QueuedBits(2, 0) != 100 {
		t.Fatal("client 2's queue touched by client 1's progress")
	}
}

func TestFlowTrackerCrossPageFIFO(t *testing.T) {
	tr := NewFlowTracker()
	// Two pages' flows interleaved in one client queue.
	tr.Enqueue(&Flow{ID: 1, ClientID: 1, Bits: 100, PageID: 10, Arrival: 0})
	tr.Enqueue(&Flow{ID: 2, ClientID: 1, Bits: 100, PageID: 11, Arrival: time.Second})
	tr.Enqueue(&Flow{ID: 3, ClientID: 1, Bits: 100, PageID: 10, Arrival: 0})
	tr.Progress(1, 200, 2*time.Second)
	if len(tr.CompletedPages()) != 1 || tr.CompletedPages()[0].PageID != 11 {
		t.Fatalf("pages after 200 bits: %+v", tr.CompletedPages())
	}
	tr.Progress(1, 300, 3*time.Second)
	if len(tr.CompletedPages()) != 2 {
		t.Fatal("page 10 incomplete after all bits delivered")
	}
	for _, p := range tr.CompletedPages() {
		if p.PageID == 10 && p.Finished != 3*time.Second {
			t.Fatalf("page 10 finished at %v, want 3s", p.Finished)
		}
	}
}

func TestQueuedBitsNeverNegative(t *testing.T) {
	tr := NewFlowTracker()
	tr.Enqueue(&Flow{ID: 1, ClientID: 1, Bits: 100, PageID: 1})
	if q := tr.QueuedBits(1, 500); q != 0 {
		t.Fatalf("over-delivery produced queue %d", q)
	}
}
