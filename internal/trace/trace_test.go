package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func rec(t int64, ap int32, k Kind, args ...int64) Record {
	r := Record{T: t, AP: ap, Kind: k, N: uint8(len(args))}
	copy(r.Args[:], args)
	return r
}

func sampleRecords() []Record {
	return []Record{
		rec(0, -1, KindSimFire),
		rec(1_000_000, 3, KindIMShare, 2, 0b101, 2),
		rec(1_000_000, 3, KindIMHop, -1, 5, HopCauseShareGrow),
		rec(2_000_000, 0, KindWifiTX, WifiFrameData, 1_500_000),
		rec(1_500_000, 7, KindLease, 1, 2, 0, 21), // out-of-order clock is legal
		rec(math.MaxInt64, 12, KindLTEGrant, 100, 0x1fff, 37_000),
		rec(math.MinInt64, -1, KindPAWSQuery, PAWSMethodGetSpectrum, -1, 3),
	}
}

func TestRoundTrip(t *testing.T) {
	want := sampleRecords()
	got, err := Decode(Marshal(want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestEmptyStream(t *testing.T) {
	got, err := Decode(Marshal(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: got %v, %v", got, err)
	}
}

func TestHeaderErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short magic", []byte("CF"), ErrTruncated},
		{"bad magic", []byte("XXXX\x01records"), ErrHeader},
		{"bad version", []byte("CFTR\x63"), ErrVersion},
	}
	for _, c := range cases {
		if _, err := Decode(c.data); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestMalformedRecords(t *testing.T) {
	valid := Marshal(sampleRecords())

	// Every truncation of a valid stream must error (or decode a clean
	// prefix when cut exactly at a record boundary), never panic.
	for cut := headerLen; cut < len(valid); cut++ {
		recs, err := Decode(valid[:cut])
		if err == nil && len(recs) == len(sampleRecords()) {
			t.Fatalf("truncation at %d decoded the full stream", cut)
		}
	}

	// Reserved kind zero.
	bad := append([]byte{}, Marshal(nil)...)
	bad = append(bad, 0 /* delta */, 0 /* kind */, 0, 0)
	if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("kind 0: err = %v, want ErrCorrupt", err)
	}

	// Oversized arg count.
	bad = append([]byte{}, Marshal(nil)...)
	bad = append(bad, 0, byte(KindSimFire), 0, MaxArgs+1)
	if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("argc: err = %v, want ErrCorrupt", err)
	}

	// Overlong varint (11 continuation bytes).
	bad = append([]byte{}, Marshal(nil)...)
	for i := 0; i < 11; i++ {
		bad = append(bad, 0xff)
	}
	if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("overlong varint: err = %v, want ErrCorrupt", err)
	}

	// AP outside int32.
	var e Encoder
	e.AppendHeader()
	e.buf = append(e.buf, 0, byte(KindSimFire))
	e.buf = appendZigzag(e.buf, int64(1)<<40)
	e.buf = append(e.buf, 0)
	if _, err := Decode(e.buf); !errors.Is(err, ErrCorrupt) {
		t.Errorf("huge AP: err = %v, want ErrCorrupt", err)
	}
}

// appendZigzag mirrors the encoder's varint helper for hand-built
// malformed streams.
func appendZigzag(buf []byte, v int64) []byte {
	u := zigzag(v)
	for u >= 0x80 {
		buf = append(buf, byte(u)|0x80)
		u >>= 7
	}
	return append(buf, byte(u))
}

// Unknown kinds decode (self-describing layout) so a newer writer's
// stream still dumps on an older reader.
func TestUnknownKindDecodes(t *testing.T) {
	r := rec(5, 2, Kind(200), 1, 2)
	got, err := Decode(Marshal([]Record{r}))
	if err != nil || len(got) != 1 || got[0] != r {
		t.Fatalf("unknown kind: got %v, %v", got, err)
	}
	if got[0].Kind.String() != "kind(200)" {
		t.Fatalf("unknown kind name = %q", got[0].Kind.String())
	}
}

func TestKindNames(t *testing.T) {
	for k, name := range kindNames {
		got, ok := ParseKind(name)
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", name, got, ok)
		}
		if k.String() != name {
			t.Errorf("%v.String() = %q, want %q", uint8(k), k.String(), name)
		}
	}
	if _, ok := ParseKind("nope"); ok {
		t.Error("ParseKind accepted an unknown name")
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(rec(int64(i), 0, KindSimFire))
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("retained %d records, want 4", len(snap))
	}
	for i, rc := range snap {
		if rc.T != int64(6+i) {
			t.Fatalf("snapshot[%d].T = %d, want %d", i, rc.T, 6+i)
		}
	}
	st := r.Stats()
	if st.Recorded != 10 || st.Dropped != 6 || st.Spills != 0 {
		t.Fatalf("stats = %+v", st)
	}

	// WriteTo exports the retained window as a decodable stream.
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := Decode(buf.Bytes())
	if err != nil || len(recs) != 4 || recs[0].T != 6 {
		t.Fatalf("exported window: %v, %v", recs, err)
	}
}

func TestRingSpillStreamIsComplete(t *testing.T) {
	var buf bytes.Buffer
	r := NewRing(8)
	r.SpillTo(&buf)
	const total = 100
	for i := 0; i < total; i++ {
		r.Record(rec(int64(i), int32(i%3), KindIMHop, -1, int64(i), HopCauseBucket))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("decode spilled stream: %v", err)
	}
	if len(recs) != total {
		t.Fatalf("spilled %d records, want %d", len(recs), total)
	}
	for i, rc := range recs {
		if rc.T != int64(i) || rc.Args[1] != int64(i) {
			t.Fatalf("record %d corrupted: %+v", i, rc)
		}
	}
	st := r.Stats()
	if st.Recorded != total || st.Dropped != 0 || st.Spills == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRingSpillEmptyStreamHasHeader(t *testing.T) {
	var buf bytes.Buffer
	r := NewRing(8)
	r.SpillTo(&buf)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Decode(buf.Bytes())
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty spill: %v, %v", recs, err)
	}
}

type failWriter struct{ calls int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.calls++
	return 0, errors.New("disk full")
}

func TestRingSpillWriteFailure(t *testing.T) {
	w := &failWriter{}
	r := NewRing(2)
	r.SpillTo(w)
	for i := 0; i < 10; i++ {
		r.Record(rec(int64(i), 0, KindSimFire))
	}
	if err := r.Close(); err == nil {
		t.Fatal("write failure not surfaced by Close")
	}
	if r.Err() == nil {
		t.Fatal("Err() lost the write failure")
	}
	if w.calls != 1 {
		t.Fatalf("writer called %d times after failing, want 1", w.calls)
	}
	if st := r.Stats(); st.Dropped == 0 {
		t.Fatalf("records after a failed spill not counted dropped: %+v", st)
	}
}

func TestDiff(t *testing.T) {
	base := sampleRecords()
	a := Marshal(base)

	if d := Diff(a, Marshal(base)); !d.Identical || d.CountA != len(base) {
		t.Fatalf("identical streams: %+v", d)
	}

	// One changed arg diverges at that record.
	mod := append([]Record{}, base...)
	mod[3].Args[1] = 999
	d := Diff(a, Marshal(mod))
	if d.Identical || d.Index != 3 || d.A == nil || d.B == nil {
		t.Fatalf("modified stream: %+v", d)
	}
	if d.A.Kind != KindWifiTX || d.B.Args[1] != 999 {
		t.Fatalf("divergence records wrong: a=%v b=%v", d.A, d.B)
	}

	// A shorter stream diverges where it ends.
	d = Diff(a, Marshal(base[:2]))
	if d.Identical || d.Index != 2 || d.A == nil || d.B != nil {
		t.Fatalf("short stream: %+v", d)
	}

	// A corrupt stream carries the decode error.
	corrupt := append([]byte{}, a...)
	corrupt = corrupt[:len(corrupt)-1]
	d = Diff(a, corrupt)
	if d.Identical || d.ErrB == nil {
		t.Fatalf("corrupt stream: %+v", d)
	}

	// Header-level failure.
	if d := Diff(a, []byte("junk")); d.Identical || d.ErrB == nil {
		t.Fatalf("bad header: %+v", d)
	}
}

func TestDiffString(t *testing.T) {
	base := sampleRecords()
	if s := Diff(Marshal(base), Marshal(base)).String(); s != "identical (7 records)" {
		t.Fatalf("identical string = %q", s)
	}
	mod := append([]Record{}, base...)
	mod[1].AP = 9
	s := Diff(Marshal(base), Marshal(mod)).String()
	for _, want := range []string{"record 1", "im-share", "ap=3", "ap=9"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Fatalf("diff string %q missing %q", s, want)
		}
	}
}

func TestRecordString(t *testing.T) {
	r := rec(1500, 4, KindIMHop, 2, 7, HopCausePack)
	if got := r.String(); got != "t=1500 ap=4 im-hop a0=2 a1=7 a2=3" {
		t.Fatalf("Record.String() = %q", got)
	}
}

// The record path must not allocate in either mode.
func TestRecordPathZeroAllocs(t *testing.T) {
	wrap := NewRing(64)
	spill := NewRing(64)
	spill.SpillTo(io.Discard)
	// Pre-warm the spill encoder so its buffer is grown.
	for i := 0; i < 256; i++ {
		spill.Record(rec(int64(i), 0, KindSimFire))
	}
	for name, r := range map[string]*Ring{"wrap": wrap, "spill": spill} {
		allocs := testing.AllocsPerRun(1000, func() {
			r.Record(rec(1, 2, KindWifiTX, WifiFrameData, 100))
		})
		if allocs != 0 {
			t.Errorf("%s-mode Record: %.1f allocs/op, want 0", name, allocs)
		}
	}
}
