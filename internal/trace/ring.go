package trace

import (
	"fmt"
	"io"
)

// DefaultRingSize is the ring capacity used when callers pass a
// non-positive size: 8192 records ≈ 512 KiB of buffer, a few spills
// per million records.
const DefaultRingSize = 8192

// RingStats is a counter snapshot of a Ring.
type RingStats struct {
	// Recorded counts every Record call.
	Recorded uint64
	// Dropped counts records overwritten before being read (wrap mode)
	// or discarded after a spill-write failure.
	Dropped uint64
	// Spills counts buffer flushes to the spill writer.
	Spills uint64
}

// Ring is the canonical Recorder: a fixed-capacity buffer of Record
// values with two modes.
//
// In wrap mode (no spill writer) the ring keeps the most recent
// records, overwriting the oldest — the classic flight recorder for
// "what led up to this?" forensics; Snapshot and WriteTo export the
// retained window. In spill mode (SpillTo) a full buffer is encoded
// and flushed to the writer, so the stream on disk is complete — the
// shape runner capture and cellfi-trace diff rely on.
//
// The record path never allocates in either mode: wrap mode is a
// single slot store, and spill mode reuses one encode buffer for the
// life of the stream. A Ring is owned by one goroutine, like the
// sim.Engine it instruments.
type Ring struct {
	buf   []Record
	start int // index of the oldest retained record (wrap mode)
	n     int // retained (wrap) or pending-spill (spill) record count

	w             io.Writer
	enc           Encoder
	headerWritten bool
	err           error

	stats RingStats
}

// NewRing returns a wrap-mode ring retaining the last `capacity`
// records (DefaultRingSize when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Ring{buf: make([]Record, capacity)}
}

// SpillTo switches the ring to spill mode: whenever the buffer fills,
// its contents are encoded and written to w (the stream header is
// written first). Call before recording; switching modes mid-stream is
// not supported.
func (r *Ring) SpillTo(w io.Writer) {
	r.w = w
}

// Record implements Recorder.
func (r *Ring) Record(rec Record) {
	r.stats.Recorded++
	if r.n == len(r.buf) {
		if r.w != nil {
			r.flush()
		} else {
			// Wrap: overwrite the oldest.
			r.start++
			if r.start == len(r.buf) {
				r.start = 0
			}
			r.n--
			r.stats.Dropped++
		}
	}
	i := r.start + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = rec
	r.n++
}

// flush encodes the pending records and writes them to the spill
// writer. After a write failure the ring keeps counting but discards
// records (the first error is retained for Close/Err).
func (r *Ring) flush() {
	if r.n == 0 {
		return
	}
	if r.err != nil {
		r.stats.Dropped += uint64(r.n)
		r.n = 0
		return
	}
	r.enc.ResetBuf()
	if !r.headerWritten {
		r.enc.AppendHeader()
		r.headerWritten = true
	}
	for i := 0; i < r.n; i++ {
		r.enc.Append(r.buf[i])
	}
	r.n = 0
	r.stats.Spills++
	if _, err := r.w.Write(r.enc.Bytes()); err != nil {
		r.err = fmt.Errorf("trace: spill write: %w", err)
	}
}

// Flush forces pending records out to the spill writer (no-op in wrap
// mode) and returns the first write error, if any.
func (r *Ring) Flush() error {
	if r.w != nil {
		// An empty stream still gets a header so the file decodes.
		if !r.headerWritten && r.err == nil {
			r.enc.AppendHeader()
			r.headerWritten = true
			if _, err := r.w.Write(r.enc.Bytes()); err != nil {
				r.err = fmt.Errorf("trace: spill write: %w", err)
			}
			r.enc.ResetBuf()
		}
		r.flush()
	}
	return r.err
}

// Close flushes and, when the spill writer is an io.Closer (the usual
// *os.File), closes it.
func (r *Ring) Close() error {
	err := r.Flush()
	if c, ok := r.w.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: close spill: %w", cerr)
		}
	}
	return err
}

// Err returns the first spill-write error, if any.
func (r *Ring) Err() error { return r.err }

// Stats returns a snapshot of the ring's counters.
func (r *Ring) Stats() RingStats { return r.stats }

// Snapshot returns the retained records, oldest first. In spill mode
// it returns only records not yet flushed.
func (r *Ring) Snapshot() []Record {
	out := make([]Record, r.n)
	for i := 0; i < r.n; i++ {
		j := r.start + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		out[i] = r.buf[j]
	}
	return out
}

// WriteTo encodes the retained window as a complete stream (header
// plus records) to w — the wrap-mode export path. It implements
// io.WriterTo.
func (r *Ring) WriteTo(w io.Writer) (int64, error) {
	data := Marshal(r.Snapshot())
	n, err := w.Write(data)
	return int64(n), err
}
