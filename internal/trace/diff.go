package trace

import (
	"fmt"
	"io"
)

// Replay-diff: the byte-determinism contract says two runs of the same
// seeded scenario produce identical traces. When they do not, Diff
// localizes the divergence to the first differing record — timestamp,
// AP and kind — instead of a boolean test failure.

// DiffResult reports how two streams compare.
type DiffResult struct {
	// Identical is true when both streams decode cleanly to the same
	// record sequence.
	Identical bool
	// Index is the position of the first divergence (record index in
	// both streams). Valid only when !Identical.
	Index int
	// A and B are the diverging records; nil means that stream ended
	// (or failed to decode) at Index.
	A, B *Record
	// CountA and CountB are the total records decoded from each
	// stream (up to the divergence point).
	CountA, CountB int
	// ErrA and ErrB carry decode errors, if a stream was malformed.
	ErrA, ErrB error
}

// String renders the result in the form cellfi-trace diff prints.
func (d DiffResult) String() string {
	if d.Identical {
		return fmt.Sprintf("identical (%d records)", d.CountA)
	}
	describe := func(r *Record, err error) string {
		switch {
		case err != nil:
			return fmt.Sprintf("decode error: %v", err)
		case r == nil:
			return "stream ended"
		default:
			return r.String()
		}
	}
	return fmt.Sprintf("first divergence at record %d:\n  a: %s\n  b: %s",
		d.Index, describe(d.A, d.ErrA), describe(d.B, d.ErrB))
}

// Diff compares two encoded streams record by record and returns the
// first divergence. Streams of different lengths diverge at the end of
// the shorter one; a stream that fails to decode diverges at the bad
// record with the error attached.
func Diff(a, b []byte) DiffResult {
	da, errA := NewDecoder(a)
	db, errB := NewDecoder(b)
	res := DiffResult{ErrA: errA, ErrB: errB}
	if errA != nil || errB != nil {
		return res
	}
	for i := 0; ; i++ {
		ra, ea := da.Next()
		rb, eb := db.Next()
		res.CountA, res.CountB = da.Count(), db.Count()
		if ea == io.EOF && eb == io.EOF {
			res.Identical = true
			return res
		}
		res.Index = i
		if ea != nil || eb != nil {
			if ea == nil {
				res.A = &ra
			} else if ea != io.EOF {
				res.ErrA = ea
			}
			if eb == nil {
				res.B = &rb
			} else if eb != io.EOF {
				res.ErrB = eb
			}
			return res
		}
		if ra != rb {
			res.A, res.B = &ra, &rb
			return res
		}
	}
}
