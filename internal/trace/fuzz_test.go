package trace

import (
	"io"
	"testing"
)

// FuzzDecode shakes the binary decoder with arbitrary bytes: any input
// — truncated, bit-flipped, version-skewed, adversarial — must yield a
// clean decode or a classified error, never a panic, unbounded loop or
// out-of-bounds read. Wired into `make fuzz-short`.
func FuzzDecode(f *testing.F) {
	// Seeds: a real stream, its header alone, an empty input, a
	// version skew, and a few structurally interesting corruptions.
	valid := Marshal(sampleRecords())
	f.Add(valid)
	f.Add(valid[:headerLen])
	f.Add([]byte{})
	f.Add([]byte("CFTR\x02"))                                                                           // future version
	f.Add([]byte("CFTR\x01\x00\x00"))                                                                   // record cut at AP
	f.Add(append([]byte("CFTR\x01"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff)) // overlong varint
	f.Add(valid[:len(valid)-2])

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDecoder(data)
		if err != nil {
			return
		}
		n := 0
		for {
			_, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return
			}
			n++
			if n > len(data) {
				// Every record consumes at least one byte past the
				// header; more records than bytes means the decoder
				// stopped advancing.
				t.Fatalf("decoded %d records from %d bytes", n, len(data))
			}
		}
		// A clean decode must re-encode to a stream that decodes to
		// the same records (canonical round-trip).
		recs, err := Decode(data)
		if err != nil {
			t.Fatalf("Decode disagreed with Decoder: %v", err)
		}
		again, err := Decode(Marshal(recs))
		if err != nil || len(again) != len(recs) {
			t.Fatalf("re-encode round trip failed: %d vs %d records, %v", len(again), len(recs), err)
		}
		for i := range recs {
			if recs[i] != again[i] {
				t.Fatalf("record %d changed across round trip: %+v vs %+v", i, recs[i], again[i])
			}
		}
	})
}
