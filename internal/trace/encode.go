package trace

import "encoding/binary"

// Wire format (version 1):
//
//	header:  'C' 'F' 'T' 'R'  version-byte
//	record:  svarint(T - prevT)   delta from the previous record's T
//	         byte(kind)           nonzero
//	         svarint(AP)
//	         byte(N)              0..MaxArgs
//	         N × svarint(arg)
//
// svarint is zigzag-mapped unsigned varint (encoding/binary's uvarint
// layout). Delta-coding the timestamps keeps densely ordered streams
// (the common case: nondecreasing virtual time) to one or two bytes
// per record for the clock; zigzag keeps out-of-order clocks (mixed
// layers) legal rather than corrupting the stream.

// headerLen is the encoded header size: magic plus version byte.
const headerLen = 5

var magic = [4]byte{'C', 'F', 'T', 'R'}

// zigzag maps a signed value to an unsigned one with small absolute
// values staying small.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Encoder serializes records into an internal, reusable buffer. The
// zero value is ready to use. An Encoder carries the timestamp-delta
// state of one stream: keep one per stream, and only reset the buffer
// (not the encoder) between spills.
type Encoder struct {
	buf   []byte
	prevT int64
}

// AppendHeader appends the stream header. Call it once, before the
// first record of a stream.
func (e *Encoder) AppendHeader() {
	e.buf = append(e.buf, magic[0], magic[1], magic[2], magic[3], Version)
}

// Append serializes one record onto the buffer.
func (e *Encoder) Append(r Record) {
	e.buf = binary.AppendUvarint(e.buf, zigzag(r.T-e.prevT))
	e.prevT = r.T
	e.buf = append(e.buf, byte(r.Kind))
	e.buf = binary.AppendUvarint(e.buf, zigzag(int64(r.AP)))
	n := int(r.N)
	if n > MaxArgs {
		n = MaxArgs
	}
	e.buf = append(e.buf, byte(n))
	for i := 0; i < n; i++ {
		e.buf = binary.AppendUvarint(e.buf, zigzag(r.Args[i]))
	}
}

// Bytes returns the encoded buffer. The slice is invalidated by the
// next Append or ResetBuf.
func (e *Encoder) Bytes() []byte { return e.buf }

// ResetBuf empties the buffer while keeping its capacity and the
// stream's delta state, so a spilling ring reuses one allocation for
// the life of the stream.
func (e *Encoder) ResetBuf() { e.buf = e.buf[:0] }

// Marshal encodes a whole stream (header plus records) in one buffer —
// the convenience path for tests and snapshot dumps.
func Marshal(recs []Record) []byte {
	var e Encoder
	e.AppendHeader()
	for _, r := range recs {
		e.Append(r)
	}
	return e.Bytes()
}
