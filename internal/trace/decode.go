package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Decode errors. Every malformed input — truncated, corrupted,
// version-skewed — yields one of these (wrapped with position
// context); the decoder never panics, which FuzzDecode enforces.
var (
	// ErrHeader: the stream does not start with the trace magic.
	ErrHeader = errors.New("trace: bad header magic")
	// ErrVersion: the stream's format version is not this decoder's.
	ErrVersion = errors.New("trace: unsupported stream version")
	// ErrTruncated: the stream ends mid-record.
	ErrTruncated = errors.New("trace: truncated stream")
	// ErrCorrupt: a structurally invalid record (zero kind, oversized
	// arg count, overlong varint).
	ErrCorrupt = errors.New("trace: corrupt record")
)

// Decoder walks an encoded stream record by record.
type Decoder struct {
	data  []byte
	pos   int
	prevT int64
	count int
}

// NewDecoder validates the header and returns a decoder positioned at
// the first record.
func NewDecoder(data []byte) (*Decoder, error) {
	if len(data) < headerLen {
		if len(data) > 0 && !magicPrefix(data) {
			return nil, ErrHeader
		}
		return nil, fmt.Errorf("%w: %d-byte stream is shorter than the header", ErrTruncated, len(data))
	}
	if !magicPrefix(data) {
		return nil, ErrHeader
	}
	if v := data[4]; v != Version {
		return nil, fmt.Errorf("%w: stream version %d, decoder speaks %d", ErrVersion, v, Version)
	}
	return &Decoder{data: data, pos: headerLen}, nil
}

func magicPrefix(data []byte) bool {
	n := len(data)
	if n > 4 {
		n = 4
	}
	for i := 0; i < n; i++ {
		if data[i] != magic[i] {
			return false
		}
	}
	return true
}

// Count returns how many records have been decoded so far.
func (d *Decoder) Count() int { return d.count }

// varint reads one zigzag varint, classifying failures.
func (d *Decoder) varint() (int64, error) {
	u, n := binary.Uvarint(d.data[d.pos:])
	switch {
	case n > 0:
		d.pos += n
		return unzigzag(u), nil
	case n == 0:
		return 0, fmt.Errorf("%w: varint cut short at byte %d", ErrTruncated, d.pos)
	default:
		return 0, fmt.Errorf("%w: overlong varint at byte %d", ErrCorrupt, d.pos)
	}
}

// Next decodes one record. It returns io.EOF at a clean end of stream
// and a wrapped ErrTruncated/ErrCorrupt on malformed input.
func (d *Decoder) Next() (Record, error) {
	var r Record
	if d.pos >= len(d.data) {
		return r, io.EOF
	}
	delta, err := d.varint()
	if err != nil {
		return r, err
	}
	d.prevT += delta
	r.T = d.prevT
	if d.pos >= len(d.data) {
		return r, fmt.Errorf("%w: record %d ends before its kind byte", ErrTruncated, d.count)
	}
	r.Kind = Kind(d.data[d.pos])
	d.pos++
	if r.Kind == 0 {
		return r, fmt.Errorf("%w: record %d has reserved kind 0", ErrCorrupt, d.count)
	}
	ap, err := d.varint()
	if err != nil {
		return r, err
	}
	if ap < -(1<<31) || ap >= 1<<31 {
		return r, fmt.Errorf("%w: record %d AP %d out of int32 range", ErrCorrupt, d.count, ap)
	}
	r.AP = int32(ap)
	if d.pos >= len(d.data) {
		return r, fmt.Errorf("%w: record %d ends before its arg count", ErrTruncated, d.count)
	}
	n := d.data[d.pos]
	d.pos++
	if n > MaxArgs {
		return r, fmt.Errorf("%w: record %d claims %d args (max %d)", ErrCorrupt, d.count, n, MaxArgs)
	}
	r.N = n
	for i := 0; i < int(n); i++ {
		r.Args[i], err = d.varint()
		if err != nil {
			return r, err
		}
	}
	d.count++
	return r, nil
}

// Decode parses a whole stream into memory.
func Decode(data []byte) ([]Record, error) {
	d, err := NewDecoder(data)
	if err != nil {
		return nil, err
	}
	var out []Record
	for {
		r, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}

// ReadFile decodes a trace file from disk.
func ReadFile(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	recs, err := Decode(data)
	if err != nil {
		return recs, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}
