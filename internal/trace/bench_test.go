package trace

import (
	"io"
	"testing"
)

// BenchmarkRingRecordWrap is the raw record path in wrap mode: one
// slot store per op. This is the per-event cost an instrumented hot
// loop pays on top of the nil check; see BENCH_trace.json.
func BenchmarkRingRecordWrap(b *testing.B) {
	r := NewRing(8192)
	rc := Record{T: 1, AP: 3, Kind: KindSimFire}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc.T = int64(i)
		r.Record(rc)
	}
}

// BenchmarkRingRecordSpill includes the amortized encode+write cost of
// spilling (to io.Discard, isolating CPU from disk).
func BenchmarkRingRecordSpill(b *testing.B) {
	r := NewRing(8192)
	r.SpillTo(io.Discard)
	rc := Record{T: 1, AP: 3, Kind: KindIMHop, N: 3, Args: [MaxArgs]int64{-1, 5, HopCauseBucket}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc.T = int64(i)
		r.Record(rc)
	}
}

// BenchmarkEncodeRecord measures the codec alone.
func BenchmarkEncodeRecord(b *testing.B) {
	var e Encoder
	e.AppendHeader()
	rc := Record{T: 1, AP: 3, Kind: KindIMShare, N: 3, Args: [MaxArgs]int64{2, 0x1555, 7}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc.T = int64(i)
		e.Append(rc)
		if len(e.Bytes()) > 1<<20 {
			e.ResetBuf()
		}
	}
}

// BenchmarkDecodeRecord measures the decode side over a pre-encoded
// stream.
func BenchmarkDecodeRecord(b *testing.B) {
	recs := make([]Record, 4096)
	for i := range recs {
		recs[i] = Record{T: int64(i) * 1000, AP: int32(i % 16), Kind: KindWifiTX, N: 2,
			Args: [MaxArgs]int64{WifiFrameData, 1500000}}
	}
	data := Marshal(recs)
	b.ReportAllocs()
	b.ResetTimer()
	d, _ := NewDecoder(data)
	for i := 0; i < b.N; i++ {
		if _, err := d.Next(); err == io.EOF {
			d, _ = NewDecoder(data)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}
