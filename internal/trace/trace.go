// Package trace is the repo's flight recorder: a software stand-in for
// the QXDM modem traces and SDR probes the paper's evaluation plane was
// built on. Layers emit small, typed, fixed-size Records through a
// Recorder; the Ring recorder buffers them allocation-free and can
// spill the full stream to disk in a compact varint+delta binary
// format that cmd/cellfi-trace decodes, filters, renders and diffs.
//
// # The zero-cost contract
//
// Instrumented hot loops hold a Recorder that is nil by default. The
// emit site is always
//
//	if rec != nil {
//		rec.Record(trace.Record{...})
//	}
//
// so with tracing off the only cost is one predictable branch, and
// with tracing on the cost is one interface call plus one 64-byte
// store into the ring — no heap allocation either way. BENCH_trace.json
// (see bench_artifact_test.go at the repo root) enforces both halves:
// the sim event loop stays 0 allocs/op with the recorder off *and* on.
//
// # Record semantics
//
// A Record is (timestamp, AP, kind, args). Timestamps are nanoseconds
// in whatever clock the emitting layer runs on — virtual sim time for
// engine-driven layers, epoch time for the fluid netsim, caller-passed
// wall time for the lease FSM. Within one stream the clock is
// consistent, which is all the delta encoder and the diff tool need.
// AP identifies the cell/access point a record belongs to (-1 when not
// applicable). Args are kind-specific; their meaning is documented on
// each Kind constant.
package trace

import "fmt"

// Version is the stream format version. Decoders reject any other
// value: the format has no cross-version compatibility machinery, and
// a skewed reader erroring out beats one misparsing silently. Bump it
// whenever the header or record wire layout changes, including raising
// MaxArgs (see DESIGN.md "Trace format and versioning").
const Version = 1

// MaxArgs is the per-record argument capacity. Records are
// self-describing (they carry their own arg count), so adding args to
// a kind — up to MaxArgs — is not a version bump; growing the array
// itself is.
const MaxArgs = 4

// Kind identifies a record type. Zero is reserved as invalid so a
// zeroed buffer never decodes as records. Decoders accept kinds they
// do not know (the record layout is self-describing), which lets an
// old cellfi-trace at least dump streams from a newer writer.
type Kind uint8

const (
	// KindSimFire: the event engine dispatched a scheduled callback.
	// T is the virtual fire time; no args.
	KindSimFire Kind = 1 + iota
	// KindLTEGrant: one decoded PDCCH grant in a downlink subframe.
	// Args: RNTI, subchannel bitmask, transport bits granted.
	KindLTEGrant
	// KindLTECQI: one client's aperiodic CQI report.
	// Args: client ID, wideband CQI.
	KindLTECQI
	// KindWifiTX: a frame went on the air.
	// Args: frame kind (WifiFrame*), duration ns.
	KindWifiTX
	// KindWifiFail: a TXOP attempt failed (collision, undecodable, out
	// of range). Args: retry count after the failure, contention
	// window at failure time, 1 if the aggregate was dropped.
	KindWifiFail
	// KindWifiBackoff: an AP entered contention.
	// Args: drawn backoff slots, contention window.
	KindWifiBackoff
	// KindIMShare: an interference-management epoch completed.
	// Args: target share, held-subchannel bitmask, held count.
	KindIMShare
	// KindIMHop: the IM controller changed a subchannel holding.
	// Args: from subchannel (-1 = none), to subchannel (-1 = none),
	// cause (HopCause*).
	KindIMHop
	// KindLease: a PAWS lease FSM transition.
	// Args: from state, to state, reason code, channel (-1 = none).
	// State and reason codes are core.LeaseState values and
	// core.LeaseReasonCode values respectively.
	KindLease
	// KindPAWSQuery: a PAWS JSON-RPC call completed (after in-call
	// retries). Args: method code (PAWSMethod*), error class (-1 =
	// success, else paws.ErrorClass), attempts, and — when the client
	// runs with an ordered endpoint list — the endpoint index that
	// served the final attempt (0 = primary).
	KindPAWSQuery
	// KindLeaseBudget: the regulatory transmit budget after a
	// successful database contact (emitted by the lease FSM alongside
	// every transition into Granted). Args: channel, lease expiry
	// (ns), vacate-by instant (ns) = min(expiry, contact + deadline).
	// The invariant verifier replays these to bound every later
	// transmission.
	KindLeaseBudget
	// KindRadioTX: the access point's radio was on the air. Args:
	// channel. Scenario harnesses emit one per AP per step while the
	// radio gate is open; it is the transmission evidence the
	// regulatory invariants are checked against.
	KindRadioTX
	// KindIncumbent: a primary user arrived on or departed from a
	// channel whose protection contour covers the whole scenario
	// world (wireless-mic storms). Args: channel, 1 = arrive / 0 =
	// depart, incumbent kind (spectrum.IncumbentKind). AP is -1.
	KindIncumbent
	// KindAPLife: an access point crashed (args[0] = 0) or restarted
	// cold (args[0] = 1). A crash wipes the radio and lease state; the
	// verifier resets its per-AP model accordingly.
	KindAPLife
	// KindMetroEpoch: one metro-world epoch fold. Args: attached UEs,
	// handovers this epoch, delivered bits this epoch, sum of attached
	// UEs' CQI indices. AP is -1. All four are order-invariant integer
	// aggregates, so the record is byte-identical at any shard count.
	KindMetroEpoch
)

// Wi-Fi frame kind codes for KindWifiTX args[0].
const (
	WifiFrameRTS int64 = iota
	WifiFrameCTS
	WifiFrameData
	WifiFrameAck
)

// IM hop cause codes for KindIMHop args[2].
const (
	// HopCauseBucket: the subchannel's exponential bucket ran out.
	HopCauseBucket int64 = iota
	// HopCauseShareGrow / HopCauseShareShrink: share reconciliation.
	HopCauseShareGrow
	HopCauseShareShrink
	// HopCausePack: the channel re-use packing heuristic.
	HopCausePack
	// HopCauseAcquire / HopCauseRelease: coordinated (re)assignment.
	HopCauseAcquire
	HopCauseRelease
)

// PAWS method codes for KindPAWSQuery args[0].
const (
	PAWSMethodInit int64 = iota
	PAWSMethodGetSpectrum
	PAWSMethodNotify
	PAWSMethodOther
)

var kindNames = map[Kind]string{
	KindSimFire:     "sim-fire",
	KindLTEGrant:    "lte-grant",
	KindLTECQI:      "lte-cqi",
	KindWifiTX:      "wifi-tx",
	KindWifiFail:    "wifi-fail",
	KindWifiBackoff: "wifi-backoff",
	KindIMShare:     "im-share",
	KindIMHop:       "im-hop",
	KindLease:       "lease",
	KindPAWSQuery:   "paws-query",
	KindLeaseBudget: "lease-budget",
	KindRadioTX:     "radio-tx",
	KindIncumbent:   "incumbent",
	KindAPLife:      "ap-life",
	KindMetroEpoch:  "metro-epoch",
}

// String returns the stable dump/filter name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind resolves a dump/filter name back to its Kind. It reports
// false for names it does not know.
func ParseKind(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return k, true
		}
	}
	return 0, false
}

// Record is one flight-recorder event. It is a plain 64-byte value:
// building one and passing it to Recorder.Record never allocates.
type Record struct {
	// T is the record timestamp in nanoseconds of the emitting layer's
	// clock (virtual time, epoch time, or wall time — consistent
	// within a stream).
	T int64
	// Args are the kind-specific fields; only Args[:N] are meaningful
	// and encoded.
	Args [MaxArgs]int64
	// AP is the cell/access-point ID the record belongs to, -1 when
	// not applicable.
	AP int32
	// Kind is the record type.
	Kind Kind
	// N is the number of valid Args.
	N uint8
}

// String renders the record in the stable single-line dump form.
func (r Record) String() string {
	s := fmt.Sprintf("t=%d ap=%d %s", r.T, r.AP, r.Kind)
	for i := 0; i < int(r.N) && i < MaxArgs; i++ {
		s += fmt.Sprintf(" a%d=%d", i, r.Args[i])
	}
	return s
}

// Recorder receives flight-recorder events. Implementations must not
// retain the record past the call (it is reused by value) and must not
// allocate on the record path; Ring is the canonical implementation.
// Recorders are not required to be goroutine-safe — each simulation
// run owns its recorder, mirroring sim.Engine's threading model.
type Recorder interface {
	Record(Record)
}
