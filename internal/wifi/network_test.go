package wifi

import (
	"testing"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/phy"
	"cellfi/internal/propagation"
	"cellfi/internal/sim"
)

// quietModel removes shadowing so topologies behave geometrically.
func quietModel(seed int64) *propagation.Model {
	m := propagation.DefaultUrban(seed)
	m.ShadowSigmaDB = 0
	return m
}

// run builds a network, applies setup, keeps all queues backlogged, and
// returns it after d of virtual time.
func run(t *testing.T, params Params, d time.Duration, setup func(n *Network)) *Network {
	t.Helper()
	eng := sim.NewEngine(1)
	n := NewNetwork(eng, quietModel(1), params)
	setup(n)
	// Keep queues topped up: refill every 100 ms.
	top := func() {
		for _, ap := range n.APs() {
			for _, c := range ap.Clients() {
				if ap.QueuedBits(c) < 1<<20 {
					ap.Enqueue(c, 1<<26)
				}
			}
		}
	}
	top()
	eng.EveryAt(0, 100*time.Millisecond, top)
	eng.Run(d)
	return n
}

func throughputMbps(n *Network, ap, cli int, d time.Duration) float64 {
	a := n.APs()[ap]
	return float64(a.DeliveredBits(a.Clients()[cli])) / d.Seconds() / 1e6
}

func TestSingleLinkThroughput(t *testing.T) {
	const dur = 2 * time.Second
	n := run(t, Params11ac20(), dur, func(n *Network) {
		ap := n.AddAP(1, geo.Point{X: 0, Y: 0}, 20)
		n.AddClient(100, geo.Point{X: 30, Y: 0}, 20, ap)
	})
	got := throughputMbps(n, 0, 0, dur)
	// A close-in 802.11ac link with 64 KB aggregates should sustain
	// tens of Mbps (MCS 9 PHY ~87 Mbps minus contention overhead).
	if got < 30 {
		t.Fatalf("single close link = %.1f Mbps, want > 30", got)
	}
	if n.Drops != 0 {
		t.Fatalf("clean link dropped %d aggregates", n.Drops)
	}
}

func TestRateAdaptsToDistance(t *testing.T) {
	const dur = 2 * time.Second
	near := run(t, Params11af20(), dur, func(n *Network) {
		ap := n.AddAP(1, geo.Point{}, 30)
		n.AddClient(100, geo.Point{X: 50, Y: 0}, 30, ap)
	})
	far := run(t, Params11af20(), dur, func(n *Network) {
		ap := n.AddAP(1, geo.Point{}, 30)
		n.AddClient(100, geo.Point{X: 700, Y: 0}, 30, ap)
	})
	nearT := throughputMbps(near, 0, 0, dur)
	farT := throughputMbps(far, 0, 0, dur)
	if farT <= 0 {
		t.Fatal("700 m 802.11af link starved entirely")
	}
	if nearT < 3*farT {
		t.Fatalf("rate adaptation missing: near %.1f vs far %.1f Mbps", nearT, farT)
	}
}

func TestOutOfRangeClientStarves(t *testing.T) {
	const dur = time.Second
	n := run(t, Params11af(), dur, func(n *Network) {
		ap := n.AddAP(1, geo.Point{}, 30)
		n.AddClient(100, geo.Point{X: 5000, Y: 0}, 30, ap)
	})
	if got := throughputMbps(n, 0, 0, dur); got != 0 {
		t.Fatalf("5 km client got %.2f Mbps, want 0", got)
	}
	if n.Drops == 0 {
		t.Fatal("undeliverable traffic should be dropped after retries")
	}
}

func TestCoLocatedPairsShareFairly(t *testing.T) {
	const dur = 2 * time.Second
	n := run(t, Params11ac20(), dur, func(n *Network) {
		ap1 := n.AddAP(1, geo.Point{X: 0, Y: 0}, 20)
		n.AddClient(100, geo.Point{X: 20, Y: 0}, 20, ap1)
		ap2 := n.AddAP(2, geo.Point{X: 0, Y: 40}, 20)
		n.AddClient(101, geo.Point{X: 20, Y: 40}, 20, ap2)
	})
	t1 := throughputMbps(n, 0, 0, dur)
	t2 := throughputMbps(n, 1, 0, dur)
	if t1 == 0 || t2 == 0 {
		t.Fatalf("starvation between co-located pairs: %.1f / %.1f", t1, t2)
	}
	ratio := t1 / t2
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("unfair share between equal contenders: %.1f vs %.1f Mbps", t1, t2)
	}
	// CSMA serializes them: the sum must be well below 2x an isolated
	// link but in the same ballpark as one.
	solo := run(t, Params11ac20(), dur, func(n *Network) {
		ap := n.AddAP(1, geo.Point{}, 20)
		n.AddClient(100, geo.Point{X: 20, Y: 0}, 20, ap)
	})
	soloT := throughputMbps(solo, 0, 0, dur)
	if t1+t2 > 1.2*soloT {
		t.Fatalf("two contenders sum %.1f > isolated %.1f: medium not shared", t1+t2, soloT)
	}
	if t1+t2 < 0.6*soloT {
		t.Fatalf("contention overhead too brutal: sum %.1f vs isolated %.1f", t1+t2, soloT)
	}
}

// Hidden terminals: two APs out of carrier-sense range transmitting to
// clients in the middle. Without RTS/CTS the middle suffers constant
// collisions; RTS/CTS recovers much of it. This is the long-link
// pathology of Section 3.2.
func TestHiddenTerminal(t *testing.T) {
	const dur = 2 * time.Second
	build := func(rts bool) *Network {
		p := Params11af20()
		p.RTSCTS = rts
		return run(t, p, dur, func(n *Network) {
			// APs 1 km apart: beyond the ~785 m carrier-sense
			// range at 30 dBm, so they cannot hear each other.
			// Both clients sit in the middle, ~500 m from each AP,
			// where the two signals are equally strong and any
			// overlap is fatal — but a CTS from a client does
			// reach the foreign AP and set its NAV.
			ap1 := n.AddAP(1, geo.Point{X: 0, Y: 0}, 30)
			n.AddClient(100, geo.Point{X: 500, Y: 30}, 30, ap1)
			ap2 := n.AddAP(2, geo.Point{X: 1000, Y: 0}, 30)
			n.AddClient(101, geo.Point{X: 500, Y: -30}, 30, ap2)
		})
	}
	with := build(true)
	without := build(false)
	sumWith := throughputMbps(with, 0, 0, dur) + throughputMbps(with, 1, 0, dur)
	sumWithout := throughputMbps(without, 0, 0, dur) + throughputMbps(without, 1, 0, dur)
	if sumWithout >= 0.8*sumWith {
		t.Fatalf("RTS/CTS should help hidden terminals: with %.2f vs without %.2f Mbps",
			sumWith, sumWithout)
	}
}

// Exposed terminals: APs hear each other but serve clients on opposite
// sides, so their transmissions would not actually collide. CSMA
// needlessly serializes them and the pair achieves roughly half of the
// two independent links — CellFi's motivation for reservation instead
// of carrier sense.
func TestExposedTerminal(t *testing.T) {
	const dur = 2 * time.Second
	pairApart := func(apart float64) float64 {
		n := run(t, Params11af20(), dur, func(n *Network) {
			ap1 := n.AddAP(1, geo.Point{X: 0, Y: 0}, 30)
			n.AddClient(100, geo.Point{X: -400, Y: 0}, 30, ap1) // west
			ap2 := n.AddAP(2, geo.Point{X: apart, Y: 0}, 30)
			n.AddClient(101, geo.Point{X: apart + 400, Y: 0}, 30, ap2) // east
		})
		return throughputMbps(n, 0, 0, dur) + throughputMbps(n, 1, 0, dur)
	}
	exposed := pairApart(400)     // APs sense each other; clients point away
	independent := pairApart(1e5) // effectively separate networks
	if exposed > 0.7*independent {
		t.Fatalf("exposed terminals should serialize: exposed %.2f vs independent %.2f Mbps",
			exposed, independent)
	}
}

func TestQueueConservation(t *testing.T) {
	eng := sim.NewEngine(2)
	n := NewNetwork(eng, quietModel(2), Params11ac20())
	ap := n.AddAP(1, geo.Point{}, 20)
	cli := n.AddClient(100, geo.Point{X: 25, Y: 0}, 20, ap)
	const bits = int64(4 << 20)
	ap.Enqueue(cli, bits)
	eng.Run(5 * time.Second)
	if got := ap.DeliveredBits(cli) + ap.QueuedBits(cli); got != bits {
		t.Fatalf("bits not conserved: delivered+queued = %d, enqueued %d", got, bits)
	}
	if ap.QueuedBits(cli) != 0 {
		t.Fatalf("%d bits still queued on an idle clean channel", ap.QueuedBits(cli))
	}
}

func TestEnqueueOnNonAPPanics(t *testing.T) {
	eng := sim.NewEngine(3)
	n := NewNetwork(eng, quietModel(3), Params11ac20())
	ap := n.AddAP(1, geo.Point{}, 20)
	cli := n.AddClient(100, geo.Point{X: 10, Y: 0}, 20, ap)
	defer func() {
		if recover() == nil {
			t.Fatal("Enqueue on client should panic")
		}
	}()
	cli.Enqueue(ap, 100)
}

func TestAPRoundRobinsClients(t *testing.T) {
	const dur = 2 * time.Second
	n := run(t, Params11ac20(), dur, func(n *Network) {
		ap := n.AddAP(1, geo.Point{}, 20)
		n.AddClient(100, geo.Point{X: 30, Y: 0}, 20, ap)
		n.AddClient(101, geo.Point{X: 0, Y: 30}, 20, ap)
		n.AddClient(102, geo.Point{X: -30, Y: 0}, 20, ap)
	})
	var min, max float64 = 1e18, 0
	for i := 0; i < 3; i++ {
		tp := throughputMbps(n, 0, i, dur)
		if tp < min {
			min = tp
		}
		if tp > max {
			max = tp
		}
	}
	if min <= 0 || min/max < 0.7 {
		t.Fatalf("intra-AP sharing unfair: min %.1f max %.1f Mbps", min, max)
	}
}

func TestParamsFrameMath(t *testing.T) {
	p := Params11ac20()
	m := phy.WiFiMCS(9)
	d := p.FrameDuration(65*1024, m)
	if d <= p.PreambleDur {
		t.Fatal("frame duration must exceed preamble")
	}
	back := p.MaxPayloadForDuration(d, m)
	if back < 65*1024-100 || back > 65*1024 {
		t.Fatalf("payload round trip: %d bytes from duration %v", back, d)
	}
	if p.MaxPayloadForDuration(p.PreambleDur/2, m) != 0 {
		t.Fatal("sub-preamble duration should fit nothing")
	}
}

func BenchmarkWiFiTwoPairSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(int64(i))
		n := NewNetwork(eng, quietModel(1), Params11af20())
		ap1 := n.AddAP(1, geo.Point{}, 30)
		c1 := n.AddClient(100, geo.Point{X: 400, Y: 0}, 30, ap1)
		ap2 := n.AddAP(2, geo.Point{X: 900, Y: 0}, 30)
		c2 := n.AddClient(101, geo.Point{X: 1300, Y: 0}, 30, ap2)
		ap1.Enqueue(c1, 1<<30)
		ap2.Enqueue(c2, 1<<30)
		eng.Run(time.Second)
	}
}

func TestMACStatsAccounting(t *testing.T) {
	const dur = time.Second
	n := run(t, Params11ac20(), dur, func(n *Network) {
		ap := n.AddAP(1, geo.Point{}, 20)
		n.AddClient(100, geo.Point{X: 30, Y: 0}, 20, ap)
	})
	st := n.Stats()
	if st.TXOPs == 0 {
		t.Fatal("no TXOPs recorded")
	}
	if st.DeliveredBits == 0 {
		t.Fatal("no delivered bits recorded")
	}
	// Clean single link: negligible collisions, and control overhead
	// exists but stays a minority share with 64 KB aggregates.
	if st.CollisionRate() > 0.05 {
		t.Fatalf("collision rate %.2f on a clean link", st.CollisionRate())
	}
	if st.ControlOverhead() <= 0 || st.ControlOverhead() > 0.5 {
		t.Fatalf("control overhead %.2f out of expected range", st.ControlOverhead())
	}
	if st.DataAirtime+st.ControlAirtime > dur {
		t.Fatal("airtime exceeds wall clock on one channel")
	}
}

// The 802.11af overhead argument in numbers: with the same payloads,
// the down-clocked PHY spends a far larger airtime fraction on
// control (preambles stretch 4x, basic rate drops 4x).
func TestAfControlOverheadExceedsAc(t *testing.T) {
	const dur = time.Second
	overhead := func(p Params) float64 {
		n := run(t, p, dur, func(n *Network) {
			ap := n.AddAP(1, geo.Point{}, 20)
			n.AddClient(100, geo.Point{X: 30, Y: 0}, 20, ap)
		})
		return n.Stats().ControlOverhead()
	}
	ac := overhead(Params11ac20())
	af := overhead(Params11af20())
	if af <= ac {
		t.Fatalf("802.11af control overhead %.3f not above 802.11ac's %.3f", af, ac)
	}
}

func TestMACStatsEmpty(t *testing.T) {
	var st MACStats
	if st.CollisionRate() != 0 || st.ControlOverhead() != 0 {
		t.Fatal("zero stats should be zero rates")
	}
}
