// Package wifi implements the 802.11af/802.11ac baseline CellFi is
// compared against: a slotted CSMA/CA MAC with binary exponential
// backoff, RTS/CTS with NAV, MPDU aggregation and ideal SINR-based rate
// adaptation, driven by the shared discrete-event engine and propagation
// model. Hidden and exposed terminals emerge from carrier sensing over
// real path loss, which is exactly the long-range failure mode Section
// 3.2 of the paper demonstrates.
package wifi

import (
	"time"

	"cellfi/internal/phy"
)

// Params collects the PHY/MAC timing constants of one 802.11 flavour.
type Params struct {
	Name string
	// ChannelWidthHz is the occupied bandwidth (6 MHz for 802.11af in
	// US TV channels, 20 MHz for 802.11ac; the Figure 2 experiment
	// runs both at 20 MHz).
	ChannelWidthHz float64
	// SlotTime, SIFS, DIFS are the usual CSMA intervals.
	SlotTime, SIFS, DIFS time.Duration
	// CWMin and CWMax bound the contention window (in slots).
	CWMin, CWMax int
	// CSThresholdDBm is the preamble-detection carrier-sense level:
	// 802.11 defers on any single decodable frame, so this sits at
	// the MCS 0 decode sensitivity (noise floor + ~2 dB).
	CSThresholdDBm float64
	// EnergyDetectDBm is the threshold at which raw aggregate energy
	// (undecodable interference) marks the medium busy (-62 dBm for
	// 20 MHz in the standard).
	EnergyDetectDBm float64
	// PreambleDur is the PHY preamble+header duration prefixed to
	// every frame.
	PreambleDur time.Duration
	// BasicRateBps carries control frames (RTS/CTS/ACK).
	BasicRateBps float64
	// MaxAggregateBytes caps one A-MPDU (the paper: 65 KB).
	MaxAggregateBytes int
	// MaxTXDuration caps one transmission opportunity (802.11af
	// limits transmissions to about 4 ms; aggregation is trimmed to
	// fit).
	MaxTXDuration time.Duration
	// RTSCTS enables the RTS/CTS exchange (on in the paper's runs).
	RTSCTS bool
	// RetryLimit is the number of attempts before a frame is dropped.
	RetryLimit int
	// NoiseFigureDB at receivers.
	NoiseFigureDB float64
	// LinkMarginDB backs the selected MCS off the instantaneous SNR,
	// as every real rate-control loop does: without it, ambient
	// interference fractions of a dB above the noise floor would fail
	// every frame sent at the zero-margin "ideal" rate.
	LinkMarginDB float64
}

// sizes of control frames in bytes.
const (
	rtsBytes = 20
	ctsBytes = 14
	ackBytes = 32 // block ack
)

// Params11ac20 returns 802.11ac timing on a 20 MHz channel — the
// short-range home-Wi-Fi configuration of Figure 2.
func Params11ac20() Params {
	return Params{
		Name:              "802.11ac-20MHz",
		ChannelWidthHz:    20e6,
		SlotTime:          9 * time.Microsecond,
		SIFS:              16 * time.Microsecond,
		DIFS:              34 * time.Microsecond,
		CWMin:             15,
		CWMax:             1023,
		CSThresholdDBm:    -92,
		EnergyDetectDBm:   -62,
		PreambleDur:       40 * time.Microsecond,
		BasicRateBps:      6e6,
		MaxAggregateBytes: 65 * 1024,
		MaxTXDuration:     4 * time.Millisecond,
		RTSCTS:            true,
		RetryLimit:        7,
		NoiseFigureDB:     7,
		LinkMarginDB:      3,
	}
}

// Params11af returns 802.11af timing. The standard down-clocks the
// 802.11ac design onto TV channels, which stretches symbols (and thus
// the preamble) roughly 4x on a 6 MHz channel, and long outdoor links
// inflate the slot time to cover round-trip propagation guard.
func Params11af() Params {
	return Params{
		Name:              "802.11af-6MHz",
		ChannelWidthHz:    6e6,
		SlotTime:          20 * time.Microsecond,
		SIFS:              32 * time.Microsecond,
		DIFS:              72 * time.Microsecond,
		CWMin:             15,
		CWMax:             1023,
		CSThresholdDBm:    -97, // narrower channel, lower noise floor
		EnergyDetectDBm:   -67,
		PreambleDur:       160 * time.Microsecond,
		BasicRateBps:      1.5e6,
		MaxAggregateBytes: 65 * 1024,
		MaxTXDuration:     4 * time.Millisecond,
		RTSCTS:            true,
		RetryLimit:        7,
		NoiseFigureDB:     7,
		LinkMarginDB:      3,
	}
}

// Params11af20 returns the paper's Figure 2 variant: 802.11af MAC
// behaviour on a 20 MHz (aggregated TV channel) bandwidth, so only the
// range/topology differs from 802.11ac.
func Params11af20() Params {
	p := Params11af()
	p.Name = "802.11af-20MHz"
	p.ChannelWidthHz = 20e6
	p.CSThresholdDBm = -92
	p.EnergyDetectDBm = -62
	p.BasicRateBps = 6e6
	return p
}

// DataRateBps returns the PHY rate of an MCS on this channel width:
// spectral efficiency times bandwidth times a 0.65 OFDM utilization
// factor (data subcarriers, guard intervals, pilots). At 20 MHz this
// lands MCS 7 at ~65 Mbps, matching 802.11ac single-stream rates.
func (p Params) DataRateBps(m phy.MCS) float64 {
	return m.Efficiency * 0.65 * p.ChannelWidthHz
}

// FrameDuration returns the airtime of payload bytes at the given MCS,
// including the preamble.
func (p Params) FrameDuration(bytes int, m phy.MCS) time.Duration {
	bits := float64(bytes * 8)
	return p.PreambleDur + time.Duration(bits/p.DataRateBps(m)*float64(time.Second))
}

// ControlDuration returns the airtime of a control frame at basic rate.
func (p Params) ControlDuration(bytes int) time.Duration {
	bits := float64(bytes * 8)
	return p.PreambleDur + time.Duration(bits/p.BasicRateBps*float64(time.Second))
}

// MaxPayloadForDuration returns the largest payload (bytes) whose frame
// fits in the given airtime at the given MCS, capped by the A-MPDU
// limit.
func (p Params) MaxPayloadForDuration(d time.Duration, m phy.MCS) int {
	if d <= p.PreambleDur {
		return 0
	}
	bytes := int(p.DataRateBps(m) * (d - p.PreambleDur).Seconds() / 8)
	if bytes > p.MaxAggregateBytes {
		bytes = p.MaxAggregateBytes
	}
	return bytes
}
