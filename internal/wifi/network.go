package wifi

import (
	"fmt"
	"math/rand"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/phy"
	"cellfi/internal/propagation"
	"cellfi/internal/sim"
	"cellfi/internal/trace"
)

// frameCode maps an on-air frame kind to its trace encoding.
func frameCode(kind string) int64 {
	switch kind {
	case "rts":
		return trace.WifiFrameRTS
	case "cts":
		return trace.WifiFrameCTS
	case "data":
		return trace.WifiFrameData
	default:
		return trace.WifiFrameAck
	}
}

// Network is one Wi-Fi collision domain: a set of APs and their
// clients sharing a channel under CSMA/CA. All nodes hear each other
// through the propagation model; carrier sensing, NAV, collisions,
// hidden and exposed terminals all follow from received powers.
//
// The per-slot and per-frame paths are allocation-free in steady
// state: transmissions come from a pool with their end-of-frame
// handler bound once, overlap tracking uses reusable slices instead of
// per-frame maps, exchange continuations are functions bound per AP at
// registration, and queue accounting lives in per-client fields.
type Network struct {
	Params Params
	eng    *sim.Engine
	model  *propagation.Model
	// cache memoizes per-pair link loss: carrier sensing evaluates
	// every active transmission at every contending node on every
	// slot tick, all over a static topology, so the cached path turns
	// the CSMA inner loop into table lookups. Nodes are keyed by
	// their dense registration index.
	cache  *propagation.LinkCache
	rng    *rand.Rand
	nodes  []*Node
	aps    []*Node
	active []*transmission
	// txPool recycles transmission records. A record is pushed back
	// when its frame leaves the air; the decode continuation that
	// fires at the same instant may still read it — nothing can take
	// it from the pool before that continuation runs, because no other
	// event can be interleaved between the two (they are scheduled
	// back to back at the same timestamp).
	txPool []*transmission

	// Interference truncation: with sigRadius > 0 a transmitter farther
	// than the significance radius from a receiver contributes nothing —
	// not to carrier sense, not to SINR denominators, not to NAV. The
	// truncation rule is identical with and without the spatial index
	// (same inclusive squared-distance test, same iteration order), so
	// the two modes are bit-identical; the index only changes who gets
	// scanned. grid, when non-nil, indexes every registered node by its
	// dense idx.
	sigRadius  float64
	sigR2      float64
	grid       *geo.Grid
	navScratch []int32
	nmcScratch []int32

	// noise floor memo, guarded by the parameters it was built from.
	noiseSet   bool
	noiseWidth float64
	noiseNF    float64
	noiseDBmC  float64
	noiseMWC   float64

	// Carrier-sense threshold memo in mW, for the linear busyAt scan;
	// self-validating against the dBm param it was derived from.
	csMWC, csForDBm float64

	// Drops counts aggregates abandoned after the retry limit.
	Drops int
	// stats accumulates MAC-level counters.
	stats MACStats
}

// MACStats summarizes a run's MAC behaviour — the quantities behind
// the paper's "Wi-Fi overheads severely limit its efficiency on long
// range" argument.
type MACStats struct {
	// TXOPs counts completed data exchanges.
	TXOPs int
	// Failures counts failed attempts (RTS lost, data undecoded,
	// out-of-range picks).
	Failures int
	// DataAirtime and ControlAirtime split time on the air between
	// payload frames and RTS/CTS/ACK + preambles.
	DataAirtime, ControlAirtime time.Duration
	// DeliveredBits across all clients.
	DeliveredBits int64
}

// CollisionRate returns failures over total attempts.
func (s MACStats) CollisionRate() float64 {
	total := s.TXOPs + s.Failures
	if total == 0 {
		return 0
	}
	return float64(s.Failures) / float64(total)
}

// ControlOverhead returns the fraction of airtime spent on control
// frames and preambles rather than data payloads.
func (s MACStats) ControlOverhead() float64 {
	total := s.DataAirtime + s.ControlAirtime
	if total == 0 {
		return 0
	}
	return float64(s.ControlAirtime) / float64(total)
}

// Stats returns a copy of the accumulated MAC counters.
func (n *Network) Stats() MACStats { return n.stats }

// NewNetwork creates an empty network on the given engine and
// propagation model.
func NewNetwork(eng *sim.Engine, model *propagation.Model, params Params) *Network {
	return &Network{
		Params: params,
		eng:    eng,
		model:  model,
		cache:  propagation.NewLinkCache(model, 0),
		rng:    eng.NewStream("wifi:" + params.Name),
	}
}

// SetSignificanceRadius enables interference truncation at radiusM
// metres without a spatial index: every scan still visits all nodes but
// ignores those beyond the radius. This is the brute-force reference
// mode the indexed path is tested bit-identical against. Zero disables
// truncation (the historical all-pairs behavior).
//
// The radius should come from propagation.Model.InterferenceRadius and
// sit well above the carrier-sense/decode range, so exchanges that can
// decode at all are never split across the truncation boundary.
func (n *Network) SetSignificanceRadius(radiusM float64) {
	n.sigRadius = radiusM
	n.sigR2 = radiusM * radiusM
}

// EnableSpatialIndex turns on interference truncation at radiusM and
// builds a uniform grid over bounds so NAV propagation and medium-
// change notification query only the neighborhood instead of scanning
// every node. Nodes registered before and after the call are indexed.
// Wi-Fi topologies are static for a run; there is no move hook.
func (n *Network) EnableSpatialIndex(bounds geo.Rect, radiusM float64) {
	n.SetSignificanceRadius(radiusM)
	g := geo.NewGrid(bounds, radiusM)
	for _, node := range n.nodes {
		g.Insert(int32(node.idx), node.Pos)
	}
	n.grid = g
}

// Node is an AP or a client station.
type Node struct {
	ID         int
	Pos        geo.Point
	TxPowerDBm float64

	// txMW memoizes DBmToMW(TxPowerDBm) for the linear interference
	// sums, self-validating against the dBm it was computed from (the
	// field is public and may be reassigned mid-run).
	txMW, txMWFor float64

	net *Network
	// idx is the node's dense registration index, the link-cache key
	// (caller-chosen IDs may collide across APs and stations).
	idx  int
	isAP bool
	// AP-side state.
	clients []*Node
	nextCli int
	// Station-side queue accounting, owned by the serving AP: the
	// AP's backlog toward this client and the bits delivered to it.
	// Plain fields replace the AP's former per-ID maps so the MAC hot
	// path never hashes.
	qBits, dBits int64

	// Contention state.
	contending bool
	inTX       bool
	backoff    int
	cw         int
	retries    int
	navUntil   sim.Time
	slotEv     sim.Event
	deferEv    sim.Event

	// Pre-bound event handlers (allocated once at registration so the
	// per-slot and per-exchange paths never allocate closures).
	rescheduleFn func()
	slotTickFn   func()
	afterRTSFn   func()
	sendCTSFn    func()
	afterCTSFn   func()
	sendDataFn   func()
	afterDataFn  func()
	sendAckFn    func()
	afterAckFn   func()

	// In-flight exchange state (one TXOP at a time per AP).
	exClient  *Node
	exMCS     phy.MCS
	exPayload int // bytes
	exDataDur time.Duration
	exEnd     sim.Time
	exTX      *transmission
}

// AddAP registers an access point.
func (n *Network) AddAP(id int, pos geo.Point, txPowerDBm float64) *Node {
	ap := &Node{
		ID: id, Pos: pos, TxPowerDBm: txPowerDBm, net: n, isAP: true,
		idx: len(n.nodes),
		cw:  n.Params.CWMin,
	}
	ap.rescheduleFn = ap.reschedule
	ap.slotTickFn = ap.slotTick
	ap.afterRTSFn = ap.afterRTS
	ap.sendCTSFn = ap.sendCTS
	ap.afterCTSFn = ap.afterCTS
	ap.sendDataFn = ap.sendData
	ap.afterDataFn = ap.afterData
	ap.sendAckFn = ap.sendAck
	ap.afterAckFn = ap.afterAck
	n.nodes = append(n.nodes, ap)
	n.aps = append(n.aps, ap)
	if n.grid != nil {
		n.grid.Insert(int32(ap.idx), ap.Pos)
	}
	return ap
}

// AddClient attaches a client station to an AP.
func (n *Network) AddClient(id int, pos geo.Point, txPowerDBm float64, ap *Node) *Node {
	c := &Node{ID: id, Pos: pos, TxPowerDBm: txPowerDBm, net: n, idx: len(n.nodes)}
	n.nodes = append(n.nodes, c)
	ap.clients = append(ap.clients, c)
	if n.grid != nil {
		n.grid.Insert(int32(c.idx), c.Pos)
	}
	return c
}

// APs returns the registered access points.
func (n *Network) APs() []*Node { return n.aps }

// Clients returns an AP's attached stations.
func (ap *Node) Clients() []*Node { return ap.clients }

// Enqueue adds downlink bits for a client and wakes the AP's MAC.
func (ap *Node) Enqueue(client *Node, bits int64) {
	if !ap.isAP {
		panic("wifi: Enqueue on non-AP node")
	}
	client.qBits += bits
	ap.tryStart()
}

// QueuedBits returns an AP's backlog toward one client.
func (ap *Node) QueuedBits(client *Node) int64 { return client.qBits }

// DeliveredBits returns the bits successfully delivered to a client.
func (ap *Node) DeliveredBits(client *Node) int64 { return client.dBits }

// rxPowerDBm is the power node rx sees from node tx, through the
// link-gain cache (wifi topologies are static for a run).
func (n *Network) rxPowerDBm(tx, rx *Node) float64 {
	return tx.TxPowerDBm - n.cache.LossDB(tx.idx, rx.idx, tx.Pos, rx.Pos)
}

// rxPowerMW is rxPowerDBm in milliwatts, computed entirely in the
// linear domain: the node's memoized transmit power times the cached
// linear path gain. Interference sums use it so the per-term
// dBm-to-mW pow disappears from the carrier-sense and decode paths.
func (n *Network) rxPowerMW(tx, rx *Node) float64 {
	if tx.txMW == 0 || tx.txMWFor != tx.TxPowerDBm {
		tx.txMW, tx.txMWFor = propagation.DBmToMW(tx.TxPowerDBm), tx.TxPowerDBm
	}
	return tx.txMW * n.cache.PathGainLinear(tx.idx, rx.idx, tx.Pos, rx.Pos)
}

// LinkCacheStats exposes the link-gain cache counters for telemetry.
func (n *Network) LinkCacheStats() propagation.CacheStats {
	return n.cache.Stats()
}

// transmission is one frame in the air. interferers accumulates every
// node whose transmission overlapped this frame at any point, so the
// decode check at frame end cannot miss a short mid-frame collision.
// Records are pooled; endFn is the end-of-frame handler, bound once
// when the record is first created.
type transmission struct {
	net         *Network
	from        *Node
	start, end  sim.Time
	kind        string // "rts", "cts", "data", "ack"
	interferers []*Node
	endFn       func()
}

// addInterferer records an overlapping transmitter exactly once (the
// slice replaces a per-frame map; insertion order makes the decode
// check's interference sum deterministic, which the old map iteration
// was not).
func (t *transmission) addInterferer(node *Node) {
	for _, x := range t.interferers {
		if x == node {
			return
		}
	}
	t.interferers = append(t.interferers, node)
}

// finish takes the frame off the air. The record goes straight back to
// the pool — see the txPool comment for why the same-instant decode
// continuation can still read it safely.
func (t *transmission) finish() {
	n := t.net
	for i, a := range n.active {
		if a == t {
			n.active = append(n.active[:i], n.active[i+1:]...)
			break
		}
	}
	n.txPool = append(n.txPool, t)
	n.notifyMediumChange(t.from)
}

// takeTX pops a pooled transmission record (or makes one), resetting
// its per-frame state.
func (n *Network) takeTX() *transmission {
	if len(n.txPool) > 0 {
		t := n.txPool[len(n.txPool)-1]
		n.txPool = n.txPool[:len(n.txPool)-1]
		t.interferers = t.interferers[:0]
		return t
	}
	t := &transmission{net: n}
	t.endFn = t.finish
	return t
}

// noise returns the channel noise floor in dBm and mW, recomputed only
// when the channel width or noise figure changes.
func (n *Network) noise() (float64, float64) {
	if !n.noiseSet || n.noiseWidth != n.Params.ChannelWidthHz || n.noiseNF != n.Params.NoiseFigureDB {
		n.noiseWidth = n.Params.ChannelWidthHz
		n.noiseNF = n.Params.NoiseFigureDB
		n.noiseDBmC = propagation.NoiseDBm(n.Params.ChannelWidthHz, n.Params.NoiseFigureDB)
		n.noiseMWC = propagation.DBmToMW(n.noiseDBmC)
		n.noiseSet = true
	}
	return n.noiseDBmC, n.noiseMWC
}

func (n *Network) noiseDBm() float64 {
	dbm, _ := n.noise()
	return dbm
}

// busyAt reports whether node sees the medium busy: an unexpired NAV,
// any single frame above the preamble-detection sensitivity, or raw
// aggregate energy above the (much higher) energy-detect threshold.
func (n *Network) busyAt(node *Node) bool {
	now := n.eng.Now()
	if now < node.navUntil {
		return true
	}
	if n.csMWC == 0 || n.csForDBm != n.Params.CSThresholdDBm {
		n.csMWC, n.csForDBm = propagation.DBmToMW(n.Params.CSThresholdDBm), n.Params.CSThresholdDBm
	}
	den := 0.0
	for _, t := range n.active {
		if t.from == node {
			return true // transmitting counts as busy
		}
		if n.sigRadius > 0 && !n.withinSig(t.from, node) {
			continue
		}
		// Linear-domain scan: the mW comparison decides exactly what the
		// dB one did (dBm to mW is monotone), with no pow per frame.
		p := n.rxPowerMW(t.from, node)
		if p >= n.csMWC {
			return true
		}
		den += p
	}
	return den > 0 && propagation.MWToDBm(den) >= n.Params.EnergyDetectDBm
}

// withinSig is the truncation predicate: inclusive squared distance
// against the significance radius, the same test geo.Grid applies, so
// indexed and brute scans admit exactly the same set.
func (n *Network) withinSig(a, b *Node) bool {
	dx, dy := a.Pos.X-b.Pos.X, a.Pos.Y-b.Pos.Y
	return dx*dx+dy*dy <= n.sigR2
}

// sinrOf returns the SINR of transmission t at receiver rx, counting
// every transmission that overlapped t (fully, as CSMA collisions
// typically do) as interference. Interferers are summed in insertion
// order — deterministic by construction.
func (n *Network) sinrOf(t *transmission, rx *Node) float64 {
	signal := n.rxPowerDBm(t.from, rx)
	_, den := n.noise()
	for _, from := range t.interferers {
		if from == rx {
			continue
		}
		if n.sigRadius > 0 && !n.withinSig(from, rx) {
			continue
		}
		den += n.rxPowerMW(from, rx)
	}
	return signal - propagation.MWToDBm(den)
}

// beginTX registers a frame in the air, notifies every node (carrier
// sense state may have changed), and schedules its end. Overlap with
// every concurrently active frame is recorded symmetrically.
func (n *Network) beginTX(from *Node, d time.Duration, kind string) *transmission {
	t := n.takeTX()
	t.from, t.start, t.end, t.kind = from, n.eng.Now(), n.eng.Now()+d, kind
	if kind == "data" {
		// The payload portion counts as data; the preamble as control.
		n.stats.DataAirtime += d - n.Params.PreambleDur
		n.stats.ControlAirtime += n.Params.PreambleDur
	} else {
		n.stats.ControlAirtime += d
	}
	for _, a := range n.active {
		// With truncation on, an overlap only matters if some receiver
		// can see both transmitters, i.e. the two sources are within
		// twice the significance radius (a receiver inside the radius of
		// each lies in the lens between them). Skipping farther pairs
		// keeps interferer lists neighborhood-sized at metro scale and
		// changes no decode: sinrOf truncates per receiver anyway, and
		// receivers sit within decode range — far inside the radius — of
		// their signal source.
		if n.sigRadius > 0 {
			dx, dy := a.from.Pos.X-from.Pos.X, a.from.Pos.Y-from.Pos.Y
			if dx*dx+dy*dy > 4*n.sigR2 {
				continue
			}
		}
		t.addInterferer(a.from)
		a.addInterferer(from)
	}
	if rec := n.eng.Recorder(); rec != nil {
		rec.Record(trace.Record{T: int64(n.eng.Now()), AP: int32(from.ID), Kind: trace.KindWifiTX,
			N: 2, Args: [trace.MaxArgs]int64{frameCode(kind), int64(d)}})
	}
	n.active = append(n.active, t)
	n.notifyMediumChange(from)
	n.eng.After(d, t.endFn)
	return t
}

// notifyMediumChange pokes idle APs so they can re-evaluate contention
// after a frame from origin started or ended. With truncation on, only
// APs within the significance radius of origin can have seen the frame,
// so only they are poked — through the grid when one is attached,
// otherwise by a truncated scan. Both walk APs in registration order
// (ascending dense idx), so the event schedule is identical either way.
func (n *Network) notifyMediumChange(origin *Node) {
	if n.sigRadius > 0 {
		if n.grid != nil {
			n.nmcScratch = n.grid.AppendWithin(n.nmcScratch[:0], origin.Pos, n.sigRadius)
			for _, idx := range n.nmcScratch {
				if ap := n.nodes[idx]; ap.isAP && ap.contending && !ap.inTX {
					ap.reschedule()
				}
			}
			return
		}
		for _, ap := range n.aps {
			if !n.withinSig(ap, origin) {
				continue
			}
			if ap.contending && !ap.inTX {
				ap.reschedule()
			}
		}
		return
	}
	for _, ap := range n.aps {
		if ap.contending && !ap.inTX {
			ap.reschedule()
		}
	}
}

// setNAVFromExchange makes third-party nodes that can decode an RTS/CTS
// defer until the exchange would complete. The NAV update is an
// idempotent max, so visiting a node twice (near both endpoints) or in
// a different order cannot change the outcome — the indexed and scan
// paths end in identical state.
func (n *Network) setNAVFromExchange(initiator, responder *Node, until sim.Time) {
	if n.grid != nil {
		n.navScratch = n.grid.AppendWithin(n.navScratch[:0], initiator.Pos, n.sigRadius)
		n.navScratch = n.grid.AppendWithin(n.navScratch, responder.Pos, n.sigRadius)
		for _, idx := range n.navScratch {
			n.maybeSetNAV(n.nodes[idx], initiator, responder, until)
		}
		return
	}
	for _, node := range n.nodes {
		n.maybeSetNAV(node, initiator, responder, until)
	}
}

// maybeSetNAV applies one node's NAV update for an overheard exchange.
func (n *Network) maybeSetNAV(node, initiator, responder *Node, until sim.Time) {
	if node == initiator || node == responder {
		return
	}
	heard := n.canHear(initiator, node) || n.canHear(responder, node)
	if heard && until > node.navUntil {
		node.navUntil = until
	}
}

// canHear reports whether rx detects a preamble from tx: above the
// carrier-sense threshold and, when truncation is on, within the
// significance radius.
func (n *Network) canHear(tx, rx *Node) bool {
	if n.sigRadius > 0 && !n.withinSig(tx, rx) {
		return false
	}
	return n.rxPowerDBm(tx, rx) >= n.Params.CSThresholdDBm
}

// hasData reports whether any client has queued traffic, without
// touching the round-robin cursor.
func (ap *Node) hasData() bool {
	for _, c := range ap.clients {
		if c.qBits > 0 {
			return true
		}
	}
	return false
}

// tryStart enters contention if the AP has data and is not already
// contending or transmitting.
func (ap *Node) tryStart() {
	if !ap.isAP || ap.contending || ap.inTX {
		return
	}
	if !ap.hasData() {
		return
	}
	ap.contending = true
	ap.backoff = ap.net.rng.Intn(ap.cw + 1)
	if rec := ap.net.eng.Recorder(); rec != nil {
		rec.Record(trace.Record{T: int64(ap.net.eng.Now()), AP: int32(ap.ID), Kind: trace.KindWifiBackoff,
			N: 2, Args: [trace.MaxArgs]int64{int64(ap.backoff), int64(ap.cw)}})
	}
	ap.reschedule()
}

// reschedule (re)arms the defer/backoff machinery after any medium
// state change.
func (ap *Node) reschedule() {
	ap.slotEv.Cancel()
	ap.slotEv = sim.Event{}
	ap.deferEv.Cancel()
	ap.deferEv = sim.Event{}
	if !ap.contending || ap.inTX {
		return
	}
	n := ap.net
	if n.busyAt(ap) {
		// Wait for the next medium change (or NAV expiry).
		if wait := ap.navUntil - n.eng.Now(); wait > 0 {
			ap.deferEv = n.eng.After(wait, ap.rescheduleFn)
		}
		return
	}
	// Idle: wait DIFS then count down slots.
	ap.deferEv = n.eng.After(n.Params.DIFS, ap.slotTickFn)
}

// slotTick consumes one backoff slot while the medium stays idle.
func (ap *Node) slotTick() {
	n := ap.net
	if n.busyAt(ap) {
		ap.reschedule()
		return
	}
	if ap.backoff > 0 {
		ap.backoff--
		ap.slotEv = n.eng.After(n.Params.SlotTime, ap.slotTickFn)
		return
	}
	ap.startExchange()
}

// pickClient round-robins over clients with queued data.
func (ap *Node) pickClient() (*Node, bool) {
	if len(ap.clients) == 0 {
		return nil, false
	}
	for i := 0; i < len(ap.clients); i++ {
		c := ap.clients[(ap.nextCli+i)%len(ap.clients)]
		if c.qBits > 0 {
			ap.nextCli = (ap.nextCli + i + 1) % len(ap.clients)
			return c, true
		}
	}
	return nil, false
}

// startExchange runs one TXOP: optional RTS/CTS, then an aggregated
// data frame and its block-ack. The exchange's parameters live on the
// AP and its stages are the pre-bound handlers below, so a TXOP
// schedules the exact event sequence the closure-based implementation
// did without allocating.
func (ap *Node) startExchange() {
	n := ap.net
	client, ok := ap.pickClient()
	if !ok {
		ap.contending = false
		return
	}
	ap.inTX = true

	// Ideal rate adaptation from the client's long-term SNR, backed
	// off by the configured link margin.
	snr := n.rxPowerDBm(ap, client) - n.noiseDBm()
	mcs, decodable := phy.WiFiMCSFromSINR(snr - n.Params.LinkMarginDB)
	if !decodable {
		// Out of range: burn a minimal attempt so the failure has a
		// cost, then count it against the retry budget.
		ap.inTX = false
		ap.failure()
		return
	}

	budget := n.Params.MaxTXDuration
	payloadBytes := n.Params.MaxPayloadForDuration(budget, mcs)
	if q := client.qBits / 8; int64(payloadBytes) > q {
		payloadBytes = int(q)
	}
	ap.exClient = client
	ap.exMCS = mcs
	ap.exPayload = payloadBytes
	ap.exDataDur = n.Params.FrameDuration(payloadBytes, mcs)

	if !n.Params.RTSCTS {
		ap.sendData()
		return
	}

	rtsDur := n.Params.ControlDuration(rtsBytes)
	ctsDur := n.Params.ControlDuration(ctsBytes)
	ap.exEnd = n.eng.Now() + rtsDur + n.Params.SIFS + ctsDur +
		n.Params.SIFS + ap.exDataDur + n.Params.SIFS + n.Params.ControlDuration(ackBytes)

	ap.exTX = n.beginTX(ap, rtsDur, "rts")
	n.eng.After(rtsDur, ap.afterRTSFn)
}

// afterRTS checks the RTS decode at the client and either reserves the
// medium for the exchange or backs off.
func (ap *Node) afterRTS() {
	n := ap.net
	if n.sinrOf(ap.exTX, ap.exClient) >= phy.WiFiMCS(0).MinSINRdB {
		n.setNAVFromExchange(ap, ap.exClient, ap.exEnd)
		n.eng.After(n.Params.SIFS, ap.sendCTSFn)
	} else {
		// RTS collided or client out of range: back off.
		ap.inTX = false
		ap.failure()
	}
}

// sendCTS puts the client's CTS on the air.
func (ap *Node) sendCTS() {
	n := ap.net
	ctsDur := n.Params.ControlDuration(ctsBytes)
	ap.exTX = n.beginTX(ap.exClient, ctsDur, "cts")
	n.eng.After(ctsDur, ap.afterCTSFn)
}

// afterCTS refreshes third-party NAVs and leads into the data frame.
func (ap *Node) afterCTS() {
	n := ap.net
	n.setNAVFromExchange(ap, ap.exClient, ap.exEnd)
	n.eng.After(n.Params.SIFS, ap.sendDataFn)
}

// sendData puts the aggregated data frame on the air.
func (ap *Node) sendData() {
	n := ap.net
	ap.exTX = n.beginTX(ap, ap.exDataDur, "data")
	n.eng.After(ap.exDataDur, ap.afterDataFn)
}

// afterData checks the data decode at the client and either solicits
// the block-ack or backs off.
func (ap *Node) afterData() {
	n := ap.net
	if n.sinrOf(ap.exTX, ap.exClient) >= ap.exMCS.MinSINRdB {
		// Block-ack after SIFS at basic rate.
		n.eng.After(n.Params.SIFS, ap.sendAckFn)
	} else {
		ap.inTX = false
		ap.failure()
	}
}

// sendAck puts the client's block-ack on the air.
func (ap *Node) sendAck() {
	n := ap.net
	ackDur := n.Params.ControlDuration(ackBytes)
	n.beginTX(ap.exClient, ackDur, "ack")
	n.eng.After(ackDur, ap.afterAckFn)
}

// afterAck completes the TXOP.
func (ap *Node) afterAck() {
	ap.success(ap.exClient, int64(ap.exPayload)*8)
}

// success completes a TXOP: credit delivery, reset contention state.
func (ap *Node) success(client *Node, bits int64) {
	client.qBits -= bits
	if client.qBits < 0 {
		client.qBits = 0
	}
	client.dBits += bits
	ap.net.stats.TXOPs++
	ap.net.stats.DeliveredBits += bits
	ap.inTX = false
	ap.contending = false
	ap.retries = 0
	ap.cw = ap.net.Params.CWMin
	ap.tryStart()
}

// failure handles a failed attempt: exponential backoff, drop after the
// retry limit.
func (ap *Node) failure() {
	ap.net.stats.Failures++
	ap.retries++
	dropped := int64(0)
	if ap.retries > ap.net.Params.RetryLimit {
		dropped = 1
	}
	if rec := ap.net.eng.Recorder(); rec != nil {
		rec.Record(trace.Record{T: int64(ap.net.eng.Now()), AP: int32(ap.ID), Kind: trace.KindWifiFail,
			N: 3, Args: [trace.MaxArgs]int64{int64(ap.retries), int64(ap.cw), dropped}})
	}
	if ap.retries > ap.net.Params.RetryLimit {
		// Abandon this aggregate; for backlogged queues the traffic
		// source keeps the queue full, so this surfaces as lost
		// airtime, i.e. starvation.
		ap.net.Drops++
		ap.retries = 0
		ap.cw = ap.net.Params.CWMin
	} else {
		ap.cw = ap.cw*2 + 1
		if ap.cw > ap.net.Params.CWMax {
			ap.cw = ap.net.Params.CWMax
		}
	}
	ap.contending = false
	ap.tryStart()
}

// String describes a node for logs.
func (no *Node) String() string {
	kind := "sta"
	if no.isAP {
		kind = "ap"
	}
	return fmt.Sprintf("%s%d@%s", kind, no.ID, no.Pos)
}
