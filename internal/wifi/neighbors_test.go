package wifi

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/sim"
	"cellfi/internal/trace"
)

// buildCity lays nAPs APs on a city grid (180 m pitch, ten per row),
// each with two backlogged clients. The caller configures truncation /
// indexing on the empty network before nodes are added so both modes
// see identical construction-time events.
func buildCity(eng *sim.Engine, params Params, nAPs int, setup func(*Network)) *Network {
	n := NewNetwork(eng, quietModel(3), params)
	if setup != nil {
		setup(n)
	}
	for i := 0; i < nAPs; i++ {
		x := float64(i%10) * 180
		y := float64(i/10) * 180
		ap := n.AddAP(i, geo.Point{X: x, Y: y}, 20)
		for c := 0; c < 2; c++ {
			cl := n.AddClient(1000+i*10+c, geo.Point{X: x + 20 + float64(c)*15, Y: y + 10}, 20, ap)
			ap.Enqueue(cl, 1<<40)
		}
	}
	return n
}

func cityBounds(nAPs int) geo.Rect {
	rows := (nAPs + 9) / 10
	return geo.Rect{MinX: 0, MinY: 0, MaxX: 9*180 + 100, MaxY: float64(rows)*180 + 100}
}

// runCity drives a city for the given virtual horizon with a trace
// recorder attached and returns the wire bytes plus MAC counters.
func runCity(t *testing.T, seed int64, nAPs int, radius float64, indexed bool, horizon time.Duration) ([]byte, MACStats) {
	t.Helper()
	eng := sim.NewEngine(seed)
	var buf bytes.Buffer
	ring := trace.NewRing(0)
	ring.SpillTo(&buf)
	eng.SetRecorder(ring)
	net := buildCity(eng, Params11af(), nAPs, func(n *Network) {
		if indexed {
			n.EnableSpatialIndex(cityBounds(nAPs), radius)
		} else {
			n.SetSignificanceRadius(radius)
		}
	})
	eng.Run(sim.Time(horizon))
	if err := ring.Close(); err != nil {
		t.Fatalf("trace close: %v", err)
	}
	return buf.Bytes(), net.Stats()
}

// TestIndexedCSMATraceByteIdentity is the wifi half of the equivalence
// criterion: with the same seed and significance radius, the
// grid-indexed network and the brute-force truncated network produce
// byte-identical trace streams (every backoff draw, TX, failure — the
// full event schedule) and identical MAC counters.
func TestIndexedCSMATraceByteIdentity(t *testing.T) {
	const nAPs, radius = 40, 800.0
	for seed := int64(1); seed <= 10; seed++ {
		brute, statsB := runCity(t, seed, nAPs, radius, false, 30*time.Millisecond)
		indexed, statsI := runCity(t, seed, nAPs, radius, true, 30*time.Millisecond)
		if statsB != statsI {
			t.Fatalf("seed %d: stats diverge: brute %+v indexed %+v", seed, statsB, statsI)
		}
		if !bytes.Equal(brute, indexed) {
			t.Fatalf("seed %d: trace streams diverge (%d vs %d bytes)", seed, len(brute), len(indexed))
		}
		if statsB.TXOPs == 0 {
			t.Fatalf("seed %d: vacuous run, no TXOPs completed", seed)
		}
	}
}

// A radius beyond every pairwise distance must reproduce the historical
// all-pairs behavior exactly — truncation with nothing to truncate.
func TestTruncationVacuousAtLargeRadius(t *testing.T) {
	const nAPs = 12
	full, statsF := runCity(t, 2, nAPs, 0, false, 30*time.Millisecond)
	huge, statsH := runCity(t, 2, nAPs, 1e9, true, 30*time.Millisecond)
	if statsF != statsH {
		t.Fatalf("stats diverge: full %+v truncated-at-1e9 %+v", statsF, statsH)
	}
	if !bytes.Equal(full, huge) {
		t.Fatalf("trace streams diverge (%d vs %d bytes)", len(full), len(huge))
	}
}

// The indexed CSMA loop must stay allocation-free in steady state, grid
// queries included.
func TestIndexedCSMAZeroAllocs(t *testing.T) {
	eng := sim.NewEngine(1)
	buildCity(eng, Params11af(), 40, func(n *Network) {
		n.EnableSpatialIndex(cityBounds(40), 800)
	})
	horizon := sim.Time(0)
	for i := 0; i < 200; i++ {
		horizon += sim.Time(time.Millisecond)
		eng.Run(horizon)
	}
	avg := testing.AllocsPerRun(100, func() {
		horizon += sim.Time(time.Millisecond)
		eng.Run(horizon)
	})
	if avg != 0 {
		t.Fatalf("indexed CSMA loop allocates %.2f times per ms in steady state", avg)
	}
}

// The O(N) vs O(neighborhood) contrast on the CSMA plane, at the three
// AP scales the regression gate tracks. "brute" is the historical
// all-node scan (no truncation); "indexed" runs the same city through
// the grid at an 800 m significance radius.
func BenchmarkWifiCSMACity(b *testing.B) {
	for _, nAPs := range []int{10, 100, 1000} {
		for _, mode := range []string{"brute", "indexed"} {
			b.Run(fmt.Sprintf("%s/N=%d", mode, nAPs), func(b *testing.B) {
				eng := sim.NewEngine(1)
				indexed := mode == "indexed"
				buildCity(eng, Params11af(), nAPs, func(n *Network) {
					if indexed {
						n.EnableSpatialIndex(cityBounds(nAPs), 800)
					}
				})
				horizon := sim.Time(0)
				for i := 0; i < 20; i++ { // warm pools and caches
					horizon += sim.Time(time.Millisecond)
					eng.Run(horizon)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					horizon += sim.Time(time.Millisecond)
					eng.Run(horizon)
				}
			})
		}
	}
}
