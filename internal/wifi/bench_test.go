package wifi

import (
	"testing"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/sim"
)

// benchNetwork builds a two-BSS contention domain with backlogged
// queues — enough cross-coupling that carrier sensing, NAV and backoff
// all stay busy — and returns the engine driving it.
func benchNetwork(tb testing.TB, params Params) (*sim.Engine, *Network) {
	tb.Helper()
	eng := sim.NewEngine(1)
	n := NewNetwork(eng, quietModel(1), params)
	for i := 0; i < 2; i++ {
		ap := n.AddAP(i, geo.Point{X: float64(i) * 120}, 20)
		for c := 0; c < 2; c++ {
			cl := n.AddClient(100+10*i+c, geo.Point{X: float64(i)*120 + 30 + float64(c)*10}, 20, ap)
			ap.Enqueue(cl, 1<<40)
		}
	}
	return eng, n
}

// BenchmarkCSMASlotLoop measures the contention inner loop — DIFS
// deferral, slot countdown, carrier-sense scans and the RTS/CTS/data/
// ACK exchanges they gate — per millisecond of virtual time. Tracked
// with allocations because busyAt runs on every slot tick for every
// contender; see BENCH_sim.json.
func BenchmarkCSMASlotLoop(b *testing.B) {
	eng, _ := benchNetwork(b, Params11af())
	b.ReportAllocs()
	b.ResetTimer()
	horizon := sim.Time(0)
	for i := 0; i < b.N; i++ {
		horizon += time.Millisecond
		eng.Run(horizon)
	}
}

// BenchmarkCSMASlotLoop11ac is the short-range 802.11ac flavour (finer
// slots, more exchanges per virtual millisecond).
func BenchmarkCSMASlotLoop11ac(b *testing.B) {
	eng, _ := benchNetwork(b, Params11ac20())
	b.ReportAllocs()
	b.ResetTimer()
	horizon := sim.Time(0)
	for i := 0; i < b.N; i++ {
		horizon += time.Millisecond
		eng.Run(horizon)
	}
}

// The CSMA slot step — carrier-sense scans, backoff, pooled frame
// records and the pre-bound exchange handlers — must be allocation-free
// once the transmission pool and overlap slices are warm.
func TestCSMASlotStepZeroAllocs(t *testing.T) {
	eng, _ := benchNetwork(t, Params11af())
	horizon := sim.Time(0)
	for i := 0; i < 200; i++ {
		horizon += time.Millisecond
		eng.Run(horizon)
	}
	avg := testing.AllocsPerRun(100, func() {
		horizon += time.Millisecond
		eng.Run(horizon)
	})
	if avg != 0 {
		t.Fatalf("CSMA slot loop allocates %.2f times per ms in steady state", avg)
	}
}
