package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"cellfi/internal/trace"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run(time.Second)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	e.Run(time.Second)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.After(250*time.Millisecond, func() { at = e.Now() })
	e.Run(time.Second)
	if at != 250*time.Millisecond {
		t.Fatalf("callback saw clock %v, want 250ms", at)
	}
	if e.Now() != time.Second {
		t.Fatalf("final clock %v, want horizon 1s", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5*time.Millisecond, func() {})
	})
	e.Run(time.Second)
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.After(10*time.Millisecond, func() { fired = true })
	if !ev.Pending() {
		t.Fatal("event not pending after scheduling")
	}
	ev.Cancel()
	if ev.Pending() {
		t.Fatal("event still pending after cancel")
	}
	ev.Cancel() // double-cancel is a no-op
	e.Run(time.Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelFromWithinEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	var victim Event
	e.After(5*time.Millisecond, func() { victim.Cancel() })
	victim = e.After(10*time.Millisecond, func() { fired = true })
	e.Run(time.Second)
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

// Regression: Cancel must count a cancellation exactly once, and only
// when it actually removes a pending event. Repeated cancels, cancels
// of already-fired events, and cancels through the zero handle must not
// inflate the cancelled counter.
func TestCancelStatsCountOnce(t *testing.T) {
	e := NewEngine(1)
	ev := e.After(time.Millisecond, func() {})
	ev.Cancel()
	ev.Cancel()
	ev.Cancel()
	if got := e.Stats().Cancelled; got != 1 {
		t.Fatalf("Cancelled after triple-cancel = %d, want 1", got)
	}

	fired := e.After(time.Millisecond, func() {})
	e.Run(time.Second)
	fired.Cancel() // already fired: must not count
	fired.Cancel()
	if got := e.Stats().Cancelled; got != 1 {
		t.Fatalf("Cancelled after cancelling a fired event = %d, want still 1", got)
	}

	var never Event // never scheduled
	never.Cancel()  // must be a safe no-op
	if never.Pending() {
		t.Fatal("zero-value handle reports Pending")
	}
	if got := e.Stats().Cancelled; got != 1 {
		t.Fatalf("Cancelled after zero-handle cancel = %d, want still 1", got)
	}
}

// A handle must go stale once its event fires, even if the engine has
// recycled the slot for a newer event: cancelling through the stale
// handle must not touch the new occupant.
func TestStaleHandleCannotCancelRecycledSlot(t *testing.T) {
	e := NewEngine(1)
	old := e.After(time.Millisecond, func() {})
	e.Run(2 * time.Millisecond) // fires old, freeing its slot
	replacementFired := false
	repl := e.After(time.Millisecond, func() { replacementFired = true })
	old.Cancel() // stale: must not cancel repl even if slots collide
	if !repl.Pending() {
		t.Fatal("stale Cancel removed a recycled slot's new event")
	}
	e.Run(time.Second)
	if !replacementFired {
		t.Fatal("recycled-slot event did not fire")
	}
}

// The slot array must recycle: a long chain of sequential events keeps
// EventSlots at peak concurrency, not total event count.
func TestSlotRecycling(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 10000 {
			e.After(time.Microsecond, tick)
		}
	}
	e.After(0, tick)
	e.RunAll()
	st := e.Stats()
	if st.Fired != 10000 {
		t.Fatalf("fired %d, want 10000", st.Fired)
	}
	if st.EventSlots > 2 {
		t.Fatalf("EventSlots = %d after a depth-1 chain, want <= 2", st.EventSlots)
	}
	if st.MaxPending != 1 {
		t.Fatalf("MaxPending = %d for a depth-1 chain, want 1", st.MaxPending)
	}
}

func TestStatsMaxPending(t *testing.T) {
	e := NewEngine(1)
	for i := 1; i <= 50; i++ {
		e.Schedule(Time(i)*time.Millisecond, func() {})
	}
	e.Run(time.Second)
	st := e.Stats()
	if st.MaxPending != 50 {
		t.Fatalf("MaxPending = %d, want 50", st.MaxPending)
	}
	if st.Pending != 0 {
		t.Fatalf("Pending after drain = %d, want 0", st.Pending)
	}
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.After(2*time.Second, func() { fired = true })
	n := e.Run(time.Second)
	if n != 0 || fired {
		t.Fatalf("event beyond horizon fired (n=%d)", n)
	}
	// Continue: second Run should pick it up.
	n = e.Run(3 * time.Second)
	if n != 1 || !fired {
		t.Fatalf("second run processed %d events, fired=%v", n, fired)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	tk := e.Every(100*time.Millisecond, func() {
		times = append(times, e.Now())
	})
	e.After(350*time.Millisecond, func() { tk.Stop() })
	e.Run(time.Second)
	if len(times) != 3 {
		t.Fatalf("ticker fired %d times, want 3 (at %v)", len(times), times)
	}
	for i, at := range times {
		want := time.Duration(i+1) * 100 * time.Millisecond
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tk *Ticker
	tk = e.Every(10*time.Millisecond, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	e.Run(time.Second)
	if n != 2 {
		t.Fatalf("ticker fired %d times after self-stop, want 2", n)
	}
}

func TestEveryAtFirstDelay(t *testing.T) {
	e := NewEngine(1)
	var first Time = -1
	tk := e.EveryAt(0, 50*time.Millisecond, func() {
		if first < 0 {
			first = e.Now()
		}
	})
	defer tk.Stop()
	e.Run(200 * time.Millisecond)
	if first != 0 {
		t.Fatalf("first firing at %v, want 0", first)
	}
}

func TestStopMidRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i)*time.Millisecond, func() {
			count++
			if count == 4 {
				e.Stop()
			}
		})
	}
	n := e.Run(time.Second)
	if n != 4 || count != 4 {
		t.Fatalf("processed %d events after Stop, want 4", n)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []int64 {
		e := NewEngine(seed)
		rng := e.NewStream("test")
		var out []int64
		e.Every(time.Millisecond, func() {
			out = append(out, rng.Int63n(1000))
		})
		e.Run(20 * time.Millisecond)
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestStreamsIndependent(t *testing.T) {
	e := NewEngine(7)
	a := e.NewStream("fading")
	b := e.NewStream("traffic")
	// Identical labels give identical streams; distinct labels differ.
	a2 := e.NewStream("fading")
	if a.Int63() != a2.Int63() {
		t.Fatal("same label produced different streams")
	}
	if e.NewStream("fading").Int63() == b.Int63() {
		t.Fatal("distinct labels produced identical streams")
	}
}

func TestPendingCount(t *testing.T) {
	e := NewEngine(1)
	ev1 := e.After(time.Millisecond, func() {})
	e.After(2*time.Millisecond, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	ev1.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", e.Pending())
	}
	e.Run(time.Second)
	if e.Pending() != 0 {
		t.Fatalf("Pending after run = %d, want 0", e.Pending())
	}
}

// Property: regardless of the (time, order) mix of scheduled events, the
// engine fires them in nondecreasing time order and FIFO within a time.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delaysMS []uint8) bool {
		e := NewEngine(3)
		type fired struct {
			at  Time
			seq int
		}
		var log []fired
		for i, d := range delaysMS {
			i, at := i, Time(d)*time.Millisecond
			e.Schedule(at, func() { log = append(log, fired{at, i}) })
		}
		e.RunAll()
		if len(log) != len(delaysMS) {
			return false
		}
		for i := 1; i < len(log); i++ {
			if log[i].at < log[i-1].at {
				return false
			}
			if log[i].at == log[i-1].at && log[i].seq < log[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Run(until) never fires events scheduled after until.
func TestQuickHorizonRespected(t *testing.T) {
	f := func(delaysMS []uint16, horizonMS uint16) bool {
		e := NewEngine(5)
		horizon := Time(horizonMS) * time.Millisecond
		late := 0
		for _, d := range delaysMS {
			at := Time(d) * time.Millisecond
			e.Schedule(at, func() {
				if e.Now() > horizon {
					late++
				}
			})
		}
		e.Run(horizon)
		return late == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Stress the heap's remove path: schedule a large batch with random
// times, cancel a random subset (including from inside callbacks), and
// check that exactly the surviving events fire, in (time, FIFO) order.
func TestRandomCancelStress(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine(int64(trial))
		const n = 300
		events := make([]Event, n)
		firedSeq := make([]int, 0, n)
		cancelled := make(map[int]bool)
		for i := 0; i < n; i++ {
			i := i
			at := Time(rng.Intn(50)) * time.Millisecond
			events[i] = e.Schedule(at, func() {
				firedSeq = append(firedSeq, i)
				// Occasionally cancel a random later event mid-run.
				if v := rng.Intn(n); rng.Intn(4) == 0 && events[v].Pending() {
					events[v].Cancel()
					cancelled[v] = true
				}
			})
		}
		// Cancel a random subset up front.
		for i := 0; i < n/4; i++ {
			v := rng.Intn(n)
			if events[v].Pending() {
				events[v].Cancel()
				cancelled[v] = true
			}
		}
		e.RunAll()
		if len(firedSeq)+len(cancelled) != n {
			t.Fatalf("trial %d: fired %d + cancelled %d != %d",
				trial, len(firedSeq), len(cancelled), n)
		}
		for _, i := range firedSeq {
			if cancelled[i] {
				t.Fatalf("trial %d: cancelled event %d fired", trial, i)
			}
		}
		for j := 1; j < len(firedSeq); j++ {
			a, b := events[firedSeq[j-1]], events[firedSeq[j]]
			if b.At() < a.At() {
				t.Fatalf("trial %d: out-of-order firing at %v after %v", trial, b.At(), a.At())
			}
			if b.At() == a.At() && firedSeq[j] < firedSeq[j-1] {
				t.Fatalf("trial %d: FIFO tie-break violated", trial)
			}
		}
		if got := int(e.Stats().Cancelled); got != len(cancelled) {
			t.Fatalf("trial %d: Cancelled = %d, want %d", trial, got, len(cancelled))
		}
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	delays := make([]Time, 1024)
	for i := range delays {
		delays[i] = Time(rng.Intn(1e6)) * time.Microsecond
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine(1)
		for _, d := range delays {
			e.Schedule(d, func() {})
		}
		e.RunAll()
	}
}

func BenchmarkTickerSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine(1)
		n := 0
		e.Every(time.Millisecond, func() { n++ })
		e.Run(time.Second)
		if n != 1000 {
			b.Fatalf("ticks = %d", n)
		}
	}
}

// ringRecorder is a minimal trace.Recorder for engine tests.
type ringRecorder struct{ recs []trace.Record }

func (r *ringRecorder) Record(rec trace.Record) { r.recs = append(r.recs, rec) }

func TestEngineRecorder(t *testing.T) {
	e := NewEngine(1)
	rec := &ringRecorder{}
	e.SetRecorder(rec)
	if e.Recorder() == nil {
		t.Fatal("Recorder() = nil after SetRecorder")
	}
	for i := 0; i < 5; i++ {
		e.Schedule(time.Duration(i+1)*time.Millisecond, func() {})
	}
	e.Run(time.Second)
	st := e.Stats()
	if uint64(len(rec.recs)) != st.Fired {
		t.Fatalf("recorded %d sim-fire records, engine fired %d", len(rec.recs), st.Fired)
	}
	for i, r := range rec.recs {
		if r.Kind != trace.KindSimFire {
			t.Fatalf("record %d kind = %v, want sim-fire", i, r.Kind)
		}
		if r.AP != -1 {
			t.Fatalf("record %d AP = %d, want -1", i, r.AP)
		}
		want := int64((i + 1) * int(time.Millisecond))
		if r.T != want {
			t.Fatalf("record %d T = %d, want %d", i, r.T, want)
		}
	}
}

func TestEngineNilRecorderSafe(t *testing.T) {
	e := NewEngine(1)
	e.SetRecorder(nil)
	fired := 0
	e.Schedule(time.Millisecond, func() { fired++ })
	e.Run(time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}
