// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-break), which keeps runs fully deterministic for a
// given seed. All CellFi network simulations — the LTE subframe machinery,
// the Wi-Fi CSMA state machines, traffic generators, and the CellFi
// interference-management epoch loop — are driven by one Engine.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp measured from the start of the simulation.
// It reuses time.Duration so callers can write 5*time.Millisecond.
type Time = time.Duration

// Event is a scheduled callback. The callback runs with the engine clock
// set to the event's firing time.
type Event struct {
	at     Time
	seq    uint64 // FIFO tie-break for equal timestamps
	fn     func()
	index  int // heap index; -1 once removed
	dead   bool
	engine *Engine
}

// At reports the virtual time the event fires (or fired) at.
func (e *Event) At() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired or was already cancelled is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.dead {
		return
	}
	e.dead = true
	e.engine.cancelled++
	if e.index >= 0 {
		heap.Remove(&e.engine.queue, e.index)
	}
}

// Pending reports whether the event is still scheduled to fire.
func (e *Event) Pending() bool { return e != nil && !e.dead && e.index >= 0 }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now       Time
	queue     eventQueue
	seq       uint64
	fired     uint64
	cancelled uint64
	rng       *rand.Rand
	stopped   bool
	// streams hands out decorrelated child RNGs; see RNG.
	streamSeed int64
}

// Stats is a snapshot of an engine's activity counters, used by run
// telemetry (internal/runner) and throughput benchmarks.
type Stats struct {
	// Scheduled counts every Schedule/After call since construction.
	Scheduled uint64
	// Fired counts event callbacks that actually ran.
	Fired uint64
	// Cancelled counts events cancelled before firing.
	Cancelled uint64
	// Clock is the current virtual time.
	Clock Time
	// Pending is the number of events still queued.
	Pending int
}

// Stats returns a snapshot of the engine's counters. Like every other
// Engine method it must be called from the simulation goroutine.
func (e *Engine) Stats() Stats {
	return Stats{
		Scheduled: e.seq,
		Fired:     e.fired,
		Cancelled: e.cancelled,
		Clock:     e.now,
		Pending:   e.Pending(),
	}
}

// NewEngine returns an engine whose clock starts at zero and whose random
// streams all derive deterministically from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:        rand.New(rand.NewSource(seed)),
		streamSeed: seed,
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's primary random stream.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// NewStream returns an independent random stream derived from the engine
// seed and the given label hash. Separate model components (fading,
// traffic, hopping) should each own a stream so adding randomness to one
// component does not perturb the others.
func (e *Engine) NewStream(label string) *rand.Rand {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= int64(label[i])
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(e.streamSeed ^ h))
}

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// (before Now) panics: it always indicates a model bug.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn, engine: e}
	heap.Push(&e.queue, ev)
	return ev
}

// After runs fn after delay d from the current virtual time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Every schedules fn to run periodically with the given period, starting
// after one period. It returns a Ticker that can be stopped. If offset
// is nonzero the first firing happens after offset instead.
func (e *Engine) Every(period Time, fn func()) *Ticker {
	return e.EveryAt(period, period, fn)
}

// EveryAt is Every with an explicit first-firing delay.
func (e *Engine) EveryAt(first, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.ev = e.After(first, t.tick)
	return t
}

// Ticker fires a callback periodically until stopped.
type Ticker struct {
	engine  *Engine
	period  Time
	fn      func()
	ev      *Event
	stopped bool
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped { // fn may have stopped us
		t.ev = t.engine.After(t.period, t.tick)
	}
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}

// Stop halts the run loop after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events until the queue is empty, until is reached, or
// Stop is called, whichever comes first. The clock is left at the last
// processed event time, or at until if the horizon was hit. It returns
// the number of events processed.
func (e *Engine) Run(until Time) int {
	e.stopped = false
	n := 0
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		if next.dead {
			continue
		}
		e.now = next.at
		next.dead = true
		e.fired++
		next.fn()
		n++
	}
	if e.now < until {
		e.now = until
	}
	return n
}

// RunAll processes events until the queue is empty or Stop is called.
// It returns the number of events processed. Use with care: a Ticker
// keeps the queue non-empty forever.
func (e *Engine) RunAll() int {
	e.stopped = false
	n := 0
	for len(e.queue) > 0 && !e.stopped {
		next := heap.Pop(&e.queue).(*Event)
		if next.dead {
			continue
		}
		e.now = next.at
		next.dead = true
		e.fired++
		next.fn()
		n++
	}
	return n
}

// Pending returns the number of scheduled (not yet fired or cancelled)
// events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}
