// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-break), which keeps runs fully deterministic for a
// given seed. All CellFi network simulations — the LTE subframe machinery,
// the Wi-Fi CSMA state machines, traffic generators, and the CellFi
// interference-management epoch loop — are driven by one Engine.
//
// # Event-core layout
//
// The scheduling core is allocation-free on the hot path. Events live in
// a value slice of slots recycled through an intrusive free list, so a
// steady-state simulation performs zero heap allocations per
// Schedule/fire cycle: the slot array grows to peak concurrency once and
// is reused forever after. The priority queue is a 4-ary min-heap of
// slot indices ordered by (time, sequence) — the shallower tree halves
// the sift depth versus a binary heap and keeps the hot comparisons in
// one or two cache lines. Event handles returned by Schedule/After are
// small values stamped with the slot's generation; a stale handle
// (fired, cancelled, or slot since recycled) is detected by a generation
// mismatch, which makes Cancel and Pending safe without per-event
// pointers. Determinism is unaffected by the heap arity: the (time,
// sequence) key is a strict total order, so the firing sequence is
// byte-for-byte identical to any other correct priority queue.
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"cellfi/internal/trace"
)

// Time is a virtual timestamp measured from the start of the simulation.
// It reuses time.Duration so callers can write 5*time.Millisecond.
type Time = time.Duration

// Event is a handle to a scheduled callback. It is a small value, cheap
// to copy and store; the zero value is an invalid handle on which Cancel
// and Pending are safe no-ops. Handles are generation-stamped: once the
// event fires or is cancelled the handle goes stale, and any later
// Cancel/Pending on it is a no-op even if the engine has recycled the
// underlying slot for a new event.
type Event struct {
	engine *Engine
	at     Time
	slot   int32
	gen    uint32
}

// At reports the virtual time the event fires (or fired) at.
func (ev Event) At() Time { return ev.at }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired, was already cancelled, or was never scheduled (the zero
// handle) is a no-op; only a cancellation that actually removes a
// pending event increments the engine's cancelled counter.
func (ev Event) Cancel() {
	e := ev.engine
	if e == nil {
		return
	}
	sl := &e.slots[ev.slot]
	if sl.gen != ev.gen || sl.heapIdx < 0 {
		return
	}
	e.heapRemoveAt(sl.heapIdx)
	e.cancelled++
	e.freeSlot(ev.slot)
}

// Pending reports whether the event is still scheduled to fire.
func (ev Event) Pending() bool {
	e := ev.engine
	if e == nil {
		return false
	}
	sl := &e.slots[ev.slot]
	return sl.gen == ev.gen && sl.heapIdx >= 0
}

// slot is the in-engine storage of one event. Slots are recycled
// through a free list; gen increments on every release so stale handles
// can never act on a recycled slot.
type slot struct {
	at       Time
	seq      uint64
	fn       func()
	heapIdx  int32 // position in Engine.heap; -1 when free or fired
	nextFree int32
	gen      uint32
}

// Engine is a single-threaded discrete-event simulator.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now   Time
	slots []slot
	heap  []int32 // 4-ary min-heap of slot indices, keyed by (at, seq)
	// freeHead is the head of the free-slot list (-1 when empty).
	freeHead   int32
	seq        uint64
	fired      uint64
	cancelled  uint64
	maxPending int
	rng        *rand.Rand
	stopped    bool
	// streams hands out decorrelated child RNGs; see RNG.
	streamSeed int64
	// rec, when non-nil, receives a trace record per dispatched event.
	// Nil by default so the dispatch loop pays only a predictable
	// branch when tracing is off.
	rec trace.Recorder
}

// SetRecorder attaches a flight recorder: every dispatched event emits
// a KindSimFire record stamped with its virtual fire time. Pass nil to
// detach. Layers built on the engine (wifi, lte) emit their own
// records through the same recorder via Recorder().
func (e *Engine) SetRecorder(r trace.Recorder) { e.rec = r }

// Recorder returns the attached flight recorder, nil when tracing is
// off. Instrumented callers must nil-check before recording.
func (e *Engine) Recorder() trace.Recorder { return e.rec }

// Stats is a snapshot of an engine's activity counters, used by run
// telemetry (internal/runner) and throughput benchmarks.
type Stats struct {
	// Scheduled counts every Schedule/After call since construction.
	Scheduled uint64
	// Fired counts event callbacks that actually ran.
	Fired uint64
	// Cancelled counts events cancelled before firing.
	Cancelled uint64
	// Clock is the current virtual time.
	Clock Time
	// Pending is the number of events still queued.
	Pending int
	// MaxPending is the high-water mark of the pending-event heap —
	// the deepest the queue ever got.
	MaxPending int
	// EventSlots is the number of event slots the engine has ever
	// allocated. Slots recycle through a free list, so this tracks
	// peak event concurrency (steady-state memory footprint), not the
	// total event count: once it plateaus, Schedule/fire cycles run
	// allocation-free.
	EventSlots int
}

// Stats returns a snapshot of the engine's counters. Like every other
// Engine method it must be called from the simulation goroutine.
func (e *Engine) Stats() Stats {
	return Stats{
		Scheduled:  e.seq,
		Fired:      e.fired,
		Cancelled:  e.cancelled,
		Clock:      e.now,
		Pending:    len(e.heap),
		MaxPending: e.maxPending,
		EventSlots: len(e.slots),
	}
}

// NewEngine returns an engine whose clock starts at zero and whose random
// streams all derive deterministically from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:        rand.New(rand.NewSource(seed)),
		streamSeed: seed,
		freeHead:   -1,
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's primary random stream.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// NewStream returns an independent random stream derived from the engine
// seed and the given label hash. Separate model components (fading,
// traffic, hopping) should each own a stream so adding randomness to one
// component does not perturb the others.
func (e *Engine) NewStream(label string) *rand.Rand {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= int64(label[i])
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(e.streamSeed ^ h))
}

// allocSlot pops a recycled slot or grows the slot array.
func (e *Engine) allocSlot() int32 {
	if s := e.freeHead; s >= 0 {
		e.freeHead = e.slots[s].nextFree
		return s
	}
	e.slots = append(e.slots, slot{heapIdx: -1})
	return int32(len(e.slots) - 1)
}

// freeSlot releases a slot back to the free list, bumping its
// generation so outstanding handles go stale.
func (e *Engine) freeSlot(s int32) {
	sl := &e.slots[s]
	sl.fn = nil // release the closure for GC
	sl.heapIdx = -1
	sl.gen++
	sl.nextFree = e.freeHead
	e.freeHead = s
}

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// (before Now) panics: it always indicates a model bug.
func (e *Engine) Schedule(at Time, fn func()) Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	s := e.allocSlot()
	sl := &e.slots[s]
	sl.at, sl.seq, sl.fn = at, e.seq, fn
	e.heapPush(s)
	if len(e.heap) > e.maxPending {
		e.maxPending = len(e.heap)
	}
	return Event{engine: e, at: at, slot: s, gen: sl.gen}
}

// After runs fn after delay d from the current virtual time.
func (e *Engine) After(d Time, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Every schedules fn to run periodically with the given period, starting
// after one period. It returns a Ticker that can be stopped. For an
// explicit first-firing delay use EveryAt.
func (e *Engine) Every(period Time, fn func()) *Ticker {
	return e.EveryAt(period, period, fn)
}

// EveryAt is Every with an explicit first-firing delay: the first firing
// happens after first, subsequent firings every period.
func (e *Engine) EveryAt(first, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	// Bind the tick method once so periodic rescheduling reuses the
	// same func value instead of allocating a closure per period.
	t.tickFn = t.tick
	t.ev = e.After(first, t.tickFn)
	return t
}

// Ticker fires a callback periodically until stopped.
type Ticker struct {
	engine  *Engine
	period  Time
	fn      func()
	tickFn  func()
	ev      Event
	stopped bool
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped { // fn may have stopped us
		t.ev = t.engine.After(t.period, t.tickFn)
	}
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}

// Stop halts the run loop after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events until the queue is empty, until is reached, or
// Stop is called, whichever comes first. The clock is left at the last
// processed event time, or at until if the horizon was hit. It returns
// the number of events processed.
func (e *Engine) Run(until Time) int {
	e.stopped = false
	n := 0
	for len(e.heap) > 0 && !e.stopped {
		s := e.heap[0]
		sl := &e.slots[s]
		if sl.at > until {
			break
		}
		e.now = sl.at
		fn := sl.fn
		e.heapPop()
		e.freeSlot(s)
		e.fired++
		if e.rec != nil {
			e.rec.Record(trace.Record{T: int64(e.now), AP: -1, Kind: trace.KindSimFire})
		}
		fn()
		n++
	}
	if e.now < until {
		e.now = until
	}
	return n
}

// RunBefore processes events strictly before horizon, then leaves the
// clock at horizon. It is the window primitive of the sharded executor
// (internal/shard): a conservative window [start, end) maps to one
// RunBefore(end) call, and because the cut is exclusive, an event
// scheduled exactly on a window boundary fires in the next window on
// every shard layout — the property that keeps window composition
// byte-identical to an unwindowed Run. It returns the number of events
// processed.
func (e *Engine) RunBefore(horizon Time) int {
	e.stopped = false
	n := 0
	for len(e.heap) > 0 && !e.stopped {
		s := e.heap[0]
		sl := &e.slots[s]
		if sl.at >= horizon {
			break
		}
		e.now = sl.at
		fn := sl.fn
		e.heapPop()
		e.freeSlot(s)
		e.fired++
		if e.rec != nil {
			e.rec.Record(trace.Record{T: int64(e.now), AP: -1, Kind: trace.KindSimFire})
		}
		fn()
		n++
	}
	if e.now < horizon {
		e.now = horizon
	}
	return n
}

// RunAll processes events until the queue is empty or Stop is called.
// It returns the number of events processed. Use with care: a Ticker
// keeps the queue non-empty forever.
func (e *Engine) RunAll() int {
	e.stopped = false
	n := 0
	for len(e.heap) > 0 && !e.stopped {
		s := e.heap[0]
		sl := &e.slots[s]
		e.now = sl.at
		fn := sl.fn
		e.heapPop()
		e.freeSlot(s)
		e.fired++
		if e.rec != nil {
			e.rec.Record(trace.Record{T: int64(e.now), AP: -1, Kind: trace.KindSimFire})
		}
		fn()
		n++
	}
	return n
}

// Pending returns the number of scheduled (not yet fired or cancelled)
// events. Cancelled events leave the heap immediately, so this is O(1).
func (e *Engine) Pending() int { return len(e.heap) }

// The priority queue: a 4-ary min-heap of slot indices. Children of
// node i sit at 4i+1..4i+4, the parent at (i-1)/4.

// heapLess orders slots by firing time, FIFO within a time.
func (e *Engine) heapLess(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

func (e *Engine) heapPush(s int32) {
	i := int32(len(e.heap))
	e.heap = append(e.heap, s)
	e.slots[s].heapIdx = i
	e.siftUp(i)
}

// heapPop removes and returns the minimum (root) slot index.
func (e *Engine) heapPop() int32 {
	h := e.heap
	s := h[0]
	n := len(h) - 1
	last := h[n]
	e.heap = h[:n]
	if n > 0 {
		e.heap[0] = last
		e.slots[last].heapIdx = 0
		e.siftDown(0)
	}
	e.slots[s].heapIdx = -1
	return s
}

// heapRemoveAt deletes the element at heap position i.
func (e *Engine) heapRemoveAt(i int32) {
	h := e.heap
	n := int32(len(h)) - 1
	s := h[i]
	last := h[n]
	e.heap = h[:n]
	if i < n {
		e.heap[i] = last
		e.slots[last].heapIdx = i
		e.siftDown(i)
		if e.slots[last].heapIdx == i {
			e.siftUp(i)
		}
	}
	e.slots[s].heapIdx = -1
}

func (e *Engine) siftUp(i int32) {
	h := e.heap
	s := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !e.heapLess(s, h[p]) {
			break
		}
		h[i] = h[p]
		e.slots[h[i]].heapIdx = i
		i = p
	}
	h[i] = s
	e.slots[s].heapIdx = i
}

func (e *Engine) siftDown(i int32) {
	h := e.heap
	n := int32(len(h))
	s := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if e.heapLess(h[j], h[m]) {
				m = j
			}
		}
		if !e.heapLess(h[m], s) {
			break
		}
		h[i] = h[m]
		e.slots[h[i]].heapIdx = i
		i = m
	}
	h[i] = s
	e.slots[s].heapIdx = i
}
