package sim

import (
	"testing"
	"time"
)

// BenchmarkEngine measures raw event dispatch throughput: a fixed fan
// of self-rescheduling callbacks, reported in events/sec. This is the
// hot loop under every CSMA and LTE simulation, so regressions here
// show up directly in the bench trajectory (BENCH_sim.json).
func BenchmarkEngine(b *testing.B) {
	const fan = 64 // concurrent timer chains, a typical network's worth
	e := NewEngine(1)
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < b.N {
			e.After(time.Millisecond, tick)
		}
	}
	for i := 0; i < fan && i < b.N; i++ {
		e.After(time.Duration(i)*time.Microsecond, tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.RunAll()
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkScheduleFire is the pure Schedule+fire cycle: one
// self-rescheduling chain, so the heap stays at depth 1 and the number
// measures the engine's fixed per-event cost with no queue pressure and
// no user payload. This is the headline engine_events_per_sec in
// BENCH_sim.json and must run at 0 amortized allocs/op.
func BenchmarkScheduleFire(b *testing.B) {
	e := NewEngine(1)
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < b.N {
			e.After(time.Microsecond, tick)
		}
	}
	e.After(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	e.RunAll()
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineScheduleCancel measures the schedule/cancel path that
// tickers and retransmission timers exercise.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(e.Now()+time.Duration(i%97)*time.Microsecond, fn)
		if i%2 == 0 {
			ev.Cancel()
		}
		if e.Pending() > 1024 {
			e.RunAll()
		}
	}
	e.RunAll()
}

// BenchmarkTicker measures the periodic-event path: after construction
// a Ticker must reschedule in place, alloc-free.
func BenchmarkTicker(b *testing.B) {
	e := NewEngine(1)
	n := 0
	e.Every(time.Millisecond, func() { n++ })
	b.ReportAllocs()
	b.ResetTimer()
	horizon := Time(0)
	for i := 0; i < b.N; i++ {
		horizon += time.Millisecond
		e.Run(horizon)
	}
	if n < b.N {
		b.Fatalf("ticks = %d, want >= %d", n, b.N)
	}
}

// The BENCH_sim.json artifact writer lives in the repo root
// (bench_artifact_test.go) so it can also measure the Wi-Fi CSMA and
// LTE subframe loops without an import cycle.
