package sim

import (
	"testing"
	"time"
)

// BenchmarkEngine measures raw event dispatch throughput: a fixed fan
// of self-rescheduling callbacks, reported in events/sec. This is the
// hot loop under every CSMA and LTE simulation, so regressions here
// show up directly in the bench trajectory (BENCH_runner.json).
func BenchmarkEngine(b *testing.B) {
	const fan = 64 // concurrent timer chains, a typical network's worth
	e := NewEngine(1)
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < b.N {
			e.After(time.Millisecond, tick)
		}
	}
	for i := 0; i < fan && i < b.N; i++ {
		e.After(time.Duration(i)*time.Microsecond, tick)
	}
	b.ResetTimer()
	e.RunAll()
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineScheduleCancel measures the schedule/cancel path that
// tickers and retransmission timers exercise.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(e.Now()+time.Duration(i%97)*time.Microsecond, func() {})
		if i%2 == 0 {
			ev.Cancel()
		}
		if e.Pending() > 1024 {
			e.RunAll()
		}
	}
	e.RunAll()
}
