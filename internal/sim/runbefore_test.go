package sim

import (
	"testing"
	"time"
)

// RunBefore windows must compose to exactly one unwindowed run: same
// firing order, same clock, and a boundary event always lands in the
// window that starts at its timestamp, never the one that ends there.
func TestRunBeforeWindowComposition(t *testing.T) {
	build := func() (*Engine, *[]Time) {
		e := NewEngine(7)
		var fired []Time
		for i := 0; i < 40; i++ {
			at := Time(i%13) * 100 * time.Millisecond // collisions + boundary hits
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		e.Every(250*time.Millisecond, func() {
			if e.Now() < 1200*time.Millisecond {
				e.After(50*time.Millisecond, func() { fired = append(fired, e.Now()) })
			}
		})
		return e, &fired
	}

	ref, refFired := build()
	ref.Run(1500 * time.Millisecond)

	win, winFired := build()
	for end := Time(250 * time.Millisecond); end <= 1500*time.Millisecond; end += 250 * time.Millisecond {
		win.RunBefore(end)
	}

	// Every callback that appends a time fires strictly before 1500ms,
	// so the windowed (exclusive-cut) and reference (inclusive Run)
	// observation sequences must match exactly.
	if len(*winFired) != len(*refFired) {
		t.Fatalf("windowed run observed %d firings, reference %d", len(*winFired), len(*refFired))
	}
	for i, at := range *winFired {
		if (*refFired)[i] != at {
			t.Fatalf("firing %d: windowed at %v, reference at %v", i, at, (*refFired)[i])
		}
	}
	if win.Now() != 1500*time.Millisecond {
		t.Fatalf("windowed clock %v, want 1500ms", win.Now())
	}
}

// An event scheduled exactly at the horizon must not fire, and the
// clock must still advance to the horizon.
func TestRunBeforeExclusiveBoundary(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(100*time.Millisecond, func() { fired = true })
	n := e.RunBefore(100 * time.Millisecond)
	if n != 0 || fired {
		t.Fatalf("boundary event fired inside the window ending at its timestamp")
	}
	if e.Now() != 100*time.Millisecond {
		t.Fatalf("clock %v, want 100ms", e.Now())
	}
	n = e.RunBefore(200 * time.Millisecond)
	if n != 1 || !fired {
		t.Fatalf("boundary event did not fire in the next window")
	}
}

// An empty window still advances the clock, so schedules from a
// barrier-time handler are legal.
func TestRunBeforeEmptyWindowAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	e.RunBefore(300 * time.Millisecond)
	if e.Now() != 300*time.Millisecond {
		t.Fatalf("clock %v, want 300ms", e.Now())
	}
	// Scheduling at the new now must not panic.
	e.Schedule(300*time.Millisecond, func() {})
}
