// Package profiling wires the standard Go profilers into the repo's
// binaries with one flag set: -cpuprofile, -memprofile and -trace.
// Profiles feed `go tool pprof` / `go tool trace` against the hot
// paths the benchmarks in BENCH_sim.json track.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config holds the requested profile outputs. Empty paths disable the
// corresponding profiler.
type Config struct {
	CPUProfile string
	MemProfile string
	Trace      string
}

// AddFlags registers -cpuprofile, -memprofile and -trace on the default
// flag set and returns the Config they populate. Call before
// flag.Parse.
func AddFlags() *Config {
	c := &Config{}
	flag.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this path")
	flag.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this path on exit")
	flag.StringVar(&c.Trace, "trace", "", "write a runtime execution trace to this path")
	return c
}

// Start begins the requested profilers and returns a stop function that
// flushes them; call it (usually via defer) before the process exits.
// With no profiles requested it is a no-op.
func (c *Config) Start() (stop func(), err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
	}
	if c.CPUProfile != "" {
		cpuFile, err = os.Create(c.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	if c.Trace != "" {
		traceFile, err = os.Create(c.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("profiling: start trace: %w", err)
		}
	}
	return func() {
		cleanup()
		if c.MemProfile != "" {
			f, err := os.Create(c.MemProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so live objects dominate
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: write heap profile: %v\n", err)
			}
		}
	}, nil
}
