package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartNoop(t *testing.T) {
	stop, err := (&Config{}).Start()
	if err != nil {
		t.Fatal(err)
	}
	stop()
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	c := &Config{
		CPUProfile: filepath.Join(dir, "cpu.out"),
		MemProfile: filepath.Join(dir, "mem.out"),
		Trace:      filepath.Join(dir, "trace.out"),
	}
	stop, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to flush.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i
	}
	_ = x
	stop()
	for _, p := range []string{c.CPUProfile, c.MemProfile, c.Trace} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	c := &Config{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")}
	if _, err := c.Start(); err == nil {
		t.Fatal("Start with unwritable path did not error")
	}
}
