package geo

import (
	"math"
	"slices"
)

// Grid is a uniform spatial index over a rectangular region: node IDs
// are bucketed by position so that "every node within radius r of p"
// is answered by scanning only the buckets the disk overlaps, instead
// of every node in the world. This is the structure that turns the
// interference hot paths (SINR accumulation, carrier-sense scans, the
// PRACH census) from O(N) per query into O(neighborhood).
//
// The bucket side is normally the query radius — the interference-
// significance radius, see propagation.Model.InterferenceRadius — so a
// radius-r query touches at most a 3x3 block of buckets. Queries with
// other radii remain correct (the covered bucket range is computed per
// call); only the constant factor moves.
//
// Determinism: AppendWithin returns IDs in ascending order, which is
// exactly the order a brute-force scan over a dense node slice visits
// them. Downstream float accumulations (interference denominators)
// therefore sum in the same order as the reference scan and stay
// bit-identical to it.
//
// Mobility: Move rebuckets a node in O(1) (plus the bucket-list edit).
// Callers that also cache link gains must still invalidate those
// caches (propagation.LinkCache.Invalidate) — the grid only answers
// "who is near", never "how loud".
//
// The query path is allocation-free once the caller's scratch slice
// has grown to the neighborhood size; the artifact gate in
// BENCH_city.json enforces 0 allocs/op on it.
type Grid struct {
	bounds   Rect
	cellSize float64
	nx, ny   int
	buckets  [][]int32
	pos      []Point // by ID
	bucket   []int32 // by ID; -1 = not present
	count    int
}

// maxGridBuckets bounds the bucket table so a tiny cell size over a
// huge region cannot blow memory; the cell side is raised until the
// table fits. Queries stay correct — only bucket occupancy grows.
const maxGridBuckets = 1 << 20

// NewGrid builds an empty index over bounds with the given bucket
// side. A non-positive cell size, or one that would exceed the bucket
// budget, is raised to fit. Positions outside bounds are legal: they
// clamp into the border buckets, and the per-node distance check keeps
// query answers exact.
func NewGrid(bounds Rect, cellSize float64) *Grid {
	w, h := bounds.Width(), bounds.Height()
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	if cellSize <= 0 {
		cellSize = math.Max(w, h)
	}
	nx := int(math.Ceil(w / cellSize))
	ny := int(math.Ceil(h / cellSize))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	for nx*ny > maxGridBuckets {
		cellSize *= 2
		nx = (nx + 1) / 2
		ny = (ny + 1) / 2
	}
	return &Grid{
		bounds:   bounds,
		cellSize: cellSize,
		nx:       nx,
		ny:       ny,
		buckets:  make([][]int32, nx*ny),
	}
}

// CellSize returns the effective bucket side in metres.
func (g *Grid) CellSize() float64 { return g.cellSize }

// Len returns the number of indexed nodes.
func (g *Grid) Len() int { return g.count }

// At returns the indexed position of id. It panics if id was never
// inserted.
func (g *Grid) At(id int32) Point {
	if int(id) >= len(g.bucket) || g.bucket[id] < 0 {
		panic("geo: Grid.At on unindexed id")
	}
	return g.pos[id]
}

// cellIndex maps a point to its bucket, clamping out-of-bounds
// coordinates into the border row/column.
func (g *Grid) cellIndex(p Point) int32 {
	cx := int((p.X - g.bounds.MinX) / g.cellSize)
	cy := int((p.Y - g.bounds.MinY) / g.cellSize)
	if cx < 0 {
		cx = 0
	} else if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.ny {
		cy = g.ny - 1
	}
	return int32(cy*g.nx + cx)
}

// Insert adds id at p. Inserting an id twice panics — use Move.
func (g *Grid) Insert(id int32, p Point) {
	for int(id) >= len(g.bucket) {
		g.bucket = append(g.bucket, -1)
		g.pos = append(g.pos, Point{})
	}
	if g.bucket[id] >= 0 {
		panic("geo: Grid.Insert of an id already present")
	}
	b := g.cellIndex(p)
	g.pos[id] = p
	g.bucket[id] = b
	g.buckets[b] = append(g.buckets[b], id)
	g.count++
}

// Move updates id's position, rebucketing only when the node crossed a
// bucket border — the incremental path mobility steps take every epoch.
func (g *Grid) Move(id int32, p Point) {
	if int(id) >= len(g.bucket) || g.bucket[id] < 0 {
		panic("geo: Grid.Move on unindexed id")
	}
	g.pos[id] = p
	old := g.bucket[id]
	b := g.cellIndex(p)
	if b == old {
		return
	}
	g.removeFromBucket(old, id)
	g.bucket[id] = b
	g.buckets[b] = append(g.buckets[b], id)
}

// Remove deletes id from the index.
func (g *Grid) Remove(id int32) {
	if int(id) >= len(g.bucket) || g.bucket[id] < 0 {
		panic("geo: Grid.Remove on unindexed id")
	}
	g.removeFromBucket(g.bucket[id], id)
	g.bucket[id] = -1
	g.count--
}

func (g *Grid) removeFromBucket(b, id int32) {
	lst := g.buckets[b]
	for i, v := range lst {
		if v == id {
			lst[i] = lst[len(lst)-1]
			g.buckets[b] = lst[:len(lst)-1]
			return
		}
	}
	panic("geo: Grid bucket table corrupt")
}

// AppendWithin appends every indexed id whose position lies within
// radius of p (inclusive) to dst and returns the extended slice, in
// ascending id order. It never allocates once dst's capacity covers
// the neighborhood; pass dst[:0] of a reused scratch slice on hot
// paths.
func (g *Grid) AppendWithin(dst []int32, p Point, radius float64) []int32 {
	if radius < 0 {
		return dst
	}
	cx0 := int((p.X - radius - g.bounds.MinX) / g.cellSize)
	cx1 := int((p.X + radius - g.bounds.MinX) / g.cellSize)
	cy0 := int((p.Y - radius - g.bounds.MinY) / g.cellSize)
	cy1 := int((p.Y + radius - g.bounds.MinY) / g.cellSize)
	// Clamp both ends into the table (out-of-bounds nodes live clamped
	// in the border buckets, so a fully out-of-range query must still
	// scan the border).
	cx0, cx1 = clampRange(cx0, cx1, g.nx)
	cy0, cy1 = clampRange(cy0, cy1, g.ny)
	start := len(dst)
	r2 := radius * radius
	for cy := cy0; cy <= cy1; cy++ {
		row := cy * g.nx
		for cx := cx0; cx <= cx1; cx++ {
			for _, id := range g.buckets[row+cx] {
				q := g.pos[id]
				dx, dy := q.X-p.X, q.Y-p.Y
				if dx*dx+dy*dy <= r2 {
					dst = append(dst, id)
				}
			}
		}
	}
	// Bucket iteration order is spatial, not by id; restore the
	// ascending-id order brute-force scans produce so downstream float
	// sums are bit-identical to the reference path.
	slices.Sort(dst[start:])
	return dst
}

// clampRange clamps the inclusive bucket range [lo, hi] into [0, n).
func clampRange(lo, hi, n int) (int, int) {
	if lo < 0 {
		lo = 0
	} else if lo >= n {
		lo = n - 1
	}
	if hi < 0 {
		hi = 0
	} else if hi >= n {
		hi = n - 1
	}
	return lo, hi
}
