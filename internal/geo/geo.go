// Package geo provides the 2-D geometry used by CellFi topologies:
// points, distances, rectangular deployment regions and random placement.
// All coordinates are in metres.
package geo

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a location in the deployment plane, in metres.
type Point struct {
	X, Y float64
}

// String formats the point as "(x, y)" with metre precision.
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Dist returns the Euclidean distance to q in metres.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// Bearing returns the angle from p to q in radians, in [-pi, pi].
func (p Point) Bearing(q Point) float64 {
	return math.Atan2(q.Y-p.Y, q.X-p.X)
}

// Rect is an axis-aligned deployment region.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Square returns a side×side region anchored at the origin.
func Square(side float64) Rect { return Rect{0, 0, side, side} }

// Width and Height return the region dimensions.
func (r Rect) Width() float64  { return r.MaxX - r.MinX }
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Contains reports whether p lies inside (or on the border of) r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Center returns the midpoint of the region.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// RandomPoint returns a uniformly distributed point inside r.
func (r Rect) RandomPoint(rng *rand.Rand) Point {
	return Point{
		X: r.MinX + rng.Float64()*r.Width(),
		Y: r.MinY + rng.Float64()*r.Height(),
	}
}

// RandomPoints returns n independent uniform points inside r.
func (r Rect) RandomPoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = r.RandomPoint(rng)
	}
	return pts
}

// RandomPointInDisk returns a point uniform over the disk of the given
// radius centred at c, clipped to r if clip is non-nil. Clipping uses
// rejection sampling; if the disk and the region barely overlap this can
// loop, so callers must ensure c is inside r.
func RandomPointInDisk(rng *rand.Rand, c Point, radius float64, clip *Rect) Point {
	for {
		// Uniform over a disk: r = R*sqrt(u), theta uniform.
		rr := radius * math.Sqrt(rng.Float64())
		th := rng.Float64() * 2 * math.Pi
		p := Point{c.X + rr*math.Cos(th), c.Y + rr*math.Sin(th)}
		if clip == nil || clip.Contains(p) {
			return p
		}
	}
}

// RandomPointInRing returns a point uniform over the annulus
// [minRadius, maxRadius] around c, clipped to r if clip is non-nil.
func RandomPointInRing(rng *rand.Rand, c Point, minRadius, maxRadius float64, clip *Rect) Point {
	if minRadius < 0 || maxRadius < minRadius {
		panic("geo: invalid ring radii")
	}
	for {
		// Uniform over annulus: r^2 uniform on [min^2, max^2].
		r2 := minRadius*minRadius + rng.Float64()*(maxRadius*maxRadius-minRadius*minRadius)
		rr := math.Sqrt(r2)
		th := rng.Float64() * 2 * math.Pi
		p := Point{c.X + rr*math.Cos(th), c.Y + rr*math.Sin(th)}
		if clip == nil || clip.Contains(p) {
			return p
		}
	}
}

// MinSpacedPoints places n points uniformly in r subject to a minimum
// pairwise spacing, using dart throwing with a bounded number of
// attempts. If the spacing cannot be met it is relaxed geometrically so
// the function always terminates.
//
// The spacing check runs on a Grid bucketed at the requested spacing,
// so each candidate is tested against its local neighborhood only.
// The naive form compared every candidate against every accepted
// point — O(n^2) at best, and far worse once the region crowds up and
// the rejection rate climbs — which made metro-scale AP counts
// (n = 10k+) quadratic in practice. Accept/reject decisions (and so
// the returned points and rng consumption) are identical to the naive
// scan's: the grid query over-approximates by a hair of floating-point
// margin and the exact Dist test makes the call.
func MinSpacedPoints(rng *rand.Rand, r Rect, n int, minSpacing float64) []Point {
	pts := make([]Point, 0, n)
	if n <= 0 {
		return pts
	}
	if minSpacing <= 0 {
		// No constraint: every dart lands.
		return append(pts, r.RandomPoints(rng, n)...)
	}
	g := NewGrid(r, minSpacing)
	var scratch []int32
	spacing := minSpacing
	attempts := 0
	for len(pts) < n {
		p := r.RandomPoint(rng)
		// The grid query inflates the radius by a few ulps so no point
		// the exact Hypot-based test would reject can slip through the
		// squared-distance bucket filter.
		scratch = g.AppendWithin(scratch[:0], p, spacing*(1+1e-9))
		ok := true
		for _, id := range scratch {
			if p.Dist(pts[id]) < spacing {
				ok = false
				break
			}
		}
		if ok {
			g.Insert(int32(len(pts)), p)
			pts = append(pts, p)
			attempts = 0
			continue
		}
		attempts++
		if attempts > 200 {
			spacing *= 0.8 // relax; region too crowded for requested spacing
			attempts = 0
		}
	}
	return pts
}
