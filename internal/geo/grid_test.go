package geo

import (
	"math/rand"
	"testing"
)

// bruteWithin is the reference neighborhood query: a full scan over a
// dense position slice with the same inclusive distance test the grid
// uses, visiting ids in ascending order.
func bruteWithin(pos []Point, p Point, radius float64) []int32 {
	var out []int32
	r2 := radius * radius
	for id, q := range pos {
		dx, dy := q.X-p.X, q.Y-p.Y
		if dx*dx+dy*dy <= r2 {
			out = append(out, int32(id))
		}
	}
	return out
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	area := Square(2000)
	g := NewGrid(area, 250)
	pos := area.RandomPoints(rng, 500)
	for id, p := range pos {
		g.Insert(int32(id), p)
	}
	var scratch []int32
	for _, radius := range []float64{0, 50, 250, 650, 3000} {
		for i := 0; i < 200; i++ {
			q := area.RandomPoint(rng)
			scratch = g.AppendWithin(scratch[:0], q, radius)
			want := bruteWithin(pos, q, radius)
			if !equalIDs(scratch, want) {
				t.Fatalf("radius %g query %v: grid %v != brute %v", radius, q, scratch, want)
			}
		}
	}
}

func TestGridOutOfBoundsNodes(t *testing.T) {
	// Nodes outside the declared bounds clamp into border buckets but
	// must still be found by queries (including queries whose disk lies
	// entirely outside the bounds).
	g := NewGrid(Square(1000), 100)
	pos := []Point{{-500, -500}, {1500, 500}, {500, 500}, {-50, 2000}}
	for id, p := range pos {
		g.Insert(int32(id), p)
	}
	for _, q := range []Point{{-500, -500}, {-480, -510}, {1490, 505}, {500, 500}, {-60, 1990}} {
		got := g.AppendWithin(nil, q, 100)
		want := bruteWithin(pos, q, 100)
		if !equalIDs(got, want) {
			t.Fatalf("query %v: grid %v != brute %v", q, got, want)
		}
	}
}

func TestGridMoveRebuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	area := Square(2000)
	g := NewGrid(area, 200)
	pos := area.RandomPoints(rng, 300)
	for id, p := range pos {
		g.Insert(int32(id), p)
	}
	// Random-walk every node across many epochs, checking queries stay
	// exact after incremental Move updates.
	var scratch []int32
	for step := 0; step < 20; step++ {
		for id := range pos {
			pos[id] = pos[id].Add(rng.Float64()*400-200, rng.Float64()*400-200)
			g.Move(int32(id), pos[id])
		}
		q := area.RandomPoint(rng)
		scratch = g.AppendWithin(scratch[:0], q, 300)
		if want := bruteWithin(pos, q, 300); !equalIDs(scratch, want) {
			t.Fatalf("step %d: grid %v != brute %v", step, scratch, want)
		}
	}
	if g.Len() != len(pos) {
		t.Fatalf("Len = %d after moves, want %d", g.Len(), len(pos))
	}
}

func TestGridRemove(t *testing.T) {
	g := NewGrid(Square(100), 10)
	g.Insert(0, Point{5, 5})
	g.Insert(1, Point{6, 6})
	g.Remove(0)
	got := g.AppendWithin(nil, Point{5, 5}, 50)
	if !equalIDs(got, []int32{1}) {
		t.Fatalf("after Remove: %v, want [1]", got)
	}
	g.Insert(0, Point{7, 7}) // re-insert after removal is legal
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
}

func TestGridDuplicateInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate Insert")
		}
	}()
	g := NewGrid(Square(100), 10)
	g.Insert(3, Point{1, 1})
	g.Insert(3, Point{2, 2})
}

func TestGridBucketBudget(t *testing.T) {
	// A degenerate cell size over a huge region must not blow memory;
	// the effective cell side grows to fit and queries stay exact.
	g := NewGrid(Rect{0, 0, 1e7, 1e7}, 0.001)
	if nb := g.nx * g.ny; nb > maxGridBuckets {
		t.Fatalf("bucket table has %d buckets, budget %d", nb, maxGridBuckets)
	}
	pos := []Point{{1, 1}, {2, 2}, {9e6, 9e6}}
	for id, p := range pos {
		g.Insert(int32(id), p)
	}
	got := g.AppendWithin(nil, Point{0, 0}, 5)
	if !equalIDs(got, []int32{0, 1}) {
		t.Fatalf("query = %v, want [0 1]", got)
	}
}

// The neighborhood query is the inner loop of every indexed
// interference scan; it must not allocate once the scratch slice has
// warmed to the neighborhood size.
func TestGridAppendWithinZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	area := Square(2000)
	g := NewGrid(area, 650)
	for id := 0; id < 2000; id++ {
		g.Insert(int32(id), area.RandomPoint(rng))
	}
	queries := area.RandomPoints(rng, 64)
	scratch := make([]int32, 0, 2048)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		scratch = g.AppendWithin(scratch[:0], queries[i%len(queries)], 650)
		i++
	})
	if allocs != 0 {
		t.Fatalf("AppendWithin allocates %.1f allocs/op, want 0", allocs)
	}
}

// minSpacedPointsRef is the pre-grid implementation, kept verbatim as
// the behavioral reference: MinSpacedPoints must consume the same rng
// draws and return the same points.
func minSpacedPointsRef(rng *rand.Rand, r Rect, n int, minSpacing float64) []Point {
	pts := make([]Point, 0, n)
	spacing := minSpacing
	attempts := 0
	for len(pts) < n {
		p := r.RandomPoint(rng)
		ok := true
		for _, q := range pts {
			if p.Dist(q) < spacing {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, p)
			attempts = 0
			continue
		}
		attempts++
		if attempts > 200 {
			spacing *= 0.8
			attempts = 0
		}
	}
	return pts
}

func TestMinSpacedPointsMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		for _, tc := range []struct {
			n       int
			spacing float64
			side    float64
		}{
			{14, 300, 2000},  // the paper topology
			{50, 1000, 1000}, // infeasible: exercises relaxation
			{200, 50, 2000},
			{30, 0, 500}, // unconstrained
		} {
			got := MinSpacedPoints(rand.New(rand.NewSource(seed)), Square(tc.side), tc.n, tc.spacing)
			want := minSpacedPointsRef(rand.New(rand.NewSource(seed)), Square(tc.side), tc.n, tc.spacing)
			if len(got) != len(want) {
				t.Fatalf("seed %d %+v: %d points, reference %d", seed, tc, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d %+v: point %d = %v, reference %v", seed, tc, i, got[i], want[i])
				}
			}
		}
	}
}

// Metro-scale placement: 10k APs with a feasible-but-tight spacing.
// The naive scan's rejection sampling was quadratic here (every dart
// checked against every accepted point); the grid keeps each check
// local, so this completes in well under a second.
func TestMinSpacedPoints10k(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	area := Square(10000)
	const n, spacing = 10000, 70.0
	pts := MinSpacedPoints(rng, area, n, spacing)
	if len(pts) != n {
		t.Fatalf("placed %d points, want %d", len(pts), n)
	}
	// Spot-check the spacing invariant through an independent grid.
	g := NewGrid(area, spacing)
	for id, p := range pts {
		g.Insert(int32(id), p)
	}
	var scratch []int32
	for id, p := range pts {
		scratch = g.AppendWithin(scratch[:0], p, spacing*0.999)
		for _, other := range scratch {
			if int(other) != id {
				t.Fatalf("points %d and %d closer than spacing", id, other)
			}
		}
	}
}

func BenchmarkGridAppendWithin(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	area := Square(8000)
	g := NewGrid(area, 650)
	for id := 0; id < 2000; id++ {
		g.Insert(int32(id), area.RandomPoint(rng))
	}
	queries := area.RandomPoints(rng, 256)
	scratch := make([]int32, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = g.AppendWithin(scratch[:0], queries[i%len(queries)], 650)
	}
}

func BenchmarkMinSpacedPoints10k(b *testing.B) {
	area := Square(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		MinSpacedPoints(rng, area, 10000, 70)
	}
}
