package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-2, 0}, Point{2, 0}, 4},
		{Point{0, -1.5}, Point{0, 1.5}, 3},
	}
	for _, c := range cases {
		if got := c.a.Dist(c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v, %v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := Square(1000)
	for i := 0; i < 500; i++ {
		a, b, c := r.RandomPoint(rng), r.RandomPoint(rng), r.RandomPoint(rng)
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-9 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestBearing(t *testing.T) {
	p := Point{0, 0}
	cases := []struct {
		q    Point
		want float64
	}{
		{Point{1, 0}, 0},
		{Point{0, 1}, math.Pi / 2},
		{Point{-1, 0}, math.Pi},
		{Point{0, -1}, -math.Pi / 2},
	}
	for _, c := range cases {
		if got := p.Bearing(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Bearing to %v = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 10, 20}
	for _, p := range []Point{{0, 0}, {10, 20}, {5, 5}} {
		if !r.Contains(p) {
			t.Errorf("expected %v inside %v", p, r)
		}
	}
	for _, p := range []Point{{-0.1, 5}, {10.1, 5}, {5, -1}, {5, 20.5}} {
		if r.Contains(p) {
			t.Errorf("expected %v outside %v", p, r)
		}
	}
}

func TestRectCenterAndDims(t *testing.T) {
	r := Rect{10, 20, 30, 60}
	if c := r.Center(); c != (Point{20, 40}) {
		t.Errorf("Center = %v", c)
	}
	if r.Width() != 20 || r.Height() != 40 {
		t.Errorf("dims = %g x %g", r.Width(), r.Height())
	}
}

func TestRandomPointsInside(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := Square(2000)
	for _, p := range r.RandomPoints(rng, 1000) {
		if !r.Contains(p) {
			t.Fatalf("point %v outside region", p)
		}
	}
}

func TestRandomPointsUniformQuadrants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := Square(100)
	var q [4]int
	const n = 8000
	for _, p := range r.RandomPoints(rng, n) {
		i := 0
		if p.X > 50 {
			i |= 1
		}
		if p.Y > 50 {
			i |= 2
		}
		q[i]++
	}
	for i, c := range q {
		if c < n/4-300 || c > n/4+300 {
			t.Errorf("quadrant %d has %d of %d points; not uniform", i, c, n)
		}
	}
}

func TestRandomPointInDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := Point{500, 500}
	const radius = 120.0
	inner := 0
	const n = 4000
	for i := 0; i < n; i++ {
		p := RandomPointInDisk(rng, c, radius, nil)
		d := c.Dist(p)
		if d > radius+1e-9 {
			t.Fatalf("point %v outside disk (d=%g)", p, d)
		}
		if d < radius/math.Sqrt2 {
			inner++
		}
	}
	// Half the area lies within R/sqrt(2); expect ~n/2.
	if inner < n/2-250 || inner > n/2+250 {
		t.Errorf("inner-half count %d of %d; disk sampling not uniform", inner, n)
	}
}

func TestRandomPointInDiskClipped(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := Square(1000)
	c := Point{10, 10} // near corner: most of the disk is outside
	for i := 0; i < 500; i++ {
		p := RandomPointInDisk(rng, c, 300, &r)
		if !r.Contains(p) {
			t.Fatalf("clipped point %v escaped region", p)
		}
	}
}

func TestRandomPointInRing(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := Point{0, 0}
	for i := 0; i < 2000; i++ {
		p := RandomPointInRing(rng, c, 50, 100, nil)
		d := c.Dist(p)
		if d < 50-1e-9 || d > 100+1e-9 {
			t.Fatalf("ring point at distance %g outside [50,100]", d)
		}
	}
}

func TestRandomPointInRingBadRadii(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for max < min")
		}
	}()
	RandomPointInRing(rand.New(rand.NewSource(1)), Point{}, 10, 5, nil)
}

func TestMinSpacedPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := Square(2000)
	pts := MinSpacedPoints(rng, r, 14, 300)
	if len(pts) != 14 {
		t.Fatalf("placed %d points, want 14", len(pts))
	}
	for i := range pts {
		if !r.Contains(pts[i]) {
			t.Fatalf("point %v outside region", pts[i])
		}
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) < 300 {
				t.Fatalf("points %v and %v closer than spacing", pts[i], pts[j])
			}
		}
	}
}

func TestMinSpacedPointsRelaxes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// 50 points with 1km spacing cannot fit in 1km square: must relax
	// rather than loop forever.
	pts := MinSpacedPoints(rng, Square(1000), 50, 1000)
	if len(pts) != 50 {
		t.Fatalf("placed %d points, want 50", len(pts))
	}
}

func BenchmarkDist(b *testing.B) {
	p, q := Point{1, 2}, Point{300, 400}
	for i := 0; i < b.N; i++ {
		_ = p.Dist(q)
	}
}
