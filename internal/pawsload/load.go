// Package pawsload is the open-loop load harness for the PAWS spectrum
// database. It drives up to hundreds of thousands of simulated access
// points through a live paws.Server — optionally behind the
// internal/faults latency and outage surfaces — and reports sustained
// throughput, client-observed latency quantiles, and the database's own
// cache and lease-churn counters.
//
// Two drive modes share one request schedule:
//
//   - lean (default): each simulated AP pre-marshals its JSON-RPC
//     AVAIL_SPECTRUM_REQ body once; workers replay the bodies straight
//     into the handler through a reusable ResponseWriter sink. This
//     measures the database (decode → dispatch → index/cache → encode)
//     without paying for per-request allocation in the harness itself,
//     which is what lets one core push ≥ 50k queries/sec.
//
//   - wire: each AP is a full paws.Client calling through a
//     faults.Injector round-tripper, so retries, fault classification
//     and transport behavior are all in the measured path. Slower, used
//     for fidelity runs and fault-profile soaks.
//
// Pacing is open-loop: request k has a scheduled start time of
// start + k/TargetQPS, taken from a global atomic ticket counter, and
// workers sleep until their ticket's slot. Arrivals that fall behind
// schedule are counted (LateStarts) instead of silently converting the
// run to closed-loop back-pressure.
package pawsload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cellfi/internal/faults"
	"cellfi/internal/geo"
	"cellfi/internal/paws"
	"cellfi/internal/pawsdb"
	"cellfi/internal/spectrum"
	"cellfi/internal/stats"
)

// Config describes one load run. The zero value is filled with the
// defaults documented per field.
type Config struct {
	// Clients is the number of distinct simulated APs (serial numbers
	// and locations). Default 1000.
	Clients int
	// Requests is the total number of AVAIL_SPECTRUM_REQ calls to
	// issue, round-robined over the clients. Default 10 * Clients.
	Requests int
	// TargetQPS is the open-loop arrival rate; 0 issues requests as
	// fast as the workers can.
	TargetQPS float64
	// Workers is the number of concurrent driver goroutines. Default
	// 4 * GOMAXPROCS.
	Workers int
	// Seed drives registry synthesis, client placement and fault
	// schedules. Default 1.
	Seed int64
	// Incumbents is how many primary users the synthetic metro
	// registry carries. Default 160.
	Incumbents int
	// RegionM is the half-width in metres of the square metro region
	// clients and incumbents are placed in. Default 30000.
	RegionM float64
	// DisableCache turns the database's response cache off, measuring
	// the pure index path.
	DisableCache bool
	// Wire switches to wire mode (full paws.Client per AP).
	Wire bool
	// FaultProfile names a faults profile for the wire-mode injector
	// ("" injects nothing). Ignored in lean mode.
	FaultProfile string
	// Outages are scripted server-side outage windows (offsets from
	// the run start) applied through faults.FlakyHandler.
	Outages []faults.Window
	// OutageStatus is the HTTP status served inside outage windows;
	// 0 means 503.
	OutageStatus int
}

func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 1000
	}
	if c.Requests <= 0 {
		c.Requests = 10 * c.Clients
	}
	if c.Workers <= 0 {
		c.Workers = 4 * runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Incumbents <= 0 {
		c.Incumbents = 160
	}
	if c.RegionM <= 0 {
		c.RegionM = 30000
	}
	return c
}

// Result is what one load run measured.
type Result struct {
	Clients  int     `json:"clients"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	Duration float64 `json:"duration_sec"`
	// QPS is completed requests divided by wall time — the sustained
	// rate, not the configured target.
	QPS float64 `json:"qps"`
	// LateStarts counts paced requests that missed their scheduled
	// slot by more than one millisecond (the harness fell behind the
	// target rate).
	LateStarts int64 `json:"late_starts"`

	LatencyP50Ns  int64   `json:"latency_p50_ns"`
	LatencyP99Ns  int64   `json:"latency_p99_ns"`
	LatencyMeanNs float64 `json:"latency_mean_ns"`

	// DB is the database's own view of the run: cache hit rate, lease
	// churn, rebuilds, dispatch latency.
	DB pawsdb.MetricsSnapshot `json:"db"`
}

// BuildRegistry synthesizes a seeded metro-scale incumbent registry
// with the occupancy structure a real white-space metro shows: TV
// protection contours are tens of kilometres across, so from any one
// city they either blanket the whole region or miss it entirely; only
// venue-scale wireless mics and the rare contour edge that happens to
// fall across town create street-level availability boundaries. All
// schedules are open-ended so a run's answers are stable end to end.
func BuildRegistry(seed int64, incumbents int, regionM float64) *spectrum.Registry {
	rng := rand.New(rand.NewSource(seed))
	reg := spectrum.NewRegistry(spectrum.EU)
	first, last := reg.Domain.ChannelRange()
	for i := 0; i < incumbents; i++ {
		inc := spectrum.Incumbent{
			Channel: first + rng.Intn(last-first+1),
			Location: geo.Point{
				X: (rng.Float64()*2 - 1) * regionM,
				Y: (rng.Float64()*2 - 1) * regionM,
			},
		}
		switch rng.Intn(20) {
		case 0, 1, 2, 3, 4, 5, 6, 7, 8, 9: // TV contour blanketing the metro
			inc.Kind = spectrum.TVStation
			inc.ProtectRadius = regionM * (4 + rng.Float64()*4)
		case 10, 11, 12: // TV contour whose edge misses the metro
			inc.Kind = spectrum.TVStation
			d := regionM * 5
			th := rng.Float64() * 2 * math.Pi
			inc.Location = geo.Point{X: d * math.Cos(th), Y: d * math.Sin(th)}
			inc.ProtectRadius = regionM * (1 + rng.Float64())
		case 14, 15: // contour edge crossing town: real spatial boundary
			inc.Kind = spectrum.TVStation
			inc.ProtectRadius = 3000 + rng.Float64()*7000
		default: // wireless-mic venue
			inc.Kind = spectrum.WirelessMic
			inc.ProtectRadius = 100 + rng.Float64()*800
		}
		if err := reg.AddIncumbent(inc); err != nil {
			panic(err) // channel drawn from the domain's own range
		}
	}
	return reg
}

// placements draws one fixed location per client over the region.
func placements(cfg Config) []geo.Point {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x51ab))
	pts := make([]geo.Point, cfg.Clients)
	for i := range pts {
		pts[i] = geo.Point{
			X: (rng.Float64()*2 - 1) * cfg.RegionM,
			Y: (rng.Float64()*2 - 1) * cfg.RegionM,
		}
	}
	return pts
}

// sink is a minimal ResponseWriter the lean mode reuses per worker, so
// measuring the server does not also measure httptest allocation.
type sink struct {
	hdr    http.Header
	status int
	buf    []byte
}

func newSink() *sink { return &sink{hdr: make(http.Header, 4)} }

func (s *sink) Header() http.Header         { return s.hdr }
func (s *sink) WriteHeader(code int)        { s.status = code }
func (s *sink) Write(p []byte) (int, error) { s.buf = append(s.buf, p...); return len(p), nil }
func (s *sink) reset() {
	s.status = http.StatusOK
	s.buf = s.buf[:0]
	for k := range s.hdr {
		delete(s.hdr, k)
	}
}

// failed reports whether the captured response is anything other than
// a successful JSON-RPC result (HTTP error, or an "error" member in
// the envelope — success envelopes omit it).
func (s *sink) failed() bool {
	return s.status != http.StatusOK || bytes.Contains(s.buf, []byte(`"error"`))
}

// Run executes one load run against a fresh database built from the
// config's seed and returns its measurements.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	reg := BuildRegistry(cfg.Seed, cfg.Incumbents, cfg.RegionM)
	db := pawsdb.New(reg, pawsdb.Options{DisableCache: cfg.DisableCache})
	srv := paws.NewServerWith(db)
	return RunAgainst(cfg, srv)
}

// RunAgainst executes a load run against a caller-supplied server
// (whose database supplies the Result's DB snapshot). The registry
// behind srv is not modified.
func RunAgainst(cfg Config, srv *paws.Server) (Result, error) {
	cfg = cfg.withDefaults()
	var handler http.Handler = srv
	start := time.Now()
	if len(cfg.Outages) > 0 {
		handler = &faults.FlakyHandler{
			Inner:   srv,
			Windows: cfg.Outages,
			Start:   start,
			Status:  cfg.OutageStatus,
		}
	}

	pts := placements(cfg)
	var (
		hist    stats.Histogram
		ticket  atomic.Int64
		errs    atomic.Int64
		late    atomic.Int64
		wg      sync.WaitGroup
		perTick time.Duration
	)
	if cfg.TargetQPS > 0 {
		perTick = time.Duration(float64(time.Second) / cfg.TargetQPS)
	}

	// pace blocks until ticket k's scheduled slot (open-loop), and
	// counts arrivals that missed it by more than a millisecond.
	pace := func(k int64) {
		if perTick == 0 {
			return
		}
		sched := start.Add(time.Duration(k) * perTick)
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		} else if -d > time.Millisecond {
			late.Add(1)
		}
	}

	worker := func(drive func(client int) bool) {
		defer wg.Done()
		for {
			k := ticket.Add(1) - 1
			if k >= int64(cfg.Requests) {
				return
			}
			pace(k)
			t := time.Now()
			ok := drive(int(k) % cfg.Clients)
			hist.Observe(time.Since(t))
			if !ok {
				errs.Add(1)
			}
		}
	}

	if cfg.Wire {
		transport := http.RoundTripper(faults.HandlerTransport{Handler: handler})
		if cfg.FaultProfile != "" {
			prof, ok := faults.ProfileByName(cfg.FaultProfile)
			if !ok {
				return Result{}, fmt.Errorf("pawsload: unknown fault profile %q (have %v)",
					cfg.FaultProfile, faults.ProfileNames())
			}
			transport = faults.NewInjector(transport, faults.NewSeeded(prof, cfg.Seed))
		}
		hc := &http.Client{Transport: transport}
		clients := make([]*paws.Client, cfg.Clients)
		for i := range clients {
			clients[i] = paws.NewClient("http://pawsdb.load/paws", fmt.Sprintf("AP-%06d", i))
			clients[i].HTTPClient = hc
		}
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go worker(func(ci int) bool {
				_, err := clients[ci].GetSpectrum(pts[ci], 15)
				return err == nil
			})
		}
	} else {
		bodies := prebuildBodies(cfg, pts)
		target, err := url.Parse("http://pawsdb.load/paws")
		if err != nil {
			return Result{}, err
		}
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			rd := bytes.NewReader(nil)
			req := &http.Request{
				Method: http.MethodPost,
				URL:    target,
				Host:   target.Host,
				Header: http.Header{"Content-Type": {"application/json"}},
				Body:   io.NopCloser(rd),
			}
			snk := newSink()
			go worker(func(ci int) bool {
				rd.Reset(bodies[ci])
				snk.reset()
				handler.ServeHTTP(snk, req)
				return !snk.failed()
			})
		}
	}
	wg.Wait()

	wall := time.Since(start)
	lat := hist.Snapshot()
	res := Result{
		Clients:       cfg.Clients,
		Requests:      int64(cfg.Requests),
		Errors:        errs.Load(),
		Duration:      wall.Seconds(),
		LateStarts:    late.Load(),
		LatencyP50Ns:  lat.Quantile(0.50),
		LatencyP99Ns:  lat.Quantile(0.99),
		LatencyMeanNs: lat.Mean(),
		DB:            srv.DB().Snapshot(time.Now()),
	}
	if wall > 0 {
		res.QPS = float64(cfg.Requests) / wall.Seconds()
	}
	return res, nil
}

// prebuildBodies marshals each client's JSON-RPC request envelope once,
// up front, so the lean hot loop replays bytes instead of re-encoding.
func prebuildBodies(cfg Config, pts []geo.Point) [][]byte {
	bodies := make([][]byte, cfg.Clients)
	for i := range bodies {
		params, err := json.Marshal(paws.AvailSpectrumReq{
			DeviceDesc: paws.DeviceDescriptor{
				SerialNumber:   fmt.Sprintf("AP-%06d", i),
				ManufacturerID: "cellfi",
				ModelID:        "ap-e40",
				DeviceType:     "FIXED",
				RulesetIDs:     []string{"ETSI-EN-301-598-2014"},
			},
			Location:       paws.ToGeo(pts[i]),
			AntennaHeightM: 15,
		})
		if err != nil {
			panic(err)
		}
		body, err := json.Marshal(paws.RPCRequest(paws.MethodGetSpectrum, params, int64(i+1)))
		if err != nil {
			panic(err)
		}
		bodies[i] = body
	}
	return bodies
}
