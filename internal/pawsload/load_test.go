package pawsload

import (
	"testing"
	"time"

	"cellfi/internal/faults"
)

// TestLeanRun drives a small lean-mode run and checks the harness's
// accounting against the database's own counters.
func TestLeanRun(t *testing.T) {
	res, err := Run(Config{Clients: 200, Requests: 4000, Workers: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("clean run reported %d errors", res.Errors)
	}
	if res.QPS <= 0 || res.LatencyP99Ns <= 0 {
		t.Fatalf("degenerate measurements: %+v", res)
	}
	if res.DB.Queries != 4000 {
		t.Fatalf("db saw %d queries, harness sent 4000", res.DB.Queries)
	}
	// 200 clients over a 60 km region land in far fewer cells than
	// there are requests: the cache must be doing real work.
	if res.DB.CacheHitRate < 0.5 {
		t.Fatalf("cache hit rate %.2f, want >= 0.5", res.DB.CacheHitRate)
	}
	// Every client holds a lease; re-queries renew rather than regrant.
	if res.DB.LeasesGranted != 200 || res.DB.LeasesRenewed != 3800 {
		t.Fatalf("lease churn granted=%d renewed=%d, want 200/3800",
			res.DB.LeasesGranted, res.DB.LeasesRenewed)
	}
}

// TestLeanMatchesWire: both modes must agree with the database's
// accounting; wire mode additionally exercises the real client.
func TestWireRun(t *testing.T) {
	res, err := Run(Config{Clients: 50, Requests: 500, Workers: 4, Seed: 3, Wire: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("clean wire run reported %d errors", res.Errors)
	}
	if res.DB.Queries != 500 {
		t.Fatalf("db saw %d queries, want 500", res.DB.Queries)
	}
}

// TestWireRunWithFaults: a seeded injector profile must surface some
// client-visible failures without wedging the run.
func TestWireRunWithFaults(t *testing.T) {
	// "outage" injects only instant faults (5xx bursts, drops), so the
	// test doesn't pay real injected-latency sleeps.
	res, err := Run(Config{
		Clients: 20, Requests: 300, Workers: 2, Seed: 11,
		Wire: true, FaultProfile: "outage",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatal("outage profile produced no client-visible errors over 300 calls")
	}
	if res.DB.Queries == 0 {
		t.Fatal("no request reached the database through the injector")
	}
}

// TestOutageWindowCountsErrors: requests landing in a FlakyHandler
// window must be counted as errors, and the run must keep its open-loop
// pace through the outage rather than stalling.
func TestOutageWindowCountsErrors(t *testing.T) {
	res, err := Run(Config{
		Clients: 100, Requests: 2000, Workers: 4, Seed: 5,
		TargetQPS: 4000,
		Outages:   []faults.Window{{From: 100 * time.Millisecond, To: 250 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatal("outage window produced no errors")
	}
	if res.Errors >= res.Requests {
		t.Fatalf("every request failed (%d/%d): outage never lifted", res.Errors, res.Requests)
	}
	// The DB only sees the requests that got past the outage wrapper.
	if got := res.DB.Queries + res.Errors; got != res.Requests {
		t.Fatalf("queries(%d) + outage errors(%d) = %d, want %d",
			res.DB.Queries, res.Errors, got, res.Requests)
	}
}

// TestPacingHonorsTarget: a paced run must take at least as long as the
// schedule implies (open-loop, not burst-then-idle).
func TestPacingHonorsTarget(t *testing.T) {
	res, err := Run(Config{Clients: 10, Requests: 400, Workers: 4, Seed: 2, TargetQPS: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if min := 0.9 * 400.0 / 2000.0; res.Duration < min {
		t.Fatalf("run finished in %.3fs, schedule floor is %.3fs", res.Duration, min)
	}
	if res.QPS > 2000*1.5 {
		t.Fatalf("sustained %.0f qps against a 2000 qps target", res.QPS)
	}
}

// TestBadFaultProfile: an unknown profile is a config error, not a
// silent no-fault run.
func TestBadFaultProfile(t *testing.T) {
	if _, err := Run(Config{Clients: 5, Requests: 10, Wire: true, FaultProfile: "no-such-profile"}); err == nil {
		t.Fatal("unknown fault profile accepted")
	}
}
