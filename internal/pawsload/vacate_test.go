package pawsload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cellfi/internal/core"
	"cellfi/internal/faults"
	"cellfi/internal/geo"
	"cellfi/internal/paws"
	"cellfi/internal/pawsdb"
)

// TestVacateUnderFailover is the fleet-scale regulatory property: a
// fleet of concurrent APs polling the production pawsdb-backed server
// through a scripted database failover must, at every virtual second,
// satisfy the ETSI EN 301 598 invariant — no AP transmits more than
// core.VacateDeadline past its last successful database contact, as
// judged by an independent wire observer per AP (not the selector's
// own bookkeeping).
//
// The schedule has two outages: one longer than the vacate budget
// (every on-air AP must go dark and reacquire after recovery) and one
// shorter (the grace period must ride it out with zero vacates).
func TestVacateUnderFailover(t *testing.T) {
	const (
		fleetSize = 40
		steps     = 500 // virtual seconds; APs poll once per second
	)
	var (
		blackout = faults.Window{From: 60 * time.Second, To: 210 * time.Second}  // 150s > VacateDeadline
		blip     = faults.Window{From: 350 * time.Second, To: 380 * time.Second} // 30s < VacateDeadline
	)

	start := time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC)
	var elapsedNs atomic.Int64
	vnow := func() time.Time { return start.Add(time.Duration(elapsedNs.Load())) }

	reg := BuildRegistry(9, 60, 30000)
	srv := paws.NewServerWith(pawsdb.New(reg, pawsdb.Options{}))
	srv.Now = vnow
	flaky := &faults.FlakyHandler{
		Inner:   srv,
		Windows: []faults.Window{blackout, blip},
		Start:   start,
		Now:     vnow,
	}

	type ap struct {
		sel *core.ChannelSelector
		obs *wireObserver
	}
	rng := rand.New(rand.NewSource(9 ^ 0x51ab))
	fleet := make([]*ap, fleetSize)
	for i := range fleet {
		obs := &wireObserver{
			inner: faults.HandlerTransport{Handler: flaky},
			now:   vnow,
		}
		cl := paws.NewClient("http://pawsdb.virtual/paws", fmt.Sprintf("AP-VAC-%03d", i))
		cl.HTTPClient = &http.Client{Transport: obs}
		cl.Retry = paws.RetryPolicy{
			MaxAttempts: 2,
			BaseDelay:   100 * time.Millisecond,
			MaxDelay:    time.Second,
			Seed:        int64(i),
			Sleep:       func(time.Duration) {}, // retries are instant in virtual time
		}
		loc := geo.Point{
			X: (rng.Float64()*2 - 1) * 30000,
			Y: (rng.Float64()*2 - 1) * 30000,
		}
		fleet[i] = &ap{sel: core.NewChannelSelector(cl, loc, 15), obs: obs}
	}

	onAir := func() map[int]bool {
		now := vnow()
		set := map[int]bool{}
		for i, a := range fleet {
			if a.sel.TransmitAllowed(now) {
				set[i] = true
			}
		}
		return set
	}

	var preBlackout, preBlip map[int]bool
	var preBlipVacated uint64
	for step := 1; step <= steps; step++ {
		elapsedNs.Store(int64(step) * int64(time.Second))
		now := vnow()

		// All APs poll concurrently: the server, lease store and cache
		// see real contention (the suite runs under -race).
		var wg sync.WaitGroup
		for _, a := range fleet {
			wg.Add(1)
			go func(a *ap) {
				defer wg.Done()
				a.sel.Refresh(now)
			}(a)
		}
		wg.Wait()

		// THE invariant, every AP, every step: transmission implies
		// wire-observed contact within the vacate budget.
		for i, a := range fleet {
			if !a.sel.TransmitAllowed(now) {
				continue
			}
			if a.obs.last.IsZero() {
				t.Fatalf("step %d: AP %d transmitting with no successful contact ever", step, i)
			}
			if age := now.Sub(a.obs.last); age > core.VacateDeadline {
				t.Fatalf("step %d: AP %d transmitting %v past last contact (budget %v)",
					step, i, age, core.VacateDeadline)
			}
		}

		elapsed := time.Duration(step) * time.Second
		switch {
		case elapsed == blackout.From-time.Second:
			preBlackout = onAir()
			if len(preBlackout) == 0 {
				t.Fatalf("no AP on air before the blackout; the scenario tests nothing")
			}
		case elapsed >= blackout.From+core.VacateDeadline+2*time.Second && elapsed < blackout.To:
			// Deep blackout: the vacate budget of every AP has expired.
			if on := onAir(); len(on) != 0 {
				t.Fatalf("t=+%v: %d APs still transmitting deep into a %v outage",
					elapsed, len(on), blackout.To-blackout.From)
			}
		case elapsed == blackout.To+2*time.Second:
			// Two polls after recovery every previously on-air AP must
			// be back on a channel.
			on := onAir()
			for i := range preBlackout {
				if !on[i] {
					t.Fatalf("AP %d did not reacquire within 2 polls of the blackout ending", i)
				}
			}
		case elapsed == blip.From-time.Second:
			preBlip = onAir()
			for _, a := range fleet {
				preBlipVacated += a.sel.Stats().Vacated
			}
		case elapsed == blip.To+2*time.Second:
			// The short blip fits inside the vacate budget: grace must
			// have carried every on-air AP through with no vacate.
			on := onAir()
			grace := uint64(0)
			vacated := uint64(0)
			for _, a := range fleet {
				st := a.sel.Stats()
				grace += st.GraceEntries
				vacated += st.Vacated
			}
			for i := range preBlip {
				if !on[i] {
					t.Fatalf("AP %d dropped off air across a %v blip (budget %v)",
						i, blip.To-blip.From, core.VacateDeadline)
				}
			}
			if vacated != preBlipVacated {
				t.Fatalf("short blip caused %d vacates; grace period should have absorbed it",
					vacated-preBlipVacated)
			}
			if grace == 0 {
				t.Fatal("no AP entered grace during the blip; the scenario tests nothing")
			}
		}
	}

	// The run must have exercised both sides of the gate.
	var contacts int64
	var vacated uint64
	for _, a := range fleet {
		contacts += int64(a.obs.n)
		vacated += a.sel.Stats().Vacated
	}
	if contacts == 0 {
		t.Fatal("fleet never reached the database")
	}
	if vacated == 0 {
		t.Fatal("blackout never forced a vacate; the invariant was not stressed")
	}
}

// wireObserver records, in virtual time, every exchange in which the
// database coherently answered (HTTP 200, valid JSON-RPC, no error
// member) — the regulatory notion of "successful contact". Each AP
// owns one, so the assertion judges the wire, not selector state.
type wireObserver struct {
	inner http.RoundTripper
	now   func() time.Time
	last  time.Time
	n     int
}

func (o *wireObserver) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := o.inner.RoundTrip(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		return resp, err
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	resp.Body = io.NopCloser(bytes.NewReader(body))
	if rerr != nil {
		return resp, err
	}
	var rr struct {
		Result json.RawMessage `json:"result"`
		Error  *paws.RPCError  `json:"error"`
	}
	if json.Unmarshal(body, &rr) == nil && rr.Error == nil && rr.Result != nil {
		o.last = o.now()
		o.n++
	}
	return resp, err
}
