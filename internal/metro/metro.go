// Package metro simulates one city-scale CellFi deployment — thousands
// of access points and 100k+ UEs in a single world — fast enough to
// outrun the wall clock on one core, and across many cores without
// giving up determinism.
//
// The epoch simulator in internal/netsim keeps per-object structs and
// dense [cells][clients] budget matrices; at 2,000 APs x 100k UEs that
// matrix alone is gigabytes and every epoch walks it. This package
// restructures the same physics for scale:
//
//   - Per-UE state lives in dense SoA arrays (positions, serving-AP
//     index, queue/delivered counters, last CQI), so the per-epoch
//     sweep is cache-linear instead of pointer-chasing.
//   - Each UE carries a bounded-degree adjacency row (fixed stride,
//     CSR-style nbrAP/nbrRxMW slabs) holding only the APs inside the
//     interference-significance radius, found through the geo.Grid
//     spatial index; mean rx powers are precomputed in float32
//     milliwatts, fades come one batch row at a time from
//     propagation.Fading.AppendGainsLinear (the ziggurat kernel), and
//     the CQI quantizes straight from the linear ratio
//     (phy.LTECQIFromLinearSINR) — no transcendentals in the sweep.
//   - Whole-run metrics go to bounded-memory streaming aggregates
//     (stats.StreamStat, stats.QuantileSketch) instead of retained
//     samples.
//
// # Sharded execution
//
// With Config.Shards > 1 the city is cut into vertical slabs of equal
// width and driven by an internal/shard cluster: each slab owns the UEs
// inside it and runs its epoch phases on its own goroutine, in
// conservative 250 ms windows. One 1-second epoch is four windows:
//
//	t+0    attach/detach walk over the shard's slice of the global
//	       attach permutation (per-AP load changes accumulate in
//	       per-shard delta arrays, folded into the shared load table
//	       at the barrier)
//	t+250  mobility for the epoch's cohort; a UE stepping across a slab
//	       boundary stages a handoff Msg to the new owner, applied at
//	       the barrier
//	t+500  the SINR/throughput sweep over owned attached UEs
//	t+750  (fold, single-threaded) load deltas and per-shard aggregates
//	       merge, streaming stats recompute, trace records emit, the
//	       epoch counter advances and incumbent arrivals/departures for
//	       the next epoch apply
//
// Every quantity that crosses a shard boundary is either an integer
// delta (commutative, so fold order cannot matter) or a handoff whose
// effect is a single ownership byte — which is why the same seed and
// config produce byte-identical trace streams and per-UE state at ANY
// shard count, including the unsharded direct path. The 50-seed
// equivalence test in shard_equivalence_test.go pins that contract.
//
// Determinism within one mode mirrors the rest of the repo: with
// UseSpatialIndex off, neighbor rows are rebuilt by brute-force scans
// truncated with the identical inclusive r^2 predicate, visiting APs in
// ascending index order — byte-identical results, used by the
// equivalence tests.
package metro

import (
	"math"
	"math/rand"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/phy"
	"cellfi/internal/propagation"
	"cellfi/internal/shard"
	"cellfi/internal/sim"
	"cellfi/internal/stats"
	"cellfi/internal/trace"
)

// Phase offsets inside one 1-second epoch; shardWindow is the
// conservative lookahead of the cluster (see package doc).
const (
	epochDur    = time.Second
	shardWindow = 250 * time.Millisecond
	offAttach   = 0
	offMobility = 250 * time.Millisecond
	offSweep    = 500 * time.Millisecond
	offFold     = 750 * time.Millisecond
)

// Cross-shard message kinds.
const (
	// msgHandoff transfers ownership of a UE that walked across a slab
	// boundary. Args: UE index, new owner shard.
	msgHandoff int32 = iota + 1
)

// IncumbentEvent is a primary-user pop-up: at Epoch, every AP within
// RadiusM of (X, Y) falls silent (no signal, no interference) until the
// incumbent departs Duration epochs later; Duration <= 0 keeps it on
// the air forever. Overlapping incumbents nest (an AP is silent while
// covered by at least one).
type IncumbentEvent struct {
	Epoch    int64
	Duration int64
	X, Y     float64
	RadiusM  float64
}

// Config sizes a metro world.
type Config struct {
	Seed int64
	// NAPs / NUEs are the deployment scale.
	NAPs, NUEs int
	// AreaW / AreaH is the city rectangle in metres.
	AreaW, AreaH float64
	// APSpacingM is the minimum AP separation (jittered placement).
	APSpacingM float64
	// RadiusM is the interference-significance radius: APs farther than
	// this from a UE contribute nothing (see
	// propagation.Model.InterferenceRadius for the principled choice).
	RadiusM float64
	// UseSpatialIndex resolves neighborhoods through geo.Grid queries;
	// off, the same truncation runs as a brute-force scan (reference
	// mode for equivalence tests — quadratic, small worlds only).
	UseSpatialIndex bool
	// MaxNeighbors bounds each UE's adjacency row. Overflow keeps the
	// lowest AP indices (both modes enumerate ascending, so the kept
	// set is mode-independent).
	MaxNeighbors int
	// APPowerDBm / noise figure follow the paper's Section 6.3.4 setup.
	APPowerDBm float64
	// DayEpochs is the length of the compressed diurnal cycle driving
	// the attach ramp (1 s epochs).
	DayEpochs int
	// MinLoadFrac / MaxLoadFrac bound the diurnal attached fraction.
	MinLoadFrac, MaxLoadFrac float64
	// MoveFraction of attached UEs takes a random-waypoint step each
	// epoch at SpeedMps.
	MoveFraction float64
	SpeedMps     float64
	// Shards > 1 runs the world on a conservative parallel cluster of
	// that many vertical slabs (see package doc); 0 or 1 runs the
	// classic single-threaded direct path. Results are byte-identical
	// either way.
	Shards int
	// Incumbents are scheduled primary-user pop-ups.
	Incumbents []IncumbentEvent
}

// DefaultCity returns the headline scenario: 2,000 APs and 100k UEs on
// a 14 km x 7 km city, which must simulate faster than real time on a
// single core (the BENCH_city.json gate).
func DefaultCity(seed int64) Config {
	return Config{
		Seed:            seed,
		NAPs:            2000,
		NUEs:            100_000,
		AreaW:           14_000,
		AreaH:           7_000,
		APSpacingM:      220,
		RadiusM:         800,
		MaxNeighbors:    32,
		APPowerDBm:      30,
		DayEpochs:       240,
		MinLoadFrac:     0.25,
		MaxLoadFrac:     0.95,
		MoveFraction:    0.02,
		SpeedMps:        15,
		UseSpatialIndex: true,
	}
}

// shardCtx is the per-shard working set: scratch, per-AP load deltas
// staged during a window, per-epoch integer aggregates, and the shard's
// slice of the streaming stats. The direct path uses sctx[0] with loads
// applied inline.
type shardCtx struct {
	scratch   []int32
	gains     []float64 // reusable fade-gain row for the batch sweep kernel
	loadDelta []int32   // per-AP attach/handover deltas, folded at barriers

	handovers int64 // this epoch
	served    int64 // bits delivered this epoch
	cqiSum    int64 // sum of attached UEs' CQI this epoch

	thr  stats.StreamStat
	thrQ *stats.QuantileSketch
}

// incChange is one precomputed incumbent timeline entry.
type incChange struct {
	epoch  int64
	idx    int32
	arrive bool
}

// World is one instantiated city. All per-UE state is SoA.
type World struct {
	Cfg   Config
	model *propagation.Model
	fade  *propagation.Fading

	// Access points (static).
	apX, apY []float64
	apLoad   []int32 // attached UEs per AP (shared; written only at barriers when sharded)
	grid     *geo.Grid

	// UE state, dense SoA.
	ueX, ueY     []float64
	ueWpX, ueWpY []float64 // random-waypoint targets
	ueWpN        []uint32  // waypoints consumed (per-UE counter-hash stream)
	ueCell       []int32   // serving AP, -1 when out of coverage
	ueServI      []uint8   // serving AP's adjacency-row index (valid when ueCell >= 0)
	ueShard      []uint8   // owning slab; all zero on the direct path
	ueAttached   []bool
	ueQueued     []int64
	ueDelivered  []int64
	ueCQI        []uint8

	// Bounded-degree adjacency, fixed stride Cfg.MaxNeighbors:
	// row u occupies [u*K, u*K+nbrN[u]). nbrRxMW is the mean rx power
	// of that AP at the UE in milliwatts (path loss + shadowing, no
	// fast fading) — float32, since a ~24-bit mantissa is far below the
	// shadowing model's fidelity and halving the row width halves the
	// sweep's memory traffic; nbrLink caches the fading LinkID.
	nbrAP   []int32
	nbrRxMW []float32
	nbrLink []uint64
	nbrN    []uint16

	rng     *rand.Rand
	epoch   int64
	noiseMW float64
	// rateBps[cqi] is the one-subchannel downlink rate.
	rateBps [16]float64
	sc      int // the evaluated subchannel

	// Streaming aggregates over the whole run (bounded memory). When
	// sharded they are recomputed at every epoch fold from per-shard
	// partials; exact values then depend on the partition (float
	// summation order), unlike the integer trace aggregates.
	Throughput    stats.StreamStat      // per-UE Mbps, one sample per attached UE per epoch
	ThroughputQ   *stats.QuantileSketch // same stream, quantiles
	Attached      stats.StreamStat      // attached count per epoch
	attachSeq     []int32               // diurnal attach order (permutation)
	attachedCount int32

	// Incumbent machinery.
	apDownCnt   []int32 // >0: AP silenced by that many incumbents
	incTimeline []incChange
	incNext     int
	hasInc      bool

	// Execution plumbing.
	direct  bool
	cluster *shard.Cluster
	sctx    []*shardCtx
	slabW   float64
	started bool
	rec     trace.Recorder
}

// New builds the world: AP placement, UE scatter, adjacency rows, and —
// when Cfg.Shards > 1 — the shard cluster with its per-epoch phase
// events. Call Close to release the cluster's worker goroutines.
func New(cfg Config) *World {
	if cfg.MaxNeighbors <= 0 {
		cfg.MaxNeighbors = 32
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	w := &World{
		Cfg:         cfg,
		model:       propagation.DefaultUrban(cfg.Seed),
		fade:        propagation.NewFading(cfg.Seed + 1),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		ThroughputQ: stats.NewQuantileSketch(0),
		direct:      cfg.Shards <= 1,
		slabW:       cfg.AreaW / float64(cfg.Shards),
		hasInc:      len(cfg.Incumbents) > 0,
	}
	w.sctx = make([]*shardCtx, cfg.Shards)
	for i := range w.sctx {
		w.sctx[i] = &shardCtx{
			gains:     make([]float64, 0, cfg.MaxNeighbors),
			loadDelta: make([]int32, cfg.NAPs),
			thrQ:      stats.NewQuantileSketch(0),
		}
	}
	area := geo.Rect{MinX: 0, MinY: 0, MaxX: cfg.AreaW, MaxY: cfg.AreaH}
	aps := geo.MinSpacedPoints(w.rng, area, cfg.NAPs, cfg.APSpacingM)
	w.apX = make([]float64, cfg.NAPs)
	w.apY = make([]float64, cfg.NAPs)
	w.apLoad = make([]int32, cfg.NAPs)
	w.apDownCnt = make([]int32, cfg.NAPs)
	for i, p := range aps {
		w.apX[i], w.apY[i] = p.X, p.Y
	}
	if cfg.UseSpatialIndex {
		w.grid = geo.NewGrid(area, cfg.RadiusM)
		for i, p := range aps {
			w.grid.Insert(int32(i), p)
		}
	}

	n := cfg.NUEs
	w.ueX = make([]float64, n)
	w.ueY = make([]float64, n)
	w.ueWpX = make([]float64, n)
	w.ueWpY = make([]float64, n)
	w.ueWpN = make([]uint32, n)
	w.ueCell = make([]int32, n)
	w.ueServI = make([]uint8, n)
	w.ueShard = make([]uint8, n)
	w.ueAttached = make([]bool, n)
	w.ueQueued = make([]int64, n)
	w.ueDelivered = make([]int64, n)
	w.ueCQI = make([]uint8, n)
	w.nbrAP = make([]int32, n*cfg.MaxNeighbors)
	w.nbrRxMW = make([]float32, n*cfg.MaxNeighbors)
	w.nbrLink = make([]uint64, n*cfg.MaxNeighbors)
	w.nbrN = make([]uint16, n)
	for u := 0; u < n; u++ {
		p := area.RandomPoint(w.rng)
		q := area.RandomPoint(w.rng)
		w.ueX[u], w.ueY[u] = p.X, p.Y
		w.ueWpX[u], w.ueWpY[u] = q.X, q.Y
		w.ueShard[u] = uint8(w.slabOf(p.X))
		w.rebuildRow(u, w.sctx[0])
	}
	w.attachSeq = make([]int32, n)
	for i, v := range w.rng.Perm(n) {
		w.attachSeq[i] = int32(v)
	}

	bw, tdd := lte.BW5MHz, lte.TDDConfig4
	w.sc = 0
	for cqi := 0; cqi <= 15; cqi++ {
		w.rateBps[cqi] = lte.SubchannelRateBps(bw, tdd, w.sc, cqi)
	}
	w.noiseMW = propagation.DBmToMW(propagation.NoiseDBm(bw.SubchannelHz(w.sc), 7))

	w.incTimeline = buildIncTimeline(cfg.Incumbents)

	if !w.direct {
		w.cluster = shard.New(shard.Config{
			Shards:      cfg.Shards,
			Window:      shardWindow,
			Seed:        cfg.Seed,
			Handler:     w.handleMsg,
			AfterWindow: w.afterWindow,
		})
		for s := 0; s < cfg.Shards; s++ {
			w.scheduleShard(s)
		}
	}
	return w
}

// buildIncTimeline flattens incumbent events into a sorted change list:
// (epoch asc, arrivals before departures, event index asc) — one fixed
// application order shared by the direct and sharded paths.
func buildIncTimeline(evs []IncumbentEvent) []incChange {
	if len(evs) == 0 {
		return nil
	}
	tl := make([]incChange, 0, 2*len(evs))
	for i, ev := range evs {
		tl = append(tl, incChange{epoch: ev.Epoch, idx: int32(i), arrive: true})
		if ev.Duration > 0 {
			tl = append(tl, incChange{epoch: ev.Epoch + ev.Duration, idx: int32(i), arrive: false})
		}
	}
	for i := 1; i < len(tl); i++ { // insertion sort: tiny, stable-by-construction keys
		for j := i; j > 0; j-- {
			a, b := tl[j-1], tl[j]
			if a.epoch < b.epoch ||
				(a.epoch == b.epoch && a.arrive && !b.arrive) ||
				(a.epoch == b.epoch && a.arrive == b.arrive && a.idx < b.idx) {
				break
			}
			tl[j-1], tl[j] = b, a
		}
	}
	return tl
}

// slabOf maps an x coordinate to its owning shard.
func (w *World) slabOf(x float64) int {
	s := int(x / w.slabW)
	if s < 0 {
		s = 0
	}
	if s >= w.Cfg.Shards {
		s = w.Cfg.Shards - 1
	}
	return s
}

// scheduleShard installs shard s's three self-rescheduling epoch phase
// events (the fold is the cluster's AfterWindow, not an event).
func (w *World) scheduleShard(s int) {
	e := w.cluster.Shard(s).Engine
	var attach, mob, sweep func()
	attach = func() { w.attachPhase(s); e.Schedule(e.Now()+epochDur, attach) }
	mob = func() { w.mobilityPhase(s); e.Schedule(e.Now()+epochDur, mob) }
	sweep = func() { w.sweepPhase(s); e.Schedule(e.Now()+epochDur, sweep) }
	e.Schedule(offAttach, attach)
	e.Schedule(offMobility, mob)
	e.Schedule(offSweep, sweep)
}

// handleMsg applies cross-shard messages at barriers (single-threaded,
// merged (At, Src, Seq) order).
func (w *World) handleMsg(dst int, m shard.Msg) {
	switch m.Kind {
	case msgHandoff:
		w.ueShard[m.Args[0]] = uint8(m.Args[1])
	}
}

// afterWindow is the cluster fold hook: load deltas apply at every
// barrier; the window ending at t+750 ms additionally runs the epoch
// fold.
func (w *World) afterWindow(end sim.Time) {
	w.foldLoads()
	if end%epochDur == offFold {
		w.epochFold()
	}
}

// foldLoads applies and clears every shard's per-AP load deltas, in
// shard order. Integer addition commutes, so the folded loads are
// identical to the direct path's inline bookkeeping.
func (w *World) foldLoads() {
	for _, sc := range w.sctx {
		for a, d := range sc.loadDelta {
			if d != 0 {
				w.apLoad[a] += d
				sc.loadDelta[a] = 0
			}
		}
	}
}

// rebuildRow recomputes UE u's adjacency row and serving AP from its
// current position — the only place link budgets are evaluated, run at
// construction and after a mobility step. Both enumeration modes visit
// APs in ascending index order under the same inclusive r^2 predicate.
func (w *World) rebuildRow(u int, sc *shardCtx) {
	k := w.Cfg.MaxNeighbors
	base := u * k
	r2 := w.Cfg.RadiusM * w.Cfg.RadiusM
	pos := geo.Point{X: w.ueX[u], Y: w.ueY[u]}
	cnt := 0
	consider := func(a int32) {
		if cnt >= k {
			return // bounded degree: keep the lowest indices
		}
		ap := geo.Point{X: w.apX[a], Y: w.apY[a]}
		loss := w.model.LinkLossDB(ap, pos)
		w.nbrAP[base+cnt] = a
		// exp(x·ln10/10) ≡ 10^(x/10) to ~1 ulp in float64 and is ~3x
		// cheaper than math.Pow; the difference vanishes in the float32
		// round, and the function is pure, so every enumeration mode and
		// shard count sees the same row.
		w.nbrRxMW[base+cnt] = float32(math.Exp((w.Cfg.APPowerDBm - loss) * (math.Ln10 / 10)))
		w.nbrLink[base+cnt] = propagation.LinkID(int(a), w.Cfg.NAPs+u)
		cnt++
	}
	if w.grid != nil {
		sc.scratch = w.grid.AppendWithin(sc.scratch[:0], pos, w.Cfg.RadiusM)
		for _, a := range sc.scratch {
			consider(a)
		}
	} else {
		for a := range w.apX {
			dx, dy := w.apX[a]-pos.X, w.apY[a]-pos.Y
			if dx*dx+dy*dy <= r2 {
				consider(int32(a))
			}
		}
	}
	w.nbrN[u] = uint16(cnt)

	// Serving AP: strongest mean rx in the row (ascending, strict >,
	// so ties keep the lowest index in both modes).
	oldCell := w.ueCell[u]
	best, bestRx, bestI := int32(-1), float32(0), 0
	for i := 0; i < cnt; i++ {
		if w.nbrRxMW[base+i] > bestRx {
			best, bestRx, bestI = w.nbrAP[base+i], w.nbrRxMW[base+i], i
		}
	}
	w.ueCell[u] = best
	w.ueServI[u] = uint8(bestI)
	if w.ueAttached[u] && oldCell != best {
		sc.handovers++
		if w.direct {
			if oldCell >= 0 {
				w.apLoad[oldCell]--
			}
			if best >= 0 {
				w.apLoad[best]++
			}
		} else {
			if oldCell >= 0 {
				sc.loadDelta[oldCell]--
			}
			if best >= 0 {
				sc.loadDelta[best]++
			}
		}
	}
}

// loadFrac returns the diurnal attached fraction for an epoch: a raised
// cosine over the compressed day.
func (w *World) loadFrac(epoch int64) float64 {
	cfg := w.Cfg
	phase := 2 * math.Pi * float64(epoch%int64(cfg.DayEpochs)) / float64(cfg.DayEpochs)
	return cfg.MinLoadFrac + (cfg.MaxLoadFrac-cfg.MinLoadFrac)*0.5*(1-math.Cos(phase))
}

// attachTarget is the attached population after epoch's attach phase —
// a pure function of the epoch, which is what lets every shard walk its
// slice of the permutation without coordination.
func (w *World) attachTarget(epoch int64) int {
	return int(w.loadFrac(epoch) * float64(w.Cfg.NUEs))
}

// attachPhase moves shard s's share of the attached population toward
// the diurnal target. All shards walk the same global permutation range
// [attachedCount, target) and act only on owned UEs.
func (w *World) attachPhase(s int) {
	target := w.attachTarget(w.epoch)
	prev := int(w.attachedCount)
	sc := w.sctx[s]
	own := uint8(s)
	for i := prev; i < target; i++ {
		u := w.attachSeq[i]
		if w.ueShard[u] != own {
			continue
		}
		w.ueAttached[u] = true
		w.ueQueued[u] = 1 << 40 // backlogged
		if c := w.ueCell[u]; c >= 0 {
			if w.direct {
				w.apLoad[c]++
			} else {
				sc.loadDelta[c]++
			}
		}
	}
	for i := prev - 1; i >= target; i-- {
		u := w.attachSeq[i]
		if w.ueShard[u] != own {
			continue
		}
		w.ueAttached[u] = false
		if c := w.ueCell[u]; c >= 0 {
			if w.direct {
				w.apLoad[c]--
			} else {
				sc.loadDelta[c]--
			}
		}
	}
}

// mobilityPhase advances random-waypoint walks for shard s's members of
// the epoch's deterministic cohort and rebuilds their adjacency rows.
// Fresh waypoints come from a per-UE counter hash — not a shared RNG —
// so the draw a UE sees is independent of which shard moves it and of
// how many other UEs moved first.
func (w *World) mobilityPhase(s int) {
	cfg := &w.Cfg
	if cfg.MoveFraction <= 0 {
		return
	}
	// A rotating deterministic cohort moves each epoch: identical in
	// both neighbor-enumeration modes and at every shard count.
	stride := int64(1)
	if cfg.MoveFraction < 1 {
		stride = int64(1 / cfg.MoveFraction)
	}
	sc := w.sctx[s]
	own := uint8(s)
	for u := int(w.epoch % stride); u < cfg.NUEs; u += int(stride) {
		if w.ueShard[u] != own || !w.ueAttached[u] {
			continue
		}
		dx, dy := w.ueWpX[u]-w.ueX[u], w.ueWpY[u]-w.ueY[u]
		d := math.Sqrt(dx*dx + dy*dy)
		step := cfg.SpeedMps * float64(stride) // cohort moves every stride epochs
		if d <= step {
			w.ueX[u], w.ueY[u] = w.ueWpX[u], w.ueWpY[u]
			w.ueWpN[u]++
			fx, fy := waypointAt(cfg.Seed, u, w.ueWpN[u])
			w.ueWpX[u] = fx * cfg.AreaW
			w.ueWpY[u] = fy * cfg.AreaH
		} else {
			w.ueX[u] += step * dx / d
			w.ueY[u] += step * dy / d
		}
		w.rebuildRow(u, sc)
		if !w.direct {
			if ns := w.slabOf(w.ueX[u]); ns != s {
				sh := w.cluster.Shard(s)
				sh.Send(shard.Msg{
					At:   sh.Engine.Now() + shardWindow,
					Dst:  int32(ns),
					Kind: msgHandoff,
					Args: [4]int64{int64(u), int64(ns)},
				})
			}
		}
	}
}

// waypointAt returns UE u's n-th waypoint as a pair of [0,1) fractions,
// from a SplitMix64-style counter hash of (seed, u, n).
func waypointAt(seed int64, u int, n uint32) (fx, fy float64) {
	h := mix64(uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(u)<<20 ^ uint64(n))
	h2 := mix64(h)
	return float64(h>>11) / (1 << 53), float64(h2>>11) / (1 << 53)
}

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sweepPhase is the cache-linear SINR/throughput sweep over shard s's
// attached UEs. It reads the shared load and incumbent tables (frozen
// during windows) and writes only owned per-UE slots and the shard's
// own aggregates.
func (w *World) sweepPhase(s int) {
	cfg := &w.Cfg
	sc := w.sctx[s]
	own := uint8(s)
	tMS := w.epoch * 1000
	k := cfg.MaxNeighbors
	for u := 0; u < cfg.NUEs; u++ {
		if w.ueShard[u] != own || !w.ueAttached[u] {
			continue
		}
		serving := w.ueCell[u]
		if serving < 0 {
			w.ueCQI[u] = 0
			w.addSample(sc, 0)
			continue
		}
		base := u * k
		n := int(w.nbrN[u])
		// One batch fade draw per row (the whole row shares the
		// subchannel and coherence block); silenced APs get a gain too —
		// unused, but draws are counter-hashed so computing them does
		// not perturb any other draw.
		gains := w.fade.AppendGainsLinear(sc.gains[:0], w.nbrLink[base:base+n], w.sc, tMS)
		sc.gains = gains[:0]
		var sig float64
		den := w.noiseMW
		if w.hasInc {
			for i := 0; i < n; i++ {
				a := w.nbrAP[base+i]
				if w.apDownCnt[a] > 0 {
					continue // incumbent-silenced: no signal, no interference
				}
				p := float64(w.nbrRxMW[base+i]) * gains[i]
				if a == serving {
					sig = p
				} else {
					den += p
				}
			}
		} else {
			// Branchless: sum the whole row, then peel the serving term
			// off by its cached row index. The subtraction's rounding
			// error is bounded by ~n ulps of the total — negligible next
			// to the thermal noise floor already in den, and identical
			// across enumeration modes and shard counts.
			rx, g := w.nbrRxMW[base:base+n], gains[:n]
			total := 0.0
			for i := range rx {
				total += float64(rx[i]) * g[i]
			}
			si := int(w.ueServI[u])
			sig = float64(rx[si]) * g[si]
			den += total - sig
		}
		if sig == 0 { // serving AP silenced by an incumbent
			w.ueCQI[u] = 0
			w.addSample(sc, 0)
			continue
		}
		cqi := phy.LTECQIFromLinearSINR(sig, den)
		w.ueCQI[u] = uint8(cqi)
		sc.cqiSum += int64(cqi)
		rate := w.rateBps[cqi] / float64(w.apLoad[serving])
		served := int64(rate)
		if served > w.ueQueued[u] {
			served = w.ueQueued[u]
		}
		w.ueQueued[u] -= served
		w.ueDelivered[u] += served
		sc.served += served
		w.addSample(sc, float64(served)/1e6)
	}
}

// addSample records one per-UE throughput observation: straight into
// the world aggregates on the direct path, into the shard partial when
// sharded (merged at the fold).
func (w *World) addSample(sc *shardCtx, mbps float64) {
	if w.direct {
		w.Throughput.Add(mbps)
		w.ThroughputQ.Add(mbps)
	} else {
		sc.thr.Add(mbps)
		sc.thrQ.Add(mbps)
	}
}

// epochFold closes one epoch, single-threaded: commit the attach
// target, merge per-shard aggregates, emit trace records, advance the
// epoch and apply the next epoch's incumbent changes.
func (w *World) epochFold() {
	target := w.attachTarget(w.epoch)
	w.attachedCount = int32(target)
	w.Attached.Add(float64(target))
	if !w.direct {
		w.Throughput = stats.StreamStat{}
		w.ThroughputQ.Reset()
	}
	var hand, served, cqis int64
	for _, sc := range w.sctx {
		hand += sc.handovers
		served += sc.served
		cqis += sc.cqiSum
		sc.handovers, sc.served, sc.cqiSum = 0, 0, 0
		if !w.direct {
			w.Throughput.Merge(sc.thr)
			w.ThroughputQ.Merge(sc.thrQ)
		}
	}
	if w.rec != nil {
		w.rec.Record(trace.Record{
			T:    int64((time.Duration(w.epoch)*epochDur + offFold)),
			Args: [4]int64{int64(target), hand, served, cqis},
			AP:   -1,
			Kind: trace.KindMetroEpoch,
		})
	}
	w.epoch++
	w.applyIncumbents(w.epoch)
}

// applyIncumbents replays incumbent timeline changes due at or before
// epoch: flip the per-AP silence counters and emit one KindIncumbent
// record per change (Args: event index, 1 = arrive / 0 = depart,
// affected AP count). Runs at construction/fold time only — never
// inside a window.
func (w *World) applyIncumbents(epoch int64) {
	for w.incNext < len(w.incTimeline) && w.incTimeline[w.incNext].epoch <= epoch {
		ch := w.incTimeline[w.incNext]
		w.incNext++
		ev := w.Cfg.Incumbents[ch.idx]
		delta, arr := int32(1), int64(1)
		if !ch.arrive {
			delta, arr = -1, 0
		}
		r2 := ev.RadiusM * ev.RadiusM
		var n int64
		for a := range w.apX {
			dx, dy := w.apX[a]-ev.X, w.apY[a]-ev.Y
			if dx*dx+dy*dy <= r2 {
				w.apDownCnt[a] += delta
				n++
			}
		}
		if w.rec != nil {
			w.rec.Record(trace.Record{
				T:    int64(time.Duration(ch.epoch) * epochDur),
				Args: [4]int64{int64(ch.idx), arr, n},
				AP:   -1,
				Kind: trace.KindIncumbent,
			})
		}
	}
}

// ensureStarted applies epoch-0 incumbents exactly once, after the
// recorder is attached but before the first phase runs.
func (w *World) ensureStarted() {
	if w.started {
		return
	}
	w.started = true
	w.applyIncumbents(0)
}

// Step advances one 1-second epoch. On the direct path the four phases
// run inline; sharded worlds advance the cluster by one epoch.
func (w *World) Step() {
	if !w.direct {
		w.Run(1)
		return
	}
	w.ensureStarted()
	w.attachPhase(0)
	w.mobilityPhase(0)
	w.sweepPhase(0)
	w.epochFold()
}

// Run advances the world the given number of epochs.
func (w *World) Run(epochs int) {
	if w.direct {
		for i := 0; i < epochs; i++ {
			w.Step()
		}
		return
	}
	w.ensureStarted()
	w.cluster.Run(time.Duration(w.epoch+int64(epochs)) * epochDur)
}

// Close releases the shard cluster's worker goroutines (no-op on the
// direct path). The world stays readable.
func (w *World) Close() {
	if w.cluster != nil {
		w.cluster.Close()
	}
}

// SetRecorder attaches a flight recorder for KindMetroEpoch /
// KindIncumbent records. Attach before the first Step/Run; the fold
// emits single-threaded, so one recorder serves every shard.
func (w *World) SetRecorder(r trace.Recorder) { w.rec = r }

// ShardStats returns the cluster telemetry snapshot; ok is false on the
// direct path.
func (w *World) ShardStats() (st shard.Stats, ok bool) {
	if w.cluster == nil {
		return shard.Stats{}, false
	}
	return w.cluster.Stats(), true
}

// Epoch returns the number of completed epochs (== simulated seconds).
func (w *World) Epoch() int64 { return w.epoch }

// AttachedCount returns the currently attached UE population.
func (w *World) AttachedCount() int { return int(w.attachedCount) }

// DeliveredBits returns total downlink bits delivered so far.
func (w *World) DeliveredBits() int64 {
	var sum int64
	for _, v := range w.ueDelivered {
		sum += v
	}
	return sum
}

// UEState exposes one UE's SoA slots (tests and tooling).
func (w *World) UEState(u int) (x, y float64, cell int32, delivered int64, cqi uint8) {
	return w.ueX[u], w.ueY[u], w.ueCell[u], w.ueDelivered[u], w.ueCQI[u]
}
